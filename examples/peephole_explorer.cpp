//===- peephole_explorer.cpp - Interactive-ish pass exploration -------------===//
//
// Shows the optimizer substrate as a library: generate a random C-like
// function (the corpus generator), lower it to -O0 IR, then walk through
// each rewrite family individually, printing what changed, what it cost,
// and a formal verdict for every step. Pass a seed to explore different
// functions:   ./build/examples/peephole_explorer 7
//
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"
#include "data/MiniC.h"
#include "ir/Printer.h"
#include "opt/Pass.h"
#include "verify/AliveLite.h"

#include <cstdio>
#include <cstdlib>

using namespace veriopt;

int main(int argc, char **argv) {
  uint64_t Seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  RNG R(Seed);
  auto MC = generateMiniC(R, "explore");
  std::printf("== generated C-like source (seed %llu) ==\n%s\n",
              static_cast<unsigned long long>(Seed), MC->render().c_str());

  auto M = lowerToO0(*MC);
  Function *F = M->getMainFunction();
  std::printf("== -O0 IR: %u instructions, latency %.0f ==\n%s\n",
              instructionCount(*F), estimateLatency(*F),
              printFunction(*F).c_str());

  struct Step {
    const char *Name;
    unsigned CatMask; // 0 = structural pass below
    int Structural;   // 0 none, 1 mem2reg, 2 simplifycfg, 3 dce
  };
  const Step Steps[] = {
      {"constant folding", ruleCatBit(RuleCat::ConstFold), 0},
      {"algebraic identities", ruleCatBit(RuleCat::Algebraic), 0},
      {"bitwise identities", ruleCatBit(RuleCat::Bitwise), 0},
      {"shift rules", ruleCatBit(RuleCat::Shift), 0},
      {"icmp rules", ruleCatBit(RuleCat::Compare), 0},
      {"select rules", ruleCatBit(RuleCat::Select), 0},
      {"cast chains", ruleCatBit(RuleCat::Cast), 0},
      {"memory forwarding", ruleCatBit(RuleCat::Memory), 0},
      {"gep/phi cleanup", ruleCatBit(RuleCat::Scalar), 0},
      {"mem2reg (emergent)", 0, 1},
      {"simplifycfg (emergent)", 0, 2},
      {"dce", 0, 3},
  };

  auto Work = F->clone();
  for (const Step &S : Steps) {
    PassTrace Trace;
    PassManager PM;
    if (S.CatMask)
      PM.add(createInstCombinePass(S.CatMask |
                                   ruleCatBit(RuleCat::ConstFold)));
    else if (S.Structural == 1)
      PM.add(createMem2RegPass());
    else if (S.Structural == 2)
      PM.add(createSimplifyCFGPass());
    else
      PM.add(createDCEPass());
    bool Changed = PM.runToFixpoint(*Work, &Trace);
    std::printf("%-24s %s", S.Name, Changed ? "fired:" : "no change");
    if (Changed) {
      unsigned Shown = 0;
      for (const auto &Rule : Trace.Applied) {
        if (++Shown > 6) {
          std::printf(" ...");
          break;
        }
        std::printf(" %s", Rule.c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\n== final IR: %u instructions, latency %.0f ==\n%s\n",
              instructionCount(*Work), estimateLatency(*Work),
              printFunction(*Work).c_str());

  VerifyResult VR = verifyRefinement(*F, *Work);
  std::printf("formal verdict: %s\n",
              VR.equivalent() ? "EQUIVALENT" : VR.Diagnostic.c_str());
  std::printf("total speedup: %.2fx\n",
              estimateLatency(*F) /
                  std::max(estimateLatency(*Work), 0.25));
  return VR.equivalent() ? 0 : 1;
}
