//===- train_mini.cpp - A miniature end-to-end LLM-VeriOpt run --------------===//
//
// Runs the whole §III-C pipeline at a small scale and prints the ablation
// ladder: base -> MODEL-ZERO -> WARM-UP -> MODEL-CORRECTNESS ->
// MODEL-LATENCY, compared against the handwritten reference pass.
//
// Takes a couple of minutes. Build & run:  ./build/examples/train_mini
//
// Flags:
//   --tiny                 few samples / few steps (the CI smoke config)
//   --trace <out.jsonl>    record the run's trace + metrics (see
//                          docs/OBSERVABILITY.md; render with tools/report)
//   --chrome-trace <out>   also write a chrome://tracing-loadable JSON
//   --eval-shards <n>      shard the final evaluation (0 = one per thread);
//                          results are bit-identical at any setting
//   --eval-threads <n>     worker threads for the sharded evaluation
//
//===----------------------------------------------------------------------===//

#include "pipeline/Evaluation.h"
#include "pipeline/Pipeline.h"
#include "support/ThreadPool.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace veriopt;

int main(int argc, char **argv) {
  bool Tiny = false;
  unsigned EvalShards = 1, EvalThreads = 1;
  std::string TracePath, ChromePath;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--tiny") == 0) {
      Tiny = true;
    } else if (std::strcmp(argv[I], "--trace") == 0 && I + 1 < argc) {
      TracePath = argv[++I];
    } else if (std::strcmp(argv[I], "--chrome-trace") == 0 && I + 1 < argc) {
      ChromePath = argv[++I];
    } else if (std::strcmp(argv[I], "--eval-shards") == 0 && I + 1 < argc) {
      EvalShards = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (std::strcmp(argv[I], "--eval-threads") == 0 && I + 1 < argc) {
      EvalThreads = std::max(1, std::atoi(argv[++I]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--tiny] [--trace out.jsonl] "
                   "[--chrome-trace out.json] [--eval-shards n] "
                   "[--eval-threads n]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!TracePath.empty() || !ChromePath.empty())
    TraceRecorder::instance().enable();

  // A small corpus so this example stays quick; the bench binaries use the
  // full configuration.
  DatasetOptions D;
  D.TrainCount = Tiny ? 8 : 30;
  D.ValidCount = Tiny ? 6 : 24;
  D.Seed = 123;
  std::printf("building dataset (LLVM/GCC-test-suite-style functions, "
              "-O0 lowered, Alive-filtered)...\n");
  Dataset DS = buildDataset(D);
  std::printf("  kept %zu train / %zu validation "
              "(rejected: %u token-limit, %u unverified, %u inconclusive)\n",
              DS.Train.size(), DS.Valid.size(),
              DS.Stats.RejectedTokenLimit, DS.Stats.RejectedNotEquivalent,
              DS.Stats.RejectedInconclusive);
  std::printf("  example source function:\n%s\n",
              DS.Train.front().CSource.c_str());

  PipelineOptions P;
  P.Data = D;
  P.Stage1Steps = Tiny ? 4 : 20;
  P.Stage2Steps = Tiny ? 6 : 40;
  P.Stage3Steps = Tiny ? 8 : 80;
  P.GRPO.GroupSize = 6;
  std::printf("running the four-stage training pipeline...\n");
  PipelineArtifacts Art = runTrainingPipeline(DS, P);
  std::printf("  U_max (80th pct of reference speedups) = %.2f\n",
              Art.UMax);
  std::printf("  harvested %u correction + %u first-time augmented "
              "samples\n\n",
              Art.CorrectionSamples, Art.FirstTimeSamples);

  P.EvalShards = EvalShards;
  ThreadPool EvalPool(EvalThreads);
  auto Eval = [&](const RewritePolicyModel &M, PromptMode Mode) {
    return evaluateModelSharded(M, DS.Valid, Mode, VerifyOptions(),
                                P.makeEvalOptions(&EvalPool));
  };
  auto Row = [&](const char *Name, const RewritePolicyModel &M,
                 PromptMode Mode) {
    EvalResult E = Eval(M, Mode);
    std::printf("%-18s correct %5.1f%%  diff-correct %5.1f%%  speedup "
                "%.2fx\n",
                Name, E.Taxonomy.pct(E.Taxonomy.Correct),
                E.Taxonomy.differentCorrectRate(), E.GeoSpeedupVsO0);
  };
  Row("base", *Art.Base, PromptMode::Generic);
  Row("MODEL-ZERO", *Art.ModelZero, PromptMode::Generic);
  Row("WARM-UP", *Art.WarmUp, PromptMode::Augmented);
  Row("MODEL-CORRECTNESS", *Art.Correctness, PromptMode::Augmented);
  Row("MODEL-LATENCY", *Art.Latency, PromptMode::Generic);

  EvalResult Ref = evaluateReferencePass(DS.Valid);
  std::printf("%-18s correct %5.1f%%  diff-correct %5.1f%%  speedup "
              "%.2fx (handwritten)\n",
              "instcombine", 100.0, 100.0, Ref.GeoSpeedupVsO0);

  EvalResult Lat = Eval(*Art.Latency, PromptMode::Generic);
  std::printf("\nMODEL-LATENCY vs instcombine: better %.0f%%, worse %.0f%%, "
              "tie %.0f%%; fallback composition %+.1f%%\n",
              Lat.Taxonomy.pct(Lat.VsRefBetter),
              Lat.Taxonomy.pct(Lat.VsRefWorse),
              Lat.Taxonomy.pct(Lat.VsRefTie),
              100.0 * Lat.FallbackGainOverRef);

  if (!TracePath.empty()) {
    if (TraceRecorder::instance().writeJsonl(TracePath,
                                             &MetricsRegistry::global()))
      std::printf("wrote trace: %s  (render: tools/report %s)\n",
                  TracePath.c_str(), TracePath.c_str());
    else {
      std::fprintf(stderr, "error: could not write %s\n", TracePath.c_str());
      return 1;
    }
  }
  if (!ChromePath.empty()) {
    if (TraceRecorder::instance().writeChromeTrace(ChromePath))
      std::printf("wrote chrome trace: %s  (open in chrome://tracing)\n",
                  ChromePath.c_str());
    else {
      std::fprintf(stderr, "error: could not write %s\n", ChromePath.c_str());
      return 1;
    }
  }
  return 0;
}
