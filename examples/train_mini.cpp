//===- train_mini.cpp - A miniature end-to-end LLM-VeriOpt run --------------===//
//
// Runs the whole §III-C pipeline at a small scale and prints the ablation
// ladder: base -> MODEL-ZERO -> WARM-UP -> MODEL-CORRECTNESS ->
// MODEL-LATENCY, compared against the handwritten reference pass.
//
// Takes a couple of minutes. Build & run:  ./build/examples/train_mini
//
// Flags:
//   --tiny                 few samples / few steps (the CI smoke config)
//   --trace <out.jsonl>    record the run's trace + metrics (see
//                          docs/OBSERVABILITY.md; render with tools/report)
//   --chrome-trace <out>   also write a chrome://tracing-loadable JSON
//   --eval-shards <n>      shard the final evaluation (0 = one per thread);
//                          results are bit-identical at any setting
//   --eval-threads <n>     worker threads for the sharded evaluation
//   --stream-trace <n>     stream the trace incrementally (flush every n
//                          events, bounded memory) instead of buffering;
//                          requires --trace, excludes --chrome-trace
//   --verdict-store <path> durable verdict journal shared across runs and
//                          processes (docs/PERSISTENCE.md); results are
//                          bit-identical warm or cold
//   --checkpoint <path>    periodic pipeline checkpoints + resume (see
//                          docs/FAULT_TOLERANCE.md)
//   --checkpoint-every <n> checkpoint every n GRPO steps (0 = stage
//                          boundaries only)
//   --chaos-io <rate%>     inject I/O faults (ENOSPC/EIO/EDQUOT, short
//                          writes, failed fsync/rename/flock) into every
//                          durable write at the given percentage. The run
//                          must still complete with a training trajectory
//                          bit-identical to the fault-free same-seed run;
//                          only durability (store flushes, checkpoints)
//                          degrades, visibly, as io.* metrics. The trace
//                          sinks themselves are exempted so the gate
//                          artifact this flag exists to compare survives.
//   --chaos-io-seed <s>    seed for the fault pattern (default 0xFA11)
//
//===----------------------------------------------------------------------===//

#include "pipeline/Evaluation.h"
#include "pipeline/Pipeline.h"
#include "store/VerdictStore.h"
#include "support/FaultInjector.h"
#include "support/IoEnv.h"
#include "support/ThreadPool.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace veriopt;

int main(int argc, char **argv) {
  bool Tiny = false;
  unsigned EvalShards = 1, EvalThreads = 1;
  size_t StreamEvery = 0;
  unsigned CheckpointEvery = 0;
  long ChaosIoPct = 0;
  uint64_t ChaosIoSeed = 0xFA11;
  std::string TracePath, ChromePath, StorePath, CheckpointPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--tiny") == 0) {
      Tiny = true;
    } else if (std::strcmp(argv[I], "--trace") == 0 && I + 1 < argc) {
      TracePath = argv[++I];
    } else if (std::strcmp(argv[I], "--chrome-trace") == 0 && I + 1 < argc) {
      ChromePath = argv[++I];
    } else if (std::strcmp(argv[I], "--eval-shards") == 0 && I + 1 < argc) {
      EvalShards = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (std::strcmp(argv[I], "--eval-threads") == 0 && I + 1 < argc) {
      EvalThreads = std::max(1, std::atoi(argv[++I]));
    } else if (std::strcmp(argv[I], "--stream-trace") == 0 && I + 1 < argc) {
      StreamEvery = static_cast<size_t>(std::max(1, std::atoi(argv[++I])));
    } else if (std::strcmp(argv[I], "--verdict-store") == 0 && I + 1 < argc) {
      StorePath = argv[++I];
    } else if (std::strcmp(argv[I], "--checkpoint") == 0 && I + 1 < argc) {
      CheckpointPath = argv[++I];
    } else if (std::strcmp(argv[I], "--checkpoint-every") == 0 &&
               I + 1 < argc) {
      CheckpointEvery = static_cast<unsigned>(std::max(0, std::atoi(argv[++I])));
    } else if (std::strcmp(argv[I], "--chaos-io") == 0 && I + 1 < argc) {
      ChaosIoPct = std::strtol(argv[++I], nullptr, 10);
      if (ChaosIoPct < 0 || ChaosIoPct > 100) {
        std::fprintf(stderr, "error: --chaos-io wants a percentage 0..100\n");
        return 2;
      }
    } else if (std::strcmp(argv[I], "--chaos-io-seed") == 0 && I + 1 < argc) {
      ChaosIoSeed = std::strtoull(argv[++I], nullptr, 0);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--tiny] [--trace out.jsonl] "
                   "[--chrome-trace out.json] [--eval-shards n] "
                   "[--eval-threads n] [--stream-trace n] "
                   "[--verdict-store path] [--checkpoint path] "
                   "[--checkpoint-every n] [--chaos-io rate%%] "
                   "[--chaos-io-seed s]\n",
                   argv[0]);
      return 2;
    }
  }
  if (StreamEvery && TracePath.empty()) {
    std::fprintf(stderr, "error: --stream-trace requires --trace\n");
    return 2;
  }
  if (StreamEvery && !ChromePath.empty()) {
    // The streaming sink drains buffers as it goes; there is nothing left
    // for the Chrome exporter to snapshot at the end.
    std::fprintf(stderr,
                 "error: --stream-trace and --chrome-trace are exclusive\n");
    return 2;
  }

  // Chaos-io installs process-wide, before any durable subsystem opens a
  // file, so the whole run sees the same hostile disk. The trace sinks are
  // exempted: the CI chaos gate diffs this run's trace against a fault-free
  // same-seed run, which requires the comparison artifact itself to land.
  std::unique_ptr<FaultInjector> IoFI;
  std::unique_ptr<FaultyIoEnv> IoFaults;
  std::unique_ptr<ScopedIoEnv> IoInstall;
  if (ChaosIoPct > 0) {
    IoFI = std::make_unique<FaultInjector>(ChaosIoSeed);
    const double Rate = static_cast<double>(ChaosIoPct) / 100.0;
    for (FaultSite S : {FaultSite::IoOpen, FaultSite::IoWrite,
                        FaultSite::IoShortWrite, FaultSite::IoFsync,
                        FaultSite::IoRename, FaultSite::IoFlock})
      IoFI->enable(S, Rate);
    IoFaults = std::make_unique<FaultyIoEnv>(*IoFI);
    IoFaults->exemptSuffix(".jsonl");
    IoFaults->exemptSuffix(".stream");
    IoInstall = std::make_unique<ScopedIoEnv>(IoFaults.get());
    std::fprintf(stderr, "chaos-io: armed at %ld%% (seed 0x%llx)\n",
                 ChaosIoPct,
                 static_cast<unsigned long long>(ChaosIoSeed));
  }

  if (!TracePath.empty() || !ChromePath.empty())
    TraceRecorder::instance().enable();
  if (StreamEvery) {
    TraceRecorder::instance().flushEvery(StreamEvery);
    if (!TraceRecorder::instance().streamTo(TracePath,
                                            &MetricsRegistry::global())) {
      std::fprintf(stderr, "error: could not start streaming to %s\n",
                   TracePath.c_str());
      return 1;
    }
  }

  std::unique_ptr<VerdictStore> Store;
  if (!StorePath.empty()) {
    std::string Err;
    Store = VerdictStore::open(StorePath, &Err);
    if (!Store) {
      std::fprintf(stderr, "error: could not open verdict store %s: %s\n",
                   StorePath.c_str(), Err.c_str());
      return 1;
    }
    std::printf("verdict store: %s (%llu records loaded, %llu quarantined)\n",
                StorePath.c_str(),
                static_cast<unsigned long long>(Store->stats().LiveAtOpen),
                static_cast<unsigned long long>(Store->stats().Quarantined));
  }

  // A small corpus so this example stays quick; the bench binaries use the
  // full configuration.
  DatasetOptions D;
  D.TrainCount = Tiny ? 8 : 30;
  D.ValidCount = Tiny ? 6 : 24;
  D.Seed = 123;
  std::printf("building dataset (LLVM/GCC-test-suite-style functions, "
              "-O0 lowered, Alive-filtered)...\n");
  Dataset DS = buildDataset(D);
  std::printf("  kept %zu train / %zu validation "
              "(rejected: %u token-limit, %u unverified, %u inconclusive)\n",
              DS.Train.size(), DS.Valid.size(),
              DS.Stats.RejectedTokenLimit, DS.Stats.RejectedNotEquivalent,
              DS.Stats.RejectedInconclusive);
  std::printf("  example source function:\n%s\n",
              DS.Train.front().CSource.c_str());

  PipelineOptions P;
  P.Data = D;
  P.VerdictTier = Store.get();
  P.Stage1Steps = Tiny ? 4 : 20;
  P.Stage2Steps = Tiny ? 6 : 40;
  P.Stage3Steps = Tiny ? 8 : 80;
  P.GRPO.GroupSize = 6;
  P.CheckpointPath = CheckpointPath;
  P.CheckpointEveryNSteps = CheckpointEvery;
  std::printf("running the four-stage training pipeline...\n");
  PipelineArtifacts Art = runTrainingPipeline(DS, P);
  std::printf("  U_max (80th pct of reference speedups) = %.2f\n",
              Art.UMax);
  std::printf("  harvested %u correction + %u first-time augmented "
              "samples\n\n",
              Art.CorrectionSamples, Art.FirstTimeSamples);

  P.EvalShards = EvalShards;
  ThreadPool EvalPool(EvalThreads);
  auto Eval = [&](const RewritePolicyModel &M, PromptMode Mode) {
    return evaluateModelSharded(M, DS.Valid, Mode, VerifyOptions(),
                                P.makeEvalOptions(&EvalPool));
  };
  auto Row = [&](const char *Name, const RewritePolicyModel &M,
                 PromptMode Mode) {
    EvalResult E = Eval(M, Mode);
    std::printf("%-18s correct %5.1f%%  diff-correct %5.1f%%  speedup "
                "%.2fx\n",
                Name, E.Taxonomy.pct(E.Taxonomy.Correct),
                E.Taxonomy.differentCorrectRate(), E.GeoSpeedupVsO0);
  };
  Row("base", *Art.Base, PromptMode::Generic);
  Row("MODEL-ZERO", *Art.ModelZero, PromptMode::Generic);
  Row("WARM-UP", *Art.WarmUp, PromptMode::Augmented);
  Row("MODEL-CORRECTNESS", *Art.Correctness, PromptMode::Augmented);
  Row("MODEL-LATENCY", *Art.Latency, PromptMode::Generic);

  EvalResult Ref = evaluateReferencePass(DS.Valid);
  std::printf("%-18s correct %5.1f%%  diff-correct %5.1f%%  speedup "
              "%.2fx (handwritten)\n",
              "instcombine", 100.0, 100.0, Ref.GeoSpeedupVsO0);

  EvalResult Lat = Eval(*Art.Latency, PromptMode::Generic);
  std::printf("\nMODEL-LATENCY vs instcombine: better %.0f%%, worse %.0f%%, "
              "tie %.0f%%; fallback composition %+.1f%%\n",
              Lat.Taxonomy.pct(Lat.VsRefBetter),
              Lat.Taxonomy.pct(Lat.VsRefWorse),
              Lat.Taxonomy.pct(Lat.VsRefTie),
              100.0 * Lat.FallbackGainOverRef);

  if (Store) {
    VerdictStore::Stats SS = Store->stats();
    if (!Store->flush())
      std::fprintf(stderr, "warning: verdict store flush failed\n");
    if (Store->degraded())
      std::fprintf(stderr,
                   "warning: verdict store degraded to in-memory-only (%s); "
                   "results above are unaffected\n",
                   Store->stats().DegradedReason.c_str());
    std::printf("verdict store: %llu hits, %llu misses, %llu new records "
                "(%zu resident)\n",
                static_cast<unsigned long long>(SS.Hits),
                static_cast<unsigned long long>(SS.Misses),
                static_cast<unsigned long long>(SS.Writes), Store->size());
  }

  if (!TracePath.empty()) {
    bool Ok = StreamEvery
                  ? TraceRecorder::instance().finishStream()
                  : TraceRecorder::instance().writeJsonl(
                        TracePath, &MetricsRegistry::global());
    if (Ok)
      std::printf("wrote trace: %s  (render: tools/report %s)\n",
                  TracePath.c_str(), TracePath.c_str());
    else {
      std::fprintf(stderr, "error: could not write %s\n", TracePath.c_str());
      return 1;
    }
  }
  if (!ChromePath.empty()) {
    if (TraceRecorder::instance().writeChromeTrace(ChromePath))
      std::printf("wrote chrome trace: %s  (open in chrome://tracing)\n",
                  ChromePath.c_str());
    else {
      std::fprintf(stderr, "error: could not write %s\n", ChromePath.c_str());
      return 1;
    }
  }
  return 0;
}
