//===- quickstart.cpp - Parse, optimize, verify, measure --------------------===//
//
// The 60-second tour of the library's public API:
//   1. parse a textual IR function,
//   2. run the reference peephole pipeline (the -instcombine stand-in),
//   3. formally verify the transformation with the Alive-lite validator,
//   4. compare the three cost metrics the paper reports.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opt/Pass.h"
#include "verify/AliveLite.h"

#include <cstdio>

using namespace veriopt;

int main() {
  // 1. Parse. The dialect accepts LLVM-flavoured text, including typed
  //    pointers and struct GEPs from older LLVM versions.
  const char *Input = R"(
define i32 @checksum(i32 %x, i32 %key) {
  %slot = alloca i32
  store i32 %x, ptr %slot
  %v = load i32, ptr %slot
  %enc = xor i32 %v, %key
  %dec = xor i32 %enc, %key
  %scaled = mul i32 %dec, 8
  %trimmed = udiv i32 %scaled, 4
  %r = add i32 %trimmed, 0
  ret i32 %r
}
)";
  auto M = parseModule(Input);
  if (!M) {
    std::printf("parse error: %s\n", M.error().render().c_str());
    return 1;
  }
  Function *F = M.value()->getMainFunction();
  std::printf("== input ==\n%s\n", printFunction(*F).c_str());

  // 2. Optimize a clone with the reference pipeline, recording which
  //    peephole rules fired.
  auto Optimized = F->clone();
  PassTrace Trace;
  runReferencePipeline(*Optimized, &Trace);
  std::printf("== optimized ==\n%s\n", printFunction(*Optimized).c_str());
  std::printf("rules fired:");
  for (const auto &Rule : Trace.Applied)
    std::printf(" %s", Rule.c_str());
  std::printf("\n\n");

  // 3. Formally verify the transformation (bounded translation validation:
  //    falsification pre-pass, then SMT refinement proof).
  VerifyResult VR = verifyRefinement(*F, *Optimized);
  std::printf("== verification ==\n%s\n", VR.Diagnostic.c_str());
  if (!VR.equivalent())
    return 1;

  // 4. The paper's three efficiency metrics.
  std::printf("== metrics ==\n");
  std::printf("latency:  %5.1f -> %5.1f cycles (%.2fx)\n",
              estimateLatency(*F), estimateLatency(*Optimized),
              estimateLatency(*F) / estimateLatency(*Optimized));
  std::printf("icount:   %5u -> %5u instructions\n", instructionCount(*F),
              instructionCount(*Optimized));
  std::printf("binsize:  %5u -> %5u bytes\n", binarySize(*F),
              binarySize(*Optimized));
  return 0;
}
