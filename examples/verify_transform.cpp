//===- verify_transform.cpp - Using the Alive-lite validator directly -------===//
//
// Demonstrates the verification workflow the RL reward is built on: check
// candidate rewrites (as IR text, the way an LLM emits them) against a
// source function and inspect the four-way outcome taxonomy plus the
// diagnostic text that gets folded back into training prompts.
//
// Build & run:  ./build/examples/verify_transform
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "verify/AliveLite.h"

#include <cstdio>

using namespace veriopt;

namespace {

void check(const Function &Src, const char *Label, const char *Candidate) {
  VerifyResult R = verifyCandidateText(Src, Candidate);
  const char *Status = "";
  switch (R.Status) {
  case VerifyStatus::Equivalent:
    Status = "EQUIVALENT";
    break;
  case VerifyStatus::NotEquivalent:
    Status = "NOT EQUIVALENT (semantic error)";
    break;
  case VerifyStatus::SyntaxError:
    Status = "SYNTAX ERROR";
    break;
  case VerifyStatus::Inconclusive:
    Status = "INCONCLUSIVE";
    break;
  }
  std::printf("[%s] %s  (category: %s%s%s)\n", Label, Status,
              diagKindName(R.Kind),
              R.FoundByFalsification ? ", found by concrete testing" : "",
              R.BoundedOnly ? ", bounded proof" : "");
  std::printf("%s\n", R.Diagnostic.c_str());
}

} // namespace

int main() {
  const char *Source = R"(
define i32 @clamp_add(i32 %x) {
  %big = icmp sgt i32 %x, 100
  br i1 %big, label %cap, label %grow
cap:
  br label %out
grow:
  %sum = add i32 %x, 10
  br label %out
out:
  %r = phi i32 [ 100, %cap ], [ %sum, %grow ]
  ret i32 %r
}
)";
  auto M = parseModule(Source);
  if (!M) {
    std::printf("parse error: %s\n", M.error().render().c_str());
    return 1;
  }
  Function *Src = M.value()->getMainFunction();

  // A correct rewrite: the diamond becomes a select.
  check(*Src, "select rewrite", R"(
define i32 @clamp_add(i32 %x) {
  %big = icmp sgt i32 %x, 100
  %sum = add i32 %x, 10
  %r = select i1 %big, i32 100, i32 %sum
  ret i32 %r
}
)");

  // A subtly wrong rewrite: the predicate is off by one.
  check(*Src, "off-by-one predicate", R"(
define i32 @clamp_add(i32 %x) {
  %big = icmp sgt i32 %x, 101
  %sum = add i32 %x, 10
  %r = select i1 %big, i32 100, i32 %sum
  ret i32 %r
}
)");

  // A poison-introducing rewrite. Note the subtlety: adding nsw to %sum
  // inside the *select* form would still verify, because the overflowing
  // arm is only selected when %x <= 100. Poison must be observable to be a
  // bug, so we demonstrate on an unconditional add instead.
  {
    auto M2 = parseModule("define i32 @bump(i32 %x) {\n"
                          "  %r = add i32 %x, 10\n  ret i32 %r\n}\n");
    check(*M2.value()->getMainFunction(), "unjustified nsw",
          "define i32 @bump(i32 %x) {\n"
          "  %r = add nsw i32 %x, 10\n  ret i32 %r\n}\n");
  }

  // A hallucinated output (the Table-I syntax-error class).
  check(*Src, "hallucination",
        "define i32 @clamp_add(i32 %x) {\n  %r = add i32 %x, %undefined\n"
        "  ret i32 %r\n");
  return 0;
}
