//===- InterpreterTest.cpp - Concrete execution semantics -----------------===//

#include "interp/Interpreter.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

ExecResult run(const char *Src, std::vector<APInt64> Args = {}) {
  auto M = parseModule(Src);
  EXPECT_TRUE(M.hasValue()) << M.error().render();
  return interpret(*M.value()->getMainFunction(), Args);
}

TEST(Interpreter, Arithmetic) {
  auto R = run("define i32 @f(i32 %a, i32 %b) {\n"
               "  %s = add i32 %a, %b\n  %m = mul i32 %s, 3\n"
               "  ret i32 %m\n}\n",
               {APInt64(32, 4), APInt64(32, 5)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.RetVal.zext(), 27u);
  EXPECT_FALSE(R.RetPoison);
}

TEST(Interpreter, BranchesAndPhi) {
  const char *Src = R"(
define i32 @abs(i32 %x) {
  %neg = icmp slt i32 %x, 0
  br i1 %neg, label %flip, label %keep
flip:
  %m = sub i32 0, %x
  br label %join
keep:
  br label %join
join:
  %r = phi i32 [ %m, %flip ], [ %x, %keep ]
  ret i32 %r
}
)";
  EXPECT_EQ(run(Src, {APInt64::fromSigned(32, -9)}).RetVal.zext(), 9u);
  EXPECT_EQ(run(Src, {APInt64(32, 9)}).RetVal.zext(), 9u);
}

TEST(Interpreter, LoopComputesSum) {
  const char *Src = R"(
define i32 @sum(i32 %n) {
entryblk:
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %ni, %body ]
  %acc = phi i32 [ 0, %entryblk ], [ %nacc, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %ni = add i32 %i, 1
  %nacc = add i32 %acc, %ni
  br label %head
done:
  ret i32 %acc
}
)";
  EXPECT_EQ(run(Src, {APInt64(32, 10)}).RetVal.zext(), 55u);
  EXPECT_EQ(run(Src, {APInt64(32, 0)}).RetVal.zext(), 0u);
}

TEST(Interpreter, InfiniteLoopTimesOut) {
  auto R = run("define void @f() {\nentryblk:\n  br label %entryblk\n}\n");
  EXPECT_EQ(R.St, ExecResult::Timeout);
}

TEST(Interpreter, MemoryZeroInitAndByteAccess) {
  // Fig. 8 shape: two i32 stores into an i64 slot, load the whole i64.
  const char *Src = R"(
define i64 @get_d() {
  %s = alloca i64
  store i32 305419896, ptr %s
  %hi = getelementptr i8, ptr %s, i64 4
  store i32 -559038737, ptr %hi
  %v = load i64, ptr %s
  ret i64 %v
}
)";
  auto R = run(Src);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.RetVal.zext(), 0xDEADBEEF12345678ull);
}

TEST(Interpreter, AllocaIsZeroInitialized) {
  auto R = run("define i32 @f() {\n  %s = alloca i32\n"
               "  %v = load i32, ptr %s\n  ret i32 %v\n}\n");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.RetVal.zext(), 0u);
  EXPECT_FALSE(R.RetPoison);
}

TEST(Interpreter, OutOfBoundsStoreIsUB) {
  auto R = run("define void @f() {\n  %s = alloca i32\n"
               "  %p = getelementptr i8, ptr %s, i64 4\n"
               "  store i32 1, ptr %p\n  ret void\n}\n");
  EXPECT_EQ(R.St, ExecResult::UndefinedBehavior);
  EXPECT_NE(R.Reason.find("out-of-bounds"), std::string::npos);
}

TEST(Interpreter, DivisionByZeroIsUB) {
  auto R = run("define i32 @f(i32 %a, i32 %b) {\n"
               "  %q = sdiv i32 %a, %b\n  ret i32 %q\n}\n",
               {APInt64(32, 5), APInt64(32, 0)});
  EXPECT_EQ(R.St, ExecResult::UndefinedBehavior);
}

TEST(Interpreter, SignedDivOverflowIsUB) {
  auto R = run("define i32 @f(i32 %a) {\n  %q = sdiv i32 %a, -1\n"
               "  ret i32 %q\n}\n",
               {APInt64::signedMin(32)});
  EXPECT_EQ(R.St, ExecResult::UndefinedBehavior);
}

TEST(Interpreter, NSWOverflowMakesPoison) {
  auto R = run("define i32 @f(i32 %a) {\n  %s = add nsw i32 %a, 1\n"
               "  ret i32 %s\n}\n",
               {APInt64::signedMax(32)});
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.RetPoison);
  // Without nsw the same computation is well-defined.
  auto R2 = run("define i32 @f(i32 %a) {\n  %s = add i32 %a, 1\n"
                "  ret i32 %s\n}\n",
                {APInt64::signedMax(32)});
  EXPECT_FALSE(R2.RetPoison);
}

TEST(Interpreter, BranchOnPoisonIsUB) {
  auto R = run(R"(
define i32 @f(i32 %a) {
  %s = add nsw i32 %a, 1
  %c = icmp eq i32 %s, 0
  br i1 %c, label %t, label %e
t:
  ret i32 1
e:
  ret i32 2
}
)",
               {APInt64::signedMax(32)});
  EXPECT_EQ(R.St, ExecResult::UndefinedBehavior);
  EXPECT_NE(R.Reason.find("poison"), std::string::npos);
}

TEST(Interpreter, PoisonFlowsThroughMemory) {
  auto R = run(R"(
define i32 @f(i32 %a) {
  %slot = alloca i32
  %s = add nsw i32 %a, 1
  store i32 %s, ptr %slot
  %v = load i32, ptr %slot
  ret i32 %v
}
)",
               {APInt64::signedMax(32)});
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.RetPoison);
}

TEST(Interpreter, ShiftOutOfRangeIsPoison) {
  auto R = run("define i32 @f(i32 %a, i32 %s) {\n"
               "  %r = shl i32 %a, %s\n  ret i32 %r\n}\n",
               {APInt64(32, 1), APInt64(32, 40)});
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.RetPoison);
}

TEST(Interpreter, SelectOnPoisonIsPoisonNotUB) {
  auto R = run(R"(
define i32 @f(i32 %a) {
  %s = add nsw i32 %a, 1
  %c = icmp eq i32 %s, 0
  %r = select i1 %c, i32 1, i32 2
  ret i32 %r
}
)",
               {APInt64::signedMax(32)});
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.RetPoison);
}

TEST(Interpreter, ExactFlagPoison) {
  auto Exact = run("define i32 @f(i32 %a) {\n"
                   "  %r = lshr exact i32 %a, 1\n  ret i32 %r\n}\n",
                   {APInt64(32, 3)});
  ASSERT_TRUE(Exact.ok());
  EXPECT_TRUE(Exact.RetPoison);
  auto Clean = run("define i32 @f(i32 %a) {\n"
                   "  %r = lshr exact i32 %a, 1\n  ret i32 %r\n}\n",
                   {APInt64(32, 4)});
  EXPECT_FALSE(Clean.RetPoison);
  EXPECT_EQ(Clean.RetVal.zext(), 2u);
}

TEST(Interpreter, CallsAreDeterministicAndLogged) {
  const char *Src = R"(
declare i32 @osc(i32)
define i32 @f(i32 %x) {
  %a = call i32 @osc(i32 %x)
  %b = call i32 @osc(i32 %x)
  %s = add i32 %a, %b
  ret i32 %s
}
)";
  auto R1 = run(Src, {APInt64(32, 7)});
  auto R2 = run(Src, {APInt64(32, 7)});
  ASSERT_TRUE(R1.ok());
  ASSERT_EQ(R1.Calls.size(), 2u);
  EXPECT_EQ(R1.RetVal.zext(), R2.RetVal.zext());
  // Same args but different occurrence index => independent return values.
  EXPECT_NE(R1.Calls[0].ReturnBits, R1.Calls[1].ReturnBits);
}

TEST(Interpreter, PointerArgsUnsupported) {
  auto R = run("define i32 @f(ptr %p) {\n  %v = load i32, ptr %p\n"
               "  ret i32 %v\n}\n",
               {});
  EXPECT_EQ(R.St, ExecResult::Unsupported);
}

TEST(Interpreter, DynamicLatencyCountsExecutedOps) {
  const char *Src = R"(
define i32 @f(i1 %c) {
  br i1 %c, label %slow, label %fast
slow:
  %q = sdiv i32 100, 7
  br label %join
fast:
  br label %join
join:
  %r = phi i32 [ %q, %slow ], [ 0, %fast ]
  ret i32 %r
}
)";
  auto Slow = run(Src, {APInt64(1, 1)});
  auto Fast = run(Src, {APInt64(1, 0)});
  ASSERT_TRUE(Slow.ok());
  ASSERT_TRUE(Fast.ok());
  EXPECT_GT(dynamicLatency(Slow), dynamicLatency(Fast));
}

TEST(Interpreter, CastRoundTrips) {
  auto R = run("define i64 @f(i8 %x) {\n  %w = sext i8 %x to i64\n"
               "  ret i64 %w\n}\n",
               {APInt64::fromSigned(8, -5)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.RetVal.sext(), -5);
  auto Z = run("define i64 @f(i8 %x) {\n  %w = zext i8 %x to i64\n"
               "  ret i64 %w\n}\n",
               {APInt64::fromSigned(8, -5)});
  EXPECT_EQ(Z.RetVal.zext(), 251u);
}

} // namespace
} // namespace veriopt
