//===- TraceTest.cpp - TraceRecorder + sink tests --------------------------===//
//
// Covers the tentpole contracts: the determinism plane (same seed, any
// thread count => identical multiset of (Name, Phase, Args)), JSONL writer
// escaping and failure atomicity, and the Chrome exporter.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "rl/Trainer.h"
#include "support/IoEnv.h"
#include "support/ThreadPool.h"
#include "trace/Json.h"
#include "trace/Metrics.h"
#include "report/TraceData.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace veriopt {
namespace {

/// Deterministic-plane key of one event: name, phase, and args — exactly
/// the fields the cross-thread-count contract covers (no ts/dur/tid/seq,
/// no meta).
std::string detKey(const TraceEvent &E) {
  std::string K = E.Name;
  K.push_back('|');
  K.push_back(static_cast<char>(E.Phase));
  for (const TraceArg &A : E.Args) {
    K.push_back('|');
    K += A.Key;
    K.push_back('=');
    switch (A.K) {
    case TraceArg::Kind::Int:
    case TraceArg::Kind::Bool:
      K += std::to_string(A.I);
      break;
    case TraceArg::Kind::Float:
      K += jsonNumber(A.F);
      break;
    case TraceArg::Kind::Str:
      K += A.S;
      break;
    }
  }
  return K;
}

std::multiset<std::string> detMultiset(const std::vector<TraceEvent> &Evs) {
  std::multiset<std::string> Out;
  for (const TraceEvent &E : Evs)
    Out.insert(detKey(E));
  return Out;
}

const Dataset &tinyDataset() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 8;
    O.ValidCount = 0;
    O.Seed = 33;
    return buildDataset(O);
  }();
  return DS;
}

/// One short traced GRPO run at the given thread count; cache off so the
/// event stream depends only on the (deterministic) verification work.
std::vector<TraceEvent> tracedRun(unsigned Threads) {
  // Build the (static) dataset before enabling the recorder, so its own
  // InstCombine rule fires don't leak into only the first traced run.
  const Dataset &DS = tinyDataset();

  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  R.enable();

  RewritePolicyModel Model(presetQwen3B());
  VerifyOptions V;
  V.FalsifyTrials = 8;
  GRPOOptions G;
  G.GroupSize = 4;
  G.PromptsPerStep = 2;
  G.Seed = 17;
  G.Threads = Threads;
  G.TraceLabel = "stage1";
  RewardFn Reward = [V](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, V);
    RolloutScore Sc;
    Sc.Reward = B.Total;
    Sc.Equivalent = B.Equivalent;
    Sc.IsCopy = B.IsCopy;
    Sc.AnswerVerify = B.Verify;
    return Sc;
  };
  GRPOTrainer Trainer(Model, Reward, G);
  Trainer.train(DS.Train, 3);

  R.disable();
  std::vector<TraceEvent> Out = R.snapshot();
  R.clear();
  return Out;
}

TEST(Trace, DisabledRecordsNothing) {
  TraceRecorder &R = TraceRecorder::instance();
  R.disable();
  R.clear();
  { TRACE_SPAN("verify.encode"); }
  R.instant("verify.tier", {TraceArg::ofInt("tier", 0)});
  EXPECT_EQ(R.eventCount(), 0u);
}

TEST(Trace, SpanRecordsArgsAndDuration) {
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  R.enable();
  {
    TraceSpan S("grpo.step");
    ASSERT_TRUE(S.active());
    S.arg(TraceArg::ofInt("step", 3));
    S.meta(TraceArg::ofFloat("score_wall_ms", 1.5));
  }
  R.disable();
  std::vector<TraceEvent> Evs = R.snapshot();
  R.clear();
  ASSERT_EQ(Evs.size(), 1u);
  EXPECT_EQ(Evs[0].Name, "grpo.step");
  EXPECT_EQ(Evs[0].Phase, TracePhase::Complete);
  ASSERT_EQ(Evs[0].Args.size(), 1u);
  EXPECT_EQ(Evs[0].Args[0].Key, "step");
  ASSERT_EQ(Evs[0].Meta.size(), 1u);
  EXPECT_EQ(Evs[0].Meta[0].Key, "score_wall_ms");
}

TEST(Trace, DeterministicEventMultisetAcrossThreadCounts) {
  // The tentpole guarantee: for a fixed seed the multiset of
  // (Name, Phase, Args) is identical at any thread count. Timing fields
  // and Meta may differ arbitrarily; scheduling must not leak into Args.
  std::multiset<std::string> Serial = detMultiset(tracedRun(1));
  std::multiset<std::string> Threaded = detMultiset(tracedRun(4));
  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Threaded);

  // Sanity: the run actually exercised the instrumented layers.
  auto CountPrefix = [&](const std::string &P) {
    return std::count_if(Serial.begin(), Serial.end(),
                         [&](const std::string &K) {
                           return K.compare(0, P.size(), P) == 0;
                         });
  };
  EXPECT_EQ(CountPrefix("grpo.step|"), 3);
  EXPECT_EQ(CountPrefix("grpo.score|"), 3);
  EXPECT_GT(CountPrefix("verify.candidate|"), 0);
}

TEST(Trace, JsonlEscapingRoundTrips) {
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  R.enable();
  const std::string Nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  R.instant("verify.tier", {TraceArg::ofStr("status", Nasty),
                            TraceArg::ofInt("tier", 1)});
  R.disable();

  const std::string Path = ::testing::TempDir() + "trace_escape.jsonl";
  ASSERT_TRUE(R.writeJsonl(Path));
  R.clear();

  TraceLog Log;
  std::string Err;
  ASSERT_TRUE(loadTraceJsonl(Path, Log, &Err)) << Err;
  ASSERT_EQ(Log.Events.size(), 1u);
  const JsonValue *Status = Log.Events[0].get("args")->get("status");
  ASSERT_NE(Status, nullptr);
  EXPECT_EQ(Status->str(), Nasty);
  std::remove(Path.c_str());
}

TEST(Trace, JsonlWriteFailureLeavesOldFileIntact) {
  // Atomic write-then-rename: a failed write must not clobber the previous
  // trace, and must not leave a stray .tmp behind.
  const std::string Dir = ::testing::TempDir();
  const std::string Path = Dir + "trace_atomic.jsonl";
  {
    std::ofstream OS(Path);
    OS << "previous contents\n";
  }
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  R.enable();
  R.instant("verify.tier", {TraceArg::ofInt("tier", 0)});
  R.disable();

  const std::string Bad = Dir + "no_such_dir_xyz/trace.jsonl";
  EXPECT_FALSE(R.writeJsonl(Bad));

  // Success path replaces atomically and cleans up the temp file.
  ASSERT_TRUE(R.writeJsonl(Path));
  R.clear();
  std::ifstream IS(Path);
  std::string First;
  std::getline(IS, First);
  EXPECT_NE(First, "previous contents");
  EXPECT_FALSE(std::ifstream(Path + ".tmp").good());
  std::remove(Path.c_str());
}

TEST(Trace, MetricsLinesAppendedAndSchemaValid) {
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  R.enable();
  R.instant("verify.tier", {TraceArg::ofInt("tier", 0),
                            TraceArg::ofStr("status", "equivalent"),
                            TraceArg::ofStr("diag", "none")});
  R.disable();

  MetricsRegistry M;
  M.counter("verify.cache.hit").inc(7);
  M.histogram("verify.conflicts", {1.0, 4.0}).observe(2.0);

  const std::string Path = ::testing::TempDir() + "trace_metrics.jsonl";
  ASSERT_TRUE(R.writeJsonl(Path, &M));
  R.clear();

  TraceLog Log;
  std::string Err;
  ASSERT_TRUE(loadTraceJsonl(Path, Log, &Err)) << Err;
  ASSERT_TRUE(validateTraceLog(Log, &Err)) << Err;
  ASSERT_EQ(Log.Events.size(), 3u); // tier + metric + metric.hist
  bool SawCounter = false, SawHist = false;
  for (const JsonValue &E : Log.Events) {
    if (E.get("name")->str() == "metric") {
      SawCounter = true;
      EXPECT_EQ(E.get("args")->get("key")->str(), "verify.cache.hit");
      EXPECT_DOUBLE_EQ(E.get("args")->get("value")->number(), 7.0);
    } else if (E.get("name")->str() == "metric.hist") {
      SawHist = true;
      EXPECT_EQ(E.get("args")->get("key")->str(), "verify.conflicts");
      EXPECT_DOUBLE_EQ(E.get("args")->get("count")->number(), 1.0);
    }
  }
  EXPECT_TRUE(SawCounter);
  EXPECT_TRUE(SawHist);
  std::remove(Path.c_str());
}

TEST(Trace, ChromeExportIsLoadableJson) {
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  R.enable();
  {
    TraceSpan S("verify.encode");
    S.arg(TraceArg::ofInt("n", 1));
  }
  R.instant("verify.tier", {TraceArg::ofInt("tier", 2)});
  R.disable();

  const std::string Path = ::testing::TempDir() + "trace_chrome.json";
  ASSERT_TRUE(R.writeChromeTrace(Path));
  R.clear();

  std::ifstream IS(Path);
  std::stringstream SS;
  SS << IS.rdbuf();
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson(SS.str(), V, &Err)) << Err;
  const JsonValue *Evs = V.get("traceEvents");
  ASSERT_NE(Evs, nullptr);
  ASSERT_EQ(Evs->array().size(), 2u);
  const JsonValue &Span = Evs->array()[0];
  EXPECT_EQ(Span.get("ph")->str(), "X");
  EXPECT_NE(Span.get("dur"), nullptr); // microseconds, Chrome field name
  EXPECT_NE(Span.get("pid"), nullptr);
  std::remove(Path.c_str());
}

TEST(Trace, SnapshotOrderedByTidThenSeq) {
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  R.enable();
  for (int I = 0; I < 5; ++I)
    R.instant("verify.tier", {TraceArg::ofInt("tier", I)});
  R.disable();
  std::vector<TraceEvent> Evs = R.snapshot();
  R.clear();
  ASSERT_EQ(Evs.size(), 5u);
  for (size_t I = 1; I < Evs.size(); ++I) {
    bool Ordered = Evs[I - 1].Tid < Evs[I].Tid ||
                   (Evs[I - 1].Tid == Evs[I].Tid &&
                    Evs[I - 1].Seq < Evs[I].Seq);
    EXPECT_TRUE(Ordered) << "snapshot not sorted at index " << I;
  }
}

//===--- Streaming sink ------------------------------------------------------===//

std::string slurp(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  std::stringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

TEST(Trace, StreamedFileByteIdenticalToBufferedSink) {
  // The same recorded events, written once through the buffered sink and
  // once through the streaming sink, must produce byte-identical files —
  // metric lines included.
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  R.enable();
  for (int I = 0; I < 7; ++I)
    R.instant("verify.tier", {TraceArg::ofInt("tier", I),
                              TraceArg::ofStr("status", "equivalent"),
                              TraceArg::ofStr("diag", "none")});
  {
    TraceSpan S("verify.encode");
    S.arg(TraceArg::ofInt("n", 3));
  }
  R.disable();

  MetricsRegistry M;
  M.counter("store.hits").inc(5);

  const std::string Buffered = ::testing::TempDir() + "trace_buf.jsonl";
  ASSERT_TRUE(R.writeJsonl(Buffered, &M)); // does not consume the buffers

  const std::string Streamed = ::testing::TempDir() + "trace_stream.jsonl";
  ASSERT_TRUE(R.streamTo(Streamed, &M));
  ASSERT_TRUE(R.flushStream()); // drains the very same events
  ASSERT_TRUE(R.finishStream());

  EXPECT_EQ(slurp(Buffered), slurp(Streamed));
  EXPECT_FALSE(std::ifstream(Streamed + ".stream").good())
      << "publish must rename the in-progress file away";
  std::remove(Buffered.c_str());
  std::remove(Streamed.c_str());
}

TEST(Trace, StreamingAutoFlushBoundsMemory) {
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  const std::string Path = ::testing::TempDir() + "trace_autoflush.jsonl";
  ASSERT_TRUE(R.streamTo(Path));
  R.flushEvery(3);
  R.enable();
  for (int I = 0; I < 8; ++I)
    R.instant("verify.tier", {TraceArg::ofInt("tier", I)});
  R.disable();

  // Every completed batch of 3 was drained to disk as it filled: the
  // resident buffers hold only the tail, and the in-progress file already
  // carries the flushed prefix.
  EXPECT_LT(R.eventCount(), 8u);
  std::string Partial = slurp(Path + ".stream");
  size_t PartialLines = std::count(Partial.begin(), Partial.end(), '\n');
  EXPECT_GE(PartialLines, 6u);

  ASSERT_TRUE(R.finishStream());
  R.flushEvery(4096); // restore the default for later tests
  EXPECT_EQ(R.eventCount(), 0u);
  std::string Final = slurp(Path);
  EXPECT_EQ(std::count(Final.begin(), Final.end(), '\n'), 8);
  std::remove(Path.c_str());
}

TEST(Trace, StreamingKeepsEventMultisetUnderConcurrency) {
  // Concurrent emitters + mid-run drains: interleaving may differ from the
  // buffered sink, but the deterministic multiset must survive intact, and
  // the published file must be schema-valid.
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  const std::string Path = ::testing::TempDir() + "trace_mt_stream.jsonl";
  ASSERT_TRUE(R.streamTo(Path));
  R.flushEvery(5);
  R.enable();
  {
    ThreadPool Pool(4);
    Pool.parallelFor(64, [&](size_t I) {
      R.instant("verify.tier",
                {TraceArg::ofInt("tier", static_cast<int64_t>(I)),
                 TraceArg::ofStr("status", "equivalent"),
                 TraceArg::ofStr("diag", "none")});
    });
  }
  R.disable();
  ASSERT_TRUE(R.finishStream());
  R.flushEvery(4096);

  TraceLog Log;
  std::string Err;
  ASSERT_TRUE(loadTraceJsonl(Path, Log, &Err)) << Err;
  ASSERT_TRUE(validateTraceLog(Log, &Err)) << Err;
  ASSERT_EQ(Log.Events.size(), 64u);
  std::multiset<int64_t> Tiers;
  for (const JsonValue &E : Log.Events)
    Tiers.insert(static_cast<int64_t>(E.get("args")->get("tier")->number()));
  std::multiset<int64_t> Want;
  for (int64_t I = 0; I < 64; ++I)
    Want.insert(I);
  EXPECT_EQ(Tiers, Want);
  std::remove(Path.c_str());
}

TEST(Trace, StreamToUnwritablePathFailsCleanly) {
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  EXPECT_FALSE(R.streamTo("/no_such_dir_xyz/trace.jsonl"));
  EXPECT_FALSE(R.streaming());
  // finishStream with no active stream is a harmless no-op.
  EXPECT_TRUE(R.finishStream());
}

//===--- Streaming sink under I/O faults --------------------------------------===//

TEST(Trace, StreamPublishFailureIsRetryableWithStreamIntact) {
  // A failed final rename must not lose the run: ".stream" stays on disk,
  // loadable, and a later finishStream() (disk recovered) publishes the
  // identical file — with the metrics appended exactly once, not once per
  // attempt.
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  MetricsRegistry M;
  M.counter("test.publish_retry").inc(7);
  const std::string Path = ::testing::TempDir() + "trace_pubfail.jsonl";
  ASSERT_TRUE(R.streamTo(Path, &M));
  R.enable();
  for (int I = 0; I < 5; ++I)
    R.instant("verify.tier", {TraceArg::ofInt("tier", I),
                              TraceArg::ofStr("status", "equivalent"),
                              TraceArg::ofStr("diag", "none")});
  R.disable();

  FaultInjector FI(31);
  FI.enable(FaultSite::IoRename, 1.0);
  FaultyIoEnv Env(FI);
  {
    ScopedIoEnv Install(&Env);
    EXPECT_FALSE(R.finishStream());
  }
  EXPECT_TRUE(std::ifstream(Path + ".stream").good())
      << "failed publish must leave the in-progress file on disk";

  ASSERT_TRUE(R.finishStream()); // disk healthy: the retry succeeds
  EXPECT_FALSE(std::ifstream(Path + ".stream").good());

  TraceLog Log;
  std::string Err;
  ASSERT_TRUE(loadTraceJsonl(Path, Log, &Err)) << Err;
  ASSERT_TRUE(validateTraceLog(Log, &Err)) << Err;
  EXPECT_EQ(Log.Events.size(), 6u); // 5 instants + 1 metric line
  std::string Text = slurp(Path);
  size_t First = Text.find("test.publish_retry");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Text.find("test.publish_retry", First + 1), std::string::npos)
      << "metrics were appended once per publish attempt";
  std::remove(Path.c_str());
}

TEST(Trace, StreamFailedAppendTailIsRepairedNotDuplicated) {
  // appendFileDurable can fail *after* its bytes hit the file (the fsync
  // fails): without the truncate repair a retried flush would duplicate
  // every record of the failed batch.
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  const std::string Path = ::testing::TempDir() + "trace_torntail.jsonl";
  ASSERT_TRUE(R.streamTo(Path));
  R.enable();
  for (int I = 0; I < 6; ++I)
    R.instant("verify.tier", {TraceArg::ofInt("tier", I),
                              TraceArg::ofStr("status", "equivalent"),
                              TraceArg::ofStr("diag", "none")});
  R.disable();

  FaultInjector FI(37);
  FI.enable(FaultSite::IoFsync, 1.0);
  FaultyIoEnv Env(FI);
  {
    ScopedIoEnv Install(&Env);
    EXPECT_FALSE(R.flushStream()); // payload written, fsync failed
  }
  EXPECT_FALSE(R.streamDegraded()); // one failure is not a trip
  EXPECT_TRUE(R.flushStream());     // retry appends the retained payload
  ASSERT_TRUE(R.finishStream());

  TraceLog Log;
  std::string Err;
  ASSERT_TRUE(loadTraceJsonl(Path, Log, &Err)) << Err;
  ASSERT_TRUE(validateTraceLog(Log, &Err)) << Err;
  EXPECT_EQ(Log.Events.size(), 6u) << "torn tail was retried into duplicates";
  std::remove(Path.c_str());
}

TEST(Trace, StreamDegradesToBufferedFallbackAfterPersistentFailures) {
  // Three consecutive failed appends trip the sink to accumulate-only; the
  // final publish then falls back to one atomic buffered write holding
  // every event exactly once plus the metrics. "Persistent I/O failure
  // costs the incremental-durability property, never the artifact."
  TraceRecorder &R = TraceRecorder::instance();
  R.clear();
  MetricsRegistry M;
  M.counter("test.fallback").inc(3);
  const std::string Path = ::testing::TempDir() + "trace_degraded.jsonl";
  ASSERT_TRUE(R.streamTo(Path, &M));
  R.enable();

  Counter &Failures =
      MetricsRegistry::global().counter("io.trace.append_failures");
  const double FailuresBefore = Failures.value();

  FaultInjector FI(39);
  FI.enable(FaultSite::IoWrite, 1.0);
  FaultyIoEnv Env(FI);
  {
    ScopedIoEnv Install(&Env);
    for (int I = 0; I < 12; ++I) {
      R.instant("verify.tier", {TraceArg::ofInt("tier", I),
                                TraceArg::ofStr("status", "equivalent"),
                                TraceArg::ofStr("diag", "none")});
      if (I % 4 == 3) {
        EXPECT_FALSE(R.flushStream());
      }
    }
    EXPECT_TRUE(R.streamDegraded()); // tripped on the third failure
    // Degraded flushes succeed immediately: events accumulate in memory.
    R.instant("verify.tier", {TraceArg::ofInt("tier", 12),
                              TraceArg::ofStr("status", "equivalent"),
                              TraceArg::ofStr("diag", "none")});
    EXPECT_TRUE(R.flushStream());
  }
  R.disable();
  EXPECT_EQ(Failures.value() - FailuresBefore, 3.0);

  // Disk healthy again: the degraded finish publishes everything at once.
  ASSERT_TRUE(R.finishStream());
  EXPECT_FALSE(R.streamDegraded()); // state resets with the stream
  EXPECT_FALSE(std::ifstream(Path + ".stream").good());

  TraceLog Log;
  std::string Err;
  ASSERT_TRUE(loadTraceJsonl(Path, Log, &Err)) << Err;
  ASSERT_TRUE(validateTraceLog(Log, &Err)) << Err;
  ASSERT_EQ(Log.Events.size(), 14u); // 13 instants + 1 metric line
  std::multiset<int64_t> Tiers;
  for (const JsonValue &E : Log.Events)
    if (const JsonValue *Args = E.get("args"))
      if (const JsonValue *T = Args->get("tier"))
        Tiers.insert(static_cast<int64_t>(T->number()));
  std::multiset<int64_t> Want;
  for (int64_t I = 0; I < 13; ++I)
    Want.insert(I);
  EXPECT_EQ(Tiers, Want) << "fallback lost or duplicated events";
  std::remove(Path.c_str());
}

} // namespace
} // namespace veriopt
