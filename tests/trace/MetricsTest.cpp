//===- MetricsTest.cpp - Counter/gauge/histogram registry tests ------------===//

#include "trace/Metrics.h"

#include "trace/Json.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace veriopt {
namespace {

TEST(Metrics, CounterBasics) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(Metrics, GaugeHoldsLastValue) {
  Gauge G;
  G.set(3.5);
  G.set(-1.25);
  EXPECT_DOUBLE_EQ(G.value(), -1.25);
  G.reset();
  EXPECT_DOUBLE_EQ(G.value(), 0.0);
}

TEST(Metrics, HistogramInclusiveUpperEdge) {
  // Prometheus `le` semantics: x lands in the first bucket whose bound
  // satisfies x <= bound; values above every bound go to the overflow
  // bucket.
  Histogram H({1.0, 10.0, 100.0});
  H.observe(1.0);    // == bound 0 -> bucket 0 (inclusive edge)
  H.observe(0.0);    // below everything -> bucket 0
  H.observe(-5.0);   // negative -> bucket 0
  H.observe(1.0001); // just past the edge -> bucket 1
  H.observe(10.0);   // == bound 1 -> bucket 1
  H.observe(100.0);  // == last bound -> bucket 2
  H.observe(100.5);  // past the last bound -> overflow bucket
  H.observe(1e18);   // far past -> overflow bucket

  std::vector<uint64_t> Counts = H.counts();
  ASSERT_EQ(Counts.size(), 4u); // 3 bounds + overflow
  EXPECT_EQ(Counts[0], 3u);
  EXPECT_EQ(Counts[1], 2u);
  EXPECT_EQ(Counts[2], 1u);
  EXPECT_EQ(Counts[3], 2u);
  EXPECT_EQ(H.count(), 8u);
}

TEST(Metrics, HistogramSumAndReset) {
  Histogram H({2.0});
  H.observe(1.0);
  H.observe(3.0);
  EXPECT_DOUBLE_EQ(H.sum(), 4.0);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.0);
  ASSERT_EQ(H.counts().size(), 2u);
  EXPECT_EQ(H.counts()[0], 0u);
  EXPECT_EQ(H.counts()[1], 0u);
}

TEST(Metrics, BoundFactoriesAreSortedAndNonEmpty) {
  for (const std::vector<double> &B : {latencyMsBounds(), workUnitBounds()}) {
    ASSERT_FALSE(B.empty());
    for (size_t I = 1; I < B.size(); ++I)
      EXPECT_LT(B[I - 1], B[I]);
  }
}

TEST(Metrics, RegistryReturnsSameInstrumentByName) {
  MetricsRegistry R;
  Counter &A = R.counter("x");
  Counter &B = R.counter("x");
  EXPECT_EQ(&A, &B);
  A.inc();
  EXPECT_EQ(B.value(), 1u);
  EXPECT_NE(&R.counter("y"), &A);
}

TEST(Metrics, ResetZeroesButKeepsRegistrations) {
  // The hot-path idiom caches `static Counter &C = ...counter("...")`;
  // reset() must zero values without invalidating those references.
  MetricsRegistry R;
  Counter &C = R.counter("c");
  Gauge &G = R.gauge("g");
  Histogram &H = R.histogram("h", {1.0});
  C.inc(5);
  G.set(2.0);
  H.observe(0.5);
  R.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_DOUBLE_EQ(G.value(), 0.0);
  EXPECT_EQ(H.count(), 0u);
  C.inc(); // the cached reference is still live and registered
  EXPECT_EQ(&R.counter("c"), &C);
  EXPECT_EQ(R.snapshot().Counters.at("c"), 1u);
}

TEST(Metrics, SnapshotAndJson) {
  MetricsRegistry R;
  R.counter("a.count").inc(3);
  R.gauge("b.rate").set(0.5);
  R.histogram("c.ms", {1.0, 2.0}).observe(1.5);

  MetricsRegistry::Snapshot S = R.snapshot();
  EXPECT_EQ(S.Counters.at("a.count"), 3u);
  EXPECT_DOUBLE_EQ(S.Gauges.at("b.rate"), 0.5);
  ASSERT_EQ(S.Histograms.at("c.ms").Counts.size(), 3u);
  EXPECT_EQ(S.Histograms.at("c.ms").Counts[1], 1u);

  // toJson round-trips through the in-tree parser.
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson(R.toJson(), V, &Err)) << Err;
  ASSERT_TRUE(V.isObject());
  EXPECT_DOUBLE_EQ(V.get("counters")->get("a.count")->number(), 3.0);
  EXPECT_DOUBLE_EQ(V.get("gauges")->get("b.rate")->number(), 0.5);
  const JsonValue *H = V.get("histograms")->get("c.ms");
  ASSERT_NE(H, nullptr);
  EXPECT_DOUBLE_EQ(H->get("count")->number(), 1.0);
  EXPECT_DOUBLE_EQ(H->get("sum")->number(), 1.5);
}

TEST(Metrics, ConcurrentIncrementsDoNotLose) {
  MetricsRegistry R;
  Counter &C = R.counter("hits");
  Histogram &H = R.histogram("lat", {10.0});
  constexpr int Threads = 8, PerThread = 5000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        C.inc();
        H.observe(static_cast<double>(I % 20));
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(H.count(), static_cast<uint64_t>(Threads) * PerThread);
}

} // namespace
} // namespace veriopt
