//===- BVExprTest.cpp - Term construction, folding, evaluation ------------===//

#include "smt/BVExpr.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(BVExpr, HashConsing) {
  BVContext C;
  const BVExpr *X = C.var(32, "x");
  const BVExpr *Y = C.var(32, "y");
  EXPECT_EQ(C.add(X, Y), C.add(X, Y));
  EXPECT_NE(C.add(X, Y), C.add(Y, X)); // add is not canonicalized over vars
  EXPECT_EQ(C.constant(32, 5), C.constant(32, 5));
}

TEST(BVExpr, ConstantFolding) {
  BVContext C;
  EXPECT_TRUE(C.add(C.constant(32, 2), C.constant(32, 3))->isConst(5));
  EXPECT_TRUE(C.mul(C.constant(8, 16), C.constant(8, 16))->isConst(0));
  EXPECT_TRUE(C.eq(C.constant(16, 7), C.constant(16, 7))->isTrue());
  EXPECT_TRUE(C.ult(C.constant(8, 200), C.constant(8, 100))->isFalse());
  EXPECT_TRUE(
      C.slt(C.constant(8, 200), C.constant(8, 100))->isTrue()); // -56 < 100
}

TEST(BVExpr, IdentitySimplifications) {
  BVContext C;
  const BVExpr *X = C.var(32, "x");
  const BVExpr *Zero = C.constant(32, 0);
  EXPECT_EQ(C.add(X, Zero), X);
  EXPECT_EQ(C.sub(X, Zero), X);
  EXPECT_TRUE(C.sub(X, X)->isConst(0));
  EXPECT_TRUE(C.mul(X, Zero)->isConst(0));
  EXPECT_EQ(C.mul(X, C.constant(32, 1)), X);
  EXPECT_TRUE(C.bvxor(X, X)->isConst(0));
  EXPECT_EQ(C.bvand(X, X), X);
  EXPECT_EQ(C.bvnot(C.bvnot(X)), X);
  EXPECT_EQ(C.neg(C.neg(X)), X);
  EXPECT_TRUE(C.eq(X, X)->isTrue());
  EXPECT_TRUE(C.ult(X, X)->isFalse());
  EXPECT_TRUE(C.ult(X, Zero)->isFalse());
  EXPECT_EQ(C.shl(X, Zero), X);
}

TEST(BVExpr, BooleanIteSimplifications) {
  BVContext C;
  const BVExpr *P = C.var(1, "p");
  const BVExpr *X = C.var(32, "x");
  const BVExpr *Y = C.var(32, "y");
  EXPECT_EQ(C.ite(C.trueVal(), X, Y), X);
  EXPECT_EQ(C.ite(C.falseVal(), X, Y), Y);
  EXPECT_EQ(C.ite(P, X, X), X);
  EXPECT_EQ(C.ite(P, C.trueVal(), C.falseVal()), P);
  EXPECT_EQ(C.ite(P, C.falseVal(), C.trueVal()), C.bvnot(P));
}

TEST(BVExpr, ExtractConcatCollapse) {
  BVContext C;
  const BVExpr *X = C.var(64, "x");
  // Store-then-load shape: split a 64-bit value into bytes, reconcatenate.
  std::vector<const BVExpr *> Bytes;
  for (unsigned B = 0; B < 8; ++B)
    Bytes.push_back(C.extract(X, B * 8, 8));
  const BVExpr *Whole = Bytes[7];
  for (int B = 6; B >= 0; --B)
    Whole = C.concat(Whole, Bytes[B]);
  EXPECT_EQ(Whole, X) << "byte split+merge must collapse to the source";
}

TEST(BVExpr, ExtractThroughZext) {
  BVContext C;
  const BVExpr *X = C.var(16, "x");
  const BVExpr *Wide = C.zext(X, 64);
  EXPECT_EQ(C.extract(Wide, 0, 16), X);
  EXPECT_EQ(C.trunc(Wide, 16), X);
}

TEST(BVExpr, EvaluateMatchesAPIntSemantics) {
  BVContext C;
  RNG R(77);
  const BVExpr *X = C.var(32, "x");
  const BVExpr *Y = C.var(32, "y");
  for (int Trial = 0; Trial < 200; ++Trial) {
    APInt64 XV(32, R.next()), YV(32, R.next());
    std::unordered_map<unsigned, APInt64> M = {{X->VarId, XV},
                                               {Y->VarId, YV}};
    EXPECT_EQ(C.evaluate(C.add(X, Y), M), XV.add(YV));
    EXPECT_EQ(C.evaluate(C.bvxor(X, Y), M), XV.xorOp(YV));
    EXPECT_EQ(C.evaluate(C.shl(X, Y), M), XV.shl(YV));
    EXPECT_EQ(C.evaluate(C.ashr(X, Y), M), XV.ashr(YV));
    if (!YV.isZero()) {
      EXPECT_EQ(C.evaluate(C.udiv(X, Y), M), XV.udiv(YV));
      if (!(XV.isSignedMin() && YV.isAllOnes()))
        EXPECT_EQ(C.evaluate(C.sdiv(X, Y), M), XV.sdiv(YV));
    }
    EXPECT_EQ(C.evaluate(C.slt(X, Y), M).isOne(), XV.slt(YV));
  }
}

TEST(BVExpr, SdivByZeroMatchesSMTLib) {
  BVContext C;
  std::unordered_map<unsigned, APInt64> M;
  const BVExpr *X = C.var(8, "x");
  M[X->VarId] = APInt64(8, 10);
  // bvudiv by 0 = all ones; bvurem by 0 = dividend.
  EXPECT_TRUE(C.evaluate(C.udiv(X, C.constant(8, 0)), M).isAllOnes());
  EXPECT_EQ(C.evaluate(C.urem(X, C.constant(8, 0)), M).zext(), 10u);
}

TEST(BVExpr, NodeCountReflectsSharing) {
  BVContext C;
  const BVExpr *X = C.var(32, "x");
  size_t Before = C.numNodes();
  const BVExpr *S1 = C.add(X, C.constant(32, 1));
  const BVExpr *S2 = C.add(X, C.constant(32, 1));
  EXPECT_EQ(S1, S2);
  EXPECT_EQ(C.numNodes(), Before + 2); // the constant + one add node
}

} // namespace
} // namespace veriopt
