//===- SolverTest.cpp - End-to-end BV solving (blaster + CDCL) ------------===//

#include "smt/Solver.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

/// Prove a width-1 term is valid by refuting its negation.
void expectValid(BVContext &C, const BVExpr *Prop, const char *What) {
  auto R = checkSat(C, C.not1(Prop));
  EXPECT_EQ(R.St, SmtCheck::Unsat) << What;
}

void expectSatisfiable(BVContext &C, const BVExpr *Prop, const char *What) {
  auto R = checkSat(C, Prop);
  EXPECT_EQ(R.St, SmtCheck::Sat) << What;
}

class AlgebraicIdentities : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlgebraicIdentities, HoldAtAllWidths) {
  unsigned W = GetParam();
  BVContext C;
  const BVExpr *X = C.var(W, "x");
  const BVExpr *Y = C.var(W, "y");
  expectValid(C, C.eq(C.sub(C.add(X, Y), Y), X), "(x+y)-y == x");
  expectValid(C, C.eq(C.bvxor(C.bvxor(X, Y), Y), X), "(x^y)^y == x");
  expectValid(C, C.eq(C.add(X, X), C.mul(X, C.constant(W, 2))),
              "x+x == 2*x");
  expectValid(C, C.eq(C.bvnot(C.bvand(X, Y)),
                      C.bvor(C.bvnot(X), C.bvnot(Y))),
              "De Morgan");
  expectValid(C, C.eq(C.neg(X), C.add(C.bvnot(X), C.constant(W, 1))),
              "-x == ~x+1");
  if (W > 1)
    expectValid(C, C.eq(C.mul(X, C.constant(W, 2)),
                        C.shl(X, C.constant(W, 1))),
                "2*x == x<<1");
  expectValid(C, C.implies(C.ult(X, Y), C.ne(X, Y)), "x<y -> x!=y");
}

INSTANTIATE_TEST_SUITE_P(Widths, AlgebraicIdentities,
                         ::testing::Values(1u, 8u, 16u, 32u));

TEST(Solver, FindsCounterexampleForWrongIdentity) {
  BVContext C;
  const BVExpr *X = C.var(8, "x");
  // Claim: x + 1 == x - 1, refutable; model must witness it.
  auto R = checkSat(C, C.ne(C.add(X, C.constant(8, 1)),
                            C.sub(X, C.constant(8, 1))),
                    {X});
  ASSERT_EQ(R.St, SmtCheck::Sat);
  ASSERT_TRUE(R.Model.count(X->VarId));
  APInt64 XV = R.Model[X->VarId];
  EXPECT_NE(XV.add(APInt64(8, 1)), XV.sub(APInt64(8, 1)));
}

TEST(Solver, ModelSatisfiesComplexConstraint) {
  BVContext C;
  const BVExpr *X = C.var(16, "x");
  const BVExpr *Y = C.var(16, "y");
  // x * y == 391 (= 17 * 23) with both > 1: factoring, a real search.
  const BVExpr *P = C.and1(
      C.eq(C.mul(X, Y), C.constant(16, 391)),
      C.and1(C.ult(C.constant(16, 1), X), C.ult(C.constant(16, 1), Y)));
  auto R = checkSat(C, P, {X, Y});
  ASSERT_EQ(R.St, SmtCheck::Sat);
  uint64_t XV = R.Model[X->VarId].zext(), YV = R.Model[Y->VarId].zext();
  EXPECT_EQ((XV * YV) & 0xFFFF, 391u);
  EXPECT_GT(XV, 1u);
  EXPECT_GT(YV, 1u);
}

TEST(Solver, DivisionCircuit) {
  BVContext C;
  const BVExpr *X = C.var(8, "x");
  const BVExpr *Y = C.var(8, "y");
  // Division algorithm invariant: y != 0 -> x == (x/y)*y + x%y.
  const BVExpr *Prop = C.implies(
      C.ne(Y, C.constant(8, 0)),
      C.eq(X, C.add(C.mul(C.udiv(X, Y), Y), C.urem(X, Y))));
  expectValid(C, Prop, "division algorithm");
  // Remainder bound: y != 0 -> x%y < y.
  expectValid(C,
              C.implies(C.ne(Y, C.constant(8, 0)),
                        C.ult(C.urem(X, Y), Y)),
              "remainder bound");
}

TEST(Solver, SignedDivisionDerivation) {
  BVContext C;
  const BVExpr *X = C.var(8, "x");
  // sdiv(x, 1) == x  and  srem(x, 1) == 0.
  expectValid(C, C.eq(C.sdiv(X, C.constant(8, 1)), X), "sdiv by one");
  expectValid(C, C.eq(C.srem(X, C.constant(8, 1)), C.constant(8, 0)),
              "srem by one");
  // sdiv(-6, 2) == -3 shape: sdiv(neg x, y) == neg(sdiv(x, y)) when no
  // overflow corner; check concrete instance instead of the general rule.
  const BVExpr *I = C.sdiv(C.constant(8, static_cast<uint64_t>(-6) & 0xFF),
                           C.constant(8, 2));
  EXPECT_TRUE(I->isConst());
  EXPECT_EQ(APInt64(8, I->ConstVal.zext()).sext(), -3);
}

TEST(Solver, ShiftSemanticsOutOfRange) {
  BVContext C;
  const BVExpr *X = C.var(8, "x");
  // Shift by >= width yields zero (dialect/SMT semantics).
  expectValid(C, C.eq(C.shl(X, C.constant(8, 8)), C.constant(8, 0)),
              "shl by width is zero");
  expectValid(C, C.eq(C.lshr(X, C.constant(8, 200)), C.constant(8, 0)),
              "lshr by >width is zero");
  // ashr by >= width is sign fill.
  const BVExpr *Fill = C.ite(C.slt(X, C.constant(8, 0)),
                             C.constant(8, 0xFF), C.constant(8, 0));
  expectValid(C, C.eq(C.ashr(X, C.constant(8, 9)), Fill),
              "ashr by >width is sign fill");
}

TEST(Solver, UnknownOnBudgetExhaustion) {
  BVContext C;
  // Refuting 32-bit multiplication commutativity requires resolution far
  // beyond a 10-conflict budget (the underlying UNSAT proof is huge).
  const BVExpr *X = C.var(32, "x");
  const BVExpr *Y = C.var(32, "y");
  const BVExpr *Hard = C.ne(C.mul(X, Y), C.mul(Y, X));
  auto R = checkSat(C, Hard, {}, /*ConflictBudget=*/10);
  EXPECT_EQ(R.St, SmtCheck::Unknown);
}

/// Differential property: for random terms and random concrete inputs, the
/// solver pinned to those inputs must agree with direct evaluation.
TEST(Solver, DifferentialAgainstEvaluator) {
  RNG R(4242);
  for (int Trial = 0; Trial < 25; ++Trial) {
    BVContext C;
    unsigned W = (Trial % 2) ? 8 : 16;
    const BVExpr *X = C.var(W, "x");
    const BVExpr *Y = C.var(W, "y");
    // Build a random term tree of depth ~4.
    std::vector<const BVExpr *> Leaves = {
        X, Y, C.constant(W, R.next() & 0xFF), C.constant(W, 1)};
    std::vector<const BVExpr *> Work = Leaves;
    for (int Step = 0; Step < 6; ++Step) {
      const BVExpr *A = Work[R.below(Work.size())];
      const BVExpr *B = Work[R.below(Work.size())];
      const BVExpr *N = nullptr;
      switch (R.below(8)) {
      case 0:
        N = C.add(A, B);
        break;
      case 1:
        N = C.sub(A, B);
        break;
      case 2:
        N = C.mul(A, B);
        break;
      case 3:
        N = C.bvand(A, B);
        break;
      case 4:
        N = C.bvor(A, B);
        break;
      case 5:
        N = C.bvxor(A, B);
        break;
      case 6:
        N = C.shl(A, B);
        break;
      default:
        N = C.lshr(A, B);
        break;
      }
      Work.push_back(N);
    }
    const BVExpr *T = Work.back();

    APInt64 XV(W, R.next()), YV(W, R.next());
    std::unordered_map<unsigned, APInt64> M = {{X->VarId, XV},
                                               {Y->VarId, YV}};
    APInt64 Expected = C.evaluate(T, M);

    // Pin inputs and assert the term differs from its evaluation: UNSAT.
    const BVExpr *Pinned = C.and1(
        C.and1(C.eq(X, C.constant(XV)), C.eq(Y, C.constant(YV))),
        C.ne(T, C.constant(Expected)));
    auto Res = checkSat(C, Pinned);
    EXPECT_EQ(Res.St, SmtCheck::Unsat) << "trial " << Trial;
  }
}

//===--- QueryPrefix: retained-prefix activations ----------------------------//

TEST(QueryPrefix, ActivationAgreesWithCheckSat) {
  // The incremental front door must return the same statuses (and valid
  // models) as the one-shot door on the same constraints.
  BVContext C;
  const BVExpr *X = C.var(8, "x");
  const BVExpr *Y = C.var(8, "y");
  QueryPrefix P(C, {X, Y});

  // Valid identity: negation is Unsat both ways.
  const BVExpr *Valid = C.not1(C.eq(C.bvxor(C.bvxor(X, Y), Y), X));
  EXPECT_EQ(P.activate(Valid, {}, 0, nullptr, false).St, SmtCheck::Unsat);
  EXPECT_EQ(checkSat(C, Valid).St, SmtCheck::Unsat);

  // Refutable claim: Sat with a genuine witness.
  const BVExpr *Wrong =
      C.ne(C.add(X, C.constant(8, 1)), C.sub(X, C.constant(8, 1)));
  auto R = P.activate(Wrong, {X}, 0, nullptr, false);
  ASSERT_EQ(R.St, SmtCheck::Sat);
  ASSERT_TRUE(R.Model.count(X->VarId));
  APInt64 XV = R.Model[X->VarId];
  EXPECT_NE(XV.add(APInt64(8, 1)), XV.sub(APInt64(8, 1)));
  EXPECT_EQ(checkSat(C, Wrong).St, SmtCheck::Sat);
}

TEST(QueryPrefix, CloneActivationMatchesInPlaceBitForBit) {
  // activate() (copy of the master) and activateInPlace() (the master
  // itself) must agree on status, model, and the conflict count — this is
  // the foundation of the batch path's bit-identity with the sequential
  // oracle.
  auto build = [](BVContext &C, const BVExpr *&X, const BVExpr *&Y,
                  const BVExpr *&Q) {
    X = C.var(16, "x");
    Y = C.var(16, "y");
    // Factoring query: real CDCL search, so conflict counts are nontrivial.
    Q = C.and1(C.eq(C.mul(X, Y), C.constant(16, 391)),
               C.and1(C.ult(C.constant(16, 1), X),
                      C.ult(C.constant(16, 1), Y)));
  };
  BVContext C1, C2;
  const BVExpr *X1, *Y1, *Q1, *X2, *Y2, *Q2;
  build(C1, X1, Y1, Q1);
  build(C2, X2, Y2, Q2);
  QueryPrefix P1(C1, {X1, Y1});
  QueryPrefix P2(C2, {X2, Y2});
  auto A = P1.activate(Q1, {X1, Y1}, 0, nullptr, false);
  auto B = P2.activateInPlace(Q2, {X2, Y2}, 0, nullptr);
  ASSERT_EQ(A.St, SmtCheck::Sat);
  ASSERT_EQ(B.St, SmtCheck::Sat);
  EXPECT_EQ(A.Conflicts, B.Conflicts);
  EXPECT_EQ(A.Model[X1->VarId], B.Model[X2->VarId]);
  EXPECT_EQ(A.Model[Y1->VarId], B.Model[Y2->VarId]);
}

TEST(QueryPrefix, RepeatedActivationsAreIndependent) {
  // Activations never touch the master, so the same query asked first,
  // in-between, and last must return identical results (status, model,
  // conflicts) regardless of what other candidates were activated.
  BVContext C;
  const BVExpr *X = C.var(8, "x");
  QueryPrefix P(C, {X});
  const BVExpr *Q1 = C.ne(C.mul(X, C.constant(8, 3)),
                          C.add(C.add(X, X), X)); // valid -> Unsat
  const BVExpr *Q2 = C.ne(C.shl(X, C.constant(8, 1)),
                          C.add(X, C.constant(8, 1))); // Sat
  auto First = P.activate(Q1, {X}, 0, nullptr, false);
  auto Other = P.activate(Q2, {X}, 0, nullptr, false);
  auto Again = P.activate(Q1, {X}, 0, nullptr, false);
  EXPECT_EQ(First.St, SmtCheck::Unsat);
  EXPECT_EQ(Other.St, SmtCheck::Sat);
  EXPECT_EQ(Again.St, First.St);
  EXPECT_EQ(Again.Conflicts, First.Conflicts);
}

TEST(QueryPrefix, BudgetExhaustionReportsUnknown) {
  BVContext C;
  const BVExpr *X = C.var(32, "x");
  const BVExpr *Y = C.var(32, "y");
  QueryPrefix P(C, {X, Y});
  const BVExpr *Hard = C.ne(C.mul(X, Y), C.mul(Y, X));
  EXPECT_EQ(P.activate(Hard, {}, /*ConflictBudget=*/10, nullptr, false).St,
            SmtCheck::Unknown);
  // A later activation with an adequate budget still finishes: the Unknown
  // left no residue on the master.
  EXPECT_EQ(P.activate(C.ne(X, X), {}, 0, nullptr, false).St, SmtCheck::Unsat);
}

TEST(QueryPrefix, FuelExhaustionLatchesToken) {
  BVContext C;
  const BVExpr *X = C.var(32, "x");
  const BVExpr *Y = C.var(32, "y");
  QueryPrefix P(C, {X, Y});
  const BVExpr *Hard = C.ne(C.mul(X, Y), C.mul(Y, X));
  Fuel F(50);
  EXPECT_EQ(P.activate(Hard, {}, 0, &F, false).St, SmtCheck::Unknown);
  EXPECT_TRUE(F.exhausted());
}

TEST(QueryPrefix, TriviallyFalseConstraintShortCircuits) {
  BVContext C;
  const BVExpr *X = C.var(8, "x");
  QueryPrefix P(C, {X});
  auto R = P.activate(C.constant(1, 0), {}, 0, nullptr, false);
  EXPECT_EQ(R.St, SmtCheck::Unsat);
  EXPECT_EQ(R.Conflicts, 0u);
}

} // namespace
} // namespace veriopt
