//===- SatTest.cpp - CDCL solver unit + property tests --------------------===//

#include "smt/Sat.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(Sat, TrivialSat) {
  SatSolver S;
  unsigned A = S.newVar(), B = S.newVar();
  S.addClause(Lit(A, false), Lit(B, false));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(Lit(A, false)) || S.modelValue(Lit(B, false)));
}

TEST(Sat, TrivialUnsat) {
  SatSolver S;
  unsigned A = S.newVar();
  S.addClause(Lit(A, false));
  S.addClause(Lit(A, true));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, EmptyClauseUnsat) {
  SatSolver S;
  EXPECT_FALSE(S.addClause(std::vector<Lit>{}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, TautologyIgnored) {
  SatSolver S;
  unsigned A = S.newVar();
  EXPECT_TRUE(S.addClause(Lit(A, false), Lit(A, true)));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(Sat, UnitPropagationChain) {
  SatSolver S;
  // a; a->b; b->c; c->~a is unsat.
  unsigned A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(Lit(A, false));
  S.addClause(Lit(A, true), Lit(B, false));
  S.addClause(Lit(B, true), Lit(C, false));
  S.addClause(Lit(C, true), Lit(A, true));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, XorChainSat) {
  // x1 ^ x2 = 1, x2 ^ x3 = 1, ..., satisfiable for any chain length.
  SatSolver S;
  std::vector<unsigned> Vars;
  for (int I = 0; I < 20; ++I)
    Vars.push_back(S.newVar());
  for (int I = 0; I + 1 < 20; ++I) {
    Lit A(Vars[I], false), B(Vars[I + 1], false);
    S.addClause(A, B);
    S.addClause(~A, ~B);
  }
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  for (int I = 0; I + 1 < 20; ++I)
    EXPECT_NE(S.modelValue(Vars[I]), S.modelValue(Vars[I + 1]));
}

TEST(Sat, PigeonHole3Into2) {
  // PHP(3,2): 3 pigeons, 2 holes — classic small UNSAT instance that
  // requires real conflict analysis.
  SatSolver S;
  unsigned P[3][2];
  for (auto &Row : P)
    for (unsigned &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    S.addClause(Lit(P[I][0], false), Lit(P[I][1], false));
  for (int H = 0; H < 2; ++H)
    for (int I = 0; I < 3; ++I)
      for (int J = I + 1; J < 3; ++J)
        S.addClause(Lit(P[I][H], true), Lit(P[J][H], true));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, ConflictBudgetReportsUnknown) {
  // PHP(7,6) is hard enough that a budget of 1 conflict cannot finish.
  SatSolver S;
  const int N = 7, H = 6;
  std::vector<std::vector<unsigned>> P(N, std::vector<unsigned>(H));
  for (auto &Row : P)
    for (unsigned &V : Row)
      V = S.newVar();
  for (int I = 0; I < N; ++I) {
    std::vector<Lit> Cl;
    for (int K = 0; K < H; ++K)
      Cl.push_back(Lit(P[I][K], false));
    S.addClause(Cl);
  }
  for (int K = 0; K < H; ++K)
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        S.addClause(Lit(P[I][K], true), Lit(P[J][K], true));
  EXPECT_EQ(S.solve(1), SatSolver::Result::Unknown);
  // And with no budget it proves unsatisfiability.
  EXPECT_EQ(S.solve(0), SatSolver::Result::Unsat);
}

/// Brute-force reference: try all assignments over <= 16 vars.
bool bruteForceSat(unsigned NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool All = true;
    for (const auto &C : Clauses) {
      bool Any = false;
      for (Lit L : C) {
        bool V = (Mask >> (L.var() - 1)) & 1;
        if (V != L.negated()) {
          Any = true;
          break;
        }
      }
      if (!Any) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

/// Random 3-SAT instances cross-checked against brute force, over a sweep of
/// clause/variable ratios spanning the SAT/UNSAT phase transition.
class RandomSat : public ::testing::TestWithParam<int> {};

TEST_P(RandomSat, AgreesWithBruteForce) {
  int ClauseCount = GetParam();
  RNG R(1000 + ClauseCount);
  const unsigned NumVars = 10;
  for (int Trial = 0; Trial < 30; ++Trial) {
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    for (unsigned V = 0; V < NumVars; ++V)
      S.newVar();
    bool AddedOk = true;
    for (int C = 0; C < ClauseCount; ++C) {
      std::vector<Lit> Cl;
      for (int K = 0; K < 3; ++K)
        Cl.push_back(Lit(1 + static_cast<unsigned>(R.below(NumVars)),
                         R.chance(0.5)));
      Clauses.push_back(Cl);
      AddedOk = S.addClause(Cl) && AddedOk;
    }
    bool Ref = bruteForceSat(NumVars, Clauses);
    auto Got = AddedOk ? S.solve() : SatSolver::Result::Unsat;
    EXPECT_EQ(Got == SatSolver::Result::Sat, Ref) << "trial " << Trial;
    // On SAT, the model must actually satisfy every clause.
    if (Got == SatSolver::Result::Sat) {
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C)
          Any |= S.modelValue(L);
        EXPECT_TRUE(Any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, RandomSat,
                         ::testing::Values(20, 35, 42, 50, 70));

//===--- Assumptions and incrementality --------------------------------------//

TEST(SatAssume, UnsatUnderAssumptionsDoesNotLatch) {
  // a -> b, assume {a, ~b}: Unsat together with the assumptions, but the
  // clauses alone are satisfiable — the next call must still say Sat.
  SatSolver S;
  unsigned A = S.newVar(), B = S.newVar();
  S.addClause(Lit(A, true), Lit(B, false));
  EXPECT_EQ(S.solve({Lit(A, false), Lit(B, true)}), SatSolver::Result::Unsat);
  EXPECT_FALSE(S.conflictCore().empty());
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  // And retrying with compatible assumptions succeeds on the same solver.
  EXPECT_EQ(S.solve({Lit(A, false), Lit(B, false)}), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(SatAssume, GloballyUnsatHasEmptyCore) {
  SatSolver S;
  unsigned A = S.newVar(), B = S.newVar();
  S.addClause(Lit(A, false));
  S.addClause(Lit(A, true));
  EXPECT_EQ(S.solve({Lit(B, false)}), SatSolver::Result::Unsat);
  // The refutation owes nothing to the assumption.
  EXPECT_TRUE(S.conflictCore().empty());
  // Globally unsat does latch: no assumptions can revive the instance.
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
  EXPECT_EQ(S.solve({Lit(B, true)}), SatSolver::Result::Unsat);
}

TEST(SatAssume, ConflictCoreIsRefutedSubsetOfAssumptions) {
  // x1..x4 free; clause (~x2 | ~x3). Assume all four true: the core must
  // name only assumptions, and must itself be refutable.
  SatSolver S;
  std::vector<Lit> Assumps;
  for (int I = 0; I < 4; ++I)
    Assumps.push_back(Lit(S.newVar(), false));
  S.addClause(~Assumps[1], ~Assumps[2]);
  ASSERT_EQ(S.solve(Assumps), SatSolver::Result::Unsat);
  // Copy: conflictCore() aliases solver state the next solve() overwrites.
  const std::vector<Lit> Core = S.conflictCore();
  ASSERT_FALSE(Core.empty());
  for (Lit L : Core) {
    bool IsAssumption = false;
    for (Lit A : Assumps)
      IsAssumption |= (L == A);
    EXPECT_TRUE(IsAssumption);
  }
  // The named subset alone is already inconsistent with the clauses.
  EXPECT_EQ(S.solve(Core), SatSolver::Result::Unsat);
  // Dropping one core member restores satisfiability (the clause is binary,
  // so the core is minimal here).
  std::vector<Lit> AllButOne(Core.begin(), Core.end() - 1);
  EXPECT_EQ(S.solve(AllButOne), SatSolver::Result::Sat);
}

TEST(SatAssume, AssumptionAlreadyImpliedIsSat) {
  // Unit clause forces a; assuming a (and a again) must not confuse the
  // placement loop that handles already-true assumptions.
  SatSolver S;
  unsigned A = S.newVar(), B = S.newVar();
  S.addClause(Lit(A, false));
  S.addClause(Lit(A, true), Lit(B, false)); // a -> b
  EXPECT_EQ(S.solve({Lit(A, false), Lit(A, false), Lit(B, false)}),
            SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  // Assuming against the forced unit is Unsat with that assumption cored.
  ASSERT_EQ(S.solve({Lit(A, true)}), SatSolver::Result::Unsat);
  ASSERT_EQ(S.conflictCore().size(), 1u);
  EXPECT_EQ(S.conflictCore()[0], Lit(A, true));
}

TEST(SatAssume, FrozenSelectorsActivateGroups) {
  // Two "groups" guarded by frozen selectors: sel_i -> (x == i's phase).
  // Activating either one alone is Sat; activating both is Unsat, and only
  // selector assumptions appear in the core.
  SatSolver S;
  unsigned X = S.newVar();
  unsigned S1 = S.newVar(), S2 = S.newVar();
  S.setFrozen(S1, true);
  S.setFrozen(S2, true);
  S.addClause(Lit(S1, true), Lit(X, false)); // s1 -> x
  S.addClause(Lit(S2, true), Lit(X, true));  // s2 -> ~x
  EXPECT_EQ(S.solve({Lit(S1, false)}), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(X));
  EXPECT_EQ(S.solve({Lit(S2, false)}), SatSolver::Result::Sat);
  EXPECT_FALSE(S.modelValue(X));
  ASSERT_EQ(S.solve({Lit(S1, false), Lit(S2, false)}),
            SatSolver::Result::Unsat);
  for (Lit L : S.conflictCore())
    EXPECT_TRUE(L == Lit(S1, false) || L == Lit(S2, false));
  // The solver is still reusable afterwards.
  EXPECT_EQ(S.solve({Lit(S1, false)}), SatSolver::Result::Sat);
}

TEST(SatAssume, FuelExhaustionMidAssumptionSolveIsUnknown) {
  // Assumption placement charges decision fuel; a tank too small to place
  // the prefix must stop with Unknown and latch the token, not crash or
  // mis-report Unsat.
  SatSolver S;
  std::vector<Lit> Assumps;
  for (int I = 0; I < 8; ++I)
    Assumps.push_back(Lit(S.newVar(), false));
  S.addClause(~Assumps[0], Assumps[1]); // give propagation something to do
  Fuel F(2);
  EXPECT_EQ(S.solve(Assumps, /*ConflictBudget=*/0, &F),
            SatSolver::Result::Unknown);
  EXPECT_TRUE(F.exhausted());
  // Refueled, the same solver finishes the same query.
  Fuel Full(1 << 20);
  EXPECT_EQ(S.solve(Assumps, 0, &Full), SatSolver::Result::Sat);
}

//===--- Back-to-back solves vs fresh solvers --------------------------------//

/// Regression net for incremental-state bugs: a solver carried across
/// solve() calls (learned clauses, saved phases, activities and all) must
/// return the same verdict a fresh solver does on every query of a sequence.
TEST(SatIncremental, BackToBackSolvesMatchFreshSolvers) {
  RNG R(777);
  const unsigned NumVars = 10;
  for (int Round = 0; Round < 20; ++Round) {
    // One clause set, queried under several assumption sets in sequence.
    std::vector<std::vector<Lit>> Clauses;
    SatSolver Inc;
    for (unsigned V = 0; V < NumVars; ++V)
      Inc.newVar();
    bool AddedOk = true;
    for (int C = 0; C < 38; ++C) {
      std::vector<Lit> Cl;
      for (int K = 0; K < 3; ++K)
        Cl.push_back(Lit(1 + static_cast<unsigned>(R.below(NumVars)),
                         R.chance(0.5)));
      Clauses.push_back(Cl);
      AddedOk = Inc.addClause(Cl) && AddedOk;
    }
    for (int Q = 0; Q < 6; ++Q) {
      std::vector<Lit> Assumps;
      for (int K = 0; K < 3; ++K)
        Assumps.push_back(Lit(1 + static_cast<unsigned>(R.below(NumVars)),
                              R.chance(0.5)));
      SatSolver Fresh;
      for (unsigned V = 0; V < NumVars; ++V)
        Fresh.newVar();
      bool FreshOk = true;
      for (const auto &Cl : Clauses)
        FreshOk = Fresh.addClause(Cl) && FreshOk;
      ASSERT_EQ(AddedOk, FreshOk);
      auto Got = AddedOk ? Inc.solve(Assumps) : SatSolver::Result::Unsat;
      auto Want = FreshOk ? Fresh.solve(Assumps) : SatSolver::Result::Unsat;
      EXPECT_EQ(Got, Want) << "round " << Round << " query " << Q;
      if (Got == SatSolver::Result::Sat) {
        // Models may differ, but the incremental model must satisfy the
        // clauses and the assumptions.
        for (Lit A : Assumps)
          EXPECT_TRUE(Inc.modelValue(A));
        for (const auto &Cl : Clauses) {
          bool Any = false;
          for (Lit L : Cl)
            Any |= Inc.modelValue(L);
          EXPECT_TRUE(Any);
        }
      }
    }
  }
}

TEST(SatIncremental, SolveAfterBudgetUnknownMatchesFresh) {
  // A budget-starved Unknown in between must not perturb later verdicts
  // (the historic stale-state failure mode).
  auto buildPHP = [](SatSolver &S, int N, int H) {
    std::vector<std::vector<unsigned>> P(N, std::vector<unsigned>(H));
    for (auto &Row : P)
      for (unsigned &V : Row)
        V = S.newVar();
    for (int I = 0; I < N; ++I) {
      std::vector<Lit> Cl;
      for (int K = 0; K < H; ++K)
        Cl.push_back(Lit(P[I][K], false));
      S.addClause(Cl);
    }
    for (int K = 0; K < H; ++K)
      for (int I = 0; I < N; ++I)
        for (int J = I + 1; J < N; ++J)
          S.addClause(Lit(P[I][K], true), Lit(P[J][K], true));
  };
  SatSolver Inc;
  buildPHP(Inc, 6, 5);
  EXPECT_EQ(Inc.solve(2), SatSolver::Result::Unknown);
  EXPECT_EQ(Inc.solve(3), SatSolver::Result::Unknown);
  SatSolver Fresh;
  buildPHP(Fresh, 6, 5);
  EXPECT_EQ(Inc.solve(0), Fresh.solve(0));
  EXPECT_EQ(Inc.solve(0), SatSolver::Result::Unsat);
}

TEST(SatIncremental, LearnedClausesRetainedAcrossCalls) {
  // numClauses() counts learnt clauses too: after a search that conflicts,
  // the clause database must have grown, and per-call stats must reset.
  SatSolver S;
  unsigned P[4][3];
  for (auto &Row : P)
    for (unsigned &V : Row)
      V = S.newVar();
  for (int I = 0; I < 4; ++I)
    S.addClause(std::vector<Lit>{Lit(P[I][0], false), Lit(P[I][1], false),
                                 Lit(P[I][2], false)});
  for (int H = 0; H < 3; ++H)
    for (int I = 0; I < 4; ++I)
      for (int J = I + 1; J < 4; ++J)
        S.addClause(Lit(P[I][H], true), Lit(P[J][H], true));
  uint64_t Before = S.numClauses();
  ASSERT_EQ(S.solve(), SatSolver::Result::Unsat);
  EXPECT_GT(S.lastConflicts(), 0u);
  EXPECT_GT(S.numClauses(), Before);
  // A second solve on the latched instance is immediate: no new conflicts.
  ASSERT_EQ(S.solve(), SatSolver::Result::Unsat);
  EXPECT_EQ(S.lastConflicts(), 0u);
}

} // namespace
} // namespace veriopt
