//===- SatTest.cpp - CDCL solver unit + property tests --------------------===//

#include "smt/Sat.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(Sat, TrivialSat) {
  SatSolver S;
  unsigned A = S.newVar(), B = S.newVar();
  S.addClause(Lit(A, false), Lit(B, false));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(Lit(A, false)) || S.modelValue(Lit(B, false)));
}

TEST(Sat, TrivialUnsat) {
  SatSolver S;
  unsigned A = S.newVar();
  S.addClause(Lit(A, false));
  S.addClause(Lit(A, true));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, EmptyClauseUnsat) {
  SatSolver S;
  EXPECT_FALSE(S.addClause(std::vector<Lit>{}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, TautologyIgnored) {
  SatSolver S;
  unsigned A = S.newVar();
  EXPECT_TRUE(S.addClause(Lit(A, false), Lit(A, true)));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(Sat, UnitPropagationChain) {
  SatSolver S;
  // a; a->b; b->c; c->~a is unsat.
  unsigned A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(Lit(A, false));
  S.addClause(Lit(A, true), Lit(B, false));
  S.addClause(Lit(B, true), Lit(C, false));
  S.addClause(Lit(C, true), Lit(A, true));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, XorChainSat) {
  // x1 ^ x2 = 1, x2 ^ x3 = 1, ..., satisfiable for any chain length.
  SatSolver S;
  std::vector<unsigned> Vars;
  for (int I = 0; I < 20; ++I)
    Vars.push_back(S.newVar());
  for (int I = 0; I + 1 < 20; ++I) {
    Lit A(Vars[I], false), B(Vars[I + 1], false);
    S.addClause(A, B);
    S.addClause(~A, ~B);
  }
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  for (int I = 0; I + 1 < 20; ++I)
    EXPECT_NE(S.modelValue(Vars[I]), S.modelValue(Vars[I + 1]));
}

TEST(Sat, PigeonHole3Into2) {
  // PHP(3,2): 3 pigeons, 2 holes — classic small UNSAT instance that
  // requires real conflict analysis.
  SatSolver S;
  unsigned P[3][2];
  for (auto &Row : P)
    for (unsigned &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    S.addClause(Lit(P[I][0], false), Lit(P[I][1], false));
  for (int H = 0; H < 2; ++H)
    for (int I = 0; I < 3; ++I)
      for (int J = I + 1; J < 3; ++J)
        S.addClause(Lit(P[I][H], true), Lit(P[J][H], true));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, ConflictBudgetReportsUnknown) {
  // PHP(7,6) is hard enough that a budget of 1 conflict cannot finish.
  SatSolver S;
  const int N = 7, H = 6;
  std::vector<std::vector<unsigned>> P(N, std::vector<unsigned>(H));
  for (auto &Row : P)
    for (unsigned &V : Row)
      V = S.newVar();
  for (int I = 0; I < N; ++I) {
    std::vector<Lit> Cl;
    for (int K = 0; K < H; ++K)
      Cl.push_back(Lit(P[I][K], false));
    S.addClause(Cl);
  }
  for (int K = 0; K < H; ++K)
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        S.addClause(Lit(P[I][K], true), Lit(P[J][K], true));
  EXPECT_EQ(S.solve(1), SatSolver::Result::Unknown);
  // And with no budget it proves unsatisfiability.
  EXPECT_EQ(S.solve(0), SatSolver::Result::Unsat);
}

/// Brute-force reference: try all assignments over <= 16 vars.
bool bruteForceSat(unsigned NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool All = true;
    for (const auto &C : Clauses) {
      bool Any = false;
      for (Lit L : C) {
        bool V = (Mask >> (L.var() - 1)) & 1;
        if (V != L.negated()) {
          Any = true;
          break;
        }
      }
      if (!Any) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

/// Random 3-SAT instances cross-checked against brute force, over a sweep of
/// clause/variable ratios spanning the SAT/UNSAT phase transition.
class RandomSat : public ::testing::TestWithParam<int> {};

TEST_P(RandomSat, AgreesWithBruteForce) {
  int ClauseCount = GetParam();
  RNG R(1000 + ClauseCount);
  const unsigned NumVars = 10;
  for (int Trial = 0; Trial < 30; ++Trial) {
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    for (unsigned V = 0; V < NumVars; ++V)
      S.newVar();
    bool AddedOk = true;
    for (int C = 0; C < ClauseCount; ++C) {
      std::vector<Lit> Cl;
      for (int K = 0; K < 3; ++K)
        Cl.push_back(Lit(1 + static_cast<unsigned>(R.below(NumVars)),
                         R.chance(0.5)));
      Clauses.push_back(Cl);
      AddedOk = S.addClause(Cl) && AddedOk;
    }
    bool Ref = bruteForceSat(NumVars, Clauses);
    auto Got = AddedOk ? S.solve() : SatSolver::Result::Unsat;
    EXPECT_EQ(Got == SatSolver::Result::Sat, Ref) << "trial " << Trial;
    // On SAT, the model must actually satisfy every clause.
    if (Got == SatSolver::Result::Sat) {
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C)
          Any |= S.modelValue(L);
        EXPECT_TRUE(Any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, RandomSat,
                         ::testing::Values(20, 35, 42, 50, 70));

} // namespace
} // namespace veriopt
