//===- BenchDiffTest.cpp - BENCH json schema + regression comparator -------===//

#include "report/BenchDiff.h"
#include "report/BenchJson.h"

#include "trace/Metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace veriopt {
namespace {

BenchReport parseOk(const std::string &Text) {
  BenchReport R;
  std::string Err;
  EXPECT_TRUE(parseBenchJson(Text, R, &Err)) << Err;
  return R;
}

std::string parseErr(const std::string &Text) {
  BenchReport R;
  std::string Err;
  EXPECT_FALSE(parseBenchJson(Text, R, &Err)) << "expected a schema failure";
  return Err;
}

/// A small valid document builders below mutate.
std::string doc(const std::string &Gauges,
                const std::string &Counters = R"("verify.queries":12)",
                const std::string &Hists = "") {
  return R"({"bench":"demo","schema":1,"metrics":{"counters":{)" + Counters +
         R"(},"gauges":{)" + Gauges + R"(},"histograms":{)" + Hists + "}}}";
}

ToleranceSpec tol(const std::string &Rules) {
  ToleranceSpec T;
  std::string Err;
  EXPECT_TRUE(
      parseToleranceSpec(R"({"schema":1,"rules":[)" + Rules + "]}", T, &Err))
      << Err;
  return T;
}

BenchDiff diffOk(const BenchReport &Base, const BenchReport &Cur,
                 const ToleranceSpec &T = ToleranceSpec{}) {
  BenchDiff D;
  std::string Err;
  EXPECT_TRUE(compareBenchReports(Base, Cur, T, D, &Err)) << Err;
  return D;
}

//===--- Schema validation -------------------------------------------------===//

TEST(BenchJson, WriterOutputValidates) {
  MetricsRegistry Reg;
  Reg.counter("verify.queries").inc(7);
  Reg.gauge("bench.speedup").set(3.25);
  Reg.histogram("verify.latency_ms", {1, 4, 16}).observe(2.5);
  BenchReport R = parseOk(benchReportToJson("demo", Reg.snapshot()));
  EXPECT_EQ(R.Bench, "demo");
  EXPECT_EQ(R.Schema, BenchJsonSchemaVersion);
  EXPECT_EQ(R.Counters.at("verify.queries"), 7u);
  EXPECT_DOUBLE_EQ(R.Gauges.at("bench.speedup"), 3.25);
  const BenchReport::Hist &H = R.Histograms.at("verify.latency_ms");
  EXPECT_EQ(H.Count, 1u);
  ASSERT_EQ(H.Counts.size(), 4u);
  EXPECT_EQ(H.Counts[1], 1u);
}

TEST(BenchJson, RejectsMissingSchemaVersion) {
  std::string Err = parseErr(
      R"({"bench":"x","metrics":{"counters":{},"gauges":{},"histograms":{}}})");
  EXPECT_NE(Err.find("schema"), std::string::npos) << Err;
}

TEST(BenchJson, RejectsFutureSchemaVersion) {
  std::string Err = parseErr(
      R"({"bench":"x","schema":2,"metrics":{"counters":{},"gauges":{},"histograms":{}}})");
  EXPECT_NE(Err.find("unsupported schema version 2"), std::string::npos)
      << Err;
}

TEST(BenchJson, RejectsNegativeCounter) {
  std::string Err = parseErr(doc("", R"("bad":-1)"));
  EXPECT_NE(Err.find("counter 'bad'"), std::string::npos) << Err;
}

TEST(BenchJson, RejectsNonNumericGauge) {
  std::string Err = parseErr(doc(R"("g":"not-hex")"));
  EXPECT_NE(Err.find("gauge 'g'"), std::string::npos) << Err;
}

TEST(BenchJson, BitHexGaugeDecodesExactly) {
  // 0x3ff0000000000000 == 1.0; 0x7ff8000000000000 is a quiet NaN.
  BenchReport R = parseOk(
      doc(R"("one":"3ff0000000000000","nan":"7ff8000000000000")"));
  EXPECT_DOUBLE_EQ(R.Gauges.at("one"), 1.0);
  EXPECT_TRUE(std::isnan(R.Gauges.at("nan")));
}

TEST(BenchJson, RejectsHistogramCountMismatch) {
  std::string Err = parseErr(doc(
      "", R"("c":1)",
      R"("h":{"bounds":[1,2],"counts":[1,0,0],"count":5,"sum":1})"));
  EXPECT_NE(Err.find("bucket-count sum"), std::string::npos) << Err;
}

TEST(BenchJson, RejectsNonIncreasingBounds) {
  std::string Err = parseErr(doc(
      "", R"("c":1)",
      R"("h":{"bounds":[2,1],"counts":[0,0,0],"count":0,"sum":0})"));
  EXPECT_NE(Err.find("strictly increasing"), std::string::npos) << Err;
}

TEST(BenchJson, EmptyRunValidates) {
  BenchReport R = parseOk(doc("", "", ""));
  EXPECT_TRUE(R.Counters.empty());
  EXPECT_TRUE(R.Gauges.empty());
  EXPECT_TRUE(R.Histograms.empty());
}

//===--- Tolerance parsing + glob ------------------------------------------===//

TEST(Tolerance, GlobSemantics) {
  EXPECT_TRUE(globMatch("*", "anything"));
  EXPECT_TRUE(globMatch("bench.*_ms", "bench.serial_ms"));
  EXPECT_FALSE(globMatch("bench.*_ms", "bench.speedup"));
  EXPECT_TRUE(globMatch("verify.cache.*", "verify.cache.hit"));
  EXPECT_FALSE(globMatch("verify.cache.*x", "verify.cache.hit"));
  EXPECT_TRUE(globMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(globMatch("abc", "abcd"));
}

TEST(Tolerance, BandRuleNeedsAWidth) {
  ToleranceSpec T;
  std::string Err;
  EXPECT_FALSE(parseToleranceSpec(
      R"({"schema":1,"rules":[{"match":"*","policy":"band"}]})", T, &Err));
  EXPECT_NE(Err.find("neither 'rel' nor 'abs'"), std::string::npos) << Err;
}

TEST(Tolerance, UnknownPolicyIsAnError) {
  ToleranceSpec T;
  std::string Err;
  EXPECT_FALSE(parseToleranceSpec(
      R"({"schema":1,"rules":[{"match":"*","policy":"fuzzy"}]})", T, &Err));
  EXPECT_NE(Err.find("unknown policy"), std::string::npos) << Err;
}

//===--- Comparison verdicts -----------------------------------------------===//

TEST(BenchDiffCompare, IdenticalRunsHaveZeroDelta) {
  BenchReport R = parseOk(doc(
      R"("bench.speedup":3.5)", R"("verify.queries":12)",
      R"("h":{"bounds":[1],"counts":[2,1],"count":3,"sum":4.5})"));
  BenchDiff D = diffOk(R, R);
  EXPECT_FALSE(D.hasRegression());
  EXPECT_EQ(D.Ok, 3u);
  EXPECT_NE(renderBenchDiff(D).find("RESULT: PASS"), std::string::npos);
}

TEST(BenchDiffCompare, ExactMismatchIsARegression) {
  BenchDiff D = diffOk(parseOk(doc(R"("g":1)")), parseOk(doc(R"("g":2)")));
  EXPECT_TRUE(D.hasRegression());
  std::string R = renderBenchDiff(D);
  EXPECT_NE(R.find("[REGRESSION] gauge g: base=1 cur=2"), std::string::npos)
      << R;
  EXPECT_NE(R.find("RESULT: REGRESSION"), std::string::npos);
}

TEST(BenchDiffCompare, GaugeMissingInCurrentRegresses) {
  BenchDiff D = diffOk(parseOk(doc(R"("g":1)")), parseOk(doc("")));
  EXPECT_TRUE(D.hasRegression());
  EXPECT_NE(renderBenchDiff(D).find("present in baseline, missing in current"),
            std::string::npos);
}

TEST(BenchDiffCompare, GaugeMissingInBaselineRegresses) {
  BenchDiff D = diffOk(parseOk(doc("")), parseOk(doc(R"("g":1)")));
  EXPECT_TRUE(D.hasRegression());
  EXPECT_NE(renderBenchDiff(D).find("missing in baseline, present in current"),
            std::string::npos);
}

TEST(BenchDiffCompare, IgnoreRuleSilencesMissingKey) {
  BenchDiff D = diffOk(parseOk(doc(R"("bench.serial_ms":9.25)")),
                       parseOk(doc("")),
                       tol(R"({"match":"bench.*_ms","policy":"ignore"})"));
  EXPECT_FALSE(D.hasRegression());
  EXPECT_EQ(D.Ignored, 1u);
}

TEST(BenchDiffCompare, BandPassesInsideAndFailsOutside) {
  ToleranceSpec T =
      tol(R"({"match":"g","policy":"band","rel":0.10,"abs":0})");
  // 100 -> 109: inside the 10% band.
  EXPECT_FALSE(diffOk(parseOk(doc(R"("g":100)")), parseOk(doc(R"("g":109)")),
                      T)
                   .hasRegression());
  // 100 -> 111: outside.
  EXPECT_TRUE(diffOk(parseOk(doc(R"("g":100)")), parseOk(doc(R"("g":111)")),
                     T)
                  .hasRegression());
}

TEST(BenchDiffCompare, ToleranceExactlyMetPasses) {
  // |cur - base| == max(abs, rel*|base|) exactly: the band is inclusive.
  ToleranceSpec T = tol(R"({"match":"g","policy":"band","abs":10})");
  BenchDiff D = diffOk(parseOk(doc(R"("g":100)")), parseOk(doc(R"("g":110)")),
                       T);
  EXPECT_FALSE(D.hasRegression());
  EXPECT_EQ(D.WithinBand, 1u);
}

TEST(BenchDiffCompare, FirstMatchingRuleWins) {
  // The specific exact rule shadows the catch-all ignore that follows it.
  ToleranceSpec T = tol(R"({"match":"g","policy":"exact"},
                          {"match":"*","policy":"ignore"})");
  EXPECT_TRUE(
      diffOk(parseOk(doc(R"("g":1,"other":5)", "")),
             parseOk(doc(R"("g":2,"other":99)", "")), T)
          .hasRegression());
  BenchDiff D = diffOk(parseOk(doc(R"("g":1,"other":5)", "")),
                       parseOk(doc(R"("g":1,"other":99)", "")), T);
  EXPECT_FALSE(D.hasRegression());
  EXPECT_EQ(D.Ignored, 1u);
}

TEST(BenchDiffCompare, NanEqualsNanExactly) {
  // A NaN baseline gauge (bit-hex) matches a NaN current value — NaN must
  // not poison the comparison in either direction.
  std::string NanDoc = doc(R"("g":"7ff8000000000000")");
  EXPECT_FALSE(diffOk(parseOk(NanDoc), parseOk(NanDoc)).hasRegression());
  EXPECT_TRUE(
      diffOk(parseOk(NanDoc), parseOk(doc(R"("g":1)"))).hasRegression());
}

TEST(BenchDiffCompare, NanNeverLandsInsideABand) {
  ToleranceSpec T = tol(R"({"match":"g","policy":"band","abs":1000})");
  EXPECT_TRUE(diffOk(parseOk(doc(R"("g":"7ff8000000000000")")),
                     parseOk(doc(R"("g":1)")), T)
                  .hasRegression());
}

TEST(BenchDiffCompare, HistogramBandIgnoresSpreadButNotLayout) {
  ToleranceSpec T = tol(R"({"match":"h","policy":"band","abs":1})");
  auto Hist = [](const char *Body) {
    return parseOk(doc("", R"("c":1)", std::string(R"("h":)") + Body));
  };
  // Same layout, same count, different spread + sum: timing noise, passes.
  BenchReport A = Hist(R"({"bounds":[1,2],"counts":[3,1,0],"count":4,"sum":2.5})");
  BenchReport B = Hist(R"({"bounds":[1,2],"counts":[1,3,0],"count":4,"sum":9.0})");
  EXPECT_FALSE(diffOk(A, B, T).hasRegression());
  // Different bucket bounds: schema drift, regresses even under band.
  BenchReport C = Hist(R"({"bounds":[1,8],"counts":[1,3,0],"count":4,"sum":9.0})");
  BenchDiff D = diffOk(A, C, T);
  EXPECT_TRUE(D.hasRegression());
  EXPECT_NE(renderBenchDiff(D).find("bucket bounds differ"),
            std::string::npos);
}

TEST(BenchDiffCompare, EmptyRunsCompareClean) {
  BenchDiff D = diffOk(parseOk(doc("", "", "")), parseOk(doc("", "", "")));
  EXPECT_FALSE(D.hasRegression());
  EXPECT_TRUE(D.Findings.empty());
}

TEST(BenchDiffCompare, BenchNameMismatchIsAnError) {
  BenchReport A = parseOk(doc(""));
  BenchReport B = A;
  B.Bench = "other";
  BenchDiff D;
  std::string Err;
  EXPECT_FALSE(compareBenchReports(A, B, ToleranceSpec{}, D, &Err));
  EXPECT_NE(Err.find("bench name mismatch"), std::string::npos) << Err;
}

TEST(BenchDiffCompare, FindingsAreOrderedWithinKind) {
  BenchDiff D = diffOk(
      parseOk(doc(R"("b":1,"a":1)", R"("z":1,"y":1)")),
      parseOk(doc(R"("b":2,"a":2)", R"("z":2,"y":2)")));
  ASSERT_EQ(D.Findings.size(), 4u);
  // Counters first (sorted), then gauges (sorted).
  EXPECT_EQ(D.Findings[0].Key, "y");
  EXPECT_EQ(D.Findings[1].Key, "z");
  EXPECT_EQ(D.Findings[2].Key, "a");
  EXPECT_EQ(D.Findings[3].Key, "b");
}

} // namespace
} // namespace veriopt
