//===- ReportTest.cpp - Trace schema validation + report rendering ---------===//

#include "report/RunReport.h"
#include "report/TraceData.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef VERIOPT_TEST_DATA_DIR
#error "VERIOPT_TEST_DATA_DIR must point at tests/report"
#endif

namespace veriopt {
namespace {

TraceLog parseOk(const std::string &Text) {
  TraceLog Log;
  std::string Err;
  EXPECT_TRUE(parseTraceJsonl(Text, Log, &Err)) << Err;
  return Log;
}

std::string validateErr(const std::string &Line) {
  TraceLog Log = parseOk(Line);
  std::string Err;
  EXPECT_FALSE(validateTraceLog(Log, &Err)) << "expected a schema violation";
  return Err;
}

// A minimal valid span line for mutation tests.
const char *ValidSpan =
    R"({"name":"verify.encode","ph":"X","ts_ns":10,"dur_ns":5,"tid":0,"seq":0,"args":{}})";

TEST(Report, ParseRejectsMalformedLineWithLineNumber) {
  TraceLog Log;
  std::string Err;
  std::string Text = std::string(ValidSpan) + "\n{broken\n";
  EXPECT_FALSE(parseTraceJsonl(Text, Log, &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

TEST(Report, ParseSkipsBlankLines) {
  TraceLog Log = parseOk(std::string("\n") + ValidSpan + "\n\n");
  EXPECT_EQ(Log.Events.size(), 1u);
}

TEST(Report, ValidAndKnownNamesPass) {
  TraceLog Log = parseOk(ValidSpan);
  std::string Err;
  EXPECT_TRUE(validateTraceLog(Log, &Err)) << Err;
  const auto &Known = knownTraceEventNames();
  for (const char *N : {"grpo.step", "verify.candidate", "metric"})
    EXPECT_NE(std::find(Known.begin(), Known.end(), N), Known.end()) << N;
}

TEST(Report, RejectsUnknownEventName) {
  std::string Err = validateErr(
      R"({"name":"grpo.bogus","ph":"i","ts_ns":0,"tid":0,"seq":0,"args":{}})");
  EXPECT_NE(Err.find("unknown event name"), std::string::npos) << Err;
}

TEST(Report, RejectsSpanWithoutDuration) {
  std::string Err = validateErr(
      R"({"name":"verify.encode","ph":"X","ts_ns":0,"tid":0,"seq":0,"args":{}})");
  EXPECT_NE(Err.find("dur_ns"), std::string::npos) << Err;
}

TEST(Report, RejectsBadPhase) {
  std::string Err = validateErr(
      R"({"name":"verify.encode","ph":"Z","ts_ns":0,"dur_ns":1,"tid":0,"seq":0,"args":{}})");
  EXPECT_NE(Err.find("'ph'"), std::string::npos) << Err;
}

TEST(Report, RejectsNegativeTimestamp) {
  std::string Err = validateErr(
      R"({"name":"verify.encode","ph":"X","ts_ns":-1,"dur_ns":1,"tid":0,"seq":0,"args":{}})");
  EXPECT_NE(Err.find("ts_ns"), std::string::npos) << Err;
}

TEST(Report, RejectsUnknownTopLevelField) {
  std::string Err = validateErr(
      R"({"name":"verify.encode","ph":"X","ts_ns":0,"dur_ns":1,"tid":0,"seq":0,"args":{},"extra":1})");
  EXPECT_NE(Err.find("unknown top-level field"), std::string::npos) << Err;
}

TEST(Report, RejectsMissingRequiredArg) {
  // grpo.step requires step/mean_reward/ema_reward/equivalent_rate.
  std::string Err = validateErr(
      R"({"name":"grpo.step","ph":"X","ts_ns":0,"dur_ns":1,"tid":0,"seq":0,"args":{"step":1}})");
  EXPECT_NE(Err.find("mean_reward"), std::string::npos) << Err;
}

TEST(Report, BatchVerifySpanRequiresReuseCounts) {
  // batch.verify must carry the dedupe/reuse accounting the report reads.
  std::string Err = validateErr(
      R"({"name":"batch.verify","ph":"X","ts_ns":0,"dur_ns":1,"tid":0,"seq":0,"args":{"candidates":8}})");
  EXPECT_NE(Err.find("unique"), std::string::npos) << Err;
}

TEST(Report, RejectsWrongArgType) {
  std::string Err = validateErr(
      R"({"name":"metric","ph":"C","ts_ns":0,"tid":0,"seq":0,"args":{"key":"k","value":"nope"}})");
  EXPECT_NE(Err.find("value"), std::string::npos) << Err;
}

TEST(Report, ValidatorNamesOffendingLine) {
  std::string Text = std::string(ValidSpan) + "\n" +
                     R"({"name":"nope","ph":"i","ts_ns":0,"tid":0,"seq":0,"args":{}})";
  TraceLog Log = parseOk(Text);
  std::string Err;
  EXPECT_FALSE(validateTraceLog(Log, &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

/// A small synthetic but fully schema-valid run, with fixed timings so the
/// rendering is byte-stable: two stages of grpo.step curves, verification
/// verdicts, a retry ladder, cache metrics, and rule fires.
std::string syntheticRun() {
  std::ostringstream OS;
  auto Step = [&](const char *Stage, int Step, double Mean, double Ema,
                  double Eq) {
    OS << R"({"name":"grpo.step","ph":"X","ts_ns":)" << Step * 1000
       << R"(,"dur_ns":900,"tid":0,"seq":)" << Step
       << R"(,"args":{"stage":")" << Stage << R"(","step":)" << Step
       << R"(,"mean_reward":)" << Mean << R"(,"ema_reward":)" << Ema
       << R"(,"equivalent_rate":)" << Eq << "}}\n";
  };
  Step("stage1", 1, 0.50, 0.50, 0.25);
  Step("stage1", 2, 0.80, 0.65, 0.50);
  Step("stage1", 3, 1.10, 0.80, 0.75);
  Step("stage2", 1, 1.00, 1.00, 0.50);
  Step("stage2", 2, 1.40, 1.20, 1.00);

  auto Cand = [&](int Seq, uint64_t DurNs, const char *Status,
                  const char *Diag, int Conflicts, int Fuel) {
    OS << R"({"name":"verify.candidate","ph":"X","ts_ns":0,"dur_ns":)"
       << DurNs << R"(,"tid":1,"seq":)" << Seq << R"(,"args":{"status":")"
       << Status << R"(","diag":")" << Diag << R"(","conflicts":)"
       << Conflicts << R"(,"fuel":)" << Fuel << "}}\n";
  };
  Cand(0, 5000000, "equivalent", "none", 12, 400);
  Cand(1, 9000000, "not-equivalent", "value-mismatch", 55, 900);
  Cand(2, 1000000, "syntax-error", "parse-error", 0, 0);
  Cand(3, 2000000, "equivalent", "none", 3, 120);

  auto Tier = [&](int Seq, int Tier, const char *Status, const char *Diag) {
    OS << R"({"name":"verify.tier","ph":"i","ts_ns":0,"tid":2,"seq":)" << Seq
       << R"(,"args":{"tier":)" << Tier << R"(,"status":")" << Status
       << R"(","diag":")" << Diag << R"("}})" << "\n";
  };
  Tier(0, 0, "inconclusive", "solver-timeout");
  Tier(1, 1, "equivalent", "none");
  Tier(2, 0, "equivalent", "none");

  auto Metric = [&](int Seq, const char *Key, double V) {
    OS << R"({"name":"metric","ph":"C","ts_ns":0,"tid":3,"seq":)" << Seq
       << R"(,"args":{"key":")" << Key << R"(","value":)" << V << "}}\n";
  };
  Metric(0, "verify.cache.hit", 30);
  Metric(1, "verify.cache.miss", 10);
  Metric(2, "verify.cache.singleflight_join", 4);
  Metric(3, "verify.cache.eviction", 2);

  OS << R"({"name":"batch.verify","ph":"X","ts_ns":0,"dur_ns":7000000,"tid":5,"seq":0,"args":{"candidates":8,"unique":6,"cached":2,"computed":9}})"
     << "\n";
  Metric(4, "batch.groups", 1);
  Metric(5, "batch.candidates", 8);
  Metric(6, "batch.unique", 6);
  Metric(7, "batch.cache_hits", 2);
  Metric(8, "batch.computed", 9);
  Metric(9, "smt.assumption_solves", 6);
  Metric(10, "smt.clauses_retained", 5400);
  Metric(11, "encode.cse_hits", 240);

  // A persistent verdict store session: the journal load span plus the
  // counters the "verdict store efficacy" section reads.
  OS << R"({"name":"store.load","ph":"X","ts_ns":0,"dur_ns":2000000,"tid":8,"seq":0,"args":{"records":12,"live":10,"quarantined":2}})"
     << "\n";
  Metric(12, "store.hits", 18);
  Metric(13, "store.misses", 6);
  Metric(14, "store.writes", 6);
  Metric(15, "store.compactions", 1);
  Metric(16, "store.quarantined", 2);

  OS << R"({"name":"opt.rule_fire","ph":"C","ts_ns":0,"tid":4,"seq":0,"args":{"rule":"dce","count":21}})"
     << "\n";
  OS << R"({"name":"opt.rule_fire","ph":"C","ts_ns":0,"tid":4,"seq":1,"args":{"rule":"const-fold","count":34}})"
     << "\n";

  // A sharded evaluation: one eval.run wrapping two eval.shard spans
  // (deliberately emitted out of shard order — the report must sort).
  OS << R"({"name":"eval.shard","ph":"X","ts_ns":100,"dur_ns":4000000,"tid":7,"seq":1,"args":{"shard":1,"begin":10,"end":20,"samples":10,"correct":6,"semantic_error":1,"syntax_error":0,"inconclusive":3}})"
     << "\n";
  OS << R"({"name":"eval.shard","ph":"X","ts_ns":100,"dur_ns":6000000,"tid":6,"seq":0,"args":{"shard":0,"begin":0,"end":10,"samples":10,"correct":8,"semantic_error":1,"syntax_error":1,"inconclusive":0}})"
     << "\n";
  OS << R"({"name":"eval.run","ph":"X","ts_ns":0,"dur_ns":7000000,"tid":6,"seq":1,"args":{"shards":2,"samples":20,"correct":14,"inconclusive":3,"model":"qwen-3b","batch_verify":true}})"
     << "\n";
  return OS.str();
}

TEST(Report, GoldenRendering) {
  TraceLog Log = parseOk(syntheticRun());
  std::string Err;
  ASSERT_TRUE(validateTraceLog(Log, &Err)) << Err;
  std::string Rendered = renderRunReport(Log, /*TopN=*/3);

  const std::string GoldenPath =
      std::string(VERIOPT_TEST_DATA_DIR) + "/golden_report.txt";
  if (std::getenv("VERIOPT_REGEN_GOLDEN")) {
    std::ofstream OS(GoldenPath, std::ios::binary);
    OS << Rendered;
    GTEST_SKIP() << "regenerated " << GoldenPath;
  }
  std::ifstream IS(GoldenPath);
  ASSERT_TRUE(IS.good()) << "missing golden file " << GoldenPath;
  std::stringstream SS;
  SS << IS.rdbuf();
  EXPECT_EQ(Rendered, SS.str())
      << "report rendering drifted from the golden file; if intentional, "
         "regenerate tests/report/golden_report.txt";
}

TEST(Report, RenderIsDeterministic) {
  TraceLog Log = parseOk(syntheticRun());
  EXPECT_EQ(renderRunReport(Log, 3), renderRunReport(Log, 3));
}

TEST(Report, EmptyLogRendersPlaceholders) {
  TraceLog Log;
  std::string R = renderRunReport(Log, 5);
  EXPECT_NE(R.find("no grpo.step events"), std::string::npos);
  EXPECT_NE(R.find("no verify.candidate events"), std::string::npos);
  EXPECT_NE(R.find("no cache metrics"), std::string::npos);
  EXPECT_NE(R.find("no batch.* metrics"), std::string::npos);
  EXPECT_NE(R.find("no store metrics"), std::string::npos);
  EXPECT_NE(R.find("no eval.shard events"), std::string::npos);
}

TEST(Report, EvalShardSpanRequiresRangeArgs) {
  // eval.shard must carry the shard identity + range the report renders.
  std::string Err = validateErr(
      R"({"name":"eval.shard","ph":"X","ts_ns":0,"dur_ns":1,"tid":0,"seq":0,"args":{"shard":0}})");
  EXPECT_NE(Err.find("begin"), std::string::npos) << Err;
}

TEST(Report, ShardSectionSortsByShardIndex) {
  TraceLog Log = parseOk(syntheticRun());
  std::string R = renderRunReport(Log, 3);
  size_t S0 = R.find("shard 0");
  size_t S1 = R.find("shard 1");
  ASSERT_NE(S0, std::string::npos);
  ASSERT_NE(S1, std::string::npos);
  EXPECT_LT(S0, S1) << "shards must render in index order, not emit order";
}

} // namespace
} // namespace veriopt
