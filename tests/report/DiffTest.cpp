//===- DiffTest.cpp - A/B run diff: plane split + golden rendering ---------===//

#include "report/RunDiff.h"
#include "report/TraceData.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef VERIOPT_TEST_DATA_DIR
#error "VERIOPT_TEST_DATA_DIR must point at tests/report"
#endif

namespace veriopt {
namespace {

TraceLog parseValid(const std::string &Text) {
  TraceLog Log;
  std::string Err;
  EXPECT_TRUE(parseTraceJsonl(Text, Log, &Err)) << Err;
  EXPECT_TRUE(validateTraceLog(Log, &Err)) << Err;
  return Log;
}

/// What a synthetic run looks like; every knob that moves between "runs"
/// is a parameter so tests can isolate deterministic-plane changes from
/// timing-plane changes.
struct RunSpec {
  double RewardBoost = 0;   ///< added to every mean/EMA reward (args plane)
  uint64_t TimeScale = 1;   ///< multiplies every ts_ns/dur_ns (meta plane)
  int TidBase = 0;          ///< shifts every tid (meta plane)
  bool ExtraStage = false;  ///< adds a stage only this run trained
  bool FlipVerdict = false; ///< one candidate flips equivalent -> timeout
};

/// A fixed schema-valid run shaped like a tiny training+eval session.
std::string syntheticRun(const RunSpec &S) {
  std::ostringstream OS;
  auto Step = [&](const char *Stage, int Step, double Mean, double Ema,
                  double Eq) {
    OS << R"({"name":"grpo.step","ph":"X","ts_ns":)" << Step * 1000 * S.TimeScale
       << R"(,"dur_ns":)" << 900 * S.TimeScale << R"(,"tid":)" << S.TidBase
       << R"(,"seq":)" << Step << R"(,"args":{"stage":")" << Stage
       << R"(","step":)" << Step << R"(,"mean_reward":)"
       << Mean + S.RewardBoost << R"(,"ema_reward":)" << Ema + S.RewardBoost
       << R"(,"equivalent_rate":)" << Eq << "}}\n";
  };
  Step("stage1", 1, 0.50, 0.50, 0.25);
  Step("stage1", 2, 0.80, 0.65, 0.50);
  Step("stage2", 1, 1.00, 1.00, 0.50);
  if (S.ExtraStage)
    Step("stage3", 1, 1.50, 1.50, 1.00);

  auto Cand = [&](int Seq, uint64_t DurNs, const char *Status,
                  const char *Diag) {
    OS << R"({"name":"verify.candidate","ph":"X","ts_ns":0,"dur_ns":)"
       << DurNs * S.TimeScale << R"(,"tid":)" << S.TidBase + 1
       << R"(,"seq":)" << Seq << R"(,"args":{"status":")" << Status
       << R"(","diag":")" << Diag << R"(","conflicts":7,"fuel":100}})"
       << "\n";
  };
  Cand(0, 5000000, "equivalent", "none");
  Cand(1, 9000000, "not-equivalent", "value-mismatch");
  Cand(2, 2000000,
       S.FlipVerdict ? "inconclusive" : "equivalent",
       S.FlipVerdict ? "solver-timeout" : "none");

  OS << R"({"name":"verify.tier","ph":"i","ts_ns":0,"tid":)" << S.TidBase + 2
     << R"(,"seq":0,"args":{"tier":0,"status":"equivalent","diag":"none"}})"
     << "\n";

  auto Metric = [&](int Seq, const char *Key, double V) {
    OS << R"({"name":"metric","ph":"C","ts_ns":0,"tid":)" << S.TidBase + 3
       << R"(,"seq":)" << Seq << R"(,"args":{"key":")" << Key
       << R"(","value":)" << V << "}}\n";
  };
  Metric(0, "verify.cache.hit", S.FlipVerdict ? 20 : 30);
  Metric(1, "verify.cache.miss", 10);
  Metric(2, "verify.cache.singleflight_join", 4);
  Metric(3, "verify.cache.eviction", 2);
  return OS.str();
}

RunSummary summarize(const RunSpec &S) {
  return aggregateRun(parseValid(syntheticRun(S)));
}

TEST(RunDiffTest, SameArgsPlaneIsIdenticalDespiteTimingChanges) {
  // Only meta-plane knobs move: the deterministic plane must not notice.
  RunSpec B;
  B.TimeScale = 7;
  B.TidBase = 40;
  RunDiff D = diffRuns(summarize(RunSpec{}), summarize(B));
  EXPECT_TRUE(D.deterministicPlaneIdentical());
  EXPECT_EQ(D.DeterministicOnlyA, 0u);
  EXPECT_EQ(D.DeterministicOnlyB, 0u);
  std::string R = renderRunDiff(D);
  EXPECT_NE(R.find("IDENTICAL"), std::string::npos) << R;
  EXPECT_NE(R.find("same-seed contract holds"), std::string::npos) << R;
}

TEST(RunDiffTest, IdenticalRunsReportZeroDelta) {
  RunDiff D = diffRuns(summarize(RunSpec{}), summarize(RunSpec{}));
  EXPECT_TRUE(D.deterministicPlaneIdentical());
  std::string R = renderRunDiff(D);
  // Every count row must carry an explicit zero delta.
  EXPECT_NE(R.find("(+0)"), std::string::npos) << R;
  EXPECT_EQ(R.find("DIVERGED"), std::string::npos) << R;
}

TEST(RunDiffTest, ArgsPlaneChangeIsDetected) {
  RunSpec B;
  B.RewardBoost = 0.25; // args-plane change: reward values differ
  RunDiff D = diffRuns(summarize(RunSpec{}), summarize(B));
  EXPECT_FALSE(D.deterministicPlaneIdentical());
  EXPECT_GT(D.DeterministicOnlyA, 0u);
  EXPECT_GT(D.DeterministicOnlyB, 0u);
  std::string R = renderRunDiff(D);
  EXPECT_NE(R.find("DIVERGED"), std::string::npos) << R;
}

TEST(RunDiffTest, DeltasAreSortedByKey) {
  RunSpec B;
  B.RewardBoost = 0.25;
  RunDiff D = diffRuns(summarize(RunSpec{}), summarize(B));
  for (size_t I = 1; I < D.DeterministicDeltas.size(); ++I)
    EXPECT_LT(D.DeterministicDeltas[I - 1].Key, D.DeterministicDeltas[I].Key);
}

TEST(RunDiffTest, StageOnlyInOneRunIsCalledOut) {
  RunSpec B;
  B.ExtraStage = true;
  std::string R = renderRunDiff(diffRuns(summarize(RunSpec{}), summarize(B)));
  EXPECT_NE(R.find("stage3: only in B (1 steps)"), std::string::npos) << R;
}

TEST(RunDiffTest, RenderIsDeterministic) {
  RunSpec B;
  B.FlipVerdict = true;
  B.TimeScale = 3;
  RunDiff D = diffRuns(summarize(RunSpec{}), summarize(B));
  EXPECT_EQ(renderRunDiff(D, 5), renderRunDiff(D, 5));
}

TEST(RunDiffTest, EmptyRunsRenderPlaceholders) {
  RunDiff D = diffRuns(RunSummary{}, RunSummary{});
  std::string R = renderRunDiff(D);
  EXPECT_NE(R.find("no grpo.step events in either trace"), std::string::npos);
  EXPECT_NE(R.find("no verify.candidate events in either trace"),
            std::string::npos);
  EXPECT_NE(R.find("no cache metrics in either trace"), std::string::npos);
  EXPECT_NE(R.find("no spans in either trace"), std::string::npos);
  EXPECT_TRUE(D.deterministicPlaneIdentical());
}

TEST(RunDiffTest, GoldenRendering) {
  // A seeded A/B pair exercising every diff section: verdict flip, reward
  // shift, an extra stage, and scaled timings.
  RunSpec B;
  B.RewardBoost = 0.30;
  B.TimeScale = 2;
  B.ExtraStage = true;
  B.FlipVerdict = true;
  std::string Rendered =
      renderRunDiff(diffRuns(summarize(RunSpec{}), summarize(B)), /*TopN=*/3);

  const std::string GoldenPath =
      std::string(VERIOPT_TEST_DATA_DIR) + "/golden_diff.txt";
  if (std::getenv("VERIOPT_REGEN_GOLDEN")) {
    std::ofstream OS(GoldenPath, std::ios::binary);
    OS << Rendered;
    GTEST_SKIP() << "regenerated " << GoldenPath;
  }
  std::ifstream IS(GoldenPath);
  ASSERT_TRUE(IS.good()) << "missing golden file " << GoldenPath;
  std::stringstream SS;
  SS << IS.rdbuf();
  EXPECT_EQ(Rendered, SS.str())
      << "diff rendering drifted from the golden file; if intentional, "
         "regenerate tests/report/golden_diff.txt";
}

TEST(RunDiffTest, WallClockMetricsLiveOnTheTimingPlane) {
  // `*_ms` metric exports carry elapsed-time values, so they must not
  // diverge the deterministic plane — unlike any other metric key.
  auto Run = [](double WallMs, double Queries) {
    std::ostringstream OS;
    OS << R"({"name":"metric","ph":"C","ts_ns":0,"tid":0,"seq":0,"args":{"key":"grpo.score_wall_ms","value":)"
       << WallMs << "}}\n";
    OS << R"({"name":"metric","ph":"C","ts_ns":0,"tid":0,"seq":1,"args":{"key":"verify.queries","value":)"
       << Queries << "}}\n";
    return aggregateRun(parseValid(OS.str()));
  };
  EXPECT_TRUE(
      diffRuns(Run(12.5, 40), Run(99.0, 40)).deterministicPlaneIdentical());
  EXPECT_FALSE(
      diffRuns(Run(12.5, 40), Run(12.5, 41)).deterministicPlaneIdentical());
  // The timing-plane event still counts toward event totals, just not
  // toward the deterministic multiset.
  RunSummary S = Run(12.5, 40);
  EXPECT_EQ(S.Events, 2u);
  EXPECT_EQ(S.DeterministicEvents, 1u);
}

TEST(RunDiffTest, DurabilityMetricsLiveOffTheDeterministicPlane) {
  // `io.*` metric exports measure how the *disk* behaved — flush failures,
  // degraded-mode gauges, checkpoint retries. A chaos run and a fault-free
  // same-seed run legitimately differ there, so the deterministic-plane
  // gate must ignore them while still catching any correctness-plane
  // drift.
  auto Run = [](double FlushFailures, double StoreWrites) {
    std::ostringstream OS;
    OS << R"({"name":"metric","ph":"C","ts_ns":0,"tid":0,"seq":0,"args":{"key":"io.store.flush_failures","value":)"
       << FlushFailures << "}}\n";
    OS << R"({"name":"metric","ph":"C","ts_ns":0,"tid":0,"seq":1,"args":{"key":"store.writes","value":)"
       << StoreWrites << "}}\n";
    return aggregateRun(parseValid(OS.str()));
  };
  // Faulty vs fault-free: only the durability plane moved — identical.
  EXPECT_TRUE(
      diffRuns(Run(7, 40), Run(0, 40)).deterministicPlaneIdentical());
  // But a store.writes divergence is a real correctness failure.
  EXPECT_FALSE(
      diffRuns(Run(0, 40), Run(0, 41)).deterministicPlaneIdentical());
  RunSummary S = Run(7, 40);
  EXPECT_EQ(S.Events, 2u);
  EXPECT_EQ(S.DeterministicEvents, 1u);
}

TEST(RunDiffTest, TruncatedJsonlNamesTheLine) {
  // A truncated final line (crash mid-write) must be a clean parse error,
  // not a crash — the CLI maps this to exit code 2.
  std::string Text = syntheticRun(RunSpec{});
  Text += R"({"name":"metric","ph":"C","ts_ns":0,"tid":9,"seq":9,"args":{"key":"x","va)";
  TraceLog Log;
  std::string Err;
  EXPECT_FALSE(parseTraceJsonl(Text, Log, &Err));
  EXPECT_NE(Err.find("line"), std::string::npos) << Err;
}

} // namespace
} // namespace veriopt
