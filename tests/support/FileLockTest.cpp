//===- FileLockTest.cpp - Cross-process advisory lock tests ------------------//
//
// In-process semantics (shared/shared coexistence, exclusive mutual
// exclusion, RAII release, move transfer) plus the test that actually
// matters for a cross-process primitive: a second *process* (veriopt-worker
// --lock-probe) observes contention while this process holds the lock and
// acquisition after it releases.
//
//===----------------------------------------------------------------------===//

#include "support/FileLock.h"

#include "support/Subprocess.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <unistd.h>

namespace veriopt {
namespace {

struct ScratchLock {
  std::string Path;
  explicit ScratchLock(const std::string &Name)
      : Path("/tmp/veriopt_filelock_test_" + std::to_string(::getpid()) +
             "_" + Name) {
    std::remove(Path.c_str());
  }
  ~ScratchLock() { std::remove(Path.c_str()); }
};

TEST(FileLock, AcquireReleaseBasics) {
  ScratchLock F("basics");
  FileLock L;
  EXPECT_FALSE(L.held());
  std::string Err;
  ASSERT_TRUE(L.lock(F.Path, FileLock::Mode::Exclusive, &Err)) << Err;
  EXPECT_TRUE(L.held());
  EXPECT_EQ(L.path(), F.Path);
  L.unlock();
  EXPECT_FALSE(L.held());
  // Re-acquisition after release works.
  ASSERT_TRUE(L.lock(F.Path, FileLock::Mode::Shared, &Err)) << Err;
  EXPECT_TRUE(L.held());
}

TEST(FileLock, SharedLocksCoexistExclusiveDoesNot) {
  ScratchLock F("modes");
  FileLock A, B;
  ASSERT_TRUE(A.lock(F.Path, FileLock::Mode::Shared));
  bool Contended = true;
  ASSERT_TRUE(B.tryLock(F.Path, FileLock::Mode::Shared, Contended));
  EXPECT_FALSE(Contended); // two readers share

  FileLock C;
  ASSERT_TRUE(C.tryLock(F.Path, FileLock::Mode::Exclusive, Contended));
  EXPECT_TRUE(Contended); // a writer cannot join readers
  EXPECT_FALSE(C.held());

  A.unlock();
  B.unlock();
  ASSERT_TRUE(C.tryLock(F.Path, FileLock::Mode::Exclusive, Contended));
  EXPECT_FALSE(Contended);
  EXPECT_TRUE(C.held());
}

TEST(FileLock, DestructorReleases) {
  ScratchLock F("raii");
  {
    FileLock L;
    ASSERT_TRUE(L.lock(F.Path, FileLock::Mode::Exclusive));
  }
  FileLock M;
  bool Contended = true;
  ASSERT_TRUE(M.tryLock(F.Path, FileLock::Mode::Exclusive, Contended));
  EXPECT_FALSE(Contended);
}

TEST(FileLock, MoveTransfersOwnership) {
  ScratchLock F("move");
  FileLock A;
  ASSERT_TRUE(A.lock(F.Path, FileLock::Mode::Exclusive));
  FileLock B = std::move(A);
  EXPECT_FALSE(A.held());
  EXPECT_TRUE(B.held());
  // Still exclusively held by B.
  FileLock C;
  bool Contended = false;
  ASSERT_TRUE(C.tryLock(F.Path, FileLock::Mode::Exclusive, Contended));
  EXPECT_TRUE(Contended);
}

TEST(FileLock, ErrorNamesUnopenablePath) {
  FileLock L;
  std::string Err;
  EXPECT_FALSE(L.lock("/nonexistent-dir/x.lock", FileLock::Mode::Exclusive,
                      &Err));
  EXPECT_FALSE(L.held());
  EXPECT_FALSE(Err.empty());
}

TEST(FileLock, PathThroughRegularFileFailsTyped) {
  // A lock path whose parent "directory" is actually a regular file is a
  // real I/O error (ENOTDIR), not contention: lock() must fail with the
  // open step named. (Tests run as root, so an unwritable-permissions file
  // cannot model this — chmod is ignored; a file-as-directory cannot be.)
  ScratchLock F("notdir");
  {
    std::ofstream OS(F.Path);
    OS << "a regular file, not a directory";
  }
  FileLock L;
  std::string Err;
  EXPECT_FALSE(L.lock(F.Path + "/x.lock", FileLock::Mode::Exclusive, &Err));
  EXPECT_FALSE(L.held());
  EXPECT_NE(Err.find("open lock file"), std::string::npos) << Err;
}

TEST(FileLock, SurvivesLockFileUnlinkedMidHold) {
  // An operator (or an overeager cleanup job) unlinking the lock file out
  // from under a holder must never wedge the runtime: the holder's flock
  // rides the now-anonymous inode and releases normally, and the next
  // acquirer transparently recreates the file and proceeds. The cost is
  // the documented advisory-lock caveat — the new file is a new inode, so
  // exclusion against the old holder is lost, never liveness.
  ScratchLock F("unlinked");
  FileLock A;
  ASSERT_TRUE(A.lock(F.Path, FileLock::Mode::Exclusive));
  ASSERT_EQ(::unlink(F.Path.c_str()), 0);

  FileLock B;
  bool Contended = true;
  std::string Err;
  ASSERT_TRUE(B.tryLock(F.Path, FileLock::Mode::Exclusive, Contended, &Err))
      << Err;
  EXPECT_FALSE(Contended); // fresh inode: the old hold cannot exclude it
  EXPECT_TRUE(B.held());

  A.unlock(); // releasing the unlinked inode's lock must not error/crash
  B.unlock();
  // And a clean reacquire on the recreated file works end to end.
  ASSERT_TRUE(A.lock(F.Path, FileLock::Mode::Exclusive, &Err)) << Err;
}

/// The cross-process arm: veriopt-worker --lock-probe tries a non-blocking
/// exclusive flock and exits 0 (acquired) or 7 (contended). flock is
/// per-open-file-description, so only another process can prove the lock
/// excludes the rest of the fleet.
TEST(FileLock, SecondProcessObservesContention) {
  ScratchLock F("xproc");
  auto Probe = [&] {
    Subprocess P;
    SubprocessOptions O;
    O.Argv = {VERIOPT_WORKER_BIN, "--lock-probe", F.Path};
    O.DeadlineMs = 30000;
    EXPECT_TRUE(P.spawn(O));
    SubprocessResult R = P.wait();
    EXPECT_EQ(R.Outcome, SubprocessOutcome::Exited) << R.describe();
    return R.ExitCode;
  };

  FileLock L;
  ASSERT_TRUE(L.lock(F.Path, FileLock::Mode::Exclusive));
  EXPECT_EQ(Probe(), 7); // held here -> the other process is locked out

  L.unlock();
  EXPECT_EQ(Probe(), 0); // released -> the other process acquires
}

} // namespace
} // namespace veriopt
