//===- IoEnvTest.cpp - Injectable I/O environment tests ----------------------//
//
// The seam's contracts: the passthrough is the default and install/restore
// is exact; FaultyIoEnv decisions are deterministic and schedule-independent
// (a pure function of seed, path, and per-path ordinal — never of
// interleaving); errnos are shaped from the classes real storage throws;
// each fault site produces the documented degraded behavior through the
// real call sites (writeFileAtomic, appendFileDurable, FileLock); exempt
// suffixes spare the whole atomic write including its decorated temporary;
// and the unique-temporary discipline lets two concurrent writers race one
// destination without tearing it.
//
//===----------------------------------------------------------------------===//

#include "support/IoEnv.h"

#include "support/AtomicFile.h"
#include "support/FileLock.h"

#include "gtest/gtest.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

namespace veriopt {
namespace {

struct IoEnvTest : ::testing::Test {
  std::string Dir;

  void SetUp() override {
    char Tmpl[] = "/tmp/veriopt-ioenv-test-XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
  }
  void TearDown() override {
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)std::system(Cmd.c_str());
  }

  std::string path(const std::string &Name) const { return Dir + "/" + Name; }

  static std::string slurp(const std::string &P) {
    std::ifstream IS(P, std::ios::binary);
    std::ostringstream SS;
    SS << IS.rdbuf();
    return SS.str();
  }

  static void spit(const std::string &P, const std::string &Text) {
    std::ofstream OS(P, std::ios::binary | std::ios::trunc);
    OS << Text;
  }

  /// Leftover "<name>.tmp.<pid>.<seq>" files in Dir — a failed atomic write
  /// must clean up after itself.
  std::vector<std::string> tempLeftovers() const {
    std::vector<std::string> Out;
    DIR *D = ::opendir(Dir.c_str());
    if (!D)
      return Out;
    while (struct dirent *E = ::readdir(D)) {
      std::string N = E->d_name;
      if (N.find(".tmp.") != std::string::npos)
        Out.push_back(N);
    }
    ::closedir(D);
    return Out;
  }

  /// A FaultyIoEnv with the given sites armed at \p Rate.
  static void arm(FaultInjector &FI, std::initializer_list<FaultSite> Sites,
                  double Rate) {
    for (FaultSite S : Sites)
      FI.enable(S, Rate);
  }
};

//===--- The seam itself ------------------------------------------------------//

TEST_F(IoEnvTest, PassthroughIsDefaultAndInstallRestores) {
  EXPECT_EQ(IoEnv::current(), &IoEnv::system());

  FaultInjector FI(1);
  FaultyIoEnv Faulty(FI);
  {
    ScopedIoEnv Install(&Faulty);
    EXPECT_EQ(IoEnv::current(), &Faulty);
    // The passthrough still works while another env is installed.
    EXPECT_TRUE(writeFileAtomic(path("via_faulty_no_faults.txt"), "ok"));
  }
  EXPECT_EQ(IoEnv::current(), &IoEnv::system());
  EXPECT_EQ(slurp(path("via_faulty_no_faults.txt")), "ok");
}

TEST_F(IoEnvTest, FaultyDecisionsAreScheduleIndependent) {
  // The same (seed, path, per-path ordinal) must decide the same way no
  // matter how operations on *other* paths interleave: run the same
  // per-path open sequences against two same-seed envs — once interleaved
  // A/B/A/B, once all-A-then-all-B — and require identical per-path
  // outcome vectors.
  const std::string A = path("sched_a.bin"), B = path("sched_b.bin");
  auto outcomes = [&](bool Interleaved) {
    FaultInjector FI(42);
    FI.enable(FaultSite::IoOpen, 0.5);
    FaultyIoEnv Env(FI);
    std::vector<bool> AOut, BOut;
    auto tryOpen = [&](const std::string &P, std::vector<bool> &Out) {
      int Fd = Env.open(P.c_str(), O_WRONLY | O_CREAT, 0644);
      Out.push_back(Fd >= 0);
      if (Fd >= 0)
        Env.close(Fd);
    };
    const int N = 32;
    if (Interleaved) {
      for (int I = 0; I < N; ++I) {
        tryOpen(A, AOut);
        tryOpen(B, BOut);
      }
    } else {
      for (int I = 0; I < N; ++I)
        tryOpen(A, AOut);
      for (int I = 0; I < N; ++I)
        tryOpen(B, BOut);
    }
    return std::make_pair(AOut, BOut);
  };

  auto [A1, B1] = outcomes(/*Interleaved=*/true);
  auto [A2, B2] = outcomes(/*Interleaved=*/false);
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(B1, B2);
  // At rate 0.5 over 32 ops both outcomes must actually occur.
  EXPECT_NE(std::count(A1.begin(), A1.end(), true), 0);
  EXPECT_NE(std::count(A1.begin(), A1.end(), false), 0);
}

TEST_F(IoEnvTest, ErrnoShapedFromRealStorageClasses) {
  FaultInjector FI(7);
  FI.enable(FaultSite::IoOpen, 1.0);
  FaultyIoEnv Env(FI);
  bool SawAny = false;
  for (int I = 0; I < 8; ++I) {
    errno = 0;
    int Fd = Env.open(path("errno_" + std::to_string(I)).c_str(),
                      O_WRONLY | O_CREAT, 0644);
    ASSERT_EQ(Fd, -1);
    EXPECT_TRUE(errno == ENOSPC || errno == EIO || errno == EDQUOT)
        << "unshaped errno " << errno;
    SawAny = true;
  }
  EXPECT_TRUE(SawAny);
}

//===--- Per-site behavior through the real call sites ------------------------//

TEST_F(IoEnvTest, WriteFaultFailsAtomicWriteAndPreservesOld) {
  const std::string P = path("write_fault.txt");
  spit(P, "OLD");
  FaultInjector FI(3);
  FI.enable(FaultSite::IoWrite, 1.0);
  FaultyIoEnv Env(FI);
  ScopedIoEnv Install(&Env);

  std::string Err;
  EXPECT_FALSE(writeFileAtomic(P, "NEW", &Err));
  EXPECT_NE(Err.find("write"), std::string::npos) << Err;
  EXPECT_EQ(slurp(P), "OLD");
  EXPECT_TRUE(tempLeftovers().empty()) << tempLeftovers().front();
}

TEST_F(IoEnvTest, ShortWritesCompleteThroughRetryLoops) {
  // Every write lands only half its bytes, but always >= 1: the writeAll
  // retry loop must still terminate with the full payload on disk.
  const std::string P = path("short_write.txt");
  FaultInjector FI(5);
  FI.enable(FaultSite::IoShortWrite, 1.0);
  FaultyIoEnv Env(FI);
  ScopedIoEnv Install(&Env);

  std::string Payload(4096, 'x');
  Payload += "tail-marker";
  ASSERT_TRUE(writeFileAtomic(P, Payload));
  EXPECT_EQ(slurp(P), Payload);
}

TEST_F(IoEnvTest, RenameFaultLeavesDestinationUntouched) {
  const std::string P = path("rename_fault.txt");
  spit(P, "OLD");
  FaultInjector FI(11);
  FI.enable(FaultSite::IoRename, 1.0);
  FaultyIoEnv Env(FI);
  ScopedIoEnv Install(&Env);

  std::string Err;
  EXPECT_FALSE(writeFileAtomic(P, "NEW", &Err));
  EXPECT_NE(Err.find("rename"), std::string::npos) << Err;
  EXPECT_EQ(slurp(P), "OLD");
  EXPECT_TRUE(tempLeftovers().empty());
}

TEST_F(IoEnvTest, FsyncFaultFailsAppendButOldBytesSurvive) {
  const std::string P = path("fsync_fault.log");
  spit(P, "OLD|");
  FaultInjector FI(13);
  FI.enable(FaultSite::IoFsync, 1.0);
  FaultyIoEnv Env(FI);
  ScopedIoEnv Install(&Env);

  std::string Err;
  EXPECT_FALSE(appendFileDurable(P, "payload", &Err));
  EXPECT_NE(Err.find("append/fsync"), std::string::npos) << Err;
  // An append failure may leave a partial tail — that is the documented
  // hazard consumers frame against — but never rewrites the old bytes.
  std::string Now = slurp(P);
  ASSERT_GE(Now.size(), 4u);
  EXPECT_EQ(Now.substr(0, 4), "OLD|");
  EXPECT_EQ(std::string("payload").compare(0, Now.size() - 4,
                                           Now.substr(4)),
            0)
      << "tail is not a prefix of the payload: " << Now;
}

TEST_F(IoEnvTest, FlockFaultFailsFileLockWithTypedError) {
  FaultInjector FI(17);
  FI.enable(FaultSite::IoFlock, 1.0);
  FaultyIoEnv Env(FI);
  ScopedIoEnv Install(&Env);

  FileLock L;
  std::string Err;
  EXPECT_FALSE(L.lock(path("x.lock"), FileLock::Mode::Exclusive, &Err));
  EXPECT_FALSE(L.held());
  EXPECT_NE(Err.find("flock"), std::string::npos) << Err;
}

TEST_F(IoEnvTest, ExemptSuffixSparesWholeAtomicWrite) {
  // Arm every site at 100%: only the exempt destination may survive — and
  // it must, including the ".tmp.<pid>.<seq>" staging file its payload is
  // actually written through.
  FaultInjector FI(19);
  arm(FI, {FaultSite::IoOpen, FaultSite::IoWrite, FaultSite::IoShortWrite,
           FaultSite::IoFsync, FaultSite::IoRename, FaultSite::IoFlock},
      1.0);
  FaultyIoEnv Env(FI);
  Env.exemptSuffix(".jsonl");
  ScopedIoEnv Install(&Env);

  ASSERT_TRUE(writeFileAtomic(path("gate.jsonl"), "events\n"));
  EXPECT_EQ(slurp(path("gate.jsonl")), "events\n");
  EXPECT_FALSE(writeFileAtomic(path("gate.bin"), "x"));
}

TEST_F(IoEnvTest, ForeignFdsPassThrough) {
  // Only descriptors opened *through* the env are fault candidates; fds
  // from elsewhere (stdio, sockets, raw opens) are never touched.
  FaultInjector FI(23);
  arm(FI, {FaultSite::IoWrite, FaultSite::IoFsync}, 1.0);
  FaultyIoEnv Env(FI);

  int Fd = ::open(path("foreign.txt").c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(Fd, 0);
  EXPECT_EQ(Env.write(Fd, "ok", 2), 2);
  EXPECT_EQ(Env.fsync(Fd), 0);
  ::close(Fd);
  EXPECT_EQ(slurp(path("foreign.txt")), "ok");
}

//===--- Unique temporaries / two-writer race ----------------------------------//

TEST_F(IoEnvTest, AtomicTempPathIsUniquePerCall) {
  const std::string P = path("dest.json");
  std::string T1 = atomicTempPath(P), T2 = atomicTempPath(P);
  EXPECT_NE(T1, T2);
  EXPECT_EQ(T1.compare(0, P.size() + 5, P + ".tmp."), 0) << T1;
  EXPECT_EQ(T2.compare(0, P.size() + 5, P + ".tmp."), 0) << T2;
}

TEST_F(IoEnvTest, TwoConcurrentWritersNeverTearTheDestination) {
  // Regression for the "<path>.tmp" collision: with a shared temporary
  // name, two racing writers truncate/rename each other's staging file and
  // a torn or empty destination can be published. With per-call unique
  // temporaries the destination is always one writer's complete payload.
  const std::string P = path("contested.json");
  const std::string A(64 * 1024, 'a'), B(64 * 1024, 'b');
  const int Rounds = 40;

  std::thread TA([&] {
    for (int I = 0; I < Rounds; ++I)
      ASSERT_TRUE(writeFileAtomic(P, A));
  });
  std::thread TB([&] {
    for (int I = 0; I < Rounds; ++I)
      ASSERT_TRUE(writeFileAtomic(P, B));
  });
  TA.join();
  TB.join();

  std::string Final = slurp(P);
  EXPECT_TRUE(Final == A || Final == B)
      << "destination torn: " << Final.size() << " bytes, first char '"
      << (Final.empty() ? '?' : Final[0]) << "'";
  EXPECT_TRUE(tempLeftovers().empty()) << tempLeftovers().front();
}

} // namespace
} // namespace veriopt
