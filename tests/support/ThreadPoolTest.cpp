//===- ThreadPoolTest.cpp - Worker pool unit tests -------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace veriopt {
namespace {

TEST(ThreadPool, SerialDegenerateCase) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1u);
  std::vector<int> Hits(100, 0);
  Pool.parallelFor(Hits.size(), [&](size_t I) { Hits[I]++; });
  for (int H : Hits)
    EXPECT_EQ(H, 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  constexpr size_t N = 10000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  // The GRPO trainer submits one job per step for hundreds of steps; the
  // pool must not leak or wedge across submissions (including empty ones).
  ThreadPool Pool(3);
  std::atomic<uint64_t> Sum{0};
  Pool.parallelFor(0, [&](size_t) { Sum += 1; }); // no-op
  for (int Step = 0; Step < 50; ++Step)
    Pool.parallelFor(40, [&](size_t I) { Sum.fetch_add(I); });
  EXPECT_EQ(Sum.load(), 50u * (40u * 39u / 2));
}

TEST(ThreadPool, ParallelWritesToDistinctSlots) {
  // The scoring-phase pattern: each task owns exactly one output slot.
  ThreadPool Pool(4);
  constexpr size_t N = 512;
  std::vector<uint64_t> Out(N, 0);
  Pool.parallelFor(N, [&](size_t I) { Out[I] = I * I; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Out[I], I * I);
}

} // namespace
} // namespace veriopt
