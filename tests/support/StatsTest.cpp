//===- StatsTest.cpp - Statistics helper tests ----------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace veriopt {
namespace {

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
  // Non-positive entries are clamped, not fatal.
  EXPECT_GT(geomean({0.0, 4.0}), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> Xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(Xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(Xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(Xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(Xs, 25), 2.0);
  // Interpolation between ranks.
  EXPECT_NEAR(percentile({1, 2}, 80), 1.8, 1e-12);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, EMATracksWithLag) {
  EMA S(0.95);
  EXPECT_FALSE(S.primed());
  EXPECT_DOUBLE_EQ(S.push(10.0), 10.0); // first sample primes
  EXPECT_TRUE(S.primed());
  double V = S.push(0.0);
  EXPECT_NEAR(V, 9.5, 1e-12);
  // Converges toward a constant input.
  for (int I = 0; I < 500; ++I)
    V = S.push(0.0);
  EXPECT_NEAR(V, 0.0, 1e-6);
}

TEST(Stats, EMASmoothsNoise) {
  EMA S(0.95);
  // Alternating +1/-1 should smooth to near zero.
  double V = 0;
  for (int I = 0; I < 1000; ++I)
    V = S.push(I % 2 ? 1.0 : -1.0);
  EXPECT_LT(std::abs(V), 0.2);
}

} // namespace
} // namespace veriopt
