//===- APInt64Test.cpp - Unit + property tests for APInt64 ----------------===//

#include "support/APInt64.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(APInt64, BasicConstruction) {
  APInt64 A(8, 0x1FF); // truncates to width
  EXPECT_EQ(A.zext(), 0xFFu);
  EXPECT_TRUE(A.isAllOnes());
  EXPECT_EQ(A.sext(), -1);
  EXPECT_TRUE(A.isNegative());

  APInt64 B(1, 1);
  EXPECT_TRUE(B.isOne());
  EXPECT_TRUE(B.isAllOnes());
  EXPECT_EQ(B.sext(), -1);
}

TEST(APInt64, SignedBoundaries) {
  EXPECT_EQ(APInt64::signedMin(8).sext(), -128);
  EXPECT_EQ(APInt64::signedMax(8).sext(), 127);
  EXPECT_EQ(APInt64::signedMin(64).sext(), INT64_MIN);
  EXPECT_EQ(APInt64::signedMax(64).sext(), INT64_MAX);
  EXPECT_TRUE(APInt64::signedMin(32).isSignedMin());
}

TEST(APInt64, WrapAroundArithmetic) {
  APInt64 Max = APInt64::allOnes(16);
  EXPECT_TRUE(Max.add(APInt64::one(16)).isZero());
  EXPECT_EQ(APInt64::zero(16).sub(APInt64::one(16)).zext(), 0xFFFFu);
  EXPECT_EQ(APInt64(8, 16).mul(APInt64(8, 16)).zext(), 0u);
}

TEST(APInt64, DivisionSemantics) {
  // Signed division truncates toward zero.
  EXPECT_EQ(APInt64::fromSigned(32, -7).sdiv(APInt64(32, 2)).sext(), -3);
  EXPECT_EQ(APInt64::fromSigned(32, -7).srem(APInt64(32, 2)).sext(), -1);
  EXPECT_EQ(APInt64(32, 7).udiv(APInt64(32, 2)).zext(), 3u);
  EXPECT_EQ(APInt64(32, 7).urem(APInt64(32, 2)).zext(), 1u);
}

TEST(APInt64, ShiftEdgeCases) {
  APInt64 V(8, 0x80);
  EXPECT_EQ(V.ashr(APInt64(8, 7)).zext(), 0xFFu); // sign-fill
  EXPECT_EQ(V.lshr(APInt64(8, 7)).zext(), 1u);
  // Out-of-range shifts are total (defined to 0 / sign-fill).
  EXPECT_TRUE(V.shl(APInt64(8, 8)).isZero());
  EXPECT_TRUE(V.lshr(APInt64(8, 200)).isZero());
  EXPECT_TRUE(V.ashr(APInt64(8, 8)).isAllOnes());
  EXPECT_TRUE(APInt64(8, 1).ashr(APInt64(8, 9)).isZero());
}

TEST(APInt64, WidthChanges) {
  APInt64 V(16, 0xFF80);
  EXPECT_EQ(V.truncTo(8).zext(), 0x80u);
  EXPECT_EQ(V.truncTo(8).sextTo(16).zext(), 0xFF80u);
  EXPECT_EQ(V.truncTo(8).zextTo(16).zext(), 0x0080u);
}

TEST(APInt64, BitQueries) {
  APInt64 V(32, 0x00F0);
  EXPECT_EQ(V.countTrailingZeros(), 4u);
  EXPECT_EQ(V.countLeadingZeros(), 24u);
  EXPECT_EQ(V.popCount(), 4u);
  EXPECT_FALSE(V.isPowerOf2());
  EXPECT_TRUE(APInt64(32, 64).isPowerOf2());
  EXPECT_EQ(APInt64(32, 64).exactLog2(), 6u);
  EXPECT_EQ(APInt64::zero(32).countTrailingZeros(), 32u);
  EXPECT_EQ(APInt64::zero(32).countLeadingZeros(), 32u);
}

TEST(APInt64, OverflowPredicates) {
  APInt64 Max8 = APInt64::signedMax(8);
  EXPECT_TRUE(Max8.addOverflowsSigned(APInt64(8, 1)));
  EXPECT_FALSE(Max8.addOverflowsUnsigned(APInt64(8, 1)));
  EXPECT_TRUE(APInt64::allOnes(8).addOverflowsUnsigned(APInt64(8, 1)));
  EXPECT_TRUE(APInt64::zero(8).subOverflowsUnsigned(APInt64(8, 1)));
  EXPECT_TRUE(
      APInt64::signedMin(8).subOverflowsSigned(APInt64(8, 1)));
  EXPECT_TRUE(APInt64(8, 16).mulOverflowsUnsigned(APInt64(8, 16)));
  EXPECT_FALSE(APInt64(8, 15).mulOverflowsUnsigned(APInt64(8, 17)));
  EXPECT_TRUE(APInt64(8, 64).shlOverflowsUnsigned(APInt64(8, 2)));
  EXPECT_FALSE(APInt64(8, 63).shlOverflowsUnsigned(APInt64(8, 1)));
  EXPECT_TRUE(APInt64(8, 64).shlOverflowsSigned(APInt64(8, 1)));
}

TEST(APInt64, ToString) {
  EXPECT_EQ(APInt64::fromSigned(32, -159).toString(), "-159");
  EXPECT_EQ(APInt64(32, 159).toString(false), "159");
  EXPECT_EQ(APInt64::allOnes(8).toString(), "-1");
}

/// Property sweep: every operation must agree with native 64-bit arithmetic
/// reduced mod 2^width, across all supported widths.
class APInt64Property : public ::testing::TestWithParam<unsigned> {};

TEST_P(APInt64Property, MatchesNativeReference) {
  unsigned W = GetParam();
  RNG R(12345 + W);
  uint64_t Mask = W == 64 ? ~0ULL : ((1ULL << W) - 1);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    uint64_t A = R.next() & Mask, B = R.next() & Mask;
    APInt64 X(W, A), Y(W, B);
    EXPECT_EQ(X.add(Y).zext(), (A + B) & Mask);
    EXPECT_EQ(X.sub(Y).zext(), (A - B) & Mask);
    EXPECT_EQ(X.mul(Y).zext(), (A * B) & Mask);
    EXPECT_EQ(X.andOp(Y).zext(), (A & B));
    EXPECT_EQ(X.orOp(Y).zext(), (A | B));
    EXPECT_EQ(X.xorOp(Y).zext(), (A ^ B));
    EXPECT_EQ(X.notOp().zext(), (~A) & Mask);
    EXPECT_EQ(X.neg().zext(), (0 - A) & Mask);
    if (B != 0) {
      EXPECT_EQ(X.udiv(Y).zext(), (A / B) & Mask);
      EXPECT_EQ(X.urem(Y).zext(), (A % B) & Mask);
    }
    uint64_t Sh = B % (W + 4); // include some out-of-range shifts
    APInt64 ShV(W, Sh);
    uint64_t ShlRef = Sh >= W ? 0 : (A << Sh) & Mask;
    uint64_t LshrRef = Sh >= W ? 0 : (A & Mask) >> Sh;
    EXPECT_EQ(X.shl(ShV).zext(), ShlRef);
    EXPECT_EQ(X.lshr(ShV).zext(), LshrRef);
    // Comparison cross-check.
    EXPECT_EQ(X.ult(Y), A < B);
    EXPECT_EQ(X.slt(Y), X.sext() < Y.sext());
    EXPECT_EQ(X.eq(Y), A == B);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, APInt64Property,
                         ::testing::Values(1u, 8u, 16u, 32u, 64u));

} // namespace
} // namespace veriopt
