//===- CrashConsistencyTest.cpp - Torn-write crash-state enumeration ---------//
//
// ALICE-style crash-consistency fuzzing of the durable writers. A
// RecordingIoEnv captures the exact syscall sequence an operation issues
// (opens, the bytes of every write, fsyncs — file and parent-directory —
// renames, unlinks). A small persistence model then replays every prefix of
// that sequence and enumerates what the disk may legally hold if the
// process dies at that boundary:
//
//  * bytes written but not yet fsync'ed may be any prefix of the tail
//    (we materialize the synced length, a midpoint, and the full length);
//  * a rename not yet covered by a parent-directory fsync may or may not
//    have reached the disk (we materialize both).
//
// Against every materialized crash state we assert the recovery contracts:
//
//  * writeFileAtomic: the destination is the complete old payload or the
//    complete new payload — never torn, never empty-but-renamed. This is
//    exactly the fsync-before-rename discipline; drop the fsync and the
//    "rename applied, tail truncated" states fail here.
//  * appendFileDurable: the old bytes survive untouched and the tail is a
//    prefix of the appended payload (the documented torn-tail hazard that
//    CRC framing / .stream republication exist to absorb).
//  * VerdictStore journal (appends and compaction): every crash state
//    opens under quarantine-and-continue — never an error — and every
//    record it serves is bit-identical to what was put. Verdicts are
//    deterministic, so record-level bit-identity is precisely the warm-
//    store-equals-oracle property: a lookup either returns the exact bytes
//    a fault-free run would recompute, or misses and the run recomputes
//    them itself.
//
//===----------------------------------------------------------------------===//

#include "support/IoEnv.h"

#include "store/VerdictStore.h"
#include "support/AtomicFile.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace veriopt {
namespace {

//===--- The persistence model -------------------------------------------------//

struct SimFile {
  std::string Content;
  size_t Synced = 0; ///< bytes guaranteed on disk (<= Content.size())
};

/// A rename that has happened in the page cache but is not yet covered by a
/// parent-directory fsync: the crash may revert it, resurfacing whatever
/// the destination held before.
struct PendingRename {
  std::string From, To;
  bool HadPrevTo = false;
  SimFile PrevTo;
};

struct SimFs {
  std::map<std::string, SimFile> Files;
  std::vector<PendingRename> Pending;

  void apply(const RecordingIoEnv::Op &O) {
    using Kind = RecordingIoEnv::Op::Kind;
    switch (O.K) {
    case Kind::Open:
      if (O.IsDir)
        break;
      if (O.Flags & O_TRUNC)
        Files[O.Path] = SimFile{};
      else
        Files.emplace(O.Path, SimFile{}); // create-if-absent (O_CREAT)
      break;
    case Kind::Write:
      // Every durable writer in the runtime appends (O_APPEND or a fresh
      // O_TRUNC temporary); none seeks backwards.
      Files[O.Path].Content += O.Data;
      break;
    case Kind::Fsync:
      if (O.IsDir) {
        Pending.clear(); // parent-dir fsync makes prior renames durable
      } else {
        auto It = Files.find(O.Path);
        if (It != Files.end())
          It->second.Synced = It->second.Content.size();
      }
      break;
    case Kind::Rename: {
      PendingRename PR;
      PR.From = O.Path;
      PR.To = O.Path2;
      auto To = Files.find(O.Path2);
      if (To != Files.end()) {
        PR.HadPrevTo = true;
        PR.PrevTo = To->second;
      }
      Files[O.Path2] = Files[O.Path];
      Files.erase(O.Path);
      Pending.push_back(std::move(PR));
      break;
    }
    case Kind::Unlink:
      Files.erase(O.Path);
      break;
    case Kind::Close:
    case Kind::Flock:
      break;
    }
  }
};

/// One materialized may-happen disk state: path -> bytes.
struct DiskState {
  std::map<std::string, std::string> Files;
  std::string Label;
};

enum class TailLen { Synced, Mid, Full };

DiskState materialize(const SimFs &Fs, TailLen L, bool RenamesApplied,
                      const std::string &Label) {
  // Revert un-fsynced renames in reverse order when the crash loses them:
  // the current bytes live under the old name again and the overwritten
  // destination (if any) resurfaces.
  std::map<std::string, SimFile> Files = Fs.Files;
  if (!RenamesApplied)
    for (auto It = Fs.Pending.rbegin(); It != Fs.Pending.rend(); ++It) {
      auto To = Files.find(It->To);
      if (To != Files.end()) {
        Files[It->From] = To->second;
        Files.erase(It->To);
      }
      if (It->HadPrevTo)
        Files[It->To] = It->PrevTo;
    }

  DiskState D;
  D.Label = Label;
  for (const auto &[Path, F] : Files) {
    size_t Len = F.Content.size();
    size_t Keep = L == TailLen::Synced ? F.Synced
                  : L == TailLen::Mid  ? F.Synced + (Len - F.Synced) / 2
                                       : Len;
    D.Files[Path] = F.Content.substr(0, Keep);
  }
  return D;
}

/// Every crash state of \p Ops starting from \p Initial: one per (prefix,
/// tail length, rename durability) combination.
std::vector<DiskState> crashStates(const SimFs &Initial,
                                   const std::vector<RecordingIoEnv::Op> &Ops) {
  std::vector<DiskState> Out;
  for (size_t K = 0; K <= Ops.size(); ++K) {
    SimFs Fs = Initial;
    for (size_t I = 0; I < K; ++I)
      Fs.apply(Ops[I]);
    for (TailLen L : {TailLen::Synced, TailLen::Mid, TailLen::Full})
      for (bool Applied : {false, true}) {
        std::string Label =
            "prefix " + std::to_string(K) + "/" + std::to_string(Ops.size()) +
            (L == TailLen::Synced ? ", tail=synced"
             : L == TailLen::Mid  ? ", tail=mid"
                                  : ", tail=full") +
            (Applied ? ", renames applied" : ", renames lost");
        Out.push_back(materialize(Fs, L, Applied, Label));
      }
  }
  return Out;
}

//===--- Fixture ---------------------------------------------------------------//

struct CrashConsistency : ::testing::Test {
  std::string Dir;

  void SetUp() override {
    char Tmpl[] = "/tmp/veriopt-crash-test-XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
  }
  void TearDown() override {
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)std::system(Cmd.c_str());
  }

  std::string path(const std::string &Name) const { return Dir + "/" + Name; }

  static void spit(const std::string &P, const std::string &Text) {
    std::ofstream OS(P, std::ios::binary | std::ios::trunc);
    OS << Text;
  }

  /// Baseline state for a file that durably existed before the recording
  /// started.
  static SimFs baseline(const std::string &Path, const std::string &Content) {
    SimFs Fs;
    Fs.Files[Path] = {Content, Content.size()};
    return Fs;
  }
};

//===--- writeFileAtomic -------------------------------------------------------//

TEST_F(CrashConsistency, AtomicReplaceIsAllOrNothing) {
  const std::string P = path("replace.json");
  const std::string Old = "{\"v\":\"old\"}", New = "{\"v\":\"new-longer\"}";
  spit(P, Old);

  RecordingIoEnv Rec;
  {
    ScopedIoEnv Install(&Rec);
    ASSERT_TRUE(writeFileAtomic(P, New));
  }
  std::vector<RecordingIoEnv::Op> Ops = Rec.ops();
  ASSERT_FALSE(Ops.empty());

  size_t Checked = 0;
  for (const DiskState &D : crashStates(baseline(P, Old), Ops)) {
    auto It = D.Files.find(P);
    ASSERT_NE(It, D.Files.end())
        << D.Label << ": destination vanished entirely";
    EXPECT_TRUE(It->second == Old || It->second == New)
        << D.Label << ": torn destination (" << It->second.size()
        << " bytes)";
    ++Checked;
  }
  // Every syscall boundary was enumerated, in all tail/rename variants.
  EXPECT_EQ(Checked, (Ops.size() + 1) * 6);
}

TEST_F(CrashConsistency, AtomicWriteOfFreshFileIsCompleteOrAbsent) {
  const std::string P = path("fresh.json");
  const std::string New(1024, 'n');

  RecordingIoEnv Rec;
  {
    ScopedIoEnv Install(&Rec);
    ASSERT_TRUE(writeFileAtomic(P, New));
  }

  for (const DiskState &D : crashStates(SimFs{}, Rec.ops())) {
    auto It = D.Files.find(P);
    if (It != D.Files.end())
      EXPECT_EQ(It->second, New)
          << D.Label << ": a visible destination must be the full payload "
          << "(renamed-but-torn means the fsync-before-rename was skipped)";
  }
}

//===--- appendFileDurable -----------------------------------------------------//

TEST_F(CrashConsistency, DurableAppendPreservesOldAndTearsOnlyTheTail) {
  const std::string P = path("journal.log");
  const std::string Old = "line-1\nline-2\n";
  const std::string Payload = "line-3\nline-4\n";
  spit(P, Old);

  RecordingIoEnv Rec;
  {
    ScopedIoEnv Install(&Rec);
    ASSERT_TRUE(appendFileDurable(P, Payload));
  }

  bool SawPartial = false, SawFull = false;
  for (const DiskState &D : crashStates(baseline(P, Old), Rec.ops())) {
    auto It = D.Files.find(P);
    ASSERT_NE(It, D.Files.end()) << D.Label;
    const std::string &Now = It->second;
    ASSERT_GE(Now.size(), Old.size())
        << D.Label << ": old bytes lost from an append-only file";
    EXPECT_EQ(Now.substr(0, Old.size()), Old) << D.Label;
    std::string Tail = Now.substr(Old.size());
    EXPECT_EQ(Payload.compare(0, Tail.size(), Tail), 0)
        << D.Label << ": tail is not a prefix of the payload";
    (Tail.size() == Payload.size() ? SawFull : SawPartial) = true;
  }
  // The enumeration must actually cover both torn and complete outcomes.
  EXPECT_TRUE(SawPartial);
  EXPECT_TRUE(SawFull);
}

//===--- VerdictStore: appends + compaction ------------------------------------//

VerifyResult record(uint64_t Salt) {
  VerifyResult R;
  R.Status = VerifyStatus::Equivalent;
  R.Kind = DiagKind::None;
  R.SolverConflicts = 0x0123456789ABCDEFull ^ Salt;
  R.FuelSpent = 0xFEDCBA9876543210ull + Salt;
  R.RetryTier = static_cast<unsigned>(Salt % 3);
  return R;
}

TEST_F(CrashConsistency, EveryJournalCrashStateLoadsAndServesExactRecords) {
  const std::string Journal = path("verdicts.vstore");
  const unsigned NumKeys = 6;

  // Record a full journal lifecycle: two flushed batches, then a
  // compaction (the atomic whole-file rewrite), then close.
  RecordingIoEnv Rec;
  {
    ScopedIoEnv Install(&Rec);
    std::string Err;
    auto Store = VerdictStore::open(Journal, &Err);
    ASSERT_NE(Store, nullptr) << Err;
    for (unsigned I = 0; I < NumKeys / 2; ++I)
      Store->put("crash-key-" + std::to_string(I), record(I));
    ASSERT_TRUE(Store->flush(&Err)) << Err;
    for (unsigned I = NumKeys / 2; I < NumKeys; ++I)
      Store->put("crash-key-" + std::to_string(I), record(I));
    ASSERT_TRUE(Store->flush(&Err)) << Err;
    ASSERT_TRUE(Store->compact(&Err)) << Err;
  }
  std::vector<RecordingIoEnv::Op> Ops = Rec.ops();
  ASSERT_FALSE(Ops.empty());

  const std::string Probe = path("probe.vstore");
  uint64_t FullStates = 0;
  for (const DiskState &D : crashStates(SimFs{}, Ops)) {
    // Materialize this crash state's journal at a fresh path and recover.
    std::remove(Probe.c_str());
    std::remove((Probe + ".lock").c_str());
    auto It = D.Files.find(Journal);
    if (It != D.Files.end())
      spit(Probe, It->second);

    std::string Err;
    auto Store = VerdictStore::open(Probe, &Err);
    ASSERT_NE(Store, nullptr)
        << D.Label << ": crash state failed to load: " << Err;

    // Quarantine-and-continue may drop torn records, never invent or
    // corrupt them: every served verdict is bit-identical to what was put.
    uint64_t Served = 0;
    for (unsigned I = 0; I < NumKeys; ++I) {
      const std::string Key = "crash-key-" + std::to_string(I);
      VerifyResult Out;
      if (!Store->lookup(Key, Out))
        continue;
      ++Served;
      EXPECT_EQ(VerdictStore::encodeRecord(Key, Out),
                VerdictStore::encodeRecord(Key, record(I)))
          << D.Label << ": " << Key << " came back different — the warm "
          << "store would diverge from the recompute oracle";
    }
    EXPECT_LE(Served, NumKeys) << D.Label;
    EXPECT_LE(Store->stats().LiveAtOpen, NumKeys) << D.Label;
    if (Served == NumKeys)
      ++FullStates;
  }
  // The final boundary (everything flushed and compacted) must serve the
  // complete record set — durability loss is bounded by what was pending.
  EXPECT_GT(FullStates, 0u);

  std::remove(Probe.c_str());
  std::remove((Probe + ".lock").c_str());
}

} // namespace
} // namespace veriopt
