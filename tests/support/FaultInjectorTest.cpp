//===- FaultInjectorTest.cpp - Deterministic fault injection ------------------//

#include "support/FaultInjector.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <vector>

using namespace veriopt;

TEST(FaultInjector, DisabledByDefault) {
  FaultInjector FI(42);
  for (unsigned S = 0; S < static_cast<unsigned>(FaultSite::NumSites); ++S)
    for (uint64_t K = 0; K < 100; ++K)
      EXPECT_FALSE(FI.shouldInject(static_cast<FaultSite>(S), K));
  EXPECT_EQ(FI.counters().totalInjected(), 0u);
}

TEST(FaultInjector, RateOneAlwaysFires) {
  FaultInjector FI(42);
  FI.enable(FaultSite::OracleBudget, 1.0);
  for (uint64_t K = 0; K < 100; ++K)
    EXPECT_TRUE(FI.shouldInject(FaultSite::OracleBudget, K));
  EXPECT_EQ(FI.counters().injected(FaultSite::OracleBudget), 100u);
  EXPECT_EQ(FI.counters().checked(FaultSite::OracleBudget), 100u);
}

TEST(FaultInjector, DecisionIsPureFunctionOfSeedSiteKey) {
  FaultInjector A(7), B(7);
  A.enable(FaultSite::VerdictFlip, 0.3);
  B.enable(FaultSite::VerdictFlip, 0.3);
  for (uint64_t K = 0; K < 1000; ++K)
    EXPECT_EQ(A.shouldInject(FaultSite::VerdictFlip, K),
              B.shouldInject(FaultSite::VerdictFlip, K));
  // Re-asking the same key gives the same answer (no counter dependence).
  for (uint64_t K = 0; K < 50; ++K) {
    bool First = A.shouldInject(FaultSite::VerdictFlip, K);
    EXPECT_EQ(First, A.shouldInject(FaultSite::VerdictFlip, K));
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultInjector A(1), B(2);
  A.enable(FaultSite::CacheMiss, 0.5);
  B.enable(FaultSite::CacheMiss, 0.5);
  unsigned Diffs = 0;
  for (uint64_t K = 0; K < 1000; ++K)
    Diffs += A.shouldInject(FaultSite::CacheMiss, K) !=
             B.shouldInject(FaultSite::CacheMiss, K);
  EXPECT_GT(Diffs, 100u);
}

TEST(FaultInjector, SitesAreIndependent) {
  FaultInjector FI(9);
  FI.enable(FaultSite::OracleBudget, 1.0);
  // Other sites stay silent.
  EXPECT_TRUE(FI.shouldInject(FaultSite::OracleBudget, 5));
  EXPECT_FALSE(FI.shouldInject(FaultSite::VerdictFlip, 5));
  EXPECT_FALSE(FI.shouldInject(FaultSite::CheckpointWrite, 5));
}

TEST(FaultInjector, RateControlsFrequencyRoughly) {
  FaultInjector FI(1234);
  FI.enable(FaultSite::CacheMiss, 0.25);
  unsigned Fired = 0;
  const unsigned N = 4000;
  for (uint64_t K = 0; K < N; ++K)
    Fired += FI.shouldInject(FaultSite::CacheMiss, K);
  double Rate = static_cast<double>(Fired) / N;
  EXPECT_NEAR(Rate, 0.25, 0.05);
}

TEST(FaultInjector, StringKeysHashStably) {
  FaultInjector FI(3);
  FI.enable(FaultSite::CheckpointWrite, 0.5);
  bool A = FI.shouldInject(FaultSite::CheckpointWrite, std::string("alpha"));
  EXPECT_EQ(A, FI.shouldInject(FaultSite::CheckpointWrite,
                               FaultInjector::hashKey("alpha")));
}

TEST(FaultInjector, ThreadSafeAndScheduleIndependent) {
  FaultInjector FI(77);
  FI.enable(FaultSite::CacheMiss, 0.5);

  // Reference decisions, computed serially.
  std::vector<char> Expected(2000);
  {
    FaultInjector Ref(77);
    Ref.enable(FaultSite::CacheMiss, 0.5);
    for (uint64_t K = 0; K < Expected.size(); ++K)
      Expected[K] = Ref.shouldInject(FaultSite::CacheMiss, K);
  }

  std::vector<char> Got(Expected.size());
  ThreadPool Pool(4);
  Pool.parallelFor(Got.size(), [&](size_t K) {
    Got[K] = FI.shouldInject(FaultSite::CacheMiss, K);
  });
  EXPECT_EQ(Got, Expected);
  EXPECT_EQ(FI.counters().checked(FaultSite::CacheMiss), Expected.size());
}

TEST(FaultInjector, SiteNamesAreDistinct) {
  EXPECT_STRNE(faultSiteName(FaultSite::OracleBudget),
               faultSiteName(FaultSite::VerdictFlip));
  EXPECT_STRNE(faultSiteName(FaultSite::CacheMiss),
               faultSiteName(FaultSite::CheckpointWrite));
}
