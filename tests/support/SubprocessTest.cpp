//===- SubprocessTest.cpp - Supervised child-process primitive tests ---------//
//
// Exercises the failure modes the eval driver's retry policy keys off:
// exit-code propagation, crash signals, deadline SIGKILL escalation,
// EINTR-interrupted waits, bounded stderr capture, spawn failure, and
// zombie-free destruction.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "gtest/gtest.h"

#include <csignal>
#include <string>
#include <vector>

#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

namespace veriopt {
namespace {

SubprocessOptions sh(const std::string &Script, uint64_t DeadlineMs = 0) {
  SubprocessOptions O;
  O.Argv = {"/bin/sh", "-c", Script};
  O.DeadlineMs = DeadlineMs;
  return O;
}

TEST(Subprocess, PropagatesExitCode) {
  Subprocess P;
  ASSERT_TRUE(P.spawn(sh("exit 0")));
  SubprocessResult R = P.wait();
  EXPECT_EQ(R.Outcome, SubprocessOutcome::Exited);
  EXPECT_EQ(R.ExitCode, 0);

  Subprocess Q;
  ASSERT_TRUE(Q.spawn(sh("exit 42")));
  R = Q.wait();
  EXPECT_EQ(R.Outcome, SubprocessOutcome::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Subprocess, ReportsCrashSignal) {
  Subprocess P;
  ASSERT_TRUE(P.spawn(sh("kill -ABRT $$")));
  SubprocessResult R = P.wait();
  EXPECT_EQ(R.Outcome, SubprocessOutcome::Signaled);
  EXPECT_EQ(R.Signal, SIGABRT);
  EXPECT_NE(R.describe().find("signal"), std::string::npos);
}

TEST(Subprocess, DeadlineEscalatesToSigkill) {
  Subprocess P;
  // The child ignores polite signals; only SIGKILL can end it. A blown
  // deadline must therefore escalate straight to SIGKILL.
  ASSERT_TRUE(P.spawn(sh("trap '' TERM INT; sleep 30", /*DeadlineMs=*/200)));
  SubprocessResult R = P.wait();
  EXPECT_EQ(R.Outcome, SubprocessOutcome::TimedOut);
  EXPECT_FALSE(P.running());
  // Reaped: waitpid on the pid from outside finds nothing.
  EXPECT_EQ(::waitpid(P.pid(), nullptr, WNOHANG), -1);
}

TEST(Subprocess, WaitSurvivesEintr) {
  // Pepper the blocking wait with SIGALRM so its internal poll/nanosleep
  // syscalls keep getting interrupted; wait() must retry, not bail.
  struct sigaction SA = {}, Old = {};
  SA.sa_handler = [](int) {};
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: syscalls really fail with EINTR
  ASSERT_EQ(sigaction(SIGALRM, &SA, &Old), 0);
  itimerval Tick = {};
  Tick.it_interval.tv_usec = 5000; // every 5ms
  Tick.it_value.tv_usec = 5000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &Tick, nullptr), 0);

  Subprocess P;
  ASSERT_TRUE(P.spawn(sh("sleep 0.3; exit 7")));
  SubprocessResult R = P.wait();

  itimerval Off = {};
  setitimer(ITIMER_REAL, &Off, nullptr);
  sigaction(SIGALRM, &Old, nullptr);

  EXPECT_EQ(R.Outcome, SubprocessOutcome::Exited);
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(Subprocess, CapturesStderr) {
  Subprocess P;
  ASSERT_TRUE(P.spawn(sh("echo oops-diagnostic >&2; exit 3")));
  SubprocessResult R = P.wait();
  EXPECT_EQ(R.ExitCode, 3);
  EXPECT_NE(R.StderrCapture.find("oops-diagnostic"), std::string::npos);
  EXPECT_FALSE(R.StderrTruncated);
}

TEST(Subprocess, TruncatesUnboundedStderr) {
  SubprocessOptions O = sh("i=0; while [ $i -lt 200 ]; do "
                           "echo abcdefghijklmnopqrstuvwxyz >&2; "
                           "i=$((i+1)); done");
  O.MaxStderrBytes = 100;
  Subprocess P;
  ASSERT_TRUE(P.spawn(O));
  SubprocessResult R = P.wait();
  EXPECT_EQ(R.Outcome, SubprocessOutcome::Exited);
  // The cap bounds the capture; the rest was still drained (the child
  // finished instead of blocking on a full pipe) but flagged truncated.
  EXPECT_EQ(R.StderrCapture.size(), 100u);
  EXPECT_TRUE(R.StderrTruncated);
}

TEST(Subprocess, SpawnFailureIsTypedNotExit127) {
  Subprocess P;
  SubprocessOptions O;
  O.Argv = {"/nonexistent/veriopt-no-such-binary"};
  EXPECT_FALSE(P.spawn(O));
  EXPECT_TRUE(P.finished());
  EXPECT_EQ(P.result().Outcome, SubprocessOutcome::SpawnFailed);
  EXPECT_FALSE(P.result().SpawnError.empty());

  // Contrast: a shell exiting 127 on its own is a normal exit, not a
  // spawn failure — the CLOEXEC exec-errno pipe is what separates them.
  Subprocess Q;
  ASSERT_TRUE(Q.spawn(sh("exit 127")));
  EXPECT_EQ(Q.wait().Outcome, SubprocessOutcome::Exited);
  EXPECT_EQ(Q.result().ExitCode, 127);
}

TEST(Subprocess, DestructorReapsRunningChild) {
  pid_t Child = -1;
  {
    Subprocess P;
    ASSERT_TRUE(P.spawn(sh("sleep 30")));
    Child = P.pid();
    ASSERT_GT(Child, 0);
    // P goes out of scope while the child is still running.
  }
  // No zombie left behind: the pid is gone (kill(0) probes existence).
  EXPECT_EQ(::kill(Child, 0), -1);
  EXPECT_EQ(::waitpid(Child, nullptr, WNOHANG), -1);
}

TEST(Subprocess, PollIsNonblockingUntilExit) {
  Subprocess P;
  ASSERT_TRUE(P.spawn(sh("sleep 0.2; exit 5")));
  // Immediately after spawn the child is still up; poll() must say "not
  // finished" without blocking for the full 200ms.
  EXPECT_FALSE(P.poll());
  EXPECT_TRUE(P.running());
  while (!P.poll())
    ::usleep(10000);
  EXPECT_EQ(P.result().Outcome, SubprocessOutcome::Exited);
  EXPECT_EQ(P.result().ExitCode, 5);
}

TEST(Subprocess, KillAndReapIsIdempotent) {
  Subprocess P;
  ASSERT_TRUE(P.spawn(sh("sleep 30")));
  P.killAndReap();
  EXPECT_TRUE(P.finished());
  EXPECT_EQ(P.result().Outcome, SubprocessOutcome::Signaled);
  EXPECT_EQ(P.result().Signal, SIGKILL);
  P.killAndReap(); // second call must be a no-op
  EXPECT_TRUE(P.finished());
}

} // namespace
} // namespace veriopt
