//===- RNGTest.cpp - Determinism and distribution sanity ------------------===//

#include "support/RNG.h"

#include <gtest/gtest.h>

#include <set>

namespace veriopt {
namespace {

TEST(RNG, DeterministicFromSeed) {
  RNG A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiverge) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += (A.next() == B.next());
  EXPECT_EQ(Same, 0);
}

TEST(RNG, BelowStaysInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RNG, RangeInclusive) {
  RNG R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // all values hit
}

TEST(RNG, UniformInUnitInterval) {
  RNG R(11);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
    Sum += U;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RNG, ChanceRespectsProbability) {
  RNG R(13);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.chance(0.25);
  EXPECT_NEAR(Hits / 10000.0, 0.25, 0.02);
}

TEST(RNG, WeightedPickFollowsWeights) {
  RNG R(17);
  std::vector<double> W = {1.0, 0.0, 3.0};
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 8000; ++I)
    ++Counts[R.weightedPick(W)];
  EXPECT_EQ(Counts[1], 0);
  EXPECT_NEAR(static_cast<double>(Counts[2]) / Counts[0], 3.0, 0.4);
}

TEST(RNG, ForkIndependence) {
  RNG A(5);
  RNG C1 = A.fork();
  RNG C2 = A.fork();
  EXPECT_NE(C1.next(), C2.next());
}

TEST(RNG, GaussianMoments) {
  RNG R(23);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double G = R.gaussian();
    Sum += G;
    SumSq += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

} // namespace
} // namespace veriopt
