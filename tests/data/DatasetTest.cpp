//===- DatasetTest.cpp - Corpus construction tests --------------------------===//

#include "data/Dataset.h"

#include "cost/CostModel.h"
#include "ir/Verifier.h"
#include "support/Stats.h"
#include "verify/AliveLite.h"

#include <gtest/gtest.h>

#include <set>

namespace veriopt {
namespace {

DatasetOptions smallOpts() {
  DatasetOptions Opts;
  Opts.TrainCount = 30;
  Opts.ValidCount = 15;
  Opts.Seed = 7;
  return Opts;
}

TEST(Dataset, BuildsRequestedSizes) {
  auto DS = buildDataset(smallOpts());
  EXPECT_EQ(DS.Train.size(), 30u);
  EXPECT_EQ(DS.Valid.size(), 15u);
  EXPECT_GE(DS.Stats.Generated, DS.Stats.Kept);
  EXPECT_EQ(DS.Stats.Kept, 45u);
}

TEST(Dataset, Deterministic) {
  auto A = buildDataset(smallOpts());
  auto B = buildDataset(smallOpts());
  ASSERT_EQ(A.Train.size(), B.Train.size());
  for (size_t I = 0; I < A.Train.size(); ++I)
    EXPECT_EQ(A.Train[I].SrcText, B.Train[I].SrcText);
}

TEST(Dataset, SplitsAreDisjoint) {
  auto DS = buildDataset(smallOpts());
  std::set<std::string> TrainTexts;
  for (const auto &S : DS.Train)
    TrainTexts.insert(S.SrcText);
  for (const auto &S : DS.Valid)
    EXPECT_FALSE(TrainTexts.count(S.SrcText))
        << "validation sample leaked from training split";
}

TEST(Dataset, AllPairsVerified) {
  auto DS = buildDataset(smallOpts());
  for (const auto &S : DS.Train) {
    ASSERT_TRUE(S.source());
    ASSERT_TRUE(S.Reference);
    EXPECT_TRUE(isWellFormed(*S.source()));
    EXPECT_TRUE(isWellFormed(*S.Reference));
    // Spot-check the invariant the builder enforces.
    auto VR = verifyRefinement(*S.source(), *S.Reference);
    EXPECT_EQ(VR.Status, VerifyStatus::Equivalent) << S.SrcText;
  }
}

TEST(Dataset, TokenLimitRespected) {
  auto Opts = smallOpts();
  Opts.TokenLimit = 2048;
  auto DS = buildDataset(Opts);
  for (const auto &S : DS.Train)
    EXPECT_LE(S.TokenCount, 2048u);
}

TEST(Dataset, TinyTokenLimitFiltersEverything) {
  auto Opts = smallOpts();
  Opts.TrainCount = 3;
  Opts.ValidCount = 0;
  Opts.TokenLimit = 5;
  auto DS = buildDataset(Opts);
  EXPECT_TRUE(DS.Train.empty());
  EXPECT_GT(DS.Stats.RejectedTokenLimit, 0u);
}

TEST(Dataset, ReferencePassActuallyOptimizes) {
  // The corpus must give instcombine real headroom: the paper's reference
  // pass achieves ~2.4x latency geomean over -O0. Require a clearly
  // positive aggregate improvement on our corpus.
  auto DS = buildDataset(smallOpts());
  std::vector<double> Ratios;
  unsigned ChangedCount = 0;
  for (const auto &S : DS.Train) {
    double L0 = estimateLatency(*S.source());
    double L1 = estimateLatency(*S.Reference);
    if (L1 > 0)
      Ratios.push_back(L0 / L1);
    ChangedCount += S.SrcText != S.RefText;
  }
  EXPECT_GT(geomean(Ratios), 1.5) << "corpus lacks peephole headroom";
  // Paper: instcombine changed every sample in their test set.
  EXPECT_GT(ChangedCount, DS.Train.size() * 9 / 10);
}

TEST(Dataset, TracesNonEmptyForChangedSamples) {
  auto DS = buildDataset(smallOpts());
  for (const auto &S : DS.Train)
    if (S.SrcText != S.RefText)
      EXPECT_FALSE(S.RefTrace.empty());
}

TEST(Dataset, CSourceProvenanceAttached) {
  auto DS = buildDataset(smallOpts());
  for (const auto &S : DS.Train) {
    EXPECT_NE(S.CSource.find("return"), std::string::npos);
    EXPECT_FALSE(S.Name.empty());
  }
}

} // namespace
} // namespace veriopt
