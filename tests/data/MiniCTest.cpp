//===- MiniCTest.cpp - Generator + lowering tests --------------------------===//

#include "data/MiniC.h"

#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Pass.h"
#include "verify/AliveLite.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(MiniC, GenerationIsDeterministic) {
  RNG R1(99), R2(99);
  auto F1 = generateMiniC(R1, "f");
  auto F2 = generateMiniC(R2, "f");
  EXPECT_EQ(F1->render(), F2->render());
  RNG R3(100);
  auto F3 = generateMiniC(R3, "f");
  EXPECT_NE(F1->render(), F3->render());
}

TEST(MiniC, RenderLooksLikeC) {
  RNG R(7);
  auto F = generateMiniC(R, "sample");
  std::string Text = F->render();
  EXPECT_NE(Text.find("sample("), std::string::npos) << Text;
  EXPECT_NE(Text.find("return"), std::string::npos) << Text;
  EXPECT_NE(Text.find("uint"), std::string::npos) << Text;
}

TEST(MiniC, LoweringIsWellFormed) {
  for (uint64_t Seed = 0; Seed < 60; ++Seed) {
    RNG R(Seed);
    auto F = generateMiniC(R, "f" + std::to_string(Seed));
    auto M = lowerToO0(*F);
    Function *Fn = M->getMainFunction();
    ASSERT_NE(Fn, nullptr);
    std::string Err;
    EXPECT_TRUE(isWellFormed(*Fn, &Err))
        << Err << "\nsource:\n"
        << F->render() << "\nIR:\n"
        << printFunction(*Fn);
  }
}

TEST(MiniC, LoweringIsO0Shaped) {
  // Every parameter must be spilled to a slot: -O0 style.
  RNG R(11);
  auto F = generateMiniC(R, "f");
  auto M = lowerToO0(*F);
  std::string Text = printFunction(*M->getMainFunction());
  EXPECT_NE(Text.find("alloca"), std::string::npos) << Text;
  EXPECT_NE(Text.find("store"), std::string::npos) << Text;
  EXPECT_NE(Text.find("load"), std::string::npos) << Text;
}

TEST(MiniC, LoweredFunctionsTerminate) {
  // Generated loops are bounded: interpretation must not time out.
  for (uint64_t Seed = 100; Seed < 140; ++Seed) {
    RNG R(Seed);
    auto F = generateMiniC(R, "f");
    auto M = lowerToO0(*F);
    Function *Fn = M->getMainFunction();
    std::vector<APInt64> Args;
    for (unsigned I = 0; I < Fn->getNumParams(); ++I)
      Args.push_back(APInt64(Fn->getParamType(I)->getBitWidth(),
                             0x1234u + I));
    auto Res = interpret(*Fn, Args);
    EXPECT_NE(Res.St, ExecResult::Timeout) << F->render();
    EXPECT_NE(Res.St, ExecResult::Unsupported) << printFunction(*Fn);
  }
}

/// The central cross-module property: for random generated functions, both
/// optimization pipelines must produce Alive-lite-verified refinements AND
/// agree with the interpreter on random concrete inputs.
class PipelineSoundness : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSoundness, OptimizedCodeRefinesSource) {
  uint64_t Seed = 1000 + GetParam();
  RNG R(Seed);
  auto MC = generateMiniC(R, "f");
  auto M = lowerToO0(*MC);
  Function *Src = M->getMainFunction();

  for (bool Extended : {false, true}) {
    auto Opt = Src->clone();
    if (Extended)
      runExtendedPipeline(*Opt);
    else
      runReferencePipeline(*Opt);
    std::string Err;
    ASSERT_TRUE(isWellFormed(*Opt, &Err))
        << Err << "\n"
        << printFunction(*Opt);

    auto VR = verifyRefinement(*Src, *Opt);
    ASSERT_NE(VR.Status, VerifyStatus::NotEquivalent)
        << (Extended ? "extended" : "reference") << " pipeline broke seed "
        << Seed << "\n"
        << VR.Diagnostic << "\nsource:\n"
        << printFunction(*Src) << "\nopt:\n"
        << printFunction(*Opt);

    // Differential execution on random inputs.
    RNG InputR(Seed ^ 0xDEAD);
    for (int Trial = 0; Trial < 8; ++Trial) {
      std::vector<APInt64> Args;
      for (unsigned I = 0; I < Src->getNumParams(); ++I)
        Args.push_back(APInt64(Src->getParamType(I)->getBitWidth(),
                               InputR.next()));
      auto SR = interpret(*Src, Args);
      if (SR.St != ExecResult::Ok || SR.RetPoison)
        continue;
      auto TR = interpret(*Opt, Args);
      ASSERT_EQ(TR.St, ExecResult::Ok)
          << "optimized code faults where source is defined";
      if (!SR.IsVoid && !TR.RetPoison)
        EXPECT_EQ(SR.RetVal.zext(), TR.RetVal.zext())
            << "seed " << Seed << " trial " << Trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSoundness, ::testing::Range(0, 40));

} // namespace
} // namespace veriopt
