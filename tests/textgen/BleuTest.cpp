//===- BleuTest.cpp - Tokenizer and BLEU tests -----------------------------===//

#include "textgen/Bleu.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(Tokenizer, IRTokens) {
  auto T = tokenizeIR("%y = add nsw i32 %x, -42");
  std::vector<std::string> Expected = {"%y", "=",   "add", "nsw",
                                       "i32", "%x", ",",   "-42"};
  EXPECT_EQ(T, Expected);
}

TEST(Tokenizer, SigilsAndPunctuation) {
  auto T = tokenizeIR("call void @foo(i32 0) #2");
  std::vector<std::string> Expected = {"call", "void", "@foo", "(",
                                       "i32",  "0",    ")",    "#2"};
  EXPECT_EQ(T, Expected);
}

TEST(Bleu, IdenticalScoresOne) {
  EXPECT_DOUBLE_EQ(bleuText("ret i32 %x", "ret i32 %x"), 1.0);
}

TEST(Bleu, DisjointScoresZero) {
  EXPECT_DOUBLE_EQ(bleuText("ret i32 %x", "br label %y"), 0.0);
}

TEST(Bleu, EmptyCases) {
  EXPECT_DOUBLE_EQ(bleuText("", ""), 1.0);
  EXPECT_DOUBLE_EQ(bleuText("ret i32 0", ""), 0.0);
  EXPECT_DOUBLE_EQ(bleuText("", "ret i32 0"), 0.0);
}

TEST(Bleu, PartialOverlapBetweenZeroAndOne) {
  double S = bleuText("%y = add i32 %x, 1\nret i32 %y",
                      "%y = add i32 %x, 2\nret i32 %y");
  EXPECT_GT(S, 0.0);
  EXPECT_LT(S, 1.0);
}

TEST(Bleu, MonotoneInSimilarity) {
  const char *Ref = "%a = add i32 %x, 1\n%b = mul i32 %a, 2\nret i32 %b";
  double Close = bleuText(Ref, "%a = add i32 %x, 1\n%b = mul i32 %a, 4\n"
                               "ret i32 %b");
  double Far = bleuText(Ref, "%q = sdiv i32 %x, 3\nret i32 %q");
  EXPECT_GT(Close, Far);
}

TEST(Bleu, BrevityPenaltyPunishesTruncation) {
  const char *Ref = "%a = add i32 %x, 1\n%b = mul i32 %a, 2\nret i32 %b";
  double Full = bleuText(Ref, Ref);
  double Truncated = bleuText(Ref, "%a = add i32 %x, 1");
  EXPECT_GT(Full, Truncated);
  EXPECT_LT(Truncated, 0.9);
}

TEST(Bleu, NotSymmetricButBothReasonable) {
  const char *A = "ret i32 %x";
  const char *B = "ret i32 %x\nret i32 %x\nret i32 %x";
  // Long candidate against short reference: precision drops only mildly;
  // short candidate against long reference: brevity penalty bites.
  EXPECT_GT(bleuText(A, B), 0.0);
  EXPECT_GT(bleuText(B, A), 0.0);
}

} // namespace
} // namespace veriopt
