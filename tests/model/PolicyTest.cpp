//===- PolicyTest.cpp - Simulated-LLM policy tests -------------------------===//

#include "model/Policy.h"

#include "data/Dataset.h"
#include "ir/Parser.h"
#include "verify/AliveLite.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

std::unique_ptr<Module> parseOk(const char *Src) {
  auto M = parseModule(Src);
  EXPECT_TRUE(M.hasValue()) << M.error().render();
  return M.takeValue();
}

const char *SimpleSrc = R"(
define i32 @f(i32 %x) {
  %s = alloca i32
  store i32 %x, ptr %s
  %v = load i32, ptr %s
  %m = mul i32 %v, 8
  ret i32 %m
}
)";

TEST(Policy, GreedyIsDeterministic) {
  auto M = parseOk(SimpleSrc);
  RewritePolicyModel Model(presetQwen3B());
  RNG R1(1), R2(99);
  auto C1 = Model.generate(*M->getMainFunction(), PromptMode::Generic, R1,
                           /*Greedy=*/true);
  auto C2 = Model.generate(*M->getMainFunction(), PromptMode::Generic, R2,
                           /*Greedy=*/true);
  EXPECT_EQ(C1.Text, C2.Text);
  EXPECT_EQ(C1.Actions, C2.Actions);
}

TEST(Policy, SamplingIsStochasticButSeeded) {
  auto M = parseOk(SimpleSrc);
  RewritePolicyModel Model(presetQwen3B());
  RNG RA(5), RB(5), RC(6);
  auto A = Model.generate(*M->getMainFunction(), PromptMode::Generic, RA,
                          false);
  auto B = Model.generate(*M->getMainFunction(), PromptMode::Generic, RB,
                          false);
  EXPECT_EQ(A.Text, B.Text);
  // Over several draws, different seeds must diverge somewhere.
  bool Diverged = false;
  for (int I = 0; I < 16 && !Diverged; ++I) {
    auto C = Model.generate(*M->getMainFunction(), PromptMode::Generic, RC,
                            false);
    Diverged = C.Text != A.Text;
  }
  EXPECT_TRUE(Diverged);
}

TEST(Policy, BaseModelFailureTaxonomy) {
  // Sampled outputs of the base preset must show all Table-I categories:
  // copies, syntax errors, semantic errors, and correct transforms.
  DatasetOptions DOpts;
  DOpts.TrainCount = 12;
  DOpts.ValidCount = 0;
  auto DS = buildDataset(DOpts);
  ASSERT_FALSE(DS.Train.empty());

  RewritePolicyModel Model(presetQwen3B());
  RNG R(42);
  unsigned Copies = 0, Syntax = 0, Semantic = 0, CorrectDifferent = 0,
           Total = 0;
  for (const auto &S : DS.Train) {
    for (int Draw = 0; Draw < 16; ++Draw) {
      auto C = Model.generate(*S.source(), PromptMode::Generic, R, false);
      ++Total;
      if (!C.FormatOk) {
        ++Syntax; // broken envelope counts as unusable output
        continue;
      }
      if (C.AnswerIR == S.SrcText) {
        ++Copies;
        continue;
      }
      auto VR = verifyCandidateText(*S.source(), C.AnswerIR);
      switch (VR.Status) {
      case VerifyStatus::Equivalent:
        ++CorrectDifferent;
        break;
      case VerifyStatus::SyntaxError:
        ++Syntax;
        break;
      case VerifyStatus::NotEquivalent:
        ++Semantic;
        break;
      case VerifyStatus::Inconclusive:
        break;
      }
    }
  }
  EXPECT_GT(Copies, 0u);
  EXPECT_GT(Syntax, 0u);
  EXPECT_GT(Semantic, 0u);
  EXPECT_GT(CorrectDifferent, 0u);
  // The base model mostly copies (Table I: 56.8%).
  EXPECT_GT(Copies, Total / 4);
}

TEST(Policy, OptActionsProduceVerifiedRewrites) {
  auto M = parseOk(SimpleSrc);
  Function *Src = M->getMainFunction();
  // Force a pure-optimization completion by zeroing corruption/copy biases.
  ModelConfig Cfg = presetQwen3B();
  Cfg.CopyBias = -10;
  Cfg.SyntaxCorruptBias = -10;
  Cfg.SemanticCorruptBias = -10;
  Cfg.OptBias = 3.0;
  Cfg.StopBias = -2.0;
  Cfg.ResidualSyntaxPct = 0; // this test wants the policy channel only
  Cfg.ResidualSemanticPct = 0;
  RewritePolicyModel Model(Cfg);
  RNG R(3);
  for (int Draw = 0; Draw < 10; ++Draw) {
    auto C = Model.generate(*Src, PromptMode::Generic, R, false);
    ASSERT_TRUE(C.FormatOk);
    auto VR = verifyCandidateText(*Src, C.AnswerIR);
    EXPECT_EQ(VR.Status, VerifyStatus::Equivalent)
        << VR.Diagnostic << "\n"
        << C.AnswerIR;
  }
}

TEST(Policy, KnowledgeMaskLimitsActions) {
  ModelConfig Cfg = presetQwen15B(); // knows only a few families
  RewritePolicyModel Model(Cfg);
  EXPECT_TRUE(Model.actionAvailable(Action::OptAlgebraic));
  EXPECT_FALSE(Model.actionAvailable(Action::OptMem2Reg));
  EXPECT_FALSE(Model.actionAvailable(Action::OptSimplifyCFG));
  EXPECT_TRUE(Model.actionAvailable(Action::Copy));
  EXPECT_TRUE(Model.actionAvailable(Action::CorruptTruncate));

  auto M = parseOk(SimpleSrc);
  RNG R(1);
  for (int Draw = 0; Draw < 30; ++Draw) {
    auto C = Model.generate(*M->getMainFunction(), PromptMode::Generic, R,
                            false);
    for (Action A : C.Actions)
      EXPECT_TRUE(Model.actionAvailable(A)) << actionName(A);
  }
}

TEST(Policy, SequenceLogProbMatchesGeneration) {
  auto M = parseOk(SimpleSrc);
  RewritePolicyModel Model(presetQwen3B());
  RNG R(17);
  auto C = Model.generate(*M->getMainFunction(), PromptMode::Generic, R,
                          false);
  double LP = Model.sequenceLogProb(*M->getMainFunction(), C.Actions);
  // Generic completions have only action log-probs.
  EXPECT_NEAR(LP, C.LogProb, 1e-9);
}

TEST(Policy, GradChecksSequenceHead) {
  // Finite-difference check of d logProb / d theta on a random coordinate.
  auto M = parseOk(SimpleSrc);
  Function *F = M->getMainFunction();
  RewritePolicyModel Model(presetQwen3B());
  std::vector<Action> Seq = {Action::OptMemory, Action::OptAlgebraic,
                             Action::Stop};
  std::vector<double> Grad(Model.numParams(), 0.0);
  Model.accumulateSequenceGrad(*F, Seq, 1.0, Grad);
  RNG R(8);
  for (int Trial = 0; Trial < 10; ++Trial) {
    unsigned K = static_cast<unsigned>(R.below(NumActions * NumFeatures));
    double Eps = 1e-5;
    double Orig = Model.params()[K];
    Model.params()[K] = Orig + Eps;
    double Up = Model.sequenceLogProb(*F, Seq);
    Model.params()[K] = Orig - Eps;
    double Down = Model.sequenceLogProb(*F, Seq);
    Model.params()[K] = Orig;
    EXPECT_NEAR(Grad[K], (Up - Down) / (2 * Eps), 1e-4) << "coord " << K;
  }
}

TEST(Policy, GradChecksDiagHead) {
  RewritePolicyModel Model(presetQwen3B());
  std::vector<Action> Attempt = {Action::CorruptConstant, Action::Stop};
  std::vector<double> Grad(Model.numParams(), 0.0);
  Model.accumulateDiagGrad(Attempt, 3, 1.0, Grad);
  // Finite-difference a few diagnosis weights.
  unsigned Base = NumActions * NumFeatures;
  for (unsigned K = Base; K < Base + 20; K += 7) {
    double Eps = 1e-5;
    double Orig = Model.params()[K];
    Model.params()[K] = Orig + Eps;
    double Up = Model.diagLogProb(Attempt, 3);
    Model.params()[K] = Orig - Eps;
    double Down = Model.diagLogProb(Attempt, 3);
    Model.params()[K] = Orig;
    EXPECT_NEAR(Grad[K], (Up - Down) / (2 * Eps), 1e-4);
  }
}

TEST(Policy, AugmentedModeEmitsThinkSection) {
  auto M = parseOk(SimpleSrc);
  RewritePolicyModel Model(presetQwen3B());
  RNG R(12);
  auto C = Model.generate(*M->getMainFunction(), PromptMode::Augmented, R,
                          true);
  EXPECT_NE(C.Text.find("<think>"), std::string::npos);
  EXPECT_NE(C.Text.find("</think>"), std::string::npos);
  EXPECT_FALSE(C.ThinkAttemptIR.empty());
  EXPECT_FALSE(C.PredictedMessage.empty());
}

TEST(Policy, PromptEnvelopeRoundTrip) {
  std::string Full = renderCompletion(PromptMode::Augmented, true,
                                      "attempt ir", "diag text", "final ir");
  bool Ok = false;
  EXPECT_EQ(extractAnswer(Full, Ok), "final ir");
  EXPECT_TRUE(Ok);
  std::string Broken = renderCompletion(PromptMode::Generic, false, "", "",
                                        "final ir");
  extractAnswer(Broken, Ok);
  EXPECT_FALSE(Ok);
}

TEST(Policy, OracleActionsRespectCapacity) {
  PassTrace T;
  T.Applied = {"store-to-load-forward", "mul-pow2-to-shl", "dce",
               "mem2reg-promote", "diamond-to-select"};
  RewritePolicyModel Big(presetQwen32B());
  auto SeqBig = oracleActions(T, Big);
  EXPECT_EQ(SeqBig.back(), Action::Stop);
  bool HasMem2Reg = false;
  for (Action A : SeqBig)
    HasMem2Reg |= A == Action::OptMem2Reg;
  EXPECT_TRUE(HasMem2Reg);

  RewritePolicyModel Small(presetQwen15B());
  auto SeqSmall = oracleActions(T, Small);
  for (Action A : SeqSmall)
    EXPECT_TRUE(Small.actionAvailable(A)) << actionName(A);
}

TEST(Policy, PresetOrderingMakesSense) {
  // Larger models start with weaker corruption priors.
  EXPECT_GT(presetQwen15B().SyntaxCorruptBias,
            presetQwen7B().SyntaxCorruptBias);
  EXPECT_GT(presetQwen7B().SyntaxCorruptBias,
            presetQwen32B().SyntaxCorruptBias);
  EXPECT_LT(presetQwen15B().ParamsB, presetQwen3B().ParamsB);
}

TEST(Policy, DiagClassRoundTrip) {
  for (unsigned C = 0; C < NumDiagClasses; ++C)
    EXPECT_EQ(diagKindClass(diagClassKind(C)), C);
}

} // namespace
} // namespace veriopt
