//===- CostModelTest.cpp - Latency/size/ICount model tests ----------------===//

#include "cost/CostModel.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

std::unique_ptr<Module> parseOk(const char *Src) {
  auto M = parseModule(Src);
  EXPECT_TRUE(M.hasValue()) << M.error().render();
  return M.takeValue();
}

TEST(CostModel, DivisionDominatesALU) {
  EXPECT_GT(opcodeLatency(Opcode::SDiv), 5 * opcodeLatency(Opcode::Add));
  EXPECT_GT(opcodeLatency(Opcode::Mul), opcodeLatency(Opcode::Add));
  EXPECT_GT(opcodeLatency(Opcode::Load), opcodeLatency(Opcode::Store));
}

TEST(CostModel, FreeOpcodes) {
  EXPECT_EQ(opcodeLatency(Opcode::Alloca), 0.0);
  EXPECT_EQ(opcodeLatency(Opcode::Phi), 0.0);
}

TEST(CostModel, OptimizationReducesAllThreeMetrics) {
  // -O0 style: everything through memory.
  auto Raw = parseOk(R"(
define i32 @f(i32 %x) {
  %s = alloca i32
  store i32 %x, ptr %s
  %a = load i32, ptr %s
  %m = mul i32 %a, 2
  store i32 %m, ptr %s
  %b = load i32, ptr %s
  ret i32 %b
}
)");
  // Optimized equivalent.
  auto Opt = parseOk(R"(
define i32 @f(i32 %x) {
  %m = shl i32 %x, 1
  ret i32 %m
}
)");
  const Function &FR = *Raw->getMainFunction();
  const Function &FO = *Opt->getMainFunction();
  EXPECT_LT(estimateLatency(FO), estimateLatency(FR));
  EXPECT_LT(instructionCount(FO), instructionCount(FR));
  EXPECT_LT(binarySize(FO), binarySize(FR));
}

TEST(CostModel, ConstantGEPIsFree) {
  auto M = parseOk(R"(
define i32 @f(ptr %p, i64 %i) {
  %a = getelementptr i8, ptr %p, i64 4
  %b = getelementptr i8, ptr %p, i64 %i
  %v = load i32, ptr %a
  %w = load i32, ptr %b
  %s = add i32 %v, %w
  ret i32 %s
}
)");
  const Function &F = *M->getMainFunction();
  double ConstGep = 0, DynGep = 0;
  for (const auto &I : *F.getEntryBlock())
    if (auto *G = dyn_cast<GEPInst>(I.get())) {
      if (isa<ConstantInt>(G->getOffset()))
        ConstGep = instructionLatency(*I);
      else
        DynGep = instructionLatency(*I);
    }
  EXPECT_EQ(ConstGep, 0.0);
  EXPECT_GT(DynGep, 0.0);
}

TEST(CostModel, BinarySizeWideImmediates) {
  auto Small = parseOk("define i32 @f(i32 %x) {\n  %r = add i32 %x, 7\n"
                       "  ret i32 %r\n}\n");
  auto Wide = parseOk("define i32 @f(i32 %x) {\n  %r = add i32 %x, 100000\n"
                      "  ret i32 %r\n}\n");
  EXPECT_GT(binarySize(*Wide->getMainFunction()),
            binarySize(*Small->getMainFunction()));
}

TEST(CostModel, InstructionCountMatchesIR) {
  auto M = parseOk("define i32 @f(i32 %x) {\n  %a = add i32 %x, 1\n"
                   "  %b = mul i32 %a, %a\n  ret i32 %b\n}\n");
  EXPECT_EQ(instructionCount(*M->getMainFunction()), 3u);
}

} // namespace
} // namespace veriopt
