//===- EvalDriverTest.cpp - Multi-process eval driver tests ------------------//
//
// The driver's contract, tested against the real veriopt-worker binary
// (VERIOPT_WORKER_BIN, injected by CMake):
//  - all-healthy runs are bit-identical to evaluateModelSharded / the
//    serial oracle;
//  - crashed / corrupt-result workers are retried then quarantined with
//    per-attempt diagnostics, and the healthy-subset merge matches the
//    oracle restricted to the healthy shards;
//  - flaky workers (crash on attempt 1 only) are salvaged by retry;
//  - valid pre-existing result files are reused on resume;
//  - the backoff schedule is a pure, capped function of
//    (seed, shard, attempt).
//
//===----------------------------------------------------------------------===//

#include "pipeline/EvalDriver.h"

#include "support/AtomicFile.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

namespace veriopt {
namespace {

//===--- Pure-policy tests (no processes) -------------------------------------//

TEST(DriverBackoff, FirstAttemptIsImmediate) {
  for (unsigned Shard = 0; Shard < 8; ++Shard)
    EXPECT_EQ(driverBackoffMs(123, Shard, 1, 50, 2000), 0u);
}

TEST(DriverBackoff, DeterministicAndScheduleIndependent) {
  // A pure function of (seed, shard, attempt): recomputing in any order
  // gives the same schedule — no clock, no RNG state, no cross-shard
  // coupling.
  for (unsigned Attempt = 2; Attempt <= 5; ++Attempt)
    for (unsigned Shard = 0; Shard < 4; ++Shard) {
      uint64_t A = driverBackoffMs(7, Shard, Attempt, 50, 2000);
      uint64_t B = driverBackoffMs(7, Shard, Attempt, 50, 2000);
      EXPECT_EQ(A, B);
    }
  // And it actually depends on the seed/shard (jitter decorrelates shards
  // so a thundering herd of retries spreads out).
  bool AnyDiffer = false;
  for (unsigned Shard = 0; Shard < 16 && !AnyDiffer; ++Shard)
    AnyDiffer = driverBackoffMs(1, Shard, 3, 50, 2000) !=
                driverBackoffMs(2, Shard, 3, 50, 2000);
  EXPECT_TRUE(AnyDiffer);
}

TEST(DriverBackoff, GrowsExponentiallyUpToCap) {
  // Base delay doubles per attempt; jitter adds at most half the base. The
  // cap bounds everything.
  const uint64_t Base = 50, Cap = 300;
  uint64_t PrevFloor = 0;
  for (unsigned Attempt = 2; Attempt <= 10; ++Attempt) {
    uint64_t D = driverBackoffMs(99, 3, Attempt, Base, Cap);
    uint64_t Floor = Base << (Attempt - 2); // un-jittered exponential
    EXPECT_GE(D, std::min(Floor, Cap));
    EXPECT_LE(D, Cap);
    EXPECT_GE(Floor, PrevFloor);
    PrevFloor = Floor;
  }
  EXPECT_EQ(driverBackoffMs(99, 3, 20, Base, Cap), Cap); // saturated
}

//===--- Fixture: scratch dir + worker invocations ----------------------------//

struct DriverTest : ::testing::Test {
  std::string Dir;
  std::vector<Sample> Valid;
  RewritePolicyModel Model{presetQwen3B()};
  static constexpr unsigned ValidCount = 8;
  static constexpr uint64_t DatasetSeed = 77;
  static constexpr unsigned NumShards = 4;
  static constexpr uint64_t PlanSeed = 0xE7A1;

  void SetUp() override {
    char Tmpl[] = "/tmp/veriopt-driver-test-XXXXXX";
    ASSERT_NE(::mkdtemp(Tmpl), nullptr);
    Dir = Tmpl;
    DatasetOptions DO;
    DO.TrainCount = 0;
    DO.ValidCount = ValidCount;
    DO.Seed = DatasetSeed;
    Valid = buildDataset(DO).Valid;
  }
  void TearDown() override {
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)std::system(Cmd.c_str());
  }

  std::vector<EvalShard> plan() const {
    return planEvalShards(Valid.size(), NumShards, PlanSeed);
  }

  /// Write the manifest and build driver options with the given extra
  /// worker flags (fault injections).
  EvalDriverOptions opts(std::vector<std::string> Extra = {}) {
    EXPECT_TRUE(writeFileAtomic(Dir + "/manifest.json",
                                shardManifestToJson(plan(), PlanSeed,
                                                    Valid.size())));
    EvalDriverOptions O;
    O.ManifestPath = Dir + "/manifest.json";
    O.ResultDir = Dir;
    O.WorkerArgv = {VERIOPT_WORKER_BIN,
                    "--valid-count", std::to_string(ValidCount),
                    "--dataset-seed", std::to_string(DatasetSeed)};
    O.WorkerArgv.insert(O.WorkerArgv.end(), Extra.begin(), Extra.end());
    O.MaxWorkers = 2;
    O.MaxAttempts = 2;
    O.BackoffBaseMs = 10;
    O.BackoffCapMs = 50;
    O.WorkerDeadlineMs = 60000;
    O.Seed = PlanSeed;
    return O;
  }

  EvalResult oracleSubset(const std::vector<unsigned> &Indices) {
    auto P = plan();
    std::vector<ShardEvalResult> Shards;
    for (unsigned I : Indices)
      Shards.push_back(evaluateEvalShard(Model, Valid, PromptMode::Generic,
                                         VerifyOptions(), P[I]));
    return mergeShardResults(Model.config().Name, std::move(Shards));
  }
};

//===--- Differential: all healthy --------------------------------------------//

TEST_F(DriverTest, AllHealthyIsBitIdenticalToInProcess) {
  EvalDriverReport R;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(opts(), Model.config().Name, R, &Err)) << Err;
  EXPECT_TRUE(R.allHealthy());
  EXPECT_EQ(R.Salvaged, NumShards);
  EXPECT_EQ(R.Spawned, NumShards);
  EXPECT_EQ(R.Retried, 0u);

  EvalResult Serial = evaluateModel(Model, Valid, PromptMode::Generic);
  EXPECT_EQ(countResultDivergence(Serial, R.Merged), 0u);

  EvalOptions EO;
  EO.Shards = NumShards;
  EvalResult InProc = evaluateModelSharded(Model, Valid, PromptMode::Generic,
                                           VerifyOptions(), EO);
  EXPECT_EQ(countResultDivergence(InProc, R.Merged), 0u);
}

//===--- Crash -> retry -> quarantine -----------------------------------------//

TEST_F(DriverTest, CrashingShardIsQuarantinedWithDiagnostics) {
  EvalDriverReport R;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(opts({"--inject-crash-shard", "1"}),
                            Model.config().Name, R, &Err))
      << Err;
  ASSERT_EQ(R.Quarantined.size(), 1u);
  const QuarantinedShard &Q = R.Quarantined[0];
  EXPECT_EQ(Q.Shard.Index, 1u);
  // Every attempt was made and recorded, each with a typed reason and the
  // worker's captured stderr.
  ASSERT_EQ(Q.Failures.size(), 2u); // MaxAttempts
  for (const ShardAttemptFailure &F : Q.Failures) {
    EXPECT_NE(F.Reason.find("signal"), std::string::npos) << F.Reason;
    EXPECT_NE(F.StderrTail.find("injected crash"), std::string::npos);
  }
  EXPECT_EQ(R.Retried, 1u);

  // Healthy-subset merge == oracle over the surviving shards.
  EXPECT_EQ(R.HealthyShardIndices, (std::vector<unsigned>{0, 2, 3}));
  EXPECT_EQ(countResultDivergence(oracleSubset(R.HealthyShardIndices),
                                  R.Merged),
            0u);
}

TEST_F(DriverTest, CorruptResultFileIsDetectedNotMerged) {
  EvalDriverReport R;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(opts({"--inject-corrupt-result", "2"}),
                            Model.config().Name, R, &Err))
      << Err;
  // The worker exits 0 but its file is truncated garbage: exit status is a
  // claim, the parse+identity check is the proof.
  ASSERT_EQ(R.Quarantined.size(), 1u);
  EXPECT_EQ(R.Quarantined[0].Shard.Index, 2u);
  EXPECT_NE(R.Quarantined[0].Failures.back().Reason.find("invalid result"),
            std::string::npos);
  EXPECT_EQ(countResultDivergence(oracleSubset(R.HealthyShardIndices),
                                  R.Merged),
            0u);
}

//===--- Flaky -> salvage ------------------------------------------------------//

TEST_F(DriverTest, FlakyShardIsSalvagedByRetry) {
  // Crashes on attempt 1 only (the worker sees --attempt from the driver);
  // the retry succeeds, so nothing is quarantined.
  EvalDriverReport R;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(opts({"--inject-flaky-shard", "0"}),
                            Model.config().Name, R, &Err))
      << Err;
  EXPECT_TRUE(R.allHealthy());
  EXPECT_EQ(R.Retried, 1u);
  EXPECT_EQ(R.Salvaged, NumShards);
  EXPECT_EQ(countResultDivergence(
                evaluateModel(Model, Valid, PromptMode::Generic), R.Merged),
            0u);
}

//===--- Resume ----------------------------------------------------------------//

TEST_F(DriverTest, ResumeReusesValidResultFiles) {
  EvalDriverReport First;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(opts(), Model.config().Name, First, &Err)) << Err;
  ASSERT_TRUE(First.allHealthy());

  // Second run over the same directory: every shard satisfied from disk,
  // zero processes spawned, merge still bit-identical.
  EvalDriverReport Second;
  ASSERT_TRUE(runEvalDriver(opts(), Model.config().Name, Second, &Err))
      << Err;
  EXPECT_EQ(Second.Reused, NumShards);
  EXPECT_EQ(Second.Spawned, 0u);
  EXPECT_EQ(countResultDivergence(First.Merged, Second.Merged), 0u);
}

TEST_F(DriverTest, ResumeRejectsTamperedResultFile) {
  EvalDriverReport First;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(opts(), Model.config().Name, First, &Err)) << Err;

  // Truncate shard 1's file: resume must detect it and re-run that shard.
  std::string Path = Dir + "/shard_1.json";
  std::string Cmd = "head -c 30 '" + Path + "' > '" + Path + ".t' && mv '" +
                    Path + ".t' '" + Path + "'";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);

  EvalDriverReport Second;
  ASSERT_TRUE(runEvalDriver(opts(), Model.config().Name, Second, &Err))
      << Err;
  EXPECT_EQ(Second.Reused, NumShards - 1);
  EXPECT_EQ(Second.Spawned, 1u);
  EXPECT_TRUE(Second.allHealthy());
  EXPECT_EQ(countResultDivergence(First.Merged, Second.Merged), 0u);
}

//===--- Failure classification ------------------------------------------------//

std::string slurp(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  std::ostringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

TEST_F(DriverTest, SignalDeathClassifiesAsRuntime) {
  EvalDriverReport R;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(opts({"--inject-crash-shard", "1"}),
                            Model.config().Name, R, &Err))
      << Err;
  ASSERT_EQ(R.Quarantined.size(), 1u);
  for (const ShardAttemptFailure &F : R.Quarantined[0].Failures)
    EXPECT_EQ(F.Class, FailureClass::Runtime) << failureClassName(F.Class);
  EXPECT_NE(slurp(Dir + "/quarantine.json").find("\"class\":\"runtime\""),
            std::string::npos);
  EXPECT_NE(renderDriverReport(R).find("[runtime]"), std::string::npos);
}

TEST_F(DriverTest, InvalidResultFromCleanExitClassifiesAsIo) {
  // Exit 0 with a corrupt result file: the worker's logic ran to
  // completion and its *artifact* is bad — an I/O-side failure, the class
  // an operator triages against disks, not against the model.
  EvalDriverReport R;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(opts({"--inject-corrupt-result", "2"}),
                            Model.config().Name, R, &Err))
      << Err;
  ASSERT_EQ(R.Quarantined.size(), 1u);
  EXPECT_EQ(R.Quarantined[0].Failures.back().Class, FailureClass::Io);
  EXPECT_NE(slurp(Dir + "/quarantine.json").find("\"class\":\"io\""),
            std::string::npos);
  EXPECT_NE(renderDriverReport(R).find("[io]"), std::string::npos);
}

TEST_F(DriverTest, WorkerIoExitClassifiesAsIo) {
  // --chaos-io 100 makes every durable write in the worker fail, so it
  // exits with its typed I/O code (5) on every shard and attempt — the
  // driver must label the quarantine [io], not [logic].
  EvalDriverOptions O = opts({"--chaos-io", "100"});
  O.MaxAttempts = 1; // no salvage possible at rate 100
  EvalDriverReport R;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(O, Model.config().Name, R, &Err)) << Err;
  ASSERT_EQ(R.Quarantined.size(), NumShards);
  for (const QuarantinedShard &Q : R.Quarantined)
    for (const ShardAttemptFailure &F : Q.Failures)
      EXPECT_EQ(F.Class, FailureClass::Io) << failureClassName(F.Class);
}

TEST_F(DriverTest, UsageErrorClassifiesAsLogic) {
  EvalDriverOptions O = opts({"--definitely-not-a-flag"});
  O.MaxAttempts = 1;
  EvalDriverReport R;
  std::string Err;
  ASSERT_TRUE(runEvalDriver(O, Model.config().Name, R, &Err)) << Err;
  ASSERT_EQ(R.Quarantined.size(), NumShards);
  for (const QuarantinedShard &Q : R.Quarantined)
    EXPECT_EQ(Q.Failures.back().Class, FailureClass::Logic)
        << failureClassName(Q.Failures.back().Class);
  EXPECT_NE(slurp(Dir + "/quarantine.json").find("\"class\":\"logic\""),
            std::string::npos);
}

//===--- loadValidShardResult --------------------------------------------------//

TEST_F(DriverTest, LoadValidShardResultChecksIdentity) {
  auto P = plan();
  ShardEvalResult R0 = evaluateEvalShard(Model, Valid, PromptMode::Generic,
                                         VerifyOptions(), P[0]);
  std::string Path = Dir + "/shard_0.json";
  ASSERT_TRUE(writeFileAtomic(Path, shardResultToJson(R0)));

  ShardEvalResult Out;
  std::string Why;
  EXPECT_TRUE(loadValidShardResult(Path, P[0], Out, &Why)) << Why;

  // The right file for the wrong shard is rejected — a renamed result must
  // never be merged into another shard's slot.
  EXPECT_FALSE(loadValidShardResult(Path, P[1], Out, &Why));
  EXPECT_FALSE(Why.empty());

  // Missing file.
  EXPECT_FALSE(loadValidShardResult(Dir + "/nope.json", P[0], Out, &Why));

  // Sample-count mismatch: same identity, PerSample truncated.
  ShardEvalResult Short = R0;
  ASSERT_FALSE(Short.PerSample.empty());
  Short.PerSample.pop_back();
  Short.Taxonomy = VerifyTaxonomy(); // keep the serializer's invariants
  for (const SampleEval &S : Short.PerSample) {
    ++Short.Taxonomy.Total;
    if (S.Status == VerifyStatus::Equivalent)
      ++Short.Taxonomy.Correct;
    else if (S.Status == VerifyStatus::NotEquivalent)
      ++Short.Taxonomy.SemanticError;
    else if (S.Status == VerifyStatus::SyntaxError)
      ++Short.Taxonomy.SyntaxError;
    else
      ++Short.Taxonomy.Inconclusive;
    if (S.IsCopy)
      ++Short.Taxonomy.CorrectCopies;
  }
  ASSERT_TRUE(writeFileAtomic(Path, shardResultToJson(Short)));
  EXPECT_FALSE(loadValidShardResult(Path, P[0], Out, &Why));
  EXPECT_NE(Why.find("sample"), std::string::npos) << Why;
}

} // namespace
} // namespace veriopt
