//===- ShardedEvalTest.cpp - Sharded-vs-serial differential guarantees -----===//
//
// The contract under test: evaluateModelSharded() is bit-identical to the
// serial oracle evaluateModel() at any shard/thread count, with BatchVerify
// on or off; shards serialize losslessly; and the merge tolerates
// fault-injected, Inconclusive-heavy shards.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Evaluation.h"

#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>

namespace veriopt {
namespace {

const Dataset &ds() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 0;
    O.ValidCount = 24;
    O.Seed = 77;
    return buildDataset(O);
  }();
  return DS;
}

/// Bitwise double equality: the differential tests require bit-identity,
/// not epsilon-closeness, and must treat -0.0 != 0.0 and NaN == NaN the
/// way memcmp does.
bool bitEq(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

void expectAggEq(const MetricAgg &A, const MetricAgg &B, const char *What) {
  EXPECT_EQ(A.Better, B.Better) << What;
  EXPECT_EQ(A.Worse, B.Worse) << What;
  EXPECT_EQ(A.Tie, B.Tie) << What;
  EXPECT_TRUE(bitEq(A.MeanRelChange, B.MeanRelChange)) << What;
  EXPECT_TRUE(bitEq(A.GeoRatio, B.GeoRatio)) << What;
}

void expectSampleEq(const SampleEval &A, const SampleEval &B, size_t I) {
  EXPECT_EQ(A.Status, B.Status) << "sample " << I;
  EXPECT_EQ(A.IsCopy, B.IsCopy) << "sample " << I;
  EXPECT_EQ(A.UsedFallback, B.UsedFallback) << "sample " << I;
  EXPECT_TRUE(bitEq(A.LatO0, B.LatO0)) << "sample " << I;
  EXPECT_TRUE(bitEq(A.LatOut, B.LatOut)) << "sample " << I;
  EXPECT_TRUE(bitEq(A.LatRef, B.LatRef)) << "sample " << I;
  EXPECT_EQ(A.ICountOut, B.ICountOut) << "sample " << I;
  EXPECT_EQ(A.SizeOut, B.SizeOut) << "sample " << I;
}

void expectResultEq(const EvalResult &A, const EvalResult &B) {
  EXPECT_EQ(A.ModelName, B.ModelName);
  EXPECT_EQ(A.Taxonomy.Total, B.Taxonomy.Total);
  EXPECT_EQ(A.Taxonomy.Correct, B.Taxonomy.Correct);
  EXPECT_EQ(A.Taxonomy.CorrectCopies, B.Taxonomy.CorrectCopies);
  EXPECT_EQ(A.Taxonomy.SemanticError, B.Taxonomy.SemanticError);
  EXPECT_EQ(A.Taxonomy.SyntaxError, B.Taxonomy.SyntaxError);
  EXPECT_EQ(A.Taxonomy.Inconclusive, B.Taxonomy.Inconclusive);
  expectAggEq(A.Latency, B.Latency, "latency");
  expectAggEq(A.Size, B.Size, "size");
  expectAggEq(A.ICount, B.ICount, "icount");
  EXPECT_TRUE(bitEq(A.GeoSpeedupVsO0, B.GeoSpeedupVsO0));
  EXPECT_EQ(A.VsRefBetter, B.VsRefBetter);
  EXPECT_EQ(A.VsRefWorse, B.VsRefWorse);
  EXPECT_EQ(A.VsRefTie, B.VsRefTie);
  EXPECT_TRUE(bitEq(A.FallbackGainOverRef, B.FallbackGainOverRef));
  ASSERT_EQ(A.PerSample.size(), B.PerSample.size());
  for (size_t I = 0; I < A.PerSample.size(); ++I)
    expectSampleEq(A.PerSample[I], B.PerSample[I], I);
}

//===--- Shard planning -----------------------------------------------------===//

TEST(ShardedEval, PlanCoversCorpusWithContiguousDisjointShards) {
  for (unsigned Shards : {1u, 3u, 7u, 24u, 30u}) {
    auto Plan = planEvalShards(24, Shards, 0xE7A1);
    ASSERT_EQ(Plan.size(), Shards);
    size_t Next = 0;
    for (unsigned I = 0; I < Shards; ++I) {
      EXPECT_EQ(Plan[I].Index, I);
      EXPECT_EQ(Plan[I].Begin, Next);
      EXPECT_LE(Plan[I].Begin, Plan[I].End);
      Next = Plan[I].End;
    }
    EXPECT_EQ(Next, 24u) << "shards must cover the corpus exactly";
  }
}

TEST(ShardedEval, ShardSizesDifferByAtMostOne) {
  auto Plan = planEvalShards(25, 4, 1);
  size_t Min = 25, Max = 0;
  for (const EvalShard &S : Plan) {
    Min = std::min(Min, S.End - S.Begin);
    Max = std::max(Max, S.End - S.Begin);
  }
  EXPECT_LE(Max - Min, 1u);
}

TEST(ShardedEval, DerivedSeedsAreStableAndDistinct) {
  EXPECT_EQ(deriveShardSeed(42, 0), deriveShardSeed(42, 0));
  EXPECT_NE(deriveShardSeed(42, 0), deriveShardSeed(42, 1));
  EXPECT_NE(deriveShardSeed(42, 0), deriveShardSeed(43, 0));
  // Plans embed the derived seed so an out-of-process shard runner needs
  // only the manifest.
  auto Plan = planEvalShards(10, 2, 42);
  EXPECT_EQ(Plan[1].RngSeed, deriveShardSeed(42, 1));
}

//===--- The differential guarantee -----------------------------------------===//

TEST(ShardedEval, BitIdenticalToSerialAcrossShardAndThreadCounts) {
  RewritePolicyModel Base(presetQwen3B());
  EvalResult Oracle = evaluateModel(Base, ds().Valid, PromptMode::Generic);

  ThreadPool Pool(4);
  for (bool Batch : {false, true}) {
    for (unsigned Shards : {1u, 3u, 4u, 11u}) {
      EvalOptions EO;
      EO.Shards = Shards;
      EO.Pool = &Pool;
      EO.BatchVerify = Batch;
      EvalResult Sharded = evaluateModelSharded(
          Base, ds().Valid, PromptMode::Generic, VerifyOptions(), EO);
      SCOPED_TRACE(testing::Message()
                   << "shards=" << Shards << " batch=" << Batch);
      expectResultEq(Oracle, Sharded);
    }
  }
}

TEST(ShardedEval, SerialPoolAndNullPoolAgree) {
  RewritePolicyModel Base(presetQwen3B());
  EvalOptions NoPool;
  NoPool.Shards = 3;
  EvalResult A = evaluateModelSharded(Base, ds().Valid, PromptMode::Generic,
                                      VerifyOptions(), NoPool);
  ThreadPool One(1);
  EvalOptions WithPool = NoPool;
  WithPool.Pool = &One;
  EvalResult B = evaluateModelSharded(Base, ds().Valid, PromptMode::Generic,
                                      VerifyOptions(), WithPool);
  expectResultEq(A, B);
}

TEST(ShardedEval, ZeroShardsMeansOnePerPoolThread) {
  RewritePolicyModel Base(presetQwen3B());
  ThreadPool Pool(3);
  EvalOptions EO;
  EO.Shards = 0;
  EO.Pool = &Pool;
  EO.ShardResultDir = testing::TempDir();
  EvalResult R = evaluateModelSharded(Base, ds().Valid, PromptMode::Generic,
                                      VerifyOptions(), EO);
  EXPECT_EQ(R.Taxonomy.Total, ds().Valid.size());
  // Shard files 0..numThreads-1 must exist.
  for (unsigned I = 0; I < Pool.numThreads(); ++I) {
    std::ifstream IS(EO.ShardResultDir + "/shard_" + std::to_string(I) +
                     ".json");
    EXPECT_TRUE(IS.good()) << "missing shard result " << I;
  }
}

//===--- Fault tolerance of the merge ----------------------------------------===//

TEST(ShardedEval, MergeToleratesInconclusiveHeavyShard) {
  RewritePolicyModel Base(presetQwen3B());
  // Arm the oracle-budget fault site hard: many samples collapse to
  // Inconclusive, concentrated wherever their shard lands. The merge must
  // keep counts consistent and every aggregate finite.
  FaultInjector FI(0xFA11);
  FI.enable(FaultSite::OracleBudget, 0.8);

  ThreadPool Pool(3);
  EvalOptions EO;
  EO.Shards = 3;
  EO.Pool = &Pool;
  EO.Faults = &FI;
  EvalResult R = evaluateModelSharded(Base, ds().Valid, PromptMode::Generic,
                                      VerifyOptions(), EO);
  EXPECT_EQ(R.Taxonomy.Total, ds().Valid.size());
  EXPECT_EQ(R.Taxonomy.Correct + R.Taxonomy.SemanticError +
                R.Taxonomy.SyntaxError + R.Taxonomy.Inconclusive,
            R.Taxonomy.Total);
  EXPECT_TRUE(std::isfinite(R.GeoSpeedupVsO0));
  EXPECT_TRUE(std::isfinite(R.FallbackGainOverRef));
  EXPECT_TRUE(std::isfinite(R.Latency.GeoRatio));
  // Every inconclusive sample must have kept the -O0 fallback.
  for (const SampleEval &E : R.PerSample)
    if (E.Status != VerifyStatus::Equivalent)
      EXPECT_TRUE(E.UsedFallback);

  // Fault decisions are pure (seed, site, key) hashes, so the faulted run
  // is itself deterministic across shard counts.
  EvalOptions EO1 = EO;
  EO1.Shards = 1;
  EvalResult R1 = evaluateModelSharded(Base, ds().Valid, PromptMode::Generic,
                                       VerifyOptions(), EO1);
  expectResultEq(R, R1);
}

//===--- Serialization -------------------------------------------------------===//

TEST(ShardedEval, ManifestRoundTrips) {
  auto Plan = planEvalShards(101, 7, 0xDEADBEEFCAFEF00DULL);
  std::string Json = shardManifestToJson(Plan, 0xDEADBEEFCAFEF00DULL, 101);
  std::vector<EvalShard> Back;
  std::string Err;
  ASSERT_TRUE(shardManifestFromJson(Json, Back, &Err)) << Err;
  ASSERT_EQ(Back.size(), Plan.size());
  for (size_t I = 0; I < Plan.size(); ++I) {
    EXPECT_EQ(Back[I].Index, Plan[I].Index);
    EXPECT_EQ(Back[I].Begin, Plan[I].Begin);
    EXPECT_EQ(Back[I].End, Plan[I].End);
    EXPECT_EQ(Back[I].RngSeed, Plan[I].RngSeed) << "bit-exact seed";
  }
}

TEST(ShardedEval, ManifestRejectsMalformedInput) {
  std::vector<EvalShard> Plan;
  std::string Err;
  EXPECT_FALSE(shardManifestFromJson("{broken", Plan, &Err));
  EXPECT_FALSE(shardManifestFromJson("{\"seed\":\"00\"}", Plan, &Err));
  EXPECT_NE(Err.find("shards"), std::string::npos) << Err;
  EXPECT_FALSE(shardManifestFromJson(
      "{\"shards\":[{\"index\":0,\"begin\":0}]}", Plan, &Err));
}

TEST(ShardedEval, ShardResultRoundTripsBitExactly) {
  RewritePolicyModel Base(presetQwen3B());
  auto Plan = planEvalShards(ds().Valid.size(), 3, 0xE7A1);
  for (const EvalShard &S : Plan) {
    ShardEvalResult R = evaluateEvalShard(Base, ds().Valid,
                                          PromptMode::Generic,
                                          VerifyOptions(), S);
    std::string Json = shardResultToJson(R);
    ShardEvalResult Back;
    std::string Err;
    ASSERT_TRUE(shardResultFromJson(Json, Back, &Err)) << Err;
    EXPECT_EQ(Back.Shard.Index, R.Shard.Index);
    EXPECT_EQ(Back.Shard.RngSeed, R.Shard.RngSeed);
    EXPECT_EQ(Back.Taxonomy.Total, R.Taxonomy.Total);
    ASSERT_EQ(Back.PerSample.size(), R.PerSample.size());
    for (size_t I = 0; I < R.PerSample.size(); ++I)
      expectSampleEq(Back.PerSample[I], R.PerSample[I], I);
  }
}

TEST(ShardedEval, MergingDeserializedShardsEqualsSerialOracle) {
  // The multi-process story end to end: evaluate shards independently,
  // round-trip each through JSON (shuffled order), merge — and the result
  // must still equal the serial oracle bit for bit.
  RewritePolicyModel Base(presetQwen3B());
  EvalResult Oracle = evaluateModel(Base, ds().Valid, PromptMode::Generic);

  auto Plan = planEvalShards(ds().Valid.size(), 4, 0xE7A1);
  std::vector<ShardEvalResult> Shards;
  // Deliberately out of order: results may arrive in any order from
  // independent processes.
  for (size_t I = Plan.size(); I-- > 0;) {
    ShardEvalResult R = evaluateEvalShard(Base, ds().Valid,
                                          PromptMode::Generic,
                                          VerifyOptions(), Plan[I]);
    ShardEvalResult Back;
    std::string Err;
    ASSERT_TRUE(shardResultFromJson(shardResultToJson(R), Back, &Err)) << Err;
    Shards.push_back(std::move(Back));
  }
  EvalResult Merged =
      mergeShardResults(Base.config().Name, std::move(Shards));
  expectResultEq(Oracle, Merged);
}

//===--- Corruption hardening -------------------------------------------------//
//
// Result files come from worker processes that may be killed mid-write or
// write garbage; every corruption class must be a *typed* parse error so
// the driver treats the file as a failed attempt, never merges it.

namespace {

/// A small hand-built result whose serialization the corruption tests
/// mutate. Internally consistent: 2 samples, 1 correct (a copy), 1
/// semantic error.
ShardEvalResult tinyResult() {
  ShardEvalResult R;
  R.Shard = {/*Index=*/0, /*Begin=*/0, /*End=*/2,
             deriveShardSeed(0xE7A1, 0)};
  R.Taxonomy.Total = 2;
  R.Taxonomy.Correct = 1;
  R.Taxonomy.CorrectCopies = 1;
  R.Taxonomy.SemanticError = 1;
  SampleEval A;
  A.Status = VerifyStatus::Equivalent;
  A.IsCopy = true;
  A.LatO0 = 10.5;
  A.LatOut = 10.5;
  A.LatRef = 9.25;
  SampleEval B;
  B.Status = VerifyStatus::NotEquivalent;
  B.UsedFallback = true;
  B.LatO0 = 4.0;
  B.LatOut = 4.0;
  B.LatRef = 3.0;
  R.PerSample = {A, B};
  return R;
}

/// Expect parse failure and that the typed error mentions \p ErrNeedle.
void expectRejects(const std::string &Json, const char *ErrNeedle,
                   const char *What) {
  ShardEvalResult Out;
  std::string Err;
  EXPECT_FALSE(shardResultFromJson(Json, Out, &Err)) << What;
  EXPECT_NE(Err.find(ErrNeedle), std::string::npos)
      << What << ": error was '" << Err << "'";
}

std::string replaced(std::string S, const std::string &From,
                     const std::string &To) {
  size_t P = S.find(From);
  EXPECT_NE(P, std::string::npos) << "fixture drift: '" << From << "'";
  if (P != std::string::npos)
    S.replace(P, From.size(), To);
  return S;
}

} // namespace

TEST(ShardResultCorruption, FixtureParses) {
  ShardEvalResult Out;
  std::string Err;
  ASSERT_TRUE(shardResultFromJson(shardResultToJson(tinyResult()), Out,
                                  &Err))
      << Err;
}

TEST(ShardResultCorruption, TruncationAtEveryPrefixIsTyped) {
  // A worker killed mid-write leaves an arbitrary prefix. Every prefix
  // must fail cleanly (the JSON parser or a consistency check), never
  // crash or silently succeed.
  std::string Json = shardResultToJson(tinyResult());
  for (size_t Cut = 0; Cut + 1 < Json.size(); ++Cut) {
    ShardEvalResult Out;
    std::string Err;
    EXPECT_FALSE(shardResultFromJson(Json.substr(0, Cut), Out, &Err))
        << "prefix of length " << Cut << " parsed";
  }
}

TEST(ShardResultCorruption, TrailingJunkRejected) {
  std::string Json = shardResultToJson(tinyResult());
  ShardEvalResult Out;
  std::string Err;
  EXPECT_FALSE(shardResultFromJson(Json + "{}", Out, &Err));
  EXPECT_FALSE(shardResultFromJson(Json + "garbage", Out, &Err));
}

TEST(ShardResultCorruption, MalformedBitHexRejected) {
  std::string Json = shardResultToJson(tinyResult());
  // 10.5 == 0x4025000000000000.
  expectRejects(replaced(Json, "\"4025000000000000\"", "\"4025\""),
                "latency bit-hex", "short bit-hex");
  expectRejects(replaced(Json, "\"4025000000000000\"",
                         "\"402500000000000g\""),
                "latency bit-hex", "non-hex character");
  expectRejects(replaced(Json, "\"4025000000000000\"",
                         "\"40250000000000000\""),
                "latency bit-hex", "overlong bit-hex");
  expectRejects(replaced(Json, "\"4025000000000000\"", "16.25"),
                "latency bit-hex", "numeric instead of bit-hex");
}

TEST(ShardResultCorruption, MissingFieldsRejected) {
  std::string Json = shardResultToJson(tinyResult());
  expectRejects(replaced(Json, "\"taxonomy\"", "\"texonomy\""),
                "taxonomy", "missing taxonomy");
  expectRejects(replaced(Json, "\"per_sample\"", "\"par_sample\""),
                "per_sample", "missing per_sample");
  expectRejects(replaced(Json, "\"status\"", "\"sfatus\""), "status",
                "missing sample status");
  expectRejects(replaced(Json, "\"shard\"", "\"shart\""), "shard",
                "missing shard");
}

TEST(ShardResultCorruption, NonIntegerAndNegativeCountsRejected) {
  std::string Json = shardResultToJson(tinyResult());
  // Bit rot / hand edits: counts must be nonnegative integers, not
  // silently truncated doubles.
  expectRejects(replaced(Json, "\"total\":2", "\"total\":2.5"), "taxonomy",
                "fractional count");
  expectRejects(replaced(Json, "\"total\":2", "\"total\":-2"), "taxonomy",
                "negative count");
  expectRejects(replaced(Json, "\"icount_o0\":0", "\"icount_o0\":1.5"),
                "count fields", "fractional sample count");
}

TEST(ShardResultCorruption, InconsistentTaxonomyRejected) {
  std::string Json = shardResultToJson(tinyResult());
  // Valid JSON whose numbers lie: per_sample shorter than total claims...
  expectRejects(replaced(Json, "\"total\":2", "\"total\":3"),
                "does not match per_sample", "total vs per_sample");
  // ...counts that do not sum...
  expectRejects(replaced(Json, "\"semantic_error\":1",
                         "\"semantic_error\":0"),
                "sum", "counts do not sum");
  // ...more copies than correct samples...
  expectRejects(replaced(replaced(Json, "\"correct\":1", "\"correct\":0"),
                         "\"semantic_error\":1", "\"semantic_error\":2"),
                "correct_copies", "copies exceed correct");
  // ...and an inverted shard range.
  expectRejects(replaced(Json, "\"begin\":0,\"end\":2",
                         "\"begin\":2,\"end\":0"),
                "inverted", "inverted range");
}

TEST(ShardResultCorruption, UnknownStatusRejected) {
  std::string Json = shardResultToJson(tinyResult());
  expectRejects(replaced(Json, "\"status\":\"equivalent\"",
                         "\"status\":\"excellent\""),
                "status", "unknown status string");
}

} // namespace
} // namespace veriopt
