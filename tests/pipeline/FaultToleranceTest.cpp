//===- FaultToleranceTest.cpp - Checkpoint/resume + fault injection -------===//
//
// The acceptance bar for the fault-tolerant runtime:
//  * killing the pipeline at an arbitrary step and resuming from the
//    checkpoint yields artifacts bit-identical to an uninterrupted run;
//  * the trainer survives every injected fault class without hanging;
//  * with injection disabled, results are independent of thread count and
//    of cache residency.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "store/VerdictStore.h"
#include "support/IoEnv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace veriopt {
namespace {

const Dataset &smallDataset() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 12;
    O.ValidCount = 4;
    O.Seed = 77;
    return buildDataset(O);
  }();
  return DS;
}

PipelineOptions smallOptions() {
  PipelineOptions P;
  P.Stage1Steps = 4;
  P.Stage2Steps = 4;
  P.Stage3Steps = 4;
  P.GRPO.GroupSize = 4;
  P.GRPO.PromptsPerStep = 2;
  P.Seed = 2026;
  return P;
}

/// The deterministic slice of two runs' artifacts must match exactly.
void expectIdenticalArtifacts(const PipelineArtifacts &A,
                              const PipelineArtifacts &B) {
  ASSERT_NE(A.Latency, nullptr);
  ASSERT_NE(B.Latency, nullptr);
  EXPECT_EQ(A.ModelZero->params(), B.ModelZero->params());
  EXPECT_EQ(A.WarmUp->params(), B.WarmUp->params());
  EXPECT_EQ(A.Correctness->params(), B.Correctness->params());
  EXPECT_EQ(A.Latency->params(), B.Latency->params());

  auto expectSameLog = [](const std::vector<TrainLogEntry> &X,
                          const std::vector<TrainLogEntry> &Y) {
    ASSERT_EQ(X.size(), Y.size());
    for (size_t I = 0; I < X.size(); ++I) {
      EXPECT_EQ(X[I].Step, Y[I].Step);
      EXPECT_EQ(X[I].MeanReward, Y[I].MeanReward) << "step " << I;
      EXPECT_EQ(X[I].EMAReward, Y[I].EMAReward);
      EXPECT_EQ(X[I].EquivalentRate, Y[I].EquivalentRate);
      EXPECT_EQ(X[I].CopyRate, Y[I].CopyRate);
      EXPECT_EQ(X[I].GradNorm, Y[I].GradNorm);
      EXPECT_EQ(X[I].FalsifyWins, Y[I].FalsifyWins);
      EXPECT_EQ(X[I].SolverConflicts, Y[I].SolverConflicts);
      EXPECT_EQ(X[I].RetryEscalations, Y[I].RetryEscalations);
      EXPECT_EQ(X[I].TerminalInconclusive, Y[I].TerminalInconclusive);
      EXPECT_EQ(X[I].MaxRetryTier, Y[I].MaxRetryTier);
    }
  };
  expectSameLog(A.Stage1Log, B.Stage1Log);
  expectSameLog(A.Stage2Log, B.Stage2Log);
  expectSameLog(A.Stage3Log, B.Stage3Log);

  EXPECT_EQ(A.Augmented.size(), B.Augmented.size());
  EXPECT_EQ(A.CorrectionSamples, B.CorrectionSamples);
  EXPECT_EQ(A.FirstTimeSamples, B.FirstTimeSamples);
}

TEST(FaultTolerance, KillResumeYieldsIdenticalArtifacts) {
  const Dataset &DS = smallDataset();

  // Reference: one uninterrupted run, no checkpointing at all.
  PipelineArtifacts Ref = runTrainingPipeline(DS, smallOptions());
  ASSERT_FALSE(Ref.Halted);

  // Interrupted: kill after every 5 GRPO steps, resume from the checkpoint
  // until the pipeline reports completion. The halt points land in
  // different stages, so this also exercises stage-boundary resumes.
  const std::string Path = "ckpt_test_killresume.bin";
  std::remove(Path.c_str());
  PipelineArtifacts Res;
  unsigned Legs = 0;
  for (;; ++Legs) {
    ASSERT_LT(Legs, 20u) << "resume loop did not converge";
    PipelineOptions P = smallOptions();
    P.CheckpointPath = Path;
    P.CheckpointEveryNSteps = 2; // also exercise periodic checkpoints
    P.Resume = true;             // first leg: no file yet -> fresh start
    P.HaltAfterSteps = 5;
    Res = runTrainingPipeline(DS, P);
    if (!Res.Halted)
      break;
    EXPECT_GT(Res.CheckpointsWritten, 0u);
  }
  EXPECT_GE(Legs, 2u) << "test misconfigured: nothing was interrupted";

  expectIdenticalArtifacts(Ref, Res);
  std::remove(Path.c_str());
}

TEST(FaultTolerance, ResumeIgnoresCheckpointFromDifferentSeed) {
  const Dataset &DS = smallDataset();
  const std::string Path = "ckpt_test_wrongseed.bin";
  std::remove(Path.c_str());

  PipelineOptions P = smallOptions();
  P.CheckpointPath = Path;
  P.HaltAfterSteps = 3;
  P.Resume = true;
  PipelineArtifacts Halted = runTrainingPipeline(DS, P);
  ASSERT_TRUE(Halted.Halted);

  // A different seed must not adopt this checkpoint: the run starts fresh
  // (and therefore completes all stages rather than resuming mid-stage-1).
  PipelineOptions Q = smallOptions();
  Q.Seed = 4711;
  Q.CheckpointPath = Path;
  Q.Resume = true;
  PipelineArtifacts Fresh = runTrainingPipeline(DS, Q);
  EXPECT_FALSE(Fresh.Halted);
  EXPECT_EQ(Fresh.Stage1Log.size(), smallOptions().Stage1Steps);
  std::remove(Path.c_str());
}

TEST(FaultTolerance, SurvivesFaultStormWithoutHanging) {
  const Dataset &DS = smallDataset();
  FaultInjector FI(1234);
  FI.enable(FaultSite::OracleBudget, 0.3);
  FI.enable(FaultSite::VerdictFlip, 0.05);
  FI.enable(FaultSite::CacheMiss, 0.3);
  FI.enable(FaultSite::CheckpointWrite, 0.5);

  const std::string Path = "ckpt_test_faultstorm.bin";
  std::remove(Path.c_str());
  PipelineOptions P = smallOptions();
  P.Faults = &FI;
  P.CheckpointPath = Path;
  P.CheckpointEveryNSteps = 1;
  PipelineArtifacts Art = runTrainingPipeline(DS, P);

  // The run completes every stage despite the storm.
  EXPECT_FALSE(Art.Halted);
  ASSERT_NE(Art.Latency, nullptr);
  EXPECT_EQ(Art.Stage1Log.size(), P.Stage1Steps);
  EXPECT_EQ(Art.Stage2Log.size(), P.Stage2Steps);
  EXPECT_EQ(Art.Stage3Log.size(), P.Stage3Steps);

  // Faults actually fired and were logged, not silently swallowed.
  EXPECT_GT(Art.InjectedFaults, 0u);
  EXPECT_GT(Art.CheckpointWriteFailures, 0u);
  EXPECT_GT(Art.CheckpointsWritten + Art.CheckpointWriteFailures,
            P.Stage1Steps + P.Stage2Steps + P.Stage3Steps - 1);
  EXPECT_GT(FI.counters().injected(FaultSite::OracleBudget), 0u);
  // Injected oracle exhaustion is recovered through the retry ladder.
  EXPECT_GT(Art.RetryEscalations, 0u);
  std::remove(Path.c_str());
}

TEST(FaultTolerance, CheckpointRetriesRecoverTransientWriteFaults) {
  // Injection keys are attempt-salted, so a retry of a failed checkpoint
  // write decides independently of the first attempt: at rate 0.5 with two
  // retries most checkpoints land, the telemetry records the retries, and
  // the trajectory is bit-identical to the fault-free run (durability work
  // never feeds back into training).
  const Dataset &DS = smallDataset();
  PipelineArtifacts Plain = runTrainingPipeline(DS, smallOptions());

  FaultInjector FI(7001);
  FI.enable(FaultSite::CheckpointWrite, 0.5);
  const std::string Path = "ckpt_test_retry.bin";
  std::remove(Path.c_str());
  PipelineOptions P = smallOptions();
  P.Faults = &FI;
  P.CheckpointPath = Path;
  P.CheckpointEveryNSteps = 1;
  P.CheckpointWriteRetries = 2;
  PipelineArtifacts Art = runTrainingPipeline(DS, P);

  EXPECT_FALSE(Art.Halted);
  EXPECT_GT(Art.CheckpointRetries, 0u) << "no retry ever fired at rate 0.5";
  // A retried write only counts as a failure when every attempt loses
  // (p = 0.125 per checkpoint here), so retries must strictly improve on
  // the no-retry storm: most checkpoints land.
  EXPECT_GT(Art.CheckpointsWritten, Art.CheckpointWriteFailures);
  expectIdenticalArtifacts(Plain, Art);
  std::remove(Path.c_str());
}

TEST(FaultTolerance, IoFaultStormPreservesTrajectory) {
  // The tentpole invariant end to end: run the pipeline with every durable
  // subsystem it touches (periodic checkpoints + the verdict-store
  // journal) behind a hostile disk — injected open/write/short-write/
  // fsync/rename/flock failures — and require the training trajectory to
  // be bit-identical to the fault-free same-seed run. I/O faults may cost
  // durability, never correctness or determinism.
  const Dataset &DS = smallDataset();
  PipelineArtifacts Plain = runTrainingPipeline(DS, smallOptions());

  const std::string Ckpt = "ckpt_test_iostorm.bin";
  const std::string Journal = "store_test_iostorm.vstore";
  std::remove(Ckpt.c_str());
  std::remove(Journal.c_str());
  std::remove((Journal + ".lock").c_str());

  VerdictStore::Options SO;
  SO.FlushEveryN = 4; // plenty of journal traffic for the storm to hit
  std::string Err;
  auto Store = VerdictStore::open(Journal, &Err, SO);
  ASSERT_NE(Store, nullptr) << Err;

  FaultInjector IoFI(0xFA11);
  for (FaultSite S : {FaultSite::IoOpen, FaultSite::IoWrite,
                      FaultSite::IoShortWrite, FaultSite::IoFsync,
                      FaultSite::IoRename, FaultSite::IoFlock})
    IoFI.enable(S, 0.25);
  FaultyIoEnv Env(IoFI);

  PipelineOptions P = smallOptions();
  P.CheckpointPath = Ckpt;
  P.CheckpointEveryNSteps = 1;
  P.VerdictTier = Store.get();
  PipelineArtifacts Art;
  {
    ScopedIoEnv Install(&Env);
    Art = runTrainingPipeline(DS, P);
  }

  EXPECT_FALSE(Art.Halted);
  EXPECT_GT(IoFI.counters().totalInjected(), 0u) << "storm never fired";
  expectIdenticalArtifacts(Plain, Art);
  // Degradation (if the storm tripped the store) is visible, typed state —
  // not silence, not an abort.
  if (Store->degraded())
    EXPECT_FALSE(Store->stats().DegradedReason.empty());

  std::remove(Ckpt.c_str());
  std::remove(Journal.c_str());
  std::remove((Journal + ".lock").c_str());
}

TEST(FaultTolerance, CacheMissFaultsDoNotChangeResults) {
  // Cache residency must never influence training: verification is
  // deterministic, so randomly evicting entries only costs time.
  const Dataset &DS = smallDataset();
  PipelineArtifacts Plain = runTrainingPipeline(DS, smallOptions());

  FaultInjector FI(55);
  FI.enable(FaultSite::CacheMiss, 0.5);
  PipelineOptions P = smallOptions();
  P.Faults = &FI;
  PipelineArtifacts Faulted = runTrainingPipeline(DS, P);

  EXPECT_GT(FI.counters().injected(FaultSite::CacheMiss), 0u);
  expectIdenticalArtifacts(Plain, Faulted);
}

TEST(FaultTolerance, ThreadCountInvariantWithInjectionDisabled) {
  const Dataset &DS = smallDataset();
  PipelineOptions P1 = smallOptions();
  P1.Threads = 1;
  PipelineOptions P4 = smallOptions();
  P4.Threads = 4;
  PipelineArtifacts A = runTrainingPipeline(DS, P1);
  PipelineArtifacts B = runTrainingPipeline(DS, P4);
  expectIdenticalArtifacts(A, B);
}

} // namespace
} // namespace veriopt
