//===- PipelineTest.cpp - Four-stage pipeline + evaluation integration -----===//
//
// Runs a reduced version of the paper's full pipeline and asserts the
// qualitative results of RQ1-RQ4 hold: the base model is vacuously correct
// (mostly copies, no speedup); training lifts different-correct rates and
// speedup stage by stage; the latency model approaches the reference pass.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Evaluation.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

struct PipelineFixture : public ::testing::Test {
  static const Dataset &dataset() {
    static Dataset DS = [] {
      DatasetOptions O;
      O.TrainCount = 24;
      O.ValidCount = 16;
      O.Seed = 77;
      return buildDataset(O);
    }();
    return DS;
  }

  // Shared across tests (expensive); reduced budgets keep this fast.
  static PipelineArtifacts &artifacts() {
    static PipelineArtifacts Art = [] {
      PipelineOptions P;
      P.Stage1Steps = 15;
      P.Stage2Steps = 25;
      // 100 stage-3 steps: enough for the latency stage to converge past
      // the correctness checkpoint at this reduced scale (at 60 it is
      // still mid-climb and the RQ4 ladder check is seed-marginal).
      P.Stage3Steps = 100;
      P.GRPO.GroupSize = 6;
      P.GRPO.PromptsPerStep = 3;
      return runTrainingPipeline(dataset(), P);
    }();
    return Art;
  }
};

TEST_F(PipelineFixture, ProducesAllFourModels) {
  auto &Art = artifacts();
  EXPECT_NE(Art.Base, nullptr);
  EXPECT_NE(Art.ModelZero, nullptr);
  EXPECT_NE(Art.WarmUp, nullptr);
  EXPECT_NE(Art.Correctness, nullptr);
  EXPECT_NE(Art.Latency, nullptr);
  EXPECT_GE(Art.UMax, 1.5);
}

TEST_F(PipelineFixture, HarvestsBothSampleKinds) {
  auto &Art = artifacts();
  EXPECT_GT(Art.CorrectionSamples, 0u)
      << "stage 1 found no failures to learn from";
  EXPECT_EQ(Art.FirstTimeSamples, 24u);
  EXPECT_EQ(Art.Augmented.size(),
            Art.CorrectionSamples + Art.FirstTimeSamples);
}

TEST_F(PipelineFixture, RQ1BaseModelIsVacuouslyCorrect) {
  auto E = evaluateModel(*artifacts().Base, dataset().Valid,
                         PromptMode::Generic);
  // High headline correctness, dominated by copies, negligible speedup.
  EXPECT_GT(E.Taxonomy.pct(E.Taxonomy.CorrectCopies), 30.0);
  EXPECT_LT(E.Taxonomy.differentCorrectRate(), 40.0);
  EXPECT_LT(E.GeoSpeedupVsO0, 1.1);
}

TEST_F(PipelineFixture, RQ2TrainedModelIsDifferentCorrectAndFast) {
  auto &Art = artifacts();
  auto Base = evaluateModel(*Art.Base, dataset().Valid, PromptMode::Generic);
  auto Lat =
      evaluateModel(*Art.Latency, dataset().Valid, PromptMode::Generic);
  EXPECT_GT(Lat.Taxonomy.differentCorrectRate(),
            3 * Base.Taxonomy.differentCorrectRate())
      << "paper: 5.4x more successfully-modified code";
  EXPECT_GT(Lat.GeoSpeedupVsO0, 1.6);
  EXPECT_LT(Lat.Taxonomy.pct(Lat.Taxonomy.CorrectCopies), 20.0);
}

TEST_F(PipelineFixture, RQ3ComparableToReferencePass) {
  auto &Art = artifacts();
  auto Lat =
      evaluateModel(*Art.Latency, dataset().Valid, PromptMode::Generic);
  auto Ref = evaluateReferencePass(dataset().Valid);
  // Within a reasonable band of the handwritten pass.
  EXPECT_GT(Lat.GeoSpeedupVsO0, 0.7 * Ref.GeoSpeedupVsO0);
  // The fallback composition can only help over the reference.
  EXPECT_GE(Lat.FallbackGainOverRef, 0.0);
}

TEST_F(PipelineFixture, RQ4AblationLadder) {
  auto &Art = artifacts();
  auto Valid = [&](const RewritePolicyModel &M, PromptMode Mode) {
    return evaluateModel(M, dataset().Valid, Mode);
  };
  auto Zero = Valid(*Art.ModelZero, PromptMode::Generic);
  auto Warm = Valid(*Art.WarmUp, PromptMode::Augmented);
  auto Corr = Valid(*Art.Correctness, PromptMode::Augmented);
  auto Lat = Valid(*Art.Latency, PromptMode::Generic);
  // Speedup ladder: each stage at least holds the previous one (small
  // tolerance: greedy decoding is discrete).
  EXPECT_GE(Warm.GeoSpeedupVsO0, Zero.GeoSpeedupVsO0 - 0.05);
  EXPECT_GE(Corr.GeoSpeedupVsO0, Warm.GeoSpeedupVsO0 - 0.05);
  EXPECT_GE(Lat.GeoSpeedupVsO0, Corr.GeoSpeedupVsO0 - 0.05);
  // The endpoints must separate clearly.
  EXPECT_GT(Lat.GeoSpeedupVsO0, Zero.GeoSpeedupVsO0 + 0.4);
  // Warm-up gains real different-correct capability over Model-Zero.
  EXPECT_GT(Warm.Taxonomy.differentCorrectRate(),
            Zero.Taxonomy.differentCorrectRate());
}

TEST_F(PipelineFixture, TrainingLogsFeedFig4) {
  auto &Art = artifacts();
  EXPECT_EQ(Art.Stage2Log.size(), 25u);
  EXPECT_EQ(Art.Stage3Log.size(), 100u);
  for (const auto &L : Art.Stage2Log) {
    EXPECT_GE(L.MeanReward, 0.0);
    EXPECT_GE(L.EMAReward, 0.0);
  }
  // The latency-stage EMA should end above its start (Fig. 4b's rise).
  EXPECT_GE(Art.Stage3Log.back().EMAReward,
            Art.Stage3Log.front().EMAReward - 0.02);
}

TEST_F(PipelineFixture, CorrectnessStaysHighAfterLatencyStage) {
  auto &Art = artifacts();
  auto Corr = evaluateModel(*Art.Correctness, dataset().Valid,
                            PromptMode::Augmented);
  auto Lat =
      evaluateModel(*Art.Latency, dataset().Valid, PromptMode::Generic);
  // The paper's §V-B: incremental latency training does not cost
  // correctness (within a small band).
  EXPECT_GE(Lat.Taxonomy.pct(Lat.Taxonomy.Correct),
            Corr.Taxonomy.pct(Corr.Taxonomy.Correct) - 15.0);
}

TEST(Evaluation, TaxonomyRendering) {
  VerifyTaxonomy T;
  T.Total = 100;
  T.Correct = 73;
  T.CorrectCopies = 57;
  T.SemanticError = 4;
  T.SyntaxError = 21;
  T.Inconclusive = 2;
  std::string Out = renderTaxonomy("Table I", T);
  EXPECT_NE(Out.find("Correct (verified)"), std::string::npos);
  EXPECT_NE(Out.find("73"), std::string::npos);
  EXPECT_NE(Out.find("21.0"), std::string::npos);
  EXPECT_NEAR(T.differentCorrectRate(), 16.0, 1e-9);
}

TEST(Evaluation, ReferencePassRowIsAllCorrect) {
  DatasetOptions O;
  O.TrainCount = 0;
  O.ValidCount = 10;
  O.Seed = 3;
  auto DS = buildDataset(O);
  auto R = evaluateReferencePass(DS.Valid);
  EXPECT_EQ(R.Taxonomy.Correct, 10u);
  EXPECT_GT(R.GeoSpeedupVsO0, 1.2);
  EXPECT_EQ(R.VsRefBetter + R.VsRefWorse, 0u); // ties with itself
}

} // namespace
} // namespace veriopt
