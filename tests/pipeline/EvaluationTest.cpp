//===- EvaluationTest.cpp - Metric aggregation and fallback semantics ------===//

#include "pipeline/Evaluation.h"

#include "cost/CostModel.h"
#include "rl/Reward.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef VERIOPT_TEST_DATA_DIR
#error "VERIOPT_TEST_DATA_DIR must point at tests/pipeline"
#endif

namespace veriopt {
namespace {

const Dataset &ds() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 0;
    O.ValidCount = 20;
    O.Seed = 55;
    return buildDataset(O);
  }();
  return DS;
}

TEST(Evaluation, PerSampleMetricsAreConsistent) {
  RewritePolicyModel Base(presetQwen3B());
  auto E = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  ASSERT_EQ(E.PerSample.size(), ds().Valid.size());
  for (size_t I = 0; I < E.PerSample.size(); ++I) {
    const SampleEval &S = E.PerSample[I];
    const Sample &Orig = ds().Valid[I];
    EXPECT_DOUBLE_EQ(S.LatO0, estimateLatency(*Orig.source()));
    EXPECT_DOUBLE_EQ(S.LatRef, estimateLatency(*Orig.Reference));
    // Fallback invariant: a failed verification keeps the -O0 metrics.
    if (S.UsedFallback) {
      EXPECT_DOUBLE_EQ(S.LatOut, S.LatO0);
      EXPECT_EQ(S.ICountOut, S.ICountO0);
      EXPECT_EQ(S.SizeOut, S.SizeO0);
    }
    // Only verified outputs may differ from -O0.
    if (S.Status != VerifyStatus::Equivalent)
      EXPECT_TRUE(S.UsedFallback);
  }
}

TEST(Evaluation, BetterWorseTieSumsToTotal) {
  RewritePolicyModel Base(presetQwen3B());
  auto E = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  unsigned N = static_cast<unsigned>(E.PerSample.size());
  EXPECT_EQ(E.Latency.Better + E.Latency.Worse + E.Latency.Tie, N);
  EXPECT_EQ(E.Size.Better + E.Size.Worse + E.Size.Tie, N);
  EXPECT_EQ(E.ICount.Better + E.ICount.Worse + E.ICount.Tie, N);
  EXPECT_EQ(E.VsRefBetter + E.VsRefWorse + E.VsRefTie, N);
}

TEST(Evaluation, TaxonomySumsToTotal) {
  RewritePolicyModel Base(presetQwen3B());
  auto E = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  EXPECT_EQ(E.Taxonomy.Correct + E.Taxonomy.SemanticError +
                E.Taxonomy.SyntaxError + E.Taxonomy.Inconclusive,
            E.Taxonomy.Total);
  EXPECT_LE(E.Taxonomy.CorrectCopies, E.Taxonomy.Correct);
}

TEST(Evaluation, GreedyEvaluationIsReproducible) {
  RewritePolicyModel Base(presetQwen3B());
  auto A = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  auto B = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  EXPECT_EQ(A.Taxonomy.Correct, B.Taxonomy.Correct);
  EXPECT_EQ(A.Taxonomy.SyntaxError, B.Taxonomy.SyntaxError);
  EXPECT_DOUBLE_EQ(A.GeoSpeedupVsO0, B.GeoSpeedupVsO0);
}

TEST(Evaluation, FallbackGainIsNonNegative) {
  // min(model, reference) can never be slower than reference.
  RewritePolicyModel Base(presetQwen3B());
  auto E = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  EXPECT_GE(E.FallbackGainOverRef, 0.0);
}

TEST(Evaluation, LyingVerifierVerdictIsDowngradedToInconclusive) {
  // Regression: the reparse after an Equivalent verdict used to be guarded
  // by assert() only — under NDEBUG, takeValue() on the failed ErrorOr was
  // UB. A verdict the evaluator cannot reparse must be downgraded to
  // Inconclusive and keep the -O0 fallback.
  const Sample &S = ds().Valid.front();
  Completion C;
  C.FormatOk = true;
  C.AnswerIR = "this is not IR at all (";
  CandidateVerifier Lying = [](const Sample &, const std::string &) {
    VerifyResult VR;
    VR.Status = VerifyStatus::Equivalent; // claims correctness, lies
    return VR;
  };
  VerifyTaxonomy Tax;
  SampleEval E = evaluateCandidate(S, C, Lying, Tax);
  EXPECT_EQ(E.Status, VerifyStatus::Inconclusive);
  EXPECT_TRUE(E.UsedFallback);
  EXPECT_DOUBLE_EQ(E.LatOut, E.LatO0);
  EXPECT_EQ(Tax.Inconclusive, 1u);
  EXPECT_EQ(Tax.Correct, 0u);
}

TEST(Evaluation, EmptyCorpusAggregatesFollowConventions) {
  // Regression: aggregate() used to feed empty vectors to mean()/geomean(),
  // yielding 0 geomeans (and a -100% "fallback gain"). The documented
  // convention: 0.0 relative change, neutral 1.0 geo ratios, 0.0 gain.
  RewritePolicyModel Base(presetQwen3B());
  std::vector<Sample> Empty;
  auto E = evaluateModel(Base, Empty, PromptMode::Generic);
  EXPECT_EQ(E.Taxonomy.Total, 0u);
  EXPECT_DOUBLE_EQ(E.Latency.MeanRelChange, 0.0);
  EXPECT_DOUBLE_EQ(E.Latency.GeoRatio, 1.0);
  EXPECT_DOUBLE_EQ(E.Size.GeoRatio, 1.0);
  EXPECT_DOUBLE_EQ(E.ICount.GeoRatio, 1.0);
  EXPECT_DOUBLE_EQ(E.GeoSpeedupVsO0, 1.0);
  EXPECT_DOUBLE_EQ(E.FallbackGainOverRef, 0.0);

  EvalResult R;
  recomputeAggregates(R);
  EXPECT_DOUBLE_EQ(R.GeoSpeedupVsO0, 1.0);
  EXPECT_DOUBLE_EQ(R.FallbackGainOverRef, 0.0);
}

TEST(Evaluation, EmptySplitRendersZeroPercentRows) {
  // An empty validation split must render 0.0% rows, never NaN/inf. The
  // exact bytes are pinned by a golden file (regenerate with
  // VERIOPT_REGEN_GOLDEN=1).
  VerifyTaxonomy T;
  EXPECT_DOUBLE_EQ(T.pct(0), 0.0);
  EXPECT_DOUBLE_EQ(T.differentCorrectRate(), 0.0);
  std::string Table = renderTaxonomy("Empty split", T);
  EXPECT_EQ(Table.find("nan"), std::string::npos) << Table;
  EXPECT_EQ(Table.find("inf"), std::string::npos) << Table;

  const std::string GoldenPath =
      std::string(VERIOPT_TEST_DATA_DIR) + "/golden_empty_taxonomy.txt";
  if (std::getenv("VERIOPT_REGEN_GOLDEN")) {
    std::ofstream OS(GoldenPath, std::ios::binary);
    OS << Table;
    GTEST_SKIP() << "regenerated " << GoldenPath;
  }
  std::ifstream IS(GoldenPath);
  ASSERT_TRUE(IS.good()) << "missing golden file " << GoldenPath;
  std::stringstream SS;
  SS << IS.rdbuf();
  EXPECT_EQ(Table, SS.str());
}

TEST(Evaluation, ReferenceRowMatchesSampleReferences) {
  auto R = evaluateReferencePass(ds().Valid);
  for (size_t I = 0; I < R.PerSample.size(); ++I) {
    EXPECT_FALSE(R.PerSample[I].UsedFallback);
    EXPECT_DOUBLE_EQ(R.PerSample[I].LatOut, R.PerSample[I].LatRef);
  }
  EXPECT_EQ(R.VsRefWorse, 0u);
  EXPECT_EQ(R.VsRefBetter, 0u);
}

} // namespace
} // namespace veriopt
