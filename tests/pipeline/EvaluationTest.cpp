//===- EvaluationTest.cpp - Metric aggregation and fallback semantics ------===//

#include "pipeline/Evaluation.h"

#include "cost/CostModel.h"
#include "rl/Reward.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

const Dataset &ds() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 0;
    O.ValidCount = 20;
    O.Seed = 55;
    return buildDataset(O);
  }();
  return DS;
}

TEST(Evaluation, PerSampleMetricsAreConsistent) {
  RewritePolicyModel Base(presetQwen3B());
  auto E = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  ASSERT_EQ(E.PerSample.size(), ds().Valid.size());
  for (size_t I = 0; I < E.PerSample.size(); ++I) {
    const SampleEval &S = E.PerSample[I];
    const Sample &Orig = ds().Valid[I];
    EXPECT_DOUBLE_EQ(S.LatO0, estimateLatency(*Orig.source()));
    EXPECT_DOUBLE_EQ(S.LatRef, estimateLatency(*Orig.Reference));
    // Fallback invariant: a failed verification keeps the -O0 metrics.
    if (S.UsedFallback) {
      EXPECT_DOUBLE_EQ(S.LatOut, S.LatO0);
      EXPECT_EQ(S.ICountOut, S.ICountO0);
      EXPECT_EQ(S.SizeOut, S.SizeO0);
    }
    // Only verified outputs may differ from -O0.
    if (S.Status != VerifyStatus::Equivalent)
      EXPECT_TRUE(S.UsedFallback);
  }
}

TEST(Evaluation, BetterWorseTieSumsToTotal) {
  RewritePolicyModel Base(presetQwen3B());
  auto E = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  unsigned N = static_cast<unsigned>(E.PerSample.size());
  EXPECT_EQ(E.Latency.Better + E.Latency.Worse + E.Latency.Tie, N);
  EXPECT_EQ(E.Size.Better + E.Size.Worse + E.Size.Tie, N);
  EXPECT_EQ(E.ICount.Better + E.ICount.Worse + E.ICount.Tie, N);
  EXPECT_EQ(E.VsRefBetter + E.VsRefWorse + E.VsRefTie, N);
}

TEST(Evaluation, TaxonomySumsToTotal) {
  RewritePolicyModel Base(presetQwen3B());
  auto E = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  EXPECT_EQ(E.Taxonomy.Correct + E.Taxonomy.SemanticError +
                E.Taxonomy.SyntaxError + E.Taxonomy.Inconclusive,
            E.Taxonomy.Total);
  EXPECT_LE(E.Taxonomy.CorrectCopies, E.Taxonomy.Correct);
}

TEST(Evaluation, GreedyEvaluationIsReproducible) {
  RewritePolicyModel Base(presetQwen3B());
  auto A = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  auto B = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  EXPECT_EQ(A.Taxonomy.Correct, B.Taxonomy.Correct);
  EXPECT_EQ(A.Taxonomy.SyntaxError, B.Taxonomy.SyntaxError);
  EXPECT_DOUBLE_EQ(A.GeoSpeedupVsO0, B.GeoSpeedupVsO0);
}

TEST(Evaluation, FallbackGainIsNonNegative) {
  // min(model, reference) can never be slower than reference.
  RewritePolicyModel Base(presetQwen3B());
  auto E = evaluateModel(Base, ds().Valid, PromptMode::Generic);
  EXPECT_GE(E.FallbackGainOverRef, 0.0);
}

TEST(Evaluation, ReferenceRowMatchesSampleReferences) {
  auto R = evaluateReferencePass(ds().Valid);
  for (size_t I = 0; I < R.PerSample.size(); ++I) {
    EXPECT_FALSE(R.PerSample[I].UsedFallback);
    EXPECT_DOUBLE_EQ(R.PerSample[I].LatOut, R.PerSample[I].LatRef);
  }
  EXPECT_EQ(R.VsRefWorse, 0u);
  EXPECT_EQ(R.VsRefBetter, 0u);
}

} // namespace
} // namespace veriopt
