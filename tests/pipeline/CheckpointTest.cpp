//===- CheckpointTest.cpp - Checkpoint save/load round-trips --------------===//

#include "pipeline/Checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

namespace veriopt {
namespace {

/// Unique-ish per-test scratch path inside the build tree's cwd.
std::string scratchPath(const char *Name) {
  return std::string("ckpt_test_") + Name + ".bin";
}

bool bitEqual(double A, double B) {
  uint64_t X, Y;
  std::memcpy(&X, &A, sizeof(X));
  std::memcpy(&Y, &B, sizeof(Y));
  return X == Y;
}

PipelineCheckpoint makeRichCheckpoint() {
  PipelineCheckpoint CP;
  CP.Seed = 2026;
  CP.StageIdx = 1;
  CP.Trainer.StepCount = 17;
  CP.Trainer.RNGState = 0xDEADBEEFCAFEF00DULL;
  CP.Trainer.EMAValue = 1.0 / 3.0; // not exactly representable in decimal
  CP.Trainer.EMAPrimed = true;

  CP.ModelZeroParams = {0.1, -0.0, 1.0 / 3.0,
                        std::numeric_limits<double>::min(),
                        std::numeric_limits<double>::denorm_min(), -17.25};
  CP.WarmUpParams = {2.5, -3.75};
  // Correctness intentionally empty (= not built yet); latency has one.
  CP.LatencyParams = {1e-300};

  TrainLogEntry E;
  E.Step = 3;
  E.MeanReward = 0.123456789012345;
  E.EMAReward = -0.25;
  E.EquivalentRate = 2.0 / 3.0;
  E.CopyRate = 0.5;
  E.GradNorm = 1e-9;
  E.ScoreWallMs = 12.5;
  E.CacheHitRate = 0.875;
  E.FalsifyWins = 4;
  E.SolverConflicts = 123456;
  E.RetryEscalations = 2;
  E.TerminalInconclusive = 1;
  E.MaxRetryTier = 2;
  CP.Stage1Log = {E, E};
  E.Step = 9;
  CP.Stage2Log = {E};
  // Stage3Log empty.

  AugmentedRecord R1;
  R1.SampleIdx = 5;
  R1.TargetActions = {1, 2, 3, 0};
  R1.IsCorrection = true;
  R1.AttemptActions = {7, 0};
  R1.DiagClass = 4;
  AugmentedRecord R2;
  R2.SampleIdx = 0;
  R2.TargetActions = {0};
  CP.Augmented = {R1, R2};
  CP.CorrectionSamples = 1;
  CP.FirstTimeSamples = 1;
  return CP;
}

TEST(Checkpoint, RoundTripIsBitExact) {
  const std::string Path = scratchPath("roundtrip");
  PipelineCheckpoint CP = makeRichCheckpoint();
  ASSERT_TRUE(saveCheckpoint(Path, CP));

  PipelineCheckpoint L;
  ASSERT_TRUE(loadCheckpoint(Path, L));
  EXPECT_EQ(L.Version, CP.Version);
  EXPECT_EQ(L.Seed, CP.Seed);
  EXPECT_EQ(L.StageIdx, CP.StageIdx);
  EXPECT_EQ(L.Trainer.StepCount, CP.Trainer.StepCount);
  EXPECT_EQ(L.Trainer.RNGState, CP.Trainer.RNGState);
  EXPECT_TRUE(bitEqual(L.Trainer.EMAValue, CP.Trainer.EMAValue));
  EXPECT_EQ(L.Trainer.EMAPrimed, CP.Trainer.EMAPrimed);

  ASSERT_EQ(L.ModelZeroParams.size(), CP.ModelZeroParams.size());
  for (size_t I = 0; I < CP.ModelZeroParams.size(); ++I)
    EXPECT_TRUE(bitEqual(L.ModelZeroParams[I], CP.ModelZeroParams[I]))
        << "param " << I;
  EXPECT_EQ(L.WarmUpParams.size(), 2u);
  EXPECT_TRUE(L.CorrectnessParams.empty());
  ASSERT_EQ(L.LatencyParams.size(), 1u);
  EXPECT_TRUE(bitEqual(L.LatencyParams[0], 1e-300));

  ASSERT_EQ(L.Stage1Log.size(), 2u);
  ASSERT_EQ(L.Stage2Log.size(), 1u);
  EXPECT_TRUE(L.Stage3Log.empty());
  const TrainLogEntry &A = L.Stage1Log[0], &B = CP.Stage1Log[0];
  EXPECT_EQ(A.Step, B.Step);
  EXPECT_TRUE(bitEqual(A.MeanReward, B.MeanReward));
  EXPECT_TRUE(bitEqual(A.EMAReward, B.EMAReward));
  EXPECT_TRUE(bitEqual(A.EquivalentRate, B.EquivalentRate));
  EXPECT_TRUE(bitEqual(A.CopyRate, B.CopyRate));
  EXPECT_TRUE(bitEqual(A.GradNorm, B.GradNorm));
  EXPECT_TRUE(bitEqual(A.ScoreWallMs, B.ScoreWallMs));
  EXPECT_TRUE(bitEqual(A.CacheHitRate, B.CacheHitRate));
  EXPECT_EQ(A.FalsifyWins, B.FalsifyWins);
  EXPECT_EQ(A.SolverConflicts, B.SolverConflicts);
  EXPECT_EQ(A.RetryEscalations, B.RetryEscalations);
  EXPECT_EQ(A.TerminalInconclusive, B.TerminalInconclusive);
  EXPECT_EQ(A.MaxRetryTier, B.MaxRetryTier);

  ASSERT_EQ(L.Augmented.size(), 2u);
  EXPECT_EQ(L.Augmented[0].SampleIdx, 5u);
  EXPECT_EQ(L.Augmented[0].TargetActions, CP.Augmented[0].TargetActions);
  EXPECT_TRUE(L.Augmented[0].IsCorrection);
  EXPECT_EQ(L.Augmented[0].AttemptActions, CP.Augmented[0].AttemptActions);
  EXPECT_EQ(L.Augmented[0].DiagClass, 4u);
  EXPECT_FALSE(L.Augmented[1].IsCorrection);
  EXPECT_EQ(L.CorrectionSamples, 1u);
  EXPECT_EQ(L.FirstTimeSamples, 1u);

  std::remove(Path.c_str());
}

TEST(Checkpoint, MissingFileFailsCleanly) {
  PipelineCheckpoint L;
  L.Seed = 99;
  EXPECT_FALSE(loadCheckpoint("ckpt_test_does_not_exist.bin", L));
  // The output is untouched on failure.
  EXPECT_EQ(L.Seed, 99u);
}

TEST(Checkpoint, TruncatedFileFailsCleanly) {
  const std::string Path = scratchPath("truncated");
  PipelineCheckpoint CP = makeRichCheckpoint();
  ASSERT_TRUE(saveCheckpoint(Path, CP));
  // Chop the file roughly in half.
  std::string Contents;
  {
    std::ifstream F(Path, std::ios::binary);
    Contents.assign(std::istreambuf_iterator<char>(F),
                    std::istreambuf_iterator<char>());
  }
  {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F << Contents.substr(0, Contents.size() / 2);
  }
  PipelineCheckpoint L;
  L.Seed = 99;
  EXPECT_FALSE(loadCheckpoint(Path, L));
  EXPECT_EQ(L.Seed, 99u);
  std::remove(Path.c_str());
}

TEST(Checkpoint, BadMagicOrVersionFails) {
  const std::string Path = scratchPath("badmagic");
  {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F << "not-a-checkpoint 1\n";
  }
  PipelineCheckpoint L;
  EXPECT_FALSE(loadCheckpoint(Path, L));
  {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F << "veriopt-ckpt 999\nseed 1\n";
  }
  EXPECT_FALSE(loadCheckpoint(Path, L));
  std::remove(Path.c_str());
}

TEST(Checkpoint, SaveOverwritesAtomically) {
  const std::string Path = scratchPath("overwrite");
  PipelineCheckpoint CP = makeRichCheckpoint();
  ASSERT_TRUE(saveCheckpoint(Path, CP));
  CP.StageIdx = 2;
  CP.Trainer.StepCount = 99;
  ASSERT_TRUE(saveCheckpoint(Path, CP));
  // No stale temp file left behind.
  std::ifstream Tmp(Path + ".tmp");
  EXPECT_FALSE(Tmp.good());
  PipelineCheckpoint L;
  ASSERT_TRUE(loadCheckpoint(Path, L));
  EXPECT_EQ(L.StageIdx, 2u);
  EXPECT_EQ(L.Trainer.StepCount, 99u);
  std::remove(Path.c_str());
}

TEST(Checkpoint, InjectedWriteFailureLeavesPreviousCheckpoint) {
  const std::string Path = scratchPath("faultwrite");
  PipelineCheckpoint CP = makeRichCheckpoint();
  ASSERT_TRUE(saveCheckpoint(Path, CP));

  FaultInjector FI(11);
  FI.enable(FaultSite::CheckpointWrite, 1.0);
  PipelineCheckpoint Next = CP;
  Next.StageIdx = 2;
  EXPECT_FALSE(saveCheckpoint(Path, Next, &FI));
  EXPECT_GT(FI.counters().injected(FaultSite::CheckpointWrite), 0u);

  // The previous checkpoint still stands, bit for bit.
  PipelineCheckpoint L;
  ASSERT_TRUE(loadCheckpoint(Path, L));
  EXPECT_EQ(L.StageIdx, CP.StageIdx);
  std::remove(Path.c_str());
}

TEST(Checkpoint, WriteFailureKeyIsPositional) {
  // The CheckpointWrite fault key depends on the checkpoint's position in
  // the run (stage + per-stage progress), so an interrupted run and an
  // uninterrupted run inject at the same checkpoints.
  FaultInjector A(7), B(7);
  A.enable(FaultSite::CheckpointWrite, 0.5);
  B.enable(FaultSite::CheckpointWrite, 0.5);
  const std::string PA = scratchPath("poskeyA"), PB = scratchPath("poskeyB");
  PipelineCheckpoint CP = makeRichCheckpoint();
  for (unsigned Step = 0; Step < 16; ++Step) {
    CP.Stage1Log.resize(Step);
    EXPECT_EQ(saveCheckpoint(PA, CP, &A), saveCheckpoint(PB, CP, &B))
        << "step " << Step;
  }
  std::remove(PA.c_str());
  std::remove(PB.c_str());
}

} // namespace
} // namespace veriopt
