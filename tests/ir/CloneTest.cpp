//===- CloneTest.cpp - Deep-copy semantics of Function::clone -------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

const char *LoopSrc = R"(
declare void @sink(i32)
define i32 @f(i32 %n, i1 %flag) {
entryblk:
  %s = alloca i32
  store i32 0, ptr %s
  br i1 %flag, label %head, label %done
head:
  %i = phi i32 [ 0, %entryblk ], [ %ni, %head ]
  %ni = add nsw i32 %i, 1
  call void @sink(i32 %ni)
  %c = icmp ult i32 %ni, %n
  br i1 %c, label %head, label %done
done:
  %v = load i32, ptr %s
  %r = add i32 %v, %n
  ret i32 %r
}
)";

TEST(Clone, PreservesText) {
  auto M = parseModule(LoopSrc);
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  Function *F = M.value()->getMainFunction();
  auto C = F->clone();
  EXPECT_EQ(printFunction(*F), printFunction(*C));
  EXPECT_TRUE(isWellFormed(*C));
}

TEST(Clone, IsDeep) {
  auto M = parseModule(LoopSrc);
  ASSERT_TRUE(M.hasValue());
  Function *F = M.value()->getMainFunction();
  auto C = F->clone();
  std::string Before = printFunction(*F);
  // Mutate the clone: flip the add's nsw flag and rename a value.
  for (auto &BB : *C)
    for (auto &I : *BB)
      if (I->getOpcode() == Opcode::Add && I->hasNSW()) {
        I->setNSW(false);
        I->setName("mutated");
      }
  EXPECT_EQ(printFunction(*F), Before) << "mutating clone changed original";
  EXPECT_NE(printFunction(*C), Before);
}

TEST(Clone, SharesCalleeDeclarations) {
  auto M = parseModule(LoopSrc);
  ASSERT_TRUE(M.hasValue());
  Function *F = M.value()->getMainFunction();
  Function *Sink = M.value()->getFunction("sink");
  auto C = F->clone();
  bool Found = false;
  for (auto &BB : *C)
    for (auto &I : *BB)
      if (auto *Call = dyn_cast<CallInst>(I.get())) {
        EXPECT_EQ(Call->getCallee(), Sink);
        Found = true;
      }
  EXPECT_TRUE(Found);
}

TEST(Clone, ConstantsAreRehomed) {
  auto M = parseModule("define i32 @f() {\n  ret i32 42\n}\n");
  ASSERT_TRUE(M.hasValue());
  Function *F = M.value()->getMainFunction();
  auto C = F->clone();
  auto *OrigRet = cast<RetInst>(F->getEntryBlock()->getTerminator());
  auto *CloneRet = cast<RetInst>(C->getEntryBlock()->getTerminator());
  // Same value, different owner objects: the clone is self-contained.
  EXPECT_NE(OrigRet->getReturnValue(), CloneRet->getReturnValue());
  EXPECT_EQ(cast<ConstantInt>(CloneRet->getReturnValue())->getValue().zext(),
            42u);
}

TEST(Clone, Declaration) {
  Function Decl("ext", Type::getVoid(), {Type::getInt64()}, true);
  auto C = Decl.clone();
  EXPECT_TRUE(C->isDeclaration());
  EXPECT_EQ(C->getNumParams(), 1u);
  EXPECT_EQ(C->getName(), "ext");
}

} // namespace
} // namespace veriopt
