//===- ValueTest.cpp - Use tracking, RAUW, instruction invariants ---------===//

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

std::unique_ptr<Function> makeFn() {
  auto F = std::make_unique<Function>(
      "f", Type::getInt32(), std::vector<Type *>{Type::getInt32()}, false);
  F->getArg(0)->setName("x");
  F->createBlock("entry");
  return F;
}

TEST(Value, UseTracking) {
  auto F = makeFn();
  IRBuilder B(F->getEntryBlock());
  Value *X = F->getArg(0);
  EXPECT_EQ(X->getNumUses(), 0u);
  Value *Add = B.createAdd(X, X);
  EXPECT_EQ(X->getNumUses(), 2u); // two operand slots
  EXPECT_FALSE(X->hasOneUse());
  Value *Mul = B.createMul(Add, X);
  EXPECT_EQ(X->getNumUses(), 3u);
  EXPECT_TRUE(Add->hasOneUse());
  B.createRet(Mul);
  EXPECT_TRUE(Mul->hasOneUse());
}

TEST(Value, ReplaceAllUsesWith) {
  auto F = makeFn();
  IRBuilder B(F->getEntryBlock());
  Value *X = F->getArg(0);
  Value *C = F->getConstant(32, 7);
  Value *Add = B.createAdd(X, C);
  Value *Mul = B.createMul(Add, Add);
  B.createRet(Mul);

  Add->replaceAllUsesWith(C);
  EXPECT_EQ(Add->getNumUses(), 0u);
  auto *MulI = cast<Instruction>(Mul);
  EXPECT_EQ(MulI->getOperand(0), C);
  EXPECT_EQ(MulI->getOperand(1), C);
}

TEST(Value, EraseRemovesUses) {
  auto F = makeFn();
  IRBuilder B(F->getEntryBlock());
  Value *X = F->getArg(0);
  Value *Add = B.createAdd(X, X);
  EXPECT_EQ(X->getNumUses(), 2u);
  F->getEntryBlock()->erase(cast<Instruction>(Add));
  EXPECT_EQ(X->getNumUses(), 0u);
}

TEST(Value, ConstantUniquing) {
  auto F = makeFn();
  EXPECT_EQ(F->getConstant(32, 5), F->getConstant(32, 5));
  EXPECT_NE(F->getConstant(32, 5), F->getConstant(64, 5));
  EXPECT_NE(F->getConstant(32, 5), F->getConstant(32, 6));
  // Negative values normalize through the width mask.
  EXPECT_EQ(F->getConstant(Type::getInt8(), APInt64::fromSigned(8, -1)),
            F->getConstant(8, 0xFF));
}

TEST(Value, CastingIdiom) {
  auto F = makeFn();
  IRBuilder B(F->getEntryBlock());
  Value *X = F->getArg(0);
  Value *Add = B.createAdd(X, X);
  Value *Cmp = B.createICmp(ICmpPred::EQ, Add, X);

  EXPECT_TRUE(isa<Instruction>(Add));
  EXPECT_TRUE(isa<BinaryInst>(Add));
  EXPECT_FALSE(isa<ICmpInst>(Add));
  EXPECT_TRUE(isa<ICmpInst>(Cmp));
  EXPECT_EQ(dyn_cast<BinaryInst>(Cmp), nullptr);
  EXPECT_NE(dyn_cast<BinaryInst>(Add), nullptr);
  EXPECT_TRUE(isa<Argument>(X));
  EXPECT_FALSE(isa<Instruction>(X));
}

TEST(Value, PredicateHelpers) {
  EXPECT_EQ(swappedPred(ICmpPred::ULT), ICmpPred::UGT);
  EXPECT_EQ(swappedPred(ICmpPred::EQ), ICmpPred::EQ);
  EXPECT_EQ(invertedPred(ICmpPred::ULT), ICmpPred::UGE);
  EXPECT_EQ(invertedPred(ICmpPred::EQ), ICmpPred::NE);
  EXPECT_TRUE(isSignedPred(ICmpPred::SLE));
  EXPECT_TRUE(isUnsignedPred(ICmpPred::UGT));
  EXPECT_FALSE(isSignedPred(ICmpPred::EQ));
  EXPECT_FALSE(isUnsignedPred(ICmpPred::EQ));
  // Inverting twice is the identity for every predicate.
  for (unsigned P = 0; P <= static_cast<unsigned>(ICmpPred::SLE); ++P) {
    auto Pred = static_cast<ICmpPred>(P);
    EXPECT_EQ(invertedPred(invertedPred(Pred)), Pred);
    EXPECT_EQ(swappedPred(swappedPred(Pred)), Pred);
  }
}

TEST(Value, InstructionClassification) {
  auto F = makeFn();
  IRBuilder B(F->getEntryBlock());
  Value *X = F->getArg(0);
  auto *Add = cast<Instruction>(B.createAdd(X, X));
  auto *Shl = cast<Instruction>(B.createShl(X, X));
  auto *Udiv = cast<Instruction>(B.createBinary(Opcode::UDiv, X, X));
  auto *Store =
      cast<Instruction>(F->getEntryBlock()->push_back(
          std::make_unique<StoreInst>(X, B.createAlloca(Type::getInt32()))));

  EXPECT_TRUE(Add->isCommutative());
  EXPECT_FALSE(Shl->isCommutative());
  EXPECT_TRUE(Shl->isShift());
  EXPECT_TRUE(Udiv->isDivRem());
  EXPECT_FALSE(Add->mayHaveSideEffects());
  EXPECT_TRUE(Store->mayHaveSideEffects());
}

TEST(Value, PhiIncomingManagement) {
  auto F = std::make_unique<Function>("g", Type::getInt32(),
                                      std::vector<Type *>{}, false);
  BasicBlock *A = F->createBlock("a");
  BasicBlock *BB = F->createBlock("b");
  BasicBlock *C = F->createBlock("c");
  IRBuilder B(C);
  auto *Phi = B.createPhi(Type::getInt32());
  Phi->addIncoming(F->getConstant(32, 1), A);
  Phi->addIncoming(F->getConstant(32, 2), BB);
  EXPECT_EQ(Phi->getNumIncoming(), 2u);
  EXPECT_EQ(cast<ConstantInt>(Phi->getIncomingValueFor(A))->getValue().zext(),
            1u);
  Phi->removeIncoming(0);
  EXPECT_EQ(Phi->getNumIncoming(), 1u);
  EXPECT_EQ(Phi->getIncomingBlock(0), BB);
  EXPECT_EQ(Phi->getIncomingValueFor(A), nullptr);
}

TEST(Value, BranchMutation) {
  auto F = std::make_unique<Function>("g", Type::getVoid(),
                                      std::vector<Type *>{Type::getInt1()},
                                      false);
  BasicBlock *E = F->createBlock("e");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *FB = F->createBlock("f");
  IRBuilder B(E);
  B.createCondBr(F->getArg(0), T, FB);
  auto *Br = cast<BrInst>(E->getTerminator());
  EXPECT_TRUE(Br->isConditional());
  EXPECT_EQ(F->getArg(0)->getNumUses(), 1u);
  Br->makeUnconditional(T);
  EXPECT_FALSE(Br->isConditional());
  EXPECT_EQ(Br->getNumSuccessors(), 1u);
  EXPECT_EQ(F->getArg(0)->getNumUses(), 0u);
}

} // namespace
} // namespace veriopt
