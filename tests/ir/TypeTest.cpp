//===- TypeTest.cpp - Type interning and properties -----------------------===//

#include "ir/Type.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(Type, Interning) {
  EXPECT_EQ(Type::getInt32(), Type::getInt(32));
  EXPECT_EQ(Type::getPtr(), Type::getPtr());
  EXPECT_EQ(Type::getVoid(), Type::getVoid());
  EXPECT_NE(Type::getInt32(), Type::getInt64());
}

TEST(Type, Predicates) {
  EXPECT_TRUE(Type::getVoid()->isVoid());
  EXPECT_TRUE(Type::getInt1()->isBool());
  EXPECT_FALSE(Type::getInt8()->isBool());
  EXPECT_TRUE(Type::getPtr()->isPointer());
  EXPECT_TRUE(Type::getInt16()->isInteger(16));
  EXPECT_FALSE(Type::getInt16()->isInteger(32));
}

TEST(Type, StoreSizes) {
  EXPECT_EQ(Type::getInt1()->getStoreSize(), 1u);
  EXPECT_EQ(Type::getInt8()->getStoreSize(), 1u);
  EXPECT_EQ(Type::getInt16()->getStoreSize(), 2u);
  EXPECT_EQ(Type::getInt32()->getStoreSize(), 4u);
  EXPECT_EQ(Type::getInt64()->getStoreSize(), 8u);
  EXPECT_EQ(Type::getPtr()->getStoreSize(), 8u);
}

TEST(Type, Names) {
  EXPECT_EQ(Type::getVoid()->getName(), "void");
  EXPECT_EQ(Type::getInt1()->getName(), "i1");
  EXPECT_EQ(Type::getInt64()->getName(), "i64");
  EXPECT_EQ(Type::getPtr()->getName(), "ptr");
}

TEST(Type, LegalWidths) {
  EXPECT_TRUE(Type::isLegalIntWidth(1));
  EXPECT_TRUE(Type::isLegalIntWidth(64));
  EXPECT_FALSE(Type::isLegalIntWidth(0));
  EXPECT_FALSE(Type::isLegalIntWidth(7));
  EXPECT_FALSE(Type::isLegalIntWidth(128));
}

} // namespace
} // namespace veriopt
