//===- CFGTest.cpp - CFG, RPO, dominators ---------------------------------===//

#include "analysis/CFG.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

std::unique_ptr<Module> parseOk(const char *Src) {
  auto M = parseModule(Src);
  EXPECT_TRUE(M.hasValue()) << M.error().render();
  return M.takeValue();
}

const char *Diamond = R"(
define i32 @f(i1 %c) {
entryblk:
  br i1 %c, label %left, label %right
left:
  br label %join
right:
  br label %join
join:
  %r = phi i32 [ 1, %left ], [ 2, %right ]
  ret i32 %r
}
)";

TEST(CFG, SuccessorsAndPredecessors) {
  auto M = parseOk(Diamond);
  Function *F = M->getMainFunction();
  BasicBlock *E = F->findBlock("entryblk");
  BasicBlock *L = F->findBlock("left");
  BasicBlock *R = F->findBlock("right");
  BasicBlock *J = F->findBlock("join");
  CFG G(*F);
  EXPECT_EQ(G.succs(E).size(), 2u);
  EXPECT_EQ(G.preds(E).size(), 0u);
  EXPECT_EQ(G.preds(J).size(), 2u);
  EXPECT_EQ(G.succs(L).size(), 1u);
  EXPECT_EQ(G.succs(L)[0], J);
  EXPECT_EQ(G.succs(R)[0], J);
  EXPECT_FALSE(G.hasCycle());
}

TEST(CFG, RPOEntryFirstJoinLast) {
  auto M = parseOk(Diamond);
  Function *F = M->getMainFunction();
  CFG G(*F);
  const auto &Order = G.rpo();
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order.front(), F->findBlock("entryblk"));
  EXPECT_EQ(Order.back(), F->findBlock("join"));
}

TEST(CFG, DetectsCycle) {
  auto M = parseOk(R"(
define i32 @loop(i32 %n) {
entryblk:
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %ni, %head ]
  %ni = add i32 %i, 1
  %c = icmp ult i32 %ni, %n
  br i1 %c, label %head, label %done
done:
  ret i32 %ni
}
)");
  CFG G(*M->getMainFunction());
  EXPECT_TRUE(G.hasCycle());
}

TEST(CFG, UnreachableBlocks) {
  auto M = parseOk(R"(
define i32 @f() {
  ret i32 0
dead:
  br label %dead
}
)");
  Function *F = M->getMainFunction();
  CFG G(*F);
  auto Un = G.unreachableBlocks();
  ASSERT_EQ(Un.size(), 1u);
  EXPECT_EQ(Un[0], F->findBlock("dead"));
  EXPECT_FALSE(G.isReachable(Un[0]));
  // A cycle among unreachable blocks does not count.
  EXPECT_FALSE(G.hasCycle());
}

TEST(Dominators, DiamondStructure) {
  auto M = parseOk(Diamond);
  Function *F = M->getMainFunction();
  BasicBlock *E = F->findBlock("entryblk");
  BasicBlock *L = F->findBlock("left");
  BasicBlock *R = F->findBlock("right");
  BasicBlock *J = F->findBlock("join");
  DominatorTree DT(*F);
  EXPECT_EQ(DT.idom(E), nullptr);
  EXPECT_EQ(DT.idom(L), E);
  EXPECT_EQ(DT.idom(R), E);
  EXPECT_EQ(DT.idom(J), E); // join is NOT dominated by either arm
  EXPECT_TRUE(DT.dominates(E, J));
  EXPECT_FALSE(DT.dominates(L, J));
  EXPECT_TRUE(DT.dominates(L, L));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  auto M = parseOk(R"(
define i32 @loop(i32 %n) {
entryblk:
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %ni, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %ni = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)");
  Function *F = M->getMainFunction();
  DominatorTree DT(*F);
  BasicBlock *Head = F->findBlock("head");
  BasicBlock *Body = F->findBlock("body");
  BasicBlock *Done = F->findBlock("done");
  EXPECT_TRUE(DT.dominates(Head, Body));
  EXPECT_TRUE(DT.dominates(Head, Done));
  EXPECT_FALSE(DT.dominates(Body, Done));
  EXPECT_EQ(DT.idom(Body), Head);
  EXPECT_EQ(DT.idom(Done), Head);
}

TEST(Dominators, DominatesUseSameBlock) {
  auto M = parseOk("define i32 @f(i32 %x) {\n  %a = add i32 %x, 1\n"
                   "  %b = mul i32 %a, 2\n  ret i32 %b\n}\n");
  Function *F = M->getMainFunction();
  DominatorTree DT(*F);
  BasicBlock *E = F->getEntryBlock();
  auto It = E->begin();
  Instruction *A = It->get();
  Instruction *B = std::next(It)->get();
  EXPECT_TRUE(DT.dominatesUse(A, B, 0));
  EXPECT_FALSE(DT.dominatesUse(B, A, 0));
}

} // namespace
} // namespace veriopt
