//===- VerifierTest.cpp - SSA/structural verification ---------------------===//

#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(Verifier, AcceptsWellFormed) {
  auto M = parseModule(R"(
define i32 @f(i32 %x) {
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %pos, label %neg
pos:
  %a = add i32 %x, 1
  br label %join
neg:
  %b = sub i32 %x, 1
  br label %join
join:
  %r = phi i32 [ %a, %pos ], [ %b, %neg ]
  ret i32 %r
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  EXPECT_TRUE(verifyFunction(*M.value()->getMainFunction()).empty());
}

TEST(Verifier, DetectsMissingTerminator) {
  auto F = std::make_unique<Function>(
      "f", Type::getInt32(), std::vector<Type *>{Type::getInt32()}, false);
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createAdd(F->getArg(0), F->getArg(0));
  auto Errors = verifyFunction(*F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(Verifier, DetectsEmptyBlock) {
  auto F = std::make_unique<Function>("f", Type::getVoid(),
                                      std::vector<Type *>{}, false);
  BasicBlock *E = F->createBlock("entry");
  F->createBlock("dangling");
  IRBuilder B(E);
  B.createRetVoid();
  auto Errors = verifyFunction(*F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("empty"), std::string::npos);
}

TEST(Verifier, DetectsPhiPredMismatch) {
  auto F = std::make_unique<Function>("f", Type::getInt32(),
                                      std::vector<Type *>{Type::getInt1()},
                                      false);
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *BB = F->createBlock("b");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(E);
  B.createCondBr(F->getArg(0), A, BB);
  B.setInsertBlock(A);
  B.createBr(J);
  B.setInsertBlock(BB);
  B.createBr(J);
  B.setInsertBlock(J);
  auto *Phi = B.createPhi(Type::getInt32());
  Phi->addIncoming(F->getConstant(32, 1), A); // missing incoming for %b
  B.createRet(Phi);
  std::string Err;
  EXPECT_FALSE(isWellFormed(*F, &Err));
  EXPECT_NE(Err.find("predecessors"), std::string::npos);
}

TEST(Verifier, DetectsDominanceViolation) {
  auto F = std::make_unique<Function>("f", Type::getInt32(),
                                      std::vector<Type *>{Type::getInt1()},
                                      false);
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(E);
  B.createCondBr(F->getArg(0), A, J);
  B.setInsertBlock(A);
  Value *X = B.createAdd(F->getConstant(32, 1), F->getConstant(32, 2));
  B.createBr(J);
  B.setInsertBlock(J);
  B.createRet(X); // %x does not dominate join (entry->join path skips a)
  std::string Err;
  EXPECT_FALSE(isWellFormed(*F, &Err));
  EXPECT_NE(Err.find("dominate"), std::string::npos);
}

TEST(Verifier, SameBlockUseBeforeDef) {
  auto F = std::make_unique<Function>(
      "f", Type::getInt32(), std::vector<Type *>{Type::getInt32()}, false);
  BasicBlock *E = F->createBlock("entry");
  // Build: %u = add %d, 1 ; %d = add %x, 1 ; ret %u  (use before def)
  auto D = std::make_unique<BinaryInst>(Opcode::Add, F->getArg(0),
                                        F->getConstant(32, 1));
  auto U = std::make_unique<BinaryInst>(Opcode::Add, D.get(),
                                        F->getConstant(32, 1));
  Instruction *URaw = E->push_back(std::move(U));
  E->push_back(std::move(D));
  E->push_back(std::make_unique<RetInst>(URaw));
  // Reorder: we appended U first, so D comes after its use already.
  std::string Err;
  EXPECT_FALSE(isWellFormed(*F, &Err));
  EXPECT_NE(Err.find("dominate"), std::string::npos);
}

TEST(Verifier, PhiUseOnlyNeedsIncomingEdgeDominance) {
  // A value defined in the loop body may feed the header phi.
  auto M = parseModule(R"(
define i32 @loop(i32 %n) {
entryblk:
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %next = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  EXPECT_TRUE(verifyFunction(*M.value()->getMainFunction()).empty());
}

TEST(Verifier, EntryBlockMayNotHavePhis) {
  auto M = parseModule(R"(
define i32 @f(i32 %x) {
entryblk:
  br label %entryblk2
entryblk2:
  ret i32 %x
}
)");
  ASSERT_TRUE(M.hasValue());
  // Manually build a function whose entry has a phi.
  auto F = std::make_unique<Function>("g", Type::getInt32(),
                                      std::vector<Type *>{}, false);
  BasicBlock *E = F->createBlock("entry");
  IRBuilder B(E);
  auto *Phi = B.createPhi(Type::getInt32());
  B.createRet(Phi);
  std::string Err;
  EXPECT_FALSE(isWellFormed(*F, &Err));
}

TEST(Verifier, DeclarationsAreTriviallyValid) {
  Function Decl("ext", Type::getVoid(), {Type::getInt32()}, true);
  EXPECT_TRUE(verifyFunction(Decl).empty());
}

} // namespace
} // namespace veriopt
