//===- PrinterTest.cpp - Printing and print/parse round-trips -------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(Printer, SimpleFunctionShape) {
  auto M = parseModule("define i32 @f(i32 %x) {\n  %y = add nsw i32 %x, 1\n"
                       "  ret i32 %y\n}\n");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  std::string Text = printFunction(*M.value()->getMainFunction());
  EXPECT_NE(Text.find("define i32 @f(i32 %x)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("%y = add nsw i32 %x, 1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ret i32 %y"), std::string::npos) << Text;
}

TEST(Printer, BooleanConstantsPrintAsKeywords) {
  auto M = parseModule(
      "define i32 @f(i32 %a, i32 %b) {\n"
      "  %r = select i1 true, i32 %a, i32 %b\n  ret i32 %r\n}\n");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  std::string Text = printFunction(*M.value()->getMainFunction());
  EXPECT_NE(Text.find("select i1 true"), std::string::npos) << Text;
}

TEST(Printer, NegativeConstants) {
  auto M = parseModule("define i32 @f() {\n  ret i32 -159\n}\n");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  std::string Text = printFunction(*M.value()->getMainFunction());
  EXPECT_NE(Text.find("ret i32 -159"), std::string::npos) << Text;
}

TEST(Printer, UnnamedValuesGetSequentialNumbers) {
  // Values named by the parser keep their textual names; this checks the
  // numbering path with programmatically built IR.
  auto F = std::make_unique<Function>(
      "g", Type::getInt32(), std::vector<Type *>{Type::getInt32()}, false);
  BasicBlock *BB = F->createBlock(""); // unnamed entry
  auto *Add = BB->push_back(std::make_unique<BinaryInst>(
      Opcode::Add, F->getArg(0), F->getConstant(32, 1)));
  BB->push_back(std::make_unique<RetInst>(Add));
  std::string Text = printFunction(*F);
  // arg gets %0, block gets 1, add gets %2.
  EXPECT_NE(Text.find("define i32 @g(i32 %0)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("%2 = add i32 %0, 1"), std::string::npos) << Text;
}

/// Round-trip property: print(parse(print(F))) == print(F).
class RoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  auto M1 = parseModule(GetParam());
  ASSERT_TRUE(M1.hasValue()) << M1.error().render();
  std::string P1 = printModule(*M1.value());
  auto M2 = parseModule(P1);
  ASSERT_TRUE(M2.hasValue()) << "reparse failed: " << M2.error().render()
                             << "\n"
                             << P1;
  std::string P2 = printModule(*M2.value());
  EXPECT_EQ(P1, P2);
  // Both parses must be well-formed.
  EXPECT_TRUE(isWellFormed(*M1.value()->getMainFunction()));
  EXPECT_TRUE(isWellFormed(*M2.value()->getMainFunction()));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        "define i32 @a(i32 %x) {\n  ret i32 %x\n}\n",
        "define i64 @b(i64 %x, i64 %y) {\n"
        "  %s = add nuw i64 %x, %y\n  %t = xor i64 %s, -1\n  ret i64 %t\n}\n",
        "define i1 @c(i32 %x) {\n  %r = icmp slt i32 %x, 0\n  ret i1 %r\n}\n",
        "define i32 @d(i1 %c, i32 %a, i32 %b) {\n"
        "  %r = select i1 %c, i32 %a, i32 %b\n  ret i32 %r\n}\n",
        "define i64 @e(i8 %x) {\n  %w = sext i8 %x to i64\n  ret i64 %w\n}\n",
        "define i32 @f(i32 %n) {\nentryblk:\n  br label %head\nhead:\n"
        "  %i = phi i32 [ 0, %entryblk ], [ %ni, %body ]\n"
        "  %c = icmp ult i32 %i, %n\n  br i1 %c, label %body, label %done\n"
        "body:\n  %ni = add i32 %i, 1\n  br label %head\ndone:\n"
        "  ret i32 %i\n}\n",
        "define i32 @g(ptr %p) {\n  %q = getelementptr i8, ptr %p, i64 4\n"
        "  %v = load i32, ptr %q\n  ret i32 %v\n}\n",
        "define void @h(i32 %v) {\n  %s = alloca i32\n"
        "  store i32 %v, ptr %s\n  ret void\n}\n",
        "declare void @ext(i32)\ndefine void @i() {\n"
        "  call void @ext(i32 3)\n  ret void\n}\n"));

} // namespace
} // namespace veriopt
