//===- ParserFuzzTest.cpp - Robustness of the parser front door ------------===//
//
// The parser is the system's exposure surface to LLM output: it must
// classify arbitrary byte soup as a clean SyntaxError, never crash, never
// accept ill-formed IR. These tests mutate valid programs the way the
// corruption operators (and real LLMs) do, plus pure random noise.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include "data/MiniC.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

/// Any parse result must be coherent: either an error, or a module whose
/// main function passes the IR verifier after the parser's own checks...
/// (the parser may legitimately accept programs the verifier rejects, e.g.
/// dominance violations; those are the SyntaxError/StructureError split).
void expectCoherent(const std::string &Text) {
  auto M = parseModule(Text);
  if (!M.hasValue()) {
    EXPECT_FALSE(M.error().Message.empty());
    return;
  }
  // If it parsed and verifies, it must round-trip.
  Function *F = M.value()->getMainFunction();
  if (F && isWellFormed(*F)) {
    std::string Printed = printFunction(*F);
    auto M2 = parseModule(Printed);
    EXPECT_TRUE(M2.hasValue())
        << "printer emitted unparseable text:\n"
        << Printed;
  }
}

TEST(ParserFuzz, RandomByteMutations) {
  RNG R(0xF022);
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    RNG Gen(Seed);
    auto MC = generateMiniC(Gen, "f");
    auto M = lowerToO0(*MC);
    std::string Text = printFunction(*M->getMainFunction());
    for (int Mut = 0; Mut < 20; ++Mut) {
      std::string Broken = Text;
      unsigned Kind = static_cast<unsigned>(R.below(4));
      if (Broken.empty())
        continue;
      size_t Pos = R.below(Broken.size());
      switch (Kind) {
      case 0: // flip a byte
        Broken[Pos] = static_cast<char>(32 + R.below(95));
        break;
      case 1: // delete a span
        Broken.erase(Pos, R.below(8) + 1);
        break;
      case 2: // duplicate a span
        Broken.insert(Pos, Broken.substr(Pos, R.below(12) + 1));
        break;
      default: // truncate
        Broken.resize(Pos);
        break;
      }
      expectCoherent(Broken);
    }
  }
}

TEST(ParserFuzz, PureNoise) {
  RNG R(99);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::string Noise;
    size_t Len = R.below(300);
    for (size_t I = 0; I < Len; ++I)
      Noise.push_back(static_cast<char>(R.below(256)));
    auto M = parseModule(Noise);
    // Virtually certain to fail; must not crash either way.
    if (!M.hasValue())
      EXPECT_FALSE(M.error().Message.empty());
  }
}

TEST(ParserFuzz, TokenLevelCorruptions) {
  // The exact corruption operators the policy model uses.
  const char *Base = R"(
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %c = icmp ult i32 %a, 10
  br i1 %c, label %t, label %e
t:
  ret i32 %a
e:
  %b = mul i32 %a, 3
  ret i32 %b
}
)";
  // Undefined name.
  {
    std::string T(Base);
    size_t P = T.find("%a, 10");
    T.replace(P, 2, "%zz");
    auto M = parseModule(T);
    EXPECT_FALSE(M.hasValue());
    EXPECT_NE(M.error().Message.find("undefined"), std::string::npos);
  }
  // Bad type.
  {
    std::string T(Base);
    size_t P = T.find("i32 %x,");
    T.replace(P, 3, "i33");
    EXPECT_FALSE(parseModule(T).hasValue());
  }
  // Truncation at every line boundary.
  {
    std::string T(Base);
    for (size_t Cut = T.find('\n'); Cut != std::string::npos;
         Cut = T.find('\n', Cut + 1)) {
      std::string Prefix = T.substr(0, Cut);
      expectCoherent(Prefix);
    }
  }
}

TEST(ParserFuzz, DeepNestingDoesNotOverflow) {
  // A long chain of instructions (stress for the fixup/worklist paths).
  std::string T = "define i64 @f(i64 %x0) {\n";
  for (int I = 0; I < 2000; ++I)
    T += "  %x" + std::to_string(I + 1) + " = add i64 %x" +
         std::to_string(I) + ", 1\n";
  T += "  ret i64 %x2000\n}\n";
  auto M = parseModule(T);
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  EXPECT_TRUE(isWellFormed(*M.value()->getMainFunction()));
}

} // namespace
} // namespace veriopt
