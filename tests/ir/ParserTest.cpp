//===- ParserTest.cpp - Textual IR parsing, incl. paper-style input -------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

TEST(Parser, MinimalFunction) {
  auto M = parseModule("define i32 @id(i32 %x) {\n  ret i32 %x\n}\n");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  Function *F = M.value()->getFunction("id");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->getNumParams(), 1u);
  EXPECT_TRUE(isWellFormed(*F));
}

TEST(Parser, BinaryOpsAndFlags) {
  auto M = parseModule(R"(
define i32 @f(i32 %a, i32 %b) {
  %c = add nsw i32 %a, %b
  %d = mul nuw nsw i32 %c, 3
  %e = sdiv i32 %d, %b
  %g = lshr exact i32 %e, 1
  ret i32 %g
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  Function *F = M.value()->getFunction("f");
  auto It = F->getEntryBlock()->begin();
  EXPECT_TRUE((*It)->hasNSW());
  EXPECT_FALSE((*It)->hasNUW());
  ++It;
  EXPECT_TRUE((*It)->hasNUW());
  EXPECT_TRUE((*It)->hasNSW());
  ++It;
  ++It;
  EXPECT_TRUE((*It)->isExact());
}

TEST(Parser, ControlFlowWithNumericLabels) {
  auto M = parseModule(R"(
define i32 @f(i32 %0) {
  %2 = icmp ult i32 %0, 10
  br i1 %2, label %3, label %4
3:
  br label %5
4:
  br label %5
5:
  %6 = phi i32 [ 1, %3 ], [ 2, %4 ]
  ret i32 %6
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  Function *F = M.value()->getMainFunction();
  EXPECT_EQ(F->size(), 4u);
  EXPECT_TRUE(isWellFormed(*F)) << printFunction(*F);
}

TEST(Parser, PaperFig8StructAndTypedPointers) {
  // Fig. 8 input (old typed-pointer syntax, struct GEP, bitcasts).
  auto M = parseModule(R"(
%struct.S = type { i32, i32 }
define dso_local i64 @get_d() #0 {
  %1 = alloca i64, align 8
  %tmpcast = bitcast i64* %1 to %struct.S*
  %2 = bitcast i64* %1 to i32*
  store i32 0, i32* %2, align 8
  %3 = getelementptr inbounds %struct.S, %struct.S* %tmpcast, i64 0, i32 1
  store i32 0, i32* %3, align 4
  %4 = load i64, i64* %1, align 8
  ret i64 %4
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  Function *F = M.value()->getFunction("get_d");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(isWellFormed(*F)) << printFunction(*F);
  // The struct GEP lowered to a byte offset of 4.
  bool FoundGEP = false;
  for (const auto &I : *F->getEntryBlock()) {
    if (auto *G = dyn_cast<GEPInst>(I.get())) {
      FoundGEP = true;
      auto *Off = dyn_cast<ConstantInt>(G->getOffset());
      ASSERT_NE(Off, nullptr);
      EXPECT_EQ(Off->getValue().zext(), 4u);
    }
  }
  EXPECT_TRUE(FoundGEP);
}

TEST(Parser, PaperFig9CallAndBranches) {
  auto M = parseModule(R"(
declare void @foo(i32)
define dso_local i64 @f28(i64 noundef %0, i64 noundef %1) #1 {
  %3 = alloca i64, align 8
  %4 = add i64 %0, %1
  store i64 %4, i64* %3, align 8
  %5 = icmp ugt i64 %4, %0
  br i1 %5, label %match, label %6
6:
  call void @foo(i32 noundef 0) #2
  br label %match
match:
  %7 = load i64, i64* %3, align 8
  ret i64 %7
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  Function *F = M.value()->getFunction("f28");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(isWellFormed(*F)) << printFunction(*F);
}

TEST(Parser, AutoDeclaresUnknownCallee) {
  auto M = parseModule(R"(
define void @f() {
  call void @ext(i32 1)
  ret void
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  Function *Ext = M.value()->getFunction("ext");
  ASSERT_NE(Ext, nullptr);
  EXPECT_TRUE(Ext->isDeclaration());
  EXPECT_EQ(Ext->getNumParams(), 1u);
}

TEST(Parser, ForwardValueReferenceInPhi) {
  auto M = parseModule(R"(
define i32 @loop(i32 %n) {
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %next = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)");
  // %entryblk is undefined: must fail cleanly.
  EXPECT_FALSE(M.hasValue());
}

TEST(Parser, LoopWithBackEdge) {
  auto M = parseModule(R"(
define i32 @loop(i32 %n) {
entryblk:
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %next, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %next = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  EXPECT_TRUE(isWellFormed(*M.value()->getMainFunction()));
}

TEST(Parser, RejectsMalformedInput) {
  // Each of these mirrors an LLM "syntax error" failure mode from Table I.
  const char *Cases[] = {
      // Undefined value.
      "define i32 @f() {\n  ret i32 %nope\n}\n",
      // Redefinition.
      "define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n  %y = add i32 %x, 2\n"
      "  ret i32 %y\n}\n",
      // Type mismatch on ret.
      "define i64 @f(i32 %x) {\n  ret i32 %x\n}\n",
      // Unknown instruction.
      "define i32 @f(i32 %x) {\n  %y = frobnicate i32 %x\n  ret i32 %y\n}\n",
      // Bad cast direction.
      "define i32 @f(i64 %x) {\n  %y = zext i64 %x to i32\n  ret i32 %y\n}\n",
      // Operand type mismatch.
      "define i32 @f(i32 %x, i64 %z) {\n  %y = add i32 %x, %z\n  ret i32 "
      "%y\n}\n",
      // Truncated input (LLM ran out of tokens).
      "define i32 @f(i32 %x) {\n  %y = add i32 %x,",
      // undef unsupported.
      "define i32 @f() {\n  ret i32 undef\n}\n",
      // Unsupported width.
      "define i7 @f() {\n  ret i7 1\n}\n",
      // Branch to undefined label.
      "define void @f() {\n  br label %nowhere\n}\n",
  };
  for (const char *Src : Cases) {
    auto M = parseModule(Src);
    EXPECT_FALSE(M.hasValue()) << "accepted bad input:\n" << Src;
    if (!M.hasValue())
      EXPECT_FALSE(M.error().Message.empty());
  }
}

TEST(Parser, SkipsAttributeNoise) {
  auto M = parseModule(R"(
source_filename = "t.c"
define dso_local i32 @f(i32 noundef %x) local_unnamed_addr #0 {
  %y = add i32 %x, 1
  ret i32 %y
}
attributes #0 = { nounwind "frame-pointer"="all" }
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
}

TEST(Parser, GEPWithDynamicIndexScales) {
  auto M = parseModule(R"(
define i32 @f(ptr %p, i64 %i) {
  %q = getelementptr i32, ptr %p, i64 %i
  %v = load i32, ptr %q
  ret i32 %v
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  // Expect a mul-by-4 to have been materialized.
  std::string Text = printFunction(*M.value()->getMainFunction());
  EXPECT_NE(Text.find("mul i64"), std::string::npos) << Text;
  EXPECT_NE(Text.find("getelementptr i8"), std::string::npos) << Text;
}

TEST(Parser, VoidCallsAndReturns) {
  auto M = parseModule(R"(
declare i32 @g(i64)
define void @f(i64 %x) {
  %r = call i32 @g(i64 %x)
  call i32 @g(i64 0)
  ret void
}
)");
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  // A call result may be ignored, but a void call cannot be named.
  auto Bad = parseModule(R"(
declare void @g()
define void @f() {
  %r = call void @g()
  ret void
}
)");
  EXPECT_FALSE(Bad.hasValue());
}

} // namespace
} // namespace veriopt
