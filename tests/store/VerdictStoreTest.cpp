//===- VerdictStoreTest.cpp - Durable verdict store unit tests -------------===//
//
// Covers the PERSISTENCE.md contracts: CRC-framed record round-trips,
// quarantine-and-continue loading (every-prefix truncation, flipped CRCs,
// garbage frames, headerless files), last-write-wins duplicates, the
// deterministic-verdict eligibility filter, compaction, the
// read-through/write-behind integration with VerifyCache, and the headline
// invariant — warm-store, cold-store, and no-store evaluations are
// bit-identical at any shard/thread configuration.
//
//===----------------------------------------------------------------------===//

#include "store/VerdictStore.h"

#include "data/Dataset.h"
#include "ir/Parser.h"
#include "model/Policy.h"
#include "pipeline/Evaluation.h"
#include "support/FaultInjector.h"
#include "support/IoEnv.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <unistd.h>

namespace veriopt {
namespace {

//===--- Scratch-file plumbing ----------------------------------------------===//

std::string scratchPath(const std::string &Name) {
  const char *T = std::getenv("TMPDIR");
  std::string Dir = T && *T ? T : "/tmp";
  return Dir + "/veriopt_store_test_" + std::to_string(::getpid()) + "_" +
         Name;
}

struct ScratchFile {
  std::string Path;
  explicit ScratchFile(const std::string &Name) : Path(scratchPath(Name)) {
    std::remove(Path.c_str());
    std::remove((Path + ".lock").c_str());
  }
  ~ScratchFile() {
    std::remove(Path.c_str());
    std::remove((Path + ".lock").c_str());
  }
  void write(const std::string &Text) const {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS << Text;
  }
  std::string read() const {
    std::ifstream IS(Path, std::ios::binary);
    std::ostringstream SS;
    SS << IS.rdbuf();
    return SS.str();
  }
};

//===--- Verdict fixtures ---------------------------------------------------===//

VerifyResult equivalentResult() {
  VerifyResult R;
  R.Status = VerifyStatus::Equivalent;
  R.Kind = DiagKind::None;
  R.SolverConflicts = 0x0123456789ABCDEFull; // must survive as a full u64
  R.FuelSpent = 0xFFFFFFFFFFFFFFFFull;
  R.RetryTier = 2;
  return R;
}

VerifyResult falsifiedResult() {
  VerifyResult R;
  R.Status = VerifyStatus::NotEquivalent;
  R.Kind = DiagKind::ValueMismatch;
  R.Diagnostic = "output mismatch at %y\nwith \"quotes\" and \x1f bytes";
  R.FoundByFalsification = true;
  CexBinding B;
  B.Name = "%x";
  B.Value = APInt64(32, 0xDEADBEEFull);
  R.Counterexample.push_back(B);
  CexBinding B2;
  B2.Name = "%w";
  B2.Value = APInt64(64, 0x8000000000000001ull);
  R.Counterexample.push_back(B2);
  return R;
}

void expectSameResult(const VerifyResult &A, const VerifyResult &B) {
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.Diagnostic, B.Diagnostic);
  EXPECT_EQ(A.BoundedOnly, B.BoundedOnly);
  EXPECT_EQ(A.FoundByFalsification, B.FoundByFalsification);
  EXPECT_EQ(A.SolverConflicts, B.SolverConflicts);
  EXPECT_EQ(A.FuelSpent, B.FuelSpent);
  EXPECT_EQ(A.RetryTier, B.RetryTier);
  ASSERT_EQ(A.Counterexample.size(), B.Counterexample.size());
  for (size_t I = 0; I < A.Counterexample.size(); ++I) {
    EXPECT_EQ(A.Counterexample[I].Name, B.Counterexample[I].Name);
    EXPECT_EQ(A.Counterexample[I].Value.width(),
              B.Counterexample[I].Value.width());
    EXPECT_EQ(A.Counterexample[I].Value.zext(),
              B.Counterexample[I].Value.zext());
  }
}

/// A journal built by hand from encodeRecord, the same bytes a store would
/// write.
std::string journalOf(
    const std::vector<std::pair<std::string, VerifyResult>> &Records) {
  std::string J = std::string(VerdictStore::headerLine()) + "\n";
  for (const auto &[K, R] : Records)
    J += VerdictStore::encodeRecord(K, R);
  return J;
}

//===--- Record framing -----------------------------------------------------===//

TEST(VerdictStore, EncodeDecodeRoundTrip) {
  for (const VerifyResult &R : {equivalentResult(), falsifiedResult()}) {
    std::string Key = "budget|knobs\x1fsource\ntext\x1f"
                      "candidate \"with\" specials\n";
    std::string Line = VerdictStore::encodeRecord(Key, R);
    ASSERT_FALSE(Line.empty());
    EXPECT_EQ(Line.back(), '\n');
    // One physical line despite the embedded newlines in key/diagnostic.
    EXPECT_EQ(Line.find('\n'), Line.size() - 1);

    std::string OutKey;
    VerifyResult Out;
    ASSERT_TRUE(
        VerdictStore::decodeRecord(Line.substr(0, Line.size() - 1), OutKey,
                                   Out));
    EXPECT_EQ(OutKey, Key);
    expectSameResult(R, Out);
  }
}

TEST(VerdictStore, DecodeRejectsTamperedFrames) {
  std::string Line = VerdictStore::encodeRecord("k", equivalentResult());
  Line.pop_back(); // newline
  std::string K;
  VerifyResult R;
  ASSERT_TRUE(VerdictStore::decodeRecord(Line, K, R));

  // Flip one payload byte: CRC must catch it.
  std::string Flipped = Line;
  Flipped[Flipped.size() / 2] ^= 0x20;
  EXPECT_FALSE(VerdictStore::decodeRecord(Flipped, K, R));

  // Flip one CRC digit.
  std::string BadCrc = Line;
  BadCrc[2] = BadCrc[2] == '0' ? '1' : '0';
  EXPECT_FALSE(VerdictStore::decodeRecord(BadCrc, K, R));

  // Garbage frames.
  EXPECT_FALSE(VerdictStore::decodeRecord("", K, R));
  EXPECT_FALSE(VerdictStore::decodeRecord("R", K, R));
  EXPECT_FALSE(VerdictStore::decodeRecord("X" + Line.substr(1), K, R));
  EXPECT_FALSE(VerdictStore::decodeRecord("R zzzzzzzz {}", K, R));
  EXPECT_FALSE(VerdictStore::decodeRecord("not a record at all", K, R));
}

TEST(VerdictStore, DecodeRejectsCexBitsAboveWidth) {
  // Hand-build a payload whose cex value has bits above its width; the
  // frame is CRC-valid so only the field check can reject it.
  std::string P =
      "{\"key\":\"k\",\"status\":\"not-equivalent\",\"diag\":"
      "\"value-mismatch\",\"text\":\"\",\"cex\":[{\"n\":\"%x\",\"w\":8,"
      "\"v\":\"00000000000001ff\"}],\"bounded\":false,\"falsified\":true,"
      "\"conflicts\":\"0000000000000000\",\"fuel\":\"0000000000000000\","
      "\"tier\":0}";
  char Crc[16];
  std::snprintf(Crc, sizeof(Crc), "%08x", VerdictStore::crc32(P));
  std::string K;
  VerifyResult R;
  EXPECT_FALSE(
      VerdictStore::decodeRecord(std::string("R ") + Crc + " " + P, K, R));
}

//===--- Quarantine-and-continue loading ------------------------------------===//

TEST(VerdictStore, EveryPrefixTruncationTolerated) {
  // A crash can cut the journal at any byte. Every prefix must open, keep
  // exactly the records whose full line survived, and quarantine at most
  // the one torn tail line — never fail.
  std::vector<std::pair<std::string, VerifyResult>> Recs = {
      {"key-a", equivalentResult()},
      {"key-b", falsifiedResult()},
      {"key-c", equivalentResult()},
  };
  std::string Full = journalOf(Recs);

  // Differential expectation: split the prefix into lines and apply the
  // documented rule per line (header, then decodeRecord-or-quarantine).
  // A cut that lands exactly before a newline leaves a frame-complete line,
  // which still loads — only a genuinely torn line quarantines.
  auto expect = [](const std::string &Text, size_t &Live, size_t &Quar) {
    std::set<std::string> Keys;
    Quar = 0;
    size_t Pos = 0;
    bool First = true;
    while (Pos < Text.size()) {
      size_t Nl = Text.find('\n', Pos);
      std::string Line = Text.substr(
          Pos, Nl == std::string::npos ? std::string::npos : Nl - Pos);
      Pos = Nl == std::string::npos ? Text.size() : Nl + 1;
      if (First) {
        First = false;
        if (Line == VerdictStore::headerLine())
          continue;
      }
      std::string K;
      VerifyResult R;
      if (VerdictStore::decodeRecord(Line, K, R))
        Keys.insert(K);
      else
        ++Quar;
    }
    Live = Keys.size();
  };

  ScratchFile F("prefix");
  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    F.write(Full.substr(0, Cut));
    std::string Err;
    auto St = VerdictStore::open(F.Path, &Err);
    ASSERT_TRUE(St) << "prefix " << Cut << ": " << Err;

    size_t ExpectLive = 0, ExpectQuar = 0;
    expect(Full.substr(0, Cut), ExpectLive, ExpectQuar);
    EXPECT_EQ(St->size(), ExpectLive) << "prefix " << Cut;
    EXPECT_EQ(St->stats().Quarantined, ExpectQuar) << "prefix " << Cut;
    // A torn tail quarantines at most one line, and only ever the last.
    EXPECT_LE(ExpectQuar, 1u) << "prefix " << Cut;
  }
}

TEST(VerdictStore, GarbageAndFlippedCrcQuarantine) {
  std::string J = journalOf({{"key-a", equivalentResult()}});
  // A CRC-flipped record, a garbage line, then a healthy record: loading
  // must skip the bad lines and keep both good ones.
  std::string Bad = VerdictStore::encodeRecord("key-x", falsifiedResult());
  Bad[2] = Bad[2] == '0' ? '1' : '0'; // corrupt the CRC field
  J += Bad;
  J += "totally unstructured garbage line\n";
  J += VerdictStore::encodeRecord("key-b", falsifiedResult());

  ScratchFile F("garbage");
  F.write(J);
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  EXPECT_EQ(St->size(), 2u);
  EXPECT_EQ(St->stats().Quarantined, 2u);
  EXPECT_EQ(St->stats().LoadedRecords, 2u);

  VerifyResult R;
  EXPECT_TRUE(St->lookup("key-a", R));
  EXPECT_TRUE(St->lookup("key-b", R));
  expectSameResult(falsifiedResult(), R);
  EXPECT_FALSE(St->lookup("key-x", R));
}

TEST(VerdictStore, BadHeaderQuarantinesEverything) {
  // A file that never was a verdict journal must load as empty (all lines
  // quarantined), not crash and not serve verdicts.
  ScratchFile F("badheader");
  F.write("some other file format\n" +
          VerdictStore::encodeRecord("key-a", equivalentResult()));
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  // The record line itself is frame-valid, so it still loads; only the
  // header line quarantines. The next compaction heals the file.
  EXPECT_EQ(St->stats().Quarantined, 1u);
  EXPECT_EQ(St->size(), 1u);
}

TEST(VerdictStore, DuplicateKeysLastWriteWins) {
  VerifyResult First = equivalentResult();
  VerifyResult Second = falsifiedResult();
  std::string J = journalOf({{"dup", First}, {"dup", Second}});
  ScratchFile F("dup");
  F.write(J);
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  EXPECT_EQ(St->size(), 1u);
  EXPECT_EQ(St->stats().LoadedRecords, 2u);
  VerifyResult R;
  ASSERT_TRUE(St->lookup("dup", R));
  expectSameResult(Second, R);
}

//===--- Eligibility (the trust model) ---------------------------------------===//

TEST(VerdictStore, OnlyDeterministicVerdictsEligible) {
  VerifyResult R;
  R.Status = VerifyStatus::Equivalent;
  EXPECT_TRUE(VerdictStore::eligible(R));
  R.Status = VerifyStatus::NotEquivalent;
  EXPECT_TRUE(VerdictStore::eligible(R));
  R.Status = VerifyStatus::SyntaxError;
  EXPECT_TRUE(VerdictStore::eligible(R));

  R.Status = VerifyStatus::Inconclusive;
  for (DiagKind K : {DiagKind::SolverTimeout, DiagKind::ResourceExhausted,
                     DiagKind::LoopBound, DiagKind::Unsupported}) {
    R.Kind = K;
    EXPECT_TRUE(VerdictStore::eligible(R)) << diagKindName(K);
  }
  for (DiagKind K : {DiagKind::None, DiagKind::ValueMismatch,
                     DiagKind::ParseError}) {
    R.Kind = K;
    EXPECT_FALSE(VerdictStore::eligible(R)) << diagKindName(K);
  }
}

TEST(VerdictStore, IneligibleVerdictsNeverPersisted) {
  ScratchFile F("inelig");
  {
    auto St = VerdictStore::open(F.Path);
    ASSERT_TRUE(St);
    VerifyResult Bad;
    Bad.Status = VerifyStatus::Inconclusive;
    Bad.Kind = DiagKind::None;
    St->put("anomaly", Bad);
    St->put("good", equivalentResult());
    EXPECT_EQ(St->stats().Writes, 1u);
    ASSERT_TRUE(St->flush());
  }
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  EXPECT_EQ(St->size(), 1u);
  VerifyResult R;
  EXPECT_FALSE(St->lookup("anomaly", R));
  EXPECT_TRUE(St->lookup("good", R));
}

//===--- Durability / write-behind -------------------------------------------===//

TEST(VerdictStore, PersistsAcrossReopen) {
  ScratchFile F("reopen");
  {
    auto St = VerdictStore::open(F.Path);
    ASSERT_TRUE(St);
    St->put("key-a", equivalentResult());
    St->put("key-b", falsifiedResult());
    // Destructor flushes.
  }
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  EXPECT_EQ(St->stats().LiveAtOpen, 2u);
  EXPECT_EQ(St->stats().Quarantined, 0u);
  VerifyResult R;
  ASSERT_TRUE(St->lookup("key-b", R));
  expectSameResult(falsifiedResult(), R);
}

TEST(VerdictStore, WriteBehindFlushesAtBatchSize) {
  ScratchFile F("batch");
  VerdictStore::Options O;
  O.FlushEveryN = 2;
  auto St = VerdictStore::open(F.Path, nullptr, O);
  ASSERT_TRUE(St);
  St->put("key-a", equivalentResult());
  EXPECT_EQ(F.read(), ""); // buffered, nothing on disk yet
  St->put("key-b", equivalentResult());
  std::string OnDisk = F.read(); // batch threshold crossed -> auto-flushed
  EXPECT_NE(OnDisk.find(VerdictStore::headerLine()), std::string::npos);
  EXPECT_EQ(OnDisk.find("key-a") != std::string::npos, true);
  EXPECT_EQ(OnDisk.find("key-b") != std::string::npos, true);
}

TEST(VerdictStore, RePutOfResidentKeyIsNoOp) {
  ScratchFile F("reput");
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  St->put("key", equivalentResult());
  St->put("key", equivalentResult());
  EXPECT_EQ(St->stats().Writes, 1u);
  ASSERT_TRUE(St->flush());
  // The journal carries exactly one record.
  std::string Text = F.read();
  size_t Count = 0;
  for (size_t P = Text.find("\nR "); P != std::string::npos;
       P = Text.find("\nR ", P + 1))
    ++Count;
  EXPECT_EQ(Count, 1u);
}

//===--- Compaction ----------------------------------------------------------===//

TEST(VerdictStore, CompactionReclaimsDeadWeight) {
  // 70 duplicate records of one key + garbage: over the default min-lines
  // and dead-ratio thresholds, so open() compacts automatically.
  std::string J = std::string(VerdictStore::headerLine()) + "\n";
  for (int I = 0; I < 70; ++I)
    J += VerdictStore::encodeRecord("dup", equivalentResult());
  J += "garbage tail line\n";
  ScratchFile F("compact");
  F.write(J);

  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  EXPECT_EQ(St->size(), 1u);
  EXPECT_EQ(St->stats().Compactions, 1u);

  // The rewritten journal is minimal and pristine.
  std::string Text = F.read();
  EXPECT_EQ(Text.find("garbage"), std::string::npos);
  auto St2 = VerdictStore::open(F.Path);
  ASSERT_TRUE(St2);
  EXPECT_EQ(St2->stats().LoadedRecords, 1u);
  EXPECT_EQ(St2->stats().Quarantined, 0u);
  EXPECT_EQ(St2->stats().Compactions, 0u);
}

TEST(VerdictStore, ExplicitCompactSortsAndPreservesRecords) {
  ScratchFile F("sortcompact");
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  St->put("zebra", equivalentResult());
  St->put("alpha", falsifiedResult());
  St->put("mid", equivalentResult());
  ASSERT_TRUE(St->compact());
  std::string Text = F.read();
  size_t A = Text.find("alpha"), M = Text.find("mid"), Z = Text.find("zebra");
  ASSERT_NE(A, std::string::npos);
  ASSERT_NE(M, std::string::npos);
  ASSERT_NE(Z, std::string::npos);
  EXPECT_LT(A, M);
  EXPECT_LT(M, Z);

  auto St2 = VerdictStore::open(F.Path);
  ASSERT_TRUE(St2);
  EXPECT_EQ(St2->stats().LiveAtOpen, 3u);
  VerifyResult R;
  ASSERT_TRUE(St2->lookup("alpha", R));
  expectSameResult(falsifiedResult(), R);
}

//===--- VerifyCache integration ---------------------------------------------===//

const char *SrcIR = "define i32 @f(i32 %x) {\n  %y = mul i32 %x, 2\n"
                    "  ret i32 %y\n}\n";
const char *GoodTgt = "define i32 @f(i32 %x) {\n  %y = shl i32 %x, 1\n"
                      "  ret i32 %y\n}\n";
const char *BadTgt = "define i32 @f(i32 %x) {\n  %y = mul i32 %x, 3\n"
                     "  ret i32 %y\n}\n";

struct IrFixture {
  std::unique_ptr<Module> M;
  Function *Src;
  IrFixture() {
    auto P = parseModule(SrcIR);
    EXPECT_TRUE(P.hasValue());
    M = P.takeValue();
    Src = M->getMainFunction();
  }
};

TEST(VerdictStore, CacheWritesBehindAndReadsThrough) {
  IrFixture Fx;
  VerifyOptions Opts;
  ScratchFile F("cache");

  // Run 1: cold store — the cache computes and writes behind.
  VerifyResult Cold;
  {
    auto St = VerdictStore::open(F.Path);
    ASSERT_TRUE(St);
    VerifyCache Cache;
    Cache.setBackingStore(St.get());
    Cold = Cache.verify(SrcIR, *Fx.Src, GoodTgt, Opts);
    Cache.verify(SrcIR, *Fx.Src, BadTgt, Opts);
    EXPECT_EQ(St->stats().Writes, 2u);
    EXPECT_EQ(St->stats().Hits, 0u);
  }

  // Run 2: fresh cache, warm store — the memo miss reads through and the
  // verdict is bit-identical to the computed one.
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  EXPECT_EQ(St->stats().LiveAtOpen, 2u);
  VerifyCache Cache;
  Cache.setBackingStore(St.get());
  VerifyResult Warm = Cache.verify(SrcIR, *Fx.Src, GoodTgt, Opts);
  expectSameResult(Cold, Warm);
  EXPECT_EQ(St->stats().Hits, 1u);
  EXPECT_EQ(St->stats().Writes, 0u); // replayed, nothing new to journal
  // And the memo now holds it: a second verify is a pure memo hit.
  Cache.verify(SrcIR, *Fx.Src, GoodTgt, Opts);
  EXPECT_EQ(St->stats().Hits, 1u);
}

TEST(VerdictStore, PeekReadsThroughForBatchPrewarm) {
  IrFixture Fx;
  VerifyOptions Opts;
  ScratchFile F("peek");
  {
    auto St = VerdictStore::open(F.Path);
    ASSERT_TRUE(St);
    VerifyCache Cache;
    Cache.setBackingStore(St.get());
    Cache.verify(SrcIR, *Fx.Src, GoodTgt, Opts);
  }
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  VerifyCache Cache;
  Cache.setBackingStore(St.get());
  std::string Key = VerifyCache::makeKey(SrcIR, GoodTgt, Opts);
  VerifyResult R;
  EXPECT_TRUE(Cache.peek(Key, R)); // served by the store, memoized
  EXPECT_EQ(St->stats().Hits, 1u);
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent);
}

TEST(VerdictStore, FaultInjectorBypassesStoreEntirely) {
  IrFixture Fx;
  VerifyOptions Opts;
  ScratchFile F("faults");
  {
    // Warm the store honestly first.
    auto St = VerdictStore::open(F.Path);
    ASSERT_TRUE(St);
    VerifyCache Cache;
    Cache.setBackingStore(St.get());
    Cache.verify(SrcIR, *Fx.Src, GoodTgt, Opts);
  }
  auto St = VerdictStore::open(F.Path);
  ASSERT_TRUE(St);
  FaultInjector FI(42); // attached but no sites armed — still untrusted
  VerifyCache Cache;
  Cache.setBackingStore(St.get());
  Cache.setFaultInjector(&FI);
  Cache.verify(SrcIR, *Fx.Src, GoodTgt, Opts);
  Cache.verify(SrcIR, *Fx.Src, BadTgt, Opts);
  EXPECT_EQ(St->stats().Hits, 0u);   // no reads while chaos is possible
  EXPECT_EQ(St->stats().Writes, 0u); // and nothing journaled
}

//===--- End-to-end bit-identity ---------------------------------------------===//

TEST(VerdictStore, WarmColdAndNoStoreEvaluationsBitIdentical) {
  DatasetOptions DO;
  DO.TrainCount = 0;
  DO.ValidCount = 8;
  DO.Seed = 2026;
  Dataset DS = buildDataset(DO);
  RewritePolicyModel Model(presetQwen3B());

  EvalResult Oracle =
      evaluateModel(Model, DS.Valid, PromptMode::Generic);

  ScratchFile F("eval");
  // Cold store pass (populates), then warm passes across shard/thread
  // configurations — every one must be bit-identical to the no-store
  // oracle, and the warm passes must actually replay verdicts.
  const unsigned Configs[][2] = {{1, 1}, {3, 1}, {4, 2}};
  bool First = true;
  for (const auto &Cfg : Configs) {
    auto St = VerdictStore::open(F.Path);
    ASSERT_TRUE(St);
    ThreadPool Pool(Cfg[1]);
    EvalOptions EO;
    EO.Shards = Cfg[0];
    EO.Pool = Cfg[1] > 1 ? &Pool : nullptr;
    EO.VerdictTier = St.get();
    EvalResult R = evaluateModelSharded(Model, DS.Valid, PromptMode::Generic,
                                        VerifyOptions(), EO);
    EXPECT_EQ(countResultDivergence(Oracle, R), 0u)
        << "shards=" << Cfg[0] << " threads=" << Cfg[1];
    if (First) {
      EXPECT_GT(St->stats().Writes, 0u);
      First = false;
    } else {
      EXPECT_GT(St->stats().Hits, 0u)
          << "warm store did not replay verdicts";
    }
    ASSERT_TRUE(St->flush());
  }
}

//===--- Graceful degradation under I/O faults --------------------------------===//

TEST(VerdictStore, DegradesToInMemoryAfterConsecutiveFlushFailures) {
  ScratchFile F("degrade");
  VerdictStore::Options O;
  O.FlushEveryN = 1; // a flush attempt per put
  O.DegradeAfterFlushFailures = 3;
  std::string Err;
  auto St = VerdictStore::open(F.Path, &Err, O);
  ASSERT_NE(St, nullptr) << Err;

  FaultInjector FI(41);
  FI.enable(FaultSite::IoWrite, 1.0);
  FaultyIoEnv Env(FI);
  {
    ScopedIoEnv Install(&Env);
    for (int I = 0; I < 2; ++I)
      St->put("deg-" + std::to_string(I), equivalentResult());
    EXPECT_FALSE(St->degraded()); // two failures: still trying
    St->put("deg-2", equivalentResult());
    EXPECT_TRUE(St->degraded()); // third consecutive failure trips it
  }

  VerdictStore::Stats S = St->stats();
  EXPECT_EQ(S.FlushFailures, 3u);
  EXPECT_NE(S.DegradedReason.find("3 consecutive flush failures"),
            std::string::npos)
      << S.DegradedReason;
  EXPECT_EQ(S.Writes, 3u);

  // Degraded is sticky and in-memory-only, not broken: puts and lookups
  // keep working, writes keep counting (the metric plane must move
  // identically to a fault-free run), and flush is a successful no-op even
  // now that the disk is healthy again.
  St->put("deg-3", equivalentResult());
  EXPECT_EQ(St->stats().Writes, 4u);
  VerifyResult Out;
  EXPECT_TRUE(St->lookup("deg-0", Out));
  EXPECT_TRUE(St->lookup("deg-3", Out));
  EXPECT_TRUE(St->degraded());
  EXPECT_TRUE(St->flush(&Err)) << Err;
  EXPECT_TRUE(St->compact(&Err)) << Err;

  // Durability really was lost — by design, and only durability: a reopen
  // finds an empty journal, not a corrupt one.
  St.reset();
  auto Re = VerdictStore::open(F.Path, &Err);
  ASSERT_NE(Re, nullptr) << Err;
  EXPECT_EQ(Re->size(), 0u);
  EXPECT_FALSE(Re->degraded());
}

TEST(VerdictStore, IntermittentFlushFailuresDoNotTrip) {
  // The trip condition is *consecutive* failures: a flaky disk that
  // recovers resets the count and the store stays durable.
  ScratchFile F("flaky");
  VerdictStore::Options O;
  O.FlushEveryN = 1;
  O.DegradeAfterFlushFailures = 3;
  auto St = VerdictStore::open(F.Path, nullptr, O);
  ASSERT_NE(St, nullptr);

  FaultInjector FI(43);
  FI.enable(FaultSite::IoWrite, 1.0);
  FaultyIoEnv Env(FI);
  for (int Round = 0; Round < 3; ++Round) {
    {
      ScopedIoEnv Install(&Env);
      St->put("flaky-bad-" + std::to_string(Round), equivalentResult());
    }
    // Disk recovers before the third consecutive failure each time.
    St->put("flaky-good-" + std::to_string(Round), equivalentResult());
  }
  EXPECT_FALSE(St->degraded());
  EXPECT_EQ(St->stats().FlushFailures, 3u); // counted, but never 3 in a row
  ASSERT_TRUE(St->flush());

  // The successfully flushed records are durable.
  auto Re = VerdictStore::open(F.Path);
  ASSERT_NE(Re, nullptr);
  VerifyResult Out;
  EXPECT_TRUE(Re->lookup("flaky-good-0", Out));
}

} // namespace
} // namespace veriopt
