//===- TrainerTest.cpp - GRPO and SFT trainer tests ------------------------===//

#include "rl/Trainer.h"

#include "verify/BatchVerifier.h"

#include <gtest/gtest.h>

#include <cmath>

namespace veriopt {
namespace {

const Dataset &tinyDataset() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 16;
    O.ValidCount = 0;
    O.Seed = 21;
    return buildDataset(O);
  }();
  return DS;
}

TEST(Trainer, ClipGradientScalesDown) {
  std::vector<double> G = {3.0, 4.0}; // norm 5
  double Norm = clipGradient(G, 1.0);
  EXPECT_DOUBLE_EQ(Norm, 5.0);
  EXPECT_NEAR(std::sqrt(G[0] * G[0] + G[1] * G[1]), 1.0, 1e-12);
  std::vector<double> Small = {0.1, 0.1};
  clipGradient(Small, 1.0);
  EXPECT_DOUBLE_EQ(Small[0], 0.1); // untouched below the cap
}

TEST(Trainer, GRPOImprovesRewardAndKillsCorruption) {
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());
  VerifyOptions V;
  V.FalsifyTrials = 8;
  V.SolverConflictBudget = 20000;
  GRPOOptions G;
  G.GroupSize = 6;
  G.PromptsPerStep = 3;
  G.Seed = 7;
  RewardFn Reward = [V](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, V);
    RolloutScore Sc;
    Sc.Reward = B.Total;
    Sc.Equivalent = B.Equivalent;
    Sc.IsCopy = B.IsCopy;
    return Sc;
  };
  GRPOTrainer Trainer(Model, Reward, G);
  auto Logs = Trainer.train(DS.Train, 40);
  ASSERT_EQ(Logs.size(), 40u);
  // Early vs late mean rewards (coarse but robust).
  double Early = 0, Late = 0, EarlyEq = 0, LateEq = 0;
  for (int I = 0; I < 8; ++I) {
    Early += Logs[I].MeanReward;
    Late += Logs[Logs.size() - 1 - I].MeanReward;
    EarlyEq += Logs[I].EquivalentRate;
    LateEq += Logs[Logs.size() - 1 - I].EquivalentRate;
  }
  EXPECT_GT(Late, Early) << "GRPO failed to improve the answer reward";
  // Equivalence must at least hold its ground (copies start equivalent, so
  // it does not have to rise while the policy learns to optimize instead).
  EXPECT_GT(LateEq, EarlyEq - 1.0);
  // EMA is a smoothed version of the raw series.
  EXPECT_NE(Logs.back().EMAReward, 0.0);
}

TEST(Trainer, GroupRelativeAdvantageNeedsVariation) {
  // A constant reward yields zero advantage and must not move parameters.
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());
  auto Before = Model.params();
  GRPOOptions G;
  G.GroupSize = 4;
  G.PromptsPerStep = 2;
  RewardFn Flat = [](const Sample &, Completion &) {
    RolloutScore Sc;
    Sc.Reward = 1.0;
    return Sc;
  };
  GRPOTrainer Trainer(Model, Flat, G);
  Trainer.train(DS.Train, 5);
  EXPECT_EQ(Model.params(), Before);
}

TEST(Trainer, ParallelScoringIsBitIdenticalToSerial) {
  // The determinism guarantee of the restructured step(): generation is
  // sequential with per-rollout RNGs, scoring writes only per-rollout
  // slots, so every reward/equivalence value in the log — and the trained
  // parameters — must be bit-identical at any thread count, with or
  // without the verification memo.
  const Dataset &DS = tinyDataset();
  VerifyOptions V;
  V.FalsifyTrials = 8;
  V.SolverConflictBudget = 20000;

  auto runConfig = [&](unsigned Threads, bool UseCache,
                       std::vector<double> &ParamsOut) {
    RewritePolicyModel Model(presetQwen3B());
    auto Cache = UseCache ? std::make_unique<VerifyCache>(512) : nullptr;
    VerifyCache *C = Cache.get();
    RewardFn Reward = [V, C](const Sample &S, Completion &Co) {
      RewardBreakdown B = answerReward(S, Co, V, C);
      RolloutScore Sc;
      Sc.Reward = B.Total;
      Sc.Equivalent = B.Equivalent;
      Sc.IsCopy = B.IsCopy;
      Sc.AnswerVerify = B.Verify;
      return Sc;
    };
    GRPOOptions G;
    G.GroupSize = 6;
    G.PromptsPerStep = 3;
    G.Seed = 7;
    G.Threads = Threads;
    G.Cache = C;
    GRPOTrainer Trainer(Model, Reward, G);
    auto Logs = Trainer.train(DS.Train, 12);
    ParamsOut = Model.params();
    return Logs;
  };

  std::vector<double> SerialParams, ParallelParams, CachedParams;
  auto Serial = runConfig(1, /*UseCache=*/false, SerialParams);
  auto Parallel = runConfig(4, /*UseCache=*/true, ParallelParams);
  auto CacheOnly = runConfig(1, /*UseCache=*/true, CachedParams);

  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].Step, Parallel[I].Step);
    EXPECT_EQ(Serial[I].MeanReward, Parallel[I].MeanReward) << "step " << I;
    EXPECT_EQ(Serial[I].EMAReward, Parallel[I].EMAReward) << "step " << I;
    EXPECT_EQ(Serial[I].EquivalentRate, Parallel[I].EquivalentRate);
    EXPECT_EQ(Serial[I].CopyRate, Parallel[I].CopyRate);
    EXPECT_EQ(Serial[I].GradNorm, Parallel[I].GradNorm) << "step " << I;
    EXPECT_EQ(Serial[I].MeanReward, CacheOnly[I].MeanReward) << "step " << I;
    EXPECT_EQ(Serial[I].GradNorm, CacheOnly[I].GradNorm) << "step " << I;
  }
  EXPECT_EQ(SerialParams, ParallelParams);
  EXPECT_EQ(SerialParams, CachedParams);
  // The memo must actually have been exercised on GRPO's repetitive groups.
  double HitRate = 0;
  for (const TrainLogEntry &E : Parallel)
    HitRate += E.CacheHitRate;
  EXPECT_GT(HitRate, 0.0) << "verify cache never hit during training";
}

TEST(Trainer, BatchVerificationIsBitIdenticalToSequential) {
  // The BatchVerify knob only changes *where* verification work happens
  // (pre-scoring, through one shared solver context) — every logged value
  // and the trained parameters must match the knob-off run exactly, at any
  // thread count.
  const Dataset &DS = tinyDataset();
  RobustVerifyOptions RVO;
  RVO.Base.FalsifyTrials = 8;
  RVO.Base.SolverConflictBudget = 20000;
  RVO.MaxTiers = 2;

  auto runConfig = [&](bool UseBatch, unsigned Threads,
                       std::vector<double> &ParamsOut) {
    RewritePolicyModel Model(presetQwen3B());
    auto Cache = std::make_unique<VerifyCache>(512);
    auto RV = std::make_unique<RobustVerifier>(RVO, Cache.get());
    const RobustVerifier *R = RV.get();
    RewardFn Reward = [R](const Sample &S, Completion &Co) {
      RewardBreakdown B = answerReward(S, Co, *R);
      RolloutScore Sc;
      Sc.Reward = B.Total;
      Sc.Equivalent = B.Equivalent;
      Sc.IsCopy = B.IsCopy;
      Sc.AnswerVerify = B.Verify;
      return Sc;
    };
    ThreadPool Pool(Threads);
    BatchVerifier::Options BO;
    BO.Robust = RVO;
    BO.Pool = &Pool;
    BO.Threads = Threads;
    BatchVerifier BV(BO, Cache.get());
    GRPOOptions G;
    G.GroupSize = 6;
    G.PromptsPerStep = 3;
    G.Seed = 7;
    G.Threads = Threads;
    G.Pool = &Pool;
    G.Cache = Cache.get();
    G.Batch = UseBatch ? &BV : nullptr;
    GRPOTrainer Trainer(Model, Reward, G);
    auto Logs = Trainer.train(DS.Train, 10);
    ParamsOut = Model.params();
    return Logs;
  };

  std::vector<double> OffParams, OnParams, OnThreadedParams;
  auto Off = runConfig(/*UseBatch=*/false, 1, OffParams);
  auto On = runConfig(/*UseBatch=*/true, 1, OnParams);
  auto OnThreaded = runConfig(/*UseBatch=*/true, 4, OnThreadedParams);

  ASSERT_EQ(Off.size(), On.size());
  for (size_t I = 0; I < Off.size(); ++I) {
    EXPECT_EQ(Off[I].MeanReward, On[I].MeanReward) << "step " << I;
    EXPECT_EQ(Off[I].EMAReward, On[I].EMAReward) << "step " << I;
    EXPECT_EQ(Off[I].EquivalentRate, On[I].EquivalentRate) << "step " << I;
    EXPECT_EQ(Off[I].GradNorm, On[I].GradNorm) << "step " << I;
    EXPECT_EQ(Off[I].SolverConflicts, On[I].SolverConflicts) << "step " << I;
    EXPECT_EQ(Off[I].RetryEscalations, On[I].RetryEscalations);
    EXPECT_EQ(Off[I].MeanReward, OnThreaded[I].MeanReward) << "step " << I;
    EXPECT_EQ(Off[I].GradNorm, OnThreaded[I].GradNorm) << "step " << I;
  }
  EXPECT_EQ(OffParams, OnParams);
  EXPECT_EQ(OffParams, OnThreadedParams);
}

TEST(Trainer, RolloutHookSeesEveryRolloutInOrder) {
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());
  GRPOOptions G;
  G.GroupSize = 4;
  G.PromptsPerStep = 2;
  G.Threads = 4;
  std::vector<const Sample *> SerialOrder, ParallelOrder;
  RewardFn Flat = [](const Sample &, Completion &) {
    RolloutScore Sc;
    Sc.Reward = 1.0;
    return Sc;
  };
  for (auto *Order : {&SerialOrder, &ParallelOrder}) {
    G.Threads = Order == &SerialOrder ? 1 : 4;
    G.OnRollout = [Order](const Sample &S, const Completion &,
                          const RolloutScore &) { Order->push_back(&S); };
    RewritePolicyModel M(presetQwen3B());
    GRPOTrainer Trainer(M, Flat, G);
    Trainer.train(DS.Train, 3);
  }
  EXPECT_EQ(SerialOrder.size(), 3u * 2 * 4);
  EXPECT_EQ(SerialOrder, ParallelOrder);
}

TEST(Trainer, SFTReducesLossAndTeachesOracle) {
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());

  std::vector<SFTExample> Data;
  for (const Sample &S : DS.Train) {
    SFTExample Ex;
    Ex.S = &S;
    Ex.TargetActions = oracleActions(S.RefTrace, Model);
    Ex.DiagClassTarget = 0;
    Data.push_back(Ex);
    // A synthetic correction example.
    SFTExample Corr = Data.back();
    Corr.IsCorrection = true;
    Corr.AttemptActions = {Action::CorruptConstant, Action::Stop};
    Corr.DiagClassTarget = 3;
    Data.push_back(Corr);
  }

  double Before = sftLoss(Model, Data);
  SFTOptions Opts;
  Opts.Epochs = 6;
  sftTrain(Model, Data, Opts);
  double After = sftLoss(Model, Data);
  EXPECT_LT(After, Before) << "SFT failed to reduce the loss";

  // The trained diagnosis head must map the corruption to its class.
  double LpRight = Model.diagLogProb({Action::CorruptConstant, Action::Stop},
                                     3);
  double LpWrong = Model.diagLogProb({Action::CorruptConstant, Action::Stop},
                                     1);
  EXPECT_GT(LpRight, LpWrong);

  // And the fix gate should have moved toward "fix".
  EXPECT_GT(Model.fixLogProb(true), Model.fixLogProb(false));
}

TEST(Trainer, SFTRaisesOracleSequenceProbability) {
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());
  const Sample &S = DS.Train.front();
  auto Target = oracleActions(S.RefTrace, Model);
  double Before = Model.sequenceLogProb(*S.source(), Target);
  std::vector<SFTExample> Data;
  SFTExample Ex;
  Ex.S = &S;
  Ex.TargetActions = Target;
  Data.push_back(Ex);
  SFTOptions Opts;
  Opts.Epochs = 10;
  sftTrain(Model, Data, Opts);
  double After = Model.sequenceLogProb(*S.source(), Target);
  EXPECT_GT(After, Before);
}

} // namespace
} // namespace veriopt
