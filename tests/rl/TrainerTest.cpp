//===- TrainerTest.cpp - GRPO and SFT trainer tests ------------------------===//

#include "rl/Trainer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace veriopt {
namespace {

const Dataset &tinyDataset() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 16;
    O.ValidCount = 0;
    O.Seed = 21;
    return buildDataset(O);
  }();
  return DS;
}

TEST(Trainer, ClipGradientScalesDown) {
  std::vector<double> G = {3.0, 4.0}; // norm 5
  double Norm = clipGradient(G, 1.0);
  EXPECT_DOUBLE_EQ(Norm, 5.0);
  EXPECT_NEAR(std::sqrt(G[0] * G[0] + G[1] * G[1]), 1.0, 1e-12);
  std::vector<double> Small = {0.1, 0.1};
  clipGradient(Small, 1.0);
  EXPECT_DOUBLE_EQ(Small[0], 0.1); // untouched below the cap
}

TEST(Trainer, GRPOImprovesRewardAndKillsCorruption) {
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());
  VerifyOptions V;
  V.FalsifyTrials = 8;
  V.SolverConflictBudget = 20000;
  GRPOOptions G;
  G.GroupSize = 6;
  G.PromptsPerStep = 3;
  G.Seed = 7;
  RewardFn Reward = [V](const Sample &S, Completion &C) {
    RewardBreakdown B = answerReward(S, C, V);
    RolloutScore Sc;
    Sc.Reward = B.Total;
    Sc.Equivalent = B.Equivalent;
    Sc.IsCopy = B.IsCopy;
    return Sc;
  };
  GRPOTrainer Trainer(Model, Reward, G);
  auto Logs = Trainer.train(DS.Train, 40);
  ASSERT_EQ(Logs.size(), 40u);
  // Early vs late mean rewards (coarse but robust).
  double Early = 0, Late = 0, EarlyEq = 0, LateEq = 0;
  for (int I = 0; I < 8; ++I) {
    Early += Logs[I].MeanReward;
    Late += Logs[Logs.size() - 1 - I].MeanReward;
    EarlyEq += Logs[I].EquivalentRate;
    LateEq += Logs[Logs.size() - 1 - I].EquivalentRate;
  }
  EXPECT_GT(Late, Early) << "GRPO failed to improve the answer reward";
  // Equivalence must at least hold its ground (copies start equivalent, so
  // it does not have to rise while the policy learns to optimize instead).
  EXPECT_GT(LateEq, EarlyEq - 1.0);
  // EMA is a smoothed version of the raw series.
  EXPECT_NE(Logs.back().EMAReward, 0.0);
}

TEST(Trainer, GroupRelativeAdvantageNeedsVariation) {
  // A constant reward yields zero advantage and must not move parameters.
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());
  auto Before = Model.params();
  GRPOOptions G;
  G.GroupSize = 4;
  G.PromptsPerStep = 2;
  RewardFn Flat = [](const Sample &, Completion &) {
    RolloutScore Sc;
    Sc.Reward = 1.0;
    return Sc;
  };
  GRPOTrainer Trainer(Model, Flat, G);
  Trainer.train(DS.Train, 5);
  EXPECT_EQ(Model.params(), Before);
}

TEST(Trainer, SFTReducesLossAndTeachesOracle) {
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());

  std::vector<SFTExample> Data;
  for (const Sample &S : DS.Train) {
    SFTExample Ex;
    Ex.S = &S;
    Ex.TargetActions = oracleActions(S.RefTrace, Model);
    Ex.DiagClassTarget = 0;
    Data.push_back(Ex);
    // A synthetic correction example.
    SFTExample Corr = Data.back();
    Corr.IsCorrection = true;
    Corr.AttemptActions = {Action::CorruptConstant, Action::Stop};
    Corr.DiagClassTarget = 3;
    Data.push_back(Corr);
  }

  double Before = sftLoss(Model, Data);
  SFTOptions Opts;
  Opts.Epochs = 6;
  sftTrain(Model, Data, Opts);
  double After = sftLoss(Model, Data);
  EXPECT_LT(After, Before) << "SFT failed to reduce the loss";

  // The trained diagnosis head must map the corruption to its class.
  double LpRight = Model.diagLogProb({Action::CorruptConstant, Action::Stop},
                                     3);
  double LpWrong = Model.diagLogProb({Action::CorruptConstant, Action::Stop},
                                     1);
  EXPECT_GT(LpRight, LpWrong);

  // And the fix gate should have moved toward "fix".
  EXPECT_GT(Model.fixLogProb(true), Model.fixLogProb(false));
}

TEST(Trainer, SFTRaisesOracleSequenceProbability) {
  const Dataset &DS = tinyDataset();
  RewritePolicyModel Model(presetQwen3B());
  const Sample &S = DS.Train.front();
  auto Target = oracleActions(S.RefTrace, Model);
  double Before = Model.sequenceLogProb(*S.source(), Target);
  std::vector<SFTExample> Data;
  SFTExample Ex;
  Ex.S = &S;
  Ex.TargetActions = Target;
  Data.push_back(Ex);
  SFTOptions Opts;
  Opts.Epochs = 10;
  sftTrain(Model, Data, Opts);
  double After = Model.sequenceLogProb(*S.source(), Target);
  EXPECT_GT(After, Before);
}

} // namespace
} // namespace veriopt
