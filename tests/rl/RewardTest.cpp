//===- RewardTest.cpp - Eq. (1)/(2)/(4) reward function tests --------------===//

#include "rl/Reward.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

/// One deterministic sample shared across tests.
const Sample &sample() {
  static Dataset DS = [] {
    DatasetOptions O;
    O.TrainCount = 6;
    O.ValidCount = 0;
    O.Seed = 31;
    return buildDataset(O);
  }();
  return DS.Train.front();
}

Completion completionWithAnswer(std::string IR, bool FormatOk = true) {
  Completion C;
  C.AnswerIR = std::move(IR);
  C.FormatOk = FormatOk;
  C.Actions = {Action::Stop};
  C.TokenCount = 10;
  return C;
}

TEST(Reward, ExactReferenceMatchScoresHighest) {
  const Sample &S = sample();
  auto C = completionWithAnswer(S.RefText);
  auto B = answerReward(S, C);
  EXPECT_TRUE(B.FormatOk);
  EXPECT_TRUE(B.Equivalent);
  EXPECT_TRUE(B.ExactMatch);
  EXPECT_DOUBLE_EQ(B.Bleu, 1.0);
  EXPECT_DOUBLE_EQ(B.Total, 4.0); // 1*(1+1*(1+1)) + 1
}

TEST(Reward, CopyScoresBetweenGarbageAndOptimized) {
  const Sample &S = sample();
  auto Copy = answerReward(S, completionWithAnswer(S.SrcText));
  auto Exact = answerReward(S, completionWithAnswer(S.RefText));
  auto Garbage = answerReward(S, completionWithAnswer("not ir at all"));
  EXPECT_TRUE(Copy.IsCopy);
  EXPECT_TRUE(Copy.Equivalent);
  EXPECT_FALSE(Copy.ExactMatch);
  EXPECT_GT(Exact.Total, Copy.Total);
  EXPECT_GT(Copy.Total, Garbage.Total);
}

TEST(Reward, FormatFailureZeroesTheHierarchy) {
  const Sample &S = sample();
  auto C = completionWithAnswer(S.RefText, /*FormatOk=*/false);
  auto B = answerReward(S, C);
  EXPECT_FALSE(B.FormatOk);
  // Only the BLEU shaping term remains: t = 0.
  EXPECT_LE(B.Total, 1.0);
  EXPECT_GT(B.Total, 0.0); // BLEU still rewards partial overlap
}

TEST(Reward, SyntaxErrorGetsOnlyBleu) {
  const Sample &S = sample();
  // Take the reference and break it.
  std::string Broken = S.RefText.substr(0, S.RefText.size() * 2 / 3);
  auto B = answerReward(S, completionWithAnswer(Broken));
  EXPECT_FALSE(B.Equivalent);
  EXPECT_EQ(B.Verify.Status, VerifyStatus::SyntaxError);
  EXPECT_LT(B.Total, 2.0);
}

TEST(Reward, CoTAgreementOnOk) {
  Completion C;
  C.PredictedDiagClass = 0;
  VerifyResult V;
  V.Status = VerifyStatus::Equivalent;
  EXPECT_DOUBLE_EQ(cotReward(C, V), 1.0);
}

TEST(Reward, CoTDisagreementScoresZero) {
  Completion C;
  C.PredictedDiagClass = 0; // model claims OK
  VerifyResult V;
  V.Status = VerifyStatus::NotEquivalent; // alive says ERR
  V.Diagnostic = "ERROR: Value mismatch";
  EXPECT_DOUBLE_EQ(cotReward(C, V), 0.0);
  // And the other direction.
  Completion C2;
  C2.PredictedDiagClass = 3;
  C2.PredictedMessage = "ERROR: Value mismatch";
  VerifyResult V2;
  V2.Status = VerifyStatus::Equivalent;
  EXPECT_DOUBLE_EQ(cotReward(C2, V2), 0.0);
}

TEST(Reward, CoTAgreementOnErrorScalesWithMessageSimilarity) {
  VerifyResult V;
  V.Status = VerifyStatus::NotEquivalent;
  V.Diagnostic = "Transformation doesn't verify!\nERROR: Value mismatch\n";
  Completion Good;
  Good.PredictedDiagClass = 3;
  Good.PredictedMessage = diagClassMessage(3, "f");
  Completion Bad;
  Bad.PredictedDiagClass = 6;
  Bad.PredictedMessage = diagClassMessage(6, "f");
  double GoodR = cotReward(Good, V);
  double BadR = cotReward(Bad, V);
  EXPECT_GE(GoodR, 0.5);
  EXPECT_GE(BadR, 0.5); // both agree "ERR": at least the base credit
  EXPECT_GT(GoodR, BadR); // the right message text earns more
}

TEST(Reward, LatencyRewardGatesOnEquivalence) {
  const Sample &S = sample();
  LatencyRewardParams P;
  P.UMax = 3.0;
  auto Fast = completionWithAnswer(S.RefText);
  EXPECT_GT(latencyReward(S, Fast, /*Equivalent=*/true, P), 0.0);
  EXPECT_DOUBLE_EQ(latencyReward(S, Fast, /*Equivalent=*/false, P), 0.0);
  // A copy has u == 1: no reward even though it is equivalent.
  auto Copy = completionWithAnswer(S.SrcText);
  EXPECT_DOUBLE_EQ(latencyReward(S, Copy, true, P), 0.0);
}

TEST(Reward, LatencyRewardSaturatesAndShapes) {
  const Sample &S = sample();
  LatencyRewardParams P;
  P.UMax = 2.0;
  P.Gamma = 2.0;
  auto Fast = completionWithAnswer(S.RefText);
  double R1 = latencyReward(S, Fast, true, P);
  P.UMax = 10.0; // same speedup, further from saturation
  double R2 = latencyReward(S, Fast, true, P);
  EXPECT_GE(R1, R2);
  EXPECT_LE(R1, 1.0);
}

TEST(Reward, CopyDetectionSeesThroughCosmeticEdits) {
  // Regression: IsCopy used to be a raw byte compare, so re-wrapping the
  // input in whitespace (or renumbering its values) evaded the copy
  // penalty. Canonical re-print must catch it.
  const Sample &S = sample();
  std::string Cosmetic = S.SrcText;
  // Double every space: same IR after parse + print, different bytes.
  for (size_t I = 0; I < Cosmetic.size(); ++I)
    if (Cosmetic[I] == ' ') {
      Cosmetic.insert(I, " ");
      I += 1;
    }
  ASSERT_NE(Cosmetic, S.SrcText);
  auto B = answerReward(S, completionWithAnswer(Cosmetic));
  EXPECT_TRUE(B.IsCopy) << "whitespace-edited copy evaded detection";
  EXPECT_TRUE(B.Equivalent);
  // Unparseable answers still fall back to the textual compare.
  auto Garbage = answerReward(S, completionWithAnswer("not ir at all"));
  EXPECT_FALSE(Garbage.IsCopy);
  // The reference output is not a copy.
  EXPECT_FALSE(answerReward(S, completionWithAnswer(S.RefText)).IsCopy);
}

TEST(Reward, CachedAnswerRewardMatchesUncached) {
  const Sample &S = sample();
  VerifyCache Cache;
  for (const std::string &IR :
       {S.RefText, S.SrcText, S.RefText.substr(0, S.RefText.size() / 2)}) {
    auto Plain = answerReward(S, completionWithAnswer(IR));
    auto Cached = answerReward(S, completionWithAnswer(IR),
                               VerifyOptions(), &Cache);
    auto Hit = answerReward(S, completionWithAnswer(IR),
                            VerifyOptions(), &Cache);
    for (const auto *B : {&Cached, &Hit}) {
      EXPECT_EQ(Plain.Total, B->Total);
      EXPECT_EQ(Plain.Equivalent, B->Equivalent);
      EXPECT_EQ(Plain.ExactMatch, B->ExactMatch);
      EXPECT_EQ(Plain.IsCopy, B->IsCopy);
      EXPECT_EQ(Plain.Verify.Status, B->Verify.Status);
      EXPECT_EQ(Plain.Verify.Diagnostic, B->Verify.Diagnostic);
    }
  }
  EXPECT_GT(Cache.counters().Hits, 0u);
}

TEST(Reward, LatencyRewardDegenerateParamsScoreZero) {
  // Regression: UMax <= 1.0 used to divide by zero in the Eq. (4)
  // normalizer (UMax - 1.0); a degenerate saturation band must gate to 0.
  const Sample &S = sample();
  auto Fast = completionWithAnswer(S.RefText);
  LatencyRewardParams P;
  P.UMax = 1.0;
  EXPECT_DOUBLE_EQ(latencyReward(S, Fast, /*Equivalent=*/true, P), 0.0);
  P.UMax = 0.5;
  EXPECT_DOUBLE_EQ(latencyReward(S, Fast, true, P), 0.0);
  // And a sane parameterization still rewards the speedup.
  P.UMax = 3.0;
  EXPECT_GT(latencyReward(S, Fast, true, P), 0.0);
}

TEST(Reward, LatencyRewardUnparseableAnswerScoresZero) {
  // Equivalent=true with an answer that no longer parses (callers can pass
  // stale flags) must not crash or reward anything.
  const Sample &S = sample();
  LatencyRewardParams P;
  auto C = completionWithAnswer("definitely not ir");
  EXPECT_DOUBLE_EQ(latencyReward(S, C, /*Equivalent=*/true, P), 0.0);
}

TEST(Reward, UMaxFromTrainingSet) {
  DatasetOptions O;
  O.TrainCount = 20;
  O.ValidCount = 0;
  O.Seed = 9;
  auto DS = buildDataset(O);
  double U = computeUMax(DS.Train);
  EXPECT_GE(U, 1.5);
  EXPECT_LT(U, 20.0);
}

} // namespace
} // namespace veriopt
