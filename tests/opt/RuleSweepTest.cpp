//===- RuleSweepTest.cpp - Width-parameterized peephole rule properties ----===//
//
// Property sweeps over every supported integer width: each rewrite family
// must (a) fire on its canonical pattern, (b) produce Alive-verified code,
// and (c) agree with the interpreter on random inputs. TEST_P over widths
// catches width-specific bugs (masks, sign bits, overflow corners) that a
// single-width test would miss.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opt/Pass.h"
#include "support/RNG.h"
#include "verify/AliveLite.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

class RuleSweep : public ::testing::TestWithParam<unsigned> {
protected:
  std::string ty() const { return "i" + std::to_string(GetParam()); }

  /// Optimize, verify formally, differential-test, return printed result.
  std::string check(const std::string &Body) {
    std::string Src = "define " + ty() + " @f(" + ty() + " %x, " + ty() +
                      " %y) {\n" + Body + "}\n";
    auto M = parseModule(Src);
    EXPECT_TRUE(M.hasValue()) << M.error().render() << "\n" << Src;
    if (!M.hasValue())
      return "";
    Function *F = M.value()->getMainFunction();
    auto Opt = F->clone();
    runReferencePipeline(*Opt);
    auto VR = verifyRefinement(*F, *Opt);
    EXPECT_EQ(VR.Status, VerifyStatus::Equivalent)
        << VR.Diagnostic << "\ninput:\n"
        << Src << "result:\n"
        << printFunction(*Opt);
    RNG R(GetParam() * 7919);
    unsigned W = GetParam();
    for (int T = 0; T < 12; ++T) {
      std::vector<APInt64> Args = {APInt64(W, R.next()),
                                   APInt64(W, R.next())};
      auto A = interpret(*F, Args);
      auto B = interpret(*Opt, Args);
      if (A.St != ExecResult::Ok || A.RetPoison)
        continue;
      EXPECT_EQ(B.St, ExecResult::Ok);
      if (B.St == ExecResult::Ok && !B.RetPoison)
        EXPECT_EQ(A.RetVal, B.RetVal) << printFunction(*Opt);
    }
    return printFunction(*Opt);
  }
};

TEST_P(RuleSweep, AlgebraicIdentities) {
  std::string Out =
      check("  %a = add " + ty() + " %x, 0\n  %b = sub " + ty() +
            " %a, 0\n  %c = mul " + ty() + " %b, 1\n  ret " + ty() +
            " %c\n");
  EXPECT_NE(Out.find("ret " + ty() + " %x"), std::string::npos) << Out;
}

TEST_P(RuleSweep, XorCancelAndNeg) {
  std::string Out =
      check("  %a = xor " + ty() + " %x, %y\n  %b = xor " + ty() +
            " %a, %y\n  %c = sub " + ty() + " 0, %b\n  %d = sub " + ty() +
            " 0, %c\n  ret " + ty() + " %d\n");
  EXPECT_NE(Out.find("ret " + ty() + " %x"), std::string::npos) << Out;
}

TEST_P(RuleSweep, StrengthReduction) {
  if (GetParam() < 8)
    GTEST_SKIP() << "needs headroom for the multiplier";
  std::string Out = check("  %a = mul " + ty() + " %x, 4\n  %b = udiv " +
                          ty() + " %a, 2\n  ret " + ty() + " %b\n");
  EXPECT_EQ(Out.find("mul"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("udiv"), std::string::npos) << Out;
}

TEST_P(RuleSweep, ShiftPairBecomesMask) {
  if (GetParam() < 8)
    GTEST_SKIP();
  std::string Out = check("  %a = shl " + ty() + " %x, 3\n  %b = lshr " +
                          ty() + " %a, 3\n  ret " + ty() + " %b\n");
  EXPECT_NE(Out.find("and"), std::string::npos) << Out;
}

TEST_P(RuleSweep, CompareTautology) {
  std::string Src = "define i1 @g(" + ty() + " %x) {\n  %c = icmp uge " +
                    ty() + " %x, 0\n  ret i1 %c\n}\n";
  auto M = parseModule(Src);
  ASSERT_TRUE(M.hasValue());
  Function *F = M.value()->getMainFunction();
  auto Opt = F->clone();
  runReferencePipeline(*Opt);
  EXPECT_NE(printFunction(*Opt).find("ret i1 true"), std::string::npos);
  EXPECT_EQ(verifyRefinement(*F, *Opt).Status, VerifyStatus::Equivalent);
}

TEST_P(RuleSweep, MemoryRoundTrip) {
  std::string Out = check("  %s = alloca " + ty() + "\n  store " + ty() +
                          " %x, ptr %s\n  %v = load " + ty() +
                          ", ptr %s\n  ret " + ty() + " %v\n");
  EXPECT_EQ(Out.find("load"), std::string::npos) << Out;
}

TEST_P(RuleSweep, ReassociationChainsCollapse) {
  if (GetParam() < 8)
    GTEST_SKIP();
  std::string Out =
      check("  %a = add " + ty() + " %x, 1\n  %b = add " + ty() +
            " %a, 2\n  %c = add " + ty() + " %b, 3\n  %d = add " + ty() +
            " %c, 4\n  ret " + ty() + " %d\n");
  EXPECT_NE(Out.find("add " + ty() + " %x, 10"), std::string::npos) << Out;
}

INSTANTIATE_TEST_SUITE_P(Widths, RuleSweep,
                         ::testing::Values(1u, 8u, 16u, 32u, 64u));

} // namespace
} // namespace veriopt
