//===- InstCombineTest.cpp - Peephole rule tests ---------------------------===//

#include "opt/Pass.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "verify/AliveLite.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

/// Parse, run the reference pipeline, check the result still verifies as IR
/// AND is Alive-lite-equivalent to the input; return printed output.
std::string optimize(const std::string &Src, PassTrace *Trace = nullptr) {
  auto M = parseModule(Src);
  EXPECT_TRUE(M.hasValue()) << M.error().render();
  Function *F = M.value()->getMainFunction();
  auto Original = F->clone();
  runReferencePipeline(*F, Trace);
  std::string Err;
  EXPECT_TRUE(isWellFormed(*F, &Err)) << Err << "\n" << printFunction(*F);
  auto VR = verifyRefinement(*Original, *F);
  EXPECT_EQ(VR.Status, VerifyStatus::Equivalent)
      << VR.Diagnostic << "\nsource:\n"
      << printFunction(*Original) << "\nresult:\n"
      << printFunction(*F);
  return printFunction(*F);
}

/// Shorthand for "the optimized text contains / does not contain".
#define EXPECT_HAS(Text, Needle) \
  EXPECT_NE((Text).find(Needle), std::string::npos) << (Text)
#define EXPECT_NOT_HAS(Text, Needle) \
  EXPECT_EQ((Text).find(Needle), std::string::npos) << (Text)

TEST(InstCombine, AddZero) {
  std::string Out = optimize("define i32 @f(i32 %x) {\n"
                             "  %y = add i32 %x, 0\n  ret i32 %y\n}\n");
  EXPECT_HAS(Out, "ret i32 %x");
  EXPECT_NOT_HAS(Out, "add");
}

TEST(InstCombine, ConstantFolding) {
  std::string Out = optimize(
      "define i32 @f() {\n  %a = add i32 21, 21\n  %b = mul i32 %a, 2\n"
      "  %c = sub i32 %b, 4\n  ret i32 %c\n}\n");
  EXPECT_HAS(Out, "ret i32 80");
  EXPECT_NOT_HAS(Out, "add");
}

TEST(InstCombine, StrengthReduction) {
  std::string Out = optimize("define i32 @f(i32 %x) {\n"
                             "  %a = mul i32 %x, 8\n  %b = udiv i32 %a, 4\n"
                             "  %c = urem i32 %b, 16\n  ret i32 %c\n}\n");
  EXPECT_NOT_HAS(Out, "mul");
  EXPECT_NOT_HAS(Out, "udiv");
  EXPECT_NOT_HAS(Out, "urem");
  EXPECT_HAS(Out, "shl");
}

TEST(InstCombine, AddSelfBecomesShl) {
  std::string Out = optimize("define i32 @f(i32 %x) {\n"
                             "  %y = add i32 %x, %x\n  ret i32 %y\n}\n");
  EXPECT_HAS(Out, "shl i32 %x, 1");
}

TEST(InstCombine, XorCancellation) {
  std::string Out = optimize(
      "define i32 @f(i32 %x, i32 %k) {\n  %e = xor i32 %x, %k\n"
      "  %d = xor i32 %e, %k\n  ret i32 %d\n}\n");
  EXPECT_HAS(Out, "ret i32 %x");
}

TEST(InstCombine, ReassociateConstants) {
  std::string Out = optimize(
      "define i32 @f(i32 %x) {\n  %a = add i32 %x, 3\n"
      "  %b = add i32 %a, 4\n  ret i32 %b\n}\n");
  EXPECT_HAS(Out, "add i32 %x, 7");
}

TEST(InstCombine, SubConstToAdd) {
  std::string Out = optimize("define i32 @f(i32 %x) {\n"
                             "  %y = sub i32 %x, 5\n  ret i32 %y\n}\n");
  EXPECT_HAS(Out, "add i32 %x, -5");
}

TEST(InstCombine, ShlLShrToMask) {
  std::string Out = optimize("define i32 @f(i32 %x) {\n"
                             "  %a = shl i32 %x, 8\n  %b = lshr i32 %a, 8\n"
                             "  ret i32 %b\n}\n");
  EXPECT_HAS(Out, "and i32 %x, 16777215");
}

TEST(InstCombine, NotICmpInverts) {
  std::string Out = optimize(
      "define i1 @f(i32 %x, i32 %y) {\n  %c = icmp ult i32 %x, %y\n"
      "  %n = xor i1 %c, true\n  ret i1 %n\n}\n");
  EXPECT_HAS(Out, "icmp uge i32 %x, %y");
  EXPECT_NOT_HAS(Out, "xor");
}

TEST(InstCombine, ICmpCanonicalization) {
  // uge with constant canonicalizes to ugt; constant moves right.
  std::string Out = optimize(
      "define i1 @f(i32 %x) {\n  %c = icmp uge i32 %x, 10\n  ret i1 %c\n}\n");
  EXPECT_HAS(Out, "icmp ugt i32 %x, 9");
  std::string Out2 = optimize(
      "define i1 @f(i32 %x) {\n  %c = icmp slt i32 3, %x\n  ret i1 %c\n}\n");
  EXPECT_HAS(Out2, "icmp sgt i32 %x, 3");
}

TEST(InstCombine, ICmpTautologies) {
  std::string Out = optimize(
      "define i1 @f(i32 %x) {\n  %c = icmp ult i32 %x, 0\n  ret i1 %c\n}\n");
  EXPECT_HAS(Out, "ret i1 false");
  std::string Out2 = optimize(
      "define i1 @f(i32 %x) {\n  %c = icmp sle i32 %x, 2147483647\n"
      "  ret i1 %c\n}\n");
  EXPECT_HAS(Out2, "ret i1 true");
}

TEST(InstCombine, ICmpThroughXor) {
  std::string Out = optimize(
      "define i1 @f(i32 %x) {\n  %a = xor i32 %x, 12\n"
      "  %c = icmp eq i32 %a, 0\n  ret i1 %c\n}\n");
  EXPECT_HAS(Out, "icmp eq i32 %x, 12");
}

TEST(InstCombine, SelectFolds) {
  std::string Out = optimize(
      "define i32 @f(i32 %a, i32 %b) {\n"
      "  %r = select i1 true, i32 %a, i32 %b\n  ret i32 %r\n}\n");
  EXPECT_HAS(Out, "ret i32 %a");
  std::string Out2 = optimize(
      "define i1 @f(i1 %c) {\n"
      "  %r = select i1 %c, i1 true, i1 false\n  ret i1 %r\n}\n");
  EXPECT_HAS(Out2, "ret i1 %c");
}

TEST(InstCombine, CastChains) {
  std::string Out = optimize(
      "define i64 @f(i8 %x) {\n  %a = zext i8 %x to i16\n"
      "  %b = zext i16 %a to i64\n  ret i64 %b\n}\n");
  EXPECT_HAS(Out, "zext i8 %x to i64");
  std::string Out2 = optimize(
      "define i8 @f(i8 %x) {\n  %a = zext i8 %x to i32\n"
      "  %b = trunc i32 %a to i8\n  ret i8 %b\n}\n");
  EXPECT_HAS(Out2, "ret i8 %x");
}

TEST(InstCombine, StoreToLoadForwarding) {
  std::string Out = optimize(R"(
define i32 @f(i32 %x) {
  %s = alloca i32
  store i32 %x, ptr %s
  %v = load i32, ptr %s
  %r = add i32 %v, 1
  ret i32 %r
}
)");
  EXPECT_HAS(Out, "add i32 %x, 1");
  EXPECT_NOT_HAS(Out, "load");
}

TEST(InstCombine, LoadLoadCSE) {
  PassTrace Trace;
  std::string Out = optimize(R"(
define i32 @f(i32 %x) {
  %s = alloca i32
  store i32 %x, ptr %s
  %a = load i32, ptr %s
  %b = load i32, ptr %s
  %r = add i32 %a, %b
  ret i32 %r
}
)",
                             &Trace);
  // Both loads forward to the stored value; add of equal values becomes a
  // shift.
  EXPECT_HAS(Out, "shl i32 %x, 1");
  EXPECT_NOT_HAS(Out, "load");
}

TEST(InstCombine, DeadStoreElimination) {
  PassTrace Trace;
  std::string Out = optimize(R"(
define i32 @f(i32 %x, i32 %y) {
  %s = alloca i32
  store i32 %x, ptr %s
  store i32 %y, ptr %s
  %v = load i32, ptr %s
  ret i32 %v
}
)",
                             &Trace);
  EXPECT_HAS(Out, "ret i32 %y");
  bool SawDSE = false;
  for (const auto &R : Trace.Applied)
    SawDSE |= R == "dead-store-elim";
  EXPECT_TRUE(SawDSE);
}

TEST(InstCombine, PartialOverwriteIsKept) {
  // Storing i64 then overwriting only 4 bytes: the load mixes both stores,
  // so nothing may be forwarded naively. Correctness is asserted by the
  // embedded Alive-lite check in optimize().
  optimize(R"(
define i64 @f(i64 %x, i32 %y) {
  %s = alloca i64
  store i64 %x, ptr %s
  %hi = getelementptr i8, ptr %s, i64 4
  store i32 %y, ptr %hi
  %v = load i64, ptr %s
  ret i64 %v
}
)");
}

TEST(InstCombine, CallsBlockNothingForIntArgs) {
  // Calls taking only integers cannot touch locals: forwarding proceeds.
  std::string Out = optimize(R"(
declare void @fence(i32)
define i32 @f(i32 %x) {
  %s = alloca i32
  store i32 %x, ptr %s
  call void @fence(i32 0)
  %v = load i32, ptr %s
  ret i32 %v
}
)");
  EXPECT_NOT_HAS(Out, "load");
  EXPECT_HAS(Out, "ret i32 %x");
}

TEST(InstCombine, GEPFolds) {
  std::string Out = optimize(R"(
define i32 @f(i32 %v) {
  %s = alloca i64
  %a = getelementptr i8, ptr %s, i64 2
  %b = getelementptr i8, ptr %a, i64 2
  store i32 %v, ptr %b
  %r = load i32, ptr %b
  ret i32 %r
}
)");
  EXPECT_HAS(Out, "getelementptr i8, ptr %s, i64 4");
  std::string Out2 = optimize(R"(
define i32 @f(i32 %v) {
  %s = alloca i32
  %a = getelementptr i8, ptr %s, i64 0
  store i32 %v, ptr %a
  ret i32 %v
}
)");
  EXPECT_HAS(Out2, "store i32 %v, ptr %s");
}

TEST(InstCombine, TraceRecordsRules) {
  PassTrace Trace;
  optimize("define i32 @f(i32 %x) {\n  %a = add i32 %x, 0\n"
           "  %b = mul i32 %a, 4\n  ret i32 %b\n}\n",
           &Trace);
  EXPECT_FALSE(Trace.empty());
  bool SawAddZero = false, SawMulPow2 = false;
  for (const auto &R : Trace.Applied) {
    SawAddZero |= R == "add-zero";
    SawMulPow2 |= R == "mul-pow2-to-shl";
  }
  EXPECT_TRUE(SawAddZero);
  EXPECT_TRUE(SawMulPow2);
}

TEST(InstCombine, PreservesObservableCalls) {
  std::string Out = optimize(R"(
declare void @effect(i32)
define void @f(i32 %x) {
  %dead = add i32 %x, 1
  call void @effect(i32 %x)
  ret void
}
)");
  EXPECT_HAS(Out, "call void @effect");
  EXPECT_NOT_HAS(Out, "add"); // dead code removed
}

TEST(InstCombine, DivisionUBNotFolded) {
  // udiv by constant zero must not be folded away (it is UB, and folding
  // would change the function's defined domain in unexpected ways).
  std::string Out = optimize(
      "define i32 @f() {\n  %q = udiv i32 4, 0\n  ret i32 %q\n}\n");
  EXPECT_HAS(Out, "udiv i32 4, 0");
}

TEST(InstCombine, FixpointStability) {
  // Running the pipeline twice must not change anything further.
  auto M = parseModule(R"(
define i32 @f(i32 %x) {
  %a = add i32 %x, 3
  %b = add i32 %a, 4
  %c = mul i32 %b, 2
  %d = sub i32 %c, %c
  %e = or i32 %d, %x
  ret i32 %e
}
)");
  ASSERT_TRUE(M.hasValue());
  Function *F = M.value()->getMainFunction();
  runReferencePipeline(*F);
  std::string Once = printFunction(*F);
  bool ChangedAgain = runReferencePipeline(*F);
  EXPECT_FALSE(ChangedAgain);
  EXPECT_EQ(printFunction(*F), Once);
}

} // namespace
} // namespace veriopt
