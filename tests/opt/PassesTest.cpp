//===- PassesTest.cpp - Mem2Reg / SimplifyCFG / pipelines -----------------===//

#include "opt/Pass.h"

#include "cost/CostModel.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "verify/AliveLite.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  auto M = parseModule(Src);
  EXPECT_TRUE(M.hasValue()) << M.error().render();
  return M.takeValue();
}

/// Run a pass pipeline, assert well-formedness and Alive-lite equivalence.
std::string runChecked(const std::string &Src,
                       bool (*Pipeline)(Function &, PassTrace *)) {
  auto M = parseOk(Src);
  Function *F = M->getMainFunction();
  auto Original = F->clone();
  Pipeline(*F, nullptr);
  std::string Err;
  EXPECT_TRUE(isWellFormed(*F, &Err)) << Err << "\n" << printFunction(*F);
  auto VR = verifyRefinement(*Original, *F);
  EXPECT_EQ(VR.Status, VerifyStatus::Equivalent)
      << VR.Diagnostic << "\nresult:\n"
      << printFunction(*F);
  return printFunction(*F);
}

bool runExtended(Function &F, PassTrace *T) { return runExtendedPipeline(F, T); }

TEST(Mem2Reg, PromotesSimpleSlot) {
  std::string Out = runChecked(R"(
define i32 @f(i32 %x) {
  %s = alloca i32
  store i32 %x, ptr %s
  %v = load i32, ptr %s
  %r = add i32 %v, 1
  ret i32 %r
}
)",
                               runExtended);
  EXPECT_EQ(Out.find("alloca"), std::string::npos) << Out;
  EXPECT_NE(Out.find("add i32 %x, 1"), std::string::npos) << Out;
}

TEST(Mem2Reg, UninitializedSlotReadsZero) {
  std::string Out = runChecked(R"(
define i32 @f() {
  %s = alloca i32
  %v = load i32, ptr %s
  ret i32 %v
}
)",
                               runExtended);
  EXPECT_NE(Out.find("ret i32 0"), std::string::npos) << Out;
}

TEST(Mem2Reg, CrossBlockPromotion) {
  // Paper Fig. 9 shape: store in entry, load after a branch diamond.
  std::string Out = runChecked(R"(
declare void @foo(i32)
define i64 @f28(i64 %a, i64 %b) {
  %s = alloca i64
  %sum = add i64 %a, %b
  store i64 %sum, ptr %s
  %c = icmp ugt i64 %sum, %a
  br i1 %c, label %done, label %callit
callit:
  call void @foo(i32 0)
  br label %done
done:
  %v = load i64, ptr %s
  ret i64 %v
}
)",
                               runExtended);
  EXPECT_EQ(Out.find("alloca"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("load"), std::string::npos) << Out;
  EXPECT_NE(Out.find("call void @foo"), std::string::npos) << Out;
}

TEST(Mem2Reg, LoopCarriedSlot) {
  std::string Out = runChecked(R"(
define i32 @sum(i32 %n) {
entryblk:
  %acc = alloca i32
  %i = alloca i32
  br label %head
head:
  %iv = load i32, ptr %i
  %c = icmp ult i32 %iv, %n
  br i1 %c, label %body, label %done
body:
  %av = load i32, ptr %acc
  %nacc = add i32 %av, %iv
  store i32 %nacc, ptr %acc
  %ni = add i32 %iv, 1
  store i32 %ni, ptr %i
  br label %head
done:
  %r = load i32, ptr %acc
  ret i32 %r
}
)",
                               runExtended);
  EXPECT_EQ(Out.find("alloca"), std::string::npos) << Out;
  EXPECT_NE(Out.find("phi"), std::string::npos) << Out;
}

TEST(Mem2Reg, EscapedAllocaNotPromoted) {
  // A GEP user means partial access: not promotable.
  std::string Out = runChecked(R"(
define i32 @f(i64 %x) {
  %s = alloca i64
  store i64 %x, ptr %s
  %hi = getelementptr i8, ptr %s, i64 4
  %v = load i32, ptr %hi
  ret i32 %v
}
)",
                               runExtended);
  EXPECT_NE(Out.find("alloca"), std::string::npos) << Out;
}

TEST(SimplifyCFG, FoldsConstantBranch) {
  std::string Out = runChecked(R"(
define i32 @f(i32 %x) {
  br i1 true, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
)",
                               runExtended);
  EXPECT_NE(Out.find("ret i32 1"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("ret i32 2"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("br"), std::string::npos) << Out;
}

TEST(SimplifyCFG, MergesStraightLine) {
  std::string Out = runChecked(R"(
define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  br label %next
next:
  %b = mul i32 %a, 3
  br label %last
last:
  ret i32 %b
}
)",
                               runExtended);
  EXPECT_EQ(Out.find("br"), std::string::npos) << Out;
}

TEST(SimplifyCFG, DiamondBecomesSelect) {
  // The paper's Fig. 10 emergent shape.
  std::string Out = runChecked(R"(
define i32 @opt_u1(i32 %x) {
  %c = icmp ult i32 %x, 10
  br i1 %c, label %small, label %big
small:
  br label %join
big:
  br label %join
join:
  %r = phi i32 [ 0, %small ], [ 1, %big ]
  ret i32 %r
}
)",
                               runExtended);
  EXPECT_NE(Out.find("select"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("phi"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("br"), std::string::npos) << Out;
}

TEST(SimplifyCFG, TriangleBecomesSelect) {
  std::string Out = runChecked(R"(
define i32 @f(i32 %x) {
entryblk:
  %c = icmp slt i32 %x, 0
  br i1 %c, label %flip, label %join
flip:
  br label %join
join:
  %r = phi i32 [ 1, %flip ], [ 0, %entryblk ]
  ret i32 %r
}
)",
                               runExtended);
  EXPECT_NE(Out.find("select"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("phi"), std::string::npos) << Out;
}

TEST(SimplifyCFG, Fig10EndToEnd) {
  // Full Fig. 10: -O0-style memory + control flow collapses to select
  // arithmetic under the extended pipeline.
  std::string Out = runChecked(R"(
define i32 @opt_u1(i32 %0) {
  %2 = alloca i32
  store i32 %0, ptr %2
  %3 = icmp ult i32 %0, 10
  br i1 %3, label %4, label %5
4:
  br label %10
5:
  %6 = load i32, ptr %2
  %7 = add i32 %6, -12
  %8 = lshr i32 %7, 2
  %9 = add i32 %8, 3
  br label %10
10:
  %storemerge = phi i32 [ %9, %5 ], [ 0, %4 ]
  ret i32 %storemerge
}
)",
                               runExtended);
  EXPECT_EQ(Out.find("alloca"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("phi"), std::string::npos) << Out;
  EXPECT_NE(Out.find("select"), std::string::npos) << Out;
}

TEST(Pipelines, ExtendedBeatsReferenceOnAllocaHeavyCode) {
  const char *Src = R"(
define i32 @f(i32 %x) {
  %s = alloca i32
  store i32 %x, ptr %s
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %pos, label %neg
pos:
  %v1 = load i32, ptr %s
  %d1 = mul i32 %v1, 2
  store i32 %d1, ptr %s
  br label %join
neg:
  %v2 = load i32, ptr %s
  %d2 = sub i32 0, %v2
  store i32 %d2, ptr %s
  br label %join
join:
  %r = load i32, ptr %s
  ret i32 %r
}
)";
  auto M1 = parseOk(Src);
  auto M2 = parseOk(Src);
  Function *Ref = M1->getMainFunction();
  Function *Ext = M2->getMainFunction();
  runReferencePipeline(*Ref);
  runExtendedPipeline(*Ext);
  EXPECT_LE(estimateLatency(*Ext), estimateLatency(*Ref))
      << "ref:\n"
      << printFunction(*Ref) << "ext:\n"
      << printFunction(*Ext);
  EXPECT_EQ(printFunction(*Ext).find("alloca"), std::string::npos)
      << printFunction(*Ext);
}

TEST(Pipelines, ReferenceMatchesPaperFig8) {
  // InstCombine-lite forwards the two i32 stores into the i64 load
  // byte-wise only when sizes line up; here it cannot forward (size
  // mismatch), matching real instcombine keeping the memory ops (Fig. 8
  // LHS). The *extended* pipeline cannot promote either (GEP user), so
  // this stays memory-bound — exactly the case VeriOpt's learned rewrite
  // (ret i64 0) wins, which AliveLite validated in its own test.
  auto M = parseOk(R"(
define i64 @get_d() {
  %1 = alloca i64
  store i32 0, ptr %1
  %hi = getelementptr i8, ptr %1, i64 4
  store i32 0, ptr %hi
  %v = load i64, ptr %1
  ret i64 %v
}
)");
  Function *F = M->getMainFunction();
  runReferencePipeline(*F);
  EXPECT_NE(printFunction(*F).find("alloca"), std::string::npos);
}

TEST(Pipelines, DCERemovesDeadChains) {
  std::string Out = runChecked(R"(
define i32 @f(i32 %x) {
  %d1 = add i32 %x, 1
  %d2 = mul i32 %d1, %d1
  %d3 = xor i32 %d2, 7
  ret i32 %x
}
)",
                               runExtended);
  EXPECT_EQ(Out.find("add"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("mul"), std::string::npos) << Out;
}

} // namespace
} // namespace veriopt
