//===- DiagTaxonomyTest.cpp - One crafted candidate per DiagKind ----------===//
//
// The diagnostic taxonomy drives stage-2 prompt augmentation and the retry
// ladder (only budget-bound kinds are retryable), so every kind must be
// reachable through verifyCandidateText and classified correctly. Also
// covers the adversarial-emission guards: oversized or degenerate candidate
// text must classify as SyntaxError, never crash or hang the verifier.
//
//===----------------------------------------------------------------------===//

#include "verify/AliveLite.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <set>

namespace veriopt {
namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  auto M = parseModule(Src);
  EXPECT_TRUE(M.hasValue()) << M.error().render();
  return M.takeValue();
}

VerifyResult check(const std::string &SrcIR, const std::string &TgtIR,
                   VerifyOptions Opts = VerifyOptions()) {
  auto SM = parseOk(SrcIR);
  return verifyCandidateText(*SM->getMainFunction(), TgtIR, Opts);
}

const char *SimpleSrc = "define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                        "  ret i32 %y\n}\n";

TEST(DiagTaxonomy, NoneOnEquivalent) {
  auto R = check(SimpleSrc, SimpleSrc);
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::None);
}

TEST(DiagTaxonomy, ParseError) {
  auto R = check(SimpleSrc, "definne i32 @f(i32 %x) { ret i32 %x }");
  EXPECT_EQ(R.Status, VerifyStatus::SyntaxError);
  EXPECT_EQ(R.Kind, DiagKind::ParseError);
}

TEST(DiagTaxonomy, StructureError) {
  // Parses but is ill-formed SSA: use before def across blocks.
  auto R = check(SimpleSrc, R"(
define i32 @f(i32 %x) {
entryblk:
  br label %next
next:
  ret i32 %y
later:
  %y = add i32 %x, 1
  br label %next
}
)");
  EXPECT_EQ(R.Status, VerifyStatus::SyntaxError);
  EXPECT_EQ(R.Kind, DiagKind::StructureError);
}

TEST(DiagTaxonomy, SignatureMismatch) {
  auto R = check(SimpleSrc,
                 "define i64 @f(i64 %x) {\n  %y = add i64 %x, 1\n"
                 "  ret i64 %y\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
  EXPECT_EQ(R.Kind, DiagKind::SignatureMismatch);
}

TEST(DiagTaxonomy, ValueMismatch) {
  auto R = check(SimpleSrc,
                 "define i32 @f(i32 %x) {\n  %y = add i32 %x, 2\n"
                 "  ret i32 %y\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
  EXPECT_EQ(R.Kind, DiagKind::ValueMismatch);
}

TEST(DiagTaxonomy, PoisonMismatch) {
  // Adding nsw to an add that may overflow introduces poison.
  VerifyOptions Opts;
  Opts.FalsifyTrials = 0; // force the symbolic path
  auto R = check(SimpleSrc,
                 "define i32 @f(i32 %x) {\n  %y = add nsw i32 %x, 1\n"
                 "  ret i32 %y\n}\n",
                 Opts);
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::PoisonMismatch);
}

TEST(DiagTaxonomy, UBIntroduced) {
  VerifyOptions Opts;
  Opts.FalsifyTrials = 0;
  auto R = check("define i32 @f(i32 %x) {\n  ret i32 0\n}\n",
                 "define i32 @f(i32 %x) {\n  %q = udiv i32 4, %x\n"
                 "  %z = sub i32 %q, %q\n  ret i32 %z\n}\n",
                 Opts);
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::UBIntroduced);
}

TEST(DiagTaxonomy, CallMismatch) {
  const char *Src = R"(
declare void @foo(i32)
define void @f(i32 %x) {
  call void @foo(i32 %x)
  ret void
}
)";
  auto R = check(Src, "define void @f(i32 %x) {\n  ret void\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
  EXPECT_EQ(R.Kind, DiagKind::CallMismatch);
}

TEST(DiagTaxonomy, SolverTimeout) {
  VerifyOptions Opts;
  Opts.SolverConflictBudget = 5;
  Opts.FalsifyTrials = 0;
  auto R = check("define i32 @f(i32 %x, i32 %y) {\n  %m = mul i32 %x, %y\n"
                 "  ret i32 %m\n}\n",
                 "define i32 @f(i32 %x, i32 %y) {\n  %m = mul i32 %y, %x\n"
                 "  ret i32 %m\n}\n",
                 Opts);
  EXPECT_EQ(R.Status, VerifyStatus::Inconclusive) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::SolverTimeout);
}

TEST(DiagTaxonomy, Unsupported) {
  const char *Src = "define i32 @f(ptr %p) {\n  ret i32 0\n}\n";
  auto R = check(Src, Src);
  EXPECT_EQ(R.Status, VerifyStatus::Inconclusive);
  EXPECT_EQ(R.Kind, DiagKind::Unsupported);
}

TEST(DiagTaxonomy, LoopBound) {
  const char *Src = R"(
define i32 @f(i32 %n) {
entryblk:
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %ni, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %ni = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)";
  VerifyOptions Strict;
  Strict.StrictLoops = true;
  auto R = check(Src, Src, Strict);
  EXPECT_EQ(R.Status, VerifyStatus::Inconclusive);
  EXPECT_EQ(R.Kind, DiagKind::LoopBound);
}

TEST(DiagTaxonomy, ResourceExhausted) {
  // A fuel budget too small even for the falsification pre-pass: the shared
  // token runs dry and verification reports deterministic exhaustion.
  VerifyOptions Opts;
  Opts.FuelBudget = 8;
  auto R = check(SimpleSrc, SimpleSrc, Opts);
  EXPECT_EQ(R.Status, VerifyStatus::Inconclusive) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::ResourceExhausted);
  // Spent counts attempted work, so it can slightly exceed the budget, but
  // exhaustion latches: the blowup is bounded near the budget, not runaway.
  EXPECT_GT(R.FuelSpent, 0u);
}

TEST(DiagTaxonomy, FuelBudgetZeroIsUnlimited) {
  VerifyOptions Opts;
  Opts.FuelBudget = 0;
  auto R = check(SimpleSrc, SimpleSrc, Opts);
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(DiagTaxonomy, NamesAreDistinct) {
  std::set<std::string> Names;
  for (unsigned K = 0; K <= static_cast<unsigned>(DiagKind::ResourceExhausted);
       ++K)
    Names.insert(diagKindName(static_cast<DiagKind>(K)));
  EXPECT_EQ(Names.size(),
            static_cast<size_t>(DiagKind::ResourceExhausted) + 1);
  EXPECT_EQ(std::string("resource-exhausted"),
            diagKindName(DiagKind::ResourceExhausted));
}

//===--- Adversarial-emission hardening ----------------------------------===//

TEST(DiagTaxonomy, OversizedCandidateRejectedBeforeParse) {
  VerifyOptions Opts;
  Opts.MaxCandidateBytes = 1024;
  std::string Huge = "define i32 @f(i32 %x) {\n";
  Huge.append(4096, ' ');
  Huge += "  ret i32 %x\n}\n";
  auto R = check(SimpleSrc, Huge, Opts);
  EXPECT_EQ(R.Status, VerifyStatus::SyntaxError);
  EXPECT_EQ(R.Kind, DiagKind::ParseError);
  EXPECT_NE(R.Diagnostic.find("maximum size"), std::string::npos);
}

TEST(DiagTaxonomy, DefaultByteCapBoundsPathologicalEmissions) {
  // The model can emit anything; 2 MB of garbage must be a cheap verdict.
  std::string Huge(2u << 20, 'x');
  auto R = check(SimpleSrc, Huge);
  EXPECT_EQ(R.Status, VerifyStatus::SyntaxError);
  EXPECT_EQ(R.Kind, DiagKind::ParseError);
}

TEST(DiagTaxonomy, InstructionCapRejectsBloatedFunction) {
  VerifyOptions Opts;
  Opts.MaxCandidateInsts = 8;
  std::string Tgt = "define i32 @f(i32 %x) {\n  %v0 = add i32 %x, 0\n";
  for (int I = 1; I < 20; ++I)
    Tgt += "  %v" + std::to_string(I) + " = add i32 %v" +
           std::to_string(I - 1) + ", 0\n";
  Tgt += "  ret i32 %v19\n}\n";
  auto R = check(SimpleSrc, Tgt, Opts);
  EXPECT_EQ(R.Status, VerifyStatus::SyntaxError);
  EXPECT_EQ(R.Kind, DiagKind::StructureError);
  EXPECT_NE(R.Diagnostic.find("maximum function size"), std::string::npos);
}

TEST(DiagTaxonomy, CapsDisabledWhenZero) {
  VerifyOptions Opts;
  Opts.MaxCandidateBytes = 0;
  Opts.MaxCandidateInsts = 0;
  std::string Tgt = "define i32 @f(i32 %x) {\n  %v0 = add i32 %x, 1\n";
  for (int I = 1; I < 20; ++I)
    Tgt += "  %v" + std::to_string(I) + " = add i32 %v" +
           std::to_string(I - 1) + ", 0\n";
  Tgt += "  ret i32 %v19\n}\n";
  auto R = check(SimpleSrc, Tgt, Opts);
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(DiagTaxonomy, DeepTypeStarChainDoesNotCrash) {
  // A pathological nested-pointer spelling: thousands of '*' after a type.
  // The parser may collapse it to a pointer (signature mismatch) or reject
  // it outright; either way it must return promptly, never crash or hang.
  std::string Tgt = "define i32 @f(i32";
  Tgt.append(100000, '*');
  Tgt += " %x) {\n  ret i32 0\n}\n";
  auto R = check(SimpleSrc, Tgt);
  EXPECT_NE(R.Status, VerifyStatus::Equivalent);
}

TEST(DiagTaxonomy, UnterminatedGarbageIsParseError) {
  auto R = check(SimpleSrc, "define i32 @f(i32 %x) {\n  %y = add i32 ");
  EXPECT_EQ(R.Status, VerifyStatus::SyntaxError);
  EXPECT_EQ(R.Kind, DiagKind::ParseError);
}

} // namespace
} // namespace veriopt
