//===- AliveLiteTest.cpp - Translation validation unit tests --------------===//

#include "verify/AliveLite.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  auto M = parseModule(Src);
  EXPECT_TRUE(M.hasValue()) << M.error().render();
  return M.takeValue();
}

VerifyResult check(const std::string &SrcIR, const std::string &TgtIR,
                   VerifyOptions Opts = VerifyOptions()) {
  auto SM = parseOk(SrcIR);
  return verifyCandidateText(*SM->getMainFunction(), TgtIR, Opts);
}

TEST(AliveLite, IdentityIsEquivalent) {
  const char *F = "define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                  "  ret i32 %y\n}\n";
  auto R = check(F, F);
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
  EXPECT_FALSE(R.BoundedOnly);
}

TEST(AliveLite, AlgebraicRewriteVerifies) {
  // x*2 -> x<<1: the classic instcombine strength reduction.
  auto R = check("define i32 @f(i32 %x) {\n  %y = mul i32 %x, 2\n"
                 "  ret i32 %y\n}\n",
                 "define i32 @f(i32 %x) {\n  %y = shl i32 %x, 1\n"
                 "  ret i32 %y\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(AliveLite, WrongConstantRefuted) {
  auto R = check("define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                 "  ret i32 %y\n}\n",
                 "define i32 @f(i32 %x) {\n  %y = add i32 %x, 2\n"
                 "  ret i32 %y\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
  EXPECT_EQ(R.Kind, DiagKind::ValueMismatch);
  EXPECT_FALSE(R.Counterexample.empty());
  EXPECT_NE(R.Diagnostic.find("Value mismatch"), std::string::npos);
}

TEST(AliveLite, FalsificationPrePassCatchesEasyBugs) {
  auto R = check("define i32 @f(i32 %x) {\n  ret i32 %x\n}\n",
                 "define i32 @f(i32 %x) {\n  %y = sub i32 0, %x\n"
                 "  ret i32 %y\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
  EXPECT_TRUE(R.FoundByFalsification);
}

TEST(AliveLite, SubtleSignednessBugNeedsSolver) {
  // sdiv by 2 is NOT ashr by 1 (rounds toward zero vs. -inf): differ only
  // on odd negative inputs; random trials usually find it, but disable the
  // pre-pass to force the SMT path.
  VerifyOptions Opts;
  Opts.FalsifyTrials = 0;
  auto R = check("define i32 @f(i32 %x) {\n  %y = sdiv i32 %x, 2\n"
                 "  ret i32 %y\n}\n",
                 "define i32 @f(i32 %x) {\n  %y = ashr i32 %x, 1\n"
                 "  ret i32 %y\n}\n",
                 Opts);
  ASSERT_EQ(R.Status, VerifyStatus::NotEquivalent) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::ValueMismatch);
  EXPECT_FALSE(R.FoundByFalsification);
  // The counterexample must be an odd negative number.
  ASSERT_EQ(R.Counterexample.size(), 1u);
  int64_t X = R.Counterexample[0].Value.sext();
  EXPECT_LT(X, 0);
  EXPECT_NE(X % 2, 0);
}

TEST(AliveLite, UDivByPowerOfTwoIsLShr) {
  auto R = check("define i32 @f(i32 %x) {\n  %y = udiv i32 %x, 8\n"
                 "  ret i32 %y\n}\n",
                 "define i32 @f(i32 %x) {\n  %y = lshr i32 %x, 3\n"
                 "  ret i32 %y\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(AliveLite, SyntaxErrorTaxonomy) {
  const char *Src = "define i32 @f(i32 %x) {\n  ret i32 %x\n}\n";
  auto R1 = check(Src, "definne i32 @f(i32 %x) { ret i32 %x }");
  EXPECT_EQ(R1.Status, VerifyStatus::SyntaxError);
  EXPECT_EQ(R1.Kind, DiagKind::ParseError);
  // Parses but is ill-formed SSA (use before def across blocks).
  auto R2 = check(Src, R"(
define i32 @f(i32 %x) {
entryblk:
  br label %next
next:
  ret i32 %y
later:
  %y = add i32 %x, 1
  br label %next
}
)");
  EXPECT_EQ(R2.Status, VerifyStatus::SyntaxError);
  EXPECT_EQ(R2.Kind, DiagKind::StructureError);
}

TEST(AliveLite, SignatureMismatch) {
  auto R = check("define i32 @f(i32 %x) {\n  ret i32 %x\n}\n",
                 "define i64 @f(i64 %x) {\n  ret i64 %x\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
  EXPECT_EQ(R.Kind, DiagKind::SignatureMismatch);
}

TEST(AliveLite, PoisonIntroductionRefuted) {
  // Adding nsw to an add that may overflow introduces poison.
  VerifyOptions Opts;
  Opts.FalsifyTrials = 0; // force the symbolic path
  auto R = check("define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                 "  ret i32 %y\n}\n",
                 "define i32 @f(i32 %x) {\n  %y = add nsw i32 %x, 1\n"
                 "  ret i32 %y\n}\n",
                 Opts);
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::PoisonMismatch);
}

TEST(AliveLite, DroppingNSWIsRefinement) {
  // Removing a poison-generating flag is always sound.
  auto R = check("define i32 @f(i32 %x) {\n  %y = add nsw i32 %x, 1\n"
                 "  ret i32 %y\n}\n",
                 "define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                 "  ret i32 %y\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(AliveLite, NSWEnablesTransform) {
  // (x+1 > x) with nsw folds to true; without nsw it would be wrong.
  auto OK = check(R"(
define i1 @f(i32 %x) {
  %y = add nsw i32 %x, 1
  %c = icmp sgt i32 %y, %x
  ret i1 %c
}
)",
                  "define i1 @f(i32 %x) {\n  ret i1 true\n}\n");
  EXPECT_EQ(OK.Status, VerifyStatus::Equivalent) << OK.Diagnostic;
  auto Bad = check(R"(
define i1 @f(i32 %x) {
  %y = add i32 %x, 1
  %c = icmp sgt i32 %y, %x
  ret i1 %c
}
)",
                   "define i1 @f(i32 %x) {\n  ret i1 true\n}\n");
  EXPECT_EQ(Bad.Status, VerifyStatus::NotEquivalent) << Bad.Diagnostic;
}

TEST(AliveLite, UBIntroductionRefuted) {
  // Introducing a division that can fault is not a refinement.
  VerifyOptions Opts;
  Opts.FalsifyTrials = 0;
  auto R = check("define i32 @f(i32 %x) {\n  ret i32 0\n}\n",
                 "define i32 @f(i32 %x) {\n  %q = udiv i32 4, %x\n"
                 "  %z = sub i32 %q, %q\n  ret i32 %z\n}\n",
                 Opts);
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::UBIntroduced);
  // The counterexample must be x == 0.
  ASSERT_EQ(R.Counterexample.size(), 1u);
  EXPECT_TRUE(R.Counterexample[0].Value.isZero());
}

TEST(AliveLite, RemovingSourceUBIsAllowed) {
  // Source may divide by zero; target guards it: refinement holds.
  auto R = check("define i32 @f(i32 %x) {\n  %q = udiv i32 4, %x\n"
                 "  ret i32 %q\n}\n",
                 R"(
define i32 @f(i32 %x) {
  %z = icmp eq i32 %x, 0
  br i1 %z, label %zero, label %ok
zero:
  ret i32 7
ok:
  %q = udiv i32 4, %x
  ret i32 %q
}
)");
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(AliveLite, MemoryStoreLoadForwarding) {
  // Paper Fig. 8 shape: replace stores+load with a constant.
  auto R = check(R"(
define i64 @get_d() {
  %s = alloca i64
  store i32 0, ptr %s
  %hi = getelementptr i8, ptr %s, i64 4
  store i32 0, ptr %hi
  %v = load i64, ptr %s
  ret i64 %v
}
)",
                 "define i64 @get_d() {\n  ret i64 0\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(AliveLite, MemoryWrongForwardingRefuted) {
  auto R = check(R"(
define i32 @f(i32 %x) {
  %s = alloca i32
  store i32 %x, ptr %s
  %v = load i32, ptr %s
  ret i32 %v
}
)",
                 "define i32 @f(i32 %x) {\n  ret i32 0\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
}

TEST(AliveLite, BranchesAndPhisVerify) {
  // select <-> branch+phi equivalence (simplifycfg-style, paper Fig. 10).
  auto R = check(R"(
define i32 @f(i32 %x) {
  %c = icmp ult i32 %x, 10
  br i1 %c, label %small, label %big
small:
  br label %join
big:
  br label %join
join:
  %r = phi i32 [ 0, %small ], [ 1, %big ]
  ret i32 %r
}
)",
                 R"(
define i32 @f(i32 %x) {
  %c = icmp ult i32 %x, 10
  %r = select i1 %c, i32 0, i32 1
  ret i32 %r
}
)");
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(AliveLite, CallPreservationVerifies) {
  // Paper Fig. 9: removing the alloca traffic around a call is fine as
  // long as the call (and its guard) survives.
  const char *Src = R"(
declare void @foo(i32)
define i64 @f28(i64 %a, i64 %b) {
  %s = alloca i64
  %sum = add i64 %a, %b
  store i64 %sum, ptr %s
  %c = icmp ugt i64 %sum, %a
  br i1 %c, label %done, label %callit
callit:
  call void @foo(i32 0)
  br label %done
done:
  %v = load i64, ptr %s
  ret i64 %v
}
)";
  const char *Tgt = R"(
declare void @foo(i32)
define i64 @f28(i64 %a, i64 %b) {
  %sum = add i64 %a, %b
  %c = icmp ugt i64 %sum, %a
  br i1 %c, label %done, label %callit
callit:
  call void @foo(i32 0)
  br label %done
done:
  ret i64 %sum
}
)";
  auto R = check(Src, Tgt);
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(AliveLite, DroppedCallRefuted) {
  const char *Src = R"(
declare void @foo(i32)
define void @f(i32 %x) {
  call void @foo(i32 %x)
  ret void
}
)";
  auto R = check(Src, "define void @f(i32 %x) {\n  ret void\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
  EXPECT_EQ(R.Kind, DiagKind::CallMismatch);
}

TEST(AliveLite, ChangedCallArgumentRefuted) {
  const char *Src = R"(
declare void @foo(i32)
define void @f(i32 %x) {
  call void @foo(i32 %x)
  ret void
}
)";
  const char *Tgt = R"(
declare void @foo(i32)
define void @f(i32 %x) {
  %y = add i32 %x, 1
  call void @foo(i32 %y)
  ret void
}
)";
  auto R = check(Src, Tgt);
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
  EXPECT_EQ(R.Kind, DiagKind::CallMismatch);
}

TEST(AliveLite, CallResultThreadsThroughWorld) {
  // Using the call's result differently is detectable: source returns it,
  // target negates it.
  const char *Src = R"(
declare i32 @get()
define i32 @f() {
  %v = call i32 @get()
  ret i32 %v
}
)";
  const char *TgtBad = R"(
declare i32 @get()
define i32 @f() {
  %v = call i32 @get()
  %n = sub i32 0, %v
  ret i32 %n
}
)";
  auto Bad = check(Src, TgtBad);
  EXPECT_EQ(Bad.Status, VerifyStatus::NotEquivalent) << Bad.Diagnostic;
  // And the identity use verifies.
  auto Ok = check(Src, Src);
  EXPECT_EQ(Ok.Status, VerifyStatus::Equivalent) << Ok.Diagnostic;
}

TEST(AliveLite, BoundedLoopEquivalence) {
  // A loop summing 1+2+3 (constant trip count 3, within the unroll bound)
  // against its closed form.
  const char *Src = R"(
define i32 @f() {
entryblk:
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %ni, %body ]
  %acc = phi i32 [ 0, %entryblk ], [ %nacc, %body ]
  %c = icmp ult i32 %i, 3
  br i1 %c, label %body, label %done
body:
  %ni = add i32 %i, 1
  %nacc = add i32 %acc, %ni
  br label %head
done:
  ret i32 %acc
}
)";
  auto R = check(Src, "define i32 @f() {\n  ret i32 6\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
  EXPECT_FALSE(R.BoundedOnly); // trip count below the bound: full proof
}

TEST(AliveLite, UnboundedLoopIsBoundedOnlyOrInconclusive) {
  const char *Src = R"(
define i32 @f(i32 %n) {
entryblk:
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %ni, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %ni = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)";
  // Identity transform of an input-dependent loop: provable only within
  // the unroll bound.
  auto R = check(Src, Src);
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
  EXPECT_TRUE(R.BoundedOnly);
  // Strict mode refuses.
  VerifyOptions Strict;
  Strict.StrictLoops = true;
  auto R2 = check(Src, Src, Strict);
  EXPECT_EQ(R2.Status, VerifyStatus::Inconclusive);
  EXPECT_EQ(R2.Kind, DiagKind::LoopBound);
}

TEST(AliveLite, SolverBudgetInconclusive) {
  // A 32x32 multiply round-trip with a tiny SAT budget.
  VerifyOptions Opts;
  Opts.SolverConflictBudget = 5;
  Opts.FalsifyTrials = 0;
  auto R = check(R"(
define i32 @f(i32 %x, i32 %y) {
  %m = mul i32 %x, %y
  ret i32 %m
}
)",
                 R"(
define i32 @f(i32 %x, i32 %y) {
  %m = mul i32 %y, %x
  ret i32 %m
}
)",
                 Opts);
  EXPECT_EQ(R.Status, VerifyStatus::Inconclusive) << R.Diagnostic;
  EXPECT_EQ(R.Kind, DiagKind::SolverTimeout);
}

TEST(AliveLite, VoidFunctions) {
  const char *Src = "define void @f(i32 %x) {\n  ret void\n}\n";
  auto R = check(Src, "define void @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                      "  %z = mul i32 %y, %y\n  ret void\n}\n");
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent) << R.Diagnostic;
}

TEST(AliveLite, TruncationMismatch) {
  // Paper Fig. 11 shape: missing a trunc matters.
  VerifyOptions Opts;
  auto R = check(R"(
define i32 @f8(i64 %x) {
  %s = lshr i64 %x, 61
  %t = trunc i64 %s to i32
  %r = add i32 %t, 1
  ret i32 %r
}
)",
                 R"(
define i32 @f8(i64 %x) {
  %s = lshr i64 %x, 32
  %t = trunc i64 %s to i32
  %r = add i32 %t, 1
  ret i32 %r
}
)",
                 Opts);
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent);
}

TEST(AliveLite, FalsificationTriesMixedCornerPatterns) {
  // Regression: the corner sweeps used to assign every argument the *same*
  // corner value, so a divergence that needs a mixed pattern — here
  // (a, b) = (0, 1) — slipped past falsification and fell through to the
  // SMT solver. Per-argument corner selection must catch it with corner
  // sweeps alone (no random trials: 6 sweeps exactly).
  VerifyOptions Opts;
  Opts.FalsifyTrials = 6;
  auto R = check(R"(
define i32 @f(i32 %a, i32 %b) {
  ret i32 0
}
)",
                 R"(
define i32 @f(i32 %a, i32 %b) {
  %c0 = icmp eq i32 %a, 0
  %c1 = icmp eq i32 %b, 1
  %c = and i1 %c0, %c1
  %r = zext i1 %c to i32
  ret i32 %r
}
)",
                 Opts);
  ASSERT_EQ(R.Status, VerifyStatus::NotEquivalent) << R.Diagnostic;
  EXPECT_TRUE(R.FoundByFalsification)
      << "mixed corner (0, 1) not tried by the falsification pre-pass";
}

TEST(AliveLite, DiagnosticTextShape) {
  auto R = check("define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                 "  ret i32 %y\n}\n",
                 "define i32 @f(i32 %x) {\n  %y = add i32 %x, 2\n"
                 "  ret i32 %y\n}\n");
  EXPECT_NE(R.Diagnostic.find("Transformation doesn't verify!"),
            std::string::npos);
  EXPECT_NE(R.Diagnostic.find("ERROR:"), std::string::npos);
  EXPECT_NE(R.Diagnostic.find("Example:"), std::string::npos);
  auto Ok = check("define i32 @f(i32 %x) {\n  ret i32 %x\n}\n",
                  "define i32 @f(i32 %x) {\n  ret i32 %x\n}\n");
  EXPECT_NE(Ok.Diagnostic.find("Transformation seems to be correct!"),
            std::string::npos);
}

} // namespace
} // namespace veriopt
