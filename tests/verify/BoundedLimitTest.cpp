//===- BoundedLimitTest.cpp - Documenting the §VI Alive2 limitation --------===//
//
// The paper's §VI discusses Alive2 getting loop answers wrong because its
// translation validation is *bounded*. Our Alive-lite inherits exactly that
// behaviour by design: a pair that agrees within the unroll bound but
// diverges beyond it is reported Equivalent with BoundedOnly set. This test
// pins that known limitation (and the StrictLoops escape hatch) so it stays
// documented-by-test rather than silently surprising.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "verify/AliveLite.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

// Loop counting to n (capped at 100). The target claims the result is
// min(n, 4): identical while the unroll bound (5 visits => up to 4
// iterations) covers execution, wrong for n >= 5.
const char *Src = R"(
define i32 @count(i32 %n) {
entryblk:
  %cap = icmp ult i32 %n, 100
  %m = select i1 %cap, i32 %n, i32 100
  br label %head
head:
  %i = phi i32 [ 0, %entryblk ], [ %ni, %body ]
  %c = icmp ult i32 %i, %m
  br i1 %c, label %body, label %done
body:
  %ni = add i32 %i, 1
  br label %head
done:
  ret i32 %i
}
)";

const char *TgtWrongBeyondBound = R"(
define i32 @count(i32 %n) {
  %cap = icmp ult i32 %n, 4
  %r = select i1 %cap, i32 %n, i32 4
  ret i32 %r
}
)";

TEST(BoundedLimit, BoundedProofAcceptsWhatConcreteExecutionRefutes) {
  auto M = parseModule(Src);
  ASSERT_TRUE(M.hasValue()) << M.error().render();
  Function *F = M.value()->getMainFunction();

  VerifyOptions Opts;
  Opts.FalsifyTrials = 0; // the falsifier WOULD catch this; isolate the
                          // bounded symbolic core, as §VI does for Alive2
  auto R = verifyCandidateText(*F, TgtWrongBeyondBound, Opts);
  ASSERT_EQ(R.Status, VerifyStatus::Equivalent)
      << "expected the documented bounded-TV acceptance, got:\n"
      << R.Diagnostic;
  EXPECT_TRUE(R.BoundedOnly) << "the bounded caveat must be reported";

  // Concrete execution at n = 10 exposes the divergence the bounded proof
  // cannot see.
  auto MT = parseModule(TgtWrongBeyondBound);
  auto A = interpret(*F, {APInt64(32, 10)});
  auto B = interpret(*MT.value()->getMainFunction(), {APInt64(32, 10)});
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_NE(A.RetVal.zext(), B.RetVal.zext());
}

TEST(BoundedLimit, FalsificationPrePassCompensatesInPractice) {
  // With the default falsification trials on, the same wrong pair is
  // refuted before the bounded proof can bless it — the engineering
  // mitigation this reproduction layers on top of the Alive2 design.
  auto M = parseModule(Src);
  Function *F = M.value()->getMainFunction();
  auto R = verifyCandidateText(*F, TgtWrongBeyondBound); // defaults
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent) << R.Diagnostic;
  EXPECT_TRUE(R.FoundByFalsification);
}

TEST(BoundedLimit, StrictLoopsRefusesToBlessBoundedProofs) {
  auto M = parseModule(Src);
  Function *F = M.value()->getMainFunction();
  VerifyOptions Opts;
  Opts.StrictLoops = true;
  Opts.FalsifyTrials = 0;
  auto R = verifyCandidateText(*F, TgtWrongBeyondBound, Opts);
  EXPECT_EQ(R.Status, VerifyStatus::Inconclusive);
  EXPECT_EQ(R.Kind, DiagKind::LoopBound);
}

TEST(BoundedLimit, RaisingTheBoundRestoresSoundness) {
  // With a bound covering the whole input range the proof becomes real;
  // here the loop caps at 100 iterations, so 128 visits suffice and the
  // wrong target is refuted purely symbolically.
  auto M = parseModule(Src);
  Function *F = M.value()->getMainFunction();
  VerifyOptions Opts;
  Opts.FalsifyTrials = 0;
  Opts.MaxBlockVisitsPerPath = 128;
  Opts.MaxPaths = 512;
  Opts.MaxStepsPerPath = 1 << 16;
  auto R = verifyCandidateText(*F, TgtWrongBeyondBound, Opts);
  EXPECT_EQ(R.Status, VerifyStatus::NotEquivalent) << R.Diagnostic;
}

} // namespace
} // namespace veriopt
