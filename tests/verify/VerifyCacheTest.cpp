//===- VerifyCacheTest.cpp - Verification memo unit tests ------------------===//

#include "verify/VerifyCache.h"

#include "ir/Parser.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

const char *SrcIR = "define i32 @f(i32 %x) {\n  %y = mul i32 %x, 2\n"
                    "  ret i32 %y\n}\n";
const char *GoodTgt = "define i32 @f(i32 %x) {\n  %y = shl i32 %x, 1\n"
                      "  ret i32 %y\n}\n";
const char *BadTgt = "define i32 @f(i32 %x) {\n  %y = mul i32 %x, 3\n"
                     "  ret i32 %y\n}\n";

struct Fixture {
  std::unique_ptr<Module> M;
  Function *Src;
  Fixture() {
    auto P = parseModule(SrcIR);
    EXPECT_TRUE(P.hasValue());
    M = P.takeValue();
    Src = M->getMainFunction();
  }
};

void expectSameResult(const VerifyResult &A, const VerifyResult &B) {
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.Diagnostic, B.Diagnostic);
  EXPECT_EQ(A.BoundedOnly, B.BoundedOnly);
  EXPECT_EQ(A.FoundByFalsification, B.FoundByFalsification);
  EXPECT_EQ(A.SolverConflicts, B.SolverConflicts);
  ASSERT_EQ(A.Counterexample.size(), B.Counterexample.size());
  for (size_t I = 0; I < A.Counterexample.size(); ++I) {
    EXPECT_EQ(A.Counterexample[I].Name, B.Counterexample[I].Name);
    EXPECT_EQ(A.Counterexample[I].Value, B.Counterexample[I].Value);
  }
}

TEST(VerifyCache, HitMissSemantics) {
  Fixture F;
  VerifyCache Cache;
  VerifyOptions Opts;

  auto R1 = Cache.verify(SrcIR, *F.Src, GoodTgt, Opts);
  EXPECT_EQ(Cache.counters().Misses, 1u);
  EXPECT_EQ(Cache.counters().Hits, 0u);

  auto R2 = Cache.verify(SrcIR, *F.Src, GoodTgt, Opts);
  EXPECT_EQ(Cache.counters().Misses, 1u);
  EXPECT_EQ(Cache.counters().Hits, 1u);
  expectSameResult(R1, R2);

  // A different candidate is a fresh miss.
  Cache.verify(SrcIR, *F.Src, BadTgt, Opts);
  EXPECT_EQ(Cache.counters().Misses, 2u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(VerifyCache, MatchesUncachedResults) {
  Fixture F;
  VerifyCache Cache;
  VerifyOptions Opts;
  for (const char *Tgt : {GoodTgt, BadTgt, "syntactically broken"}) {
    VerifyResult Plain = verifyCandidateText(*F.Src, Tgt, Opts);
    VerifyResult Miss = Cache.verify(SrcIR, *F.Src, Tgt, Opts);
    VerifyResult Hit = Cache.verify(SrcIR, *F.Src, Tgt, Opts);
    expectSameResult(Plain, Miss);
    expectSameResult(Plain, Hit);
  }
}

TEST(VerifyCache, CanonicalKeyCollapsesCosmeticVariants) {
  Fixture F;
  VerifyCache Cache;
  VerifyOptions Opts;
  Cache.verify(SrcIR, *F.Src, GoodTgt, Opts);
  // Same IR with different whitespace and value names: one entry.
  std::string Renamed = "define i32 @f(i32 %x)  {\n\n  %zz = shl i32 %x, 1\n"
                        "  ret i32   %zz\n}\n";
  auto R = Cache.verify(SrcIR, *F.Src, Renamed, Opts);
  EXPECT_EQ(Cache.counters().Hits, 1u);
  EXPECT_EQ(Cache.counters().Misses, 1u);
  EXPECT_EQ(R.Status, VerifyStatus::Equivalent);
}

TEST(VerifyCache, OptionsArePartOfTheKey) {
  Fixture F;
  VerifyCache Cache;
  VerifyOptions A, B;
  B.FalsifyTrials = A.FalsifyTrials + 1;
  Cache.verify(SrcIR, *F.Src, BadTgt, A);
  Cache.verify(SrcIR, *F.Src, BadTgt, B);
  EXPECT_EQ(Cache.counters().Misses, 2u);
}

TEST(VerifyCache, EvictsLeastRecentlyUsed) {
  Fixture F;
  VerifyCache Cache(/*Capacity=*/2);
  VerifyOptions Opts;
  const char *Tgt3 = "define i32 @f(i32 %x) {\n  %y = add i32 %x, %x\n"
                     "  ret i32 %y\n}\n";
  Cache.verify(SrcIR, *F.Src, GoodTgt, Opts); // miss
  Cache.verify(SrcIR, *F.Src, BadTgt, Opts);  // miss
  Cache.verify(SrcIR, *F.Src, GoodTgt, Opts); // hit: GoodTgt now MRU
  Cache.verify(SrcIR, *F.Src, Tgt3, Opts);    // miss: evicts BadTgt
  EXPECT_EQ(Cache.counters().Evictions, 1u);
  EXPECT_EQ(Cache.size(), 2u);
  Cache.verify(SrcIR, *F.Src, GoodTgt, Opts); // still resident
  EXPECT_EQ(Cache.counters().Hits, 2u);
  Cache.verify(SrcIR, *F.Src, BadTgt, Opts); // evicted: a miss again
  EXPECT_EQ(Cache.counters().Misses, 4u);
}

TEST(VerifyCache, ConcurrentLookupsAgree) {
  Fixture F;
  VerifyCache Cache;
  VerifyOptions Opts;
  VerifyResult Expected[2] = {verifyCandidateText(*F.Src, GoodTgt, Opts),
                              verifyCandidateText(*F.Src, BadTgt, Opts)};

  constexpr size_t N = 64;
  std::vector<VerifyResult> Results(N);
  ThreadPool Pool(4);
  Pool.parallelFor(N, [&](size_t I) {
    const char *Tgt = (I % 2) ? BadTgt : GoodTgt;
    Results[I] = Cache.verify(SrcIR, *F.Src, Tgt, Opts);
  });

  for (size_t I = 0; I < N; ++I)
    expectSameResult(Results[I], Expected[I % 2]);
  auto C = Cache.counters();
  EXPECT_EQ(C.lookups(), N);
  // Each distinct candidate is computed at most... exactly twice total:
  // single-flight joins every concurrent duplicate onto one computation.
  EXPECT_EQ(C.Misses, 2u);
  EXPECT_EQ(C.Hits, N - 2);
  EXPECT_DOUBLE_EQ(C.hitRate(), static_cast<double>(N - 2) / N);
}

} // namespace
} // namespace veriopt
