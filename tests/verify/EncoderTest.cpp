//===- EncoderTest.cpp - Symbolic-executor soundness properties ------------===//
//
// The verifier is only as sound as its encoder. These property tests pin
// the symbolic semantics against the concrete interpreter:
//  - differential: for random generated functions and random inputs, the
//    encoding evaluated at those inputs must agree with the interpreter on
//    the return value, poison flag, and UB;
//  - mutation soundness: corrupting a verified-equivalent pair must never
//    produce a false "Equivalent" when concrete execution disagrees.
//
//===----------------------------------------------------------------------===//

#include "verify/Encoder.h"

#include "data/MiniC.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "opt/Pass.h"
#include "verify/AliveLite.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

class EncoderDifferential : public ::testing::TestWithParam<int> {};

TEST_P(EncoderDifferential, MatchesInterpreter) {
  uint64_t Seed = 5000 + GetParam();
  RNG R(Seed);
  auto MC = generateMiniC(R, "f");
  auto M = lowerToO0(*MC);
  Function *F = M->getMainFunction();

  BVContext Ctx;
  ExternalWorld World;
  std::vector<const BVExpr *> ArgVars;
  for (unsigned I = 0; I < F->getNumParams(); ++I)
    ArgVars.push_back(Ctx.var(F->getParamType(I)->getBitWidth(),
                              "a" + std::to_string(I)));
  EncodeLimits Limits;
  FnEncoding Enc = encodeFunction(*F, Ctx, ArgVars, World, Limits);
  ASSERT_FALSE(Enc.Unsupported) << Enc.UnsupportedWhy;

  RNG InputR(Seed ^ 0xBEEF);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::vector<APInt64> Args;
    std::unordered_map<unsigned, APInt64> Model;
    for (unsigned I = 0; I < F->getNumParams(); ++I) {
      APInt64 V(F->getParamType(I)->getBitWidth(), InputR.next());
      Args.push_back(V);
      Model[ArgVars[I]->VarId] = V;
    }
    ExecResult Concrete = interpret(*F, Args);
    if (Concrete.St == ExecResult::Timeout ||
        Concrete.St == ExecResult::Unsupported)
      continue;

    // Skip inputs outside the unroll bound.
    if (Ctx.evaluate(Enc.Truncated, Model).isOne())
      continue;

    bool SymUB = Ctx.evaluate(Enc.UB, Model).isOne();
    // External calls: the interpreter's synthetic world differs from the
    // all-zeros default valuation of the encoder's call variables, so only
    // call-free functions are compared on values. UB agreement still holds
    // when UB precedes any call.
    bool HasCalls = !Enc.Calls.empty();
    if (Concrete.St == ExecResult::UndefinedBehavior) {
      if (!HasCalls)
        EXPECT_TRUE(SymUB)
            << "interpreter hit UB (" << Concrete.Reason
            << ") but the encoding claims defined, seed " << Seed << "\n"
            << printFunction(*F);
      continue;
    }
    if (HasCalls)
      continue;
    EXPECT_FALSE(SymUB) << "encoding claims UB where the interpreter is "
                           "defined, seed "
                        << Seed;
    if (SymUB || F->getReturnType()->isVoid())
      continue;

    const BVExpr *Ret = Enc.returnTerm(Ctx);
    const BVExpr *Poison = Enc.returnPoison(Ctx);
    ASSERT_NE(Ret, nullptr);
    EXPECT_EQ(Ctx.evaluate(Poison, Model).isOne(), Concrete.RetPoison)
        << "poison flag mismatch, seed " << Seed;
    if (!Concrete.RetPoison)
      EXPECT_EQ(Ctx.evaluate(Ret, Model), Concrete.RetVal)
          << "return value mismatch, seed " << Seed << " trial " << Trial
          << "\n"
          << printFunction(*F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderDifferential, ::testing::Range(0, 30));

/// Mutation soundness: break a correct pair in a known-semantic way; the
/// verifier must never say Equivalent when the interpreter can already
/// tell the two apart.
class MutationSoundness : public ::testing::TestWithParam<int> {};

TEST_P(MutationSoundness, NoFalseEquivalence) {
  uint64_t Seed = 8000 + GetParam();
  RNG R(Seed);
  auto MC = generateMiniC(R, "f");
  auto M = lowerToO0(*MC);
  Function *Src = M->getMainFunction();
  auto Mutant = Src->clone();
  runReferencePipeline(*Mutant);

  // Mutate: flip the first icmp predicate, else perturb a constant.
  bool Mutated = false;
  for (auto &BB : *Mutant) {
    for (auto &I : *BB) {
      if (auto *C = dyn_cast<ICmpInst>(I.get())) {
        C->setPredicate(invertedPred(C->getPredicate()));
        Mutated = true;
        break;
      }
    }
    if (Mutated)
      break;
  }
  if (!Mutated) {
    for (auto &BB : *Mutant) {
      for (auto &I : *BB) {
        for (unsigned Op = 0; Op < I->getNumOperands(); ++Op)
          if (auto *C = dyn_cast<ConstantInt>(I->getOperand(Op))) {
            I->setOperand(
                Op, Mutant->getConstant(
                        C->getType(),
                        C->getValue().add(APInt64::one(
                            C->getValue().width()))));
            Mutated = true;
            break;
          }
        if (Mutated)
          break;
      }
      if (Mutated)
        break;
    }
  }
  if (!Mutated)
    GTEST_SKIP() << "nothing to mutate";

  // Does concrete execution distinguish them?
  bool ConcretelyDifferent = false;
  RNG InputR(Seed ^ 0xF00D);
  for (int Trial = 0; Trial < 40 && !ConcretelyDifferent; ++Trial) {
    std::vector<APInt64> Args;
    for (unsigned I = 0; I < Src->getNumParams(); ++I)
      Args.push_back(
          APInt64(Src->getParamType(I)->getBitWidth(), InputR.next()));
    auto A = interpret(*Src, Args);
    auto B = interpret(*Mutant, Args);
    if (A.St != ExecResult::Ok || A.RetPoison || B.St != ExecResult::Ok)
      continue;
    if (!A.IsVoid && !B.RetPoison && A.RetVal != B.RetVal)
      ConcretelyDifferent = true;
    if (B.RetPoison && !A.RetPoison)
      ConcretelyDifferent = true;
  }

  auto VR = verifyRefinement(*Src, *Mutant);
  if (ConcretelyDifferent)
    EXPECT_NE(VR.Status, VerifyStatus::Equivalent)
        << "FALSE EQUIVALENCE on seed " << Seed << "\nsource:\n"
        << printFunction(*Src) << "mutant:\n"
        << printFunction(*Mutant);
  // Either way, the verifier must return *something* coherent.
  EXPECT_NE(VR.Diagnostic, "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSoundness, ::testing::Range(0, 25));

TEST(ExternalWorldTest, SharedReturnVariables) {
  BVContext Ctx;
  ExternalWorld W;
  const BVExpr *A = W.callReturn(Ctx, "foo", 0, 32);
  const BVExpr *B = W.callReturn(Ctx, "foo", 0, 32);
  const BVExpr *C = W.callReturn(Ctx, "foo", 1, 32);
  const BVExpr *D = W.callReturn(Ctx, "bar", 0, 32);
  EXPECT_EQ(A, B); // same callee+index: the same world
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
  EXPECT_EQ(W.vars().size(), 3u);
}

} // namespace
} // namespace veriopt
