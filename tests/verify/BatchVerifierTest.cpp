//===- BatchVerifierTest.cpp - Batched vs sequential differential ---------===//
//
// The batch path's contract is bit-identity with the sequential oracle:
// for every candidate, verdict, diagnostic kind and text, counterexample,
// summed solver conflicts, fuel spent, and retry tier must equal what a
// fresh RobustVerifier::verify would have produced — at any thread count,
// under fault injection, and with arbitrary cache-hit interleavings.
//
//===----------------------------------------------------------------------===//

#include "verify/BatchVerifier.h"

#include "ir/Parser.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  const Function *F;
  std::string Text;
  explicit Parsed(const std::string &Src) : Text(Src) {
    auto R = parseModule(Src);
    EXPECT_TRUE(R.hasValue()) << R.error().render();
    M = R.takeValue();
    F = M->getMainFunction();
  }
};

const char *AddSrc = "define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                     "  ret i32 %y\n}\n";
const char *MulSrc = "define i32 @f(i32 %x, i32 %y) {\n"
                     "  %m = mul i32 %x, %y\n  ret i32 %m\n}\n";

/// A representative GRPO group: correct rewrites, a renamed duplicate, a
/// wrong candidate, a byte-identical repeat, unparseable text, and a
/// candidate whose verdict needs real SMT search.
std::vector<std::string> addGroup() {
  return {
      // equivalent: x+1 via different instruction name (renaming dup)
      "define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n  ret i32 %y\n}\n",
      "define i32 @f(i32 %x) {\n  %z = add i32 %x, 1\n  ret i32 %z\n}\n",
      // equivalent: 1+x (commuted, needs the solver or falsification)
      "define i32 @f(i32 %x) {\n  %y = add i32 1, %x\n  ret i32 %y\n}\n",
      // wrong: x+2, counterexample expected
      "define i32 @f(i32 %x) {\n  %y = add i32 %x, 2\n  ret i32 %y\n}\n",
      // byte-identical repeat of the first candidate
      "define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n  ret i32 %y\n}\n",
      // unparseable
      "define i32 @f(i32 %x) {\n  %y = frobnicate i32 %x\n  ret i32 %y\n}\n",
      // sub of negative constant (equivalent, different opcode)
      "define i32 @f(i32 %x) {\n  %y = sub i32 %x, -1\n  ret i32 %y\n}\n",
      // wrong: returns the input
      "define i32 @f(i32 %x) {\n  ret i32 %x\n}\n",
  };
}

std::vector<std::string> mulGroup() {
  return {
      "define i32 @f(i32 %x, i32 %y) {\n  %m = mul i32 %x, %y\n"
      "  ret i32 %m\n}\n",
      // commuted: UNSAT proof needs real conflicts under a small budget
      "define i32 @f(i32 %x, i32 %y) {\n  %m = mul i32 %y, %x\n"
      "  ret i32 %m\n}\n",
      // wrong: add instead of mul
      "define i32 @f(i32 %x, i32 %y) {\n  %m = add i32 %x, %y\n"
      "  ret i32 %m\n}\n",
  };
}

/// The oracle: a fresh cacheless RobustVerifier per candidate, exactly what
/// the scoring path runs with batching off.
std::vector<VerifyResult> sequentialOracle(const Parsed &Src,
                                           const std::vector<std::string> &Ts,
                                           const RobustVerifyOptions &O,
                                           FaultInjector *FI = nullptr) {
  std::vector<VerifyResult> Out;
  for (const std::string &T : Ts) {
    RobustVerifier RV(O, nullptr, FI);
    Out.push_back(RV.verify(Src.Text, *Src.F, T).Result);
  }
  return Out;
}

void expectIdentical(const std::vector<VerifyResult> &Got,
                     const std::vector<VerifyResult> &Want) {
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Got.size(); ++I) {
    EXPECT_EQ(Got[I].Status, Want[I].Status) << "candidate " << I;
    EXPECT_EQ(Got[I].Kind, Want[I].Kind) << "candidate " << I;
    EXPECT_EQ(Got[I].Diagnostic, Want[I].Diagnostic) << "candidate " << I;
    EXPECT_EQ(Got[I].BoundedOnly, Want[I].BoundedOnly) << "candidate " << I;
    EXPECT_EQ(Got[I].FoundByFalsification, Want[I].FoundByFalsification)
        << "candidate " << I;
    EXPECT_EQ(Got[I].SolverConflicts, Want[I].SolverConflicts)
        << "candidate " << I;
    EXPECT_EQ(Got[I].FuelSpent, Want[I].FuelSpent) << "candidate " << I;
    EXPECT_EQ(Got[I].RetryTier, Want[I].RetryTier) << "candidate " << I;
    ASSERT_EQ(Got[I].Counterexample.size(), Want[I].Counterexample.size())
        << "candidate " << I;
    for (size_t J = 0; J < Got[I].Counterexample.size(); ++J) {
      EXPECT_EQ(Got[I].Counterexample[J].Name, Want[I].Counterexample[J].Name);
      EXPECT_EQ(Got[I].Counterexample[J].Value,
                Want[I].Counterexample[J].Value);
    }
  }
}

RobustVerifyOptions defaultLadder() {
  RobustVerifyOptions O;
  O.MaxTiers = 3;
  O.BudgetGrowth = 4;
  return O;
}

TEST(BatchVerifier, MatchesSequentialOracleBitForBit) {
  Parsed Src(AddSrc);
  RobustVerifyOptions O = defaultLadder();
  auto Want = sequentialOracle(Src, addGroup(), O);

  VerifyCache Cache(256);
  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache);
  BatchVerifier::GroupStats GS;
  auto Got = BV.verifyGroup(Src.Text, *Src.F, addGroup(), &GS);

  expectIdentical(Got, Want);
  EXPECT_EQ(GS.Candidates, 8u);
  // The byte-identical repeat and the renamed duplicate both collapse.
  EXPECT_EQ(GS.Unique, 6u);
  EXPECT_EQ(GS.CacheHits, 0u); // cold cache
  EXPECT_GT(GS.Computed, 0u);
}

TEST(BatchVerifier, EscalatingLadderMatchesSequential) {
  // Starved tier 0 forces escalations; RetryTier and the summed conflict /
  // fuel accounting must match the sequential ladder exactly.
  Parsed Src(MulSrc);
  RobustVerifyOptions O;
  O.Base.FalsifyTrials = 0;
  O.Base.SolverConflictBudget = 60;
  O.MaxTiers = 3;
  O.BudgetGrowth = 16;
  auto Want = sequentialOracle(Src, mulGroup(), O);
  bool SawEscalation = false;
  for (const auto &R : Want)
    SawEscalation |= (R.RetryTier > 0);
  EXPECT_TRUE(SawEscalation) << "corpus no longer exercises the ladder";

  VerifyCache Cache(256);
  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache);
  auto Got = BV.verifyGroup(Src.Text, *Src.F, mulGroup());
  expectIdentical(Got, Want);
}

TEST(BatchVerifier, ThreadCountInvariance) {
  Parsed Src(AddSrc);
  RobustVerifyOptions O = defaultLadder();

  VerifyCache C1(256);
  BatchVerifier::Options B1;
  B1.Robust = O;
  BatchVerifier BV1(B1, &C1);
  auto Sequential = BV1.verifyGroup(Src.Text, *Src.F, addGroup());

  ThreadPool Pool(4);
  VerifyCache C4(256);
  BatchVerifier::Options B4;
  B4.Robust = O;
  B4.Pool = &Pool;
  B4.Threads = 4;
  BatchVerifier BV4(B4, &C4);
  auto Threaded = BV4.verifyGroup(Src.Text, *Src.F, addGroup());

  expectIdentical(Threaded, Sequential);
}

TEST(BatchVerifier, SeedsCacheSoScoringReplaysWithoutComputing) {
  Parsed Src(AddSrc);
  RobustVerifyOptions O = defaultLadder();
  VerifyCache Cache(256);
  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache);
  auto Batch = BV.verifyGroup(Src.Text, *Src.F, addGroup());

  // The scoring pass replays the ladder through the same cache: every rung
  // must hit, and the replayed outcome must equal the batch result.
  uint64_t MissesBefore = Cache.counters().Misses;
  RobustVerifier RV(O, &Cache);
  std::vector<std::string> Group = addGroup();
  for (size_t I = 0; I < Group.size(); ++I) {
    auto Out = RV.verify(Src.Text, *Src.F, Group[I]);
    EXPECT_EQ(Out.Result.Status, Batch[I].Status) << "candidate " << I;
    EXPECT_EQ(Out.Result.Diagnostic, Batch[I].Diagnostic) << "candidate " << I;
    EXPECT_EQ(Out.Result.SolverConflicts, Batch[I].SolverConflicts);
    EXPECT_EQ(Out.Result.FuelSpent, Batch[I].FuelSpent);
    EXPECT_EQ(Out.Result.RetryTier, Batch[I].RetryTier);
  }
  EXPECT_EQ(Cache.counters().Misses, MissesBefore)
      << "scoring recomputed a rung the batch should have seeded";
  EXPECT_GT(Cache.counters().Hits, 0u);
}

TEST(BatchVerifier, CacheHitInterleavingsStayIdentical) {
  // Pre-warm the cache with a *subset* of the group through the normal
  // sequential path, then batch the full group: served-from-cache and
  // computed-in-batch members must both match the oracle.
  Parsed Src(AddSrc);
  RobustVerifyOptions O = defaultLadder();
  auto Want = sequentialOracle(Src, addGroup(), O);

  VerifyCache Cache(256);
  RobustVerifier Warm(O, &Cache);
  std::vector<std::string> Group = addGroup();
  Warm.verify(Src.Text, *Src.F, Group[2]);
  Warm.verify(Src.Text, *Src.F, Group[3]);

  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache);
  BatchVerifier::GroupStats GS;
  auto Got = BV.verifyGroup(Src.Text, *Src.F, Group, &GS);
  expectIdentical(Got, Want);
  EXPECT_GT(GS.CacheHits, 0u);

  // A second batch of the same group is served entirely from the cache.
  BatchVerifier::GroupStats GS2;
  auto Again = BV.verifyGroup(Src.Text, *Src.F, Group, &GS2);
  expectIdentical(Again, Want);
  EXPECT_EQ(GS2.Computed, 0u);
}

TEST(BatchVerifier, OracleBudgetFaultMirrorsSequential) {
  Parsed Src(AddSrc);
  RobustVerifyOptions O = defaultLadder();
  FaultInjector FIa(5), FIb(5);
  FIa.enable(FaultSite::OracleBudget, 0.5);
  FIb.enable(FaultSite::OracleBudget, 0.5);
  auto Want = sequentialOracle(Src, addGroup(), O, &FIa);

  VerifyCache Cache(256);
  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache, &FIb);
  auto Got = BV.verifyGroup(Src.Text, *Src.F, addGroup());
  expectIdentical(Got, Want);
  // At 50% some queries must actually have been injected (seed-dependent
  // but deterministic; guards against the fault site silently not firing).
  EXPECT_GT(FIb.counters().injected(FaultSite::OracleBudget), 0u);
}

TEST(BatchVerifier, VerdictFlipFaultMirrorsSequential) {
  Parsed Src(AddSrc);
  RobustVerifyOptions O = defaultLadder();
  FaultInjector FIa(7), FIb(7);
  FIa.enable(FaultSite::VerdictFlip, 1.0);
  FIb.enable(FaultSite::VerdictFlip, 1.0);
  auto Want = sequentialOracle(Src, addGroup(), O, &FIa);

  VerifyCache Cache(256);
  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache, &FIb);
  auto Got = BV.verifyGroup(Src.Text, *Src.F, addGroup());
  expectIdentical(Got, Want);
  EXPECT_GT(FIb.counters().injected(FaultSite::VerdictFlip), 0u);
}

TEST(BatchVerifier, InjectedCacheMissesDoNotChangeVerdicts) {
  Parsed Src(AddSrc);
  RobustVerifyOptions O = defaultLadder();
  auto Want = sequentialOracle(Src, addGroup(), O);

  FaultInjector FI(11);
  FI.enable(FaultSite::CacheMiss, 0.5);
  VerifyCache Cache(256);
  Cache.setFaultInjector(&FI);
  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache, &FI);
  auto Got = BV.verifyGroup(Src.Text, *Src.F, addGroup());
  expectIdentical(Got, Want);
  // And the poisoned cache still replays correct verdicts sequentially.
  RobustVerifier RV(O, &Cache, &FI);
  std::vector<std::string> Group = addGroup();
  for (size_t I = 0; I < Group.size(); ++I)
    EXPECT_EQ(RV.verify(Src.Text, *Src.F, Group[I]).Result.Status,
              Want[I].Status);
}

TEST(BatchVerifier, PointerSourceStaysInconclusive) {
  // Unsupported sources short-circuit before any encoding is shared; the
  // batch must not crash on a group whose source has no QueryPrefix.
  Parsed Src("define i32 @f(ptr %p) {\n  ret i32 0\n}\n");
  RobustVerifyOptions O = defaultLadder();
  auto Want = sequentialOracle(Src, {Src.Text, Src.Text}, O);
  VerifyCache Cache(64);
  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache);
  auto Got = BV.verifyGroup(Src.Text, *Src.F, {Src.Text, Src.Text});
  expectIdentical(Got, Want);
  EXPECT_EQ(Got[0].Status, VerifyStatus::Inconclusive);
  EXPECT_EQ(Got[0].Kind, DiagKind::Unsupported);
}

TEST(BatchVerifier, FuelStarvedLaddersMatchSequential) {
  // Fuel exhaustion must land on exactly the same charge in the shared
  // encoding's replay as in a fresh sequential run (the fuel-trace
  // mechanism), across tiers that progressively unstarve.
  Parsed Src(AddSrc);
  RobustVerifyOptions O;
  O.Base.FuelBudget = 8; // dies during falsification at tier 0
  O.MaxTiers = 3;
  O.BudgetGrowth = 100000;
  auto Want = sequentialOracle(Src, addGroup(), O);
  VerifyCache Cache(256);
  BatchVerifier::Options BO;
  BO.Robust = O;
  BatchVerifier BV(BO, &Cache);
  auto Got = BV.verifyGroup(Src.Text, *Src.F, addGroup());
  expectIdentical(Got, Want);
}

} // namespace
} // namespace veriopt
