//===- RobustVerifierTest.cpp - Escalating-budget retry ladder ------------===//

#include "verify/RobustVerifier.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

namespace veriopt {
namespace {

const char *SimpleSrc = "define i32 @f(i32 %x) {\n  %y = add i32 %x, 1\n"
                        "  ret i32 %y\n}\n";
const char *WrongTgt = "define i32 @f(i32 %x) {\n  %y = add i32 %x, 2\n"
                       "  ret i32 %y\n}\n";
const char *MulSrc = "define i32 @f(i32 %x, i32 %y) {\n"
                     "  %m = mul i32 %x, %y\n  ret i32 %m\n}\n";
const char *MulTgt = "define i32 @f(i32 %x, i32 %y) {\n"
                     "  %m = mul i32 %y, %x\n  ret i32 %m\n}\n";

struct Parsed {
  std::unique_ptr<Module> M;
  const Function *F;
  std::string Text;
  explicit Parsed(const char *Src) : Text(Src) {
    auto R = parseModule(Src);
    EXPECT_TRUE(R.hasValue()) << R.error().render();
    M = R.takeValue();
    F = M->getMainFunction();
  }
};

TEST(RobustVerifier, TierOptionsScaleGeometrically) {
  RobustVerifyOptions O;
  O.Base.SolverConflictBudget = 10;
  O.Base.FuelBudget = 100;
  O.Base.FalsifyTrials = 7;
  O.BudgetGrowth = 4;
  O.MaxTiers = 3;
  RobustVerifier RV(O);
  EXPECT_EQ(RV.tierOptions(0).SolverConflictBudget, 10u);
  EXPECT_EQ(RV.tierOptions(1).SolverConflictBudget, 40u);
  EXPECT_EQ(RV.tierOptions(2).SolverConflictBudget, 160u);
  EXPECT_EQ(RV.tierOptions(0).FuelBudget, 100u);
  EXPECT_EQ(RV.tierOptions(2).FuelBudget, 1600u);
  // Only the budget knobs scale; semantics knobs stay fixed.
  EXPECT_EQ(RV.tierOptions(2).FalsifyTrials, 7u);
  EXPECT_EQ(RV.tierOptions(2).MaxPaths, O.Base.MaxPaths);
}

TEST(RobustVerifier, UnlimitedBudgetsStayUnlimited) {
  RobustVerifyOptions O;
  O.Base.SolverConflictBudget = 0;
  O.Base.FuelBudget = 0;
  O.BudgetGrowth = 16;
  RobustVerifier RV(O);
  EXPECT_EQ(RV.tierOptions(2).SolverConflictBudget, 0u);
  EXPECT_EQ(RV.tierOptions(2).FuelBudget, 0u);
}

TEST(RobustVerifier, ScalingSaturatesInsteadOfOverflowing) {
  RobustVerifyOptions O;
  O.Base.SolverConflictBudget = UINT64_MAX / 2;
  O.BudgetGrowth = 1000;
  RobustVerifier RV(O);
  EXPECT_EQ(RV.tierOptions(3).SolverConflictBudget, UINT64_MAX);
}

TEST(RobustVerifier, DefinitiveVerdictNeverEscalates) {
  Parsed Src(SimpleSrc);
  RobustVerifyOptions O;
  RobustVerifier RV(O);

  auto Eq = RV.verify(Src.Text, *Src.F, SimpleSrc);
  EXPECT_EQ(Eq.Result.Status, VerifyStatus::Equivalent);
  EXPECT_EQ(Eq.Tiers.size(), 1u);
  EXPECT_EQ(Eq.Result.RetryTier, 0u);
  EXPECT_FALSE(Eq.Escalated);

  auto Ne = RV.verify(Src.Text, *Src.F, WrongTgt);
  EXPECT_EQ(Ne.Result.Status, VerifyStatus::NotEquivalent);
  EXPECT_EQ(Ne.Tiers.size(), 1u);

  auto C = RV.counters();
  EXPECT_EQ(C.Queries, 2u);
  EXPECT_EQ(C.Escalations, 0u);
  EXPECT_EQ(C.TerminalInconclusive, 0u);
}

TEST(RobustVerifier, NonBudgetInconclusiveNeverRetried) {
  // Unsupported: a bigger budget cannot make pointer params verifiable.
  Parsed Src("define i32 @f(ptr %p) {\n  ret i32 0\n}\n");
  RobustVerifyOptions O;
  O.MaxTiers = 3;
  RobustVerifier RV(O);
  auto Out = RV.verify(Src.Text, *Src.F, Src.Text);
  EXPECT_EQ(Out.Result.Status, VerifyStatus::Inconclusive);
  EXPECT_EQ(Out.Result.Kind, DiagKind::Unsupported);
  EXPECT_EQ(Out.Tiers.size(), 1u);
  EXPECT_FALSE(Out.Escalated);
}

TEST(RobustVerifier, EscalationRescuesFuelExhaustion) {
  Parsed Src(SimpleSrc);
  RobustVerifyOptions O;
  O.Base.FuelBudget = 8; // too small even for the falsification pre-pass
  O.BudgetGrowth = 100000;
  O.MaxTiers = 3;
  RobustVerifier RV(O);
  auto Out = RV.verify(Src.Text, *Src.F, SimpleSrc);
  ASSERT_GE(Out.Tiers.size(), 2u);
  EXPECT_EQ(Out.Tiers[0].Status, VerifyStatus::Inconclusive);
  EXPECT_EQ(Out.Tiers[0].Kind, DiagKind::ResourceExhausted);
  EXPECT_EQ(Out.Result.Status, VerifyStatus::Equivalent)
      << Out.Result.Diagnostic;
  EXPECT_TRUE(Out.Escalated);
  EXPECT_GE(Out.Result.RetryTier, 1u);

  auto C = RV.counters();
  EXPECT_EQ(C.Escalations, 1u);
  EXPECT_EQ(C.Rescued, 1u);
  EXPECT_EQ(C.TerminalInconclusive, 0u);
}

TEST(RobustVerifier, TerminalInconclusiveWhenTopTierStillTooSmall) {
  Parsed Src(MulSrc);
  RobustVerifyOptions O;
  O.Base.FalsifyTrials = 0;
  O.Base.SolverConflictBudget = 2;
  O.BudgetGrowth = 2; // 2, 4, 8 conflicts: all hopeless for a 32x32 mul
  O.MaxTiers = 3;
  RobustVerifier RV(O);
  auto Out = RV.verify(Src.Text, *Src.F, MulTgt);
  EXPECT_EQ(Out.Result.Status, VerifyStatus::Inconclusive);
  EXPECT_EQ(Out.Result.Kind, DiagKind::SolverTimeout);
  EXPECT_EQ(Out.Tiers.size(), 3u);
  EXPECT_EQ(Out.Result.RetryTier, 2u);
  EXPECT_TRUE(Out.Escalated);

  // Telemetry is summed over every rung actually run.
  uint64_t Sum = 0;
  for (const auto &T : Out.Tiers)
    Sum += T.SolverConflicts;
  EXPECT_EQ(Out.Result.SolverConflicts, Sum);

  auto C = RV.counters();
  EXPECT_EQ(C.Escalations, 1u);
  EXPECT_EQ(C.Rescued, 0u);
  EXPECT_EQ(C.TerminalInconclusive, 1u);
}

TEST(RobustVerifier, SingleTierLadderMatchesPlainVerifier) {
  Parsed Src(MulSrc);
  RobustVerifyOptions O;
  O.Base.FalsifyTrials = 0;
  O.Base.SolverConflictBudget = 5;
  O.MaxTiers = 1;
  RobustVerifier RV(O);
  auto Out = RV.verify(Src.Text, *Src.F, MulTgt);
  auto Plain = verifyCandidateText(*Src.F, MulTgt, O.Base);
  EXPECT_EQ(Out.Result.Status, Plain.Status);
  EXPECT_EQ(Out.Result.Kind, Plain.Kind);
  EXPECT_EQ(Out.Result.SolverConflicts, Plain.SolverConflicts);
  EXPECT_EQ(Out.Tiers.size(), 1u);
  EXPECT_FALSE(Out.Escalated);
  EXPECT_EQ(RV.counters().TerminalInconclusive, 1u);
}

TEST(RobustVerifier, CacheHitReplaysIdenticalTelemetry) {
  // Satellite (f): a cached replay of the ladder must report the same
  // per-tier outcomes and summed conflicts as the fresh run — each tier is
  // its own cache key, so low-tier Inconclusives never mask high-tier work.
  Parsed Src(SimpleSrc);
  VerifyCache Cache(64);
  RobustVerifyOptions O;
  O.Base.FuelBudget = 8;
  O.BudgetGrowth = 100000;
  O.MaxTiers = 3;
  RobustVerifier RV(O, &Cache);

  auto Fresh = RV.verify(Src.Text, *Src.F, SimpleSrc);
  auto Replay = RV.verify(Src.Text, *Src.F, SimpleSrc);
  EXPECT_GT(Cache.counters().Hits, 0u);

  ASSERT_EQ(Replay.Tiers.size(), Fresh.Tiers.size());
  for (size_t I = 0; I < Fresh.Tiers.size(); ++I) {
    EXPECT_EQ(Replay.Tiers[I].Status, Fresh.Tiers[I].Status);
    EXPECT_EQ(Replay.Tiers[I].Kind, Fresh.Tiers[I].Kind);
    EXPECT_EQ(Replay.Tiers[I].SolverConflicts, Fresh.Tiers[I].SolverConflicts);
    EXPECT_EQ(Replay.Tiers[I].FuelSpent, Fresh.Tiers[I].FuelSpent);
  }
  EXPECT_EQ(Replay.Result.Status, Fresh.Result.Status);
  EXPECT_EQ(Replay.Result.RetryTier, Fresh.Result.RetryTier);
  EXPECT_EQ(Replay.Result.SolverConflicts, Fresh.Result.SolverConflicts);
  EXPECT_EQ(Replay.Result.FuelSpent, Fresh.Result.FuelSpent);
  EXPECT_EQ(Replay.Escalated, Fresh.Escalated);
}

TEST(RobustVerifier, OracleBudgetFaultForcesEscalationAndRecovers) {
  Parsed Src(SimpleSrc);
  FaultInjector FI(5);
  FI.enable(FaultSite::OracleBudget, 1.0);
  RobustVerifyOptions O;
  O.MaxTiers = 3;
  RobustVerifier RV(O, nullptr, &FI);
  auto Out = RV.verify(Src.Text, *Src.F, SimpleSrc);
  ASSERT_GE(Out.Tiers.size(), 2u);
  EXPECT_TRUE(Out.Tiers[0].Injected);
  EXPECT_EQ(Out.Tiers[0].Kind, DiagKind::ResourceExhausted);
  EXPECT_EQ(Out.Tiers[0].SolverConflicts, 0u);
  EXPECT_FALSE(Out.Tiers[1].Injected);
  EXPECT_EQ(Out.Result.Status, VerifyStatus::Equivalent);
  EXPECT_TRUE(Out.FaultInjected);
  auto C = RV.counters();
  EXPECT_EQ(C.InjectedBudgetFaults, 1u);
  EXPECT_EQ(C.Rescued, 1u);
}

TEST(RobustVerifier, VerdictFlipFaultFlipsDefinitiveVerdicts) {
  Parsed Src(SimpleSrc);
  FaultInjector FI(5);
  FI.enable(FaultSite::VerdictFlip, 1.0);
  RobustVerifyOptions O;
  RobustVerifier RV(O, nullptr, &FI);

  auto Eq = RV.verify(Src.Text, *Src.F, SimpleSrc);
  EXPECT_EQ(Eq.Result.Status, VerifyStatus::NotEquivalent);
  EXPECT_TRUE(Eq.FaultInjected);
  EXPECT_NE(Eq.Result.Diagnostic.find("injected verdict flip"),
            std::string::npos);

  auto Ne = RV.verify(Src.Text, *Src.F, WrongTgt);
  EXPECT_EQ(Ne.Result.Status, VerifyStatus::Equivalent);
  EXPECT_TRUE(Ne.Result.Counterexample.empty());
  EXPECT_EQ(RV.counters().InjectedVerdictFlips, 2u);
}

TEST(RobustVerifier, InconclusiveVerdictsAreNeverFlipped) {
  Parsed Src("define i32 @f(ptr %p) {\n  ret i32 0\n}\n");
  FaultInjector FI(5);
  FI.enable(FaultSite::VerdictFlip, 1.0);
  RobustVerifyOptions O;
  RobustVerifier RV(O, nullptr, &FI);
  auto Out = RV.verify(Src.Text, *Src.F, Src.Text);
  EXPECT_EQ(Out.Result.Status, VerifyStatus::Inconclusive);
  EXPECT_FALSE(Out.FaultInjected);
  EXPECT_EQ(RV.counters().InjectedVerdictFlips, 0u);
}

TEST(RobustVerifier, DeterministicAcrossInstancesAndRepeats) {
  Parsed Src(MulSrc);
  RobustVerifyOptions O;
  O.Base.FalsifyTrials = 0;
  O.Base.SolverConflictBudget = 2;
  O.BudgetGrowth = 2;
  O.MaxTiers = 3;
  RobustVerifier A(O), B(O);
  auto OutA = A.verify(Src.Text, *Src.F, MulTgt);
  auto OutB = B.verify(Src.Text, *Src.F, MulTgt);
  auto OutA2 = A.verify(Src.Text, *Src.F, MulTgt);
  ASSERT_EQ(OutA.Tiers.size(), OutB.Tiers.size());
  for (size_t I = 0; I < OutA.Tiers.size(); ++I) {
    EXPECT_EQ(OutA.Tiers[I].SolverConflicts, OutB.Tiers[I].SolverConflicts);
    EXPECT_EQ(OutA.Tiers[I].SolverConflicts, OutA2.Tiers[I].SolverConflicts);
  }
  EXPECT_EQ(OutA.Result.Status, OutB.Result.Status);
  EXPECT_EQ(OutA.Result.SolverConflicts, OutA2.Result.SolverConflicts);
}

} // namespace
} // namespace veriopt
