//===- report.cpp - Run reports, A/B diffs, and bench regression gates ------===//
//
// The comparison CLI (workflow doc: docs/COMPARISON.md):
//
//   report <trace.jsonl> [--top N]           validate, then print the report
//   report <trace.jsonl> --validate          schema validation only
//   report --diff A.jsonl B.jsonl [--top N] [--gate-deterministic]
//   report --bench-diff BASE.json CUR.json [--tolerance-file T.json]
//          [--verbose]
//   report --help
//
// Exit codes (stable — CI scripts key on them):
//   0   success / no regression
//   64  usage error (unknown flag, missing operand)
//   2   input failure: unreadable file, malformed JSON/JSONL (including a
//       truncated trace), or a schema violation
//   3   regression: --bench-diff found an out-of-tolerance instrument, or
//       --gate-deterministic found a deterministic-plane divergence
//
//===----------------------------------------------------------------------===//

#include "report/BenchDiff.h"
#include "report/RunDiff.h"
#include "report/RunReport.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace veriopt;

namespace {

constexpr int ExitOk = 0;
constexpr int ExitUsage = 64;
constexpr int ExitInput = 2;
constexpr int ExitRegression = 3;

const char *HelpText = R"(usage:
  report <trace.jsonl> [--top N]      render the run report for one trace
  report <trace.jsonl> --validate     schema-validate only (CI gate)
  report --diff A.jsonl B.jsonl [--top N] [--gate-deterministic]
                                      compare two runs: deterministic-plane
                                      identity, reward curves, verdict/diag
                                      mix, retry ladder, cache efficacy, and
                                      per-span wall-time deltas
  report --bench-diff BASELINE.json CURRENT.json
         [--tolerance-file T.json] [--verbose]
                                      validate both BENCH_<name>.json files
                                      and compare under tolerance rules
  report --help                       this text

exit codes:
  0   success / no regression
  64  usage error
  2   unreadable or schema-invalid input (including truncated JSONL)
  3   regression (--bench-diff out of tolerance, or --gate-deterministic
      with diverged deterministic planes)

docs: docs/COMPARISON.md (workflow), docs/OBSERVABILITY.md (schemas)
)";

int usage(const char *Argv0, const char *Why) {
  if (Why)
    std::fprintf(stderr, "%s: %s\n", Argv0, Why);
  std::fprintf(stderr, "usage: %s --help\n", Argv0);
  return ExitUsage;
}

/// Load + schema-validate one trace, mapping both failure kinds to the
/// input exit code with a path-prefixed message.
bool loadRun(const std::string &Path, TraceLog &Log) {
  std::string Err;
  if (!loadTraceJsonl(Path, Log, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return false;
  }
  if (!validateTraceLog(Log, &Err)) {
    std::fprintf(stderr, "error: %s: schema violation: %s\n", Path.c_str(),
                 Err.c_str());
    return false;
  }
  return true;
}

int runReport(const std::string &Path, bool ValidateOnly, unsigned TopN) {
  TraceLog Log;
  if (!loadRun(Path, Log))
    return ExitInput;
  if (ValidateOnly) {
    std::printf("OK: %zu events conform to the trace schema\n",
                Log.Events.size());
    return ExitOk;
  }
  std::fputs(renderRunReport(Log, TopN).c_str(), stdout);
  return ExitOk;
}

int runDiff(const std::string &PathA, const std::string &PathB, unsigned TopN,
            bool GateDeterministic) {
  TraceLog LogA, LogB;
  if (!loadRun(PathA, LogA) || !loadRun(PathB, LogB))
    return ExitInput;
  RunDiff D = diffRuns(aggregateRun(LogA), aggregateRun(LogB));
  std::fputs(renderRunDiff(D, TopN).c_str(), stdout);
  if (GateDeterministic && !D.deterministicPlaneIdentical()) {
    std::fprintf(stderr,
                 "error: deterministic planes diverged (%zu keys differ); "
                 "same-seed runs must match\n",
                 D.DeterministicDeltas.size());
    return ExitRegression;
  }
  return ExitOk;
}

int runBenchDiff(const std::string &BasePath, const std::string &CurPath,
                 const std::string &TolPath, bool Verbose) {
  std::string Err;
  BenchReport Base, Cur;
  if (!loadBenchJson(BasePath, Base, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return ExitInput;
  }
  if (!loadBenchJson(CurPath, Cur, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return ExitInput;
  }
  ToleranceSpec Tol;
  if (!TolPath.empty() && !loadToleranceSpec(TolPath, Tol, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return ExitInput;
  }
  BenchDiff D;
  if (!compareBenchReports(Base, Cur, Tol, D, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return ExitInput;
  }
  std::fputs(renderBenchDiff(D, Verbose).c_str(), stdout);
  return D.hasRegression() ? ExitRegression : ExitOk;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Positional;
  bool ValidateOnly = false, DiffMode = false, BenchDiffMode = false;
  bool GateDeterministic = false, Verbose = false;
  unsigned TopN = 10;
  std::string TolPath;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      std::fputs(HelpText, stdout);
      return ExitOk;
    } else if (std::strcmp(Arg, "--validate") == 0) {
      ValidateOnly = true;
    } else if (std::strcmp(Arg, "--diff") == 0) {
      DiffMode = true;
    } else if (std::strcmp(Arg, "--bench-diff") == 0) {
      BenchDiffMode = true;
    } else if (std::strcmp(Arg, "--gate-deterministic") == 0) {
      GateDeterministic = true;
    } else if (std::strcmp(Arg, "--verbose") == 0) {
      Verbose = true;
    } else if (std::strcmp(Arg, "--tolerance-file") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0], "--tolerance-file needs a path");
      TolPath = argv[++I];
    } else if (std::strcmp(Arg, "--top") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0], "--top needs a count");
      TopN = static_cast<unsigned>(std::atoi(argv[++I]));
      if (TopN == 0)
        return usage(argv[0], "--top needs a positive count");
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      std::string Why = std::string("unknown flag '") + Arg + "'";
      return usage(argv[0], Why.c_str());
    } else {
      Positional.push_back(Arg);
    }
  }

  if (DiffMode && BenchDiffMode)
    return usage(argv[0], "--diff and --bench-diff are mutually exclusive");

  if (BenchDiffMode) {
    if (GateDeterministic || ValidateOnly)
      return usage(argv[0], "flag does not apply to --bench-diff");
    if (Positional.size() != 2)
      return usage(argv[0], "--bench-diff needs BASELINE.json CURRENT.json");
    return runBenchDiff(Positional[0], Positional[1], TolPath, Verbose);
  }
  if (DiffMode) {
    if (ValidateOnly || Verbose || !TolPath.empty())
      return usage(argv[0], "flag does not apply to --diff");
    if (Positional.size() != 2)
      return usage(argv[0], "--diff needs A.jsonl B.jsonl");
    return runDiff(Positional[0], Positional[1], TopN, GateDeterministic);
  }
  if (GateDeterministic || Verbose || !TolPath.empty())
    return usage(argv[0], "flag requires --diff or --bench-diff");
  if (Positional.size() != 1)
    return usage(argv[0], "need exactly one <trace.jsonl>");
  return runReport(Positional[0], ValidateOnly, TopN);
}
