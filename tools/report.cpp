//===- report.cpp - Render a run's JSONL trace into a report ----------------===//
//
// The observability CLI:
//
//   report run.jsonl              validate, then print the run report
//   report run.jsonl --validate   schema validation only (CI gate)
//   report run.jsonl --top 20     widen the top-N tables
//
// Input is the JSONL written by a pipeline run with tracing enabled
// (e.g. `train_mini --tiny --trace run.jsonl`); the schema is documented in
// docs/OBSERVABILITY.md. Exit status is non-zero on unreadable input or a
// schema violation, so CI can gate on it directly.
//
//===----------------------------------------------------------------------===//

#include "trace/Report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace veriopt;

static int usage(const char *Argv0) {
  std::fprintf(stderr, "usage: %s <trace.jsonl> [--validate] [--top N]\n",
               Argv0);
  return 2;
}

int main(int argc, char **argv) {
  std::string Path;
  bool ValidateOnly = false;
  unsigned TopN = 10;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--validate") == 0) {
      ValidateOnly = true;
    } else if (std::strcmp(argv[I], "--top") == 0 && I + 1 < argc) {
      TopN = static_cast<unsigned>(std::atoi(argv[++I]));
      if (TopN == 0)
        return usage(argv[0]);
    } else if (argv[I][0] == '-') {
      return usage(argv[0]);
    } else if (Path.empty()) {
      Path = argv[I];
    } else {
      return usage(argv[0]);
    }
  }
  if (Path.empty())
    return usage(argv[0]);

  TraceLog Log;
  std::string Err;
  if (!loadTraceJsonl(Path, Log, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return 1;
  }
  if (!validateTraceLog(Log, &Err)) {
    std::fprintf(stderr, "error: %s: schema violation: %s\n", Path.c_str(),
                 Err.c_str());
    return 1;
  }
  if (ValidateOnly) {
    std::printf("OK: %zu events conform to the trace schema\n",
                Log.Events.size());
    return 0;
  }

  std::fputs(renderRunReport(Log, TopN).c_str(), stdout);
  return 0;
}
