//===- veriopt_drive.cpp - Crash-tolerant multi-process eval supervisor -----===//
//
// The operator front door for multi-process evaluation: plans shards,
// writes the manifest, farms shards to `veriopt-worker` processes via
// EvalDriver (supervision, deterministic retry/backoff, poison-shard
// quarantine), and merges the healthy subset.
//
//   veriopt-drive --dir results/ [--valid-count N] [--dataset-seed S]
//                 [--shards K] [--workers N] [--max-attempts A]
//                 [--timeout-ms T] [--backoff-ms B] [--backoff-cap-ms C]
//                 [--worker PATH] [--no-resume] [--trace out.jsonl]
//                 [--verdict-store PATH]
//                 [--inject-crash-shard I] [--inject-hang-shard I]
//                 [--inject-corrupt-result I] [--inject-flaky-shard I]
//                 [--chaos-io RATE%] [--chaos-io-seed S]
//
// --verdict-store hands every worker the same durable verdict journal
// (docs/PERSISTENCE.md): the fleet shares one warm store across shards,
// processes, and runs. Results are bit-identical with or without it.
//
// --chaos-io forwards worker-side I/O fault injection (the FaultyIoEnv
// seam, docs/FAULT_TOLERANCE.md): every durable write a worker makes can
// fail with a shaped errno at the given percentage, deterministically in
// (seed, path, op ordinal) with the seed mixed per attempt — so a shard
// whose result write fails (typed exit 5, classified [io] in the
// quarantine diagnostics, distinct from [logic] and [runtime]) is
// salvageable by the driver's retries, exactly like a transiently failing
// disk. The CI chaos-io job drives this with --max-attempts raised and
// gates a clean exit.
//
// Exit codes: 0 all shards healthy; 1 hard error; 4 degraded (some shards
// quarantined — healthy subset still merged and reported).
//
// `--tiny` is the CI chaos gate. It runs three phases (four with
// --verdict-store) over a scratch directory and exits nonzero unless every
// gate holds:
//   1. all-healthy run  => bit-identical to evaluateModelSharded() and the
//      serial evaluateModel() oracle;
//   2. chaos run (flaky shard 0, crash shard 1, hang shard 2, corrupt
//      result shard 3) => completes, salvages shard 0 via retry
//      (salvaged > 0), quarantines exactly shards {1,2,3}, and the
//      healthy-subset merge is bit-identical to the oracle restricted to
//      the healthy shard set;
//   3. resume run over the same directory without injection => reuses the
//      salvaged shard's result file, re-runs only the quarantined shards,
//      and the full merge is bit-identical to the oracle;
//   4. (with --verdict-store) warm-store differential: an in-process
//      sharded evaluation against the store the worker fleet just warmed
//      must replay verdicts (store hits > 0) and stay bit-identical to the
//      oracle. Running --tiny twice against one store also exercises the
//      cross-run warm path — the CI warm-store job's gate.
//
//===----------------------------------------------------------------------===//

#include "pipeline/EvalDriver.h"
#include "store/VerdictStore.h"
#include "support/AtomicFile.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/stat.h>

using namespace veriopt;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--tiny] --dir <results-dir> [--valid-count N]\n"
      "          [--dataset-seed S] [--shards K] [--workers N]\n"
      "          [--max-attempts A] [--timeout-ms T] [--backoff-ms B]\n"
      "          [--backoff-cap-ms C] [--worker PATH] [--no-resume]\n"
      "          [--trace out.jsonl] [--verdict-store PATH]\n"
      "          [--inject-crash-shard I]\n"
      "          [--inject-hang-shard I] [--inject-corrupt-result I]\n"
      "          [--inject-flaky-shard I] [--chaos-io RATE%%]\n"
      "          [--chaos-io-seed S]\n",
      Argv0);
  return 1;
}

/// Default worker: sibling binary of this executable.
std::string siblingWorker(const char *Argv0) {
  std::string S = Argv0;
  size_t Slash = S.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : S.substr(0, Slash);
  return Dir + "/veriopt-worker";
}

struct DriveConfig {
  std::string Dir, WorkerPath, TracePath, StorePath;
  unsigned ValidCount = 24, Shards = 4, Workers = 2, MaxAttempts = 3;
  uint64_t DatasetSeed = 2026, TimeoutMs = 120000, BackoffMs = 50,
           BackoffCapMs = 2000, PlanSeed = 0xE7A1;
  bool Resume = true;
  std::vector<std::string> InjectArgs; ///< forwarded to every worker
};

/// Plan + manifest + driver run over an already built corpus size.
bool runOnce(const DriveConfig &C, size_t CorpusSize, EvalDriverReport &Out,
             std::string *Err) {
  auto Plan = planEvalShards(CorpusSize, C.Shards, C.PlanSeed);
  const std::string Manifest = C.Dir + "/manifest.json";
  if (!writeFileAtomic(Manifest,
                       shardManifestToJson(Plan, C.PlanSeed, CorpusSize),
                       Err))
    return false;

  EvalDriverOptions DO;
  DO.ManifestPath = Manifest;
  DO.ResultDir = C.Dir;
  DO.WorkerArgv = {C.WorkerPath,
                   "--valid-count", std::to_string(C.ValidCount),
                   "--dataset-seed", std::to_string(C.DatasetSeed)};
  if (!C.StorePath.empty())
    DO.WorkerArgv.insert(DO.WorkerArgv.end(),
                         {"--verdict-store", C.StorePath});
  DO.WorkerArgv.insert(DO.WorkerArgv.end(), C.InjectArgs.begin(),
                       C.InjectArgs.end());
  DO.MaxWorkers = C.Workers;
  DO.MaxAttempts = C.MaxAttempts;
  DO.BackoffBaseMs = C.BackoffMs;
  DO.BackoffCapMs = C.BackoffCapMs;
  DO.WorkerDeadlineMs = C.TimeoutMs;
  DO.Seed = C.PlanSeed;
  DO.Resume = C.Resume;
  return runEvalDriver(DO, presetQwen3B().Name, Out, Err);
}

/// In-process oracle restricted to a shard subset: evaluate exactly those
/// shards with the plain (non-batch) verifier and merge. By the PR6
/// contract this equals the serial oracle on that sample subset.
EvalResult oracleSubset(const RewritePolicyModel &Model,
                        const std::vector<Sample> &Valid,
                        const std::vector<EvalShard> &Plan,
                        const std::vector<unsigned> &Indices) {
  std::vector<ShardEvalResult> Shards;
  for (unsigned I : Indices)
    Shards.push_back(evaluateEvalShard(Model, Valid, PromptMode::Generic,
                                       VerifyOptions(), Plan[I]));
  return mergeShardResults(Model.config().Name, std::move(Shards));
}

int chaosGate(DriveConfig C) {
  std::printf("veriopt-drive --tiny: differential + chaos gate\n");
  C.ValidCount = 12;
  C.Shards = 4;
  C.Workers = 2;
  C.MaxAttempts = 2;
  C.BackoffMs = 20;
  C.BackoffCapMs = 200;

  DatasetOptions DOpts;
  DOpts.TrainCount = 0;
  DOpts.ValidCount = C.ValidCount;
  DOpts.Seed = C.DatasetSeed;
  Dataset DS = buildDataset(DOpts);
  RewritePolicyModel Model(presetQwen3B());
  EvalResult Oracle = evaluateModel(Model, DS.Valid, PromptMode::Generic);
  auto Plan = planEvalShards(DS.Valid.size(), C.Shards, C.PlanSeed);

  unsigned Failures = 0;
  auto gate = [&](bool Ok, const char *What) {
    std::printf("  %-52s %s\n", What, Ok ? "ok" : "FAILED");
    Failures += !Ok;
  };

  // Phase 1: all-healthy differential.
  {
    DriveConfig H = C;
    H.Dir = C.Dir + "/healthy";
    ::mkdir(H.Dir.c_str(), 0755);
    EvalDriverReport R;
    std::string Err;
    if (!runOnce(H, DS.Valid.size(), R, &Err)) {
      std::fprintf(stderr, "driver error: %s\n", Err.c_str());
      return 1;
    }
    gate(R.allHealthy() && R.Salvaged == C.Shards, "healthy: all salvaged");
    gate(countResultDivergence(Oracle, R.Merged) == 0,
         "healthy: bit-identical to serial oracle");
    EvalOptions EO;
    EO.Shards = C.Shards;
    EvalResult InProc = evaluateModelSharded(Model, DS.Valid,
                                             PromptMode::Generic,
                                             VerifyOptions(), EO);
    gate(countResultDivergence(InProc, R.Merged) == 0,
         "healthy: bit-identical to evaluateModelSharded");
  }

  // Phase 2: chaos — flaky 0 (salvaged by retry), crash 1, hang 2,
  // corrupt result 3.
  const std::string ChaosDir = C.Dir + "/chaos";
  {
    DriveConfig X = C;
    X.Dir = ChaosDir;
    ::mkdir(X.Dir.c_str(), 0755);
    X.TimeoutMs = 5000; // hang shard burns one deadline per attempt
    X.InjectArgs = {"--inject-flaky-shard", "0", "--inject-crash-shard",
                    "1",  "--inject-hang-shard", "2",
                    "--inject-corrupt-result", "3"};
    EvalDriverReport R;
    std::string Err;
    if (!runOnce(X, DS.Valid.size(), R, &Err)) {
      std::fprintf(stderr, "driver error: %s\n", Err.c_str());
      return 1;
    }
    std::fputs(renderDriverReport(R).c_str(), stdout);
    gate(R.Salvaged > 0, "chaos: nonzero salvaged shards");
    gate(R.Retried > 0, "chaos: flaky shard was retried");
    gate(R.Quarantined.size() == 3 &&
             R.Quarantined[0].Shard.Index == 1 &&
             R.Quarantined[1].Shard.Index == 2 &&
             R.Quarantined[2].Shard.Index == 3,
         "chaos: quarantined exactly shards {1,2,3}");
    bool HaveDiags = !R.Quarantined.empty();
    for (const QuarantinedShard &Q : R.Quarantined)
      HaveDiags = HaveDiags && Q.Failures.size() == C.MaxAttempts &&
                  !Q.Failures.back().Reason.empty();
    gate(HaveDiags, "chaos: quarantine carries per-attempt diagnostics");
    EvalResult Sub =
        oracleSubset(Model, DS.Valid, Plan, R.HealthyShardIndices);
    gate(countResultDivergence(Sub, R.Merged) == 0,
         "chaos: healthy-subset merge bit-identical to oracle");
  }

  // Phase 3: resume over the chaos directory without injection — the
  // salvaged shard's result file is reused, only the quarantined shards
  // re-run, and the full merge equals the oracle.
  {
    DriveConfig Z = C;
    Z.Dir = ChaosDir;
    EvalDriverReport R;
    std::string Err;
    if (!runOnce(Z, DS.Valid.size(), R, &Err)) {
      std::fprintf(stderr, "driver error: %s\n", Err.c_str());
      return 1;
    }
    gate(R.Reused >= 1, "resume: salvaged shard result reused");
    gate(R.Spawned == C.Shards - R.Reused,
         "resume: only missing shards re-ran");
    gate(R.allHealthy(), "resume: run completed healthy");
    gate(countResultDivergence(Oracle, R.Merged) == 0,
         "resume: full merge bit-identical to serial oracle");
  }

  // Phase 4 (with --verdict-store): the worker fleet above warmed the
  // shared journal; an in-process evaluation against it must replay those
  // verdicts and still match the oracle bit for bit.
  if (!C.StorePath.empty()) {
    std::string SErr;
    std::unique_ptr<VerdictStore> Store = VerdictStore::open(C.StorePath,
                                                             &SErr);
    if (!Store) {
      std::fprintf(stderr, "store error: %s\n", SErr.c_str());
      return 1;
    }
    VerdictStore::Stats AtOpen = Store->stats();
    std::printf("verdict store: %llu records loaded, %llu quarantined\n",
                static_cast<unsigned long long>(AtOpen.LiveAtOpen),
                static_cast<unsigned long long>(AtOpen.Quarantined));
    gate(AtOpen.LiveAtOpen > 0, "warm store: fleet journaled verdicts");
    EvalOptions EO;
    EO.Shards = C.Shards;
    EO.VerdictTier = Store.get();
    EvalResult Warm = evaluateModelSharded(Model, DS.Valid,
                                           PromptMode::Generic,
                                           VerifyOptions(), EO);
    gate(Store->stats().Hits > 0, "warm store: verdicts replayed (hits > 0)");
    gate(countResultDivergence(Oracle, Warm) == 0,
         "warm store: bit-identical to serial oracle");
  }

  std::printf("chaos gate: %s\n", Failures ? "FAILED" : "all gates passed");
  return Failures ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  DriveConfig C;
  bool Tiny = false;
  C.WorkerPath = siblingWorker(argv[0]);

  auto valArg = [&](int &I, const char *Name, const char **Out) {
    if (std::strcmp(argv[I], Name) != 0 || I + 1 >= argc)
      return false;
    *Out = argv[++I];
    return true;
  };
  for (int I = 1; I < argc; ++I) {
    const char *V = nullptr;
    if (std::strcmp(argv[I], "--tiny") == 0)
      Tiny = true;
    else if (std::strcmp(argv[I], "--no-resume") == 0)
      C.Resume = false;
    else if (valArg(I, "--dir", &V))
      C.Dir = V;
    else if (valArg(I, "--worker", &V))
      C.WorkerPath = V;
    else if (valArg(I, "--trace", &V))
      C.TracePath = V;
    else if (valArg(I, "--verdict-store", &V))
      C.StorePath = V;
    else if (valArg(I, "--valid-count", &V))
      C.ValidCount = static_cast<unsigned>(std::atoi(V));
    else if (valArg(I, "--dataset-seed", &V))
      C.DatasetSeed = static_cast<uint64_t>(std::atoll(V));
    else if (valArg(I, "--shards", &V))
      C.Shards = static_cast<unsigned>(std::atoi(V));
    else if (valArg(I, "--workers", &V))
      C.Workers = static_cast<unsigned>(std::atoi(V));
    else if (valArg(I, "--max-attempts", &V))
      C.MaxAttempts = static_cast<unsigned>(std::atoi(V));
    else if (valArg(I, "--timeout-ms", &V))
      C.TimeoutMs = static_cast<uint64_t>(std::atoll(V));
    else if (valArg(I, "--backoff-ms", &V))
      C.BackoffMs = static_cast<uint64_t>(std::atoll(V));
    else if (valArg(I, "--backoff-cap-ms", &V))
      C.BackoffCapMs = static_cast<uint64_t>(std::atoll(V));
    else if (valArg(I, "--inject-crash-shard", &V))
      C.InjectArgs.insert(C.InjectArgs.end(), {"--inject-crash-shard", V});
    else if (valArg(I, "--inject-hang-shard", &V))
      C.InjectArgs.insert(C.InjectArgs.end(), {"--inject-hang-shard", V});
    else if (valArg(I, "--inject-corrupt-result", &V))
      C.InjectArgs.insert(C.InjectArgs.end(),
                          {"--inject-corrupt-result", V});
    else if (valArg(I, "--inject-flaky-shard", &V))
      C.InjectArgs.insert(C.InjectArgs.end(), {"--inject-flaky-shard", V});
    else if (valArg(I, "--chaos-io", &V))
      C.InjectArgs.insert(C.InjectArgs.end(), {"--chaos-io", V});
    else if (valArg(I, "--chaos-io-seed", &V))
      C.InjectArgs.insert(C.InjectArgs.end(), {"--chaos-io-seed", V});
    else
      return usage(argv[0]);
  }
  if (C.Dir.empty())
    return usage(argv[0]);
  ::mkdir(C.Dir.c_str(), 0755); // fine if it already exists (resume)

  if (!C.TracePath.empty())
    TraceRecorder::instance().enable();

  int Ret;
  if (Tiny) {
    Ret = chaosGate(C);
  } else {
    DatasetOptions DOpts;
    DOpts.TrainCount = 0;
    DOpts.ValidCount = C.ValidCount;
    DOpts.Seed = C.DatasetSeed;
    Dataset DS = buildDataset(DOpts);
    EvalDriverReport R;
    std::string Err;
    if (!runOnce(C, DS.Valid.size(), R, &Err)) {
      std::fprintf(stderr, "veriopt-drive: %s\n", Err.c_str());
      return 1;
    }
    std::fputs(renderDriverReport(R).c_str(), stdout);
    std::printf("quarantine list: %s/quarantine.json\n", C.Dir.c_str());
    Ret = R.allHealthy() ? 0 : 4;
  }

  if (!C.TracePath.empty() &&
      !TraceRecorder::instance().writeJsonl(C.TracePath,
                                            &MetricsRegistry::global())) {
    std::fprintf(stderr, "veriopt-drive: could not write %s\n",
                 C.TracePath.c_str());
    return 1;
  }
  return Ret;
}
