//===- veriopt_worker.cpp - One-shard evaluation worker ---------------------===//
//
// The unit the crash-tolerant driver supervises: load one shard from a
// manifest, rebuild the deterministic validation corpus, evaluate the
// shard, and atomically+durably write shard_<index>.json into --out. The
// driver decides everything else (retry, backoff, quarantine) from this
// process's typed exit status and the validity of the result file.
//
//   veriopt-worker --manifest plan.json --shard 2 --out results/
//                  [--valid-count N] [--dataset-seed S] [--attempt K]
//                  [--verdict-store PATH]
//
// With --verdict-store the worker verifies through a private VerifyCache
// backed by the shared durable VerdictStore (docs/PERSISTENCE.md): warm
// verdicts are replayed instead of recomputed and fresh ones are journaled
// for the rest of the fleet. Results are bit-identical with or without the
// store (the PR6 batch-verify contract + deterministic verification).
//
// Typed exit codes (the supervisor's failure taxonomy):
//   0  result written and valid
//   2  usage error
//   3  manifest unreadable or malformed
//   4  shard index not present in the manifest
//   5  result file could not be written
//
// Hidden test hook: --lock-probe PATH tries a non-blocking exclusive
// flock on PATH and exits 0 (acquired) or 7 (contended) — the two-process
// arm of FileLockTest.
//
// Chaos-test fault injection (all routed through the seeded FaultInjector
// worker sites so injections are counted and deterministic):
//   --inject-crash-shard I     abort() while evaluating shard I
//   --inject-hang-shard I      hang shard I until the driver's deadline
//   --inject-corrupt-result I  write a torn/garbage result file, exit 0
//   --inject-flaky-shard I     crash shard I on attempt 1 only (retry must
//                              salvage it)
//   --fault-seed S             FaultInjector seed (default 0xFA11)
//   --chaos-io RATE%%          install FaultyIoEnv over the process's whole
//                              I/O seam: every open/write/fsync/rename/
//                              flock this worker performs can fail with a
//                              shaped errno at RATE/100 probability,
//                              deterministically in (seed, path, op
//                              ordinal). The seed is mixed with --attempt
//                              so a retried shard sees an independent
//                              fault pattern — transient disk failures are
//                              salvageable, exactly like real ones.
//   --chaos-io-seed S          base seed for --chaos-io (default
//                              --fault-seed)
//
//===----------------------------------------------------------------------===//

#include "pipeline/Evaluation.h"
#include "store/VerdictStore.h"
#include "support/AtomicFile.h"
#include "support/FaultInjector.h"
#include "support/FileLock.h"
#include "support/IoEnv.h"
#include "verify/BatchVerifier.h"
#include "verify/VerifyCache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace veriopt;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --manifest <plan.json> --shard <index> --out <dir>\n"
      "          [--valid-count N] [--dataset-seed S] [--attempt K]\n"
      "          [--verdict-store PATH]\n"
      "          [--inject-crash-shard I] [--inject-hang-shard I]\n"
      "          [--inject-corrupt-result I] [--inject-flaky-shard I]\n"
      "          [--fault-seed S] [--chaos-io RATE%%] [--chaos-io-seed S]\n",
      Argv0);
  return 2;
}

bool contains(const std::vector<unsigned> &V, unsigned X) {
  for (unsigned E : V)
    if (E == X)
      return true;
  return false;
}

} // namespace

int main(int argc, char **argv) {
  std::string ManifestPath, OutDir, StorePath, LockProbePath;
  int ShardIdx = -1;
  unsigned ValidCount = 24, Attempt = 1;
  uint64_t DatasetSeed = 2026, FaultSeed = 0xFA11;
  long ChaosIoPct = 0;
  uint64_t ChaosIoSeed = 0;
  bool ChaosIoSeedSet = false;
  std::vector<unsigned> CrashShards, HangShards, CorruptShards, FlakyShards;

  auto intArg = [&](int &I, const char *Name, long &Out) {
    if (std::strcmp(argv[I], Name) != 0 || I + 1 >= argc)
      return false;
    Out = std::atol(argv[++I]);
    return true;
  };
  for (int I = 1; I < argc; ++I) {
    long V = 0;
    if (std::strcmp(argv[I], "--manifest") == 0 && I + 1 < argc)
      ManifestPath = argv[++I];
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutDir = argv[++I];
    else if (std::strcmp(argv[I], "--verdict-store") == 0 && I + 1 < argc)
      StorePath = argv[++I];
    else if (std::strcmp(argv[I], "--lock-probe") == 0 && I + 1 < argc)
      LockProbePath = argv[++I];
    else if (intArg(I, "--shard", V))
      ShardIdx = static_cast<int>(V);
    else if (intArg(I, "--valid-count", V))
      ValidCount = static_cast<unsigned>(V);
    else if (intArg(I, "--dataset-seed", V))
      DatasetSeed = static_cast<uint64_t>(V);
    else if (intArg(I, "--attempt", V))
      Attempt = static_cast<unsigned>(V);
    else if (intArg(I, "--fault-seed", V))
      FaultSeed = static_cast<uint64_t>(V);
    else if (intArg(I, "--chaos-io", V))
      ChaosIoPct = V;
    else if (intArg(I, "--chaos-io-seed", V)) {
      ChaosIoSeed = static_cast<uint64_t>(V);
      ChaosIoSeedSet = true;
    } else if (intArg(I, "--inject-crash-shard", V))
      CrashShards.push_back(static_cast<unsigned>(V));
    else if (intArg(I, "--inject-hang-shard", V))
      HangShards.push_back(static_cast<unsigned>(V));
    else if (intArg(I, "--inject-corrupt-result", V))
      CorruptShards.push_back(static_cast<unsigned>(V));
    else if (intArg(I, "--inject-flaky-shard", V))
      FlakyShards.push_back(static_cast<unsigned>(V));
    else
      return usage(argv[0]);
  }
  if (!LockProbePath.empty()) {
    // Test hook: report whether an exclusive flock on the path is free.
    FileLock Probe;
    bool Contended = false;
    std::string LErr;
    if (!Probe.tryLock(LockProbePath, FileLock::Mode::Exclusive, Contended,
                       &LErr)) {
      std::fprintf(stderr, "veriopt-worker: lock probe failed: %s\n",
                   LErr.c_str());
      return 5;
    }
    return Contended ? 7 : 0;
  }
  if (ManifestPath.empty() || OutDir.empty() || ShardIdx < 0)
    return usage(argv[0]);

  std::vector<EvalShard> Plan;
  {
    std::ifstream IS(ManifestPath, std::ios::binary);
    if (!IS) {
      std::fprintf(stderr, "veriopt-worker: cannot open manifest %s\n",
                   ManifestPath.c_str());
      return 3;
    }
    std::ostringstream SS;
    SS << IS.rdbuf();
    std::string Err;
    if (!shardManifestFromJson(SS.str(), Plan, &Err)) {
      std::fprintf(stderr, "veriopt-worker: malformed manifest: %s\n",
                   Err.c_str());
      return 3;
    }
  }
  const EvalShard *Shard = nullptr;
  for (const EvalShard &S : Plan)
    if (S.Index == static_cast<unsigned>(ShardIdx))
      Shard = &S;
  if (!Shard) {
    std::fprintf(stderr, "veriopt-worker: shard %d not in manifest (%zu "
                 "shards)\n",
                 ShardIdx, Plan.size());
    return 4;
  }

  // Whole-process I/O chaos: every syscall the durable subsystems make
  // (store journal appends, lock files, the atomic result write) can fail
  // with a shaped errno. Deterministic in (seed, path, per-path ordinal),
  // and the seed is mixed with the attempt number so the driver's retries
  // see an independent fault pattern — a transiently failing disk, not a
  // permanently cursed file.
  std::unique_ptr<FaultInjector> IoFI;
  std::unique_ptr<FaultyIoEnv> IoFaults;
  std::unique_ptr<ScopedIoEnv> IoInstall;
  if (ChaosIoPct > 0) {
    const uint64_t Base = ChaosIoSeedSet ? ChaosIoSeed : FaultSeed;
    IoFI = std::make_unique<FaultInjector>(
        Base + 0x9e3779b97f4a7c15ULL * Attempt);
    const double Rate = static_cast<double>(ChaosIoPct) / 100.0;
    for (FaultSite S : {FaultSite::IoOpen, FaultSite::IoWrite,
                        FaultSite::IoShortWrite, FaultSite::IoFsync,
                        FaultSite::IoRename, FaultSite::IoFlock})
      IoFI->enable(S, Rate);
    IoFaults = std::make_unique<FaultyIoEnv>(*IoFI);
    IoInstall = std::make_unique<ScopedIoEnv>(IoFaults.get());
    std::fprintf(stderr,
                 "veriopt-worker: chaos-io armed at %ld%% (attempt %u)\n",
                 ChaosIoPct, Attempt);
  }

  // Chaos faults, routed through the seeded injector sites so they are
  // deterministic, counted, and share the production fault taxonomy. The
  // flags arm a site at rate 1.0 for the named shard; the decision is
  // still shouldInject(site, shard) so counters see it.
  FaultInjector FI(FaultSeed);
  const unsigned Idx = Shard->Index;
  const bool Flaky = contains(FlakyShards, Idx) && Attempt == 1;
  if (contains(CrashShards, Idx) || Flaky)
    FI.enable(FaultSite::WorkerCrash, 1.0);
  if (contains(HangShards, Idx))
    FI.enable(FaultSite::WorkerHang, 1.0);
  if (contains(CorruptShards, Idx))
    FI.enable(FaultSite::WorkerCorrupt, 1.0);

  if (FI.shouldInject(FaultSite::WorkerHang, Idx)) {
    std::fprintf(stderr, "veriopt-worker: injected hang on shard %u\n", Idx);
    for (;;)
      ::pause(); // until the supervisor's SIGKILL escalation
  }
  if (FI.shouldInject(FaultSite::WorkerCrash, Idx)) {
    std::fprintf(stderr, "veriopt-worker: injected crash on shard %u "
                 "(attempt %u)\n",
                 Idx, Attempt);
    std::abort();
  }

  DatasetOptions DO;
  DO.TrainCount = 0;
  DO.ValidCount = ValidCount;
  DO.Seed = DatasetSeed;
  Dataset DS = buildDataset(DO);
  RewritePolicyModel Model(presetQwen3B());

  // With a verdict store, verify through a private cache backed by the
  // shared journal — same construction as evaluateModelSharded's batch
  // path, so the verdicts (and therefore the result file) stay
  // bit-identical to the plain path below.
  std::unique_ptr<VerdictStore> Store;
  std::unique_ptr<VerifyCache> Cache;
  std::unique_ptr<BatchVerifier> BV;
  if (!StorePath.empty()) {
    std::string SErr;
    Store = VerdictStore::open(StorePath, &SErr);
    if (!Store) {
      std::fprintf(stderr, "veriopt-worker: cannot open verdict store %s: "
                   "%s\n",
                   StorePath.c_str(), SErr.c_str());
      return 5;
    }
    Cache = std::make_unique<VerifyCache>(4096);
    Cache->setBackingStore(Store.get());
    BatchVerifier::Options BO;
    BO.Robust.Base = VerifyOptions();
    BO.Robust.MaxTiers = 1; // evaluation runs one fixed budget, no ladder
    BV = std::make_unique<BatchVerifier>(BO, Cache.get(), nullptr);
  }

  ShardEvalResult R = evaluateEvalShard(Model, DS.Valid, PromptMode::Generic,
                                        VerifyOptions(), *Shard, BV.get());

  if (Store) {
    if (!Store->flush())
      std::fprintf(stderr, "veriopt-worker: verdict store flush failed "
                   "(results unaffected)\n");
    VerdictStore::Stats SS = Store->stats();
    std::fprintf(stderr, "veriopt-worker: shard %u store: %llu hits, %llu "
                 "misses, %llu new records\n",
                 Idx, static_cast<unsigned long long>(SS.Hits),
                 static_cast<unsigned long long>(SS.Misses),
                 static_cast<unsigned long long>(SS.Writes));
  }

  const std::string Path =
      OutDir + "/shard_" + std::to_string(Idx) + ".json";
  if (FI.shouldInject(FaultSite::WorkerCorrupt, Idx)) {
    // Simulate the torn-write crash the atomic discipline normally
    // prevents: a truncated JSON prefix, written in place, then exit 0 as
    // if everything were fine. The driver must not trust it.
    std::fprintf(stderr,
                 "veriopt-worker: injected corrupt result on shard %u\n",
                 Idx);
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS << shardResultToJson(R).substr(0, 40);
    return 0;
  }

  std::string WErr;
  if (!writeFileAtomic(Path, shardResultToJson(R), &WErr)) {
    std::fprintf(stderr, "veriopt-worker: cannot write %s: %s\n",
                 Path.c_str(), WErr.c_str());
    return 5;
  }
  return 0;
}
