//===- BenchJson.cpp - The BENCH_<name>.json schema ---------------------------//

#include "report/BenchJson.h"

#include "trace/Json.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

namespace veriopt {

bool parseBitHexDouble(const std::string &S, double &Out) {
  if (S.size() != 16)
    return false;
  uint64_t Bits = 0;
  for (char C : S) {
    Bits <<= 4;
    if (C >= '0' && C <= '9')
      Bits |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Bits |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  std::memcpy(&Out, &Bits, sizeof(Out));
  return true;
}

namespace {

bool fail(std::string *Err, const std::string &Why) {
  if (Err)
    *Err = Why;
  return false;
}

bool isU64(const JsonValue &V) {
  return V.isNumber() && V.number() >= 0 &&
         V.number() == std::floor(V.number());
}

bool parseGauge(const JsonValue &V, double &Out) {
  if (V.isNumber()) {
    Out = V.number();
    return true;
  }
  // The exact channel: a 16-hex-char string is the IEEE-754 bit pattern.
  return V.isString() && parseBitHexDouble(V.str(), Out);
}

bool parseHist(const std::string &Name, const JsonValue &V,
               BenchReport::Hist &Out, std::string *Err) {
  if (!V.isObject())
    return fail(Err, "histogram '" + Name + "' is not an object");
  const JsonValue *Bounds = V.get("bounds");
  if (!Bounds || !Bounds->isArray())
    return fail(Err, "histogram '" + Name + "' missing 'bounds' array");
  for (const JsonValue &B : Bounds->array()) {
    if (!B.isNumber())
      return fail(Err, "histogram '" + Name + "' has a non-numeric bound");
    if (!Out.Bounds.empty() && B.number() <= Out.Bounds.back())
      return fail(Err,
                  "histogram '" + Name + "' bounds not strictly increasing");
    Out.Bounds.push_back(B.number());
  }
  const JsonValue *Counts = V.get("counts");
  if (!Counts || !Counts->isArray())
    return fail(Err, "histogram '" + Name + "' missing 'counts' array");
  uint64_t Total = 0;
  for (const JsonValue &C : Counts->array()) {
    if (!isU64(C))
      return fail(Err, "histogram '" + Name +
                           "' has a negative/non-integer bucket count");
    Out.Counts.push_back(static_cast<uint64_t>(C.number()));
    Total += Out.Counts.back();
  }
  if (Out.Counts.size() != Out.Bounds.size() + 1)
    return fail(Err, "histogram '" + Name +
                         "' needs len(counts) == len(bounds)+1 (overflow "
                         "bucket)");
  const JsonValue *Count = V.get("count");
  if (!Count || !isU64(*Count))
    return fail(Err, "histogram '" + Name + "' missing integer 'count'");
  Out.Count = static_cast<uint64_t>(Count->number());
  if (Out.Count != Total)
    return fail(Err, "histogram '" + Name +
                         "' count does not equal the bucket-count sum");
  const JsonValue *Sum = V.get("sum");
  if (!Sum || !Sum->isNumber())
    return fail(Err, "histogram '" + Name + "' missing numeric 'sum'");
  Out.Sum = Sum->number();
  return true;
}

} // namespace

bool parseBenchJson(const std::string &Text, BenchReport &Out,
                    std::string *Err) {
  Out = BenchReport();
  JsonValue Doc;
  std::string JErr;
  if (!parseJson(Text, Doc, &JErr))
    return fail(Err, "malformed JSON: " + JErr);
  if (!Doc.isObject())
    return fail(Err, "top level is not a JSON object");

  const JsonValue *Bench = Doc.get("bench");
  if (!Bench || !Bench->isString() || Bench->str().empty())
    return fail(Err, "missing nonempty string 'bench'");
  Out.Bench = Bench->str();

  const JsonValue *Schema = Doc.get("schema");
  if (!Schema || !isU64(*Schema))
    return fail(Err, "missing integer 'schema' version");
  Out.Schema = static_cast<int>(Schema->number());
  if (Out.Schema != BenchJsonSchemaVersion)
    return fail(Err, "unsupported schema version " +
                         std::to_string(Out.Schema) + " (this build reads " +
                         std::to_string(BenchJsonSchemaVersion) + ")");

  const JsonValue *Metrics = Doc.get("metrics");
  if (!Metrics || !Metrics->isObject())
    return fail(Err, "missing 'metrics' object");
  const JsonValue *Counters = Metrics->get("counters");
  const JsonValue *Gauges = Metrics->get("gauges");
  const JsonValue *Hists = Metrics->get("histograms");
  if (!Counters || !Counters->isObject())
    return fail(Err, "metrics missing 'counters' object");
  if (!Gauges || !Gauges->isObject())
    return fail(Err, "metrics missing 'gauges' object");
  if (!Hists || !Hists->isObject())
    return fail(Err, "metrics missing 'histograms' object");

  for (const auto &[Name, V] : Counters->object()) {
    if (!isU64(V))
      return fail(Err, "counter '" + Name +
                           "' is not a non-negative integer");
    Out.Counters[Name] = static_cast<uint64_t>(V.number());
  }
  for (const auto &[Name, V] : Gauges->object()) {
    double D;
    if (!parseGauge(V, D))
      return fail(Err, "gauge '" + Name +
                           "' is neither a number nor a 16-hex-char "
                           "bit-hex double");
    Out.Gauges[Name] = D;
  }
  for (const auto &[Name, V] : Hists->object())
    if (!parseHist(Name, V, Out.Histograms[Name], Err))
      return false;
  return true;
}

bool loadBenchJson(const std::string &Path, BenchReport &Out,
                   std::string *Err) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return fail(Err, "cannot open " + Path);
  std::ostringstream SS;
  SS << IS.rdbuf();
  std::string PErr;
  if (!parseBenchJson(SS.str(), Out, &PErr))
    return fail(Err, Path + ": " + PErr);
  return true;
}

std::string benchReportToJson(const std::string &Name,
                              const MetricsRegistry::Snapshot &S) {
  std::string Out = "{\"bench\":" + jsonString(Name) +
                    ",\"schema\":" + std::to_string(BenchJsonSchemaVersion) +
                    ",\"metrics\":" + MetricsRegistry::toJson(S) + "}\n";
  return Out;
}

} // namespace veriopt
