//===- RunDiff.h - A/B comparison of two traced runs -------------*- C++ -*-=//
//
// Diffs two aggregated runs (`report --diff A.jsonl B.jsonl`), honoring the
// trace plane split (docs/OBSERVABILITY.md): the *deterministic plane* —
// the multiset of (name, ph, args) — is checked for exact identity, which
// two same-seed runs must satisfy at any thread count; everything
// wall-clock-derived (per-span times) is reported as a *timing* delta that
// is expected to move between runs and machines.
//
// Sections: deterministic-plane identity, per-stage reward-curve deltas,
// verdict-mix and DiagKind shifts, retry-ladder deltas, cache-efficacy
// deltas, and per-span wall-time regressions. All orderings are
// deterministic functions of the two inputs, so diff reports are
// golden-testable (tests/report/DiffTest.cpp). The workflow doc is
// docs/COMPARISON.md.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_REPORT_RUNDIFF_H
#define VERIOPT_REPORT_RUNDIFF_H

#include "report/RunSummary.h"

#include <string>

namespace veriopt {

/// The comparison of two runs, precomputed from their summaries.
struct RunDiff {
  RunSummary A, B;

  /// Deterministic-plane delta: canonical (name, ph, args) keys whose
  /// multiplicity differs, with the A/B counts. Empty iff the planes are
  /// identical — the contract for two same-seed runs.
  struct KeyDelta {
    std::string Key;
    uint64_t CountA = 0, CountB = 0;
  };
  std::vector<KeyDelta> DeterministicDeltas; ///< sorted by key
  uint64_t DeterministicOnlyA = 0;           ///< summed surplus multiplicity
  uint64_t DeterministicOnlyB = 0;

  bool deterministicPlaneIdentical() const {
    return DeterministicDeltas.empty();
  }
};

/// Compute the diff of two (schema-valid) aggregated runs.
RunDiff diffRuns(RunSummary A, RunSummary B);

/// Render the diff report. \p TopN bounds the long tables (span rows,
/// deterministic-delta examples).
std::string renderRunDiff(const RunDiff &D, unsigned TopN = 10);

} // namespace veriopt

#endif // VERIOPT_REPORT_RUNDIFF_H
