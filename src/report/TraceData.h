//===- TraceData.h - Trace loading and schema validation ---------*- C++ -*-=//
//
// The load/validate half of the report library: parses a run's JSONL trace
// (TraceRecorder::writeJsonl output) and validates it against the documented
// schema (docs/OBSERVABILITY.md — field types, the known-event-name
// registry, and per-event required args). Aggregation lives in
// RunSummary.h, rendering in RunReport.h / RunDiff.h.
//
// Lives in a library (not the tool) so tests can exercise every failure
// mode and CI can validate without shelling out.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_REPORT_TRACEDATA_H
#define VERIOPT_REPORT_TRACEDATA_H

#include "trace/Json.h"

#include <string>
#include <vector>

namespace veriopt {

/// A parsed trace: one JsonValue per JSONL line, in file order.
struct TraceLog {
  std::vector<JsonValue> Events;
};

/// Parse JSONL text into \p Out. Fails on the first malformed line (a
/// truncated tail line is a named parse error, never a crash).
bool parseTraceJsonl(const std::string &Text, TraceLog &Out,
                     std::string *Err);

/// Read + parse a JSONL file.
bool loadTraceJsonl(const std::string &Path, TraceLog &Out, std::string *Err);

/// Validate every event against the documented schema. On failure \p Err
/// names the first offending line (1-based) and the violated rule.
bool validateTraceLog(const TraceLog &Log, std::string *Err);

/// The documented event-name registry (validation rejects unknown names so
/// schema drift fails CI instead of rotting silently).
const std::vector<std::string> &knownTraceEventNames();

} // namespace veriopt

#endif // VERIOPT_REPORT_TRACEDATA_H
