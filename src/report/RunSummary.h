//===- RunSummary.h - One-pass aggregation of a trace ------------*- C++ -*-=//
//
// The aggregate half of the report library: one pass over a validated
// TraceLog buckets everything the renderers need — per-stage reward curves,
// verdict/DiagKind mixes, the retry ladder, per-span wall-time totals,
// metrics, eval/driver rows — plus the canonical *deterministic-plane key
// multiset* that makes two same-seed runs comparable: the multiset of
// (name, ph, args) with args serialized canonically, excluding every
// nondeterministic field (ts_ns/dur_ns/tid/seq/meta; see the plane split in
// docs/OBSERVABILITY.md).
//
// Aggregation is pure and deterministic: two identical logs always produce
// identical summaries, so reports and diffs rendered from them are
// golden-testable.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_REPORT_RUNSUMMARY_H
#define VERIOPT_REPORT_RUNSUMMARY_H

#include "report/TraceData.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace veriopt {

/// Everything the run/diff renderers read, precomputed in one pass.
struct RunSummary {
  //--- event totals ---------------------------------------------------------
  size_t Events = 0, Spans = 0, Counters = 0, Instants = 0;

  /// Per span-name count + summed wall ms (nondeterministic plane).
  struct SpanAgg {
    uint64_t Count = 0;
    double TotalMs = 0;
  };
  std::map<std::string, SpanAgg> SpansByName;

  //--- GRPO reward curves ---------------------------------------------------
  /// Per-stage step rows, sorted by step number (stable on ties).
  struct StepRow {
    double Step = 0, Mean = 0, Ema = 0, EqRate = 0;
  };
  std::map<std::string, std::vector<StepRow>> Stages;

  //--- verification ---------------------------------------------------------
  uint64_t VerifyQueries = 0;
  /// (status, diag) -> count.
  std::map<std::pair<std::string, std::string>, uint64_t> Verdicts;
  /// status -> count and diag -> count, for the diff's mix-shift tables.
  std::map<std::string, uint64_t> StatusCounts, DiagCounts;
  /// verify.candidate rows in file order (render sorts by duration).
  struct CandidateRow {
    double DurMs = 0;
    std::string Status, Diag;
    uint64_t Conflicts = 0, Fuel = 0;
  };
  std::vector<CandidateRow> Candidates;
  /// tier -> status -> count.
  std::map<int64_t, std::map<std::string, uint64_t>> TierOutcomes;

  //--- metrics / rule fires -------------------------------------------------
  std::map<std::string, double> Metrics; ///< appended "metric" lines
  std::map<std::string, uint64_t> RuleFires;

  //--- sharded evaluation ---------------------------------------------------
  struct EvalRunRow {
    uint64_t Shards = 0, Samples = 0, Correct = 0, Inconclusive = 0;
    double DurMs = 0;
  };
  std::vector<EvalRunRow> EvalRuns; ///< file order
  struct EvalShardRow {
    uint64_t Shard = 0, Begin = 0, End = 0, Samples = 0, Correct = 0,
             Inconclusive = 0;
    double DurMs = 0;
  };
  std::vector<EvalShardRow> EvalShards; ///< file order (render sorts)

  //--- multi-process driver -------------------------------------------------
  struct DriverRunRow {
    uint64_t Shards = 0, Spawned = 0, Retried = 0, Salvaged = 0,
             Quarantined = 0;
    double DurMs = 0;
  };
  std::vector<DriverRunRow> DriverRuns; ///< file order
  std::map<std::string, uint64_t> WorkerOutcomes;

  //--- deterministic plane --------------------------------------------------
  /// Canonical (name, ph, args) key -> multiplicity. For a fixed seed this
  /// multiset is identical at any thread count (the plane-split contract),
  /// so two same-seed runs diff to zero here while their timings differ.
  std::map<std::string, uint64_t> DeterministicKeys;
  uint64_t DeterministicEvents = 0;
};

/// Serialize one event's deterministic plane — name, ph, and the args
/// object with sorted keys and round-tripping number formatting. Events
/// that only differ in ts_ns/dur_ns/tid/seq/meta map to the same key.
std::string deterministicEventKey(const JsonValue &Event);

/// True for events whose *args* are wall-clock-derived — metric exports of
/// `*_ms` instruments (the naming convention for timing) — and which
/// therefore live on the timing plane, outside the deterministic-key
/// multiset, even though their args differ between same-seed runs.
bool isTimingPlaneEvent(const JsonValue &Event);

/// Aggregate \p Log (assumed schema-valid) into a RunSummary.
RunSummary aggregateRun(const TraceLog &Log);

} // namespace veriopt

#endif // VERIOPT_REPORT_RUNSUMMARY_H
