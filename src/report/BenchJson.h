//===- BenchJson.h - The BENCH_<name>.json schema ----------------*- C++ -*-=//
//
// The machine-readable result file every bench emits and the comparator
// consumes. This header is the single source of truth for the schema — the
// writer (`benchReportToJson`, called by bench::writeBenchJson) and the
// validator (`parseBenchJson`) live side by side so they cannot drift, and
// docs/OBSERVABILITY.md documents exactly what this file enforces.
//
// Schema (version 1):
//
//   {"bench":   <nonempty string>,          // bench name
//    "schema":  1,                          // version; bump on change
//    "metrics": {
//      "counters":   {name: uint},          // non-negative integers
//      "gauges":     {name: number | "<16 hex chars>"},
//                                           // a 16-hex-digit string is an
//                                           // IEEE-754 bit-hex double (the
//                                           // checkpoint discipline): the
//                                           // exact channel, able to carry
//                                           // NaN and full-precision values
//      "histograms": {name:
//        {"bounds": [strictly increasing numbers],
//         "counts": [uints, len == len(bounds)+1],  // last = overflow
//         "count":  uint == sum(counts),
//         "sum":    number}}}}
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_REPORT_BENCHJSON_H
#define VERIOPT_REPORT_BENCHJSON_H

#include "trace/Metrics.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace veriopt {

/// The documented schema version this library reads and writes.
inline constexpr int BenchJsonSchemaVersion = 1;

/// A parsed, validated BENCH_<name>.json.
struct BenchReport {
  std::string Bench;
  int Schema = BenchJsonSchemaVersion;
  std::map<std::string, uint64_t> Counters;
  /// Gauge values; bit-hex strings are decoded, so NaN is representable.
  std::map<std::string, double> Gauges;
  struct Hist {
    std::vector<double> Bounds;
    std::vector<uint64_t> Counts; ///< Bounds.size() + 1 entries
    uint64_t Count = 0;
    double Sum = 0;
  };
  std::map<std::string, Hist> Histograms;
};

/// Parse + formally validate one BENCH_<name>.json document. On failure
/// \p Err carries a typed message naming the offending field and rule.
bool parseBenchJson(const std::string &Text, BenchReport &Out,
                    std::string *Err);

/// Read + parse + validate a file.
bool loadBenchJson(const std::string &Path, BenchReport &Out,
                   std::string *Err);

/// Serialize a metrics snapshot as a schema-valid document (sorted keys,
/// deterministic formatting). This is what bench::writeBenchJson emits.
std::string benchReportToJson(const std::string &Name,
                              const MetricsRegistry::Snapshot &S);

/// Decode a 16-hex-char IEEE-754 bit pattern (e.g. "3ff0000000000000").
bool parseBitHexDouble(const std::string &S, double &Out);

} // namespace veriopt

#endif // VERIOPT_REPORT_BENCHJSON_H
