//===- TraceData.cpp - Trace loading and schema validation --------------------//

#include "report/TraceData.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace veriopt {

//===--- Loading --------------------------------------------------------------//

bool parseTraceJsonl(const std::string &Text, TraceLog &Out,
                     std::string *Err) {
  Out.Events.clear();
  size_t LineNo = 0, Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    JsonValue V;
    std::string JErr;
    if (!parseJson(Line, V, &JErr)) {
      if (Err)
        *Err = "line " + std::to_string(LineNo) + ": " + JErr;
      return false;
    }
    Out.Events.push_back(std::move(V));
  }
  return true;
}

bool loadTraceJsonl(const std::string &Path, TraceLog &Out,
                    std::string *Err) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  std::ostringstream SS;
  SS << IS.rdbuf();
  return parseTraceJsonl(SS.str(), Out, Err);
}

//===--- Validation -----------------------------------------------------------//

const std::vector<std::string> &knownTraceEventNames() {
  static const std::vector<std::string> Names = {
      "pipeline.run",     "pipeline.stage", "pipeline.checkpoint",
      "grpo.step",        "grpo.generate",  "grpo.score",
      "verify.candidate", "verify.falsify", "verify.encode",
      "verify.sat",       "verify.tier",    "batch.verify",
      "eval.run",         "eval.shard",     "eval.driver",
      "eval.worker",      "store.load",     "store.compact",
      "opt.rule_fire",    "metric",         "metric.hist",
  };
  return Names;
}

namespace {

struct ArgRule {
  const char *Key;
  JsonValue::Kind Kind;
};

/// Per-event required args (the documented schema's mandatory subset;
/// events may carry more).
const std::map<std::string, std::vector<ArgRule>> &requiredArgs() {
  static const std::map<std::string, std::vector<ArgRule>> Rules = {
      {"pipeline.run", {{"seed", JsonValue::Kind::Number}}},
      {"pipeline.stage", {{"stage", JsonValue::Kind::String}}},
      {"grpo.step",
       {{"step", JsonValue::Kind::Number},
        {"mean_reward", JsonValue::Kind::Number},
        {"ema_reward", JsonValue::Kind::Number},
        {"equivalent_rate", JsonValue::Kind::Number}}},
      {"grpo.generate", {{"step", JsonValue::Kind::Number}}},
      {"grpo.score",
       {{"step", JsonValue::Kind::Number},
        {"rollouts", JsonValue::Kind::Number}}},
      {"verify.candidate",
       {{"status", JsonValue::Kind::String},
        {"diag", JsonValue::Kind::String},
        {"conflicts", JsonValue::Kind::Number},
        {"fuel", JsonValue::Kind::Number}}},
      {"verify.sat", {{"result", JsonValue::Kind::String}}},
      {"batch.verify",
       {{"candidates", JsonValue::Kind::Number},
        {"unique", JsonValue::Kind::Number},
        {"cached", JsonValue::Kind::Number},
        {"computed", JsonValue::Kind::Number}}},
      {"verify.tier",
       {{"tier", JsonValue::Kind::Number},
        {"status", JsonValue::Kind::String},
        {"diag", JsonValue::Kind::String}}},
      {"eval.run",
       {{"shards", JsonValue::Kind::Number},
        {"samples", JsonValue::Kind::Number}}},
      {"eval.shard",
       {{"shard", JsonValue::Kind::Number},
        {"begin", JsonValue::Kind::Number},
        {"end", JsonValue::Kind::Number},
        {"samples", JsonValue::Kind::Number}}},
      {"eval.driver",
       {{"shards", JsonValue::Kind::Number},
        {"spawned", JsonValue::Kind::Number},
        {"retried", JsonValue::Kind::Number},
        {"salvaged", JsonValue::Kind::Number},
        {"quarantined", JsonValue::Kind::Number}}},
      {"eval.worker",
       {{"shard", JsonValue::Kind::Number},
        {"attempt", JsonValue::Kind::Number},
        {"outcome", JsonValue::Kind::String}}},
      {"store.load",
       {{"records", JsonValue::Kind::Number},
        {"live", JsonValue::Kind::Number},
        {"quarantined", JsonValue::Kind::Number}}},
      {"store.compact",
       {{"before", JsonValue::Kind::Number},
        {"after", JsonValue::Kind::Number}}},
      {"opt.rule_fire",
       {{"rule", JsonValue::Kind::String},
        {"count", JsonValue::Kind::Number}}},
      {"metric",
       {{"key", JsonValue::Kind::String},
        {"value", JsonValue::Kind::Number}}},
      {"metric.hist",
       {{"key", JsonValue::Kind::String},
        {"count", JsonValue::Kind::Number},
        {"sum", JsonValue::Kind::Number},
        {"bounds", JsonValue::Kind::String},
        {"counts", JsonValue::Kind::String}}},
  };
  return Rules;
}

bool validateEvent(const JsonValue &E, std::string &Why) {
  if (!E.isObject()) {
    Why = "event is not a JSON object";
    return false;
  }
  static const std::set<std::string> TopKeys = {
      "name", "ph", "ts_ns", "dur_ns", "tid", "seq", "args", "meta"};
  for (const auto &[K, _] : E.object())
    if (!TopKeys.count(K)) {
      Why = "unknown top-level field '" + K + "'";
      return false;
    }

  const JsonValue *Name = E.get("name");
  if (!Name || !Name->isString()) {
    Why = "missing/non-string 'name'";
    return false;
  }
  const auto &Known = knownTraceEventNames();
  if (std::find(Known.begin(), Known.end(), Name->str()) == Known.end()) {
    Why = "unknown event name '" + Name->str() + "'";
    return false;
  }

  const JsonValue *Ph = E.get("ph");
  if (!Ph || !Ph->isString() ||
      (Ph->str() != "X" && Ph->str() != "C" && Ph->str() != "i")) {
    Why = "'ph' must be one of \"X\", \"C\", \"i\"";
    return false;
  }
  for (const char *K : {"ts_ns", "tid", "seq"}) {
    const JsonValue *V = E.get(K);
    if (!V || !V->isNumber() || V->number() < 0) {
      Why = std::string("missing/negative numeric '") + K + "'";
      return false;
    }
  }
  if (Ph->str() == "X") {
    const JsonValue *Dur = E.get("dur_ns");
    if (!Dur || !Dur->isNumber() || Dur->number() < 0) {
      Why = "span (ph=X) without numeric 'dur_ns'";
      return false;
    }
  }
  const JsonValue *Args = E.get("args");
  if (!Args || !Args->isObject()) {
    Why = "missing 'args' object";
    return false;
  }
  if (const JsonValue *Meta = E.get("meta"))
    if (!Meta->isObject()) {
      Why = "'meta' is not an object";
      return false;
    }

  auto It = requiredArgs().find(Name->str());
  if (It != requiredArgs().end())
    for (const ArgRule &R : It->second) {
      const JsonValue *V = Args->get(R.Key);
      if (!V || V->kind() != R.Kind) {
        Why = "event '" + Name->str() + "' missing required arg '" + R.Key +
              "' of the documented type";
        return false;
      }
    }
  return true;
}

} // namespace

bool validateTraceLog(const TraceLog &Log, std::string *Err) {
  for (size_t I = 0; I < Log.Events.size(); ++I) {
    std::string Why;
    if (!validateEvent(Log.Events[I], Why)) {
      if (Err)
        *Err = "line " + std::to_string(I + 1) + ": " + Why;
      return false;
    }
  }
  return true;
}

} // namespace veriopt
