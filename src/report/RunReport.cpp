//===- RunReport.cpp - Single-run report rendering ----------------------------//

#include "report/RunReport.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace veriopt {

namespace {

std::string fmt(const char *F, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), F, V);
  return Buf;
}

/// Downsample \p Ys to \p Cols columns and render one ASCII row.
std::string sparkline(const std::vector<double> &Ys, size_t Cols = 48) {
  static const char Levels[] = " .:-=+*#@";
  const size_t NL = sizeof(Levels) - 2; // top index
  if (Ys.empty())
    return "";
  double Lo = Ys[0], Hi = Ys[0];
  for (double Y : Ys) {
    Lo = std::min(Lo, Y);
    Hi = std::max(Hi, Y);
  }
  size_t N = std::min(Cols, Ys.size());
  std::string Out;
  for (size_t C = 0; C < N; ++C) {
    // Mean of this column's slice.
    size_t B = C * Ys.size() / N, E = (C + 1) * Ys.size() / N;
    double Acc = 0;
    for (size_t I = B; I < E; ++I)
      Acc += Ys[I];
    Acc /= static_cast<double>(E - B);
    size_t Idx =
        Hi > Lo ? static_cast<size_t>((Acc - Lo) / (Hi - Lo) * NL + 0.5)
                : NL / 2;
    Out.push_back(Levels[std::min(Idx, NL)]);
  }
  return Out;
}

} // namespace

std::string renderRunReport(const RunSummary &S, unsigned TopN) {
  std::ostringstream OS;

  OS << "================================================================\n"
     << "LLM-VeriOpt run report\n"
     << "================================================================\n\n";

  //--- Run summary ----------------------------------------------------------
  OS << "-- events --------------------------------------------------------\n";
  OS << "total " << S.Events << "  (spans " << S.Spans << ", counters "
     << S.Counters << ", instants " << S.Instants << ")\n";
  {
    std::vector<std::pair<std::string, RunSummary::SpanAgg>> Rows(
        S.SpansByName.begin(), S.SpansByName.end());
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const auto &A, const auto &B) {
                       return A.second.TotalMs > B.second.TotalMs;
                     });
    for (const auto &[SpanName, Agg] : Rows)
      OS << "  " << SpanName
         << std::string(SpanName.size() < 24 ? 24 - SpanName.size() : 1, ' ')
         << "x" << Agg.Count << "  total " << fmt("%.1f", Agg.TotalMs)
         << " ms\n";
  }
  OS << "\n";

  //--- Per-stage reward curves ----------------------------------------------
  OS << "-- GRPO reward curves (per stage) --------------------------------\n";
  if (S.Stages.empty())
    OS << "no grpo.step events in this trace\n";
  for (const auto &[Stage, Steps] : S.Stages) {
    std::vector<double> Ema, Mean;
    for (const RunSummary::StepRow &R : Steps) {
      Ema.push_back(R.Ema);
      Mean.push_back(R.Mean);
    }
    const RunSummary::StepRow &Last = Steps.back();
    OS << Stage << ": " << Steps.size() << " steps, mean reward "
       << fmt("%.3f", Mean.front()) << " -> " << fmt("%.3f", Mean.back())
       << ", final EMA " << fmt("%.3f", Ema.back()) << ", equivalent-rate "
       << fmt("%.1f%%", 100 * Last.EqRate) << "\n";
    OS << "  ema  |" << sparkline(Ema) << "|\n";
    OS << "  mean |" << sparkline(Mean) << "|\n";
  }
  OS << "\n";

  //--- Verdict breakdown ----------------------------------------------------
  OS << "-- verification verdicts (uncached queries, by DiagKind) ---------\n";
  if (S.VerifyQueries == 0) {
    OS << "no verify.candidate events in this trace\n";
  } else {
    OS << "queries: " << S.VerifyQueries << "\n";
    std::vector<std::pair<std::pair<std::string, std::string>, uint64_t>>
        Rows(S.Verdicts.begin(), S.Verdicts.end());
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const auto &A, const auto &B) {
                       return A.second > B.second;
                     });
    for (const auto &[Key, Count] : Rows) {
      std::string Label = Key.first +
                          (Key.second.empty() || Key.second == "none"
                               ? ""
                               : " / " + Key.second);
      OS << "  " << Label
         << std::string(Label.size() < 36 ? 36 - Label.size() : 1, ' ')
         << Count << "  ("
         << fmt("%.1f%%", 100.0 * static_cast<double>(Count) /
                              static_cast<double>(S.VerifyQueries))
         << ")\n";
    }
  }
  OS << "\n";

  //--- Retry ladder ---------------------------------------------------------
  OS << "-- retry ladder --------------------------------------------------\n";
  if (S.TierOutcomes.empty()) {
    OS << "no verify.tier events in this trace\n";
  } else {
    for (const auto &[Tier, Outcomes] : S.TierOutcomes) {
      uint64_t Total = 0;
      for (const auto &[_, C] : Outcomes)
        Total += C;
      OS << "  tier " << Tier << ": " << Total << " runs";
      for (const auto &[Status, C] : Outcomes)
        OS << "  " << Status << "=" << C;
      OS << "\n";
    }
  }
  OS << "\n";

  //--- Slowest verification queries -----------------------------------------
  OS << "-- slowest verification queries ----------------------------------\n";
  if (S.Candidates.empty()) {
    OS << "none\n";
  } else {
    std::vector<const RunSummary::CandidateRow *> Sorted;
    Sorted.reserve(S.Candidates.size());
    for (const RunSummary::CandidateRow &C : S.Candidates)
      Sorted.push_back(&C);
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const RunSummary::CandidateRow *A,
                        const RunSummary::CandidateRow *B) {
                       return A->DurMs > B->DurMs;
                     });
    size_t N = std::min<size_t>(TopN, Sorted.size());
    for (size_t I = 0; I < N; ++I) {
      const RunSummary::CandidateRow &C = *Sorted[I];
      OS << "  " << (I + 1) << ". " << fmt("%8.2f", C.DurMs) << " ms  "
         << C.Status << "/" << C.Diag << "  conflicts " << C.Conflicts
         << "  fuel " << C.Fuel << "\n";
    }
  }
  OS << "\n";

  //--- Cache efficacy -------------------------------------------------------
  OS << "-- verify-cache efficacy -----------------------------------------\n";
  {
    auto M = [&](const char *K) {
      auto It = S.Metrics.find(K);
      return It == S.Metrics.end() ? 0.0 : It->second;
    };
    double Hits = M("verify.cache.hit"), Misses = M("verify.cache.miss");
    if (Hits + Misses == 0) {
      OS << "no cache metrics in this trace\n";
    } else {
      OS << "  lookups " << static_cast<uint64_t>(Hits + Misses) << "  hits "
         << static_cast<uint64_t>(Hits) << "  misses "
         << static_cast<uint64_t>(Misses) << "  hit-rate "
         << fmt("%.1f%%", 100.0 * Hits / (Hits + Misses)) << "\n";
      OS << "  single-flight joins "
         << static_cast<uint64_t>(M("verify.cache.singleflight_join"))
         << "  evictions " << static_cast<uint64_t>(M("verify.cache.eviction"))
         << "\n";
    }
  }
  OS << "\n";

  //--- Batched verification efficacy ----------------------------------------
  OS << "-- batch verification efficacy -----------------------------------\n";
  {
    auto M = [&](const char *K) {
      auto It = S.Metrics.find(K);
      return It == S.Metrics.end() ? 0.0 : It->second;
    };
    double Groups = M("batch.groups");
    if (Groups == 0) {
      OS << "no batch.* metrics in this trace (BatchVerify off or no cache)\n";
    } else {
      double Cands = M("batch.candidates"), Uniq = M("batch.unique");
      double Hits = M("batch.cache_hits"), Comp = M("batch.computed");
      OS << "  groups " << static_cast<uint64_t>(Groups) << "  candidates "
         << static_cast<uint64_t>(Cands) << "  unique "
         << static_cast<uint64_t>(Uniq) << "  (dedupe saved "
         << static_cast<uint64_t>(Cands - Uniq) << ")\n";
      OS << "  ladder rungs: computed " << static_cast<uint64_t>(Comp)
         << "  served-from-cache " << static_cast<uint64_t>(Hits) << "\n";
      OS << "  assumption solves "
         << static_cast<uint64_t>(M("smt.assumption_solves"))
         << "  clauses inherited "
         << static_cast<uint64_t>(M("smt.clauses_retained"))
         << "  encode CSE hits "
         << static_cast<uint64_t>(M("encode.cse_hits")) << "\n";
    }
  }
  OS << "\n";

  //--- Verdict store efficacy ----------------------------------------------
  OS << "-- verdict store efficacy ----------------------------------------\n";
  {
    auto M = [&](const char *K) {
      auto It = S.Metrics.find(K);
      return It == S.Metrics.end() ? 0.0 : It->second;
    };
    double Hits = M("store.hits"), Misses = M("store.misses");
    double Writes = M("store.writes");
    if (Hits + Misses + Writes == 0) {
      OS << "no store metrics in this trace (persistent store off)\n";
    } else {
      double Lookups = Hits + Misses;
      OS << "  lookups " << static_cast<uint64_t>(Lookups) << "  hits "
         << static_cast<uint64_t>(Hits) << "  misses "
         << static_cast<uint64_t>(Misses) << "  hit-rate "
         << fmt("%.1f%%", Lookups ? 100.0 * Hits / Lookups : 0.0) << "\n";
      OS << "  new records " << static_cast<uint64_t>(Writes)
         << "  compactions " << static_cast<uint64_t>(M("store.compactions"))
         << "  quarantined lines "
         << static_cast<uint64_t>(M("store.quarantined")) << "\n";
      // Durability-plane row (io.* metrics): only rendered when something
      // actually went wrong, so fault-free golden reports are unchanged.
      double FlushFailures = M("io.store.flush_failures");
      double Degraded = M("io.store.degraded");
      if (FlushFailures || Degraded)
        OS << "  DEGRADED: " << static_cast<uint64_t>(FlushFailures)
           << " flush failures"
           << (Degraded ? " — store tripped to in-memory-only "
                          "(durability lost, results unaffected)"
                        : " (journal retrying)")
           << "\n";
    }
  }
  OS << "\n";

  //--- Sharded evaluation ---------------------------------------------------
  OS << "-- sharded evaluation --------------------------------------------\n";
  if (S.EvalShards.empty()) {
    OS << "no eval.shard events in this trace\n";
  } else {
    for (const RunSummary::EvalRunRow &Run : S.EvalRuns)
      OS << "  run: shards " << Run.Shards << "  samples " << Run.Samples
         << "  correct " << Run.Correct << "  inconclusive "
         << Run.Inconclusive << "  (" << fmt("%.1f", Run.DurMs)
         << " ms total)\n";
    std::vector<const RunSummary::EvalShardRow *> Sorted;
    Sorted.reserve(S.EvalShards.size());
    for (const RunSummary::EvalShardRow &R : S.EvalShards)
      Sorted.push_back(&R);
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const RunSummary::EvalShardRow *A,
                        const RunSummary::EvalShardRow *B) {
                       return A->Shard < B->Shard;
                     });
    for (const RunSummary::EvalShardRow *E : Sorted)
      OS << "  shard " << E->Shard << "  [" << E->Begin << ", " << E->End
         << ")  samples " << E->Samples << "  correct " << E->Correct
         << "  inconclusive " << E->Inconclusive << "  "
         << fmt("%.1f", E->DurMs) << " ms\n";
  }
  OS << "\n";

  //--- Evaluation driver (multi-process) ------------------------------------
  OS << "-- evaluation driver (multi-process) -----------------------------\n";
  if (S.DriverRuns.empty()) {
    OS << "no eval.driver events in this trace\n";
  } else {
    for (const RunSummary::DriverRunRow &Run : S.DriverRuns)
      OS << "  run: shards " << Run.Shards << "  spawned " << Run.Spawned
         << "  retried " << Run.Retried << "  salvaged " << Run.Salvaged
         << "  quarantined " << Run.Quarantined << "  ("
         << fmt("%.1f", Run.DurMs) << " ms total)\n";
    // Worker launches bucketed by typed outcome: the fleet's failure mix
    // at a glance.
    for (const auto &[Outcome, Count] : S.WorkerOutcomes)
      OS << "  workers " << Outcome
         << std::string(Outcome.size() < 24 ? 24 - Outcome.size() : 1, ' ')
         << Count << "\n";
  }
  OS << "\n";

  //--- InstCombine rule fires -----------------------------------------------
  OS << "-- instcombine rule fires ----------------------------------------\n";
  if (S.RuleFires.empty()) {
    OS << "no opt.rule_fire events in this trace\n";
  } else {
    std::vector<std::pair<std::string, uint64_t>> Rows(S.RuleFires.begin(),
                                                       S.RuleFires.end());
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const auto &A, const auto &B) {
                       return A.second > B.second;
                     });
    size_t N = std::min<size_t>(TopN, Rows.size());
    for (size_t I = 0; I < N; ++I)
      OS << "  " << Rows[I].first
         << std::string(Rows[I].first.size() < 28 ? 28 - Rows[I].first.size()
                                                  : 1,
                        ' ')
         << Rows[I].second << "\n";
  }

  return OS.str();
}

std::string renderRunReport(const TraceLog &Log, unsigned TopN) {
  return renderRunReport(aggregateRun(Log), TopN);
}

} // namespace veriopt
