//===- RunSummary.cpp - One-pass aggregation of a trace -----------------------//

#include "report/RunSummary.h"

#include <algorithm>

namespace veriopt {

namespace {

double argNum(const JsonValue &E, const char *Key, double Default = 0) {
  const JsonValue *Args = E.get("args");
  if (!Args)
    return Default;
  const JsonValue *V = Args->get(Key);
  return V && V->isNumber() ? V->number() : Default;
}

std::string argStr(const JsonValue &E, const char *Key) {
  const JsonValue *Args = E.get("args");
  if (!Args)
    return "";
  const JsonValue *V = Args->get(Key);
  return V && V->isString() ? V->str() : "";
}

std::string name(const JsonValue &E) {
  const JsonValue *N = E.get("name");
  return N && N->isString() ? N->str() : "";
}

double durMs(const JsonValue &E) {
  const JsonValue *D = E.get("dur_ns");
  return D && D->isNumber() ? D->number() / 1e6 : 0;
}

uint64_t argU64(const JsonValue &E, const char *Key) {
  return static_cast<uint64_t>(argNum(E, Key));
}

/// Canonical serialization for deterministic-plane keys: objects iterate
/// their (already sorted) std::map keys, numbers print via jsonNumber
/// (round-trips doubles), strings via jsonString. Equal JSON values always
/// produce equal text.
void canonJson(const JsonValue &V, std::string &Out) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.boolean() ? "true" : "false";
    break;
  case JsonValue::Kind::Number:
    Out += jsonNumber(V.number());
    break;
  case JsonValue::Kind::String:
    Out += jsonString(V.str());
    break;
  case JsonValue::Kind::Array: {
    Out.push_back('[');
    bool First = true;
    for (const JsonValue &E : V.array()) {
      if (!First)
        Out.push_back(',');
      First = false;
      canonJson(E, Out);
    }
    Out.push_back(']');
    break;
  }
  case JsonValue::Kind::Object: {
    Out.push_back('{');
    bool First = true;
    for (const auto &[K, E] : V.object()) {
      if (!First)
        Out.push_back(',');
      First = false;
      Out += jsonString(K) + ":";
      canonJson(E, Out);
    }
    Out.push_back('}');
    break;
  }
  }
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

} // namespace

bool isTimingPlaneEvent(const JsonValue &Event) {
  // Metric exports are deterministic except for wall-clock instruments —
  // by the documented naming convention (docs/OBSERVABILITY.md) the `*_ms`
  // keys, whose values (and a latency histogram's bucket spread/sum)
  // measure elapsed time — and durability-plane instruments — the `io.`
  // prefix, whose values measure how the *disk* behaved (fault injections,
  // flush failures, degraded-mode gauges), so a faulty and a fault-free
  // same-seed run legitimately differ there while every correctness-plane
  // metric stays identical. Everything else about an event that can vary
  // between same-seed runs (ts_ns, dur_ns, tid, seq, meta) is already
  // outside the (name, ph, args) key.
  const std::string N = name(Event);
  if (N != "metric" && N != "metric.hist")
    return false;
  const std::string Key = argStr(Event, "key");
  return endsWith(Key, "_ms") || Key.compare(0, 3, "io.") == 0;
}

std::string deterministicEventKey(const JsonValue &Event) {
  std::string Key = name(Event);
  Key.push_back('|');
  if (const JsonValue *Ph = Event.get("ph"))
    if (Ph->isString())
      Key += Ph->str();
  Key.push_back('|');
  if (const JsonValue *Args = Event.get("args"))
    canonJson(*Args, Key);
  else
    Key += "{}";
  return Key;
}

RunSummary aggregateRun(const TraceLog &Log) {
  RunSummary S;
  S.Events = Log.Events.size();

  for (const JsonValue &E : Log.Events) {
    const std::string N = name(E);
    const std::string Ph =
        E.get("ph") && E.get("ph")->isString() ? E.get("ph")->str() : "";
    if (Ph == "X") {
      ++S.Spans;
      auto &Agg = S.SpansByName[N];
      ++Agg.Count;
      Agg.TotalMs += durMs(E);
    } else if (Ph == "C") {
      ++S.Counters;
    } else {
      ++S.Instants;
    }

    if (!isTimingPlaneEvent(E)) {
      ++S.DeterministicKeys[deterministicEventKey(E)];
      ++S.DeterministicEvents;
    }

    if (N == "grpo.step") {
      std::string Stage = argStr(E, "stage");
      if (Stage.empty())
        Stage = "(unlabeled)";
      S.Stages[Stage].push_back({argNum(E, "step"), argNum(E, "mean_reward"),
                                 argNum(E, "ema_reward"),
                                 argNum(E, "equivalent_rate")});
    } else if (N == "verify.candidate") {
      ++S.VerifyQueries;
      std::string Status = argStr(E, "status"), Diag = argStr(E, "diag");
      ++S.Verdicts[{Status, Diag}];
      ++S.StatusCounts[Status];
      ++S.DiagCounts[Diag];
      S.Candidates.push_back({durMs(E), Status, Diag, argU64(E, "conflicts"),
                              argU64(E, "fuel")});
    } else if (N == "verify.tier") {
      ++S.TierOutcomes[static_cast<int64_t>(argNum(E, "tier"))]
                      [argStr(E, "status")];
    } else if (N == "eval.run") {
      S.EvalRuns.push_back({argU64(E, "shards"), argU64(E, "samples"),
                            argU64(E, "correct"), argU64(E, "inconclusive"),
                            durMs(E)});
    } else if (N == "eval.shard") {
      S.EvalShards.push_back({argU64(E, "shard"), argU64(E, "begin"),
                              argU64(E, "end"), argU64(E, "samples"),
                              argU64(E, "correct"),
                              argU64(E, "inconclusive"), durMs(E)});
    } else if (N == "eval.driver") {
      S.DriverRuns.push_back({argU64(E, "shards"), argU64(E, "spawned"),
                              argU64(E, "retried"), argU64(E, "salvaged"),
                              argU64(E, "quarantined"), durMs(E)});
    } else if (N == "eval.worker") {
      ++S.WorkerOutcomes[argStr(E, "outcome")];
    } else if (N == "metric") {
      S.Metrics[argStr(E, "key")] = argNum(E, "value");
    } else if (N == "opt.rule_fire") {
      S.RuleFires[argStr(E, "rule")] += argU64(E, "count");
    }
  }

  // Step curves render in step order regardless of emit order.
  for (auto &[_, Steps] : S.Stages)
    std::stable_sort(Steps.begin(), Steps.end(),
                     [](const RunSummary::StepRow &A,
                        const RunSummary::StepRow &B) {
                       return A.Step < B.Step;
                     });
  return S;
}

} // namespace veriopt
