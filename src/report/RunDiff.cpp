//===- RunDiff.cpp - A/B comparison of two traced runs ------------------------//

#include "report/RunDiff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace veriopt {

namespace {

std::string fmt(const char *F, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), F, V);
  return Buf;
}

/// Signed delta with an explicit '+' so zero deltas read as "+0".
std::string signedInt(int64_t D) {
  return (D >= 0 ? "+" : "") + std::to_string(D);
}

std::string signedF(const char *F, double D) {
  return (D >= 0 ? "+" : "") + fmt(F, D);
}

std::string pad(const std::string &S, size_t W) {
  return S + std::string(S.size() < W ? W - S.size() : 1, ' ');
}

/// Union of the keys of two maps, in key order.
template <typename M> std::vector<typename M::key_type> unionKeys(
    const M &A, const M &B) {
  std::vector<typename M::key_type> Keys;
  for (const auto &[K, _] : A)
    Keys.push_back(K);
  for (const auto &[K, _] : B)
    if (!A.count(K))
      Keys.push_back(K);
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

template <typename M>
uint64_t lookupOr0(const M &Map, const typename M::key_type &K) {
  auto It = Map.find(K);
  return It == Map.end() ? 0 : It->second;
}

/// One "name  A -> B  (delta)" count row with share-shift percentage
/// points when totals are meaningful.
void countShiftRow(std::ostringstream &OS, const std::string &Label,
                   uint64_t CA, uint64_t CB, uint64_t TotalA,
                   uint64_t TotalB) {
  OS << "  " << pad(Label, 36) << CA << " -> " << CB << "  ("
     << signedInt(static_cast<int64_t>(CB) - static_cast<int64_t>(CA));
  if (TotalA && TotalB) {
    double ShareA = 100.0 * static_cast<double>(CA) / static_cast<double>(TotalA);
    double ShareB = 100.0 * static_cast<double>(CB) / static_cast<double>(TotalB);
    OS << ", " << signedF("%.1f", ShareB - ShareA) << " pp";
  }
  OS << ")\n";
}

} // namespace

RunDiff diffRuns(RunSummary A, RunSummary B) {
  RunDiff D;
  D.A = std::move(A);
  D.B = std::move(B);

  for (const std::string &K :
       unionKeys(D.A.DeterministicKeys, D.B.DeterministicKeys)) {
    uint64_t CA = lookupOr0(D.A.DeterministicKeys, K);
    uint64_t CB = lookupOr0(D.B.DeterministicKeys, K);
    if (CA == CB)
      continue;
    D.DeterministicDeltas.push_back({K, CA, CB});
    if (CA > CB)
      D.DeterministicOnlyA += CA - CB;
    else
      D.DeterministicOnlyB += CB - CA;
  }
  return D;
}

std::string renderRunDiff(const RunDiff &D, unsigned TopN) {
  const RunSummary &A = D.A, &B = D.B;
  std::ostringstream OS;

  OS << "================================================================\n"
     << "LLM-VeriOpt run diff (A -> B)\n"
     << "================================================================\n\n";

  OS << "-- events --------------------------------------------------------\n"
     << "A: " << A.Events << " events  (spans " << A.Spans << ", counters "
     << A.Counters << ", instants " << A.Instants << ")\n"
     << "B: " << B.Events << " events  (spans " << B.Spans << ", counters "
     << B.Counters << ", instants " << B.Instants << ")\n\n";

  //--- Deterministic plane --------------------------------------------------
  // Checked first and separately from every timing section below: for two
  // same-seed runs this must be IDENTICAL at any thread count, while the
  // wall-time sections are expected to move.
  OS << "-- deterministic plane (multiset of (name, ph, args)) ------------\n";
  if (D.deterministicPlaneIdentical()) {
    OS << "IDENTICAL: " << A.DeterministicEvents
       << " events match exactly (same-seed contract holds)\n";
  } else {
    OS << "DIVERGED: " << D.DeterministicDeltas.size()
       << " distinct keys differ (surplus A " << D.DeterministicOnlyA
       << ", surplus B " << D.DeterministicOnlyB << ")\n";
    size_t N = std::min<size_t>(TopN, D.DeterministicDeltas.size());
    for (size_t I = 0; I < N; ++I) {
      const RunDiff::KeyDelta &K = D.DeterministicDeltas[I];
      OS << "  x" << K.CountA << " -> x" << K.CountB << "  " << K.Key << "\n";
    }
    if (N < D.DeterministicDeltas.size())
      OS << "  ... " << (D.DeterministicDeltas.size() - N)
         << " more (rerun with --top to widen)\n";
  }
  OS << "\n";

  //--- Reward curves --------------------------------------------------------
  OS << "-- GRPO reward-curve deltas (per stage) --------------------------\n";
  if (A.Stages.empty() && B.Stages.empty())
    OS << "no grpo.step events in either trace\n";
  for (const std::string &Stage : unionKeys(A.Stages, B.Stages)) {
    auto ItA = A.Stages.find(Stage), ItB = B.Stages.find(Stage);
    if (ItA == A.Stages.end() || ItB == B.Stages.end()) {
      OS << Stage << ": only in " << (ItA != A.Stages.end() ? "A" : "B")
         << " (" << (ItA != A.Stages.end() ? ItA : ItB)->second.size()
         << " steps)\n";
      continue;
    }
    const auto &SA = ItA->second, &SB = ItB->second;
    const RunSummary::StepRow &LA = SA.back(), &LB = SB.back();
    OS << Stage << ": steps " << SA.size() << " -> " << SB.size() << "\n";
    OS << "  final mean reward  " << fmt("%.3f", LA.Mean) << " -> "
       << fmt("%.3f", LB.Mean) << "  ("
       << signedF("%.3f", LB.Mean - LA.Mean) << ")\n";
    OS << "  final EMA reward   " << fmt("%.3f", LA.Ema) << " -> "
       << fmt("%.3f", LB.Ema) << "  (" << signedF("%.3f", LB.Ema - LA.Ema)
       << ")\n";
    OS << "  equivalent-rate    " << fmt("%.1f%%", 100 * LA.EqRate) << " -> "
       << fmt("%.1f%%", 100 * LB.EqRate) << "  ("
       << signedF("%.1f", 100 * (LB.EqRate - LA.EqRate)) << " pp)\n";
  }
  OS << "\n";

  //--- Verdict mix ----------------------------------------------------------
  OS << "-- verdict-mix shift (status / DiagKind) -------------------------\n";
  if (A.VerifyQueries == 0 && B.VerifyQueries == 0) {
    OS << "no verify.candidate events in either trace\n";
  } else {
    OS << "queries: " << A.VerifyQueries << " -> " << B.VerifyQueries
       << "  ("
       << signedInt(static_cast<int64_t>(B.VerifyQueries) -
                    static_cast<int64_t>(A.VerifyQueries))
       << ")\n";
    for (const auto &Key : unionKeys(A.Verdicts, B.Verdicts)) {
      std::string Label = Key.first +
                          (Key.second.empty() || Key.second == "none"
                               ? ""
                               : " / " + Key.second);
      countShiftRow(OS, Label, lookupOr0(A.Verdicts, Key),
                    lookupOr0(B.Verdicts, Key), A.VerifyQueries,
                    B.VerifyQueries);
    }
  }
  OS << "\n";

  //--- DiagKind mix ---------------------------------------------------------
  OS << "-- DiagKind shift ------------------------------------------------\n";
  if (A.DiagCounts.empty() && B.DiagCounts.empty()) {
    OS << "no verify.candidate events in either trace\n";
  } else {
    for (const std::string &Diag : unionKeys(A.DiagCounts, B.DiagCounts))
      countShiftRow(OS, Diag, lookupOr0(A.DiagCounts, Diag),
                    lookupOr0(B.DiagCounts, Diag), A.VerifyQueries,
                    B.VerifyQueries);
  }
  OS << "\n";

  //--- Retry ladder ---------------------------------------------------------
  OS << "-- retry-ladder deltas -------------------------------------------\n";
  if (A.TierOutcomes.empty() && B.TierOutcomes.empty()) {
    OS << "no verify.tier events in either trace\n";
  } else {
    for (int64_t Tier : unionKeys(A.TierOutcomes, B.TierOutcomes)) {
      static const std::map<std::string, uint64_t> Empty;
      auto ItA = A.TierOutcomes.find(Tier);
      auto ItB = B.TierOutcomes.find(Tier);
      const auto &TA = ItA == A.TierOutcomes.end() ? Empty : ItA->second;
      const auto &TB = ItB == B.TierOutcomes.end() ? Empty : ItB->second;
      OS << "  tier " << Tier << ":";
      for (const std::string &Status : unionKeys(TA, TB)) {
        uint64_t CA = lookupOr0(TA, Status), CB = lookupOr0(TB, Status);
        OS << "  " << Status << " " << CA << "->" << CB << " ("
           << signedInt(static_cast<int64_t>(CB) - static_cast<int64_t>(CA))
           << ")";
      }
      OS << "\n";
    }
  }
  OS << "\n";

  //--- Cache efficacy -------------------------------------------------------
  OS << "-- verify-cache efficacy deltas ----------------------------------\n";
  {
    auto M = [](const RunSummary &S, const char *K) {
      auto It = S.Metrics.find(K);
      return It == S.Metrics.end() ? 0.0 : It->second;
    };
    double HA = M(A, "verify.cache.hit"), MA = M(A, "verify.cache.miss");
    double HB = M(B, "verify.cache.hit"), MB = M(B, "verify.cache.miss");
    if (HA + MA == 0 && HB + MB == 0) {
      OS << "no cache metrics in either trace\n";
    } else {
      double RateA = HA + MA > 0 ? 100.0 * HA / (HA + MA) : 0;
      double RateB = HB + MB > 0 ? 100.0 * HB / (HB + MB) : 0;
      OS << "  lookups   " << static_cast<uint64_t>(HA + MA) << " -> "
         << static_cast<uint64_t>(HB + MB) << "\n";
      OS << "  hit-rate  " << fmt("%.1f%%", RateA) << " -> "
         << fmt("%.1f%%", RateB) << "  (" << signedF("%.1f", RateB - RateA)
         << " pp)\n";
      OS << "  single-flight joins "
         << static_cast<uint64_t>(M(A, "verify.cache.singleflight_join"))
         << " -> "
         << static_cast<uint64_t>(M(B, "verify.cache.singleflight_join"))
         << "  evictions "
         << static_cast<uint64_t>(M(A, "verify.cache.eviction")) << " -> "
         << static_cast<uint64_t>(M(B, "verify.cache.eviction")) << "\n";
    }
  }
  OS << "\n";

  //--- Per-span wall time ---------------------------------------------------
  // Timings live on the nondeterministic plane: deltas here are expected
  // between runs/machines and are reported as regressions to *investigate*,
  // never as identity violations.
  OS << "-- per-span wall-time deltas (nondeterministic plane) ------------\n";
  {
    struct Row {
      std::string Name;
      uint64_t CountA, CountB;
      double MsA, MsB;
    };
    std::vector<Row> Rows;
    static const RunSummary::SpanAgg Zero;
    for (const std::string &Name : unionKeys(A.SpansByName, B.SpansByName)) {
      auto ItA = A.SpansByName.find(Name);
      auto ItB = B.SpansByName.find(Name);
      const auto &SA = ItA == A.SpansByName.end() ? Zero : ItA->second;
      const auto &SB = ItB == B.SpansByName.end() ? Zero : ItB->second;
      Rows.push_back({Name, SA.Count, SB.Count, SA.TotalMs, SB.TotalMs});
    }
    if (Rows.empty())
      OS << "no spans in either trace\n";
    // Largest absolute regression first; ties break on the (unique) name,
    // so the ordering is a pure function of the two inputs.
    std::sort(Rows.begin(), Rows.end(), [](const Row &X, const Row &Y) {
      double DX = std::fabs(X.MsB - X.MsA), DY = std::fabs(Y.MsB - Y.MsA);
      if (DX != DY)
        return DX > DY;
      return X.Name < Y.Name;
    });
    size_t N = std::min<size_t>(TopN, Rows.size());
    for (size_t I = 0; I < N; ++I) {
      const Row &R = Rows[I];
      OS << "  " << pad(R.Name, 24) << "x" << R.CountA << " -> x" << R.CountB
         << "  " << fmt("%.1f", R.MsA) << " -> " << fmt("%.1f", R.MsB)
         << " ms  (" << signedF("%.1f", R.MsB - R.MsA) << " ms";
      if (R.MsA > 0)
        OS << ", " << fmt("%.2f", R.MsB / R.MsA) << "x";
      OS << ")\n";
    }
    if (N < Rows.size())
      OS << "  ... " << (Rows.size() - N)
         << " more (rerun with --top to widen)\n";
  }

  return OS.str();
}

} // namespace veriopt
