//===- BenchDiff.h - Bench-JSON regression comparison ------------*- C++ -*-=//
//
// The CI regression gate (`report --bench-diff BASELINE.json CURRENT.json
// --tolerance-file T.json`): compares two schema-valid BENCH_<name>.json
// files instrument by instrument, applying per-gauge tolerance bands from a
// rule file, and classifies every key as ok / within-band / ignored /
// REGRESSION. The driver exits nonzero (exit code 3) iff any key
// regresses, so CI can gate on committed baselines (bench/baselines/).
//
// Tolerance file (first matching rule wins; '*' in `match` is a wildcard):
//
//   {"schema": 1,
//    "rules": [
//      {"match": "bench.*_ms",   "policy": "ignore"},          // timings
//      {"match": "bench.speedup*", "policy": "ignore"},
//      {"match": "verify.cache.*", "policy": "band",
//       "rel": 0.10, "abs": 8},   // pass iff |cur-base| <= max(abs, rel*|base|)
//      {"match": "*",            "policy": "exact"}]}          // default
//
// With no rule file (or no matching rule) every key is compared exactly.
// A key present on only one side is a regression unless its rule says
// "ignore" — schema drift must fail CI, not rot silently. For histograms,
// "exact" compares bounds/counts/count/sum bit-for-bit; "band" requires
// identical bounds and bands the total count, ignoring the per-bucket
// spread and sum (those encode wall-clock timing). NaN gauges compare
// equal to NaN (a NaN baseline does not poison every run).
//
// Deterministic throughout: findings are ordered by (section, key), so the
// rendered report is golden-testable. Workflow doc: docs/COMPARISON.md.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_REPORT_BENCHDIFF_H
#define VERIOPT_REPORT_BENCHDIFF_H

#include "report/BenchJson.h"

#include <string>
#include <vector>

namespace veriopt {

/// One tolerance rule. Policies: Exact (bit-for-bit), Band (numeric
/// tolerance), Ignore (never a finding).
struct ToleranceRule {
  enum class Policy { Exact, Band, Ignore };
  std::string Match; ///< glob over instrument names ('*' wildcard)
  Policy Pol = Policy::Exact;
  double Rel = 0; ///< band half-width as a fraction of |baseline|
  double Abs = 0; ///< band half-width, absolute
};

struct ToleranceSpec {
  std::vector<ToleranceRule> Rules; ///< first match wins; default Exact
};

/// Parse a tolerance file. Typed error messages on malformed rules.
bool parseToleranceSpec(const std::string &Text, ToleranceSpec &Out,
                        std::string *Err);
bool loadToleranceSpec(const std::string &Path, ToleranceSpec &Out,
                       std::string *Err);

/// Simple glob: '*' matches any (possibly empty) substring.
bool globMatch(const std::string &Pattern, const std::string &Name);

/// The comparison verdict for one instrument.
struct BenchFinding {
  enum class Kind { Counter, Gauge, Histogram };
  enum class Verdict {
    Ok,         ///< equal (or both NaN)
    WithinBand, ///< differs, inside the rule's tolerance band
    Ignored,    ///< rule policy Ignore
    Regression, ///< differs beyond tolerance, or present on only one side
  };
  Kind K = Kind::Gauge;
  Verdict V = Verdict::Ok;
  std::string Key;
  std::string BaseText, CurText; ///< rendered values ("-" when absent)
  std::string Why;               ///< regression/band explanation
};

struct BenchDiff {
  std::string Bench; ///< shared bench name
  std::vector<BenchFinding> Findings; ///< ordered by (kind, key)
  size_t Regressions = 0, WithinBand = 0, Ignored = 0, Ok = 0;
  bool hasRegression() const { return Regressions != 0; }
};

/// Compare \p Cur against \p Base under \p Tol. Fails (returns false with
/// \p Err) only on a bench-name mismatch — comparing different benches is
/// an operator error, not a regression.
bool compareBenchReports(const BenchReport &Base, const BenchReport &Cur,
                         const ToleranceSpec &Tol, BenchDiff &Out,
                         std::string *Err);

/// Render the comparison. \p Verbose includes ok/within-band rows;
/// otherwise only regressions and the summary counts are printed.
std::string renderBenchDiff(const BenchDiff &D, bool Verbose = false);

} // namespace veriopt

#endif // VERIOPT_REPORT_BENCHDIFF_H
