//===- RunReport.h - Single-run report rendering -----------------*- C++ -*-=//
//
// Renders the human-readable end-of-run report from an aggregated
// RunSummary: per-stage reward curves, verdict breakdown by DiagKind, the
// retry-ladder summary, top-N slowest verification queries, cache efficacy,
// batch/shard/driver sections, and InstCombine rule-fire counts.
//
// Rendering is deterministic for a given log — wall-clock values are read
// from the events, never from the environment — so the output is
// golden-file tested (tests/report).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_REPORT_RUNREPORT_H
#define VERIOPT_REPORT_RUNREPORT_H

#include "report/RunSummary.h"

#include <string>

namespace veriopt {

/// Render the end-of-run report from a pre-aggregated summary.
std::string renderRunReport(const RunSummary &S, unsigned TopN = 10);

/// Convenience overload: aggregate + render.
std::string renderRunReport(const TraceLog &Log, unsigned TopN = 10);

} // namespace veriopt

#endif // VERIOPT_REPORT_RUNREPORT_H
