//===- BenchDiff.cpp - Bench-JSON regression comparison -----------------------//

#include "report/BenchDiff.h"

#include "trace/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace veriopt {

bool globMatch(const std::string &Pattern, const std::string &Name) {
  // Iterative glob with '*' backtracking; no other metacharacters.
  size_t P = 0, N = 0, Star = std::string::npos, Mark = 0;
  while (N < Name.size()) {
    if (P < Pattern.size() && (Pattern[P] == Name[N])) {
      ++P;
      ++N;
    } else if (P < Pattern.size() && Pattern[P] == '*') {
      Star = P++;
      Mark = N;
    } else if (Star != std::string::npos) {
      P = Star + 1;
      N = ++Mark;
    } else {
      return false;
    }
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

namespace {

bool fail(std::string *Err, const std::string &Why) {
  if (Err)
    *Err = Why;
  return false;
}

const ToleranceRule *findRule(const ToleranceSpec &Tol,
                              const std::string &Key) {
  for (const ToleranceRule &R : Tol.Rules)
    if (globMatch(R.Match, Key))
      return &R;
  return nullptr;
}

std::string fmtDouble(double V) { return jsonNumber(V); }

std::string fmtGauge(double V) {
  if (std::isnan(V))
    return "nan";
  return fmtDouble(V);
}

/// Equality with NaN==NaN: a NaN baseline matches a NaN current value.
bool gaugeEqual(double A, double B) {
  if (std::isnan(A) || std::isnan(B))
    return std::isnan(A) && std::isnan(B);
  return A == B;
}

bool withinBand(double Base, double Cur, const ToleranceRule &R) {
  if (std::isnan(Base) || std::isnan(Cur))
    return false; // NaN never lands inside a numeric band
  double Band = std::max(R.Abs, R.Rel * std::fabs(Base));
  return std::fabs(Cur - Base) <= Band;
}

std::string bandText(double Base, const ToleranceRule &R) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "band +-%s",
                fmtDouble(std::max(R.Abs, R.Rel * std::fabs(Base))).c_str());
  return Buf;
}

std::string histText(const BenchReport::Hist &H) {
  std::string Out = "count=" + std::to_string(H.Count) +
                    " sum=" + fmtDouble(H.Sum) + " counts=[";
  for (size_t I = 0; I < H.Counts.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(H.Counts[I]);
  }
  Out += "]";
  return Out;
}

bool histExactEqual(const BenchReport::Hist &A, const BenchReport::Hist &B) {
  return A.Bounds == B.Bounds && A.Counts == B.Counts && A.Count == B.Count &&
         A.Sum == B.Sum;
}

template <typename MapT>
std::set<std::string> unionKeys(const MapT &A, const MapT &B) {
  std::set<std::string> Keys;
  for (const auto &[K, V] : A)
    Keys.insert(K);
  for (const auto &[K, V] : B)
    Keys.insert(K);
  return Keys;
}

void record(BenchDiff &Out, BenchFinding F) {
  switch (F.V) {
  case BenchFinding::Verdict::Ok:
    ++Out.Ok;
    break;
  case BenchFinding::Verdict::WithinBand:
    ++Out.WithinBand;
    break;
  case BenchFinding::Verdict::Ignored:
    ++Out.Ignored;
    break;
  case BenchFinding::Verdict::Regression:
    ++Out.Regressions;
    break;
  }
  Out.Findings.push_back(std::move(F));
}

/// Shared missing-key handling: Ignore rules silence it, anything else is
/// a regression (schema drift must fail CI).
bool handleMissing(BenchDiff &Out, BenchFinding::Kind K,
                   const std::string &Key, bool InBase, bool InCur,
                   const std::string &PresentText, const ToleranceRule *R) {
  if (InBase == InCur)
    return false;
  BenchFinding F;
  F.K = K;
  F.Key = Key;
  F.BaseText = InBase ? PresentText : "-";
  F.CurText = InCur ? PresentText : "-";
  if (R && R->Pol == ToleranceRule::Policy::Ignore) {
    F.V = BenchFinding::Verdict::Ignored;
  } else {
    F.V = BenchFinding::Verdict::Regression;
    F.Why = InBase ? "present in baseline, missing in current"
                   : "missing in baseline, present in current";
  }
  record(Out, std::move(F));
  return true;
}

} // namespace

bool parseToleranceSpec(const std::string &Text, ToleranceSpec &Out,
                        std::string *Err) {
  Out = ToleranceSpec();
  JsonValue Doc;
  std::string JErr;
  if (!parseJson(Text, Doc, &JErr))
    return fail(Err, "malformed JSON: " + JErr);
  if (!Doc.isObject())
    return fail(Err, "top level is not a JSON object");
  const JsonValue *Schema = Doc.get("schema");
  if (!Schema || !Schema->isNumber() || Schema->number() != 1)
    return fail(Err, "missing 'schema': 1");
  const JsonValue *Rules = Doc.get("rules");
  if (!Rules || !Rules->isArray())
    return fail(Err, "missing 'rules' array");
  size_t Idx = 0;
  for (const JsonValue &RV : Rules->array()) {
    std::string Where = "rule #" + std::to_string(Idx++);
    if (!RV.isObject())
      return fail(Err, Where + " is not an object");
    ToleranceRule R;
    const JsonValue *Match = RV.get("match");
    if (!Match || !Match->isString() || Match->str().empty())
      return fail(Err, Where + " missing nonempty string 'match'");
    R.Match = Match->str();
    const JsonValue *Policy = RV.get("policy");
    if (!Policy || !Policy->isString())
      return fail(Err, Where + " missing string 'policy'");
    if (Policy->str() == "exact")
      R.Pol = ToleranceRule::Policy::Exact;
    else if (Policy->str() == "band")
      R.Pol = ToleranceRule::Policy::Band;
    else if (Policy->str() == "ignore")
      R.Pol = ToleranceRule::Policy::Ignore;
    else
      return fail(Err, Where + " has unknown policy '" + Policy->str() +
                           "' (want exact|band|ignore)");
    if (const JsonValue *Rel = RV.get("rel")) {
      if (!Rel->isNumber() || Rel->number() < 0)
        return fail(Err, Where + " 'rel' must be a non-negative number");
      R.Rel = Rel->number();
    }
    if (const JsonValue *Abs = RV.get("abs")) {
      if (!Abs->isNumber() || Abs->number() < 0)
        return fail(Err, Where + " 'abs' must be a non-negative number");
      R.Abs = Abs->number();
    }
    if (R.Pol == ToleranceRule::Policy::Band && R.Rel == 0 && R.Abs == 0)
      return fail(Err, Where + " is 'band' but sets neither 'rel' nor 'abs'");
    Out.Rules.push_back(std::move(R));
  }
  return true;
}

bool loadToleranceSpec(const std::string &Path, ToleranceSpec &Out,
                       std::string *Err) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return fail(Err, "cannot open " + Path);
  std::ostringstream SS;
  SS << IS.rdbuf();
  std::string PErr;
  if (!parseToleranceSpec(SS.str(), Out, &PErr))
    return fail(Err, Path + ": " + PErr);
  return true;
}

bool compareBenchReports(const BenchReport &Base, const BenchReport &Cur,
                         const ToleranceSpec &Tol, BenchDiff &Out,
                         std::string *Err) {
  Out = BenchDiff();
  if (Base.Bench != Cur.Bench)
    return fail(Err, "bench name mismatch: baseline is '" + Base.Bench +
                         "', current is '" + Cur.Bench + "'");
  Out.Bench = Base.Bench;

  for (const std::string &Key : unionKeys(Base.Counters, Cur.Counters)) {
    const ToleranceRule *R = findRule(Tol, Key);
    auto BI = Base.Counters.find(Key), CI = Cur.Counters.find(Key);
    bool InBase = BI != Base.Counters.end(), InCur = CI != Cur.Counters.end();
    std::string Present =
        std::to_string(InBase ? BI->second : CI->second);
    if (handleMissing(Out, BenchFinding::Kind::Counter, Key, InBase, InCur,
                      Present, R))
      continue;
    BenchFinding F;
    F.K = BenchFinding::Kind::Counter;
    F.Key = Key;
    F.BaseText = std::to_string(BI->second);
    F.CurText = std::to_string(CI->second);
    if (R && R->Pol == ToleranceRule::Policy::Ignore) {
      F.V = BenchFinding::Verdict::Ignored;
    } else if (BI->second == CI->second) {
      F.V = BenchFinding::Verdict::Ok;
    } else if (R && R->Pol == ToleranceRule::Policy::Band &&
               withinBand(static_cast<double>(BI->second),
                          static_cast<double>(CI->second), *R)) {
      F.V = BenchFinding::Verdict::WithinBand;
      F.Why = bandText(static_cast<double>(BI->second), *R);
    } else {
      F.V = BenchFinding::Verdict::Regression;
      F.Why = R && R->Pol == ToleranceRule::Policy::Band
                  ? "outside " + bandText(static_cast<double>(BI->second), *R)
                  : "exact mismatch";
    }
    record(Out, std::move(F));
  }

  for (const std::string &Key : unionKeys(Base.Gauges, Cur.Gauges)) {
    const ToleranceRule *R = findRule(Tol, Key);
    auto BI = Base.Gauges.find(Key), CI = Cur.Gauges.find(Key);
    bool InBase = BI != Base.Gauges.end(), InCur = CI != Cur.Gauges.end();
    std::string Present = fmtGauge(InBase ? BI->second : CI->second);
    if (handleMissing(Out, BenchFinding::Kind::Gauge, Key, InBase, InCur,
                      Present, R))
      continue;
    BenchFinding F;
    F.K = BenchFinding::Kind::Gauge;
    F.Key = Key;
    F.BaseText = fmtGauge(BI->second);
    F.CurText = fmtGauge(CI->second);
    if (R && R->Pol == ToleranceRule::Policy::Ignore) {
      F.V = BenchFinding::Verdict::Ignored;
    } else if (gaugeEqual(BI->second, CI->second)) {
      F.V = BenchFinding::Verdict::Ok;
    } else if (R && R->Pol == ToleranceRule::Policy::Band &&
               withinBand(BI->second, CI->second, *R)) {
      F.V = BenchFinding::Verdict::WithinBand;
      F.Why = bandText(BI->second, *R);
    } else {
      F.V = BenchFinding::Verdict::Regression;
      F.Why = R && R->Pol == ToleranceRule::Policy::Band
                  ? "outside " + bandText(BI->second, *R)
                  : "exact mismatch";
    }
    record(Out, std::move(F));
  }

  for (const std::string &Key : unionKeys(Base.Histograms, Cur.Histograms)) {
    const ToleranceRule *R = findRule(Tol, Key);
    auto BI = Base.Histograms.find(Key), CI = Cur.Histograms.find(Key);
    bool InBase = BI != Base.Histograms.end(),
         InCur = CI != Cur.Histograms.end();
    std::string Present = histText(InBase ? BI->second : CI->second);
    if (handleMissing(Out, BenchFinding::Kind::Histogram, Key, InBase, InCur,
                      Present, R))
      continue;
    BenchFinding F;
    F.K = BenchFinding::Kind::Histogram;
    F.Key = Key;
    F.BaseText = histText(BI->second);
    F.CurText = histText(CI->second);
    if (R && R->Pol == ToleranceRule::Policy::Ignore) {
      F.V = BenchFinding::Verdict::Ignored;
    } else if (R && R->Pol == ToleranceRule::Policy::Band) {
      // Band on histograms: the bucket layout must match, the total count
      // is banded, and the per-bucket spread and sum (timing-shaped) are
      // free to move.
      if (BI->second.Bounds != CI->second.Bounds) {
        F.V = BenchFinding::Verdict::Regression;
        F.Why = "bucket bounds differ";
      } else if (withinBand(static_cast<double>(BI->second.Count),
                            static_cast<double>(CI->second.Count), *R)) {
        F.V = BI->second.Count == CI->second.Count
                  ? BenchFinding::Verdict::Ok
                  : BenchFinding::Verdict::WithinBand;
        if (F.V == BenchFinding::Verdict::WithinBand)
          F.Why = "count " + bandText(static_cast<double>(BI->second.Count), *R);
      } else {
        F.V = BenchFinding::Verdict::Regression;
        F.Why = "count outside " +
                bandText(static_cast<double>(BI->second.Count), *R);
      }
    } else if (histExactEqual(BI->second, CI->second)) {
      F.V = BenchFinding::Verdict::Ok;
    } else {
      F.V = BenchFinding::Verdict::Regression;
      F.Why = "exact mismatch";
    }
    record(Out, std::move(F));
  }
  return true;
}

namespace {

const char *kindName(BenchFinding::Kind K) {
  switch (K) {
  case BenchFinding::Kind::Counter:
    return "counter";
  case BenchFinding::Kind::Gauge:
    return "gauge";
  case BenchFinding::Kind::Histogram:
    return "histogram";
  }
  return "?";
}

const char *verdictName(BenchFinding::Verdict V) {
  switch (V) {
  case BenchFinding::Verdict::Ok:
    return "ok";
  case BenchFinding::Verdict::WithinBand:
    return "within-band";
  case BenchFinding::Verdict::Ignored:
    return "ignored";
  case BenchFinding::Verdict::Regression:
    return "REGRESSION";
  }
  return "?";
}

} // namespace

std::string renderBenchDiff(const BenchDiff &D, bool Verbose) {
  std::ostringstream OS;
  OS << "=== Bench comparison: " << D.Bench << " ===\n";
  OS << "instruments: " << D.Findings.size() << "  ok: " << D.Ok
     << "  within-band: " << D.WithinBand << "  ignored: " << D.Ignored
     << "  regressions: " << D.Regressions << "\n";
  for (const BenchFinding &F : D.Findings) {
    bool Print = Verbose || F.V == BenchFinding::Verdict::Regression;
    if (!Print)
      continue;
    OS << "  [" << verdictName(F.V) << "] " << kindName(F.K) << " " << F.Key
       << ": base=" << F.BaseText << " cur=" << F.CurText;
    if (!F.Why.empty())
      OS << "  (" << F.Why << ")";
    OS << "\n";
  }
  OS << (D.hasRegression() ? "RESULT: REGRESSION\n" : "RESULT: PASS\n");
  return OS.str();
}

} // namespace veriopt
