//===- RNG.h - Deterministic random number generation ------------*- C++ -*-=//
//
// All stochastic components (dataset generation, policy sampling, SAT
// decision tie-breaking, differential testing) draw from this SplitMix64-
// based generator so every experiment is reproducible from a single seed,
// mirroring the paper's determinism requirements (greedy decoding, fixed
// splits).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_RNG_H
#define VERIOPT_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace veriopt {

/// SplitMix64 generator: tiny state, excellent statistical quality for this
/// use, and trivially reproducible across platforms.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for the bounds we use (<< 2^32).
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw.
  bool chance(double P) { return uniform() < P; }

  /// Approximately standard-normal via sum of uniforms (Irwin–Hall, 12
  /// terms); adequate for parameter-initialization noise.
  double gaussian() {
    double Sum = 0;
    for (int I = 0; I < 12; ++I)
      Sum += uniform();
    return Sum - 6.0;
  }

  /// Pick an index according to non-negative weights (must not all be zero).
  size_t weightedPick(const std::vector<double> &Weights);

  /// Derive an independent child generator (stable given call order).
  RNG fork() { return RNG(next()); }

  /// Raw state access for checkpoint/resume: restoring the state resumes
  /// the exact stream an interrupted run would have continued.
  uint64_t state() const { return State; }
  void setState(uint64_t S) { State = S; }

private:
  uint64_t State;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_RNG_H
