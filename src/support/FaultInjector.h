//===- FaultInjector.h - Deterministic fault injection -----------*- C++ -*-=//
//
// Seeded, deterministic injection of the fault classes the training runtime
// must survive: oracle budget exhaustion, verdict flips, verify-cache
// misses, and checkpoint-write failures. An injection decision is a pure
// hash of (seed, site, caller-supplied key) — never a counter or a clock —
// so the same run injects the same faults at any thread count and under any
// scheduling, and the fault-tolerance tests are exactly reproducible.
//
// A null FaultInjector* everywhere means "injection disabled"; production
// paths pay one branch.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_FAULTINJECTOR_H
#define VERIOPT_SUPPORT_FAULTINJECTOR_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace veriopt {

enum class FaultSite : unsigned {
  OracleBudget,    ///< force a tier-0 verification budget exhaustion
  VerdictFlip,     ///< flip the final Equivalent/NotEquivalent verdict
  CacheMiss,       ///< force a verify-cache lookup to recompute
  CheckpointWrite, ///< fail a checkpoint write
  WorkerCrash,     ///< abort() an evaluation worker process mid-shard
  WorkerHang,      ///< hang a worker until the supervisor's deadline fires
  WorkerCorrupt,   ///< make a worker emit a torn/garbage result file
  // I/O fault sites, consumed by FaultyIoEnv (support/IoEnv.h). Keys are
  // (path, per-path op ordinal) hashes; errno shaping picks among
  // ENOSPC / EIO / EDQUOT deterministically.
  IoOpen,       ///< fail an open(2) of a durable artifact
  IoWrite,      ///< fail a write(2) outright (nothing lands)
  IoShortWrite, ///< write only a prefix (the torn-write hazard)
  IoFsync,      ///< fail an fsync(2) (data may never become durable)
  IoRename,     ///< fail a rename(2) (publish step of atomic replace)
  IoFlock,      ///< fail a flock(2) acquisition (sidecar lock)
  NumSites
};

const char *faultSiteName(FaultSite S);

class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed = 0) : Seed(Seed) {}

  /// Arm \p S with injection probability \p Rate in [0, 1].
  void enable(FaultSite S, double Rate);
  void disable(FaultSite S) { enable(S, 0.0); }
  double rate(FaultSite S) const;

  /// Deterministic decision for \p Key at site \p S. Thread-safe; the
  /// result depends only on (Seed, S, Key).
  bool shouldInject(FaultSite S, uint64_t Key);
  bool shouldInject(FaultSite S, const std::string &Key) {
    return shouldInject(S, hashKey(Key));
  }

  /// FNV-1a, exposed so call sites can derive stable keys from text.
  static uint64_t hashKey(const std::string &S);

  struct Counters {
    std::array<uint64_t, static_cast<size_t>(FaultSite::NumSites)> Checked{};
    std::array<uint64_t, static_cast<size_t>(FaultSite::NumSites)> Injected{};
    uint64_t checked(FaultSite S) const {
      return Checked[static_cast<size_t>(S)];
    }
    uint64_t injected(FaultSite S) const {
      return Injected[static_cast<size_t>(S)];
    }
    uint64_t totalInjected() const {
      uint64_t N = 0;
      for (uint64_t V : Injected)
        N += V;
      return N;
    }
  };
  Counters counters() const;

private:
  static constexpr size_t NumSites =
      static_cast<size_t>(FaultSite::NumSites);

  uint64_t Seed;
  std::array<std::atomic<uint64_t>, NumSites> RateBits{}; // double bit-cast
  std::array<std::atomic<uint64_t>, NumSites> Checked{};
  std::array<std::atomic<uint64_t>, NumSites> Injected{};
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_FAULTINJECTOR_H
