//===- ErrorOr.h - Exception-free fallible results ---------------*- C++ -*-=//
//
// The library is built without exceptions (LLVM coding standards); fallible
// operations return ErrorOr<T>, carrying either a value or an error message.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_ERROROR_H
#define VERIOPT_SUPPORT_ERROROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace veriopt {

/// A plain error payload: a human-readable message plus an optional
/// location hint (line number; 0 = unknown).
struct Error {
  std::string Message;
  unsigned Line = 0;

  std::string render() const {
    if (Line == 0)
      return Message;
    return "line " + std::to_string(Line) + ": " + Message;
  }
};

/// Either a T or an Error. Moves freely; check with hasValue()/operator bool.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(Error E) : Storage(std::move(E)) {}

  static ErrorOr makeError(std::string Message, unsigned Line = 0) {
    return ErrorOr(Error{std::move(Message), Line});
  }

  bool hasValue() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return hasValue(); }

  T &value() {
    assert(hasValue() && "value() on error state");
    return std::get<T>(Storage);
  }
  const T &value() const {
    assert(hasValue() && "value() on error state");
    return std::get<T>(Storage);
  }
  T takeValue() {
    assert(hasValue() && "takeValue() on error state");
    return std::move(std::get<T>(Storage));
  }

  const Error &error() const {
    assert(!hasValue() && "error() on value state");
    return std::get<Error>(Storage);
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_ERROROR_H
