//===- ThreadPool.cpp - Fixed-size worker pool --------------------------------//

#include "support/ThreadPool.h"

namespace veriopt {

ThreadPool::ThreadPool(unsigned Threads) {
  for (unsigned I = 1; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Shutdown = true;
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runJob(Job &J) {
  for (size_t I = J.Next.fetch_add(1); I < J.Size; I = J.Next.fetch_add(1)) {
    (*J.Fn)(I);
    if (J.Done.fetch_add(1) + 1 == J.Size) {
      // Take the lock so the notification cannot race ahead of the
      // submitter's predicate check.
      std::lock_guard<std::mutex> L(M);
      DoneCV.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  std::shared_ptr<Job> Last;
  while (true) {
    std::shared_ptr<Job> J;
    {
      std::unique_lock<std::mutex> L(M);
      WorkCV.wait(L, [&] { return Shutdown || (Current && Current != Last); });
      if (Shutdown)
        return;
      J = Current;
      Last = J; // keeps the allocation alive: no ABA on the pointer compare
    }
    runJob(*J);
  }
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Workers.empty() || N == 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  std::lock_guard<std::mutex> SL(SubmitM);
  auto J = std::make_shared<Job>();
  J->Fn = &Fn;
  J->Size = N;
  {
    std::lock_guard<std::mutex> L(M);
    Current = J;
  }
  WorkCV.notify_all();

  runJob(*J); // the submitter is a full participant

  std::unique_lock<std::mutex> L(M);
  DoneCV.wait(L, [&] { return J->Done.load() == J->Size; });
  Current = nullptr;
}

} // namespace veriopt
