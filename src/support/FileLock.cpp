//===- FileLock.cpp - RAII flock(2) advisory file lock ------------------------//

#include "support/FileLock.h"

#include "support/IoEnv.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace veriopt {

namespace {

void setErr(std::string *Err, const char *Step) {
  if (Err)
    *Err = std::string(Step) + ": " + std::strerror(errno);
}

} // namespace

bool FileLock::acquire(const std::string &Path, Mode M, bool NonBlocking,
                       bool &Contended, std::string *Err) {
  unlock();
  Contended = false;

  IoEnv &Io = *IoEnv::current();
  int NewFd;
  do
    NewFd = Io.open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  while (NewFd < 0 && errno == EINTR);
  if (NewFd < 0) {
    setErr(Err, "open lock file");
    return false;
  }

  int Op = (M == Mode::Shared ? LOCK_SH : LOCK_EX);
  if (NonBlocking)
    Op |= LOCK_NB;
  int R;
  do
    R = Io.flock(NewFd, Op);
  while (R != 0 && errno == EINTR);
  if (R != 0) {
    if (NonBlocking && errno == EWOULDBLOCK) {
      Io.close(NewFd);
      Contended = true;
      return true;
    }
    setErr(Err, "flock");
    Io.close(NewFd);
    return false;
  }

  Fd = NewFd;
  LockPath = Path;
  return true;
}

bool FileLock::lock(const std::string &Path, Mode M, std::string *Err) {
  bool Contended = false;
  return acquire(Path, M, /*NonBlocking=*/false, Contended, Err);
}

bool FileLock::tryLock(const std::string &Path, Mode M, bool &Contended,
                       std::string *Err) {
  if (!acquire(Path, M, /*NonBlocking=*/true, Contended, Err))
    return false;
  return true;
}

void FileLock::unlock() {
  if (Fd < 0)
    return;
  // Closing the descriptor releases the flock; no explicit LOCK_UN needed
  // (and the kernel does the same on crash, which is the recovery story).
  ::close(Fd);
  Fd = -1;
  LockPath.clear();
}

} // namespace veriopt
