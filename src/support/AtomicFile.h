//===- AtomicFile.h - Durable atomic file replacement ------------*- C++ -*-=//
//
// The one write-then-rename helper every artifact writer (checkpoints,
// trace sinks, shard manifests/results, quarantine lists) goes through.
// Two guarantees, both required by the crash-tolerant evaluation driver:
//
//  1. Atomicity: readers of Path see either the old contents or the
//     complete new payload, never a torn prefix — write to "<path>.tmp",
//     then rename(2) over the destination.
//
//  2. Durability: the payload is fsync'ed before the rename and the parent
//     directory is fsync'ed after it. Without the first, a crash shortly
//     after rename can surface a renamed-but-empty file (the metadata
//     outruns the data to disk) — which a resuming driver would parse,
//     reject, and needlessly re-run, or worse, trust if it happens to be
//     valid JSON. Without the second, the rename itself can vanish.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_ATOMICFILE_H
#define VERIOPT_SUPPORT_ATOMICFILE_H

#include <string>

namespace veriopt {

/// Atomically and durably replace \p Path with \p Payload. On failure the
/// previous file (if any) is intact, the temporary is removed, and when
/// \p Err is non-null it names the failing step.
///
/// All syscalls route through IoEnv::current() (support/IoEnv.h), the
/// injectable seam the fault-injection and crash-consistency tests drive.
bool writeFileAtomic(const std::string &Path, const std::string &Payload,
                     std::string *Err = nullptr);

/// The unique temporary name writeFileAtomic() would use next for \p Path:
/// "<path>.tmp.<pid>.<seq>". Unique per process *and* per call, so
/// concurrent writers to one destination never clobber each other's
/// temporary (the destination rename is the only rendezvous). Exposed for
/// the two-writer regression test.
std::string atomicTempPath(const std::string &Path);

/// Durably append \p Payload to \p Path (creating it if needed): O_APPEND
/// write + fsync before returning. Appends are *not* atomic against readers
/// — callers needing atomicity must frame records so a torn tail is
/// detectable (the VerdictStore journal CRC-frames every line; the
/// streaming trace sink appends to a ".stream" temporary and publishes via
/// publishFileDurable). A short/failed append can leave a partial tail;
/// both consumers tolerate every prefix by construction.
bool appendFileDurable(const std::string &Path, const std::string &Payload,
                       std::string *Err = nullptr);

/// Durably publish an already-written, already-fsync'ed temporary at its
/// final name: rename(2) + parent-directory fsync — the back half of
/// writeFileAtomic, split out so incremental writers (the streaming trace
/// sink) can build the payload with many durable appends and still finish
/// with the same atomic-replace guarantee.
bool publishFileDurable(const std::string &TmpPath, const std::string &Path,
                        std::string *Err = nullptr);

} // namespace veriopt

#endif // VERIOPT_SUPPORT_ATOMICFILE_H
