//===- Stats.cpp - Descriptive statistics ----------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cmath>

namespace veriopt {

double mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double Sum = 0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double stddev(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0;
  double M = mean(Xs);
  double Sum = 0;
  for (double X : Xs)
    Sum += (X - M) * (X - M);
  return std::sqrt(Sum / static_cast<double>(Xs.size()));
}

double geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  const double Eps = 1e-9;
  double LogSum = 0;
  for (double X : Xs)
    LogSum += std::log(std::max(X, Eps));
  return std::exp(LogSum / static_cast<double>(Xs.size()));
}

double percentile(std::vector<double> Xs, double P) {
  if (Xs.empty())
    return 0;
  std::sort(Xs.begin(), Xs.end());
  if (P <= 0)
    return Xs.front();
  if (P >= 100)
    return Xs.back();
  double Rank = P / 100.0 * static_cast<double>(Xs.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  double Frac = Rank - static_cast<double>(Lo);
  if (Lo + 1 >= Xs.size())
    return Xs.back();
  return Xs[Lo] * (1.0 - Frac) + Xs[Lo + 1] * Frac;
}

} // namespace veriopt
