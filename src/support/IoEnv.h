//===- IoEnv.h - Injectable I/O environment ----------------------*- C++ -*-=//
//
// The process-wide seam between the durable subsystems and the kernel.
// Every syscall that AtomicFile, FileLock, the VerdictStore journal, and
// the streaming trace sink issue (open/write/fsync/rename/close/flock/
// unlink) routes through IoEnv::current(), so storage failures — ENOSPC,
// EIO, quota exhaustion, short writes, failed renames, failed flocks — can
// be injected deterministically instead of only ever succeeding in tests.
//
// Three implementations:
//
//  - The default passthrough (IoEnv::system()): each virtual forwards to
//    the raw syscall. The seam costs one relaxed atomic load + one virtual
//    call per syscall — noise next to the syscall itself.
//
//  - FaultyIoEnv: drives the Io* sites of a seeded FaultInjector
//    (support/FaultInjector.h). An injection decision is a pure hash of
//    (seed, site, path, per-path operation ordinal) — never a counter
//    shared across paths, never a clock — so the same seed fails the same
//    operations on the same files regardless of thread scheduling. Errno
//    shaping picks deterministically among ENOSPC / EIO / EDQUOT; short
//    writes really write a prefix (>= 1 byte, so retry loops always make
//    progress) and are how torn appends are simulated. Only descriptors
//    opened *through* the env are candidates for fd-keyed faults, which
//    automatically exempts stdio and sockets.
//
//  - RecordingIoEnv: passes everything through while logging the full
//    syscall sequence (including written bytes), the substrate of the
//    ALICE-style crash-consistency fuzzer in
//    tests/support/CrashConsistencyTest.cpp: replay the log truncated at
//    every syscall boundary and assert the recovery invariants.
//
// The invariant every caller is written against: I/O faults may cost
// durability, never correctness or determinism of the training trajectory
// (docs/FAULT_TOLERANCE.md, "degraded-mode matrix").
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_IOENV_H
#define VERIOPT_SUPPORT_IOENV_H

#include "support/FaultInjector.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

namespace veriopt {

/// Abstract I/O environment. The base class *is* the passthrough: every
/// virtual forwards to the raw syscall, and overrides call the base to
/// reach the kernel. All methods follow syscall conventions (-1 + errno on
/// failure) so call sites keep their existing error handling verbatim.
class IoEnv {
public:
  virtual ~IoEnv() = default;

  virtual int open(const char *Path, int Flags, mode_t Mode);
  virtual ssize_t write(int Fd, const void *Buf, size_t N);
  virtual int fsync(int Fd);
  virtual int rename(const char *From, const char *To);
  virtual int close(int Fd);
  virtual int flock(int Fd, int Op);
  virtual int unlink(const char *Path);

  /// The shared passthrough instance (never faulted, never recording).
  static IoEnv &system();

  /// The installed environment (defaults to system()). One relaxed atomic
  /// load — the hot-path cost of the seam.
  static IoEnv *current();

  /// Install \p E process-wide (null restores the passthrough). Returns
  /// the previously installed env. Tests install around the operation
  /// under test and restore in a scope guard; production never calls this
  /// except from the --chaos-io CLI flags.
  static IoEnv *install(IoEnv *E);
};

/// RAII installer: swaps \p E in for the scope, restores on destruction.
class ScopedIoEnv {
public:
  explicit ScopedIoEnv(IoEnv *E) : Prev(IoEnv::install(E)) {}
  ~ScopedIoEnv() { IoEnv::install(Prev); }
  ScopedIoEnv(const ScopedIoEnv &) = delete;
  ScopedIoEnv &operator=(const ScopedIoEnv &) = delete;

private:
  IoEnv *Prev;
};

/// Deterministic fault-injecting environment over a seeded FaultInjector.
/// Arm the injector's Io* sites (FaultSite::IoOpen .. IoFlock) at the
/// desired rates; decisions key on (path, per-path op ordinal) so they are
/// schedule-independent.
class FaultyIoEnv : public IoEnv {
public:
  explicit FaultyIoEnv(FaultInjector &FI) : FI(FI) {}

  /// Paths ending in any exempt suffix pass straight through — e.g. a
  /// chaos run that must still publish its own trace file exempts
  /// ".jsonl"/".stream" so the gate artifact survives the storm. The
  /// ".tmp.<pid>.<seq>" decoration writeFileAtomic stages through is
  /// stripped before matching, so an exemption covers the whole atomic
  /// write, not just the final rename.
  void exemptSuffix(std::string Suffix) {
    std::lock_guard<std::mutex> L(M);
    Exempt.push_back(std::move(Suffix));
  }

  int open(const char *Path, int Flags, mode_t Mode) override;
  ssize_t write(int Fd, const void *Buf, size_t N) override;
  int fsync(int Fd) override;
  int rename(const char *From, const char *To) override;
  int close(int Fd) override;
  int flock(int Fd, int Op) override;

private:
  bool exempt(const std::string &Path);
  /// Next deterministic key for \p Path: hash(path) mixed with that path's
  /// operation ordinal (how many env calls have named it so far).
  uint64_t nextKey(const std::string &Path);
  /// Deterministic errno from the fault classes storage really throws.
  static int shapeErrno(uint64_t Key);

  FaultInjector &FI;
  std::mutex M;
  std::map<int, std::string> FdPath;        ///< fds opened through this env
  std::map<std::string, uint64_t> PathOps;  ///< per-path op ordinals
  std::vector<std::string> Exempt;
};

/// Passthrough environment that records the full syscall sequence. The
/// crash-consistency fuzzer replays Ops truncated at every index.
class RecordingIoEnv : public IoEnv {
public:
  struct Op {
    enum class Kind { Open, Write, Fsync, Rename, Close, Flock, Unlink };
    Kind K = Kind::Open;
    std::string Path;  ///< target path (resolved from the fd for fd ops)
    std::string Path2; ///< rename destination
    std::string Data;  ///< bytes actually written (Write)
    int Flags = 0;     ///< open(2) flags
    bool IsDir = false; ///< fd refers to a directory (parent-dir fsyncs)
  };

  int open(const char *Path, int Flags, mode_t Mode) override;
  ssize_t write(int Fd, const void *Buf, size_t N) override;
  int fsync(int Fd) override;
  int rename(const char *From, const char *To) override;
  int close(int Fd) override;
  int flock(int Fd, int Op) override;
  int unlink(const char *Path) override;

  /// Successful operations, in issue order. Failed syscalls are not
  /// recorded: a crash state can only contain effects that happened.
  std::vector<Op> ops() const {
    std::lock_guard<std::mutex> L(M);
    return Ops;
  }
  void clear() {
    std::lock_guard<std::mutex> L(M);
    Ops.clear();
  }

private:
  void push(Op O) {
    std::lock_guard<std::mutex> L(M);
    Ops.push_back(std::move(O));
  }

  mutable std::mutex M;
  std::map<int, std::pair<std::string, bool>> FdInfo; ///< fd -> (path, isDir)
  std::vector<Op> Ops;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_IOENV_H
