//===- Fuel.h - Deterministic work budgets for verification ------*- C++ -*-=//
//
// A fuel token is a deterministic, thread-count-independent work budget
// threaded through the whole verification stack (interpreter, symbolic
// encoder, SAT solver). Every layer charges abstract "work units" for the
// operations it performs; when the tank runs dry the verification stops and
// reports Inconclusive{ResourceExhausted} instead of running away on a
// pathological candidate.
//
// No wall clock is ever consulted: the same query with the same budget
// exhausts at exactly the same point on any machine, at any thread count,
// preserving the bit-identical-trajectory guarantee of the parallel scoring
// path. One token is created per verification and shared across its
// sub-phases (falsification, encoding, SAT), so the total work of a single
// oracle call is bounded no matter where the blowup happens.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_FUEL_H
#define VERIOPT_SUPPORT_FUEL_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace veriopt {

/// The one place the SAT conflict budget's default lives. VerifyOptions and
/// checkSat() both read it, so the retry ladder's geometric tiers scale a
/// single source of truth.
inline constexpr uint64_t DefaultSolverConflictBudget = 200000;

/// Default verification fuel. Sized so that a full default-budget query
/// (falsification trials + symbolic encoding + a conflict-budget-limited
/// SAT search) fits comfortably: the conflict budget, not the fuel, is the
/// binding constraint on ordinary candidates. Fuel exists for the work the
/// conflict budget does not see — path enumeration, interpretation, and
/// adversarial candidates engineered to blow up before SAT ever runs.
inline constexpr uint64_t DefaultVerifyFuel = 1ULL << 26; // ~67M units

/// Unit prices charged by each layer (kept here so the total budget and the
/// prices evolve together).
namespace fuel {
inline constexpr uint64_t InterpStep = 1;   ///< one dynamic instruction
inline constexpr uint64_t EncodeStep = 1;   ///< one symbolic instruction
inline constexpr uint64_t EncodeBlockVisit = 4;
inline constexpr uint64_t SatDecision = 1;
inline constexpr uint64_t SatConflict = 64;
} // namespace fuel

class Fuel {
public:
  /// A zero budget means unlimited (mirroring the SAT conflict budget).
  static constexpr uint64_t Unlimited = 0;

  explicit Fuel(uint64_t Budget = Unlimited)
      : Remaining(Budget), Limited(Budget != Unlimited) {}

  /// Charge \p Units of work. Returns false (and latches exhaustion) when
  /// the tank cannot cover them; callers must then unwind and report
  /// ResourceExhausted.
  bool consume(uint64_t Units = 1) {
    if (Trace)
      Trace->push_back(Units);
    Spent += Units;
    if (!Limited)
      return true;
    if (Empty || Units > Remaining) {
      Empty = true;
      Remaining = 0;
      return false;
    }
    Remaining -= Units;
    return true;
  }

  /// Record every subsequent consume()'s unit count into \p T (null stops
  /// recording). The batch verifier records the charges of a shared,
  /// candidate-independent computation once, then *replays* them against
  /// each candidate's own budget (see Fuel::replay), so sharing work across
  /// a group never changes where any individual budget exhausts.
  void setTrace(std::vector<uint64_t> *T) { Trace = T; }

  /// Re-charge a recorded consume() sequence slice against this token,
  /// stopping at the first charge the tank cannot cover (exactly where the
  /// recorded computation would have aborted under this budget). Returns
  /// false on exhaustion, mirroring consume().
  bool replay(const std::vector<uint64_t> &T, size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      if (!consume(T[I]))
        return false;
    return true;
  }

  bool exhausted() const { return Empty; }
  uint64_t remaining() const { return Remaining; }
  uint64_t spent() const { return Spent; }
  bool limited() const { return Limited; }

private:
  uint64_t Remaining = 0;
  uint64_t Spent = 0;
  bool Limited = false;
  bool Empty = false;
  std::vector<uint64_t> *Trace = nullptr;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_FUEL_H
