//===- RNG.cpp - Deterministic random number generation -------------------===//

#include "support/RNG.h"

namespace veriopt {

size_t RNG::weightedPick(const std::vector<double> &Weights) {
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "negative weight");
    Total += W;
  }
  assert(Total > 0 && "all weights zero");
  double Point = uniform() * Total;
  double Acc = 0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Acc += Weights[I];
    if (Point < Acc)
      return I;
  }
  return Weights.size() - 1;
}

} // namespace veriopt
