//===- Subprocess.cpp - Supervised child processes ----------------------------//

#include "support/Subprocess.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace veriopt {

const char *subprocessOutcomeName(SubprocessOutcome O) {
  switch (O) {
  case SubprocessOutcome::SpawnFailed:
    return "spawn-failed";
  case SubprocessOutcome::Exited:
    return "exited";
  case SubprocessOutcome::Signaled:
    return "signaled";
  case SubprocessOutcome::TimedOut:
    return "timed-out";
  }
  return "unknown";
}

std::string SubprocessResult::describe() const {
  switch (Outcome) {
  case SubprocessOutcome::SpawnFailed:
    return "spawn failed: " + SpawnError;
  case SubprocessOutcome::Exited:
    return "exited with code " + std::to_string(ExitCode);
  case SubprocessOutcome::Signaled:
    return "killed by signal " + std::to_string(Signal);
  case SubprocessOutcome::TimedOut:
    return "deadline exceeded (SIGKILLed)";
  }
  return "unknown";
}

namespace {

/// EINTR-safe read.
ssize_t readRetry(int Fd, void *Buf, size_t N) {
  ssize_t R;
  do
    R = ::read(Fd, Buf, N);
  while (R < 0 && errno == EINTR);
  return R;
}

void closeQuiet(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

} // namespace

bool Subprocess::spawn(const SubprocessOptions &Opts) {
  Res = SubprocessResult();
  Finished = false;
  DeadlineKilled = false;
  DeadlineMs = Opts.DeadlineMs;
  MaxStderrBytes = Opts.MaxStderrBytes;

  if (Opts.Argv.empty()) {
    Res.Outcome = SubprocessOutcome::SpawnFailed;
    Res.SpawnError = "empty argv";
    Finished = true;
    return false;
  }

  // Stderr capture pipe + the classic CLOEXEC exec-errno pipe: if exec
  // succeeds the write end closes on exec and the parent reads EOF; if it
  // fails the child writes errno, which the parent can report verbatim.
  int ErrPipe[2] = {-1, -1}, ExecPipe[2] = {-1, -1};
  if (::pipe(ErrPipe) != 0) {
    Res.Outcome = SubprocessOutcome::SpawnFailed;
    Res.SpawnError = std::string("pipe: ") + std::strerror(errno);
    Finished = true;
    return false;
  }
  if (::pipe(ExecPipe) != 0) {
    Res.Outcome = SubprocessOutcome::SpawnFailed;
    Res.SpawnError = std::string("pipe: ") + std::strerror(errno);
    ::close(ErrPipe[0]);
    ::close(ErrPipe[1]);
    Finished = true;
    return false;
  }
  ::fcntl(ExecPipe[1], F_SETFD, FD_CLOEXEC);

  std::vector<char *> Argv;
  Argv.reserve(Opts.Argv.size() + 1);
  for (const std::string &A : Opts.Argv)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t Child = ::fork();
  if (Child < 0) {
    Res.Outcome = SubprocessOutcome::SpawnFailed;
    Res.SpawnError = std::string("fork: ") + std::strerror(errno);
    ::close(ErrPipe[0]);
    ::close(ErrPipe[1]);
    ::close(ExecPipe[0]);
    ::close(ExecPipe[1]);
    Finished = true;
    return false;
  }
  if (Child == 0) {
    // Child: stderr -> capture pipe, then exec. Only async-signal-safe
    // calls between fork and exec.
    ::close(ErrPipe[0]);
    ::close(ExecPipe[0]);
    while (::dup2(ErrPipe[1], STDERR_FILENO) < 0 && errno == EINTR) {
    }
    ::close(ErrPipe[1]);
    ::execvp(Argv[0], Argv.data());
    int E = errno;
    ssize_t W = ::write(ExecPipe[1], &E, sizeof(E));
    (void)W;
    ::_exit(127);
  }

  // Parent.
  ::close(ErrPipe[1]);
  ::close(ExecPipe[1]);
  ErrFd = ErrPipe[0];
  ::fcntl(ErrFd, F_SETFL, O_NONBLOCK);
  ::fcntl(ErrFd, F_SETFD, FD_CLOEXEC);

  int ExecErrno = 0;
  ssize_t N = readRetry(ExecPipe[0], &ExecErrno, sizeof(ExecErrno));
  ::close(ExecPipe[0]);
  if (N > 0) {
    // exec failed in the child; reap it and report the real reason.
    int Status = 0;
    pid_t R;
    do
      R = ::waitpid(Child, &Status, 0);
    while (R < 0 && errno == EINTR);
    closeQuiet(ErrFd);
    Res.Outcome = SubprocessOutcome::SpawnFailed;
    Res.SpawnError = "exec '" + Opts.Argv[0] +
                     "': " + std::strerror(ExecErrno);
    Finished = true;
    return false;
  }

  Pid = Child;
  Start = std::chrono::steady_clock::now();
  return true;
}

void Subprocess::drainStderr() {
  if (ErrFd < 0)
    return;
  char Buf[4096];
  for (;;) {
    ssize_t N = readRetry(ErrFd, Buf, sizeof(Buf));
    if (N < 0) {
      // EAGAIN: nothing more right now; pipe stays open.
      return;
    }
    if (N == 0) {
      closeQuiet(ErrFd);
      return;
    }
    if (Res.StderrCapture.size() < MaxStderrBytes) {
      size_t Room = MaxStderrBytes - Res.StderrCapture.size();
      size_t Take = std::min(Room, static_cast<size_t>(N));
      Res.StderrCapture.append(Buf, Take);
      if (Take < static_cast<size_t>(N))
        Res.StderrTruncated = true;
    } else if (N > 0) {
      Res.StderrTruncated = true;
    }
  }
}

void Subprocess::reap(int Status, SubprocessOutcome Forced) {
  if (Forced == SubprocessOutcome::TimedOut) {
    Res.Outcome = SubprocessOutcome::TimedOut;
    Res.Signal = SIGKILL;
  } else if (WIFEXITED(Status)) {
    Res.Outcome = SubprocessOutcome::Exited;
    Res.ExitCode = WEXITSTATUS(Status);
  } else if (WIFSIGNALED(Status)) {
    Res.Outcome = SubprocessOutcome::Signaled;
    Res.Signal = WTERMSIG(Status);
  } else {
    Res.Outcome = SubprocessOutcome::Signaled;
    Res.Signal = 0;
  }
  // Final stderr drain: anything written before exit is still in the pipe.
  drainStderr();
  closeQuiet(ErrFd);
  Finished = true;
  Pid = -1;
}

bool Subprocess::poll() {
  if (Finished)
    return true;
  if (Pid <= 0) {
    Finished = true;
    return true;
  }

  drainStderr();

  int Status = 0;
  pid_t R;
  do
    R = ::waitpid(Pid, &Status, WNOHANG);
  while (R < 0 && errno == EINTR);
  if (R == Pid) {
    reap(Status, DeadlineKilled ? SubprocessOutcome::TimedOut
                                : SubprocessOutcome::Exited);
    // reap() refines Exited vs Signaled from Status unless deadline-killed.
    return true;
  }

  if (DeadlineMs > 0 && !DeadlineKilled) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    if (static_cast<uint64_t>(Elapsed) >= DeadlineMs) {
      ::kill(Pid, SIGKILL);
      DeadlineKilled = true;
      // The next waitpid (here or in wait()) reaps it as TimedOut.
    }
  }
  return false;
}

const SubprocessResult &Subprocess::wait() {
  while (!poll()) {
    // Sleep until stderr activity, child exit (pipe EOF), or a timeslice
    // toward the deadline check. poll(2) returning EINTR is fine: the loop
    // re-polls.
    struct pollfd P;
    P.fd = ErrFd;
    P.events = POLLIN;
    int Timeout = 10; // ms; bounds deadline-check latency
    if (ErrFd >= 0)
      ::poll(&P, 1, Timeout);
    else {
      struct timespec TS = {0, 10 * 1000 * 1000};
      ::nanosleep(&TS, nullptr);
    }
  }
  return Res;
}

void Subprocess::killAndReap() {
  if (!Finished && Pid > 0) {
    ::kill(Pid, SIGKILL);
    int Status = 0;
    pid_t R;
    do
      R = ::waitpid(Pid, &Status, 0);
    while (R < 0 && errno == EINTR);
    reap(Status, DeadlineKilled ? SubprocessOutcome::TimedOut
                                : SubprocessOutcome::Exited);
  }
  closeQuiet(ErrFd);
}

} // namespace veriopt
