//===- AtomicFile.cpp - Durable atomic file replacement -----------------------//

#include "support/AtomicFile.h"

#include "support/IoEnv.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace veriopt {

namespace {

void setErr(std::string *Err, const char *Step) {
  if (Err)
    *Err = std::string(Step) + ": " + std::strerror(errno);
}

/// Write all of \p Payload to \p Fd, retrying short writes and EINTR.
bool writeAll(IoEnv &Io, int Fd, const std::string &Payload) {
  const char *P = Payload.data();
  size_t Left = Payload.size();
  while (Left > 0) {
    ssize_t N = Io.write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // no progress: treat as failure, never spin
    P += N;
    Left -= static_cast<size_t>(N);
  }
  return true;
}

int fsyncRetry(IoEnv &Io, int Fd) {
  int R;
  do
    R = Io.fsync(Fd);
  while (R != 0 && errno == EINTR);
  return R;
}

std::string parentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

} // namespace

std::string atomicTempPath(const std::string &Path) {
  // A bare "<path>.tmp" collides: two concurrent writers to the same
  // destination would truncate/rename each other's temporary mid-write.
  // (pid, per-process counter) makes every call's temporary unique across
  // processes and threads; the destination is still the rendezvous point,
  // so last-rename-wins stays the (atomic) resolution.
  static std::atomic<uint64_t> Seq{0};
  return Path + ".tmp." + std::to_string(static_cast<long>(::getpid())) +
         "." + std::to_string(Seq.fetch_add(1, std::memory_order_relaxed));
}

bool appendFileDurable(const std::string &Path, const std::string &Payload,
                       std::string *Err) {
  IoEnv &Io = *IoEnv::current();
  int Fd;
  do
    Fd = Io.open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
  while (Fd < 0 && errno == EINTR);
  if (Fd < 0) {
    setErr(Err, "open for append");
    return false;
  }
  // O_APPEND makes each write(2) land at the current end regardless of
  // concurrent appenders; cross-process writers still serialize whole
  // multi-write batches through FileLock so records interleave only at
  // batch granularity.
  if (!writeAll(Io, Fd, Payload) || fsyncRetry(Io, Fd) != 0) {
    setErr(Err, "append/fsync");
    Io.close(Fd);
    return false;
  }
  if (Io.close(Fd) != 0) {
    setErr(Err, "close after append");
    return false;
  }
  return true;
}

bool publishFileDurable(const std::string &TmpPath, const std::string &Path,
                        std::string *Err) {
  IoEnv &Io = *IoEnv::current();
  if (Io.rename(TmpPath.c_str(), Path.c_str()) != 0) {
    setErr(Err, "rename");
    return false;
  }
  int DirFd = Io.open(parentDir(Path).c_str(),
                      O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
  if (DirFd >= 0) {
    fsyncRetry(Io, DirFd);
    Io.close(DirFd);
  }
  return true;
}

bool writeFileAtomic(const std::string &Path, const std::string &Payload,
                     std::string *Err) {
  IoEnv &Io = *IoEnv::current();
  const std::string Tmp = atomicTempPath(Path);
  int Fd = Io.open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
  if (Fd < 0) {
    setErr(Err, "open temporary");
    return false;
  }
  // Data must be durable BEFORE the rename publishes the name: otherwise a
  // crash can leave a renamed-but-empty (or torn) file that a resuming
  // driver would read as the shard's result.
  if (!writeAll(Io, Fd, Payload) || fsyncRetry(Io, Fd) != 0) {
    setErr(Err, "write/fsync temporary");
    Io.close(Fd);
    Io.unlink(Tmp.c_str());
    return false;
  }
  if (Io.close(Fd) != 0) {
    setErr(Err, "close temporary");
    Io.unlink(Tmp.c_str());
    return false;
  }
  if (Io.rename(Tmp.c_str(), Path.c_str()) != 0) {
    setErr(Err, "rename");
    Io.unlink(Tmp.c_str());
    return false;
  }
  // Make the rename itself durable. Failure to fsync the directory is not
  // fatal to the caller (the file contents are already safe and visible);
  // report success but do attempt it.
  int DirFd = Io.open(parentDir(Path).c_str(),
                      O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
  if (DirFd >= 0) {
    fsyncRetry(Io, DirFd);
    Io.close(DirFd);
  }
  return true;
}

} // namespace veriopt
