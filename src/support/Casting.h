//===- Casting.h - isa/cast/dyn_cast for kind-discriminated types -*- C++ -*-=//
//
// A minimal reimplementation of LLVM's custom-RTTI helpers. A class hierarchy
// participates by providing a static `classof(const Base *)` predicate on
// every derived class, typically backed by an explicit kind discriminator.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_CASTING_H
#define VERIOPT_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace veriopt {

/// True if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts the dynamic kind matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> of incompatible kind");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> of incompatible kind");
  return static_cast<const To *>(Val);
}

/// Downcast returning nullptr when the kind does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return Val && isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace veriopt

#endif // VERIOPT_SUPPORT_CASTING_H
