//===- Subprocess.h - Supervised child processes -----------------*- C++ -*-=//
//
// A small fork/exec supervisor primitive for the multi-process evaluation
// driver. One Subprocess owns one child: spawn() forks and execs, poll()
// makes nonblocking progress (drains the child's stderr into a bounded
// capture buffer, reaps on exit, and escalates a blown wall-clock deadline
// to SIGKILL), and wait() blocks — EINTR-safely — until the child is gone.
//
// Failure modes are typed, because the driver's retry/quarantine policy
// keys off them:
//  - SpawnFailed: fork or exec never happened (exec errno is reported via
//    a CLOEXEC pipe, so a missing binary is distinguishable from the child
//    exiting 127 on its own).
//  - Exited(code): normal termination.
//  - Signaled(sig): crashed or killed.
//  - TimedOut: the deadline elapsed; the child was SIGKILLed and reaped.
//
// The destructor guarantees no zombies: a still-running child is killed
// and reaped before the object dies.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_SUBPROCESS_H
#define VERIOPT_SUPPORT_SUBPROCESS_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace veriopt {

struct SubprocessOptions {
  /// argv[0] is the program (execvp semantics: PATH search applies when it
  /// contains no '/').
  std::vector<std::string> Argv;
  /// Wall-clock budget in ms; 0 = unlimited. On expiry the child is
  /// SIGKILLed and the outcome is TimedOut.
  uint64_t DeadlineMs = 0;
  /// Stderr capture cap; anything beyond it is discarded (but still read,
  /// so the child never blocks on a full pipe) and flagged as truncated.
  size_t MaxStderrBytes = 64 * 1024;
};

enum class SubprocessOutcome {
  SpawnFailed, ///< fork/exec failed; see SpawnError
  Exited,      ///< normal exit; see ExitCode
  Signaled,    ///< terminated by a signal; see Signal
  TimedOut,    ///< deadline blown; SIGKILLed and reaped
};

const char *subprocessOutcomeName(SubprocessOutcome O);

struct SubprocessResult {
  SubprocessOutcome Outcome = SubprocessOutcome::SpawnFailed;
  int ExitCode = -1;          ///< valid when Exited
  int Signal = 0;             ///< valid when Signaled
  std::string SpawnError;     ///< valid when SpawnFailed
  std::string StderrCapture;  ///< first MaxStderrBytes of the child's stderr
  bool StderrTruncated = false;

  /// One-line description for diagnostics / quarantine records.
  std::string describe() const;
};

class Subprocess {
public:
  Subprocess() = default;
  ~Subprocess() { killAndReap(); }
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// Fork/exec per \p Opts. Returns false (and finishes with SpawnFailed)
  /// when the child could not be started; the exec errno travels back over
  /// a CLOEXEC pipe so it is never conflated with the child's own exit.
  bool spawn(const SubprocessOptions &Opts);

  /// True between a successful spawn and the child being reaped.
  bool running() const { return Pid > 0 && !Finished; }

  /// Nonblocking progress: drain stderr, reap if exited, SIGKILL-escalate
  /// a blown deadline. Returns true once the child is finished.
  bool poll();

  /// Block until finished (EINTR-safe), honoring the deadline via poll().
  const SubprocessResult &wait();

  /// Only meaningful once finished (poll() returned true or wait()
  /// returned).
  const SubprocessResult &result() const { return Res; }
  bool finished() const { return Finished; }

  pid_t pid() const { return Pid; }

  /// The child's stderr read end (nonblocking), or -1. External
  /// supervisors can poll(2) it to sleep until something happens.
  int stderrFd() const { return ErrFd; }

  /// SIGKILL the child (if running) and reap it. Safe to call repeatedly.
  void killAndReap();

private:
  void drainStderr();
  void reap(int Status, SubprocessOutcome O);

  pid_t Pid = -1;
  int ErrFd = -1;
  bool Finished = false;
  bool DeadlineKilled = false;
  uint64_t DeadlineMs = 0;
  size_t MaxStderrBytes = 0;
  std::chrono::steady_clock::time_point Start;
  SubprocessResult Res;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_SUBPROCESS_H
