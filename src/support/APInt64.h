//===- APInt64.h - Fixed-width wrap-around integers -------------*- C++ -*-===//
//
// A lightweight stand-in for LLVM's APInt, restricted to bit widths in
// [1, 64]. Values are stored zero-extended in a uint64_t and every operation
// wraps modulo 2^width, matching LLVM IR integer semantics.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_APINT64_H
#define VERIOPT_SUPPORT_APINT64_H

#include <cassert>
#include <cstdint>
#include <string>

namespace veriopt {

/// Fixed-width two's-complement integer with wrap-around semantics.
///
/// The invariant is that all bits above \c Width are zero; every mutating
/// operation re-establishes it by masking. Signed operations reinterpret the
/// stored bits as two's complement of the given width.
class APInt64 {
public:
  APInt64() : Width(1), Bits(0) {}

  /// Construct a value of \p Width bits from \p Value (truncated to width).
  APInt64(unsigned Width, uint64_t Value) : Width(Width), Bits(Value) {
    assert(Width >= 1 && Width <= 64 && "unsupported bit width");
    Bits &= mask();
  }

  /// Construct from a signed value (sign pattern truncated to width).
  static APInt64 fromSigned(unsigned Width, int64_t Value) {
    return APInt64(Width, static_cast<uint64_t>(Value));
  }

  static APInt64 zero(unsigned Width) { return APInt64(Width, 0); }
  static APInt64 one(unsigned Width) { return APInt64(Width, 1); }
  static APInt64 allOnes(unsigned Width) { return APInt64(Width, ~0ULL); }

  /// Minimum signed value of the width (e.g. INT32_MIN for width 32).
  static APInt64 signedMin(unsigned Width) {
    return APInt64(Width, 1ULL << (Width - 1));
  }
  /// Maximum signed value of the width.
  static APInt64 signedMax(unsigned Width) {
    return APInt64(Width, (1ULL << (Width - 1)) - 1);
  }

  unsigned width() const { return Width; }
  /// Raw bits, zero-extended to 64.
  uint64_t zext() const { return Bits; }
  /// Bits reinterpreted as a signed value of the stored width.
  int64_t sext() const {
    if (Width == 64)
      return static_cast<int64_t>(Bits);
    uint64_t SignBit = 1ULL << (Width - 1);
    if (Bits & SignBit)
      return static_cast<int64_t>(Bits | ~mask());
    return static_cast<int64_t>(Bits);
  }

  bool isZero() const { return Bits == 0; }
  bool isOne() const { return Bits == 1; }
  bool isAllOnes() const { return Bits == mask(); }
  bool isNegative() const { return Width < 64 ? (Bits >> (Width - 1)) & 1
                                              : (Bits >> 63) & 1; }
  bool isSignedMin() const { return Bits == (1ULL << (Width - 1)); }
  bool isPowerOf2() const { return Bits != 0 && (Bits & (Bits - 1)) == 0; }

  /// Number of trailing zero bits (returns width for zero).
  unsigned countTrailingZeros() const;
  /// Number of leading zero bits within the width (returns width for zero).
  unsigned countLeadingZeros() const;
  /// Population count.
  unsigned popCount() const;
  /// log2 for exact powers of two.
  unsigned exactLog2() const {
    assert(isPowerOf2() && "not a power of 2");
    return countTrailingZeros();
  }

  bool getBit(unsigned I) const {
    assert(I < Width && "bit index out of range");
    return (Bits >> I) & 1;
  }

  // Arithmetic (wrap-around).
  APInt64 add(const APInt64 &RHS) const { return bin(Bits + RHS.Bits, RHS); }
  APInt64 sub(const APInt64 &RHS) const { return bin(Bits - RHS.Bits, RHS); }
  APInt64 mul(const APInt64 &RHS) const { return bin(Bits * RHS.Bits, RHS); }
  APInt64 neg() const { return APInt64(Width, 0 - Bits); }
  APInt64 notOp() const { return APInt64(Width, ~Bits); }

  /// Unsigned division; caller must rule out division by zero.
  APInt64 udiv(const APInt64 &RHS) const {
    assert(!RHS.isZero() && "udiv by zero");
    return bin(Bits / RHS.Bits, RHS);
  }
  APInt64 urem(const APInt64 &RHS) const {
    assert(!RHS.isZero() && "urem by zero");
    return bin(Bits % RHS.Bits, RHS);
  }
  /// Signed division; caller must rule out division by zero and
  /// INT_MIN / -1 overflow.
  APInt64 sdiv(const APInt64 &RHS) const;
  APInt64 srem(const APInt64 &RHS) const;

  // Bitwise.
  APInt64 andOp(const APInt64 &RHS) const { return bin(Bits & RHS.Bits, RHS); }
  APInt64 orOp(const APInt64 &RHS) const { return bin(Bits | RHS.Bits, RHS); }
  APInt64 xorOp(const APInt64 &RHS) const { return bin(Bits ^ RHS.Bits, RHS); }

  /// Shifts: shift amounts >= width produce poison in LLVM; here they are
  /// defined to yield zero so concrete evaluation is total. UB detection is
  /// the interpreter's/verifier's job.
  APInt64 shl(const APInt64 &RHS) const {
    if (RHS.Bits >= Width)
      return zero(Width);
    return APInt64(Width, Bits << RHS.Bits);
  }
  APInt64 lshr(const APInt64 &RHS) const {
    if (RHS.Bits >= Width)
      return zero(Width);
    return APInt64(Width, Bits >> RHS.Bits);
  }
  APInt64 ashr(const APInt64 &RHS) const {
    if (RHS.Bits >= Width)
      return isNegative() ? allOnes(Width) : zero(Width);
    return fromSigned(Width, sext() >> RHS.Bits);
  }

  // Width changes.
  APInt64 truncTo(unsigned NewWidth) const {
    assert(NewWidth <= Width && "trunc must narrow");
    return APInt64(NewWidth, Bits);
  }
  APInt64 zextTo(unsigned NewWidth) const {
    assert(NewWidth >= Width && "zext must widen");
    return APInt64(NewWidth, Bits);
  }
  APInt64 sextTo(unsigned NewWidth) const {
    assert(NewWidth >= Width && "sext must widen");
    return fromSigned(NewWidth, sext());
  }

  // Comparisons.
  bool eq(const APInt64 &RHS) const { return same(RHS) && Bits == RHS.Bits; }
  bool ne(const APInt64 &RHS) const { return !eq(RHS); }
  bool ult(const APInt64 &RHS) const { return same(RHS) && Bits < RHS.Bits; }
  bool ule(const APInt64 &RHS) const { return same(RHS) && Bits <= RHS.Bits; }
  bool ugt(const APInt64 &RHS) const { return same(RHS) && Bits > RHS.Bits; }
  bool uge(const APInt64 &RHS) const { return same(RHS) && Bits >= RHS.Bits; }
  bool slt(const APInt64 &RHS) const { return same(RHS) && sext() < RHS.sext(); }
  bool sle(const APInt64 &RHS) const { return same(RHS) && sext() <= RHS.sext(); }
  bool sgt(const APInt64 &RHS) const { return same(RHS) && sext() > RHS.sext(); }
  bool sge(const APInt64 &RHS) const { return same(RHS) && sext() >= RHS.sext(); }

  bool operator==(const APInt64 &RHS) const {
    return Width == RHS.Width && Bits == RHS.Bits;
  }
  bool operator!=(const APInt64 &RHS) const { return !(*this == RHS); }

  // Overflow predicates (for nsw/nuw UB detection).
  bool addOverflowsSigned(const APInt64 &RHS) const;
  bool addOverflowsUnsigned(const APInt64 &RHS) const;
  bool subOverflowsSigned(const APInt64 &RHS) const;
  bool subOverflowsUnsigned(const APInt64 &RHS) const;
  bool mulOverflowsSigned(const APInt64 &RHS) const;
  bool mulOverflowsUnsigned(const APInt64 &RHS) const;
  /// True if shl loses set bits (nuw) / changes sign meaning (nsw).
  bool shlOverflowsUnsigned(const APInt64 &RHS) const;
  bool shlOverflowsSigned(const APInt64 &RHS) const;

  /// Decimal string (signed rendering when \p Signed).
  std::string toString(bool Signed = true) const;

private:
  uint64_t mask() const {
    return Width == 64 ? ~0ULL : ((1ULL << Width) - 1);
  }
  bool same(const APInt64 &RHS) const {
    assert(Width == RHS.Width && "width mismatch");
    return true;
  }
  APInt64 bin(uint64_t Raw, const APInt64 &RHS) const {
    assert(Width == RHS.Width && "width mismatch");
    return APInt64(Width, Raw);
  }

  unsigned Width;
  uint64_t Bits;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_APINT64_H
