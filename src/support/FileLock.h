//===- FileLock.h - RAII flock(2) advisory file lock -------------*- C++ -*-=//
//
// The one cross-process mutual-exclusion primitive in the runtime, shared by
// the persistent VerdictStore journal and checkpoint writes. An advisory
// flock(2) on a dedicated lock file — *not* on the protected file itself, so
// the lock identity survives the atomic write-then-rename discipline
// (renaming the payload would silently detach a lock held on it).
//
// Acquisition is EINTR-safe: flock(2) can be interrupted by signals (the
// evaluation driver SIGKILLs hung workers, and tests send signals freely),
// so both the blocking and non-blocking paths retry the syscall until it
// either succeeds or fails for a real reason.
//
// Semantics are whole-file advisory locks: every cooperating writer must go
// through FileLock; the kernel releases the lock automatically when the
// holder's descriptor closes — including on crash, which is exactly the
// property a crash-tolerant store wants (no stale-lock recovery protocol).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_FILELOCK_H
#define VERIOPT_SUPPORT_FILELOCK_H

#include <string>

namespace veriopt {

/// RAII advisory lock on a lock file. Default-constructed unheld; lock() /
/// tryLock() acquire, the destructor (or unlock()) releases. Movable so a
/// lock can be returned from a helper; not copyable.
class FileLock {
public:
  enum class Mode {
    Shared,   ///< concurrent readers (flock LOCK_SH)
    Exclusive ///< single writer (flock LOCK_EX)
  };

  FileLock() = default;
  ~FileLock() { unlock(); }

  FileLock(FileLock &&O) noexcept : Fd(O.Fd), LockPath(std::move(O.LockPath)) {
    O.Fd = -1;
  }
  FileLock &operator=(FileLock &&O) noexcept {
    if (this != &O) {
      unlock();
      Fd = O.Fd;
      LockPath = std::move(O.LockPath);
      O.Fd = -1;
    }
    return *this;
  }
  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;

  /// Block until the lock on \p Path is held (creating the lock file if
  /// needed). Returns false — with \p Err naming the failing step — only on
  /// real I/O errors; EINTR is retried.
  bool lock(const std::string &Path, Mode M, std::string *Err = nullptr);

  /// Non-blocking acquire. Returns true with \p Contended=false when the
  /// lock was taken, true with \p Contended=true when another holder has it
  /// (no error), and false on real I/O errors.
  bool tryLock(const std::string &Path, Mode M, bool &Contended,
               std::string *Err = nullptr);

  /// Release (no-op when unheld). Closing the descriptor drops the flock.
  void unlock();

  bool held() const { return Fd >= 0; }
  const std::string &path() const { return LockPath; }

private:
  bool acquire(const std::string &Path, Mode M, bool NonBlocking,
               bool &Contended, std::string *Err);

  int Fd = -1;
  std::string LockPath;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_FILELOCK_H
