//===- IoEnv.cpp - Injectable I/O environment ----------------------------------//

#include "support/IoEnv.h"

#include <atomic>
#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

namespace veriopt {

//===--- Passthrough base ------------------------------------------------------//

int IoEnv::open(const char *Path, int Flags, mode_t Mode) {
  return ::open(Path, Flags, Mode);
}

ssize_t IoEnv::write(int Fd, const void *Buf, size_t N) {
  return ::write(Fd, Buf, N);
}

int IoEnv::fsync(int Fd) { return ::fsync(Fd); }

int IoEnv::rename(const char *From, const char *To) {
  return std::rename(From, To);
}

int IoEnv::close(int Fd) { return ::close(Fd); }

int IoEnv::flock(int Fd, int Op) { return ::flock(Fd, Op); }

int IoEnv::unlink(const char *Path) { return ::unlink(Path); }

IoEnv &IoEnv::system() {
  static IoEnv E;
  return E;
}

namespace {
// Zero-initialized (constant-init, no static-order hazards): null means
// "the passthrough", so the default costs exactly one relaxed load.
std::atomic<IoEnv *> CurrentEnv{nullptr};
} // namespace

IoEnv *IoEnv::current() {
  IoEnv *E = CurrentEnv.load(std::memory_order_acquire);
  return E ? E : &system();
}

IoEnv *IoEnv::install(IoEnv *E) {
  IoEnv *Prev = CurrentEnv.exchange(E == &system() ? nullptr : E,
                                    std::memory_order_acq_rel);
  return Prev ? Prev : &system();
}

//===--- FaultyIoEnv -----------------------------------------------------------//

bool FaultyIoEnv::exempt(const std::string &Path) {
  // Exemptions name the *logical* destination, but writeFileAtomic stages
  // through "<path>.tmp.<pid>.<seq>" — strip that decoration so exempting
  // ".jsonl" also spares the temporary its payload is written to.
  std::string P = Path;
  size_t Tmp = P.rfind(".tmp.");
  if (Tmp != std::string::npos) {
    bool Decorated = true;
    unsigned Dots = 0;
    for (size_t I = Tmp + 5; I < P.size(); ++I) {
      if (P[I] == '.')
        ++Dots;
      else if (P[I] < '0' || P[I] > '9')
        Decorated = false;
    }
    if (Decorated && Dots == 1)
      P.resize(Tmp);
  }
  std::lock_guard<std::mutex> L(M);
  for (const std::string &S : Exempt)
    if (P.size() >= S.size() &&
        P.compare(P.size() - S.size(), S.size(), S) == 0)
      return true;
  return false;
}

uint64_t FaultyIoEnv::nextKey(const std::string &Path) {
  uint64_t Ordinal;
  {
    std::lock_guard<std::mutex> L(M);
    Ordinal = PathOps[Path]++;
  }
  // SplitMix64-style mix of (path hash, ordinal): the Nth operation on a
  // given path always decides the same way for a given seed, independent
  // of what other paths (or threads) are doing.
  uint64_t Z = FaultInjector::hashKey(Path) + 0x9e3779b97f4a7c15ULL * (Ordinal + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

int FaultyIoEnv::shapeErrno(uint64_t Key) {
  // The errno classes real storage throws at durable writers. Chosen by
  // key so a given failing operation always reports the same errno.
  switch (Key % 3) {
  case 0:
    return ENOSPC;
  case 1:
    return EIO;
  default:
    return EDQUOT;
  }
}

int FaultyIoEnv::open(const char *Path, int Flags, mode_t Mode) {
  const std::string P = Path;
  if (exempt(P))
    return IoEnv::open(Path, Flags, Mode);
  uint64_t Key = nextKey(P);
  if (FI.shouldInject(FaultSite::IoOpen, Key)) {
    errno = shapeErrno(Key);
    return -1;
  }
  int Fd = IoEnv::open(Path, Flags, Mode);
  if (Fd >= 0) {
    std::lock_guard<std::mutex> L(M);
    FdPath[Fd] = P;
  }
  return Fd;
}

ssize_t FaultyIoEnv::write(int Fd, const void *Buf, size_t N) {
  std::string P;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = FdPath.find(Fd);
    if (It == FdPath.end())
      return IoEnv::write(Fd, Buf, N); // not ours (stdio etc.)
    P = It->second;
  }
  uint64_t Key = nextKey(P);
  if (FI.shouldInject(FaultSite::IoWrite, Key)) {
    errno = shapeErrno(Key);
    return -1;
  }
  if (N > 1 && FI.shouldInject(FaultSite::IoShortWrite, Key)) {
    // A real short write: the prefix lands on disk (that is the torn-write
    // hazard), and >= 1 byte of progress keeps retry loops terminating.
    return IoEnv::write(Fd, Buf, N / 2);
  }
  return IoEnv::write(Fd, Buf, N);
}

int FaultyIoEnv::fsync(int Fd) {
  std::string P;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = FdPath.find(Fd);
    if (It == FdPath.end())
      return IoEnv::fsync(Fd);
    P = It->second;
  }
  uint64_t Key = nextKey(P);
  if (FI.shouldInject(FaultSite::IoFsync, Key)) {
    errno = shapeErrno(Key);
    return -1;
  }
  return IoEnv::fsync(Fd);
}

int FaultyIoEnv::rename(const char *From, const char *To) {
  const std::string T = To;
  if (exempt(T))
    return IoEnv::rename(From, To);
  uint64_t Key = nextKey(T);
  if (FI.shouldInject(FaultSite::IoRename, Key)) {
    errno = shapeErrno(Key);
    return -1;
  }
  return IoEnv::rename(From, To);
}

int FaultyIoEnv::close(int Fd) {
  {
    std::lock_guard<std::mutex> L(M);
    FdPath.erase(Fd);
  }
  // close(2) failures are not injected: every caller treats close purely
  // as a resource release after the fsync already made data durable, and a
  // leaked-fd simulation would poison unrelated tests.
  return IoEnv::close(Fd);
}

int FaultyIoEnv::flock(int Fd, int Op) {
  std::string P;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = FdPath.find(Fd);
    if (It == FdPath.end())
      return IoEnv::flock(Fd, Op);
    P = It->second;
  }
  uint64_t Key = nextKey(P);
  if (FI.shouldInject(FaultSite::IoFlock, Key)) {
    errno = EIO; // flock failures are media/filesystem errors, not quota
    return -1;
  }
  return IoEnv::flock(Fd, Op);
}

//===--- RecordingIoEnv --------------------------------------------------------//

int RecordingIoEnv::open(const char *Path, int Flags, mode_t Mode) {
  int Fd = IoEnv::open(Path, Flags, Mode);
  if (Fd >= 0) {
    struct stat St;
    bool IsDir = ::fstat(Fd, &St) == 0 && S_ISDIR(St.st_mode);
    {
      std::lock_guard<std::mutex> L(M);
      FdInfo[Fd] = {Path, IsDir};
    }
    Op O;
    O.K = Op::Kind::Open;
    O.Path = Path;
    O.Flags = Flags;
    O.IsDir = IsDir;
    push(std::move(O));
  }
  return Fd;
}

ssize_t RecordingIoEnv::write(int Fd, const void *Buf, size_t N) {
  ssize_t R = IoEnv::write(Fd, Buf, N);
  if (R > 0) {
    std::pair<std::string, bool> Info;
    {
      std::lock_guard<std::mutex> L(M);
      auto It = FdInfo.find(Fd);
      if (It == FdInfo.end())
        return R;
      Info = It->second;
    }
    Op O;
    O.K = Op::Kind::Write;
    O.Path = Info.first;
    O.Data.assign(static_cast<const char *>(Buf), static_cast<size_t>(R));
    push(std::move(O));
  }
  return R;
}

int RecordingIoEnv::fsync(int Fd) {
  int R = IoEnv::fsync(Fd);
  if (R == 0) {
    std::pair<std::string, bool> Info;
    {
      std::lock_guard<std::mutex> L(M);
      auto It = FdInfo.find(Fd);
      if (It == FdInfo.end())
        return R;
      Info = It->second;
    }
    Op O;
    O.K = Op::Kind::Fsync;
    O.Path = Info.first;
    O.IsDir = Info.second;
    push(std::move(O));
  }
  return R;
}

int RecordingIoEnv::rename(const char *From, const char *To) {
  int R = IoEnv::rename(From, To);
  if (R == 0) {
    Op O;
    O.K = Op::Kind::Rename;
    O.Path = From;
    O.Path2 = To;
    push(std::move(O));
  }
  return R;
}

int RecordingIoEnv::close(int Fd) {
  std::pair<std::string, bool> Info;
  bool Known = false;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = FdInfo.find(Fd);
    if (It != FdInfo.end()) {
      Info = It->second;
      Known = true;
      FdInfo.erase(It);
    }
  }
  int R = IoEnv::close(Fd);
  if (R == 0 && Known) {
    Op O;
    O.K = Op::Kind::Close;
    O.Path = Info.first;
    O.IsDir = Info.second;
    push(std::move(O));
  }
  return R;
}

int RecordingIoEnv::flock(int Fd, int FlockOp) {
  int R = IoEnv::flock(Fd, FlockOp);
  if (R == 0) {
    std::pair<std::string, bool> Info;
    {
      std::lock_guard<std::mutex> L(M);
      auto It = FdInfo.find(Fd);
      if (It == FdInfo.end())
        return R;
      Info = It->second;
    }
    Op O;
    O.K = Op::Kind::Flock;
    O.Path = Info.first;
    O.Flags = FlockOp;
    push(std::move(O));
  }
  return R;
}

int RecordingIoEnv::unlink(const char *Path) {
  int R = IoEnv::unlink(Path);
  if (R == 0) {
    Op O;
    O.K = Op::Kind::Unlink;
    O.Path = Path;
    push(std::move(O));
  }
  return R;
}

} // namespace veriopt
