//===- FaultInjector.cpp - Deterministic fault injection ----------------------//

#include "support/FaultInjector.h"

#include <cstring>

namespace veriopt {

const char *faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::OracleBudget:
    return "oracle-budget";
  case FaultSite::VerdictFlip:
    return "verdict-flip";
  case FaultSite::CacheMiss:
    return "cache-miss";
  case FaultSite::CheckpointWrite:
    return "checkpoint-write";
  case FaultSite::WorkerCrash:
    return "worker-crash";
  case FaultSite::WorkerHang:
    return "worker-hang";
  case FaultSite::WorkerCorrupt:
    return "worker-corrupt-result";
  case FaultSite::IoOpen:
    return "io-open";
  case FaultSite::IoWrite:
    return "io-write";
  case FaultSite::IoShortWrite:
    return "io-short-write";
  case FaultSite::IoFsync:
    return "io-fsync";
  case FaultSite::IoRename:
    return "io-rename";
  case FaultSite::IoFlock:
    return "io-flock";
  case FaultSite::NumSites:
    break;
  }
  return "unknown";
}

static uint64_t bitsOf(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

static double doubleOf(uint64_t B) {
  double D;
  std::memcpy(&D, &B, sizeof(D));
  return D;
}

void FaultInjector::enable(FaultSite S, double Rate) {
  if (Rate < 0)
    Rate = 0;
  if (Rate > 1)
    Rate = 1;
  RateBits[static_cast<size_t>(S)].store(bitsOf(Rate),
                                         std::memory_order_relaxed);
}

double FaultInjector::rate(FaultSite S) const {
  return doubleOf(RateBits[static_cast<size_t>(S)].load(
      std::memory_order_relaxed));
}

uint64_t FaultInjector::hashKey(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : S)
    H = (H ^ static_cast<unsigned char>(C)) * 0x100000001b3ULL;
  return H;
}

/// SplitMix64 finalizer over (seed, site, key): a full-avalanche mix so
/// nearby keys decide independently.
static uint64_t mix(uint64_t Seed, unsigned Site, uint64_t Key) {
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ULL * (Site + 1) + Key;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

bool FaultInjector::shouldInject(FaultSite S, uint64_t Key) {
  size_t I = static_cast<size_t>(S);
  Checked[I].fetch_add(1, std::memory_order_relaxed);
  double R = rate(S);
  if (R <= 0)
    return false;
  double U = static_cast<double>(mix(Seed, static_cast<unsigned>(S), Key) >>
                                 11) *
             (1.0 / 9007199254740992.0);
  bool Inject = U < R;
  if (Inject)
    Injected[I].fetch_add(1, std::memory_order_relaxed);
  return Inject;
}

FaultInjector::Counters FaultInjector::counters() const {
  Counters C;
  for (size_t I = 0; I < NumSites; ++I) {
    C.Checked[I] = Checked[I].load(std::memory_order_relaxed);
    C.Injected[I] = Injected[I].load(std::memory_order_relaxed);
  }
  return C;
}

} // namespace veriopt
