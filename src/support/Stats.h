//===- Stats.h - Descriptive statistics for the evaluation harness -*- C++ -*-//
//
// Small numeric helpers shared by the reward functions, training logs, and
// the table/figure benches: arithmetic/geometric means, percentiles, and the
// EMA smoothing the paper uses for Fig. 4 (alpha = 0.95).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_STATS_H
#define VERIOPT_SUPPORT_STATS_H

#include <vector>

namespace veriopt {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double> &Xs);

/// Geometric mean of strictly positive samples; 0 for an empty sample.
/// Non-positive entries are clamped to a small epsilon so a single
/// degenerate ratio cannot zero out an entire geomean row.
double geomean(const std::vector<double> &Xs);

/// Linear-interpolated percentile, P in [0, 100]. Sorts a copy.
double percentile(std::vector<double> Xs, double P);

/// Exponential moving average smoother. EMA(x_t) = A*prev + (1-A)*x_t, as in
/// the paper's training-dynamics plots (A = 0.95).
class EMA {
public:
  explicit EMA(double Alpha = 0.95) : Alpha(Alpha) {}

  double push(double X) {
    if (!Primed) {
      Value = X;
      Primed = true;
    } else {
      Value = Alpha * Value + (1.0 - Alpha) * X;
    }
    return Value;
  }

  double value() const { return Value; }
  bool primed() const { return Primed; }

  /// Checkpoint/resume: reinstate a previously observed smoother state.
  void restore(double V, bool P) {
    Value = V;
    Primed = P;
  }

private:
  double Alpha;
  double Value = 0;
  bool Primed = false;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_STATS_H
