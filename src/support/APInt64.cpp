//===- APInt64.cpp - Fixed-width wrap-around integers ---------------------===//

#include "support/APInt64.h"

#include <bit>

namespace veriopt {

unsigned APInt64::countTrailingZeros() const {
  if (Bits == 0)
    return Width;
  return static_cast<unsigned>(std::countr_zero(Bits));
}

unsigned APInt64::countLeadingZeros() const {
  if (Bits == 0)
    return Width;
  unsigned Lz64 = static_cast<unsigned>(std::countl_zero(Bits));
  return Lz64 - (64 - Width);
}

unsigned APInt64::popCount() const {
  return static_cast<unsigned>(std::popcount(Bits));
}

APInt64 APInt64::sdiv(const APInt64 &RHS) const {
  assert(!RHS.isZero() && "sdiv by zero");
  assert(!(isSignedMin() && RHS.isAllOnes()) && "sdiv overflow");
  return fromSigned(Width, sext() / RHS.sext());
}

APInt64 APInt64::srem(const APInt64 &RHS) const {
  assert(!RHS.isZero() && "srem by zero");
  assert(!(isSignedMin() && RHS.isAllOnes()) && "srem overflow");
  return fromSigned(Width, sext() % RHS.sext());
}

bool APInt64::addOverflowsSigned(const APInt64 &RHS) const {
  int64_t A = sext(), B = RHS.sext();
  int64_t Wide;
  if (__builtin_add_overflow(A, B, &Wide))
    return true; // only possible at width 64
  return APInt64::fromSigned(Width, Wide).sext() != Wide;
}

bool APInt64::addOverflowsUnsigned(const APInt64 &RHS) const {
  // Sum exceeds the width when the masked result is smaller than an operand,
  // or when the raw 64-bit add carries out.
  uint64_t Raw;
  bool Carry64 = __builtin_add_overflow(Bits, RHS.Bits, &Raw);
  if (Width == 64)
    return Carry64;
  return Raw > ((1ULL << Width) - 1);
}

bool APInt64::subOverflowsSigned(const APInt64 &RHS) const {
  int64_t A = sext(), B = RHS.sext();
  int64_t Wide;
  if (__builtin_sub_overflow(A, B, &Wide))
    return true;
  return APInt64::fromSigned(Width, Wide).sext() != Wide;
}

bool APInt64::subOverflowsUnsigned(const APInt64 &RHS) const {
  return Bits < RHS.Bits;
}

bool APInt64::mulOverflowsSigned(const APInt64 &RHS) const {
  int64_t A = sext(), B = RHS.sext();
  int64_t Wide;
  if (__builtin_mul_overflow(A, B, &Wide))
    return true;
  return APInt64::fromSigned(Width, Wide).sext() != Wide;
}

bool APInt64::mulOverflowsUnsigned(const APInt64 &RHS) const {
  uint64_t Wide;
  if (__builtin_mul_overflow(Bits, RHS.Bits, &Wide))
    return true;
  if (Width == 64)
    return false;
  return Wide > ((1ULL << Width) - 1);
}

bool APInt64::shlOverflowsUnsigned(const APInt64 &RHS) const {
  if (RHS.Bits >= Width)
    return !isZero();
  // Overflow iff shifting back loses bits.
  APInt64 Shifted = shl(RHS);
  return Shifted.lshr(RHS) != *this;
}

bool APInt64::shlOverflowsSigned(const APInt64 &RHS) const {
  if (RHS.Bits >= Width)
    return !isZero();
  APInt64 Shifted = shl(RHS);
  return Shifted.ashr(RHS) != *this;
}

std::string APInt64::toString(bool Signed) const {
  if (Signed)
    return std::to_string(sext());
  return std::to_string(Bits);
}

} // namespace veriopt
