//===- ThreadPool.h - Fixed-size worker pool ---------------------*- C++ -*-=//
//
// A small fixed worker pool with a parallelFor-style API, built for the
// GRPO rollout-scoring hot path: one pool lives for a whole training run,
// each step submits one index-space job, and the submitting thread
// participates so Threads == 1 degenerates to a plain serial loop with no
// synchronization cost.
//
// Scheduling is dynamic (atomic index claiming), so uneven per-item cost —
// verification times vary by orders of magnitude between a cache hit and a
// SAT call — still load-balances. Work items must not throw and must not
// call back into the same pool (jobs are not reentrant).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SUPPORT_THREADPOOL_H
#define VERIOPT_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace veriopt {

class ThreadPool {
public:
  /// Spawn \p Threads - 1 workers (the caller of parallelFor is the last
  /// "thread"). Threads <= 1 spawns nothing and parallelFor runs inline.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total degree of parallelism (workers + the submitting thread).
  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Run Fn(I) for every I in [0, N), distributing indices across the pool.
  /// Blocks until all N calls have returned. Indices are claimed
  /// dynamically; no ordering between items may be assumed. Safe to call
  /// from several threads (submissions serialize).
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

private:
  /// One submitted index-space job. Workers hold shared_ptr copies, so a
  /// straggler waking after completion sees an exhausted Next counter
  /// instead of a recycled job.
  struct Job {
    const std::function<void(size_t)> *Fn = nullptr;
    size_t Size = 0;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
  };

  void workerLoop();
  void runJob(Job &J);

  std::mutex M;
  std::condition_variable WorkCV; ///< workers: a new job was posted
  std::condition_variable DoneCV; ///< submitter: all items completed
  std::shared_ptr<Job> Current;   ///< under M; null when idle
  bool Shutdown = false;          ///< under M

  std::mutex SubmitM; ///< serializes concurrent parallelFor calls
  std::vector<std::thread> Workers;
};

} // namespace veriopt

#endif // VERIOPT_SUPPORT_THREADPOOL_H
