//===- VerdictStore.h - Durable content-addressed verdict store --*- C++ -*-=//
//
// The persistent tier under VerifyCache: an append-only journaled on-disk
// map from the canonical cache key (full verification budget + source text
// + canonically re-printed candidate, VerifyCache::makeKey) to the complete
// VerifyResult. Verification is deterministic, so a stored verdict is
// bit-identical to recomputing it — which is the whole contract: training,
// sharded evaluation, and every veriopt-worker process can share one store
// across runs and the results never change, only the work does.
//
// Journal format (docs/PERSISTENCE.md):
//
//   veriopt-verdict-store 1            <- header line
//   R <crc32-hex8> <payload-json>      <- one record per line
//
// The payload is a single-line JSON object carrying the key and every
// VerifyResult field; 64-bit integers travel as fixed-width hex strings so
// nothing is squeezed through a JSON double. The CRC (IEEE 802.3, over the
// payload bytes) frames each record: torn tails from crashes mid-append and
// bit rot both fail the frame check and are *quarantined* — counted,
// skipped, never fatal, and never served as a verdict. Loading tolerates
// every prefix of a valid journal plus arbitrary mid-file garbage.
// Duplicate keys (two processes racing the same candidate) resolve
// last-write-wins; since verdicts are deterministic the duplicates agree,
// and compaction reclaims them.
//
// Multi-writer safety: all file access serializes on a sidecar flock(2)
// lock file "<path>.lock" (support/FileLock.h) — a sidecar so the lock
// identity survives compaction's atomic write-then-rename of the journal
// itself. Appends additionally go through O_APPEND so concurrently flushed
// batches interleave at record granularity at worst.
//
// Trust/eligibility model: only fully deterministic verdicts are persisted
// — Equivalent, NotEquivalent (falsified), SyntaxError, and *budget-typed*
// Inconclusive (SolverTimeout / ResourceExhausted / LoopBound /
// Unsupported, whose outcome is a pure function of the budget captured in
// the key). Fault-injected results never reach the store: VerifyCache
// bypasses the backing tier entirely while an injector is attached.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_STORE_VERDICTSTORE_H
#define VERIOPT_STORE_VERDICTSTORE_H

#include "verify/VerifyCache.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace veriopt {

class VerdictStore : public VerdictBackingTier {
public:
  struct Options {
    /// Compact at open when (dead + quarantined) / journal lines exceeds
    /// this ratio (dead = superseded duplicates from multi-writer races).
    double CompactDeadRatio = 0.5;
    /// ... but never below this many journal lines (tiny journals are not
    /// worth rewriting).
    size_t CompactMinLines = 64;
    /// Write-behind batch size: puts buffer in memory and flush to the
    /// journal (one lock + one durable append) every N records, plus on
    /// flush()/close/destruction.
    size_t FlushEveryN = 32;
    /// Graceful degradation: after this many *consecutive* flush failures
    /// the store trips to in-memory-only (sticky for the store's lifetime).
    /// Degraded puts still update the index — and still count as Writes, so
    /// the training trajectory's metrics stay bit-identical to a fault-free
    /// run — but nothing further touches the journal. 0 disables tripping.
    size_t DegradeAfterFlushFailures = 3;
  };

  /// Open (creating if absent) the journal at \p Path. Loads the full
  /// index with quarantine-and-continue tolerance and compacts if the dead
  /// ratio crossed the threshold. Returns null only on real I/O errors
  /// (corruption is never fatal), with \p Err naming the step.
  static std::unique_ptr<VerdictStore>
  open(const std::string &Path, std::string *Err, const Options &O);
  static std::unique_ptr<VerdictStore> open(const std::string &Path,
                                            std::string *Err = nullptr);

  ~VerdictStore() override;

  //===--- VerdictBackingTier ------------------------------------------===//

  /// Index lookup (the journal is fully loaded at open). Counts a store
  /// hit or miss.
  bool lookup(const std::string &Key, VerifyResult &Out) override;

  /// Buffer \p R for the journal if it is eligible and the key is new to
  /// this store (re-putting a known key is a no-op — verdicts are
  /// deterministic, so the resident record is already correct).
  void put(const std::string &Key, const VerifyResult &R) override;

  //===--- Maintenance -------------------------------------------------===//

  /// Durably append all buffered records (under the exclusive file lock).
  /// On failure the in-memory index is still intact; the unflushed batch
  /// is dropped (it will be recomputed and re-put by a later run). After
  /// Options::DegradeAfterFlushFailures consecutive failures the store
  /// trips to in-memory-only and flush becomes a successful no-op.
  bool flush(std::string *Err = nullptr);

  /// Rewrite the journal to live records only: re-reads the file under the
  /// exclusive lock (merging records other processes appended since open),
  /// then atomically replaces it with a sorted, quarantine-free journal.
  bool compact(std::string *Err = nullptr);

  //===--- Introspection ------------------------------------------------===//

  /// Deterministic-verdict filter (see the trust model above).
  static bool eligible(const VerifyResult &R);

  struct Stats {
    uint64_t Hits = 0;        ///< lookups served from the index
    uint64_t Misses = 0;      ///< lookups that found nothing
    uint64_t Writes = 0;      ///< records accepted by put()
    uint64_t Compactions = 0; ///< journal rewrites
    uint64_t Quarantined = 0; ///< journal lines rejected at load
    uint64_t LoadedRecords = 0; ///< frame-valid records seen at open
    uint64_t LiveAtOpen = 0;    ///< distinct keys resident after open
    uint64_t FlushFailures = 0; ///< durable appends that failed
    /// Why the store tripped to in-memory-only ("" while healthy) — the
    /// typed reason tools/report surfaces in the degraded-mode row.
    std::string DegradedReason;
  };
  Stats stats() const;

  /// True once the store has tripped to in-memory-only (sticky). Lookups
  /// and puts keep working — only durability is lost.
  bool degraded() const;

  /// Distinct keys currently resident (loaded + put since open).
  size_t size() const;
  const std::string &path() const { return JournalPath; }

  //===--- Record framing (public for the corruption tests) -------------===//

  /// One complete journal line for (Key, R), including the "R " tag, the
  /// CRC frame, and the trailing newline. Deterministic: fixed field order,
  /// bit-exact integer encoding.
  static std::string encodeRecord(const std::string &Key,
                                  const VerifyResult &R);

  /// Parse one journal line (no trailing newline). False on any framing,
  /// CRC, JSON, or field violation — the caller quarantines.
  static bool decodeRecord(const std::string &Line, std::string &Key,
                           VerifyResult &R);

  /// CRC-32 (IEEE 802.3, reflected) over \p Data.
  static uint32_t crc32(const std::string &Data);

  /// The fixed header line content (without newline).
  static const char *headerLine();

private:
  VerdictStore(std::string Path, Options O);

  /// Parse journal \p Text into \p Map (insertion-ordered by first sight,
  /// last-write-wins on values). Returns per-parse accounting.
  struct LoadCounts {
    uint64_t Lines = 0, Records = 0, Duplicates = 0, Quarantined = 0;
    bool HeaderOk = false;
  };
  static LoadCounts parseJournal(const std::string &Text,
                                 std::unordered_map<std::string, VerifyResult> &Map,
                                 std::vector<std::string> *KeyOrder);

  bool flushLocked(std::string *Err);
  bool compactLocked(std::string *Err);

  const std::string JournalPath;
  const std::string LockPath;
  const Options Opt;

  mutable std::mutex M; ///< index, pending batch, stats
  std::mutex IoM;       ///< serializes in-process flush/compact file work
  std::unordered_map<std::string, VerifyResult> Index;
  std::vector<std::pair<std::string, VerifyResult>> Pending;
  /// Journal lines this process believes are on disk (records it loaded,
  /// quarantined garbage, and its own appends) — the compaction heuristic's
  /// denominator.
  uint64_t LinesOnDisk = 0;
  uint64_t DeadOnDisk = 0; ///< superseded duplicates + quarantined lines
  uint64_t ConsecFlushFailures = 0; ///< resets on any successful flush
  bool Degraded = false;            ///< sticky in-memory-only mode
  Stats S;

  /// Account one failed flush under M; trips Degraded at the threshold.
  void noteFlushFailureLocked(const std::string &Why);
};

} // namespace veriopt

#endif // VERIOPT_STORE_VERDICTSTORE_H
