//===- VerdictStore.cpp - Durable content-addressed verdict store -------------//

#include "store/VerdictStore.h"

#include "support/AtomicFile.h"
#include "support/FileLock.h"
#include "trace/Json.h"
#include "trace/Metrics.h"
#include "trace/Trace.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>

namespace veriopt {

namespace {

// Process-wide efficacy counters (docs/OBSERVABILITY.md), mirroring the
// per-store Stats the same way VerifyCache mirrors its Counters.
Counter &hitsCounter() {
  static Counter &C = MetricsRegistry::global().counter("store.hits");
  return C;
}
Counter &missesCounter() {
  static Counter &C = MetricsRegistry::global().counter("store.misses");
  return C;
}
Counter &writesCounter() {
  static Counter &C = MetricsRegistry::global().counter("store.writes");
  return C;
}
Counter &compactionsCounter() {
  static Counter &C = MetricsRegistry::global().counter("store.compactions");
  return C;
}
Counter &quarantinedCounter() {
  static Counter &C = MetricsRegistry::global().counter("store.quarantined");
  return C;
}
// Durability-plane instruments ("io." prefix: excluded from the
// deterministic trace plane, docs/OBSERVABILITY.md) — I/O faults move
// these, never the store.* efficacy counters above.
Counter &flushFailuresCounter() {
  static Counter &C =
      MetricsRegistry::global().counter("io.store.flush_failures");
  return C;
}
Gauge &degradedGauge() {
  static Gauge &G = MetricsRegistry::global().gauge("io.store.degraded");
  return G;
}

/// uint64 -> fixed 16-digit lowercase hex. JSON numbers are doubles, which
/// cannot carry a full uint64 (fuel budgets, conflict counts, APInt64 bits)
/// — so 64-bit fields travel as hex strings, the checkpoint discipline.
std::string uhex(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool unhexU64(const std::string &Hex, uint64_t &Out) {
  if (Hex.size() != 16)
    return false;
  uint64_t V = 0;
  for (char C : Hex) {
    V <<= 4;
    if (C >= '0' && C <= '9')
      V |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      V |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  Out = V;
  return true;
}

/// Non-negative integral JSON number (the shardResultFromJson discipline:
/// 1.5 or -3 in a count field is a typed reject, not a truncation).
bool jsonCount(const JsonValue &O, const char *Key, uint64_t &Out) {
  const JsonValue *V = O.get(Key);
  if (!V || !V->isNumber() || V->number() < 0 ||
      V->number() != std::floor(V->number()))
    return false;
  Out = static_cast<uint64_t>(V->number());
  return true;
}

bool jsonHex64(const JsonValue &O, const char *Key, uint64_t &Out) {
  const JsonValue *V = O.get(Key);
  return V && V->isString() && unhexU64(V->str(), Out);
}

bool statusFromName(const std::string &Name, VerifyStatus &Out) {
  for (int I = 0; I <= static_cast<int>(VerifyStatus::Inconclusive); ++I) {
    auto S = static_cast<VerifyStatus>(I);
    if (Name == verifyStatusName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

bool diagFromName(const std::string &Name, DiagKind &Out) {
  for (int I = 0; I <= static_cast<int>(DiagKind::ResourceExhausted); ++I) {
    auto K = static_cast<DiagKind>(I);
    if (Name == diagKindName(K)) {
      Out = K;
      return true;
    }
  }
  return false;
}

uint64_t fileSize(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return 0;
  return static_cast<uint64_t>(St.st_size);
}

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream F(Path, std::ios::binary);
  if (!F)
    return false;
  std::ostringstream SS;
  SS << F.rdbuf();
  Out = SS.str();
  return true;
}

} // namespace

const char *VerdictStore::headerLine() { return "veriopt-verdict-store 1"; }

uint32_t VerdictStore::crc32(const std::string &Data) {
  // IEEE 802.3 reflected CRC-32 (polynomial 0xEDB88320), table-driven.
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (unsigned char B : Data)
    C = Table[(C ^ B) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

std::string VerdictStore::encodeRecord(const std::string &Key,
                                       const VerifyResult &R) {
  // Single-line JSON payload, fixed field order so encoding is
  // deterministic. jsonEscape keeps the key (which embeds \x1f separators
  // and IR newlines) on one physical line.
  std::string P = "{\"key\":" + jsonString(Key);
  P += ",\"status\":" + jsonString(verifyStatusName(R.Status));
  P += ",\"diag\":" + jsonString(diagKindName(R.Kind));
  P += ",\"text\":" + jsonString(R.Diagnostic);
  P += ",\"cex\":[";
  for (size_t I = 0; I < R.Counterexample.size(); ++I) {
    const CexBinding &B = R.Counterexample[I];
    if (I)
      P.push_back(',');
    P += "{\"n\":" + jsonString(B.Name) +
         ",\"w\":" + std::to_string(B.Value.width()) +
         ",\"v\":" + jsonString(uhex(B.Value.zext())) + "}";
  }
  P += "],\"bounded\":";
  P += R.BoundedOnly ? "true" : "false";
  P += ",\"falsified\":";
  P += R.FoundByFalsification ? "true" : "false";
  P += ",\"conflicts\":" + jsonString(uhex(R.SolverConflicts));
  P += ",\"fuel\":" + jsonString(uhex(R.FuelSpent));
  P += ",\"tier\":" + std::to_string(R.RetryTier);
  P.push_back('}');

  char Crc[9];
  std::snprintf(Crc, sizeof(Crc), "%08x", crc32(P));
  return std::string("R ") + Crc + " " + P + "\n";
}

bool VerdictStore::decodeRecord(const std::string &Line, std::string &Key,
                                VerifyResult &R) {
  // Frame: "R <8 hex> <payload>". Anything else — wrong tag, short line,
  // malformed CRC field — is a garbage frame.
  if (Line.size() < 12 || Line[0] != 'R' || Line[1] != ' ' || Line[10] != ' ')
    return false;
  uint32_t Crc = 0;
  for (size_t I = 2; I < 10; ++I) {
    char C = Line[I];
    Crc <<= 4;
    if (C >= '0' && C <= '9')
      Crc |= static_cast<uint32_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Crc |= static_cast<uint32_t>(C - 'a' + 10);
    else
      return false;
  }
  std::string Payload = Line.substr(11);
  if (crc32(Payload) != Crc)
    return false;

  JsonValue V;
  std::string Err;
  if (!parseJson(Payload, V, &Err) || !V.isObject())
    return false;

  const JsonValue *K = V.get("key");
  const JsonValue *Status = V.get("status");
  const JsonValue *Diag = V.get("diag");
  const JsonValue *Text = V.get("text");
  const JsonValue *Cex = V.get("cex");
  const JsonValue *Bounded = V.get("bounded");
  const JsonValue *Falsified = V.get("falsified");
  if (!K || !K->isString() || !Status || !Status->isString() || !Diag ||
      !Diag->isString() || !Text || !Text->isString() || !Cex ||
      !Cex->isArray() || !Bounded || !Bounded->isBool() || !Falsified ||
      !Falsified->isBool())
    return false;

  VerifyResult Out;
  if (!statusFromName(Status->str(), Out.Status) ||
      !diagFromName(Diag->str(), Out.Kind))
    return false;
  Out.Diagnostic = Text->str();
  for (const JsonValue &BJ : Cex->array()) {
    if (!BJ.isObject())
      return false;
    const JsonValue *N = BJ.get("n");
    uint64_t W = 0, Bits = 0;
    if (!N || !N->isString() || !jsonCount(BJ, "w", W) || W < 1 || W > 64 ||
        !jsonHex64(BJ, "v", Bits))
      return false;
    // Reject bits above the declared width: APInt64's invariant, and a
    // cheap extra integrity check beyond the CRC.
    if (W < 64 && (Bits >> W) != 0)
      return false;
    CexBinding B;
    B.Name = N->str();
    B.Value = APInt64(static_cast<unsigned>(W), Bits);
    Out.Counterexample.push_back(std::move(B));
  }
  Out.BoundedOnly = Bounded->boolean();
  Out.FoundByFalsification = Falsified->boolean();
  uint64_t Tier = 0;
  if (!jsonHex64(V, "conflicts", Out.SolverConflicts) ||
      !jsonHex64(V, "fuel", Out.FuelSpent) || !jsonCount(V, "tier", Tier) ||
      Tier > 0xFFFFFFFFull)
    return false;
  Out.RetryTier = static_cast<unsigned>(Tier);

  Key = K->str();
  R = std::move(Out);
  return true;
}

bool VerdictStore::eligible(const VerifyResult &R) {
  switch (R.Status) {
  case VerifyStatus::Equivalent:
  case VerifyStatus::NotEquivalent:
  case VerifyStatus::SyntaxError:
    // Proven, falsified, and unparseable are all pure functions of the
    // (source, candidate, budget) key.
    return true;
  case VerifyStatus::Inconclusive:
    // Only budget-typed Inconclusives: their outcome is determined by the
    // budget knobs captured in the key. DiagKind::None (or any semantic
    // kind) on an Inconclusive is an anomaly we refuse to persist.
    switch (R.Kind) {
    case DiagKind::SolverTimeout:
    case DiagKind::ResourceExhausted:
    case DiagKind::LoopBound:
    case DiagKind::Unsupported:
      return true;
    default:
      return false;
    }
  }
  return false;
}

VerdictStore::LoadCounts VerdictStore::parseJournal(
    const std::string &Text,
    std::unordered_map<std::string, VerifyResult> &Map,
    std::vector<std::string> *KeyOrder) {
  LoadCounts C;
  if (Text.empty()) {
    C.HeaderOk = true; // fresh store
    return C;
  }

  size_t Pos = 0;
  bool First = true;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string Line = Text.substr(
        Pos, Nl == std::string::npos ? std::string::npos : Nl - Pos);
    Pos = Nl == std::string::npos ? Text.size() : Nl + 1;

    if (First) {
      First = false;
      if (Line == headerLine()) {
        C.HeaderOk = true;
        continue;
      }
      // Bad header: fall through and treat the line like any other —
      // everything in a headerless file quarantines (never fatal), and the
      // next compaction rewrites a well-formed journal.
    }

    ++C.Lines;
    std::string Key;
    VerifyResult R;
    if (!decodeRecord(Line, Key, R)) {
      ++C.Quarantined;
      continue;
    }
    ++C.Records;
    auto It = Map.find(Key);
    if (It != Map.end()) {
      // Last-write-wins: deterministic verification means duplicates agree,
      // but honoring file order keeps the rule simple and auditable.
      It->second = std::move(R);
      ++C.Duplicates;
    } else {
      Map.emplace(Key, std::move(R));
      if (KeyOrder)
        KeyOrder->push_back(Key);
    }
  }
  return C;
}

VerdictStore::VerdictStore(std::string Path, Options O)
    : JournalPath(std::move(Path)), LockPath(JournalPath + ".lock"), Opt(O) {}

std::unique_ptr<VerdictStore> VerdictStore::open(const std::string &Path,
                                                 std::string *Err) {
  return open(Path, Err, Options());
}

std::unique_ptr<VerdictStore> VerdictStore::open(const std::string &Path,
                                                 std::string *Err,
                                                 const Options &O) {
  std::unique_ptr<VerdictStore> St(new VerdictStore(Path, O));

  TraceSpan Span("store.load");
  std::string Text;
  {
    // Shared lock: concurrent loaders are fine, but never read while a
    // compaction is mid-rewrite or a flush is mid-append.
    FileLock Lock;
    if (!Lock.lock(St->LockPath, FileLock::Mode::Shared, Err))
      return nullptr;
    if (!readWholeFile(Path, Text)) {
      // Absent journal = fresh store; the header is written lazily by the
      // first flush. Only a lock-file failure above is a real error.
      Text.clear();
    }
  }

  LoadCounts C = St->parseJournal(Text, St->Index, nullptr);
  St->LinesOnDisk = C.Lines;
  St->DeadOnDisk = C.Duplicates + C.Quarantined;
  St->S.LoadedRecords = C.Records;
  St->S.Quarantined = C.Quarantined;
  St->S.LiveAtOpen = St->Index.size();
  if (C.Quarantined)
    quarantinedCounter().inc(C.Quarantined);

  Span.arg(TraceArg::ofInt("records", static_cast<int64_t>(C.Records)));
  Span.arg(TraceArg::ofInt("live", static_cast<int64_t>(St->Index.size())));
  Span.arg(
      TraceArg::ofInt("quarantined", static_cast<int64_t>(C.Quarantined)));

  // Compaction heuristic: reclaim once enough of the journal is dead
  // weight (racing writers' duplicates, quarantined garbage) — but leave
  // small journals alone, the rewrite costs more than it saves.
  if (St->LinesOnDisk >= O.CompactMinLines &&
      static_cast<double>(St->DeadOnDisk) >
          O.CompactDeadRatio * static_cast<double>(St->LinesOnDisk))
    St->compact(nullptr); // best-effort; an I/O failure leaves a valid store

  return St;
}

VerdictStore::~VerdictStore() { flush(nullptr); }

bool VerdictStore::lookup(const std::string &Key, VerifyResult &Out) {
  std::lock_guard<std::mutex> L(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++S.Misses;
    missesCounter().inc();
    return false;
  }
  ++S.Hits;
  hitsCounter().inc();
  Out = It->second;
  return true;
}

void VerdictStore::put(const std::string &Key, const VerifyResult &R) {
  if (!eligible(R))
    return;
  bool ShouldFlush = false;
  {
    std::lock_guard<std::mutex> L(M);
    if (!Index.emplace(Key, R).second)
      return; // resident: deterministic verdicts make re-puts no-ops
    // Degraded: keep the record (and keep counting it — store.writes must
    // move identically whether or not the disk cooperates, or the training
    // trajectory's metric plane would diverge under I/O faults), but never
    // queue it for a journal that stopped accepting appends.
    if (!Degraded)
      Pending.emplace_back(Key, R);
    ++S.Writes;
    ShouldFlush = !Degraded && Opt.FlushEveryN &&
                  Pending.size() >= Opt.FlushEveryN;
  }
  writesCounter().inc();
  if (ShouldFlush)
    flush(nullptr);
}

bool VerdictStore::flush(std::string *Err) {
  std::lock_guard<std::mutex> IO(IoM);
  return flushLocked(Err);
}

void VerdictStore::noteFlushFailureLocked(const std::string &Why) {
  ++S.FlushFailures;
  flushFailuresCounter().inc();
  ++ConsecFlushFailures;
  if (!Degraded && Opt.DegradeAfterFlushFailures &&
      ConsecFlushFailures >= Opt.DegradeAfterFlushFailures) {
    Degraded = true;
    S.DegradedReason = std::to_string(ConsecFlushFailures) +
                       " consecutive flush failures; last: " + Why;
    degradedGauge().set(1);
  }
}

bool VerdictStore::degraded() const {
  std::lock_guard<std::mutex> L(M);
  return Degraded;
}

bool VerdictStore::flushLocked(std::string *Err) {
  std::vector<std::pair<std::string, VerifyResult>> Batch;
  {
    std::lock_guard<std::mutex> L(M);
    if (Degraded)
      return true; // in-memory-only: nothing is owed to the journal
    Batch.swap(Pending);
  }
  if (Batch.empty())
    return true;

  std::string Payload;
  for (const auto &[Key, R] : Batch)
    Payload += encodeRecord(Key, R);

  std::string LocalErr;
  FileLock Lock;
  if (!Lock.lock(LockPath, FileLock::Mode::Exclusive, &LocalErr)) {
    if (Err)
      *Err = LocalErr;
    std::lock_guard<std::mutex> L(M);
    noteFlushFailureLocked("lock: " + LocalErr);
    return false;
  }
  // First writer stamps the header. The size check is race-free under the
  // exclusive lock; O_APPEND keeps even unlocked stray writers from
  // clobbering each other mid-file.
  std::string Full = Payload;
  if (fileSize(JournalPath) == 0)
    Full = std::string(headerLine()) + "\n" + Payload;
  if (!appendFileDurable(JournalPath, Full, &LocalErr)) {
    // Index intact; this batch will be recomputed next run. Consecutive
    // failures eventually trip the store to in-memory-only so a dead disk
    // costs durability, never forward progress.
    if (Err)
      *Err = LocalErr;
    std::lock_guard<std::mutex> L(M);
    noteFlushFailureLocked("append: " + LocalErr);
    return false;
  }

  std::lock_guard<std::mutex> L(M);
  LinesOnDisk += Batch.size();
  ConsecFlushFailures = 0;
  return true;
}

bool VerdictStore::compact(std::string *Err) {
  std::lock_guard<std::mutex> IO(IoM);
  {
    std::lock_guard<std::mutex> L(M);
    if (Degraded)
      return true; // in-memory-only: the journal is no longer ours to touch
  }
  if (!flushLocked(Err))
    return false;
  return compactLocked(Err);
}

bool VerdictStore::compactLocked(std::string *Err) {
  TraceSpan Span("store.compact");

  FileLock Lock;
  if (!Lock.lock(LockPath, FileLock::Mode::Exclusive, Err))
    return false;

  // Re-read under the exclusive lock: other processes may have appended
  // since we loaded, and compaction must never drop their records. Merge
  // the on-disk view with our in-memory index (they can only disagree by
  // presence, not by value — verdicts are deterministic).
  std::string Text;
  readWholeFile(JournalPath, Text);
  std::unordered_map<std::string, VerifyResult> Merged;
  LoadCounts C = parseJournal(Text, Merged, nullptr);
  {
    std::lock_guard<std::mutex> L(M);
    for (const auto &[Key, R] : Index)
      Merged.emplace(Key, R);
  }

  std::vector<const std::string *> Keys;
  Keys.reserve(Merged.size());
  for (const auto &[Key, R] : Merged)
    Keys.push_back(&Key);
  std::sort(Keys.begin(), Keys.end(),
            [](const std::string *A, const std::string *B) { return *A < *B; });

  std::string Payload = std::string(headerLine()) + "\n";
  for (const std::string *Key : Keys)
    Payload += encodeRecord(*Key, Merged.at(*Key));

  if (!writeFileAtomic(JournalPath, Payload, Err))
    return false;

  Span.arg(TraceArg::ofInt(
      "before", static_cast<int64_t>(C.Lines)));
  Span.arg(TraceArg::ofInt("after", static_cast<int64_t>(Keys.size())));

  std::lock_guard<std::mutex> L(M);
  for (auto &[Key, R] : Merged)
    Index.insert_or_assign(Key, std::move(R));
  LinesOnDisk = Keys.size();
  DeadOnDisk = 0;
  ++S.Compactions;
  compactionsCounter().inc();
  return true;
}

VerdictStore::Stats VerdictStore::stats() const {
  std::lock_guard<std::mutex> L(M);
  return S;
}

size_t VerdictStore::size() const {
  std::lock_guard<std::mutex> L(M);
  return Index.size();
}

} // namespace veriopt
