//===- Action.h - The policy model's action vocabulary -----------*- C++ -*-=//
//
// The simulated LLM emits IR by choosing a short sequence of actions:
// whole-output decisions (copy/stop), semantics-preserving rewrites
// (instcombine rule families, mem2reg, simplifycfg, dce), and corruption
// operators that model hallucination. The corruption operators are
// calibrated against the base-model failure taxonomy of Table I: syntax-
// class corruptions produce unparseable IR, semantic-class corruptions
// produce parseable but inequivalent IR.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_MODEL_ACTION_H
#define VERIOPT_MODEL_ACTION_H

namespace veriopt {

enum class Action : unsigned {
  // Whole-output decisions.
  Stop, ///< finish: emit the working function as-is
  Copy, ///< emit the input verbatim (the base model's favourite move)
  // Verified rewrite families (correct by construction).
  OptConstFold,
  OptAlgebraic,
  OptBitwise,
  OptShift,
  OptCompare,
  OptSelect,
  OptCast,
  OptMemory,
  OptScalar,
  OptDCE,
  OptMem2Reg,
  OptSimplifyCFG,
  // Hallucination: syntax-class (output fails to parse/verify).
  CorruptUndefName,
  CorruptBadType,
  CorruptTruncate,
  CorruptFormat, ///< break the <answer> envelope (format reward t_i = 0)
  // Hallucination: semantic-class (parses, not equivalent).
  CorruptConstant,
  CorruptSwapSub,
  CorruptFlipPred,
  CorruptDropStore,
  Count,
};

inline constexpr unsigned NumActions = static_cast<unsigned>(Action::Count);

const char *actionName(Action A);

inline bool isOptAction(Action A) {
  return A >= Action::OptConstFold && A <= Action::OptSimplifyCFG;
}
inline bool isSyntaxCorruption(Action A) {
  return A >= Action::CorruptUndefName && A <= Action::CorruptFormat;
}
inline bool isSemanticCorruption(Action A) {
  return A >= Action::CorruptConstant && A <= Action::CorruptDropStore;
}
inline bool isCorruption(Action A) {
  return isSyntaxCorruption(A) || isSemanticCorruption(A);
}

} // namespace veriopt

#endif // VERIOPT_MODEL_ACTION_H
