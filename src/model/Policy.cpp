//===- Policy.cpp - The simulated LLM: a learnable rewrite policy --------------//

#include "model/Policy.h"

#include "analysis/CFG.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "textgen/Bleu.h"

#include <cmath>

namespace veriopt {

//===----------------------------------------------------------------------===//
// Actions
//===----------------------------------------------------------------------===//

const char *actionName(Action A) {
  switch (A) {
  case Action::Stop:
    return "stop";
  case Action::Copy:
    return "copy";
  case Action::OptConstFold:
    return "opt-constfold";
  case Action::OptAlgebraic:
    return "opt-algebraic";
  case Action::OptBitwise:
    return "opt-bitwise";
  case Action::OptShift:
    return "opt-shift";
  case Action::OptCompare:
    return "opt-compare";
  case Action::OptSelect:
    return "opt-select";
  case Action::OptCast:
    return "opt-cast";
  case Action::OptMemory:
    return "opt-memory";
  case Action::OptScalar:
    return "opt-scalar";
  case Action::OptDCE:
    return "opt-dce";
  case Action::OptMem2Reg:
    return "opt-mem2reg";
  case Action::OptSimplifyCFG:
    return "opt-simplifycfg";
  case Action::CorruptUndefName:
    return "hallucinate-undef-name";
  case Action::CorruptBadType:
    return "hallucinate-bad-type";
  case Action::CorruptTruncate:
    return "hallucinate-truncate";
  case Action::CorruptFormat:
    return "hallucinate-format";
  case Action::CorruptConstant:
    return "hallucinate-constant";
  case Action::CorruptSwapSub:
    return "hallucinate-swap-operands";
  case Action::CorruptFlipPred:
    return "hallucinate-flip-predicate";
  case Action::CorruptDropStore:
    return "hallucinate-drop-store";
  case Action::Count:
    break;
  }
  return "<invalid>";
}

//===----------------------------------------------------------------------===//
// Features
//===----------------------------------------------------------------------===//

std::array<double, NumFeatures> extractFeatures(const Function &F) {
  std::array<double, NumFeatures> Phi{};
  Phi[0] = 1.0; // bias
  bool HasAlloca = false, HasCall = false, HasMulDiv = false,
       HasICmp = false, HasCast = false, HasMem = false;
  unsigned MaxWidth = 0;
  for (const auto &BB : F)
    for (const auto &I : *BB) {
      HasAlloca |= isa<AllocaInst>(I.get());
      HasCall |= isa<CallInst>(I.get());
      HasMulDiv |= I->getOpcode() == Opcode::Mul || I->isDivRem();
      HasICmp |= isa<ICmpInst>(I.get());
      HasCast |= I->isCast();
      HasMem |= isa<LoadInst>(I.get()) || isa<StoreInst>(I.get());
      if (I->getType()->isInteger())
        MaxWidth = std::max(MaxWidth, I->getType()->getBitWidth());
    }
  CFG G(F);
  Phi[1] = HasAlloca ? 1.0 : 0.0;
  Phi[2] = G.hasCycle() ? 1.0 : 0.0;
  Phi[3] = HasCall ? 1.0 : 0.0;
  Phi[4] = HasMulDiv ? 1.0 : 0.0;
  Phi[5] = HasICmp ? 1.0 : 0.0;
  Phi[6] = HasCast ? 1.0 : 0.0;
  Phi[7] = HasMem ? 1.0 : 0.0;
  Phi[8] = std::log(1.0 + F.instructionCount()) / 5.0;
  Phi[9] = MaxWidth > 32 ? 1.0 : 0.0;
  // Content-hash bits (FNV-1a over the printed text).
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : printFunction(F))
    H = (H ^ static_cast<uint64_t>(C)) * 0x100000001b3ULL;
  for (unsigned B = 0; B < 4; ++B)
    Phi[10 + B] = (H >> (11 + 13 * B)) & 1 ? 1.0 : 0.0;
  return Phi;
}

//===----------------------------------------------------------------------===//
// Diagnosis classes
//===----------------------------------------------------------------------===//

DiagKind diagClassKind(unsigned Class) {
  switch (Class) {
  case 0:
    return DiagKind::None;
  case 1:
    return DiagKind::ParseError;
  case 2:
    return DiagKind::StructureError;
  case 3:
    return DiagKind::ValueMismatch;
  case 4:
    return DiagKind::PoisonMismatch;
  case 5:
    return DiagKind::UBIntroduced;
  default:
    return DiagKind::CallMismatch;
  }
}

unsigned diagKindClass(DiagKind K) {
  switch (K) {
  case DiagKind::None:
    return 0;
  case DiagKind::ParseError:
    return 1;
  case DiagKind::StructureError:
    return 2;
  case DiagKind::ValueMismatch:
    return 3;
  case DiagKind::PoisonMismatch:
    return 4;
  case DiagKind::UBIntroduced:
    return 5;
  case DiagKind::CallMismatch:
    return 6;
  default:
    return 3; // treat anything else as a value problem
  }
}

std::string diagClassMessage(unsigned Class, const std::string &FnName) {
  std::string Head = "----------------------------------------\n@" + FnName +
                     "\n";
  switch (Class) {
  case 0:
    return Head + "Transformation seems to be correct!\n";
  case 1:
    return Head + "ERROR: Could not parse transformed IR\n";
  case 2:
    return Head + "ERROR: Transformed IR is ill-formed\n";
  case 3:
    return Head + "Transformation doesn't verify!\nERROR: Value mismatch\n";
  case 4:
    return Head + "Transformation doesn't verify!\nERROR: Target returns "
                  "poison where source is well-defined\n";
  case 5:
    return Head + "Transformation doesn't verify!\nERROR: Target is more "
                  "poisonous/undefined than source\n";
  default:
    return Head + "Transformation doesn't verify!\nERROR: Mismatch in "
                  "external calls\n";
  }
}

//===----------------------------------------------------------------------===//
// Presets
//===----------------------------------------------------------------------===//

namespace {

unsigned optMask(std::initializer_list<Action> As) {
  unsigned M = 0;
  for (Action A : As)
    M |= 1u << static_cast<unsigned>(A);
  return M;
}

unsigned allOptMask() {
  unsigned M = 0;
  for (unsigned A = 0; A < NumActions; ++A)
    if (isOptAction(static_cast<Action>(A)))
      M |= 1u << A;
  return M;
}

} // namespace

ModelConfig presetQwen15B() {
  ModelConfig C;
  C.Name = "qwen-1.5b";
  C.ParamsB = 1.5;
  C.CopyBias = 0.9;
  C.OptBias = -0.9;
  C.SyntaxCorruptBias = 0.55;
  C.SemanticCorruptBias = -0.35;
  C.StopBias = 0.6;
  C.KnowledgeMask = optMask({Action::OptConstFold, Action::OptAlgebraic,
                             Action::OptBitwise, Action::OptDCE});
  C.CoreReliabilityPct = 85;
  C.EmergentReliabilityPct = 0;
  C.InitSeed = 15;
  return C;
}

ModelConfig presetQwen3B() {
  ModelConfig C;
  C.Name = "qwen-3b";
  C.ParamsB = 3.0;
  // Calibrated to reproduce the Table-I taxonomy of the raw base model
  // under greedy decoding: ~73% verified (mostly trivial copies), ~21%
  // syntax errors, ~5% semantic errors, ~13% different-and-correct.
  C.CopyBias = 0.8;
  C.OptBias = -0.5;
  C.SyntaxCorruptBias = 0.2;
  C.SemanticCorruptBias = -0.55;
  C.StopBias = 0.75;
  C.KnowledgeMask = optMask(
      {Action::OptConstFold, Action::OptAlgebraic, Action::OptBitwise,
       Action::OptShift, Action::OptCompare, Action::OptSelect,
       Action::OptCast, Action::OptMemory, Action::OptScalar, Action::OptDCE,
       Action::OptMem2Reg, Action::OptSimplifyCFG});
  C.InitSeed = 3;
  return C;
}

ModelConfig presetQwen7B() {
  ModelConfig C = presetQwen3B();
  C.Name = "qwen-7b";
  C.ParamsB = 7.0;
  C.CopyBias = 0.7;
  C.OptBias = -0.25;
  C.SyntaxCorruptBias = -0.15;
  C.SemanticCorruptBias = -0.7;
  C.StopBias = 0.8;
  C.CoreReliabilityPct = 98;
  C.EmergentReliabilityPct = 40;
  C.InitSeed = 7;
  return C;
}

ModelConfig presetLlama8B() {
  ModelConfig C = presetQwen3B();
  C.Name = "llama-8b";
  C.ParamsB = 8.0;
  C.CopyBias = 0.8;
  C.OptBias = -0.35;
  C.SyntaxCorruptBias = -0.05;
  C.SemanticCorruptBias = -0.8;
  C.StopBias = 0.75;
  C.InitSeed = 8;
  return C;
}

ModelConfig presetLLMCompiler7B() {
  ModelConfig C = presetQwen3B();
  C.Name = "llm-compiler-7b";
  C.ParamsB = 7.0;
  // Pretrained on compiler text: far fewer syntax errors, still mostly
  // conservative, no task-specific fine-tuning.
  C.CopyBias = 0.65;
  C.OptBias = -0.05;
  C.SyntaxCorruptBias = -1.1;
  C.SemanticCorruptBias = -0.9;
  C.StopBias = 0.8;
  C.InitSeed = 77;
  return C;
}

ModelConfig presetQwen32B() {
  ModelConfig C = presetQwen3B();
  C.Name = "qwen-32b";
  C.ParamsB = 32.0;
  C.CopyBias = 0.4;
  C.OptBias = 0.25;
  C.SyntaxCorruptBias = -1.4;
  C.SemanticCorruptBias = -1.3;
  C.StopBias = 0.85;
  C.KnowledgeMask = allOptMask();
  C.CoreReliabilityPct = 99;
  C.EmergentReliabilityPct = 55;
  C.InitSeed = 32;
  return C;
}

//===----------------------------------------------------------------------===//
// Model
//===----------------------------------------------------------------------===//

RewritePolicyModel::RewritePolicyModel(const ModelConfig &Cfg) : Cfg(Cfg) {
  Theta.assign(NumActions * NumFeatures + NumDiagClasses * (NumCorrupt + 2) +
                   1,
               0.0);
  RNG R(Cfg.InitSeed * 0x9E3779B97F4A7C15ULL + 11);
  // The feature-conditioned action weights get substantial "pretraining"
  // noise so greedy decoding varies across prompts (different functions
  // elicit different behaviours, as observed with real base models); the
  // other heads start near zero.
  for (double &W : Theta)
    W = 0.05 * R.gaussian();
  for (unsigned A = 0; A < NumActions; ++A)
    for (unsigned F = 1; F < NumFeatures; ++F)
      Theta[actionW(A, F)] = 0.8 * R.gaussian();
  // Pretraining prior: bias column of the action head.
  for (unsigned A = 0; A < NumActions; ++A) {
    Action Act = static_cast<Action>(A);
    double Bias = 0;
    if (Act == Action::Copy)
      Bias = Cfg.CopyBias;
    else if (Act == Action::Stop)
      Bias = Cfg.StopBias;
    else if (isOptAction(Act))
      Bias = Cfg.OptBias;
    else if (isSyntaxCorruption(Act))
      Bias = Cfg.SyntaxCorruptBias;
    else if (isSemanticCorruption(Act))
      Bias = Cfg.SemanticCorruptBias;
    Theta[actionW(A, 0)] += Bias;
  }
  Theta[fixW()] = Cfg.FixSkillInit;
}

bool RewritePolicyModel::familyFires(const Function &Src, Action A) const {
  assert(isOptAction(A) && "capacity gate applies to rewrite families only");
  bool Emergent = A == Action::OptMem2Reg || A == Action::OptSimplifyCFG;
  unsigned Pct = Emergent ? Cfg.EmergentReliabilityPct
                          : Cfg.CoreReliabilityPct;
  // FNV-1a over (function text, action, model identity).
  uint64_t H = 0xcbf29ce484222325ULL ^ (Cfg.InitSeed * 0x9E3779B9ULL);
  for (char C : printFunction(Src))
    H = (H ^ static_cast<uint64_t>(C)) * 0x100000001b3ULL;
  H = (H ^ (static_cast<uint64_t>(A) + 0x51ED2701)) * 0x100000001b3ULL;
  H ^= H >> 33;
  return H % 100 < Pct;
}

bool RewritePolicyModel::actionAvailable(Action A) const {
  if (!isOptAction(A))
    return true;
  return (Cfg.KnowledgeMask >> static_cast<unsigned>(A)) & 1;
}

std::vector<double> RewritePolicyModel::actionLogits(
    const std::array<double, NumFeatures> &Phi) const {
  std::vector<double> Logits(NumActions, -1e9);
  for (unsigned A = 0; A < NumActions; ++A) {
    if (!actionAvailable(static_cast<Action>(A)))
      continue;
    double Z = 0;
    for (unsigned F = 0; F < NumFeatures; ++F)
      Z += Theta[actionW(A, F)] * Phi[F];
    Logits[A] = Z;
  }
  return Logits;
}

// Rewrites and corruptions are idempotent within one completion, so the
// decoding distribution is state-dependent: an action already taken is
// masked out. Stop and Copy stay available (the sequence must terminate).
// Teacher-forced log-probs and gradients replay the same masking.
static void maskUsed(std::vector<double> &Logits, uint32_t UsedMask) {
  for (unsigned A = 0; A < Logits.size(); ++A) {
    Action Act = static_cast<Action>(A);
    if (Act != Action::Stop && Act != Action::Copy && ((UsedMask >> A) & 1))
      Logits[A] = -1e9;
  }
}

namespace {

std::vector<double> softmax(const std::vector<double> &Logits, double T) {
  double Max = -1e18;
  for (double L : Logits)
    Max = std::max(Max, L);
  std::vector<double> P(Logits.size());
  double Sum = 0;
  for (size_t I = 0; I < Logits.size(); ++I) {
    P[I] = std::exp((Logits[I] - Max) / T);
    Sum += P[I];
  }
  for (double &V : P)
    V /= Sum;
  return P;
}

unsigned argmax(const std::vector<double> &Xs) {
  unsigned Best = 0;
  for (unsigned I = 1; I < Xs.size(); ++I)
    if (Xs[I] > Xs[Best])
      Best = I;
  return Best;
}

//===--- Semantic corruption operators (mutate IR in place) ---------------===//

bool perturbConstant(Function &F) {
  for (auto &BB : F)
    for (auto &I : *BB) {
      if (isa<PhiInst>(I.get()))
        continue; // keep CFG structure sane
      for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx) {
        auto *C = dyn_cast<ConstantInt>(I->getOperand(OpIdx));
        if (!C)
          continue;
        APInt64 V = C->getValue().add(APInt64::one(C->getValue().width()));
        I->setOperand(OpIdx, F.getConstant(C->getType(), V));
        return true;
      }
    }
  return false;
}

bool swapNonCommutative(Function &F) {
  for (auto &BB : F)
    for (auto &I : *BB) {
      auto *B = dyn_cast<BinaryInst>(I.get());
      if (!B || B->isCommutative())
        continue;
      Value *L = B->getLHS(), *R = B->getRHS();
      if (L == R)
        continue;
      B->setOperand(0, R);
      B->setOperand(1, L);
      return true;
    }
  return false;
}

bool flipPredicate(Function &F) {
  for (auto &BB : F)
    for (auto &I : *BB)
      if (auto *C = dyn_cast<ICmpInst>(I.get())) {
        C->setPredicate(invertedPred(C->getPredicate()));
        return true;
      }
  return false;
}

bool dropStore(Function &F) {
  for (auto &BB : F)
    for (auto &I : *BB)
      if (isa<StoreInst>(I.get())) {
        BB->erase(I.get());
        return true;
      }
  return false;
}

//===--- Syntax corruption operators (mangle text) ------------------------===//

std::string corruptUndefName(std::string Text) {
  // Replace the final local-value use with an undefined name.
  size_t Pos = Text.rfind('%');
  if (Pos == std::string::npos)
    return Text;
  size_t End = Pos + 1;
  while (End < Text.size() &&
         (std::isalnum(static_cast<unsigned char>(Text[End])) ||
          Text[End] == '_' || Text[End] == '.'))
    ++End;
  return Text.substr(0, Pos) + "%hallucinated" + Text.substr(End);
}

std::string corruptBadType(std::string Text) {
  size_t Pos = Text.rfind(" i32 ");
  if (Pos == std::string::npos)
    Pos = Text.rfind(" i64 ");
  if (Pos == std::string::npos)
    return Text + "\ni37 garbage";
  return Text.substr(0, Pos) + " i37 " + Text.substr(Pos + 5);
}

std::string corruptTruncate(std::string Text) {
  return Text.substr(0, Text.size() * 2 / 3);
}

/// Apply a *set* of optimization actions as one fixpoint pipeline.
void applyOptActionSet(const std::vector<Action> &Actions, Function &F) {
  unsigned CatMask = 0;
  bool Mem2Reg = false, SCFG = false, DCE = false;
  for (Action A : Actions) {
    switch (A) {
    case Action::OptConstFold:
      CatMask |= ruleCatBit(RuleCat::ConstFold);
      break;
    case Action::OptAlgebraic:
      CatMask |= ruleCatBit(RuleCat::Algebraic);
      break;
    case Action::OptBitwise:
      CatMask |= ruleCatBit(RuleCat::Bitwise);
      break;
    case Action::OptShift:
      CatMask |= ruleCatBit(RuleCat::Shift);
      break;
    case Action::OptCompare:
      CatMask |= ruleCatBit(RuleCat::Compare);
      break;
    case Action::OptSelect:
      CatMask |= ruleCatBit(RuleCat::Select);
      break;
    case Action::OptCast:
      CatMask |= ruleCatBit(RuleCat::Cast);
      break;
    case Action::OptMemory:
      CatMask |= ruleCatBit(RuleCat::Memory);
      break;
    case Action::OptScalar:
      CatMask |= ruleCatBit(RuleCat::Scalar);
      break;
    case Action::OptDCE:
      DCE = true;
      break;
    case Action::OptMem2Reg:
      Mem2Reg = true;
      break;
    case Action::OptSimplifyCFG:
      SCFG = true;
      break;
    default:
      assert(false && "not an optimization action");
    }
  }
  PassManager PM;
  if (Mem2Reg)
    PM.add(createMem2RegPass());
  if (CatMask)
    PM.add(createInstCombinePass(CatMask));
  if (SCFG)
    PM.add(createSimplifyCFGPass());
  if (DCE)
    PM.add(createDCEPass());
  PM.runToFixpoint(F);
}

} // namespace

Completion RewritePolicyModel::generate(const Function &Src, PromptMode Mode,
                                        RNG &R, bool Greedy,
                                        double Temperature) const {
  Completion Out;
  auto Phi = extractFeatures(Src);
  std::vector<double> BaseLogits = actionLogits(Phi);

  std::vector<Action> SyntaxCorrupts, SemanticCorrupts;
  std::vector<Action> OptActions;
  bool Copied = false;
  uint32_t Used = 0;

  for (unsigned Step = 0; Step < MaxSteps; ++Step) {
    std::vector<double> Logits = BaseLogits;
    maskUsed(Logits, Used);
    std::vector<double> Probs = softmax(Logits, Temperature);
    unsigned AIdx =
        Greedy ? argmax(Probs) : static_cast<unsigned>(R.weightedPick(Probs));
    Action A = static_cast<Action>(AIdx);
    Out.Actions.push_back(A);
    Out.LogProb += std::log(std::max(Probs[AIdx], 1e-12));
    Used |= 1u << AIdx;
    if (A == Action::Stop)
      break;
    if (A == Action::Copy) {
      Copied = true;
      break;
    }
    if (isOptAction(A))
      OptActions.push_back(A);
    else if (isSemanticCorruption(A))
      SemanticCorrupts.push_back(A);
    else
      SyntaxCorrupts.push_back(A);
  }

  // The selected rewrite families act as a *set*: the answer is one
  // fixpoint run of the corresponding pipeline (mem2reg first, masked
  // instcombine, simplifycfg, dce), so action order cannot leave cascading
  // opportunities on the table. Families are filtered through the
  // capacity gate first: selecting a family does not guarantee the model
  // can actually realize it on this prompt.
  std::vector<Action> Firing;
  for (Action A : OptActions)
    if (familyFires(Src, A))
      Firing.push_back(A);
  auto Clean = Src.clone(); // corruption-free transformed function
  if (!Copied && !Firing.empty())
    applyOptActionSet(Firing, *Clean);
  auto Working = Clean->clone(); // + semantic corruption
  for (Action A : SemanticCorrupts) {
    switch (A) {
    case Action::CorruptConstant:
      perturbConstant(*Working);
      break;
    case Action::CorruptSwapSub:
      swapNonCommutative(*Working);
      break;
    case Action::CorruptFlipPred:
      flipPredicate(*Working);
      break;
    default:
      dropStore(*Working);
      break;
    }
  }

  // Render the attempt.
  std::string AttemptIR;
  bool AttemptFormatOk = true;
  if (Copied) {
    AttemptIR = printFunction(Src);
  } else {
    AttemptIR = printFunction(*Working);
    for (Action A : SyntaxCorrupts) {
      switch (A) {
      case Action::CorruptUndefName:
        AttemptIR = corruptUndefName(std::move(AttemptIR));
        break;
      case Action::CorruptBadType:
        AttemptIR = corruptBadType(std::move(AttemptIR));
        break;
      case Action::CorruptTruncate:
        AttemptIR = corruptTruncate(std::move(AttemptIR));
        break;
      case Action::CorruptFormat:
        AttemptFormatOk = false;
        break;
      default:
        break;
      }
    }
  }

  if (Mode == PromptMode::Generic) {
    Out.AnswerIR = AttemptIR;
    Out.FormatOk = AttemptFormatOk;
    applyResidualHallucination(Src, Out);
    Out.Text = renderCompletion(Mode, Out.FormatOk, "", "", Out.AnswerIR);
    Out.TokenCount = static_cast<unsigned>(Out.Actions.size() +
                                           tokenizeIR(Out.AnswerIR).size());
    return Out;
  }

  // Augmented mode (Fig. 2): diagnose the attempt, then answer.
  Out.ThinkAttemptIR = AttemptIR;
  std::vector<double> DProbs = softmax(diagLogits(Out.Actions), Temperature);
  unsigned DClass = Greedy ? argmax(DProbs)
                           : static_cast<unsigned>(R.weightedPick(DProbs));
  Out.PredictedDiagClass = DClass;
  Out.LogProb += std::log(std::max(DProbs[DClass], 1e-12));
  Out.PredictedMessage = diagClassMessage(DClass, Src.getName());

  bool NeedsFix = DClass != 0;
  bool Fixed = false;
  if (NeedsFix) {
    double PFix = 1.0 / (1.0 + std::exp(-Theta[fixW()]));
    Fixed = Greedy ? PFix > 0.5 : R.chance(PFix);
    Out.LogProb += std::log(std::max(Fixed ? PFix : 1.0 - PFix, 1e-12));
  }
  Out.SelfCorrected = Fixed;
  if (Fixed) {
    // The corrected answer: the clean (uncorrupted) transformed function.
    Out.AnswerIR = Copied ? printFunction(Src) : printFunction(*Clean);
    Out.FormatOk = true;
  } else {
    Out.AnswerIR = AttemptIR;
    Out.FormatOk = AttemptFormatOk;
  }
  applyResidualHallucination(Src, Out);
  Out.Text = renderCompletion(Mode, Out.FormatOk, Out.ThinkAttemptIR,
                              Out.PredictedMessage, Out.AnswerIR);
  Out.TokenCount = static_cast<unsigned>(
      Out.Actions.size() + tokenizeIR(Out.ThinkAttemptIR).size() +
      tokenizeIR(Out.AnswerIR).size());
  return Out;
}

void RewritePolicyModel::applyResidualHallucination(const Function &Src,
                                                    Completion &Out) const {
  uint64_t H = 0xcbf29ce484222325ULL ^ (Cfg.InitSeed * 0x9E3779B9ULL + 7);
  for (char C : printFunction(Src))
    H = (H ^ static_cast<uint64_t>(C)) * 0x100000001b3ULL;
  H ^= H >> 29;
  unsigned Roll = H % 100;
  if (Roll < Cfg.ResidualSyntaxPct) {
    Out.AnswerIR = corruptUndefName(std::move(Out.AnswerIR));
  } else if (Roll < Cfg.ResidualSyntaxPct + Cfg.ResidualSemanticPct) {
    // Re-parse and perturb a constant; fall back to a text-level typo when
    // the answer does not parse (it is already broken anyway).
    auto M = parseModule(Out.AnswerIR);
    if (M && M.value()->getMainFunction()) {
      Function *F = M.value()->getMainFunction();
      if (perturbConstant(*F))
        Out.AnswerIR = printFunction(*F);
    }
  }
}

double RewritePolicyModel::sequenceLogProb(
    const Function &Src, const std::vector<Action> &Seq) const {
  auto Phi = extractFeatures(Src);
  std::vector<double> BaseLogits = actionLogits(Phi);
  uint32_t Used = 0;
  double LP = 0;
  for (Action A : Seq) {
    std::vector<double> Logits = BaseLogits;
    maskUsed(Logits, Used);
    std::vector<double> P = softmax(Logits, 1.0);
    LP += std::log(std::max(P[static_cast<unsigned>(A)], 1e-12));
    Used |= 1u << static_cast<unsigned>(A);
  }
  return LP;
}

void RewritePolicyModel::accumulateSequenceGrad(
    const Function &Src, const std::vector<Action> &Seq, double Scale,
    std::vector<double> &Grad) const {
  assert(Grad.size() == Theta.size() && "gradient buffer layout mismatch");
  auto Phi = extractFeatures(Src);
  std::vector<double> BaseLogits = actionLogits(Phi);
  uint32_t Used = 0;
  // d log softmax_a / d logit_b = [a==b] - P_b, per step, under the same
  // used-action masking the decoder applies.
  for (Action A : Seq) {
    std::vector<double> Logits = BaseLogits;
    maskUsed(Logits, Used);
    std::vector<double> P = softmax(Logits, 1.0);
    unsigned AIdx = static_cast<unsigned>(A);
    for (unsigned B = 0; B < NumActions; ++B) {
      if (Logits[B] <= -1e8)
        continue; // masked or unavailable: frozen
      double Coef = ((B == AIdx) ? 1.0 : 0.0) - P[B];
      for (unsigned F = 0; F < NumFeatures; ++F)
        Grad[actionW(B, F)] += Scale * Coef * Phi[F];
    }
    Used |= 1u << AIdx;
  }
}

std::array<double, 10>
RewritePolicyModel::diagFeatures(const std::vector<Action> &Attempt) const {
  std::array<double, 10> X{};
  X[0] = 1.0;
  bool Any = false;
  for (Action A : Attempt) {
    if (!isCorruption(A))
      continue;
    unsigned Slot = static_cast<unsigned>(A) -
                    static_cast<unsigned>(Action::CorruptUndefName);
    X[1 + Slot] = 1.0;
    Any = true;
  }
  X[9] = Any ? 0.0 : 1.0; // "clean attempt" indicator
  return X;
}

std::vector<double>
RewritePolicyModel::diagLogits(const std::vector<Action> &Attempt) const {
  auto X = diagFeatures(Attempt);
  std::vector<double> Logits(NumDiagClasses, 0.0);
  for (unsigned C = 0; C < NumDiagClasses; ++C)
    for (unsigned F = 0; F < NumCorrupt + 2; ++F)
      Logits[C] += Theta[diagW(C, F)] * X[F];
  return Logits;
}

double RewritePolicyModel::diagLogProb(const std::vector<Action> &Attempt,
                                       unsigned Class) const {
  std::vector<double> P = softmax(diagLogits(Attempt), 1.0);
  return std::log(std::max(P[Class], 1e-12));
}

void RewritePolicyModel::accumulateDiagGrad(
    const std::vector<Action> &Attempt, unsigned Class, double Scale,
    std::vector<double> &Grad) const {
  auto X = diagFeatures(Attempt);
  std::vector<double> P = softmax(diagLogits(Attempt), 1.0);
  for (unsigned C = 0; C < NumDiagClasses; ++C) {
    double Coef = ((C == Class) ? 1.0 : 0.0) - P[C];
    for (unsigned F = 0; F < NumCorrupt + 2; ++F)
      Grad[diagW(C, F)] += Scale * Coef * X[F];
  }
}

double RewritePolicyModel::fixLogProb(bool Fix) const {
  double PFix = 1.0 / (1.0 + std::exp(-Theta[fixW()]));
  return std::log(std::max(Fix ? PFix : 1.0 - PFix, 1e-12));
}

void RewritePolicyModel::accumulateFixGrad(bool Fix, double Scale,
                                           std::vector<double> &Grad) const {
  double PFix = 1.0 / (1.0 + std::exp(-Theta[fixW()]));
  Grad[fixW()] += Scale * ((Fix ? 1.0 : 0.0) - PFix);
}

std::vector<double>
RewritePolicyModel::actionProbs(const Function &Src) const {
  return softmax(actionLogits(extractFeatures(Src)), 1.0);
}

//===----------------------------------------------------------------------===//
// Oracle sequences
//===----------------------------------------------------------------------===//

std::vector<Action> oracleActions(const PassTrace &Trace,
                                  const RewritePolicyModel &Model) {
  auto catOf = [](const std::string &Rule) -> Action {
    if (Rule == "const-fold" || Rule == "cast-fold" || Rule == "icmp-fold")
      return Action::OptConstFold;
    if (Rule.rfind("icmp", 0) == 0 || Rule == "not-icmp-invert")
      return Action::OptCompare;
    if (Rule.rfind("select", 0) == 0)
      return Action::OptSelect;
    if (Rule.rfind("ext", 0) == 0 || Rule.rfind("trunc", 0) == 0)
      return Action::OptCast;
    if (Rule == "store-to-load-forward" || Rule == "dead-store-elim")
      return Action::OptMemory;
    if (Rule == "dce")
      return Action::OptDCE;
    if (Rule.rfind("gep", 0) == 0 || Rule.rfind("phi", 0) == 0)
      return Action::OptScalar;
    if (Rule.rfind("and", 0) == 0 || Rule.rfind("or", 0) == 0 ||
        Rule.rfind("xor", 0) == 0)
      return Action::OptBitwise;
    if (Rule.rfind("shift", 0) == 0 || Rule.rfind("shl", 0) == 0 ||
        Rule.rfind("lshr", 0) == 0)
      return Action::OptShift;
    if (Rule == "mem2reg-promote")
      return Action::OptMem2Reg;
    if (Rule.rfind("br-", 0) == 0 || Rule == "merge-blocks" ||
        Rule == "forward-empty-block" || Rule == "diamond-to-select" ||
        Rule == "remove-unreachable")
      return Action::OptSimplifyCFG;
    return Action::OptAlgebraic;
  };

  std::vector<Action> Out;
  for (const std::string &Rule : Trace.Applied) {
    Action A = catOf(Rule);
    if (!Model.actionAvailable(A))
      continue; // beyond this model's capacity
    bool Seen = false;
    for (Action Prev : Out)
      Seen |= Prev == A;
    if (!Seen)
      Out.push_back(A);
    if (Out.size() >= RewritePolicyModel::MaxSteps - 1)
      break;
  }
  Out.push_back(Action::Stop);
  return Out;
}

} // namespace veriopt
