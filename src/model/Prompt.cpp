//===- Prompt.cpp - Prompt templates -------------------------------------------//

#include "model/Prompt.h"

namespace veriopt {

std::string renderPrompt(const std::string &InputIR, PromptMode Mode) {
  std::string Out;
  Out += "You are a compiler optimization expert. Apply peephole "
         "optimizations (as LLVM's -instcombine would) to the following "
         "LLVM IR function while preserving its exact semantics.\n";
  if (Mode == PromptMode::Augmented)
    Out += "Reason inside a <think> tag: make a first attempt, state an "
           "Alive2-style verdict for it, then give the final IR inside an "
           "<answer> tag.\n";
  else
    Out += "Reply with the optimized IR inside an <answer> tag.\n";
  Out += "\nInput IR:\n" + InputIR + "\n";
  return Out;
}

std::string renderCompletion(PromptMode Mode, bool FormatOk,
                             const std::string &ThinkAttempt,
                             const std::string &ThinkDiagnosis,
                             const std::string &Answer) {
  std::string Out;
  if (Mode == PromptMode::Augmented) {
    Out += "<think>\n";
    Out += ThinkAttempt;
    if (!ThinkAttempt.empty() && ThinkAttempt.back() != '\n')
      Out += "\n";
    Out += ThinkDiagnosis;
    if (!ThinkDiagnosis.empty() && ThinkDiagnosis.back() != '\n')
      Out += "\n";
    Out += "</think>\n";
  }
  if (FormatOk) {
    Out += "<answer>\n" + Answer;
    if (!Answer.empty() && Answer.back() != '\n')
      Out += "\n";
    Out += "</answer>\n";
  } else {
    // Hallucinated envelope: tag misspelled and left unclosed, the failure
    // mode observed with the raw base model (§V-A).
    Out += "<answr>\n" + Answer + "\n";
  }
  return Out;
}

std::string extractAnswer(const std::string &CompletionText, bool &Ok) {
  const std::string Open = "<answer>";
  const std::string Close = "</answer>";
  size_t Start = CompletionText.find(Open);
  size_t End = CompletionText.rfind(Close);
  if (Start == std::string::npos || End == std::string::npos ||
      End < Start + Open.size()) {
    Ok = false;
    return "";
  }
  Ok = true;
  size_t Begin = Start + Open.size();
  std::string Payload = CompletionText.substr(Begin, End - Begin);
  // Trim leading/trailing newlines.
  while (!Payload.empty() && Payload.front() == '\n')
    Payload.erase(Payload.begin());
  while (!Payload.empty() && Payload.back() == '\n')
    Payload.pop_back();
  return Payload;
}

} // namespace veriopt
