//===- Prompt.h - Prompt templates (paper Figs. 1 and 2) ---------*- C++ -*-=//
//
// Renders the two prompt formats the paper trains with:
//  - Generic (Fig. 1): instruction + input IR, expecting <answer>...</answer>.
//  - Augmented (Fig. 2): adds a <think> section holding a first attempt and,
//    when that attempt is wrong, an Alive2-style diagnostic, followed by the
//    corrected <answer>.
//
// These strings are what the reward function's format check (t_i) inspects
// and what the token-level loss normalization counts.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_MODEL_PROMPT_H
#define VERIOPT_MODEL_PROMPT_H

#include <string>

namespace veriopt {

enum class PromptMode {
  Generic,   ///< Fig. 1: direct answer
  Augmented, ///< Fig. 2: <think> attempt + diagnosis, then <answer>
};

/// The instruction text + input IR (Fig. 1's upper box).
std::string renderPrompt(const std::string &InputIR, PromptMode Mode);

/// Assemble a completion's text. For Generic mode, Think* fields are
/// ignored. When \p FormatOk is false the <answer> envelope is deliberately
/// broken (the CorruptFormat failure mode).
std::string renderCompletion(PromptMode Mode, bool FormatOk,
                             const std::string &ThinkAttempt,
                             const std::string &ThinkDiagnosis,
                             const std::string &Answer);

/// Extract the <answer>...</answer> payload; empty optional-like behaviour
/// via the \p Ok flag (false when the envelope is malformed).
std::string extractAnswer(const std::string &CompletionText, bool &Ok);

} // namespace veriopt

#endif // VERIOPT_MODEL_PROMPT_H
