//===- Policy.h - The simulated LLM: a learnable rewrite policy ---*- C++ -*-=//
//
// GPU-scale transformer fine-tuning is unavailable in this reproduction
// (repro band 2), so the LLM is modelled as a stochastic *rewrite policy*
// with the same observable behaviour the paper studies:
//
//  - it emits IR text for a prompt, by sampling a short sequence of actions
//    (Action.h): copy the input, apply verified rewrite families, or
//    hallucinate (corruption operators producing the Table-I failure modes);
//  - its parameters are a featurized softmax over actions plus a diagnosis
//    head and a self-correction gate, all trained by the same SFT/GRPO
//    updates the paper applies to Qwen-3B;
//  - decoding is greedy for evaluation (deterministic) and temperature-1
//    sampling for GRPO rollouts.
//
// Capability presets (parameter count, prior error rates, which rewrite
// families the model "knows") reproduce the baseline models of Fig. 5.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_MODEL_POLICY_H
#define VERIOPT_MODEL_POLICY_H

#include "ir/Function.h"
#include "model/Action.h"
#include "model/Prompt.h"
#include "opt/Pass.h"
#include "support/RNG.h"
#include "verify/AliveLite.h"

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace veriopt {

//===--- Features -------------------------------------------------------===//

inline constexpr unsigned NumFeatures = 14;

/// Features of the prompt function conditioning the policy:
/// [bias, hasAlloca, hasCycle, hasCall, hasMulDiv, hasICmp, hasCast,
/// hasMemOp, log-size, widthOver32, 4 content-hash bits]. The hash bits
/// stand in for a transformer's fine-grained content sensitivity: they make
/// greedy decoding vary across prompts the way a real base model's
/// behaviour does, while remaining deterministic per input.
std::array<double, NumFeatures> extractFeatures(const Function &F);

//===--- Diagnosis head ---------------------------------------------------===//

/// Label space of the self-diagnosis (subset of DiagKind the model can
/// name).
inline constexpr unsigned NumDiagClasses = 7;
DiagKind diagClassKind(unsigned Class);
unsigned diagKindClass(DiagKind K);
/// The Alive2-style message template the model emits for a predicted class.
std::string diagClassMessage(unsigned Class, const std::string &FnName);

//===--- Configuration ----------------------------------------------------===//

struct ModelConfig {
  std::string Name = "qwen-3b";
  double ParamsB = 3.0; ///< parameter count in billions (reporting only)
  // Initial bias-logits (the "pretraining prior").
  double CopyBias = 1.0;
  double OptBias = -1.0;
  double SyntaxCorruptBias = 0.0;
  double SemanticCorruptBias = -1.0;
  double StopBias = 0.0;
  /// Which rewrite families exist at all for this model (bitmask over the
  /// Opt* actions, bit = action index). Families outside the mask can never
  /// be selected nor learned: the capacity ceiling of a small model.
  unsigned KnowledgeMask = ~0u;
  /// Per-(prompt, family) reliability: even a selected rewrite family only
  /// fires when a deterministic content hash falls below this percentage.
  /// This is the capacity ceiling of a small model — it sometimes fails to
  /// spot a pattern the reference pass implements (the paper's Figs. 11/12
  /// misses), which is what produces losses against -instcombine.
  unsigned CoreReliabilityPct = 97;
  /// Same gate for the emergent families (mem2reg / simplifycfg), which are
  /// harder still: the trained model only beats the reference pass on the
  /// prompts where these fire (the paper's 20.1% win rate).
  unsigned EmergentReliabilityPct = 25;
  /// Irreducible hallucination floor: on a deterministic subset of prompts
  /// the emitted answer is corrupted regardless of policy. No amount of
  /// RL removes it — this is why the paper's trained models plateau near
  /// 90% (Table II: ~3% syntax + ~5% semantic residual errors).
  unsigned ResidualSyntaxPct = 3;
  unsigned ResidualSemanticPct = 5;
  double FixSkillInit = -2.0; ///< pre-sigmoid self-correction skill
  uint64_t InitSeed = 1;      ///< weight-noise seed
};

/// Fig. 5 baseline presets (parameter-size order).
ModelConfig presetQwen15B();
ModelConfig presetQwen3B(); ///< the paper's base model
ModelConfig presetQwen7B();
ModelConfig presetLlama8B();
ModelConfig presetLLMCompiler7B();
ModelConfig presetQwen32B();

//===--- Completions -------------------------------------------------------===//

/// One decoded output with everything the trainers need.
struct Completion {
  std::vector<Action> Actions; ///< sampled action sequence (incl. Stop)
  bool FormatOk = true;
  std::string AnswerIR;   ///< final answer payload
  std::string Text;       ///< full completion text (envelope included)
  unsigned TokenCount = 0;
  double LogProb = 0;     ///< actions + diagnosis + fix gate

  // Augmented-mode fields (Fig. 2).
  std::string ThinkAttemptIR;
  unsigned PredictedDiagClass = 0; ///< 0 == "verifies"
  std::string PredictedMessage;
  bool SelfCorrected = false;
};

//===--- The policy --------------------------------------------------------===//

class RewritePolicyModel {
public:
  explicit RewritePolicyModel(const ModelConfig &Cfg);

  const ModelConfig &config() const { return Cfg; }
  unsigned numParams() const { return static_cast<unsigned>(Theta.size()); }
  std::vector<double> &params() { return Theta; }
  const std::vector<double> &params() const { return Theta; }

  /// Decode a completion for \p Src. Greedy when \p Greedy (the evaluation
  /// setting); otherwise temperature-\p Temperature sampling from \p R.
  Completion generate(const Function &Src, PromptMode Mode, RNG &R,
                      bool Greedy, double Temperature = 1.0) const;

  /// Maximum actions per completion.
  static constexpr unsigned MaxSteps = 12;

  //===--- Trainer interface ----------------------------------------------===//

  /// Per-step action log-probability of \p Seq (teacher forcing), given the
  /// prompt features. Unavailable actions contribute -inf (1e9 clamp).
  double sequenceLogProb(const Function &Src,
                         const std::vector<Action> &Seq) const;

  /// Accumulate d logProb(Seq)/d Theta * Scale into \p Grad (same layout as
  /// params()).
  void accumulateSequenceGrad(const Function &Src,
                              const std::vector<Action> &Seq, double Scale,
                              std::vector<double> &Grad) const;

  /// Diagnosis head: log p(class | corruption one-hot) and its gradient.
  double diagLogProb(const std::vector<Action> &Attempt,
                     unsigned Class) const;
  void accumulateDiagGrad(const std::vector<Action> &Attempt, unsigned Class,
                          double Scale, std::vector<double> &Grad) const;

  /// Self-correction gate: log p(fix=F | theta) and gradient.
  double fixLogProb(bool Fix) const;
  void accumulateFixGrad(bool Fix, double Scale,
                         std::vector<double> &Grad) const;

  bool actionAvailable(Action A) const;

  /// Does family \p A actually fire on prompt \p Src? (Deterministic
  /// content-hash gate implementing the capacity ceiling.)
  bool familyFires(const Function &Src, Action A) const;

  /// Action distribution at the current (greedy-relevant) state; exposed
  /// for tests and the training-dynamics bench.
  std::vector<double> actionProbs(const Function &Src) const;

private:
  // Parameter layout in Theta:
  //   [0, NumActions*NumFeatures)                      action weights
  //   [.., + NumDiagClasses*(NumCorrupt+2))            diagnosis weights
  //   [last]                                           fix-skill scalar
  static constexpr unsigned NumCorrupt = 8;
  unsigned actionW(unsigned A, unsigned F) const {
    return A * NumFeatures + F;
  }
  unsigned diagW(unsigned C, unsigned F) const {
    return NumActions * NumFeatures + C * (NumCorrupt + 2) + F;
  }
  unsigned fixW() const {
    return NumActions * NumFeatures + NumDiagClasses * (NumCorrupt + 2);
  }

  std::vector<double>
  actionLogits(const std::array<double, NumFeatures> &Phi) const;
  void applyResidualHallucination(const Function &Src, Completion &Out) const;
  std::array<double, 10> diagFeatures(const std::vector<Action> &A) const;
  std::vector<double> diagLogits(const std::vector<Action> &A) const;

  ModelConfig Cfg;
  std::vector<double> Theta;
};

//===--- Oracle action sequences -------------------------------------------===//

/// Map a reference-pass trace to the action vocabulary (for SFT teacher
/// forcing). Actions outside \p Model's knowledge mask are dropped — a
/// small model cannot be taught families it has no capacity for (the Fig.
/// 11/12 misses). Ends with Stop.
std::vector<Action> oracleActions(const PassTrace &Trace,
                                  const RewritePolicyModel &Model);

} // namespace veriopt

#endif // VERIOPT_MODEL_POLICY_H
