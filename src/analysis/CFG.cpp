//===- CFG.cpp - Control-flow graph utilities --------------------------------//

#include "analysis/CFG.h"

#include <algorithm>

namespace veriopt {

std::vector<BasicBlock *> successors(const BasicBlock *BB) {
  std::vector<BasicBlock *> Out;
  Instruction *T = BB->getTerminator();
  if (!T)
    return Out;
  if (auto *Br = dyn_cast<BrInst>(T))
    for (unsigned I = 0; I < Br->getNumSuccessors(); ++I)
      Out.push_back(Br->getSuccessor(I));
  return Out;
}

CFG::CFG(const Function &F) : F(F) {
  // Build succ/pred maps over all blocks.
  for (const auto &BB : F) {
    Succs[BB.get()] = successors(BB.get());
    Preds[BB.get()]; // ensure entry exists
  }
  for (const auto &BB : F)
    for (BasicBlock *S : Succs[BB.get()])
      Preds[S].push_back(BB.get());

  if (F.empty())
    return;

  // Iterative DFS computing post-order and cycle detection (gray/black).
  enum Color { White, Gray, Black };
  std::unordered_map<const BasicBlock *, Color> Colors;
  std::vector<BasicBlock *> Post;
  struct Frame {
    BasicBlock *BB;
    size_t NextSucc;
  };
  std::vector<Frame> Stack;
  BasicBlock *Entry = F.getEntryBlock();
  Stack.push_back({Entry, 0});
  Colors[Entry] = Gray;
  Reachable.insert(Entry);
  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    auto &SuccList = Succs[Fr.BB];
    if (Fr.NextSucc < SuccList.size()) {
      BasicBlock *S = SuccList[Fr.NextSucc++];
      Color C = Colors.count(S) ? Colors[S] : White;
      if (C == Gray)
        Cyclic = true;
      if (C == White) {
        Colors[S] = Gray;
        Reachable.insert(S);
        Stack.push_back({S, 0});
      }
      continue;
    }
    Colors[Fr.BB] = Black;
    Post.push_back(Fr.BB);
    Stack.pop_back();
  }
  RPO.assign(Post.rbegin(), Post.rend());
}

const std::vector<BasicBlock *> &CFG::preds(const BasicBlock *BB) const {
  auto It = Preds.find(BB);
  return It == Preds.end() ? Empty : It->second;
}

const std::vector<BasicBlock *> &CFG::succs(const BasicBlock *BB) const {
  auto It = Succs.find(BB);
  return It == Succs.end() ? Empty : It->second;
}

std::vector<BasicBlock *> CFG::unreachableBlocks() const {
  std::vector<BasicBlock *> Out;
  for (const auto &BB : F)
    if (!Reachable.count(BB.get()))
      Out.push_back(BB.get());
  return Out;
}

DominatorTree::DominatorTree(const Function &F) : F(F), G(F) {
  const auto &Order = G.rpo();
  for (unsigned I = 0; I < Order.size(); ++I)
    RPONum[Order[I]] = I;
  if (Order.empty())
    return;

  BasicBlock *Entry = Order.front();
  IDom[Entry] = Entry;

  auto intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPONum.at(A) > RPONum.at(B))
        A = IDom.at(A);
      while (RPONum.at(B) > RPONum.at(A))
        B = IDom.at(B);
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I < Order.size(); ++I) {
      BasicBlock *BB = Order[I];
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : G.preds(BB)) {
        if (!IDom.count(P))
          continue; // unprocessed or unreachable
        NewIDom = NewIDom ? intersect(NewIDom, P) : P;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  if (It == IDom.end())
    return nullptr;
  if (It->second == BB)
    return nullptr; // entry
  return It->second;
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!G.isReachable(B))
    return true; // vacuous: unreachable code is dominated by everything
  if (A == B)
    return true;
  const BasicBlock *Cur = B;
  while (true) {
    auto It = IDom.find(Cur);
    if (It == IDom.end() || It->second == Cur)
      return false; // reached entry
    Cur = It->second;
    if (Cur == A)
      return true;
  }
}

bool DominatorTree::dominatesUse(const Instruction *Def,
                                 const Instruction *User,
                                 unsigned OpIdx) const {
  const BasicBlock *DefBB = Def->getParent();
  if (const auto *Phi = dyn_cast<PhiInst>(User)) {
    // A phi use happens on the edge from the incoming block: the def must
    // dominate the *end* of that block.
    const BasicBlock *Incoming = Phi->getIncomingBlock(OpIdx);
    if (DefBB == Incoming)
      return true; // any def in the incoming block reaches its end
    return dominates(DefBB, Incoming);
  }
  const BasicBlock *UseBB = User->getParent();
  if (DefBB != UseBB)
    return dominates(DefBB, UseBB);
  // Same block: the def must appear strictly earlier.
  for (const auto &I : *DefBB) {
    if (I.get() == Def)
      return true;
    if (I.get() == User)
      return false;
  }
  return false;
}

} // namespace veriopt
