//===- CFG.h - Control-flow graph utilities ----------------------*- C++ -*-=//
//
// On-demand CFG views over a Function: successor/predecessor maps, reverse
// post-order, reachability, an iterative dominator tree, and back-edge
// detection (used by the bounded-unrolling symbolic executor and the passes).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_ANALYSIS_CFG_H
#define VERIOPT_ANALYSIS_CFG_H

#include "ir/Function.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace veriopt {

/// Successor blocks of \p BB (empty if unterminated or for ret).
std::vector<BasicBlock *> successors(const BasicBlock *BB);

/// A snapshot CFG of a function; invalidated by any CFG mutation.
class CFG {
public:
  explicit CFG(const Function &F);

  const std::vector<BasicBlock *> &preds(const BasicBlock *BB) const;
  const std::vector<BasicBlock *> &succs(const BasicBlock *BB) const;

  /// Blocks in reverse post-order from the entry (unreachable blocks
  /// excluded).
  const std::vector<BasicBlock *> &rpo() const { return RPO; }

  bool isReachable(const BasicBlock *BB) const {
    return Reachable.count(BB) != 0;
  }

  /// Blocks not reachable from entry.
  std::vector<BasicBlock *> unreachableBlocks() const;

  /// True if the CFG (restricted to reachable blocks) contains a cycle.
  bool hasCycle() const { return Cyclic; }

private:
  const Function &F;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Preds;
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Succs;
  std::vector<BasicBlock *> RPO;
  std::unordered_set<const BasicBlock *> Reachable;
  bool Cyclic = false;
  std::vector<BasicBlock *> Empty;
};

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  /// Immediate dominator of \p BB; nullptr for the entry block and
  /// unreachable blocks.
  BasicBlock *idom(const BasicBlock *BB) const;

  /// Does \p A dominate \p B? (A block dominates itself.) Unreachable blocks
  /// are dominated by everything, matching LLVM's convention.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Does instruction \p Def dominate the use in instruction \p User at
  /// operand index \p OpIdx? Handles phi uses (which occur at the end of the
  /// incoming block) and same-block ordering.
  bool dominatesUse(const Instruction *Def, const Instruction *User,
                    unsigned OpIdx) const;

private:
  const Function &F;
  CFG G;
  std::unordered_map<const BasicBlock *, BasicBlock *> IDom;
  std::unordered_map<const BasicBlock *, unsigned> RPONum;
};

} // namespace veriopt

#endif // VERIOPT_ANALYSIS_CFG_H
