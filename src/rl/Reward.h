//===- Reward.h - Verifier-guided reward functions ---------------*- C++ -*-=//
//
// The paper's reward signals:
//  - Eq. (1): hierarchical answer reward r = t(1 + a(1 + m)) + b over
//    format compliance t, Alive-verified equivalence a, exact reference
//    match m, and BLEU similarity b.
//  - Eq. (2): chain-of-thought reward comparing the model's self-diagnosis
//    of its <think> attempt against the actual Alive verdict.
//  - Eq. (3)/(4): latency reward — normalized, gamma-shaped speedup over
//    the -O0 baseline, gated on semantic equivalence, with U_max set to the
//    80th percentile of the reference pass's speedups on the training set.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_RL_REWARD_H
#define VERIOPT_RL_REWARD_H

#include "data/Dataset.h"
#include "model/Policy.h"
#include "verify/AliveLite.h"
#include "verify/RobustVerifier.h"
#include "verify/VerifyCache.h"

namespace veriopt {

/// Everything one evaluation of a completion yields. Carries the verify
/// result so stage 1 can harvest diagnostics from the same pass.
struct RewardBreakdown {
  bool FormatOk = false;   // t
  bool Equivalent = false; // a
  bool ExactMatch = false; // m
  double Bleu = 0;         // b
  double Total = 0;        // Eq. (1)
  bool IsCopy = false;     ///< answer textually equals the input
  VerifyResult Verify;     ///< verdict on the *answer*
};

/// Evaluate Eq. (1) for a completion's answer against the sample's source
/// and reference. A non-null \p Cache memoizes the verification (the GRPO
/// hot path); results are identical with or without it.
RewardBreakdown answerReward(const Sample &S, const Completion &C,
                             const VerifyOptions &VOpts = VerifyOptions(),
                             VerifyCache *Cache = nullptr);

/// Fault-tolerant variant: verification goes through \p RV's escalating
/// retry ladder, so budget-bound Inconclusives are re-asked at larger
/// budgets before scoring. With injection disabled, rewards are identical
/// to the plain overload evaluated at the tier that settled the query.
RewardBreakdown answerReward(const Sample &S, const Completion &C,
                             const RobustVerifier &RV);

/// Eq. (2): 1 when model and Alive agree the think-attempt verifies;
/// 0.5 + 0.5*BLEU(model message, alive message) when both agree it fails;
/// 0 on disagreement. \p AttemptVerify is Alive's verdict on the attempt.
double cotReward(const Completion &C, const VerifyResult &AttemptVerify);

/// Verify the <think> attempt of an augmented completion.
VerifyResult verifyAttempt(const Sample &S, const Completion &C,
                           const VerifyOptions &VOpts = VerifyOptions(),
                           VerifyCache *Cache = nullptr);

/// Fault-tolerant variant of verifyAttempt through the retry ladder.
VerifyResult verifyAttempt(const Sample &S, const Completion &C,
                           const RobustVerifier &RV);

struct LatencyRewardParams {
  double UMax = 3.0;   ///< saturation threshold (80th pct of reference)
  double Gamma = 2.0;  ///< convex shaping (> 1 emphasizes larger speedups)
};

/// Eq. (3)/(4): 0 unless the answer is equivalent and strictly faster than
/// the -O0 source; otherwise the shaped, saturated speedup. Degenerate
/// parameterizations (UMax <= 1, a zero-latency source) score 0 instead of
/// dividing by zero.
double latencyReward(const Sample &S, const Completion &C, bool Equivalent,
                     const LatencyRewardParams &P);

/// Compute U_max from the reference pass's speedups over a training set
/// (80th percentile, floored at 1.5 to keep the reward well-defined).
double computeUMax(const std::vector<Sample> &Train);

} // namespace veriopt

#endif // VERIOPT_RL_REWARD_H
