//===- Reward.cpp - Verifier-guided reward functions ---------------------------//

#include "rl/Reward.h"

#include "cost/CostModel.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/Stats.h"
#include "textgen/Bleu.h"

#include <algorithm>
#include <cmath>

namespace veriopt {

/// A copy that has been re-wrapped in whitespace or renumbered values must
/// still count as a copy, or the copy penalty / CopyRate stat is evaded by
/// cosmetic edits. Compare canonically re-printed IR; fall back to the raw
/// byte compare when the answer does not parse.
static bool isCopyOfSource(const Sample &S, const std::string &AnswerIR) {
  if (AnswerIR == S.SrcText)
    return true;
  auto M = parseModule(AnswerIR);
  if (!M || !M.value()->getMainFunction())
    return false;
  return printFunction(*M.value()->getMainFunction()) ==
         printFunction(*S.source());
}

/// Everything after the verification verdict is shared between the plain
/// and the retry-ladder overloads.
static RewardBreakdown scoreWithVerdict(const Sample &S, const Completion &C,
                                        VerifyResult Verdict) {
  RewardBreakdown Out;
  Out.FormatOk = C.FormatOk;
  Out.IsCopy = isCopyOfSource(S, C.AnswerIR);

  if (Out.FormatOk) {
    Out.Verify = std::move(Verdict);
    Out.Equivalent = Out.Verify.equivalent();
  } else {
    Out.Verify.Status = VerifyStatus::SyntaxError;
    Out.Verify.Kind = DiagKind::ParseError;
    Out.Verify.Diagnostic = "ERROR: completion violates the answer format";
  }
  Out.ExactMatch = Out.Equivalent && C.AnswerIR == S.RefText;
  Out.Bleu = bleuText(S.RefText, C.AnswerIR);

  double T = Out.FormatOk ? 1.0 : 0.0;
  double A = Out.Equivalent ? 1.0 : 0.0;
  double M = Out.ExactMatch ? 1.0 : 0.0;
  Out.Total = T * (1.0 + A * (1.0 + M)) + Out.Bleu; // Eq. (1)
  return Out;
}

RewardBreakdown answerReward(const Sample &S, const Completion &C,
                             const VerifyOptions &VOpts, VerifyCache *Cache) {
  VerifyResult V;
  if (C.FormatOk)
    V = Cache ? Cache->verify(S.SrcText, *S.source(), C.AnswerIR, VOpts)
              : verifyCandidateText(*S.source(), C.AnswerIR, VOpts);
  return scoreWithVerdict(S, C, std::move(V));
}

RewardBreakdown answerReward(const Sample &S, const Completion &C,
                             const RobustVerifier &RV) {
  VerifyResult V;
  if (C.FormatOk)
    V = RV.verify(S.SrcText, *S.source(), C.AnswerIR).Result;
  return scoreWithVerdict(S, C, std::move(V));
}

VerifyResult verifyAttempt(const Sample &S, const Completion &C,
                           const VerifyOptions &VOpts, VerifyCache *Cache) {
  if (Cache)
    return Cache->verify(S.SrcText, *S.source(), C.ThinkAttemptIR, VOpts);
  return verifyCandidateText(*S.source(), C.ThinkAttemptIR, VOpts);
}

VerifyResult verifyAttempt(const Sample &S, const Completion &C,
                           const RobustVerifier &RV) {
  return RV.verify(S.SrcText, *S.source(), C.ThinkAttemptIR).Result;
}

double cotReward(const Completion &C, const VerifyResult &AttemptVerify) {
  bool ModelSaysOk = C.PredictedDiagClass == 0;
  bool AliveSaysOk = AttemptVerify.equivalent();
  if (ModelSaysOk && AliveSaysOk)
    return 1.0; // agreement on OK
  if (!ModelSaysOk && !AliveSaysOk)
    return 0.5 + 0.5 * bleuText(AttemptVerify.Diagnostic,
                                C.PredictedMessage); // agreement on ERR
  return 0.0; // disagreement
}

double latencyReward(const Sample &S, const Completion &C, bool Equivalent,
                     const LatencyRewardParams &P) {
  if (!Equivalent)
    return 0.0; // S = 0
  if (P.UMax <= 1.0)
    return 0.0; // saturation band is empty: Eq. (4) would divide by zero
  auto M = parseModule(C.AnswerIR);
  if (!M || !M.value()->getMainFunction())
    return 0.0;
  double T0 = estimateLatency(*S.source());
  if (T0 <= 0)
    return 0.0; // zero-latency source: no speedup is expressible
  double T1 = estimateLatency(*M.value()->getMainFunction());
  if (T1 <= 0)
    T1 = 0.5; // fully-folded function: credit the maximum
  double U = T0 / T1;
  if (U <= 1.0)
    return 0.0;
  double Norm = std::min(1.0, (U - 1.0) / (P.UMax - 1.0));
  return std::pow(Norm, P.Gamma); // Eq. (4)
}

double computeUMax(const std::vector<Sample> &Train) {
  std::vector<double> Speedups;
  for (const Sample &S : Train) {
    double T0 = estimateLatency(*S.source());
    double T1 = estimateLatency(*S.Reference);
    if (T1 > 0)
      Speedups.push_back(T0 / T1);
  }
  return std::max(1.5, percentile(Speedups, 80.0));
}

} // namespace veriopt
