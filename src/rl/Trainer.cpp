//===- Trainer.cpp - GRPO and SFT trainers --------------------------------------//

#include "rl/Trainer.h"

#include "trace/Metrics.h"
#include "trace/Trace.h"
#include "verify/BatchVerifier.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace veriopt {

/// Boost-style hash mixing for the per-rollout RNG derivation.
static uint64_t mixSeed(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

double clipGradient(std::vector<double> &Grad, double MaxNorm) {
  double Norm = 0;
  for (double G : Grad)
    Norm += G * G;
  Norm = std::sqrt(Norm);
  if (Norm > MaxNorm && Norm > 0) {
    double Scale = MaxNorm / Norm;
    for (double &G : Grad)
      G *= Scale;
  }
  return Norm;
}

GRPOTrainer::GRPOTrainer(RewritePolicyModel &Model, RewardFn Reward,
                         const GRPOOptions &Opts)
    : Model(Model), Reward(std::move(Reward)), Opts(Opts), R(Opts.Seed) {
  if (this->Opts.Threads > 1 && !this->Opts.Pool) {
    OwnedPool = std::make_unique<ThreadPool>(this->Opts.Threads);
    this->Opts.Pool = OwnedPool.get();
  }
}

TrainLogEntry GRPOTrainer::step(const std::vector<const Sample *> &Batch) {
  struct Rollout {
    const Sample *S;
    Completion C;
    RolloutScore Score;
    double Advantage = 0;
  };
  const unsigned StepNo = ++StepCount;
  TraceSpan StepSpan("grpo.step");
  std::vector<Rollout> Rollouts;
  Rollouts.reserve(Batch.size() * Opts.GroupSize);

  // Phase 1: sequential generation. Each rollout draws from its own RNG,
  // derived from (Seed, Step, PromptIdx, G) — never from a shared stream —
  // so the sampled completions are a pure function of the options,
  // independent of scoring order and thread count.
  {
    TraceSpan GenSpan("grpo.generate");
    GenSpan.arg(TraceArg::ofInt("step", StepNo));
    for (unsigned PromptIdx = 0; PromptIdx < Batch.size(); ++PromptIdx) {
      const Sample *S = Batch[PromptIdx];
      for (unsigned G = 0; G < Opts.GroupSize; ++G) {
        Rollout Ro;
        Ro.S = S;
        RNG RoR(mixSeed(mixSeed(mixSeed(Opts.Seed, StepNo), PromptIdx), G));
        Ro.C = Model.generate(*S->source(), Opts.Mode, RoR, /*Greedy=*/false,
                              Opts.Temperature);
        Rollouts.push_back(std::move(Ro));
      }
    }
  }

  // Phase 1.5: batched group pre-verification. One shared solver context
  // per prompt group computes every verdict the scoring pass is about to
  // ask for and seeds the verification cache; scoring then replays from
  // the cache through the ordinary retry ladder. The batch runs the same
  // ladder over the same budgets, so verdicts — and therefore rewards and
  // the trained model — are bit-identical with this knob off.
  if (Opts.Batch && Opts.Cache) {
    for (unsigned PromptIdx = 0; PromptIdx < Batch.size(); ++PromptIdx) {
      const Sample *S = Batch[PromptIdx];
      std::vector<std::string> Texts;
      Texts.reserve(Opts.GroupSize * 2);
      for (unsigned G = 0; G < Opts.GroupSize; ++G) {
        const Completion &C = Rollouts[PromptIdx * Opts.GroupSize + G].C;
        // Mirror exactly what the reward verifies: answers only when the
        // format gate passes, think-attempts unconditionally in augmented
        // mode (see answerReward / verifyAttempt).
        if (C.FormatOk)
          Texts.push_back(C.AnswerIR);
        if (Opts.Mode == PromptMode::Augmented)
          Texts.push_back(C.ThinkAttemptIR);
      }
      if (!Texts.empty())
        Opts.Batch->verifyGroup(S->SrcText, *S->source(), Texts);
    }
  }

  // Phase 2: scoring — the verification-dominated hot path — fans out over
  // the pool. Each task writes only its own rollout's Score slot, so the
  // result is identical to the serial loop.
  VerifyCache::Counters Before;
  if (Opts.Cache)
    Before = Opts.Cache->counters();
  auto ScoreStart = std::chrono::steady_clock::now();
  {
    TraceSpan ScoreSpan("grpo.score");
    ScoreSpan.arg(TraceArg::ofInt("step", StepNo));
    ScoreSpan.arg(
        TraceArg::ofInt("rollouts", static_cast<int64_t>(Rollouts.size())));
    auto ScoreOne = [&](size_t I) {
      Rollouts[I].Score = Reward(*Rollouts[I].S, Rollouts[I].C);
    };
    if (Opts.Pool && Opts.Threads > 1)
      Opts.Pool->parallelFor(Rollouts.size(), ScoreOne);
    else
      for (size_t I = 0; I < Rollouts.size(); ++I)
        ScoreOne(I);
  }
  auto ScoreEnd = std::chrono::steady_clock::now();

  double RewardSum = 0;
  unsigned EquivCount = 0, CopyCount = 0, FalsifyWins = 0;
  unsigned Escalations = 0, TerminalInconclusive = 0, MaxTier = 0;
  uint64_t TotalTokens = 0, Conflicts = 0;
  for (const Rollout &Ro : Rollouts) {
    RewardSum += Ro.Score.Reward;
    EquivCount += Ro.Score.Equivalent;
    CopyCount += Ro.Score.IsCopy;
    TotalTokens += Ro.C.TokenCount;
    FalsifyWins += Ro.Score.AnswerVerify.FoundByFalsification;
    Conflicts += Ro.Score.AnswerVerify.SolverConflicts;
    const VerifyResult &AV = Ro.Score.AnswerVerify;
    if (AV.RetryTier > 0)
      ++Escalations;
    MaxTier = std::max(MaxTier, AV.RetryTier);
    if (AV.Status == VerifyStatus::Inconclusive &&
        (AV.Kind == DiagKind::SolverTimeout ||
         AV.Kind == DiagKind::ResourceExhausted))
      ++TerminalInconclusive;
    if (Opts.OnRollout)
      Opts.OnRollout(*Ro.S, Ro.C, Ro.Score);
  }

  // Group-relative advantages.
  for (size_t GroupStart = 0; GroupStart < Rollouts.size();
       GroupStart += Opts.GroupSize) {
    size_t GroupEnd = GroupStart + Opts.GroupSize;
    double Mean = 0;
    for (size_t I = GroupStart; I < GroupEnd; ++I)
      Mean += Rollouts[I].Score.Reward;
    Mean /= Opts.GroupSize;
    double Var = 0;
    for (size_t I = GroupStart; I < GroupEnd; ++I) {
      double D = Rollouts[I].Score.Reward - Mean;
      Var += D * D;
    }
    double Std = std::sqrt(Var / Opts.GroupSize);
    for (size_t I = GroupStart; I < GroupEnd; ++I)
      Rollouts[I].Advantage =
          (Rollouts[I].Score.Reward - Mean) / (Std + 1e-4);
  }

  // Policy gradient with token-level normalization: every token carries
  // the same weight across the whole batch (DAPO), so long completions do
  // not get under-penalized.
  std::vector<double> Grad(Model.numParams(), 0.0);
  double TokenScale = TotalTokens > 0 ? 1.0 / static_cast<double>(TotalTokens)
                                      : 0.0;
  for (const Rollout &Ro : Rollouts) {
    if (Ro.Advantage == 0)
      continue;
    double Scale = Ro.Advantage * TokenScale *
                   static_cast<double>(Ro.C.TokenCount) /
                   std::max<size_t>(Ro.C.Actions.size(), 1);
    Model.accumulateSequenceGrad(*Ro.S->source(), Ro.C.Actions, Scale, Grad);
    if (Opts.Mode == PromptMode::Augmented) {
      Model.accumulateDiagGrad(Ro.C.Actions, Ro.C.PredictedDiagClass, Scale,
                               Grad);
      if (Ro.C.PredictedDiagClass != 0)
        Model.accumulateFixGrad(Ro.C.SelfCorrected, Scale, Grad);
    }
  }

  TrainLogEntry Log;
  Log.GradNorm = clipGradient(Grad, Opts.ClipNorm);
  for (unsigned I = 0; I < Grad.size(); ++I)
    Model.params()[I] += Opts.LearningRate * Grad[I]; // single update, no KL

  unsigned N = static_cast<unsigned>(Rollouts.size());
  Log.Step = StepNo;
  Log.MeanReward = N ? RewardSum / N : 0;
  Log.EMAReward = Smoother.push(Log.MeanReward);
  Log.EquivalentRate = N ? static_cast<double>(EquivCount) / N : 0;
  Log.CopyRate = N ? static_cast<double>(CopyCount) / N : 0;
  Log.ScoreWallMs =
      std::chrono::duration<double, std::milli>(ScoreEnd - ScoreStart)
          .count();
  if (Opts.Cache) {
    VerifyCache::Counters After = Opts.Cache->counters();
    uint64_t Lookups = After.lookups() - Before.lookups();
    Log.CacheHitRate =
        Lookups ? static_cast<double>(After.Hits - Before.Hits) / Lookups
                : 0.0;
  }
  Log.FalsifyWins = FalsifyWins;
  Log.SolverConflicts = Conflicts;
  Log.RetryEscalations = Escalations;
  Log.TerminalInconclusive = TerminalInconclusive;
  Log.MaxRetryTier = MaxTier;

  if (StepSpan.active()) {
    // Deterministic plane: everything the bit-identical-trajectory guarantee
    // covers. Wall-derived values (score wall time, hit rate) go in meta.
    if (!Opts.TraceLabel.empty())
      StepSpan.arg(TraceArg::ofStr("stage", Opts.TraceLabel));
    StepSpan.arg(TraceArg::ofInt("step", StepNo));
    StepSpan.arg(TraceArg::ofFloat("mean_reward", Log.MeanReward));
    StepSpan.arg(TraceArg::ofFloat("ema_reward", Log.EMAReward));
    StepSpan.arg(TraceArg::ofFloat("equivalent_rate", Log.EquivalentRate));
    StepSpan.arg(TraceArg::ofFloat("copy_rate", Log.CopyRate));
    StepSpan.arg(TraceArg::ofFloat("grad_norm", Log.GradNorm));
    StepSpan.arg(TraceArg::ofInt("falsify_wins", Log.FalsifyWins));
    StepSpan.arg(TraceArg::ofInt(
        "solver_conflicts", static_cast<int64_t>(Log.SolverConflicts)));
    StepSpan.arg(
        TraceArg::ofInt("retry_escalations", Log.RetryEscalations));
    StepSpan.arg(TraceArg::ofInt("terminal_inconclusive",
                                 Log.TerminalInconclusive));
    StepSpan.arg(TraceArg::ofInt("max_retry_tier", Log.MaxRetryTier));
    StepSpan.meta(TraceArg::ofFloat("score_wall_ms", Log.ScoreWallMs));
    StepSpan.meta(TraceArg::ofFloat("cache_hit_rate", Log.CacheHitRate));
  }

  MetricsRegistry &Reg = MetricsRegistry::global();
  static Counter &Steps = Reg.counter("grpo.steps");
  static Counter &RolloutsScored = Reg.counter("grpo.rollouts");
  static Histogram &ScoreWall =
      Reg.histogram("grpo.score_wall_ms", latencyMsBounds());
  Steps.inc();
  RolloutsScored.inc(N);
  ScoreWall.observe(Log.ScoreWallMs);
  Reg.gauge("grpo.ema_reward").set(Log.EMAReward);
  return Log;
}

std::vector<TrainLogEntry>
GRPOTrainer::train(const std::vector<Sample> &Prompts, unsigned Steps,
                   const std::function<bool(const TrainLogEntry &)> &OnStep) {
  std::vector<TrainLogEntry> Logs;
  assert(!Prompts.empty() && "training set is empty");
  for (unsigned Step = 0; Step < Steps; ++Step) {
    std::vector<const Sample *> Batch;
    for (unsigned I = 0; I < Opts.PromptsPerStep; ++I)
      Batch.push_back(&Prompts[R.below(Prompts.size())]);
    Logs.push_back(this->step(Batch));
    if (OnStep && !OnStep(Logs.back()))
      break;
  }
  return Logs;
}

GRPOTrainerState GRPOTrainer::state() const {
  GRPOTrainerState St;
  St.StepCount = StepCount;
  St.RNGState = R.state();
  St.EMAValue = Smoother.value();
  St.EMAPrimed = Smoother.primed();
  return St;
}

void GRPOTrainer::restoreState(const GRPOTrainerState &St) {
  StepCount = St.StepCount;
  R.setState(St.RNGState);
  Smoother.restore(St.EMAValue, St.EMAPrimed);
}

//===----------------------------------------------------------------------===//
// SFT
//===----------------------------------------------------------------------===//

double sftLoss(const RewritePolicyModel &Model,
               const std::vector<SFTExample> &Data) {
  if (Data.empty())
    return 0;
  double Loss = 0;
  for (const SFTExample &Ex : Data) {
    Loss -= Model.sequenceLogProb(*Ex.S->source(), Ex.TargetActions);
    Loss -= Model.diagLogProb(Ex.AttemptActions, Ex.DiagClassTarget);
    if (Ex.IsCorrection)
      Loss -= Model.fixLogProb(true);
  }
  return Loss / static_cast<double>(Data.size());
}

void sftTrain(RewritePolicyModel &Model, const std::vector<SFTExample> &Data,
              const SFTOptions &Opts) {
  if (Data.empty())
    return;
  RNG R(Opts.Seed);
  for (unsigned Epoch = 0; Epoch < Opts.Epochs; ++Epoch) {
    // Shuffled single-example steps (small data; SGD is fine).
    std::vector<unsigned> Order(Data.size());
    for (unsigned I = 0; I < Order.size(); ++I)
      Order[I] = I;
    for (unsigned I = Order.size(); I > 1; --I)
      std::swap(Order[I - 1], Order[R.below(I)]);

    for (unsigned Idx : Order) {
      const SFTExample &Ex = Data[Idx];
      std::vector<double> Grad(Model.numParams(), 0.0);
      double Scale = 1.0 / std::max<size_t>(Ex.TargetActions.size(), 1);
      Model.accumulateSequenceGrad(*Ex.S->source(), Ex.TargetActions, Scale,
                                   Grad);
      Model.accumulateDiagGrad(Ex.AttemptActions, Ex.DiagClassTarget, 1.0,
                               Grad);
      if (Ex.IsCorrection)
        Model.accumulateFixGrad(true, 1.0, Grad);
      clipGradient(Grad, Opts.ClipNorm);
      for (unsigned I = 0; I < Grad.size(); ++I)
        Model.params()[I] += Opts.LearningRate * Grad[I];
    }
  }
}

} // namespace veriopt
