//===- Trainer.h - GRPO and SFT trainers -------------------------*- C++ -*-=//
//
// GRPO (Shao et al.) with the paper's §IV-B modifications: no KL penalty
// (gradient clipping instead), single-update objective, and DAPO-style
// token-level loss normalization (each completion's policy gradient is
// weighted by 1 / total-tokens-in-batch rather than per-sequence means).
//
// SFT teacher-forces oracle action sequences, the diagnosis head, and the
// self-correction gate on diagnostic-augmented samples (§III-C2 warm-up).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_RL_TRAINER_H
#define VERIOPT_RL_TRAINER_H

#include "rl/Reward.h"
#include "support/Stats.h"

#include <functional>

namespace veriopt {

/// What a stage-specific reward evaluation returns for one completion.
struct RolloutScore {
  double Reward = 0;
  bool Equivalent = false;
  bool ExactMatch = false;
  bool IsCopy = false;
  VerifyResult AnswerVerify;
};

/// Stage-specific reward: (sample, completion) -> score.
using RewardFn = std::function<RolloutScore(const Sample &, Completion &)>;

struct GRPOOptions {
  unsigned GroupSize = 8;      ///< candidates per prompt (the "group")
  unsigned PromptsPerStep = 4; ///< prompts per update
  double LearningRate = 0.12;
  double Temperature = 1.0;
  double ClipNorm = 4.0; ///< global L2 gradient clip (replaces KL)
  PromptMode Mode = PromptMode::Generic;
  uint64_t Seed = 11;
};

/// One training-step log record (drives the Fig. 4 curves).
struct TrainLogEntry {
  unsigned Step = 0;
  double MeanReward = 0;
  double EMAReward = 0; ///< 0.95-smoothed, as plotted in the paper
  double EquivalentRate = 0;
  double CopyRate = 0;
  double GradNorm = 0;
};

/// Group Relative Policy Optimization over a fixed prompt set.
class GRPOTrainer {
public:
  GRPOTrainer(RewritePolicyModel &Model, RewardFn Reward,
              const GRPOOptions &Opts);

  /// Run \p Steps updates over \p Prompts (cycled, shuffled by seed).
  /// Returns the per-step log.
  std::vector<TrainLogEntry> train(const std::vector<Sample> &Prompts,
                                   unsigned Steps);

  /// Single update from explicit rollouts (exposed for tests).
  TrainLogEntry step(const std::vector<const Sample *> &Batch);

private:
  RewritePolicyModel &Model;
  RewardFn Reward;
  GRPOOptions Opts;
  RNG R;
  unsigned StepCount = 0;
  EMA Smoother{0.95};
};

//===--- SFT -----------------------------------------------------------------//

/// One diagnostic-augmented training example (Fig. 2). First-time samples
/// have IsCorrection = false and an empty AttemptActions; correction
/// samples carry the corruptions of the failed attempt plus the Alive
/// verdict class observed for it.
struct SFTExample {
  const Sample *S = nullptr;
  std::vector<Action> TargetActions; ///< oracle sequence, ends with Stop
  bool IsCorrection = false;
  std::vector<Action> AttemptActions; ///< actions of the failed attempt
  unsigned DiagClassTarget = 0;       ///< Alive verdict class for attempt
};

struct SFTOptions {
  double LearningRate = 0.08;
  unsigned Epochs = 12;
  double ClipNorm = 4.0;
  uint64_t Seed = 17;
};

/// Average SFT loss (negative log-likelihood) over the set — exposed so
/// tests/benches can confirm the warm-up converges.
double sftLoss(const RewritePolicyModel &Model,
               const std::vector<SFTExample> &Data);

/// Supervised fine-tuning on diagnostic-augmented samples.
void sftTrain(RewritePolicyModel &Model, const std::vector<SFTExample> &Data,
              const SFTOptions &Opts);

/// Utilities shared by trainers.
double clipGradient(std::vector<double> &Grad, double MaxNorm);

} // namespace veriopt

#endif // VERIOPT_RL_TRAINER_H
