//===- Trainer.h - GRPO and SFT trainers -------------------------*- C++ -*-=//
//
// GRPO (Shao et al.) with the paper's §IV-B modifications: no KL penalty
// (gradient clipping instead), single-update objective, and DAPO-style
// token-level loss normalization (each completion's policy gradient is
// weighted by 1 / total-tokens-in-batch rather than per-sequence means).
//
// SFT teacher-forces oracle action sequences, the diagnosis head, and the
// self-correction gate on diagnostic-augmented samples (§III-C2 warm-up).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_RL_TRAINER_H
#define VERIOPT_RL_TRAINER_H

#include "rl/Reward.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <functional>

namespace veriopt {

class BatchVerifier;

/// What a stage-specific reward evaluation returns for one completion.
struct RolloutScore {
  double Reward = 0;
  bool Equivalent = false;
  bool ExactMatch = false;
  bool IsCopy = false;
  VerifyResult AnswerVerify;
};

/// Stage-specific reward: (sample, completion) -> score. Scoring fans out
/// over a thread pool when GRPOOptions::Threads > 1, so the function must
/// be safe to call concurrently on distinct completions (shared state needs
/// its own synchronization — or better, use GRPOOptions::OnRollout, which
/// runs sequentially).
using RewardFn = std::function<RolloutScore(const Sample &, Completion &)>;

/// Sequential per-rollout observer, invoked after the (possibly parallel)
/// scoring phase in deterministic rollout order. The place for stateful
/// consumers like the stage-1 sample harvester: it sees every rollout
/// exactly once, in the same order at any thread count.
using RolloutHook = std::function<void(const Sample &, const Completion &,
                                       const RolloutScore &)>;

struct GRPOOptions {
  unsigned GroupSize = 8;      ///< candidates per prompt (the "group")
  unsigned PromptsPerStep = 4; ///< prompts per update
  double LearningRate = 0.12;
  double Temperature = 1.0;
  double ClipNorm = 4.0; ///< global L2 gradient clip (replaces KL)
  PromptMode Mode = PromptMode::Generic;
  uint64_t Seed = 11;

  /// Rollout-scoring parallelism. Generation stays sequential (each rollout
  /// draws from an RNG derived from (Seed, Step, PromptIdx, G)), so the
  /// trained model and the log's reward/equivalence values are bit-identical
  /// at any thread count.
  unsigned Threads = 1;
  /// Shared scoring pool; when null and Threads > 1 the trainer owns one.
  ThreadPool *Pool = nullptr;
  /// Verification memo consulted by the reward (via the reward factories);
  /// referenced here only to report per-step hit rates in the log.
  VerifyCache *Cache = nullptr;
  /// Batched group verification: when set (and Cache is set), each prompt
  /// group's candidates are pre-verified through one shared solver context
  /// between generation and scoring, seeding the cache the reward then
  /// replays from. Verdicts are bit-identical with or without it, so the
  /// trained model and the log never depend on this knob.
  BatchVerifier *Batch = nullptr;
  /// Optional sequential observer of every scored rollout.
  RolloutHook OnRollout;
  /// Stage label stamped onto this trainer's trace events ("stage1"...);
  /// empty means unlabeled. Deterministic, so it lives in event Args.
  std::string TraceLabel;
};

/// One training-step log record (drives the Fig. 4 curves, plus the
/// verifier-cost instrumentation for the parallel scoring path).
struct TrainLogEntry {
  unsigned Step = 0;
  double MeanReward = 0;
  double EMAReward = 0; ///< 0.95-smoothed, as plotted in the paper
  double EquivalentRate = 0;
  double CopyRate = 0;
  double GradNorm = 0;

  // Scoring-phase instrumentation (not part of the determinism guarantee:
  // wall time and hit rate depend on thread count and cache history).
  double ScoreWallMs = 0;       ///< wall time of the scoring phase
  double CacheHitRate = 0;      ///< verify-cache hits / lookups this step
  unsigned FalsifyWins = 0;     ///< counterexamples found pre-SMT
  uint64_t SolverConflicts = 0; ///< CDCL conflicts spent this step

  // Retry-ladder telemetry (deterministic: derived from verdicts, and
  // identical whether a verdict came from the cache or a fresh run).
  unsigned RetryEscalations = 0;     ///< rollouts verified above tier 0
  unsigned TerminalInconclusive = 0; ///< budget-bound even at the top tier
  unsigned MaxRetryTier = 0;         ///< highest tier reached this step
};

/// Everything needed to restart GRPO training mid-run and produce results
/// bit-identical to an uninterrupted run: the step counter feeds the
/// per-rollout RNG derivation, RNGState drives prompt sampling, and the
/// EMA smoother state continues the logged reward curve. (Model parameters
/// are checkpointed separately by the pipeline.)
struct GRPOTrainerState {
  unsigned StepCount = 0;
  uint64_t RNGState = 0;
  double EMAValue = 0;
  bool EMAPrimed = false;
};

/// Group Relative Policy Optimization over a fixed prompt set.
class GRPOTrainer {
public:
  GRPOTrainer(RewritePolicyModel &Model, RewardFn Reward,
              const GRPOOptions &Opts);

  /// Run \p Steps updates over \p Prompts (cycled, shuffled by seed).
  /// Returns the per-step log. \p OnStep, when set, observes each step's
  /// log entry; returning false halts training after that step (the
  /// pipeline's checkpoint hook), leaving the trainer resumable via
  /// state()/restoreState().
  std::vector<TrainLogEntry>
  train(const std::vector<Sample> &Prompts, unsigned Steps,
        const std::function<bool(const TrainLogEntry &)> &OnStep = nullptr);

  /// Single update from explicit rollouts (exposed for tests).
  TrainLogEntry step(const std::vector<const Sample *> &Batch);

  /// Snapshot / restore the trainer's resumable state (checkpointing).
  GRPOTrainerState state() const;
  void restoreState(const GRPOTrainerState &St);

private:
  RewritePolicyModel &Model;
  RewardFn Reward;
  GRPOOptions Opts;
  RNG R;
  unsigned StepCount = 0;
  EMA Smoother{0.95};
  std::unique_ptr<ThreadPool> OwnedPool; ///< when Threads > 1 and no Pool
};

//===--- SFT -----------------------------------------------------------------//

/// One diagnostic-augmented training example (Fig. 2). First-time samples
/// have IsCorrection = false and an empty AttemptActions; correction
/// samples carry the corruptions of the failed attempt plus the Alive
/// verdict class observed for it.
struct SFTExample {
  const Sample *S = nullptr;
  std::vector<Action> TargetActions; ///< oracle sequence, ends with Stop
  bool IsCorrection = false;
  std::vector<Action> AttemptActions; ///< actions of the failed attempt
  unsigned DiagClassTarget = 0;       ///< Alive verdict class for attempt
};

struct SFTOptions {
  double LearningRate = 0.08;
  unsigned Epochs = 12;
  double ClipNorm = 4.0;
  uint64_t Seed = 17;
};

/// Average SFT loss (negative log-likelihood) over the set — exposed so
/// tests/benches can confirm the warm-up converges.
double sftLoss(const RewritePolicyModel &Model,
               const std::vector<SFTExample> &Data);

/// Supervised fine-tuning on diagnostic-augmented samples.
void sftTrain(RewritePolicyModel &Model, const std::vector<SFTExample> &Data,
              const SFTOptions &Opts);

/// Utilities shared by trainers.
double clipGradient(std::vector<double> &Grad, double MaxNorm);

} // namespace veriopt

#endif // VERIOPT_RL_TRAINER_H
