//===- Metrics.cpp - Counters, gauges and histograms --------------------------//

#include "trace/Metrics.h"

#include "trace/Json.h"

#include <algorithm>
#include <cassert>

namespace veriopt {

Histogram::Histogram(std::vector<double> Bounds)
    : Bounds(std::move(Bounds)), BucketCounts(this->Bounds.size() + 1) {
  assert(std::is_sorted(this->Bounds.begin(), this->Bounds.end()) &&
         "histogram bounds must be increasing");
}

void Histogram::observe(double X) {
  // Inclusive upper edge: x == Bounds[i] lands in bucket i (`le` semantics).
  size_t Idx = static_cast<size_t>(
      std::lower_bound(Bounds.begin(), Bounds.end(), X) - Bounds.begin());
  BucketCounts[Idx].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(X, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::counts() const {
  std::vector<uint64_t> Out(BucketCounts.size());
  for (size_t I = 0; I < BucketCounts.size(); ++I)
    Out[I] = BucketCounts[I].load(std::memory_order_relaxed);
  return Out;
}

double Histogram::sum() const { return Sum.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (auto &B : BucketCounts)
    B.store(0, std::memory_order_relaxed);
  N.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

std::vector<double> latencyMsBounds() {
  // 0.01ms .. 10486ms in x4 steps: covers BLEU-fast scoring ticks up to a
  // pathological multi-second verification, in 11 fixed buckets.
  std::vector<double> B;
  for (double V = 0.01; V <= 11000.0; V *= 4)
    B.push_back(V);
  return B;
}

std::vector<double> workUnitBounds() {
  // 1 .. 4^12 (~16.7M) abstract units in x4 steps: conflicts and fuel.
  std::vector<double> B;
  double V = 1;
  for (int I = 0; I <= 12; ++I, V *= 4)
    B.push_back(V);
  return B;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double> Bounds) {
  std::lock_guard<std::mutex> L(M);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(Bounds));
  return *Slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> L(M);
  for (auto &[_, C] : Counters)
    C->reset();
  for (auto &[_, G] : Gauges)
    G->reset();
  for (auto &[_, H] : Histograms)
    H->reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> L(M);
  Snapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C->value();
  for (const auto &[Name, G] : Gauges)
    S.Gauges[Name] = G->value();
  for (const auto &[Name, H] : Histograms) {
    HistogramSnapshot HS;
    HS.Bounds = H->bounds();
    HS.Counts = H->counts();
    HS.Count = H->count();
    HS.Sum = H->sum();
    S.Histograms[Name] = std::move(HS);
  }
  return S;
}

std::string MetricsRegistry::toJson(const Snapshot &S) {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, V] : S.Counters) {
    if (!First)
      Out.push_back(',');
    First = false;
    Out += jsonString(Name) + ":" + std::to_string(V);
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, V] : S.Gauges) {
    if (!First)
      Out.push_back(',');
    First = false;
    Out += jsonString(Name) + ":" + jsonNumber(V);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : S.Histograms) {
    if (!First)
      Out.push_back(',');
    First = false;
    Out += jsonString(Name) + ":{\"bounds\":[";
    for (size_t I = 0; I < H.Bounds.size(); ++I) {
      if (I)
        Out.push_back(',');
      Out += jsonNumber(H.Bounds[I]);
    }
    Out += "],\"counts\":[";
    for (size_t I = 0; I < H.Counts.size(); ++I) {
      if (I)
        Out.push_back(',');
      Out += std::to_string(H.Counts[I]);
    }
    Out += "],\"count\":" + std::to_string(H.Count) +
           ",\"sum\":" + jsonNumber(H.Sum) + "}";
  }
  Out += "}}";
  return Out;
}

} // namespace veriopt
