//===- Trace.h - Structured tracing for the training runtime -----*- C++ -*-=//
//
// A low-overhead, thread-safe structured observability layer. The process
// owns one TraceRecorder; instrumented code emits typed *spans* (timed
// regions: TRACE_SPAN("verify.encode")), *counter* samples and *instant*
// events into per-thread buffers, so the hot path never contends on a
// shared lock. Disabled tracing costs one relaxed atomic load per site and
// never touches the clock, preserving the < 2% overhead budget of the
// rollout-scoring path.
//
// Event content is split into two planes:
//  - Args: deterministic payload (ids, verdicts, deterministic counts).
//    For a fixed seed, the *multiset* of (Name, Phase, Args) is identical
//    at any thread count — asserted by TraceTest.
//  - Meta + timing (TsNs/DurNs/Tid/Seq): wall clock and scheduling
//    identity, isolated in separate fields so two traces of the same run
//    diff cleanly (`diff <(jq 'del(.ts_ns,.dur_ns,.tid,.seq,.meta)' a) ...`).
//
// Sinks: a JSONL writer (one event per line, atomic write-then-rename, the
// schema of docs/OBSERVABILITY.md) and a Chrome about:tracing / Perfetto
// compatible exporter.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_TRACE_TRACE_H
#define VERIOPT_TRACE_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace veriopt {

class MetricsRegistry;

/// One typed key/value argument of an event. Kept scalar on purpose: flat
/// args keep the JSONL schema trivially diffable and validatable.
struct TraceArg {
  enum class Kind { Int, Float, Str, Bool };
  std::string Key;
  Kind K = Kind::Int;
  int64_t I = 0;
  double F = 0;
  std::string S;

  static TraceArg ofInt(std::string Key, int64_t V) {
    TraceArg A;
    A.Key = std::move(Key);
    A.K = Kind::Int;
    A.I = V;
    return A;
  }
  static TraceArg ofFloat(std::string Key, double V) {
    TraceArg A;
    A.Key = std::move(Key);
    A.K = Kind::Float;
    A.F = V;
    return A;
  }
  static TraceArg ofStr(std::string Key, std::string V) {
    TraceArg A;
    A.Key = std::move(Key);
    A.K = Kind::Str;
    A.S = std::move(V);
    return A;
  }
  static TraceArg ofBool(std::string Key, bool V) {
    TraceArg A;
    A.Key = std::move(Key);
    A.K = Kind::Bool;
    A.I = V ? 1 : 0;
    return A;
  }

  bool operator==(const TraceArg &O) const {
    return Key == O.Key && K == O.K && I == O.I && F == O.F && S == O.S;
  }
};

/// Event phases, mirroring the Chrome trace-event vocabulary.
enum class TracePhase : char {
  Complete = 'X', ///< a span: TsNs..TsNs+DurNs
  Counter = 'C',  ///< a sampled counter value
  Instant = 'i',  ///< a point event
};

struct TraceEvent {
  std::string Name;
  TracePhase Phase = TracePhase::Instant;
  /// Deterministic payload: part of the cross-run / cross-thread-count
  /// equality contract.
  std::vector<TraceArg> Args;
  /// Nondeterministic payload (wall-clock-derived rates etc.), excluded
  /// from the determinism contract but still schema-checked.
  std::vector<TraceArg> Meta;

  // Timing/identity plane (never part of the determinism contract).
  uint64_t TsNs = 0;  ///< steady-clock ns since recorder epoch
  uint64_t DurNs = 0; ///< span duration (Complete events only)
  uint32_t Tid = 0;   ///< logical thread id (registration order)
  uint64_t Seq = 0;   ///< per-thread sequence number
};

/// Process-wide recorder. All methods are thread-safe; record() is
/// contention-free (each thread appends to its own buffer; the buffer lock
/// is only ever contested by drain/clear).
class TraceRecorder {
public:
  static TraceRecorder &instance();

  /// Enabling resets the epoch so TsNs starts near 0 for the run.
  void enable();
  void disable();
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Append one event (fills Tid/Seq; TsNs must be set by the caller via
  /// nowNs(), or is left 0 for purely logical events). No-op when disabled.
  void record(TraceEvent E);

  /// Convenience emitters. All are no-ops when disabled.
  void instant(std::string Name, std::vector<TraceArg> Args = {});
  void counter(std::string Name, std::vector<TraceArg> Args);

  /// Steady-clock ns since the recorder epoch.
  uint64_t nowNs() const;

  /// Snapshot all events recorded so far, ordered by (Tid, Seq). Does not
  /// clear.
  std::vector<TraceEvent> snapshot() const;

  /// Drop all recorded events (buffers stay registered).
  void clear();

  size_t eventCount() const;

  /// Write all events as JSONL (docs/OBSERVABILITY.md schema), via atomic
  /// write-then-rename: a crash or failure leaves either the old file or
  /// the complete new one, never a torn prefix. A non-null \p Metrics
  /// appends one "metric" / "metric.hist" line per registered instrument.
  /// Returns false (old file intact) on any I/O error.
  bool writeJsonl(const std::string &Path,
                  const MetricsRegistry *Metrics = nullptr) const;

  /// Write a Chrome about:tracing / Perfetto compatible JSON array
  /// (chrome://tracing "Load" or https://ui.perfetto.dev). Timestamps are
  /// converted to microseconds as the format requires.
  bool writeChromeTrace(const std::string &Path) const;

  //===--- Streaming JSONL sink (bounded memory) ------------------------===//
  //
  // The buffered writeJsonl() holds every event until the end of the run;
  // long runs want O(flush-batch) memory instead. streamTo() arms an
  // incremental sink: every flushEvery(N) events (and on flushStream()/
  // finishStream()) the per-thread buffers are drained — sorted by
  // (Tid, Seq), exactly the buffered sink's order — and durably appended
  // to "<path>.stream". finishStream() appends the metric lines and
  // atomically publishes the finished file at its final name, so readers
  // of <path> still never see a torn prefix, and a crash mid-run leaves
  // the durable ".stream" partial for forensics without masquerading as a
  // complete trace. For a single-threaded emitter the published file is
  // byte-identical to writeJsonl(); with concurrent emitters the event
  // *multiset* is identical while interleaving may differ (drains cut the
  // stream at flush boundaries) — same-seed runs still diff clean on the
  // deterministic plane (TraceTest asserts both).

  /// Arm the streaming sink (truncating any previous "<path>.stream").
  /// \p Metrics is captured for finishStream()'s metric lines.
  bool streamTo(const std::string &Path,
                const MetricsRegistry *Metrics = nullptr);

  /// Auto-flush threshold: drain after every \p N recorded events
  /// (0 = only explicit flushes). Default 4096.
  void flushEvery(size_t N) {
    StreamFlushN.store(N, std::memory_order_relaxed);
  }

  /// Drain all buffered events to the in-progress ".stream" file now.
  /// No-op (true) when streaming is off.
  ///
  /// Graceful degradation: a failed append *retains* the drained payload in
  /// an in-memory backlog (and truncates any torn tail off ".stream", so a
  /// later retry can never duplicate records). After
  /// StreamDegradeAfterFailures consecutive failures the sink stops
  /// touching the disk and accumulates in memory — the buffered-sink
  /// fallback — and finishStream() publishes everything with one atomic
  /// write. Events are never lost to an append failure, only durability of
  /// the in-progress file is.
  bool flushStream();

  /// Final drain + metric lines + durable rename to the armed path, then
  /// disarm. Returns false on I/O errors with the durable ".stream" (and
  /// the in-memory backlog) fully intact — finishStream() is retryable.
  bool finishStream();

  bool streaming() const {
    return StreamActive.load(std::memory_order_relaxed);
  }

  /// True once the streaming sink fell back to in-memory accumulation.
  bool streamDegraded();

private:
  TraceRecorder() = default;

  struct ThreadBuf {
    mutable std::mutex M; ///< uncontended except during drain/clear
    std::vector<TraceEvent> Events;
    uint64_t NextSeq = 0;
    uint32_t Tid = 0;
  };
  ThreadBuf &localBuf();

  /// Move all buffered events out, sorted by (Tid, Seq); buffers stay
  /// registered but empty. The shared core of flushStream().
  std::vector<TraceEvent> drain();

  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> EpochNs{0};

  mutable std::mutex RegistryM;
  std::vector<std::shared_ptr<ThreadBuf>> Buffers; ///< outlive their threads
  uint32_t NextTid = 0;

  // Streaming sink state. StreamM serializes flush/finish against each
  // other; the hot record() path only touches the two atomics.
  std::mutex StreamM;
  std::atomic<bool> StreamActive{false};
  std::atomic<size_t> StreamFlushN{4096};
  std::atomic<size_t> StreamPendingEvents{0};
  std::string StreamPath;                        ///< guarded by StreamM
  const MetricsRegistry *StreamMetrics = nullptr; ///< guarded by StreamM

  // Streaming-sink degradation state (all guarded by StreamM). The sink
  // trades bounded memory for correctness under I/O faults: failed-append
  // payloads are retained, and after enough consecutive failures the sink
  // becomes the buffered sink it was optimizing away.
  static constexpr size_t StreamDegradeAfterFailures = 3;
  std::string StreamBacklog;      ///< drained events a failed append kept
  size_t StreamGoodBytes = 0;     ///< bytes known durably in ".stream"
  size_t StreamConsecFailures = 0;
  bool StreamDegradedFlag = false;
  bool StreamMetricsAppended = false; ///< keeps retried finishes from
                                      ///< duplicating the metric lines
};

/// RAII span. Construct at region entry; args added before destruction land
/// on the Complete event. When tracing is disabled, construction is one
/// relaxed load and no clock is read.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name) {
    TraceRecorder &R = TraceRecorder::instance();
    if (R.enabled()) {
      Active = true;
      E.Name = Name;
      E.Phase = TracePhase::Complete;
      E.TsNs = R.nowNs();
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  ~TraceSpan() {
    if (!Active)
      return;
    TraceRecorder &R = TraceRecorder::instance();
    E.DurNs = R.nowNs() - E.TsNs;
    R.record(std::move(E));
  }

  bool active() const { return Active; }
  void arg(TraceArg A) {
    if (Active)
      E.Args.push_back(std::move(A));
  }
  void meta(TraceArg A) {
    if (Active)
      E.Meta.push_back(std::move(A));
  }

private:
  bool Active = false;
  TraceEvent E;
};

#define VERIOPT_TRACE_CAT2(A, B) A##B
#define VERIOPT_TRACE_CAT(A, B) VERIOPT_TRACE_CAT2(A, B)
/// Anonymous span covering the rest of the enclosing scope.
#define TRACE_SPAN(NAME)                                                       \
  ::veriopt::TraceSpan VERIOPT_TRACE_CAT(TraceSpan_, __LINE__)(NAME)

} // namespace veriopt

#endif // VERIOPT_TRACE_TRACE_H
