//===- Metrics.h - Counters, gauges and histograms ---------------*- C++ -*-=//
//
// A process-wide registry of named instruments, absorbing the ad-hoc stats
// that PR 1 and PR 2 hand-threaded through TrainLogEntry, PipelineArtifacts,
// VerifyCache::Counters and RobustVerifier::Counters into one queryable,
// serializable place. Instruments are created on first use and never
// removed (reset() zeroes values, so cached references stay valid — the
// intended hot-path idiom is a function-local
// `static Counter &C = MetricsRegistry::global().counter("...");`).
//
// Histograms use *fixed* bucket boundaries chosen at registration: the
// bucket layout is part of the documented schema (docs/OBSERVABILITY.md),
// so runs are comparable across PRs without re-binning.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_TRACE_METRICS_H
#define VERIOPT_TRACE_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace veriopt {

/// Monotonic event count.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written value.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Fixed-boundary histogram. Bucket i counts observations x with
/// x <= Bounds[i] (and > Bounds[i-1]); one implicit overflow bucket counts
/// x > Bounds.back(). Boundary values therefore land in the bucket they
/// bound (inclusive upper edge), matching Prometheus `le` semantics.
class Histogram {
public:
  explicit Histogram(std::vector<double> Bounds);

  void observe(double X);

  const std::vector<double> &bounds() const { return Bounds; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> counts() const;
  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const;
  void reset();

private:
  std::vector<double> Bounds; ///< strictly increasing
  std::vector<std::atomic<uint64_t>> BucketCounts;
  std::atomic<uint64_t> N{0};
  std::atomic<double> Sum{0};
};

/// Common fixed layouts (documented in docs/OBSERVABILITY.md).
std::vector<double> latencyMsBounds();     ///< 0.01ms .. ~10s, x4 steps
std::vector<double> workUnitBounds();      ///< 1 .. 4^12 units, x4 steps

class MetricsRegistry {
public:
  /// The process-wide registry the instrumentation reports into.
  static MetricsRegistry &global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// \p Bounds is consulted only on first registration; later calls with
  /// the same name return the existing instrument unchanged.
  Histogram &histogram(const std::string &Name, std::vector<double> Bounds);

  /// Zero every instrument, keeping registrations (cached references stay
  /// valid). Tests and back-to-back bench configs use this.
  void reset();

  struct HistogramSnapshot {
    std::vector<double> Bounds;
    std::vector<uint64_t> Counts; ///< Bounds.size() + 1 entries
    uint64_t Count = 0;
    double Sum = 0;
  };
  struct Snapshot {
    std::map<std::string, uint64_t> Counters;
    std::map<std::string, double> Gauges;
    std::map<std::string, HistogramSnapshot> Histograms;
  };
  Snapshot snapshot() const;

  /// Serialize a snapshot as one stable, sorted JSON object — the shared
  /// BENCH_*.json schema the benches emit (see docs/OBSERVABILITY.md).
  static std::string toJson(const Snapshot &S);
  std::string toJson() const { return toJson(snapshot()); }

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace veriopt

#endif // VERIOPT_TRACE_METRICS_H
