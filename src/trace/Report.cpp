//===- Report.cpp - Trace schema validation and run reports -------------------//

#include "trace/Report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace veriopt {

//===--- Loading --------------------------------------------------------------//

bool parseTraceJsonl(const std::string &Text, TraceLog &Out,
                     std::string *Err) {
  Out.Events.clear();
  size_t LineNo = 0, Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    JsonValue V;
    std::string JErr;
    if (!parseJson(Line, V, &JErr)) {
      if (Err)
        *Err = "line " + std::to_string(LineNo) + ": " + JErr;
      return false;
    }
    Out.Events.push_back(std::move(V));
  }
  return true;
}

bool loadTraceJsonl(const std::string &Path, TraceLog &Out,
                    std::string *Err) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  std::ostringstream SS;
  SS << IS.rdbuf();
  return parseTraceJsonl(SS.str(), Out, Err);
}

//===--- Validation -----------------------------------------------------------//

const std::vector<std::string> &knownTraceEventNames() {
  static const std::vector<std::string> Names = {
      "pipeline.run",     "pipeline.stage", "pipeline.checkpoint",
      "grpo.step",        "grpo.generate",  "grpo.score",
      "verify.candidate", "verify.falsify", "verify.encode",
      "verify.sat",       "verify.tier",    "batch.verify",
      "eval.run",         "eval.shard",     "eval.driver",
      "eval.worker",      "opt.rule_fire",  "metric",
      "metric.hist",
  };
  return Names;
}

namespace {

struct ArgRule {
  const char *Key;
  JsonValue::Kind Kind;
};

/// Per-event required args (the documented schema's mandatory subset;
/// events may carry more).
const std::map<std::string, std::vector<ArgRule>> &requiredArgs() {
  static const std::map<std::string, std::vector<ArgRule>> Rules = {
      {"pipeline.run", {{"seed", JsonValue::Kind::Number}}},
      {"pipeline.stage", {{"stage", JsonValue::Kind::String}}},
      {"grpo.step",
       {{"step", JsonValue::Kind::Number},
        {"mean_reward", JsonValue::Kind::Number},
        {"ema_reward", JsonValue::Kind::Number},
        {"equivalent_rate", JsonValue::Kind::Number}}},
      {"grpo.generate", {{"step", JsonValue::Kind::Number}}},
      {"grpo.score",
       {{"step", JsonValue::Kind::Number},
        {"rollouts", JsonValue::Kind::Number}}},
      {"verify.candidate",
       {{"status", JsonValue::Kind::String},
        {"diag", JsonValue::Kind::String},
        {"conflicts", JsonValue::Kind::Number},
        {"fuel", JsonValue::Kind::Number}}},
      {"verify.sat", {{"result", JsonValue::Kind::String}}},
      {"batch.verify",
       {{"candidates", JsonValue::Kind::Number},
        {"unique", JsonValue::Kind::Number},
        {"cached", JsonValue::Kind::Number},
        {"computed", JsonValue::Kind::Number}}},
      {"verify.tier",
       {{"tier", JsonValue::Kind::Number},
        {"status", JsonValue::Kind::String},
        {"diag", JsonValue::Kind::String}}},
      {"eval.run",
       {{"shards", JsonValue::Kind::Number},
        {"samples", JsonValue::Kind::Number}}},
      {"eval.shard",
       {{"shard", JsonValue::Kind::Number},
        {"begin", JsonValue::Kind::Number},
        {"end", JsonValue::Kind::Number},
        {"samples", JsonValue::Kind::Number}}},
      {"eval.driver",
       {{"shards", JsonValue::Kind::Number},
        {"spawned", JsonValue::Kind::Number},
        {"retried", JsonValue::Kind::Number},
        {"salvaged", JsonValue::Kind::Number},
        {"quarantined", JsonValue::Kind::Number}}},
      {"eval.worker",
       {{"shard", JsonValue::Kind::Number},
        {"attempt", JsonValue::Kind::Number},
        {"outcome", JsonValue::Kind::String}}},
      {"opt.rule_fire",
       {{"rule", JsonValue::Kind::String},
        {"count", JsonValue::Kind::Number}}},
      {"metric",
       {{"key", JsonValue::Kind::String},
        {"value", JsonValue::Kind::Number}}},
      {"metric.hist",
       {{"key", JsonValue::Kind::String},
        {"count", JsonValue::Kind::Number},
        {"sum", JsonValue::Kind::Number},
        {"bounds", JsonValue::Kind::String},
        {"counts", JsonValue::Kind::String}}},
  };
  return Rules;
}

bool validateEvent(const JsonValue &E, std::string &Why) {
  if (!E.isObject()) {
    Why = "event is not a JSON object";
    return false;
  }
  static const std::set<std::string> TopKeys = {
      "name", "ph", "ts_ns", "dur_ns", "tid", "seq", "args", "meta"};
  for (const auto &[K, _] : E.object())
    if (!TopKeys.count(K)) {
      Why = "unknown top-level field '" + K + "'";
      return false;
    }

  const JsonValue *Name = E.get("name");
  if (!Name || !Name->isString()) {
    Why = "missing/non-string 'name'";
    return false;
  }
  const auto &Known = knownTraceEventNames();
  if (std::find(Known.begin(), Known.end(), Name->str()) == Known.end()) {
    Why = "unknown event name '" + Name->str() + "'";
    return false;
  }

  const JsonValue *Ph = E.get("ph");
  if (!Ph || !Ph->isString() ||
      (Ph->str() != "X" && Ph->str() != "C" && Ph->str() != "i")) {
    Why = "'ph' must be one of \"X\", \"C\", \"i\"";
    return false;
  }
  for (const char *K : {"ts_ns", "tid", "seq"}) {
    const JsonValue *V = E.get(K);
    if (!V || !V->isNumber() || V->number() < 0) {
      Why = std::string("missing/negative numeric '") + K + "'";
      return false;
    }
  }
  if (Ph->str() == "X") {
    const JsonValue *Dur = E.get("dur_ns");
    if (!Dur || !Dur->isNumber() || Dur->number() < 0) {
      Why = "span (ph=X) without numeric 'dur_ns'";
      return false;
    }
  }
  const JsonValue *Args = E.get("args");
  if (!Args || !Args->isObject()) {
    Why = "missing 'args' object";
    return false;
  }
  if (const JsonValue *Meta = E.get("meta"))
    if (!Meta->isObject()) {
      Why = "'meta' is not an object";
      return false;
    }

  auto It = requiredArgs().find(Name->str());
  if (It != requiredArgs().end())
    for (const ArgRule &R : It->second) {
      const JsonValue *V = Args->get(R.Key);
      if (!V || V->kind() != R.Kind) {
        Why = "event '" + Name->str() + "' missing required arg '" + R.Key +
              "' of the documented type";
        return false;
      }
    }
  return true;
}

} // namespace

bool validateTraceLog(const TraceLog &Log, std::string *Err) {
  for (size_t I = 0; I < Log.Events.size(); ++I) {
    std::string Why;
    if (!validateEvent(Log.Events[I], Why)) {
      if (Err)
        *Err = "line " + std::to_string(I + 1) + ": " + Why;
      return false;
    }
  }
  return true;
}

//===--- Rendering ------------------------------------------------------------//

namespace {

std::string fmt(const char *F, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), F, V);
  return Buf;
}

double argNum(const JsonValue &E, const char *Key, double Default = 0) {
  const JsonValue *Args = E.get("args");
  if (!Args)
    return Default;
  const JsonValue *V = Args->get(Key);
  return V && V->isNumber() ? V->number() : Default;
}

std::string argStr(const JsonValue &E, const char *Key) {
  const JsonValue *Args = E.get("args");
  if (!Args)
    return "";
  const JsonValue *V = Args->get(Key);
  return V && V->isString() ? V->str() : "";
}

std::string name(const JsonValue &E) {
  const JsonValue *N = E.get("name");
  return N && N->isString() ? N->str() : "";
}

double durMs(const JsonValue &E) {
  const JsonValue *D = E.get("dur_ns");
  return D && D->isNumber() ? D->number() / 1e6 : 0;
}

/// Downsample \p Ys to \p Cols columns and render one ASCII row.
std::string sparkline(const std::vector<double> &Ys, size_t Cols = 48) {
  static const char Levels[] = " .:-=+*#@";
  const size_t NL = sizeof(Levels) - 2; // top index
  if (Ys.empty())
    return "";
  double Lo = Ys[0], Hi = Ys[0];
  for (double Y : Ys) {
    Lo = std::min(Lo, Y);
    Hi = std::max(Hi, Y);
  }
  size_t N = std::min(Cols, Ys.size());
  std::string Out;
  for (size_t C = 0; C < N; ++C) {
    // Mean of this column's slice.
    size_t B = C * Ys.size() / N, E = (C + 1) * Ys.size() / N;
    double Acc = 0;
    for (size_t I = B; I < E; ++I)
      Acc += Ys[I];
    Acc /= static_cast<double>(E - B);
    size_t Idx =
        Hi > Lo ? static_cast<size_t>((Acc - Lo) / (Hi - Lo) * NL + 0.5)
                : NL / 2;
    Out.push_back(Levels[std::min(Idx, NL)]);
  }
  return Out;
}

} // namespace

std::string renderRunReport(const TraceLog &Log, unsigned TopN) {
  std::ostringstream OS;

  // Pass over the log once, bucketing what the sections need.
  size_t Spans = 0, Counters = 0, Instants = 0;
  std::map<std::string, std::pair<uint64_t, double>> SpanAgg; // count, ms
  std::map<std::string, std::vector<const JsonValue *>> StepsByStage;
  std::map<std::pair<std::string, std::string>, uint64_t> Verdicts;
  uint64_t VerifyQueries = 0;
  std::vector<const JsonValue *> Candidates;
  std::map<int64_t, std::map<std::string, uint64_t>> TierOutcomes;
  std::map<std::string, double> Metric; // from "metric" lines
  std::map<std::string, uint64_t> RuleFires;
  std::vector<const JsonValue *> EvalRuns, EvalShards;
  std::vector<const JsonValue *> DriverRuns, DriverWorkers;

  for (const JsonValue &E : Log.Events) {
    const std::string N = name(E);
    const std::string Ph = E.get("ph") && E.get("ph")->isString()
                               ? E.get("ph")->str()
                               : "";
    if (Ph == "X") {
      ++Spans;
      auto &Agg = SpanAgg[N];
      ++Agg.first;
      Agg.second += durMs(E);
    } else if (Ph == "C") {
      ++Counters;
    } else {
      ++Instants;
    }

    if (N == "grpo.step") {
      std::string Stage = argStr(E, "stage");
      if (Stage.empty())
        Stage = "(unlabeled)";
      StepsByStage[Stage].push_back(&E);
    } else if (N == "verify.candidate") {
      ++VerifyQueries;
      ++Verdicts[{argStr(E, "status"), argStr(E, "diag")}];
      Candidates.push_back(&E);
    } else if (N == "verify.tier") {
      ++TierOutcomes[static_cast<int64_t>(argNum(E, "tier"))]
                    [argStr(E, "status")];
    } else if (N == "eval.run") {
      EvalRuns.push_back(&E);
    } else if (N == "eval.shard") {
      EvalShards.push_back(&E);
    } else if (N == "eval.driver") {
      DriverRuns.push_back(&E);
    } else if (N == "eval.worker") {
      DriverWorkers.push_back(&E);
    } else if (N == "metric") {
      Metric[argStr(E, "key")] = argNum(E, "value");
    } else if (N == "opt.rule_fire") {
      RuleFires[argStr(E, "rule")] +=
          static_cast<uint64_t>(argNum(E, "count"));
    }
  }

  OS << "================================================================\n"
     << "LLM-VeriOpt run report\n"
     << "================================================================\n\n";

  //--- Run summary ----------------------------------------------------------
  OS << "-- events --------------------------------------------------------\n";
  OS << "total " << Log.Events.size() << "  (spans " << Spans << ", counters "
     << Counters << ", instants " << Instants << ")\n";
  {
    std::vector<std::pair<std::string, std::pair<uint64_t, double>>> Rows(
        SpanAgg.begin(), SpanAgg.end());
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const auto &A, const auto &B) {
                       return A.second.second > B.second.second;
                     });
    for (const auto &[SpanName, Agg] : Rows)
      OS << "  " << SpanName
         << std::string(SpanName.size() < 24 ? 24 - SpanName.size() : 1, ' ')
         << "x" << Agg.first << "  total " << fmt("%.1f", Agg.second)
         << " ms\n";
  }
  OS << "\n";

  //--- Per-stage reward curves ----------------------------------------------
  OS << "-- GRPO reward curves (per stage) --------------------------------\n";
  if (StepsByStage.empty())
    OS << "no grpo.step events in this trace\n";
  for (auto &[Stage, Steps] : StepsByStage) {
    std::stable_sort(Steps.begin(), Steps.end(),
                     [](const JsonValue *A, const JsonValue *B) {
                       return argNum(*A, "step") < argNum(*B, "step");
                     });
    std::vector<double> Ema, Mean;
    for (const JsonValue *E : Steps) {
      Ema.push_back(argNum(*E, "ema_reward"));
      Mean.push_back(argNum(*E, "mean_reward"));
    }
    const JsonValue &Last = *Steps.back();
    OS << Stage << ": " << Steps.size() << " steps, mean reward "
       << fmt("%.3f", Mean.front()) << " -> " << fmt("%.3f", Mean.back())
       << ", final EMA " << fmt("%.3f", Ema.back()) << ", equivalent-rate "
       << fmt("%.1f%%", 100 * argNum(Last, "equivalent_rate")) << "\n";
    OS << "  ema  |" << sparkline(Ema) << "|\n";
    OS << "  mean |" << sparkline(Mean) << "|\n";
  }
  OS << "\n";

  //--- Verdict breakdown ----------------------------------------------------
  OS << "-- verification verdicts (uncached queries, by DiagKind) ---------\n";
  if (VerifyQueries == 0) {
    OS << "no verify.candidate events in this trace\n";
  } else {
    OS << "queries: " << VerifyQueries << "\n";
    std::vector<std::pair<std::pair<std::string, std::string>, uint64_t>>
        Rows(Verdicts.begin(), Verdicts.end());
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const auto &A, const auto &B) {
                       return A.second > B.second;
                     });
    for (const auto &[Key, Count] : Rows) {
      std::string Label = Key.first +
                          (Key.second.empty() || Key.second == "none"
                               ? ""
                               : " / " + Key.second);
      OS << "  " << Label
         << std::string(Label.size() < 36 ? 36 - Label.size() : 1, ' ')
         << Count << "  ("
         << fmt("%.1f%%", 100.0 * static_cast<double>(Count) /
                              static_cast<double>(VerifyQueries))
         << ")\n";
    }
  }
  OS << "\n";

  //--- Retry ladder ---------------------------------------------------------
  OS << "-- retry ladder --------------------------------------------------\n";
  if (TierOutcomes.empty()) {
    OS << "no verify.tier events in this trace\n";
  } else {
    for (const auto &[Tier, Outcomes] : TierOutcomes) {
      uint64_t Total = 0;
      for (const auto &[_, C] : Outcomes)
        Total += C;
      OS << "  tier " << Tier << ": " << Total << " runs";
      for (const auto &[Status, C] : Outcomes)
        OS << "  " << Status << "=" << C;
      OS << "\n";
    }
  }
  OS << "\n";

  //--- Slowest verification queries -----------------------------------------
  OS << "-- slowest verification queries ----------------------------------\n";
  if (Candidates.empty()) {
    OS << "none\n";
  } else {
    std::stable_sort(Candidates.begin(), Candidates.end(),
                     [](const JsonValue *A, const JsonValue *B) {
                       return durMs(*A) > durMs(*B);
                     });
    size_t N = std::min<size_t>(TopN, Candidates.size());
    for (size_t I = 0; I < N; ++I) {
      const JsonValue &E = *Candidates[I];
      OS << "  " << (I + 1) << ". " << fmt("%8.2f", durMs(E)) << " ms  "
         << argStr(E, "status") << "/" << argStr(E, "diag") << "  conflicts "
         << static_cast<uint64_t>(argNum(E, "conflicts")) << "  fuel "
         << static_cast<uint64_t>(argNum(E, "fuel")) << "\n";
    }
  }
  OS << "\n";

  //--- Cache efficacy -------------------------------------------------------
  OS << "-- verify-cache efficacy -----------------------------------------\n";
  {
    auto M = [&](const char *K) {
      auto It = Metric.find(K);
      return It == Metric.end() ? 0.0 : It->second;
    };
    double Hits = M("verify.cache.hit"), Misses = M("verify.cache.miss");
    if (Hits + Misses == 0) {
      OS << "no cache metrics in this trace\n";
    } else {
      OS << "  lookups " << static_cast<uint64_t>(Hits + Misses) << "  hits "
         << static_cast<uint64_t>(Hits) << "  misses "
         << static_cast<uint64_t>(Misses) << "  hit-rate "
         << fmt("%.1f%%", 100.0 * Hits / (Hits + Misses)) << "\n";
      OS << "  single-flight joins "
         << static_cast<uint64_t>(M("verify.cache.singleflight_join"))
         << "  evictions " << static_cast<uint64_t>(M("verify.cache.eviction"))
         << "\n";
    }
  }
  OS << "\n";

  //--- Batched verification efficacy ----------------------------------------
  OS << "-- batch verification efficacy -----------------------------------\n";
  {
    auto M = [&](const char *K) {
      auto It = Metric.find(K);
      return It == Metric.end() ? 0.0 : It->second;
    };
    double Groups = M("batch.groups");
    if (Groups == 0) {
      OS << "no batch.* metrics in this trace (BatchVerify off or no cache)\n";
    } else {
      double Cands = M("batch.candidates"), Uniq = M("batch.unique");
      double Hits = M("batch.cache_hits"), Comp = M("batch.computed");
      OS << "  groups " << static_cast<uint64_t>(Groups) << "  candidates "
         << static_cast<uint64_t>(Cands) << "  unique "
         << static_cast<uint64_t>(Uniq) << "  (dedupe saved "
         << static_cast<uint64_t>(Cands - Uniq) << ")\n";
      OS << "  ladder rungs: computed " << static_cast<uint64_t>(Comp)
         << "  served-from-cache " << static_cast<uint64_t>(Hits) << "\n";
      OS << "  assumption solves "
         << static_cast<uint64_t>(M("smt.assumption_solves"))
         << "  clauses inherited "
         << static_cast<uint64_t>(M("smt.clauses_retained"))
         << "  encode CSE hits "
         << static_cast<uint64_t>(M("encode.cse_hits")) << "\n";
    }
  }
  OS << "\n";

  //--- Sharded evaluation ---------------------------------------------------
  OS << "-- sharded evaluation --------------------------------------------\n";
  if (EvalShards.empty()) {
    OS << "no eval.shard events in this trace\n";
  } else {
    for (const JsonValue *Run : EvalRuns)
      OS << "  run: shards " << static_cast<uint64_t>(argNum(*Run, "shards"))
         << "  samples " << static_cast<uint64_t>(argNum(*Run, "samples"))
         << "  correct " << static_cast<uint64_t>(argNum(*Run, "correct"))
         << "  inconclusive "
         << static_cast<uint64_t>(argNum(*Run, "inconclusive")) << "  ("
         << fmt("%.1f", durMs(*Run)) << " ms total)\n";
    std::stable_sort(EvalShards.begin(), EvalShards.end(),
                     [](const JsonValue *A, const JsonValue *B) {
                       return argNum(*A, "shard") < argNum(*B, "shard");
                     });
    for (const JsonValue *E : EvalShards)
      OS << "  shard " << static_cast<uint64_t>(argNum(*E, "shard")) << "  ["
         << static_cast<uint64_t>(argNum(*E, "begin")) << ", "
         << static_cast<uint64_t>(argNum(*E, "end")) << ")  samples "
         << static_cast<uint64_t>(argNum(*E, "samples")) << "  correct "
         << static_cast<uint64_t>(argNum(*E, "correct")) << "  inconclusive "
         << static_cast<uint64_t>(argNum(*E, "inconclusive")) << "  "
         << fmt("%.1f", durMs(*E)) << " ms\n";
  }
  OS << "\n";

  //--- Evaluation driver (multi-process) ------------------------------------
  OS << "-- evaluation driver (multi-process) -----------------------------\n";
  if (DriverRuns.empty()) {
    OS << "no eval.driver events in this trace\n";
  } else {
    for (const JsonValue *Run : DriverRuns)
      OS << "  run: shards " << static_cast<uint64_t>(argNum(*Run, "shards"))
         << "  spawned " << static_cast<uint64_t>(argNum(*Run, "spawned"))
         << "  retried " << static_cast<uint64_t>(argNum(*Run, "retried"))
         << "  salvaged " << static_cast<uint64_t>(argNum(*Run, "salvaged"))
         << "  quarantined "
         << static_cast<uint64_t>(argNum(*Run, "quarantined")) << "  ("
         << fmt("%.1f", durMs(*Run)) << " ms total)\n";
    // Worker launches bucketed by typed outcome: the fleet's failure mix
    // at a glance.
    std::map<std::string, uint64_t> Outcomes;
    for (const JsonValue *W : DriverWorkers)
      ++Outcomes[argStr(*W, "outcome")];
    for (const auto &[Outcome, Count] : Outcomes)
      OS << "  workers " << Outcome
         << std::string(Outcome.size() < 24 ? 24 - Outcome.size() : 1, ' ')
         << Count << "\n";
  }
  OS << "\n";

  //--- InstCombine rule fires -----------------------------------------------
  OS << "-- instcombine rule fires ----------------------------------------\n";
  if (RuleFires.empty()) {
    OS << "no opt.rule_fire events in this trace\n";
  } else {
    std::vector<std::pair<std::string, uint64_t>> Rows(RuleFires.begin(),
                                                       RuleFires.end());
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const auto &A, const auto &B) {
                       return A.second > B.second;
                     });
    size_t N = std::min<size_t>(TopN, Rows.size());
    for (size_t I = 0; I < N; ++I)
      OS << "  " << Rows[I].first
         << std::string(Rows[I].first.size() < 28 ? 28 - Rows[I].first.size()
                                                  : 1,
                        ' ')
         << Rows[I].second << "\n";
  }

  return OS.str();
}

} // namespace veriopt
