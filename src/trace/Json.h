//===- Json.h - Minimal JSON reader/writer helpers ---------------*- C++ -*-=//
//
// A small, dependency-free JSON layer for the observability subsystem: the
// JSONL/Chrome sinks need escaping-correct serialization, and the report
// renderer + schema validator need to read the files back. Covers the full
// JSON grammar except scientific-notation corner cases beyond what
// strtod handles (i.e. all of them in practice).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_TRACE_JSON_H
#define VERIOPT_TRACE_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace veriopt {

/// Escape \p S for inclusion inside a JSON string literal (no surrounding
/// quotes). Control characters become \uXXXX; the output is plain ASCII for
/// ASCII input and passes non-ASCII bytes through (valid for UTF-8 input).
std::string jsonEscape(const std::string &S);

/// Quote + escape.
inline std::string jsonString(const std::string &S) {
  return "\"" + jsonEscape(S) + "\"";
}

/// Serialize a double so it round-trips and stays valid JSON (no inf/nan —
/// those clamp to the largest finite double, keeping writers total).
std::string jsonNumber(double V);

/// A parsed JSON value.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  int64_t asInt() const { return static_cast<int64_t>(Num); }
  const std::string &str() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::map<std::string, JsonValue> &object() const { return Obj; }

  /// Object member access; null pointer when absent or not an object.
  const JsonValue *get(const std::string &Key) const;

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// Parse one JSON document. Returns false (with a position-carrying message
/// in \p Err) on malformed input or trailing garbage.
bool parseJson(const std::string &Text, JsonValue &Out, std::string *Err);

} // namespace veriopt

#endif // VERIOPT_TRACE_JSON_H
