//===- Json.cpp - Minimal JSON reader/writer helpers --------------------------//

#include "trace/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace veriopt {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  return Out;
}

std::string jsonNumber(double V) {
  if (std::isnan(V))
    V = 0;
  if (std::isinf(V))
    V = V > 0 ? std::numeric_limits<double>::max()
              : std::numeric_limits<double>::lowest();
  // Integral values print without a fraction so integer-valued fields stay
  // visually integral in the JSONL.
  if (V == static_cast<double>(static_cast<int64_t>(V)) &&
      std::fabs(V) < 9.0e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(V)));
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Obj.find(Key);
  return It == Obj.end() ? nullptr : &It->second;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text) : S(Text) {}

  bool parse(JsonValue &Out, std::string *Err) {
    skipWs();
    if (!value(Out))
      return fail(Err);
    skipWs();
    if (Pos != S.size()) {
      Msg = "trailing characters";
      return fail(Err);
    }
    return true;
  }

private:
  bool fail(std::string *Err) {
    if (Msg.empty())
      return true; // parse succeeded
    if (Err)
      *Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = std::char_traits<char>::length(Lit);
    if (S.compare(Pos, N, Lit) != 0) {
      Msg = std::string("expected '") + Lit + "'";
      return false;
    }
    Pos += N;
    return true;
  }

  bool value(JsonValue &Out) {
    if (Pos >= S.size()) {
      Msg = "unexpected end of input";
      return false;
    }
    switch (S[Pos]) {
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return literal("false");
    case '"':
      Out.K = JsonValue::Kind::String;
      return string(Out.Str);
    case '[':
      return array(Out);
    case '{':
      return object(Out);
    default:
      return number(Out);
    }
  }

  bool number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      Msg = "expected a value";
      return false;
    }
    std::string Tok = S.substr(Start, Pos - Start);
    char *End = nullptr;
    double V = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size()) {
      Msg = "malformed number";
      Pos = Start;
      return false;
    }
    Out.K = JsonValue::Kind::Number;
    Out.Num = V;
    return true;
  }

  bool hex4(unsigned &Out) {
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      if (Pos >= S.size()) {
        Msg = "truncated \\u escape";
        return false;
      }
      char C = S[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else {
        Msg = "bad \\u escape digit";
        return false;
      }
    }
    return true;
  }

  void appendUtf8(std::string &Out, unsigned CP) {
    if (CP < 0x80) {
      Out.push_back(static_cast<char>(CP));
    } else if (CP < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (CP >> 6)));
      Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xE0 | (CP >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
    }
  }

  bool string(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (Pos >= S.size()) {
        Msg = "unterminated string";
        return false;
      }
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= S.size()) {
        Msg = "unterminated escape";
        return false;
      }
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        unsigned CP;
        if (!hex4(CP))
          return false;
        appendUtf8(Out, CP); // surrogate pairs unneeded for our schema
        break;
      }
      default:
        Msg = "unknown escape";
        return false;
      }
    }
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue Elt;
      skipWs();
      if (!value(Elt))
        return false;
      Out.Arr.push_back(std::move(Elt));
      skipWs();
      if (Pos >= S.size()) {
        Msg = "unterminated array";
        return false;
      }
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      Msg = "expected ',' or ']'";
      return false;
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"') {
        Msg = "expected object key";
        return false;
      }
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':') {
        Msg = "expected ':'";
        return false;
      }
      ++Pos;
      skipWs();
      JsonValue V;
      if (!value(V))
        return false;
      Out.Obj.emplace(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= S.size()) {
        Msg = "unterminated object";
        return false;
      }
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      Msg = "expected ',' or '}'";
      return false;
    }
  }

  const std::string &S;
  size_t Pos = 0;
  std::string Msg;
};

} // namespace

bool parseJson(const std::string &Text, JsonValue &Out, std::string *Err) {
  return Parser(Text).parse(Out, Err);
}

} // namespace veriopt
