//===- Trace.cpp - Structured tracing for the training runtime ----------------//

#include "trace/Trace.h"

#include "support/AtomicFile.h"
#include "trace/Json.h"
#include "trace/Metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include <unistd.h>

namespace veriopt {

// Durability-plane instruments ("io." prefix: excluded from the
// deterministic trace plane, docs/OBSERVABILITY.md).
static Counter &streamAppendFailuresCounter() {
  static Counter &C =
      MetricsRegistry::global().counter("io.trace.append_failures");
  return C;
}
static Gauge &streamDegradedGauge() {
  static Gauge &G = MetricsRegistry::global().gauge("io.trace.degraded");
  return G;
}

TraceRecorder &TraceRecorder::instance() {
  static TraceRecorder R;
  return R;
}

static uint64_t steadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceRecorder::enable() {
  EpochNs.store(steadyNs(), std::memory_order_relaxed);
  Enabled.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  Enabled.store(false, std::memory_order_release);
}

uint64_t TraceRecorder::nowNs() const {
  return steadyNs() - EpochNs.load(std::memory_order_relaxed);
}

TraceRecorder::ThreadBuf &TraceRecorder::localBuf() {
  // The shared_ptr in the registry keeps the buffer alive after the thread
  // exits, so a drain after a ThreadPool worker died still sees its events.
  thread_local std::shared_ptr<ThreadBuf> Local;
  if (!Local) {
    Local = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> L(RegistryM);
    Local->Tid = NextTid++;
    Buffers.push_back(Local);
  }
  return *Local;
}

void TraceRecorder::record(TraceEvent E) {
  if (!enabled())
    return;
  ThreadBuf &B = localBuf();
  {
    std::lock_guard<std::mutex> L(B.M); // uncontended except during drain
    E.Tid = B.Tid;
    E.Seq = B.NextSeq++;
    B.Events.push_back(std::move(E));
  }
  // Streaming sink back-pressure: drain once the process-wide pending count
  // crosses the threshold. Checked outside the buffer lock (flushStream
  // re-acquires every buffer's lock); the count is approximate under
  // concurrency, which only moves a flush boundary — never loses an event.
  if (StreamActive.load(std::memory_order_relaxed)) {
    size_t N = StreamFlushN.load(std::memory_order_relaxed);
    if (N &&
        StreamPendingEvents.fetch_add(1, std::memory_order_relaxed) + 1 >= N)
      flushStream();
  }
}

void TraceRecorder::instant(std::string Name, std::vector<TraceArg> Args) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Phase = TracePhase::Instant;
  E.Args = std::move(Args);
  E.TsNs = nowNs();
  record(std::move(E));
}

void TraceRecorder::counter(std::string Name, std::vector<TraceArg> Args) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Phase = TracePhase::Counter;
  E.Args = std::move(Args);
  E.TsNs = nowNs();
  record(std::move(E));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  {
    std::lock_guard<std::mutex> L(RegistryM);
    Bufs = Buffers;
  }
  std::vector<TraceEvent> Out;
  for (const auto &B : Bufs) {
    std::lock_guard<std::mutex> L(B->M);
    Out.insert(Out.end(), B->Events.begin(), B->Events.end());
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.Tid != B.Tid ? A.Tid < B.Tid : A.Seq < B.Seq;
                   });
  return Out;
}

void TraceRecorder::clear() {
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  {
    std::lock_guard<std::mutex> L(RegistryM);
    Bufs = Buffers;
  }
  for (const auto &B : Bufs) {
    std::lock_guard<std::mutex> L(B->M);
    B->Events.clear();
  }
}

std::vector<TraceEvent> TraceRecorder::drain() {
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  {
    std::lock_guard<std::mutex> L(RegistryM);
    Bufs = Buffers;
  }
  std::vector<TraceEvent> Out;
  for (const auto &B : Bufs) {
    std::lock_guard<std::mutex> L(B->M);
    Out.insert(Out.end(), std::make_move_iterator(B->Events.begin()),
               std::make_move_iterator(B->Events.end()));
    B->Events.clear();
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.Tid != B.Tid ? A.Tid < B.Tid : A.Seq < B.Seq;
                   });
  return Out;
}

size_t TraceRecorder::eventCount() const {
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  {
    std::lock_guard<std::mutex> L(RegistryM);
    Bufs = Buffers;
  }
  size_t N = 0;
  for (const auto &B : Bufs) {
    std::lock_guard<std::mutex> L(B->M);
    N += B->Events.size();
  }
  return N;
}

//===--- Serialization --------------------------------------------------------//

static void appendArgValue(std::string &Out, const TraceArg &A) {
  switch (A.K) {
  case TraceArg::Kind::Int:
    Out += std::to_string(A.I);
    break;
  case TraceArg::Kind::Float:
    Out += jsonNumber(A.F);
    break;
  case TraceArg::Kind::Str:
    Out += jsonString(A.S);
    break;
  case TraceArg::Kind::Bool:
    Out += A.I ? "true" : "false";
    break;
  }
}

static void appendArgObject(std::string &Out,
                            const std::vector<TraceArg> &Args) {
  Out.push_back('{');
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out.push_back(',');
    Out += jsonString(Args[I].Key);
    Out.push_back(':');
    appendArgValue(Out, Args[I]);
  }
  Out.push_back('}');
}

/// One JSONL line (no trailing newline). The field set is the documented
/// schema: name/ph/args are the deterministic plane; ts_ns/dur_ns/tid/seq
/// the timing plane; meta (optional) the declared-nondeterministic plane.
static std::string eventToJsonl(const TraceEvent &E) {
  std::string Out = "{\"name\":" + jsonString(E.Name) + ",\"ph\":\"";
  Out.push_back(static_cast<char>(E.Phase));
  Out += "\",\"ts_ns\":" + std::to_string(E.TsNs);
  if (E.Phase == TracePhase::Complete)
    Out += ",\"dur_ns\":" + std::to_string(E.DurNs);
  Out += ",\"tid\":" + std::to_string(E.Tid) +
         ",\"seq\":" + std::to_string(E.Seq) + ",\"args\":";
  appendArgObject(Out, E.Args);
  if (!E.Meta.empty()) {
    Out += ",\"meta\":";
    appendArgObject(Out, E.Meta);
  }
  Out.push_back('}');
  return Out;
}

static std::string joinNums(const std::vector<double> &Xs) {
  std::string Out;
  for (size_t I = 0; I < Xs.size(); ++I) {
    if (I)
      Out.push_back(',');
    Out += jsonNumber(Xs[I]);
  }
  return Out;
}

static std::string joinCounts(const std::vector<uint64_t> &Xs) {
  std::string Out;
  for (size_t I = 0; I < Xs.size(); ++I) {
    if (I)
      Out.push_back(',');
    Out += std::to_string(Xs[I]);
  }
  return Out;
}

static void appendMetricsLines(std::string &Out,
                               const MetricsRegistry &Metrics) {
  MetricsRegistry::Snapshot S = Metrics.snapshot();
  for (const auto &[Name, V] : S.Counters) {
    TraceEvent E;
    E.Name = "metric";
    E.Phase = TracePhase::Counter;
    E.Args.push_back(TraceArg::ofStr("key", Name));
    E.Args.push_back(TraceArg::ofInt("value", static_cast<int64_t>(V)));
    Out += eventToJsonl(E);
    Out.push_back('\n');
  }
  for (const auto &[Name, V] : S.Gauges) {
    TraceEvent E;
    E.Name = "metric";
    E.Phase = TracePhase::Counter;
    E.Args.push_back(TraceArg::ofStr("key", Name));
    E.Args.push_back(TraceArg::ofFloat("value", V));
    Out += eventToJsonl(E);
    Out.push_back('\n');
  }
  for (const auto &[Name, H] : S.Histograms) {
    TraceEvent E;
    E.Name = "metric.hist";
    E.Phase = TracePhase::Counter;
    E.Args.push_back(TraceArg::ofStr("key", Name));
    E.Args.push_back(TraceArg::ofInt("count", static_cast<int64_t>(H.Count)));
    E.Args.push_back(TraceArg::ofFloat("sum", H.Sum));
    E.Args.push_back(TraceArg::ofStr("bounds", joinNums(H.Bounds)));
    E.Args.push_back(TraceArg::ofStr("counts", joinCounts(H.Counts)));
    Out += eventToJsonl(E);
    Out.push_back('\n');
  }
}

// File emission goes through the shared atomic+durable helper
// (support/AtomicFile.h, compiled into this bottom layer): a kill — or a
// power loss — mid-write leaves the previous file (or nothing), never a
// torn or renamed-but-empty JSONL.

bool TraceRecorder::writeJsonl(const std::string &Path,
                               const MetricsRegistry *Metrics) const {
  std::string Payload;
  for (const TraceEvent &E : snapshot()) {
    Payload += eventToJsonl(E);
    Payload.push_back('\n');
  }
  if (Metrics)
    appendMetricsLines(Payload, *Metrics);
  return writeFileAtomic(Path, Payload);
}

//===--- Streaming sink -------------------------------------------------------//

bool TraceRecorder::streamTo(const std::string &Path,
                             const MetricsRegistry *Metrics) {
  std::lock_guard<std::mutex> L(StreamM);
  // Truncate-create the in-progress file up front so finishStream() always
  // has something to publish, even for an event-free run.
  std::ofstream F(Path + ".stream", std::ios::binary | std::ios::trunc);
  if (!F.good())
    return false;
  F.close();
  StreamPath = Path;
  StreamMetrics = Metrics;
  StreamBacklog.clear();
  StreamGoodBytes = 0;
  StreamConsecFailures = 0;
  StreamDegradedFlag = false;
  StreamMetricsAppended = false;
  StreamPendingEvents.store(0, std::memory_order_relaxed);
  StreamActive.store(true, std::memory_order_relaxed);
  return true;
}

bool TraceRecorder::streamDegraded() {
  std::lock_guard<std::mutex> L(StreamM);
  return StreamDegradedFlag;
}

bool TraceRecorder::flushStream() {
  std::lock_guard<std::mutex> L(StreamM);
  if (!StreamActive.load(std::memory_order_relaxed))
    return true;
  StreamPendingEvents.store(0, std::memory_order_relaxed);
  std::string Payload;
  for (const TraceEvent &E : drain()) {
    Payload += eventToJsonl(E);
    Payload.push_back('\n');
  }
  if (StreamDegradedFlag) {
    // Buffered-sink fallback: the disk stopped accepting appends, so
    // accumulate in memory and let finishStream() publish everything with
    // one atomic write. No event is lost, only incremental durability.
    StreamBacklog += Payload;
    return true;
  }
  if (Payload.empty() && StreamBacklog.empty())
    return true;
  // Durable append (support/AtomicFile.h): a crash mid-run loses at most
  // the unflushed tail, and the ".stream" name keeps a partial file from
  // being mistaken for a complete trace. Any backlog a previous failed
  // flush retained goes first so file order stays drain order.
  std::string Attempt = std::move(StreamBacklog) + Payload;
  StreamBacklog.clear();
  if (appendFileDurable(StreamPath + ".stream", Attempt)) {
    StreamGoodBytes += Attempt.size();
    StreamConsecFailures = 0;
    return true;
  }
  // Retain the payload — a later flush or the finish will carry it — and
  // truncate any torn tail the failed write left, so retrying the retained
  // payload can never duplicate records in the file. Raw ::truncate on
  // purpose: this is the repair path, not a fault-injection site.
  ::truncate((StreamPath + ".stream").c_str(),
             static_cast<off_t>(StreamGoodBytes));
  StreamBacklog = std::move(Attempt);
  streamAppendFailuresCounter().inc();
  if (++StreamConsecFailures >= StreamDegradeAfterFailures) {
    StreamDegradedFlag = true;
    streamDegradedGauge().set(1);
  }
  return false;
}

bool TraceRecorder::finishStream() {
  // A failed incremental flush is not fatal here: the payload it retained
  // in the backlog is exactly what the degraded publish below carries.
  flushStream();
  std::lock_guard<std::mutex> L(StreamM);
  if (!StreamActive.load(std::memory_order_relaxed))
    return true;
  const std::string StreamFile = StreamPath + ".stream";

  if (StreamDegradedFlag || !StreamBacklog.empty()) {
    // Buffered fallback: the in-progress file stopped accepting appends.
    // Publish everything in one atomic write — the known-good prefix
    // already durable in ".stream", the retained backlog, and the metric
    // lines — so the final artifact is still complete and untorn.
    std::string Payload;
    if (StreamGoodBytes) {
      std::ifstream F(StreamFile, std::ios::binary);
      std::string Good(StreamGoodBytes, '\0');
      if (F.read(&Good[0], static_cast<std::streamsize>(StreamGoodBytes)))
        Payload = std::move(Good);
      // Unreadable prefix: publish what the backlog still holds rather
      // than nothing — degradation is best-effort by definition.
    }
    Payload += StreamBacklog;
    if (StreamMetrics && !StreamMetricsAppended)
      appendMetricsLines(Payload, *StreamMetrics);
    if (!writeFileAtomic(StreamPath, Payload))
      return false; // ".stream" and backlog intact; finish is retryable
    std::remove(StreamFile.c_str()); // best-effort tidy-up
  } else {
    if (StreamMetrics && !StreamMetricsAppended) {
      std::string Tail;
      appendMetricsLines(Tail, *StreamMetrics);
      if (!Tail.empty()) {
        if (!appendFileDurable(StreamFile, Tail)) {
          // Same repair as flushStream: drop any torn tail so a retried
          // finish cannot duplicate the metric lines.
          ::truncate(StreamFile.c_str(),
                     static_cast<off_t>(StreamGoodBytes));
          streamAppendFailuresCounter().inc();
          return false;
        }
        StreamGoodBytes += Tail.size();
      }
      StreamMetricsAppended = true;
    }
    // The append path already fsync'ed the data; publishing is the back
    // half of the atomic-replace discipline (rename + parent fsync). On
    // failure ".stream" is intact and loadable and finishStream() can be
    // retried.
    if (!publishFileDurable(StreamFile, StreamPath))
      return false;
  }

  StreamActive.store(false, std::memory_order_relaxed);
  StreamPath.clear();
  StreamMetrics = nullptr;
  StreamBacklog.clear();
  StreamGoodBytes = 0;
  StreamConsecFailures = 0;
  StreamDegradedFlag = false;
  StreamMetricsAppended = false;
  return true;
}

bool TraceRecorder::writeChromeTrace(const std::string &Path) const {
  std::string Payload = "{\"traceEvents\":[\n";
  bool First = true;
  for (const TraceEvent &E : snapshot()) {
    if (!First)
      Payload += ",\n";
    First = false;
    std::string Line = "{\"name\":" + jsonString(E.Name) + ",\"ph\":\"";
    Line.push_back(static_cast<char>(E.Phase));
    // Chrome traces use microsecond floats.
    Line += "\",\"pid\":1,\"tid\":" + std::to_string(E.Tid) +
            ",\"ts\":" + jsonNumber(static_cast<double>(E.TsNs) / 1000.0);
    if (E.Phase == TracePhase::Complete)
      Line += ",\"dur\":" + jsonNumber(static_cast<double>(E.DurNs) / 1000.0);
    Line += ",\"args\":";
    std::vector<TraceArg> All = E.Args;
    All.insert(All.end(), E.Meta.begin(), E.Meta.end());
    appendArgObject(Line, All);
    Line.push_back('}');
    Payload += Line;
  }
  Payload += "\n]}\n";
  return writeFileAtomic(Path, Payload);
}

} // namespace veriopt
