//===- Report.h - Trace schema validation and run reports --------*- C++ -*-=//
//
// Loads a run's JSONL trace (TraceRecorder::writeJsonl output), validates
// it against the documented schema (docs/OBSERVABILITY.md — field types,
// the known-event-name registry, and per-event required args), and renders
// the human-readable end-of-run report: per-stage reward curves, verdict
// breakdown by DiagKind, the retry-ladder summary, top-N slowest
// verification queries, cache efficacy, and InstCombine rule-fire counts.
//
// Lives in the library (not the tool) so tests can golden-file the
// rendering and CI can validate without shelling out.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_TRACE_REPORT_H
#define VERIOPT_TRACE_REPORT_H

#include "trace/Json.h"

#include <string>
#include <vector>

namespace veriopt {

/// A parsed trace: one JsonValue per JSONL line, in file order.
struct TraceLog {
  std::vector<JsonValue> Events;
};

/// Parse JSONL text into \p Out. Fails on the first malformed line.
bool parseTraceJsonl(const std::string &Text, TraceLog &Out,
                     std::string *Err);

/// Read + parse a JSONL file.
bool loadTraceJsonl(const std::string &Path, TraceLog &Out, std::string *Err);

/// Validate every event against the documented schema. On failure \p Err
/// names the first offending line (1-based) and the violated rule.
bool validateTraceLog(const TraceLog &Log, std::string *Err);

/// The documented event-name registry (validation rejects unknown names so
/// schema drift fails CI instead of rotting silently).
const std::vector<std::string> &knownTraceEventNames();

/// Render the end-of-run report. Deterministic for a given log: wall-clock
/// values are read from the events, never from the environment.
std::string renderRunReport(const TraceLog &Log, unsigned TopN = 10);

} // namespace veriopt

#endif // VERIOPT_TRACE_REPORT_H
