//===- CostModel.cpp - Latency / ICount / binary-size models -----------------//

#include "cost/CostModel.h"

#include "ir/Function.h"

namespace veriopt {

double opcodeLatency(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::ICmp:
  case Opcode::Select:
    return 1.0;
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
    return 1.0; // ubfx/sxtw-style single ops
  case Opcode::Mul:
    return 3.0; // madd latency class
  case Opcode::UDiv:
  case Opcode::SDiv:
    return 12.0; // sdiv/udiv on Cortex-class cores
  case Opcode::URem:
  case Opcode::SRem:
    return 15.0; // div + msub
  case Opcode::Alloca:
    return 0.0; // folded into frame setup
  case Opcode::Load:
    return 4.0; // L1 hit
  case Opcode::Store:
    return 1.0; // fire-and-forget into the store buffer
  case Opcode::GEP:
    return 1.0; // address arithmetic
  case Opcode::Phi:
    return 0.0; // resolved by copies already counted at edges
  case Opcode::Br:
    return 1.0;
  case Opcode::Ret:
    return 1.0;
  case Opcode::Call:
    return 10.0; // fixed call overhead; the callee is external
  }
  return 1.0;
}

double instructionLatency(const Instruction &I) {
  double Base = opcodeLatency(I.getOpcode());
  // Folding a constant GEP offset into the addressing mode is free.
  if (I.getOpcode() == Opcode::GEP &&
      isa<ConstantInt>(cast<GEPInst>(&I)->getOffset()))
    return 0.0;
  return Base;
}

double estimateLatency(const Function &F) {
  double Sum = 0;
  for (const auto &BB : F)
    for (const auto &I : *BB)
      Sum += instructionLatency(*I);
  return Sum;
}

unsigned instructionCount(const Function &F) {
  return F.instructionCount();
}

namespace {

/// Encoded machine-code bytes for one IR instruction.
unsigned encodedBytes(const Instruction &I) {
  switch (I.getOpcode()) {
  case Opcode::Alloca:
    return 0; // becomes part of one sub-sp in the prologue
  case Opcode::Phi:
    return 0; // copies accounted at branch sites
  case Opcode::URem:
  case Opcode::SRem:
    return 8; // div + msub pair
  case Opcode::Call:
    return 8; // bl + argument marshalling estimate
  case Opcode::GEP:
    if (isa<ConstantInt>(cast<GEPInst>(&I)->getOffset()))
      return 0; // folds into the load/store addressing mode
    return 4;
  case Opcode::Select:
    return 4; // csel
  default:
    break;
  }
  // Wide immediates need a movz/movk pair.
  if (I.isBinaryOp()) {
    if (auto *C = dyn_cast<ConstantInt>(cast<BinaryInst>(&I)->getRHS()))
      if (C->getValue().zext() > 0xFFF && !C->getValue().isAllOnes())
        return 8;
  }
  return 4;
}

} // namespace

unsigned binarySize(const Function &F) {
  unsigned Bytes = 8; // prologue/epilogue skeleton
  for (const auto &BB : F)
    for (const auto &I : *BB)
      Bytes += encodedBytes(*I);
  return Bytes;
}

} // namespace veriopt
