//===- CostModel.h - Latency / ICount / binary-size models -------*- C++ -*-=//
//
// The paper's three efficiency metrics (§IV-C):
//  - Estimated latency: per-instruction latency on an AArch64-flavoured
//    model (stand-in for LLVM's getInstructionCost(TCK_Latency)), summed
//    over the whole function.
//  - Instruction count: number of IR instructions.
//  - Binary size: estimated encoded bytes of .text+.data, following the
//    LLM-Compiler methodology of excluding .bss.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_COST_COSTMODEL_H
#define VERIOPT_COST_COSTMODEL_H

#include "ir/Instruction.h"

#include <cstdint>

namespace veriopt {

class Function;

/// Per-instruction latency in abstract cycles (AArch64-flavoured: cheap ALU
/// ops 1, multiplies 3, divisions 10+, memory 4, branches 1).
double instructionLatency(const Instruction &I);

/// Latency weight for an opcode with default operand assumptions (used by
/// the interpreter's dynamic accounting).
double opcodeLatency(Opcode Op);

/// Static estimated latency of a function: sum of instructionLatency over
/// every instruction (the paper's module-level TCK_Latency sum).
double estimateLatency(const Function &F);

/// IR instruction count.
unsigned instructionCount(const Function &F);

/// Estimated binary size in bytes (.text + .data equivalent): fixed 4-byte
/// AArch64 encodings, with expansions for instructions that need more than
/// one machine op (wide immediates, division guards) and no bytes for IR
/// artifacts that vanish at selection (allocas fold into the frame).
unsigned binarySize(const Function &F);

} // namespace veriopt

#endif // VERIOPT_COST_COSTMODEL_H
