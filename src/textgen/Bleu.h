//===- Bleu.h - IR tokenization and BLEU similarity --------------*- C++ -*-=//
//
// BLEU-4 with brevity penalty (Papineni et al.), over a whitespace/
// punctuation-aware IR tokenizer. Used as the b_i shaping term of the
// paper's reward Eq. (1) and as the diagnostic-similarity term of the CoT
// reward Eq. (2).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_TEXTGEN_BLEU_H
#define VERIOPT_TEXTGEN_BLEU_H

#include <string>
#include <vector>

namespace veriopt {

/// Split text into tokens: identifiers/numbers stay whole, sigils (%, @)
/// stay attached to their identifier, punctuation tokens stand alone.
std::vector<std::string> tokenizeIR(const std::string &Text);

/// BLEU-N (default 4) of \p Candidate against \p Reference over tokens,
/// with the standard brevity penalty and +1 smoothing on higher n-grams.
/// Returns a value in [0, 1]; identical token streams score 1.
double bleu(const std::vector<std::string> &Reference,
            const std::vector<std::string> &Candidate, unsigned MaxN = 4);

/// Convenience: tokenize both texts, then score.
double bleuText(const std::string &Reference, const std::string &Candidate,
                unsigned MaxN = 4);

} // namespace veriopt

#endif // VERIOPT_TEXTGEN_BLEU_H
