//===- Bleu.cpp - IR tokenization and BLEU similarity --------------------------//

#include "textgen/Bleu.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>

namespace veriopt {

std::vector<std::string> tokenizeIR(const std::string &Text) {
  std::vector<std::string> Out;
  size_t I = 0, N = Text.size();
  auto isIdent = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '.' || C == '$';
  };
  while (I < N) {
    char C = Text[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '%' || C == '@' || C == '#' || C == '!') {
      size_t Start = I++;
      while (I < N && isIdent(Text[I]))
        ++I;
      Out.push_back(Text.substr(Start, I - Start));
      continue;
    }
    if (C == '-' && I + 1 < N &&
        std::isdigit(static_cast<unsigned char>(Text[I + 1]))) {
      size_t Start = I++;
      while (I < N && std::isdigit(static_cast<unsigned char>(Text[I])))
        ++I;
      Out.push_back(Text.substr(Start, I - Start));
      continue;
    }
    if (isIdent(C)) {
      size_t Start = I;
      while (I < N && isIdent(Text[I]))
        ++I;
      Out.push_back(Text.substr(Start, I - Start));
      continue;
    }
    Out.push_back(std::string(1, C));
    ++I;
  }
  return Out;
}

namespace {

/// Intern a token stream against a shared vocabulary, so n-grams can be
/// compared as integers instead of string vectors.
std::vector<uint32_t> internTokens(const std::vector<std::string> &Tokens,
                                   std::unordered_map<std::string, uint32_t> &Vocab) {
  std::vector<uint32_t> Ids;
  Ids.reserve(Tokens.size());
  for (const std::string &T : Tokens)
    Ids.push_back(Vocab.emplace(T, static_cast<uint32_t>(Vocab.size())).first->second);
  return Ids;
}

/// Clipped n-gram matches of Cand against Ref, where each n-gram is packed
/// into one uint64 (16 bits per interned token id). Requires vocab < 2^16
/// and N <= 4.
int clippedMatchesPacked(const std::vector<uint32_t> &Ref,
                         const std::vector<uint32_t> &Cand, unsigned N) {
  std::unordered_map<uint64_t, int> RefCounts;
  RefCounts.reserve(Ref.size());
  uint64_t Mask = N >= 4 ? ~uint64_t(0) : ((uint64_t(1) << (16 * N)) - 1);
  if (Ref.size() >= N) {
    uint64_t G = 0;
    for (size_t I = 0; I < Ref.size(); ++I) {
      G = ((G << 16) | Ref[I]) & Mask;
      if (I + 1 >= N)
        ++RefCounts[G];
    }
  }
  int Matched = 0;
  if (Cand.size() >= N) {
    uint64_t G = 0;
    for (size_t I = 0; I < Cand.size(); ++I) {
      G = ((G << 16) | Cand[I]) & Mask;
      if (I + 1 < N)
        continue;
      auto It = RefCounts.find(G);
      if (It != RefCounts.end() && It->second > 0) {
        --It->second; // clip: each reference occurrence matches once
        ++Matched;
      }
    }
  }
  return Matched;
}

/// Exact fallback for pathologically large vocabularies (>= 2^16 distinct
/// tokens) or N > 4, where n-grams no longer pack into a uint64.
int clippedMatchesGeneric(const std::vector<std::string> &Ref,
                          const std::vector<std::string> &Cand, unsigned N) {
  std::map<std::vector<std::string>, int> RefCounts;
  if (Ref.size() >= N)
    for (size_t I = 0; I + N <= Ref.size(); ++I)
      ++RefCounts[std::vector<std::string>(Ref.begin() + I, Ref.begin() + I + N)];
  int Matched = 0;
  if (Cand.size() >= N)
    for (size_t I = 0; I + N <= Cand.size(); ++I) {
      auto It = RefCounts.find(
          std::vector<std::string>(Cand.begin() + I, Cand.begin() + I + N));
      if (It != RefCounts.end() && It->second > 0) {
        --It->second;
        ++Matched;
      }
    }
  return Matched;
}

} // namespace

double bleu(const std::vector<std::string> &Reference,
            const std::vector<std::string> &Candidate, unsigned MaxN) {
  if (Candidate.empty())
    return Reference.empty() ? 1.0 : 0.0;
  if (Reference.empty())
    return 0.0;

  std::unordered_map<std::string, uint32_t> Vocab;
  std::vector<uint32_t> RefIds = internTokens(Reference, Vocab);
  std::vector<uint32_t> CandIds = internTokens(Candidate, Vocab);
  bool Packable = Vocab.size() < (1u << 16);

  double LogSum = 0;
  for (unsigned N = 1; N <= MaxN; ++N) {
    int Matched = Packable && N <= 4
                      ? clippedMatchesPacked(RefIds, CandIds, N)
                      : clippedMatchesGeneric(Reference, Candidate, N);
    int Total = Candidate.size() >= N
                    ? static_cast<int>(Candidate.size() - N + 1)
                    : 0;
    double Precision;
    if (N == 1) {
      if (Total == 0 || Matched == 0)
        return 0.0; // no unigram overlap: score 0
      Precision = static_cast<double>(Matched) / Total;
    } else {
      // +1 smoothing keeps short sequences from collapsing to zero.
      Precision = (Matched + 1.0) / (Total + 1.0);
    }
    LogSum += std::log(Precision);
  }
  double GeoMean = std::exp(LogSum / MaxN);

  // Brevity penalty.
  double R = static_cast<double>(Reference.size());
  double C = static_cast<double>(Candidate.size());
  double BP = C >= R ? 1.0 : std::exp(1.0 - R / C);
  return std::clamp(GeoMean * BP, 0.0, 1.0);
}

double bleuText(const std::string &Reference, const std::string &Candidate,
                unsigned MaxN) {
  return bleu(tokenizeIR(Reference), tokenizeIR(Candidate), MaxN);
}

} // namespace veriopt
