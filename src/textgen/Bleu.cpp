//===- Bleu.cpp - IR tokenization and BLEU similarity --------------------------//

#include "textgen/Bleu.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

namespace veriopt {

std::vector<std::string> tokenizeIR(const std::string &Text) {
  std::vector<std::string> Out;
  size_t I = 0, N = Text.size();
  auto isIdent = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '.' || C == '$';
  };
  while (I < N) {
    char C = Text[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '%' || C == '@' || C == '#' || C == '!') {
      size_t Start = I++;
      while (I < N && isIdent(Text[I]))
        ++I;
      Out.push_back(Text.substr(Start, I - Start));
      continue;
    }
    if (C == '-' && I + 1 < N &&
        std::isdigit(static_cast<unsigned char>(Text[I + 1]))) {
      size_t Start = I++;
      while (I < N && std::isdigit(static_cast<unsigned char>(Text[I])))
        ++I;
      Out.push_back(Text.substr(Start, I - Start));
      continue;
    }
    if (isIdent(C)) {
      size_t Start = I;
      while (I < N && isIdent(Text[I]))
        ++I;
      Out.push_back(Text.substr(Start, I - Start));
      continue;
    }
    Out.push_back(std::string(1, C));
    ++I;
  }
  return Out;
}

double bleu(const std::vector<std::string> &Reference,
            const std::vector<std::string> &Candidate, unsigned MaxN) {
  if (Candidate.empty())
    return Reference.empty() ? 1.0 : 0.0;
  if (Reference.empty())
    return 0.0;

  double LogSum = 0;
  for (unsigned N = 1; N <= MaxN; ++N) {
    // Clipped n-gram precision.
    std::map<std::vector<std::string>, int> RefCounts;
    if (Reference.size() >= N)
      for (size_t I = 0; I + N <= Reference.size(); ++I)
        ++RefCounts[std::vector<std::string>(Reference.begin() + I,
                                             Reference.begin() + I + N)];
    int Matched = 0;
    int Total = 0;
    std::map<std::vector<std::string>, int> Used;
    if (Candidate.size() >= N)
      for (size_t I = 0; I + N <= Candidate.size(); ++I) {
        std::vector<std::string> Gram(Candidate.begin() + I,
                                      Candidate.begin() + I + N);
        ++Total;
        auto It = RefCounts.find(Gram);
        if (It != RefCounts.end() && Used[Gram] < It->second) {
          ++Used[Gram];
          ++Matched;
        }
      }
    double Precision;
    if (N == 1) {
      if (Total == 0 || Matched == 0)
        return 0.0; // no unigram overlap: score 0
      Precision = static_cast<double>(Matched) / Total;
    } else {
      // +1 smoothing keeps short sequences from collapsing to zero.
      Precision = (Matched + 1.0) / (Total + 1.0);
    }
    LogSum += std::log(Precision);
  }
  double GeoMean = std::exp(LogSum / MaxN);

  // Brevity penalty.
  double R = static_cast<double>(Reference.size());
  double C = static_cast<double>(Candidate.size());
  double BP = C >= R ? 1.0 : std::exp(1.0 - R / C);
  return std::clamp(GeoMean * BP, 0.0, 1.0);
}

double bleuText(const std::string &Reference, const std::string &Candidate,
                unsigned MaxN) {
  return bleu(tokenizeIR(Reference), tokenizeIR(Candidate), MaxN);
}

} // namespace veriopt
