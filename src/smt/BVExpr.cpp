//===- BVExpr.cpp - Hash-consed bit-vector terms ------------------------------//

#include "smt/BVExpr.h"

#include "trace/Metrics.h"

#include <cassert>

namespace veriopt {

namespace {

/// Total-function constant semantics shared with the bit-blaster.
APInt64 foldUDiv(const APInt64 &A, const APInt64 &B) {
  if (B.isZero())
    return APInt64::allOnes(A.width()); // SMT-LIB bvudiv convention
  return A.udiv(B);
}

APInt64 foldURem(const APInt64 &A, const APInt64 &B) {
  if (B.isZero())
    return A; // SMT-LIB bvurem convention
  return A.urem(B);
}

} // namespace

const BVExpr *BVContext::intern(BVExpr E) {
  // Structural key: op|width|payload|operand pointers.
  std::string Key;
  Key.reserve(16 + E.Ops.size() * 8);
  auto put = [&Key](uint64_t V) {
    Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
  };
  put(static_cast<uint64_t>(E.Op));
  put(E.Width);
  put(E.ConstVal.zext());
  put(E.VarId);
  put(E.Lo);
  for (const BVExpr *Op : E.Ops)
    put(reinterpret_cast<uint64_t>(Op));

  // CSE accounting: a hit means a structurally identical term already
  // exists in this context, so its circuit is shared instead of re-emitted.
  // Totals are schedule-independent: hits = interning requests - distinct
  // structures, and both sides depend only on what was built, not on order.
  static Counter &Hits = MetricsRegistry::global().counter("encode.cse_hits");
  static Counter &Misses =
      MetricsRegistry::global().counter("encode.cse_misses");

  auto It = Interned.find(Key);
  if (It != Interned.end()) {
    ++CseHits;
    Hits.inc();
    return It->second;
  }
  Pool.push_back(std::move(E));
  const BVExpr *Out = &Pool.back();
  Interned.emplace(std::move(Key), Out);
  ++CseMisses;
  Misses.inc();
  return Out;
}

const BVExpr *BVContext::constant(APInt64 V) {
  BVExpr E;
  E.Op = BVOp::Const;
  E.Width = V.width();
  E.ConstVal = V;
  return intern(std::move(E));
}

const BVExpr *BVContext::var(unsigned Width, const std::string &Name) {
  BVExpr E;
  E.Op = BVOp::Var;
  E.Width = Width;
  E.VarId = static_cast<unsigned>(VarNames.size());
  VarNames.push_back(Name);
  return intern(std::move(E));
}

const BVExpr *BVContext::binary(BVOp Op, const BVExpr *A, const BVExpr *B,
                                unsigned Width) {
  BVExpr E;
  E.Op = Op;
  E.Width = Width;
  E.Ops = {A, B};
  return intern(std::move(E));
}

const BVExpr *BVContext::add(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.add(B->ConstVal));
  if (A->isConst(0))
    return B;
  if (B->isConst(0))
    return A;
  if (A->isConst())
    std::swap(A, B); // canonical: constant on the right
  // (x + c1) + c2 -> x + (c1+c2): mirrors the reference peephole pass so
  // that unchanged code normalizes to identical terms (proof by hashing).
  if (B->isConst() && A->Op == BVOp::Add && A->Ops[1]->isConst())
    return add(A->Ops[0], constant(A->Ops[1]->ConstVal.add(B->ConstVal)));
  return binary(BVOp::Add, A, B, A->Width);
}

const BVExpr *BVContext::sub(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.sub(B->ConstVal));
  if (B->isConst(0))
    return A;
  if (A == B)
    return constant(APInt64::zero(A->Width));
  if (A->isConst(0))
    return neg(B);
  // x - c -> x + (-c): canonical constant-add form.
  if (B->isConst())
    return add(A, constant(B->ConstVal.neg()));
  return binary(BVOp::Sub, A, B, A->Width);
}

const BVExpr *BVContext::mul(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.mul(B->ConstVal));
  if (A->isConst())
    std::swap(A, B);
  if (B->isConst(0))
    return B;
  if (B->isConst(1))
    return A;
  // (x * c1) * c2 -> x * (c1*c2).
  if (B->isConst() && A->Op == BVOp::Mul && A->Ops[1]->isConst())
    return mul(A->Ops[0], constant(A->Ops[1]->ConstVal.mul(B->ConstVal)));
  // x * 2^k -> x << k (strength reduction matching the reference pass;
  // also a far cheaper circuit).
  if (B->isConst() && B->ConstVal.isPowerOf2())
    return shl(A, constant(A->Width, B->ConstVal.exactLog2()));
  return binary(BVOp::Mul, A, B, A->Width);
}

const BVExpr *BVContext::udiv(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(foldUDiv(A->ConstVal, B->ConstVal));
  if (B->isConst(1))
    return A;
  // Division by a power of two is a logical shift: avoids the expensive
  // divider circuit for the most common strength-reduction verifications.
  if (B->isConst() && B->ConstVal.isPowerOf2())
    return lshr(A, constant(A->Width, B->ConstVal.exactLog2()));
  return binary(BVOp::UDiv, A, B, A->Width);
}

const BVExpr *BVContext::urem(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(foldURem(A->ConstVal, B->ConstVal));
  if (B->isConst(1))
    return constant(APInt64::zero(A->Width));
  // Remainder by a power of two is a mask.
  if (B->isConst() && B->ConstVal.isPowerOf2())
    return bvand(A, constant(B->ConstVal.sub(APInt64::one(A->Width))));
  return binary(BVOp::URem, A, B, A->Width);
}

const BVExpr *BVContext::sdiv(const BVExpr *A, const BVExpr *B) {
  // Derived construction (SMT-LIB definition): sign-adjusted udiv. The
  // div-by-zero / overflow corners inherit udiv's total semantics; the
  // verifier guards them as UB separately.
  unsigned W = A->Width;
  const BVExpr *Zero = constant(APInt64::zero(W));
  const BVExpr *ANeg = slt(A, Zero);
  const BVExpr *BNeg = slt(B, Zero);
  const BVExpr *AbsA = ite(ANeg, neg(A), A);
  const BVExpr *AbsB = ite(BNeg, neg(B), B);
  const BVExpr *Q = udiv(AbsA, AbsB);
  return ite(bvxor(ANeg, BNeg), neg(Q), Q);
}

const BVExpr *BVContext::srem(const BVExpr *A, const BVExpr *B) {
  unsigned W = A->Width;
  const BVExpr *Zero = constant(APInt64::zero(W));
  const BVExpr *ANeg = slt(A, Zero);
  const BVExpr *BNeg = slt(B, Zero);
  const BVExpr *AbsA = ite(ANeg, neg(A), A);
  const BVExpr *AbsB = ite(BNeg, neg(B), B);
  const BVExpr *R = urem(AbsA, AbsB);
  return ite(ANeg, neg(R), R);
}

const BVExpr *BVContext::shl(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.shl(B->ConstVal));
  if (B->isConst(0))
    return A;
  if (A->isConst(0))
    return A;
  // (x >>u c) << c -> x & (allones << c).
  if (B->isConst() && B->ConstVal.ult(APInt64(A->Width, A->Width)) &&
      A->Op == BVOp::LShr && A->Ops[1] == B)
    return bvand(A->Ops[0],
                 constant(APInt64::allOnes(A->Width).shl(B->ConstVal)));
  return binary(BVOp::Shl, A, B, A->Width);
}

const BVExpr *BVContext::lshr(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.lshr(B->ConstVal));
  if (B->isConst(0))
    return A;
  if (A->isConst(0))
    return A;
  // (x << c) >>u c -> x & (allones >> c), matching the peephole pass.
  if (B->isConst() && B->ConstVal.ult(APInt64(A->Width, A->Width)) &&
      A->Op == BVOp::Shl && A->Ops[1] == B)
    return bvand(A->Ops[0],
                 constant(APInt64::allOnes(A->Width).lshr(B->ConstVal)));
  return binary(BVOp::LShr, A, B, A->Width);
}

const BVExpr *BVContext::ashr(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.ashr(B->ConstVal));
  if (B->isConst(0))
    return A;
  if (A->isConst(0))
    return A;
  return binary(BVOp::AShr, A, B, A->Width);
}

const BVExpr *BVContext::bvand(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.andOp(B->ConstVal));
  if (A->isConst())
    std::swap(A, B);
  if (B->isConst(0))
    return B;
  if (B->isConst() && B->ConstVal.isAllOnes())
    return A;
  if (A == B)
    return A;
  if (B->isConst() && A->Op == BVOp::And && A->Ops[1]->isConst())
    return bvand(A->Ops[0],
                 constant(A->Ops[1]->ConstVal.andOp(B->ConstVal)));
  return binary(BVOp::And, A, B, A->Width);
}

const BVExpr *BVContext::bvor(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.orOp(B->ConstVal));
  if (A->isConst())
    std::swap(A, B);
  if (B->isConst(0))
    return A;
  if (B->isConst() && B->ConstVal.isAllOnes())
    return B;
  if (A == B)
    return A;
  if (B->isConst() && A->Op == BVOp::Or && A->Ops[1]->isConst())
    return bvor(A->Ops[0], constant(A->Ops[1]->ConstVal.orOp(B->ConstVal)));
  return binary(BVOp::Or, A, B, A->Width);
}

const BVExpr *BVContext::bvxor(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A->isConst() && B->isConst())
    return constant(A->ConstVal.xorOp(B->ConstVal));
  if (A->isConst())
    std::swap(A, B);
  if (B->isConst(0))
    return A;
  if (B->isConst() && B->ConstVal.isAllOnes())
    return bvnot(A);
  if (A == B)
    return constant(APInt64::zero(A->Width));
  // (x ^ y) ^ y -> x (covers the constant-pair case too).
  if (A->Op == BVOp::Xor) {
    if (A->Ops[0] == B)
      return A->Ops[1];
    if (A->Ops[1] == B)
      return A->Ops[0];
    if (B->isConst() && A->Ops[1]->isConst())
      return bvxor(A->Ops[0],
                   constant(A->Ops[1]->ConstVal.xorOp(B->ConstVal)));
  }
  return binary(BVOp::Xor, A, B, A->Width);
}

const BVExpr *BVContext::bvnot(const BVExpr *A) {
  if (A->isConst())
    return constant(A->ConstVal.notOp());
  if (A->Op == BVOp::Not)
    return A->Ops[0];
  BVExpr E;
  E.Op = BVOp::Not;
  E.Width = A->Width;
  E.Ops = {A};
  return intern(std::move(E));
}

const BVExpr *BVContext::neg(const BVExpr *A) {
  if (A->isConst())
    return constant(A->ConstVal.neg());
  if (A->Op == BVOp::Neg)
    return A->Ops[0];
  BVExpr E;
  E.Op = BVOp::Neg;
  E.Width = A->Width;
  E.Ops = {A};
  return intern(std::move(E));
}

const BVExpr *BVContext::zext(const BVExpr *A, unsigned NewWidth) {
  assert(NewWidth >= A->Width && "zext must widen");
  if (NewWidth == A->Width)
    return A;
  if (A->isConst())
    return constant(A->ConstVal.zextTo(NewWidth));
  BVExpr E;
  E.Op = BVOp::ZExt;
  E.Width = NewWidth;
  E.Ops = {A};
  return intern(std::move(E));
}

const BVExpr *BVContext::sext(const BVExpr *A, unsigned NewWidth) {
  assert(NewWidth >= A->Width && "sext must widen");
  if (NewWidth == A->Width)
    return A;
  if (A->isConst())
    return constant(A->ConstVal.sextTo(NewWidth));
  BVExpr E;
  E.Op = BVOp::SExt;
  E.Width = NewWidth;
  E.Ops = {A};
  return intern(std::move(E));
}

const BVExpr *BVContext::extract(const BVExpr *A, unsigned Lo,
                                 unsigned Width) {
  assert(Lo + Width <= A->Width && "extract out of range");
  if (Lo == 0 && Width == A->Width)
    return A;
  if (A->isConst())
    return constant(APInt64(Width, A->ConstVal.zext() >> Lo));
  // extract(extract(x)) composes.
  if (A->Op == BVOp::Extract)
    return extract(A->Ops[0], A->Lo + Lo, Width);
  // Extract confined to one side of a concat looks through it.
  if (A->Op == BVOp::Concat) {
    const BVExpr *Hi = A->Ops[0], *LoPart = A->Ops[1];
    if (Lo + Width <= LoPart->Width)
      return extract(LoPart, Lo, Width);
    if (Lo >= LoPart->Width)
      return extract(Hi, Lo - LoPart->Width, Width);
  }
  // Low extract of zext/sext looks through when confined to the source.
  if ((A->Op == BVOp::ZExt || A->Op == BVOp::SExt) &&
      Lo + Width <= A->Ops[0]->Width)
    return extract(A->Ops[0], Lo, Width);
  BVExpr E;
  E.Op = BVOp::Extract;
  E.Width = Width;
  E.Lo = Lo;
  E.Ops = {A};
  return intern(std::move(E));
}

const BVExpr *BVContext::concat(const BVExpr *Hi, const BVExpr *Lo) {
  assert(Hi->Width + Lo->Width <= 64 && "concat exceeds 64 bits");
  if (Hi->isConst() && Lo->isConst())
    return constant(APInt64(Hi->Width + Lo->Width,
                            (Hi->ConstVal.zext() << Lo->Width) |
                                Lo->ConstVal.zext()));
  // Adjacent extracts of the same base merge (store-then-load collapse).
  if (Hi->Op == BVOp::Extract && Lo->Op == BVOp::Extract &&
      Hi->Ops[0] == Lo->Ops[0] && Lo->Lo + Lo->Width == Hi->Lo)
    return extract(Hi->Ops[0], Lo->Lo, Lo->Width + Hi->Width);
  // Zero high part of an extract-from-bit-0 is a zext of the extract.
  if (Hi->isConst(0))
    return zext(Lo, Hi->Width + Lo->Width);
  BVExpr E;
  E.Op = BVOp::Concat;
  E.Width = Hi->Width + Lo->Width;
  E.Ops = {Hi, Lo};
  return intern(std::move(E));
}

const BVExpr *BVContext::eq(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A == B)
    return trueVal();
  if (A->isConst() && B->isConst())
    return boolVal(A->ConstVal == B->ConstVal);
  if (A->isConst())
    std::swap(A, B);
  if (A->Width == 1 && B->isConst())
    return B->ConstVal.isOne() ? A : bvnot(A);
  // Invertible ops against constants: (x ^ c1) == c2 -> x == c1^c2;
  // (x + c1) == c2 -> x == c2-c1 (mirrors the peephole pass).
  if (B->isConst()) {
    if (A->Op == BVOp::Xor && A->Ops[1]->isConst())
      return eq(A->Ops[0],
                constant(A->Ops[1]->ConstVal.xorOp(B->ConstVal)));
    if (A->Op == BVOp::Add && A->Ops[1]->isConst())
      return eq(A->Ops[0],
                constant(B->ConstVal.sub(A->Ops[1]->ConstVal)));
  }
  return binary(BVOp::Eq, A, B, 1);
}

const BVExpr *BVContext::ult(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A == B)
    return falseVal();
  if (A->isConst() && B->isConst())
    return boolVal(A->ConstVal.ult(B->ConstVal));
  if (B->isConst(0))
    return falseVal(); // nothing is below zero
  if (A->isConst() && A->ConstVal.isAllOnes())
    return falseVal(); // nothing is above all-ones
  return binary(BVOp::Ult, A, B, 1);
}

const BVExpr *BVContext::slt(const BVExpr *A, const BVExpr *B) {
  assert(A->Width == B->Width && "width mismatch");
  if (A == B)
    return falseVal();
  if (A->isConst() && B->isConst())
    return boolVal(A->ConstVal.slt(B->ConstVal));
  return binary(BVOp::Slt, A, B, 1);
}

const BVExpr *BVContext::ite(const BVExpr *C, const BVExpr *T,
                             const BVExpr *F) {
  assert(C->Width == 1 && "ite condition must be width 1");
  assert(T->Width == F->Width && "ite arm width mismatch");
  if (C->isTrue())
    return T;
  if (C->isFalse())
    return F;
  if (T == F)
    return T;
  // ite(!c, a, b) -> ite(c, b, a): canonical polarity so symbolic paths and
  // select-based encodings of the same diamond unify.
  if (C->Op == BVOp::Not)
    return ite(C->Ops[0], F, T);
  if (T->Width == 1) {
    if (T->isTrue() && F->isFalse())
      return C;
    if (T->isFalse() && F->isTrue())
      return bvnot(C);
    if (T->isTrue())
      return bvor(C, F);
    if (T->isFalse())
      return bvand(bvnot(C), F);
    if (F->isFalse())
      return bvand(C, T);
    if (F->isTrue())
      return bvor(bvnot(C), T);
  }
  BVExpr E;
  E.Op = BVOp::ITE;
  E.Width = T->Width;
  E.Ops = {C, T, F};
  return intern(std::move(E));
}

APInt64 BVContext::evaluate(
    const BVExpr *E,
    const std::unordered_map<unsigned, APInt64> &Model) const {
  std::unordered_map<const BVExpr *, APInt64> Memo;
  // Explicit stack to avoid deep recursion on long dependency chains.
  std::vector<const BVExpr *> Stack{E};
  while (!Stack.empty()) {
    const BVExpr *Cur = Stack.back();
    if (Memo.count(Cur)) {
      Stack.pop_back();
      continue;
    }
    bool Ready = true;
    for (const BVExpr *Op : Cur->Ops)
      if (!Memo.count(Op)) {
        Stack.push_back(Op);
        Ready = false;
      }
    if (!Ready)
      continue;
    Stack.pop_back();

    auto V = [&](unsigned I) { return Memo.at(Cur->Ops[I]); };
    APInt64 Out;
    switch (Cur->Op) {
    case BVOp::Const:
      Out = Cur->ConstVal;
      break;
    case BVOp::Var: {
      auto It = Model.find(Cur->VarId);
      Out = It == Model.end() ? APInt64::zero(Cur->Width) : It->second;
      assert(Out.width() == Cur->Width && "model width mismatch");
      break;
    }
    case BVOp::Not:
      Out = V(0).notOp();
      break;
    case BVOp::Neg:
      Out = V(0).neg();
      break;
    case BVOp::Add:
      Out = V(0).add(V(1));
      break;
    case BVOp::Sub:
      Out = V(0).sub(V(1));
      break;
    case BVOp::Mul:
      Out = V(0).mul(V(1));
      break;
    case BVOp::UDiv:
      Out = foldUDiv(V(0), V(1));
      break;
    case BVOp::URem:
      Out = foldURem(V(0), V(1));
      break;
    case BVOp::SDiv:
    case BVOp::SRem:
      assert(false && "sdiv/srem are derived terms and never interned");
      break;
    case BVOp::Shl:
      Out = V(0).shl(V(1));
      break;
    case BVOp::LShr:
      Out = V(0).lshr(V(1));
      break;
    case BVOp::AShr:
      Out = V(0).ashr(V(1));
      break;
    case BVOp::And:
      Out = V(0).andOp(V(1));
      break;
    case BVOp::Or:
      Out = V(0).orOp(V(1));
      break;
    case BVOp::Xor:
      Out = V(0).xorOp(V(1));
      break;
    case BVOp::Eq:
      Out = APInt64(1, V(0).eq(V(1)) ? 1 : 0);
      break;
    case BVOp::Ult:
      Out = APInt64(1, V(0).ult(V(1)) ? 1 : 0);
      break;
    case BVOp::Slt:
      Out = APInt64(1, V(0).slt(V(1)) ? 1 : 0);
      break;
    case BVOp::ITE:
      Out = V(0).isOne() ? V(1) : V(2);
      break;
    case BVOp::ZExt:
      Out = V(0).zextTo(Cur->Width);
      break;
    case BVOp::SExt:
      Out = V(0).sextTo(Cur->Width);
      break;
    case BVOp::Extract:
      Out = APInt64(Cur->Width, V(0).zext() >> Cur->Lo);
      break;
    case BVOp::Concat:
      Out = APInt64(Cur->Width,
                    (V(0).zext() << Cur->Ops[1]->Width) | V(1).zext());
      break;
    }
    Memo.emplace(Cur, Out);
  }
  return Memo.at(E);
}

} // namespace veriopt
