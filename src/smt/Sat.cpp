//===- Sat.cpp - CDCL SAT solver ----------------------------------------------//

#include "smt/Sat.h"

#include <algorithm>
#include <cassert>

namespace veriopt {

// Reason sentinel: -1 means "decision / no reason".
static constexpr int NoReason = -1;

SatSolver::SatSolver() {
  // Var 0 is a dummy so variables are 1-based.
  Assign.push_back(LBool::Undef);
  SavedPhase.push_back(LBool::False);
  LevelOf.push_back(0);
  ReasonOf.push_back(NoReason);
  Frozen.push_back(0);
  Activity.push_back(0);
  Seen.push_back(0);
  Watches.resize(2);
}

unsigned SatSolver::newVar() {
  unsigned V = static_cast<unsigned>(Assign.size());
  Assign.push_back(LBool::Undef);
  SavedPhase.push_back(LBool::False);
  LevelOf.push_back(0);
  ReasonOf.push_back(NoReason);
  Frozen.push_back(0);
  Activity.push_back(0);
  Seen.push_back(0);
  Watches.resize(Watches.size() + 2);
  return V;
}

void SatSolver::setFrozen(unsigned Var, bool B) {
  assert(Var < Frozen.size() && "freezing an unallocated variable");
  Frozen[Var] = B ? 1 : 0;
}

bool SatSolver::addClause(std::vector<Lit> Ls) {
  if (Unsatisfiable)
    return false;
  assert(TrailLim.empty() && "clauses must be added at decision level 0");

  // Normalize: drop duplicates and false literals; detect tautologies and
  // already-satisfied clauses.
  std::sort(Ls.begin(), Ls.end(),
            [](Lit A, Lit B) { return A.Code < B.Code; });
  std::vector<Lit> Out;
  for (size_t I = 0; I < Ls.size(); ++I) {
    if (I + 1 < Ls.size() && Ls[I] == Ls[I + 1])
      continue; // duplicate
    if (I + 1 < Ls.size() && Ls[I].var() == Ls[I + 1].var())
      return true; // l and ~l: tautology
    LBool V = value(Ls[I]);
    if (V == LBool::True)
      return true; // satisfied at level 0
    if (V == LBool::False)
      continue; // falsified at level 0: drop
    Out.push_back(Ls[I]);
  }

  if (Out.empty()) {
    Unsatisfiable = true;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      Unsatisfiable = true;
      return false;
    }
    return true;
  }

  Clause C;
  C.Ls = std::move(Out);
  Clauses.push_back(std::move(C));
  attach(static_cast<ClauseRef>(Clauses.size() - 1));
  return true;
}

void SatSolver::attach(ClauseRef CR) {
  const Clause &C = Clauses[CR];
  assert(C.Ls.size() >= 2 && "attaching a short clause");
  Watches[(~C.Ls[0]).Code].push_back({CR, C.Ls[1]});
  Watches[(~C.Ls[1]).Code].push_back({CR, C.Ls[0]});
}

void SatSolver::enqueue(Lit L, ClauseRef Reason) {
  assert(value(L) == LBool::Undef && "enqueueing an assigned literal");
  Assign[L.var()] = L.negated() ? LBool::False : LBool::True;
  LevelOf[L.var()] = static_cast<unsigned>(TrailLim.size());
  ReasonOf[L.var()] = Reason;
  Trail.push_back(L);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++]; // P is true; visit watchers of ~P... (see below)
    ++Propagations;
    // Watches[P.Code] holds clauses watching ~P (attached via (~lit).Code),
    // i.e. clauses that may become unit now that P is true.
    std::vector<Watch> &WList = Watches[P.Code];
    size_t Keep = 0;
    for (size_t I = 0; I < WList.size(); ++I) {
      Watch W = WList[I];
      // Blocker check: clause already satisfied.
      if (value(W.Blocker) == LBool::True) {
        WList[Keep++] = W;
        continue;
      }
      Clause &C = Clauses[W.CR];
      // Ensure the falsified literal is at slot 1.
      Lit FalseLit = ~P;
      if (C.Ls[0] == FalseLit)
        std::swap(C.Ls[0], C.Ls[1]);
      assert(C.Ls[1] == FalseLit && "watch list out of sync");
      // First watch true? Keep with updated blocker.
      if (value(C.Ls[0]) == LBool::True) {
        WList[Keep++] = {W.CR, C.Ls[0]};
        continue;
      }
      // Find a new literal to watch.
      bool Moved = false;
      for (size_t K = 2; K < C.Ls.size(); ++K) {
        if (value(C.Ls[K]) != LBool::False) {
          std::swap(C.Ls[1], C.Ls[K]);
          Watches[(~C.Ls[1]).Code].push_back({W.CR, C.Ls[0]});
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue; // watch moved elsewhere; drop from this list
      // Clause is unit or conflicting.
      WList[Keep++] = W;
      if (value(C.Ls[0]) == LBool::False) {
        // Conflict: restore remaining watches and report.
        for (size_t K = I + 1; K < WList.size(); ++K)
          WList[Keep++] = WList[K];
        WList.resize(Keep);
        QHead = Trail.size();
        return W.CR;
      }
      enqueue(C.Ls[0], W.CR);
    }
    WList.resize(Keep);
  }
  return NoReason;
}

void SatSolver::bumpVar(unsigned V) {
  Activity[V] += ActivityInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::decayActivities() { ActivityInc *= (1.0 / 0.95); }

void SatSolver::analyze(ClauseRef Confl, std::vector<Lit> &Learnt,
                        unsigned &BtLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // slot for the asserting literal
  unsigned CurLevel = static_cast<unsigned>(TrailLim.size());
  int Counter = 0;
  Lit P;
  bool PValid = false;
  size_t Index = Trail.size();

  ClauseRef Reason = Confl;
  while (true) {
    assert(Reason != NoReason && "conflict analysis lost its reason");
    Clause &C = Clauses[Reason];
    if (C.Learnt)
      C.Activity += 1.0;
    for (Lit Q : C.Ls) {
      if (PValid && Q == P)
        continue;
      unsigned V = Q.var();
      if (Seen[V] || LevelOf[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (LevelOf[V] >= CurLevel)
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Walk the trail backwards to the next marked literal.
    while (!Seen[Trail[Index - 1].var()])
      --Index;
    --Index;
    P = Trail[Index];
    PValid = true;
    Reason = ReasonOf[P.var()];
    Seen[P.var()] = 0;
    if (--Counter == 0)
      break;
  }
  Learnt[0] = ~P;

  // Compute backtrack level (second-highest level in the clause).
  BtLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxI = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (LevelOf[Learnt[I].var()] > LevelOf[Learnt[MaxI].var()])
        MaxI = I;
    std::swap(Learnt[1], Learnt[MaxI]);
    BtLevel = LevelOf[Learnt[1].var()];
  }
  for (Lit L : Learnt)
    Seen[L.var()] = 0;
}

void SatSolver::analyzeFinal(Lit FailedAssump) {
  // The trail implies ~FailedAssump; collect the placed assumptions that
  // participate in that derivation (MiniSat's analyzeFinal). Every
  // reason-free trail literal above level 0 is an assumption placement:
  // analyzeFinal only runs from the placement loop, where all open decision
  // levels belong to assumptions.
  Core.clear();
  Core.push_back(FailedAssump);
  if (TrailLim.empty())
    return;
  Seen[FailedAssump.var()] = 1;
  for (size_t I = Trail.size(); I > TrailLim[0]; --I) {
    unsigned V = Trail[I - 1].var();
    if (!Seen[V])
      continue;
    if (ReasonOf[V] == NoReason) {
      Core.push_back(Trail[I - 1]);
    } else {
      for (Lit L : Clauses[ReasonOf[V]].Ls)
        if (L.var() != V && LevelOf[L.var()] > 0)
          Seen[L.var()] = 1;
    }
    Seen[V] = 0;
  }
  Seen[FailedAssump.var()] = 0;
}

void SatSolver::backtrack(unsigned Level) {
  if (TrailLim.size() <= Level)
    return;
  size_t Bound = TrailLim[Level];
  for (size_t I = Trail.size(); I > Bound; --I) {
    unsigned V = Trail[I - 1].var();
    SavedPhase[V] = Assign[V];
    Assign[V] = LBool::Undef;
    ReasonOf[V] = NoReason;
  }
  Trail.resize(Bound);
  TrailLim.resize(Level);
  QHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  // Highest-activity unassigned variable (linear scan is fine at our sizes;
  // queries are thousands of vars, not millions).
  unsigned Best = 0;
  double BestAct = -1;
  for (unsigned V = 1; V < Assign.size(); ++V)
    if (Assign[V] == LBool::Undef && !Frozen[V] && Activity[V] > BestAct) {
      Best = V;
      BestAct = Activity[V];
    }
  if (Best == 0) {
    // Only frozen variables (dormant group selectors) remain: decide them
    // last, so saved phases — false by default — deactivate their groups.
    for (unsigned V = 1; V < Assign.size(); ++V)
      if (Assign[V] == LBool::Undef && Activity[V] > BestAct) {
        Best = V;
        BestAct = Activity[V];
      }
  }
  if (Best == 0)
    return Lit(); // everything assigned
  bool Neg = SavedPhase[Best] != LBool::True; // phase saving, default false
  return Lit(Best, Neg);
}

SatSolver::Result SatSolver::solve(uint64_t ConflictBudget, Fuel *F) {
  return solve(std::vector<Lit>(), ConflictBudget, F);
}

SatSolver::Result SatSolver::solve(const std::vector<Lit> &Assumptions,
                                   uint64_t ConflictBudget, Fuel *F) {
  uint64_t StartConflicts = Conflicts;
  uint64_t StartPropagations = Propagations;
  uint64_t StartDecisions = Decisions;
  LastAssumptions = 0;
  Core.clear();

  Result R;
  if (Unsatisfiable) {
    R = Result::Unsat;
  } else if (propagate() != NoReason) {
    // Pending top-level units conflicted: the trail is at level 0, so this
    // is a global contradiction independent of any assumption.
    Unsatisfiable = true;
    R = Result::Unsat;
  } else {
    R = search(Assumptions, ConflictBudget, F);
  }

  LastConflicts = Conflicts - StartConflicts;
  LastPropagations = Propagations - StartPropagations;
  LastDecisions = Decisions - StartDecisions;
  return R;
}

SatSolver::Result SatSolver::search(const std::vector<Lit> &Assumptions,
                                    uint64_t ConflictBudget, Fuel *F) {
  uint64_t RestartLimit = 100;
  uint64_t ConflictsSinceRestart = 0;
  uint64_t StartConflicts = Conflicts;

  while (true) {
    ClauseRef Confl = propagate();
    if (Confl != NoReason) {
      ++Conflicts;
      ++ConflictsSinceRestart;
      if (TrailLim.empty()) {
        // Conflict at level 0: no assumption is on the trail, so the
        // instance is unsatisfiable outright. Latch it so later calls
        // answer immediately instead of re-searching stale state.
        Unsatisfiable = true;
        return Result::Unsat;
      }
      if (ConflictBudget && Conflicts - StartConflicts >= ConflictBudget) {
        // Leave the solver reusable: a later solve() must not see a stale
        // conflicting trail.
        backtrack(0);
        return Result::Unknown;
      }
      if (F && !F->consume(fuel::SatConflict)) {
        backtrack(0);
        return Result::Unknown;
      }

      std::vector<Lit> Learnt;
      unsigned BtLevel = 0;
      analyze(Confl, Learnt, BtLevel);
      backtrack(BtLevel);
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], NoReason);
      } else {
        Clause C;
        C.Ls = std::move(Learnt);
        C.Learnt = true;
        Clauses.push_back(std::move(C));
        ClauseRef CR = static_cast<ClauseRef>(Clauses.size() - 1);
        attach(CR);
        enqueue(Clauses[CR].Ls[0], CR);
      }
      decayActivities();

      if (ConflictsSinceRestart >= RestartLimit) {
        ConflictsSinceRestart = 0;
        RestartLimit = RestartLimit + RestartLimit / 2; // geometric
        backtrack(0);
      }
      continue;
    }

    // No conflict. Re-place any assumptions not currently on the trail as
    // pseudo-decisions (they sit below every real decision and are
    // re-established here after each restart or backjump).
    Lit Next;
    while (TrailLim.size() < Assumptions.size()) {
      Lit A = Assumptions[TrailLim.size()];
      LBool V = value(A);
      if (V == LBool::True) {
        // Already implied: open a dummy level so decision-level indices
        // keep matching assumption indices.
        TrailLim.push_back(static_cast<unsigned>(Trail.size()));
        continue;
      }
      if (V == LBool::False) {
        // The trail refutes this assumption: unsat *under assumptions*.
        // Do not latch Unsatisfiable — other assumptions may succeed.
        analyzeFinal(A);
        backtrack(0);
        return Result::Unsat;
      }
      Next = A;
      break;
    }
    if (Next.Code == 0) {
      Next = pickBranchLit();
      if (Next.Code == 0) {
        // Complete assignment, no conflict: snapshot the model, then
        // release the trail so the solver stays reusable.
        Model = Assign;
        backtrack(0);
        return Result::Sat;
      }
    } else {
      ++LastAssumptions;
    }
    if (F && !F->consume(fuel::SatDecision)) {
      backtrack(0);
      return Result::Unknown;
    }
    ++Decisions;
    TrailLim.push_back(static_cast<unsigned>(Trail.size()));
    enqueue(Next, NoReason);
  }
}

bool SatSolver::modelValue(unsigned Var) const {
  assert(Var < Model.size() && "model query out of range");
  return Model[Var] == LBool::True;
}

} // namespace veriopt
