//===- BitBlaster.cpp - BV-to-SAT Tseitin encoding ----------------------------//

#include "smt/BitBlaster.h"

namespace veriopt {

BitBlaster::BitBlaster(BVContext &Ctx, SatSolver &S) : Ctx(Ctx), Solver(S) {
  True = freshLit();
  Solver.addClause(True);
}

BitBlaster::BitBlaster(BVContext &Ctx, SatSolver &S, const BitBlaster &Proto)
    : Ctx(Ctx), Solver(S), True(Proto.True), Cache(Proto.Cache) {
  // S must be a copy of Proto's solver: every literal in the inherited
  // cache (including True) refers to variables that copy already owns.
  assert(S.numVars() >= Proto.Solver.numVars() &&
         "clone target is not a copy of the prototype's solver");
}

Lit BitBlaster::mkAnd(Lit A, Lit B) {
  if (isFalse(A) || isFalse(B))
    return falseLit();
  if (isTrue(A))
    return B;
  if (isTrue(B))
    return A;
  if (A == B)
    return A;
  if (A == ~B)
    return falseLit();
  Lit O = freshLit();
  Solver.addClause(~O, A);
  Solver.addClause(~O, B);
  Solver.addClause(O, ~A, ~B);
  return O;
}

Lit BitBlaster::mkXor(Lit A, Lit B) {
  if (isFalse(A))
    return B;
  if (isFalse(B))
    return A;
  if (isTrue(A))
    return ~B;
  if (isTrue(B))
    return ~A;
  if (A == B)
    return falseLit();
  if (A == ~B)
    return trueLit();
  Lit O = freshLit();
  Solver.addClause(~O, A, B);
  Solver.addClause(~O, ~A, ~B);
  Solver.addClause(O, ~A, B);
  Solver.addClause(O, A, ~B);
  return O;
}

Lit BitBlaster::mkMux(Lit S, Lit T, Lit F) {
  if (isTrue(S))
    return T;
  if (isFalse(S))
    return F;
  if (T == F)
    return T;
  if (isTrue(T) && isFalse(F))
    return S;
  if (isFalse(T) && isTrue(F))
    return ~S;
  Lit O = freshLit();
  Solver.addClause(~S, ~T, O);
  Solver.addClause(~S, T, ~O);
  Solver.addClause(S, ~F, O);
  Solver.addClause(S, F, ~O);
  return O;
}

std::vector<Lit> BitBlaster::addBits(const std::vector<Lit> &A,
                                     const std::vector<Lit> &B, Lit CarryIn,
                                     Lit *CarryOut) {
  assert(A.size() == B.size() && "adder width mismatch");
  std::vector<Lit> Sum(A.size());
  Lit Carry = CarryIn;
  for (size_t I = 0; I < A.size(); ++I) {
    Lit AxB = mkXor(A[I], B[I]);
    Sum[I] = mkXor(AxB, Carry);
    // carry' = (a & b) | (carry & (a ^ b))
    Carry = mkOr(mkAnd(A[I], B[I]), mkAnd(Carry, AxB));
  }
  if (CarryOut)
    *CarryOut = Carry;
  return Sum;
}

std::vector<Lit> BitBlaster::negBits(const std::vector<Lit> &A) {
  std::vector<Lit> NotA(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    NotA[I] = ~A[I];
  std::vector<Lit> Zero(A.size(), falseLit());
  return addBits(NotA, Zero, trueLit());
}

std::vector<Lit> BitBlaster::mulBits(const std::vector<Lit> &A,
                                     const std::vector<Lit> &B) {
  size_t W = A.size();
  std::vector<Lit> Acc(W, falseLit());
  for (size_t I = 0; I < W; ++I) {
    if (isFalse(B[I]))
      continue;
    // Partial product: (A << I) & B[I], truncated to W bits.
    std::vector<Lit> Part(W, falseLit());
    for (size_t J = 0; I + J < W; ++J)
      Part[I + J] = mkAnd(A[J], B[I]);
    Acc = addBits(Acc, Part, falseLit());
  }
  return Acc;
}

Lit BitBlaster::ultBits(const std::vector<Lit> &A, const std::vector<Lit> &B) {
  // a < b (unsigned) iff no carry out of a + ~b + 1.
  std::vector<Lit> NotB(B.size());
  for (size_t I = 0; I < B.size(); ++I)
    NotB[I] = ~B[I];
  Lit CarryOut = trueLit();
  addBits(A, NotB, trueLit(), &CarryOut);
  return ~CarryOut;
}

Lit BitBlaster::eqBits(const std::vector<Lit> &A, const std::vector<Lit> &B) {
  Lit Acc = trueLit();
  for (size_t I = 0; I < A.size(); ++I)
    Acc = mkAnd(Acc, ~mkXor(A[I], B[I]));
  return Acc;
}

std::vector<Lit> BitBlaster::divBits(const std::vector<Lit> &A,
                                     const std::vector<Lit> &B,
                                     std::vector<Lit> *OutRem) {
  // Restoring division, MSB first. With B == 0 this yields q = all-ones and
  // rem = A, matching the SMT-LIB convention used by BVContext's folder.
  size_t W = A.size();
  std::vector<Lit> Rem(W, falseLit());
  std::vector<Lit> Q(W, falseLit());
  for (size_t Step = 0; Step < W; ++Step) {
    size_t I = W - 1 - Step;
    // Rem = (Rem << 1) | A[I]
    for (size_t J = W - 1; J > 0; --J)
      Rem[J] = Rem[J - 1];
    Rem[0] = A[I];
    // Geq = Rem >= B; Diff = Rem - B.
    std::vector<Lit> NotB(W);
    for (size_t J = 0; J < W; ++J)
      NotB[J] = ~B[J];
    Lit CarryOut = trueLit();
    std::vector<Lit> Diff = addBits(Rem, NotB, trueLit(), &CarryOut);
    Lit Geq = CarryOut;
    for (size_t J = 0; J < W; ++J)
      Rem[J] = mkMux(Geq, Diff[J], Rem[J]);
    Q[I] = Geq;
  }
  if (OutRem)
    *OutRem = Rem;
  return Q;
}

std::vector<Lit> BitBlaster::shiftBits(const std::vector<Lit> &A,
                                       const std::vector<Lit> &Sh, BVOp Op) {
  size_t W = A.size();
  Lit Fill = Op == BVOp::AShr ? A[W - 1] : falseLit();
  std::vector<Lit> Cur = A;
  // Barrel stages for in-range amounts.
  for (size_t K = 0; (1ULL << K) < W; ++K) {
    size_t Amount = 1ULL << K;
    std::vector<Lit> Shifted(W);
    for (size_t J = 0; J < W; ++J) {
      if (Op == BVOp::Shl)
        Shifted[J] = J >= Amount ? Cur[J - Amount] : falseLit();
      else
        Shifted[J] = J + Amount < W ? Cur[J + Amount] : Fill;
    }
    for (size_t J = 0; J < W; ++J)
      Cur[J] = mkMux(Sh[K], Shifted[J], Cur[J]);
  }
  // Any set bit at or above log2(W) means the amount is >= W (widths are
  // powers of two), so the result is all fill bits.
  Lit Big = falseLit();
  for (size_t K = 0; K < W; ++K)
    if ((1ULL << K) >= W)
      Big = mkOr(Big, Sh[K]);
  for (size_t J = 0; J < W; ++J)
    Cur[J] = mkMux(Big, Fill, Cur[J]);
  return Cur;
}

const std::vector<Lit> &BitBlaster::blast(const BVExpr *E) {
  auto It = Cache.find(E);
  if (It != Cache.end())
    return It->second;

  std::vector<Lit> Out;
  switch (E->Op) {
  case BVOp::Const: {
    Out.resize(E->Width);
    for (unsigned I = 0; I < E->Width; ++I)
      Out[I] = E->ConstVal.getBit(I) ? trueLit() : falseLit();
    break;
  }
  case BVOp::Var: {
    Out.resize(E->Width);
    for (unsigned I = 0; I < E->Width; ++I)
      Out[I] = freshLit();
    break;
  }
  case BVOp::Not: {
    const auto &A = blast(E->Ops[0]);
    Out.resize(E->Width);
    for (unsigned I = 0; I < E->Width; ++I)
      Out[I] = ~A[I];
    break;
  }
  case BVOp::Neg:
    Out = negBits(blast(E->Ops[0]));
    break;
  case BVOp::Add:
    Out = addBits(blast(E->Ops[0]), blast(E->Ops[1]), falseLit());
    break;
  case BVOp::Sub: {
    std::vector<Lit> NotB;
    for (Lit L : blast(E->Ops[1]))
      NotB.push_back(~L);
    Out = addBits(blast(E->Ops[0]), NotB, trueLit());
    break;
  }
  case BVOp::Mul:
    Out = mulBits(blast(E->Ops[0]), blast(E->Ops[1]));
    break;
  case BVOp::UDiv:
    Out = divBits(blast(E->Ops[0]), blast(E->Ops[1]), nullptr);
    break;
  case BVOp::URem: {
    std::vector<Lit> Rem;
    divBits(blast(E->Ops[0]), blast(E->Ops[1]), &Rem);
    Out = std::move(Rem);
    break;
  }
  case BVOp::SDiv:
  case BVOp::SRem:
    assert(false && "sdiv/srem are derived in BVContext");
    break;
  case BVOp::Shl:
  case BVOp::LShr:
  case BVOp::AShr:
    Out = shiftBits(blast(E->Ops[0]), blast(E->Ops[1]), E->Op);
    break;
  case BVOp::And: {
    const auto &A = blast(E->Ops[0]);
    const auto &B = blast(E->Ops[1]);
    Out.resize(E->Width);
    for (unsigned I = 0; I < E->Width; ++I)
      Out[I] = mkAnd(A[I], B[I]);
    break;
  }
  case BVOp::Or: {
    const auto &A = blast(E->Ops[0]);
    const auto &B = blast(E->Ops[1]);
    Out.resize(E->Width);
    for (unsigned I = 0; I < E->Width; ++I)
      Out[I] = mkOr(A[I], B[I]);
    break;
  }
  case BVOp::Xor: {
    const auto &A = blast(E->Ops[0]);
    const auto &B = blast(E->Ops[1]);
    Out.resize(E->Width);
    for (unsigned I = 0; I < E->Width; ++I)
      Out[I] = mkXor(A[I], B[I]);
    break;
  }
  case BVOp::Eq:
    Out.push_back(eqBits(blast(E->Ops[0]), blast(E->Ops[1])));
    break;
  case BVOp::Ult:
    Out.push_back(ultBits(blast(E->Ops[0]), blast(E->Ops[1])));
    break;
  case BVOp::Slt: {
    // Flip sign bits and compare unsigned.
    std::vector<Lit> A = blast(E->Ops[0]);
    std::vector<Lit> B = blast(E->Ops[1]);
    A.back() = ~A.back();
    B.back() = ~B.back();
    Out.push_back(ultBits(A, B));
    break;
  }
  case BVOp::ITE: {
    Lit S = blastBool(E->Ops[0]);
    const auto &T = blast(E->Ops[1]);
    const auto &F = blast(E->Ops[2]);
    Out.resize(E->Width);
    for (unsigned I = 0; I < E->Width; ++I)
      Out[I] = mkMux(S, T[I], F[I]);
    break;
  }
  case BVOp::ZExt: {
    Out = blast(E->Ops[0]);
    Out.resize(E->Width, falseLit());
    break;
  }
  case BVOp::SExt: {
    Out = blast(E->Ops[0]);
    Lit Sign = Out.back();
    Out.resize(E->Width, Sign);
    break;
  }
  case BVOp::Extract: {
    const auto &A = blast(E->Ops[0]);
    Out.assign(A.begin() + E->Lo, A.begin() + E->Lo + E->Width);
    break;
  }
  case BVOp::Concat: {
    const auto &Hi = blast(E->Ops[0]);
    const auto &Lo = blast(E->Ops[1]);
    Out = Lo;
    Out.insert(Out.end(), Hi.begin(), Hi.end());
    break;
  }
  }
  assert(Out.size() == E->Width && "blasted width mismatch");
  return Cache.emplace(E, std::move(Out)).first->second;
}

APInt64 BitBlaster::read(const BVExpr *E) const {
  auto It = Cache.find(E);
  assert(It != Cache.end() && "reading a term that was never blasted");
  uint64_t Bits = 0;
  for (unsigned I = 0; I < E->Width; ++I)
    if (Solver.modelValue(It->second[I]))
      Bits |= 1ULL << I;
  return APInt64(E->Width, Bits);
}

} // namespace veriopt
