//===- Solver.cpp - Bit-vector satisfiability queries -------------------------//

#include "smt/Solver.h"

#include "trace/Metrics.h"

namespace veriopt {

SmtCheck checkSat(BVContext &Ctx, const BVExpr *Constraint,
                  const std::vector<const BVExpr *> &ModelTerms,
                  uint64_t ConflictBudget, Fuel *F) {
  assert(Constraint->Width == 1 && "constraint must be width 1");
  SmtCheck Out;

  // Trivial cases survive construction-time folding.
  if (Constraint->isFalse()) {
    Out.St = SmtCheck::Unsat;
    return Out;
  }

  SatSolver S;
  BitBlaster BB(Ctx, S);
  // Blast model terms first so their literals exist even if simplification
  // removed them from the constraint.
  for (const BVExpr *T : ModelTerms)
    BB.blast(T);
  BB.assertTrue(Constraint);

  switch (S.solve(ConflictBudget, F)) {
  case SatSolver::Result::Sat:
    Out.St = SmtCheck::Sat;
    for (const BVExpr *T : ModelTerms) {
      assert(T->Op == BVOp::Var && "model terms must be variables");
      Out.Model[T->VarId] = BB.read(T);
    }
    break;
  case SatSolver::Result::Unsat:
    Out.St = SmtCheck::Unsat;
    break;
  case SatSolver::Result::Unknown:
    Out.St = SmtCheck::Unknown;
    break;
  }
  Out.Conflicts = S.conflicts();

  MetricsRegistry &M = MetricsRegistry::global();
  static Counter &Queries = M.counter("smt.queries");
  static Counter &Conflicts = M.counter("smt.conflicts");
  static Counter &Propagations = M.counter("smt.propagations");
  static Counter &Decisions = M.counter("smt.decisions");
  Queries.inc();
  Conflicts.inc(S.conflicts());
  Propagations.inc(S.propagations());
  Decisions.inc(S.decisions());
  return Out;
}

QueryPrefix::QueryPrefix(BVContext &Ctx,
                         const std::vector<const BVExpr *> &PrefixTerms)
    : Ctx(Ctx) {
  Proto = std::make_unique<BitBlaster>(Ctx, Master);
  for (const BVExpr *T : PrefixTerms)
    Proto->blast(T);
}

SmtCheck QueryPrefix::solveOn(SatSolver &S, BitBlaster &BB,
                              const BVExpr *Constraint,
                              const std::vector<const BVExpr *> &ModelTerms,
                              uint64_t ConflictBudget, Fuel *F,
                              uint64_t RetainedClauses) {
  assert(Constraint->Width == 1 && "constraint must be width 1");
  SmtCheck Out;

  // Trivial cases survive construction-time folding: no solver run, no
  // metrics — exactly checkSat's short-circuit.
  if (Constraint->isFalse()) {
    Out.St = SmtCheck::Unsat;
    return Out;
  }

  // Model terms first so their literals exist even if simplification
  // removed them from the constraint (same discipline as checkSat).
  for (const BVExpr *T : ModelTerms)
    BB.blast(T);
  Lit CexLit = BB.blastBool(Constraint);

  // Guarded activation: the constraint only binds while the selector is
  // assumed, so the CNF stays satisfiable on its own and an Unsat answer
  // never latches the solver. Freezing keeps the search from branching the
  // selector true on its own.
  unsigned SelVar = S.newVar();
  S.setFrozen(SelVar, true);
  Lit Sel(SelVar, false);
  S.addClause(~Sel, CexLit);

  switch (S.solve({Sel}, ConflictBudget, F)) {
  case SatSolver::Result::Sat:
    Out.St = SmtCheck::Sat;
    for (const BVExpr *T : ModelTerms) {
      assert(T->Op == BVOp::Var && "model terms must be variables");
      Out.Model[T->VarId] = BB.read(T);
    }
    break;
  case SatSolver::Result::Unsat:
    Out.St = SmtCheck::Unsat;
    break;
  case SatSolver::Result::Unknown:
    Out.St = SmtCheck::Unknown;
    break;
  }
  Out.Conflicts = S.lastConflicts();

  MetricsRegistry &M = MetricsRegistry::global();
  static Counter &Queries = M.counter("smt.queries");
  static Counter &Conflicts = M.counter("smt.conflicts");
  static Counter &Propagations = M.counter("smt.propagations");
  static Counter &Decisions = M.counter("smt.decisions");
  static Counter &AssumptionSolves = M.counter("smt.assumption_solves");
  static Counter &ClausesRetained = M.counter("smt.clauses_retained");
  Queries.inc();
  Conflicts.inc(S.lastConflicts());
  Propagations.inc(S.lastPropagations());
  Decisions.inc(S.lastDecisions());
  AssumptionSolves.inc();
  if (RetainedClauses)
    ClausesRetained.inc(RetainedClauses);
  return Out;
}

SmtCheck QueryPrefix::activate(const BVExpr *Constraint,
                               const std::vector<const BVExpr *> &ModelTerms,
                               uint64_t ConflictBudget, Fuel *F,
                               bool CountRetained) const {
  if (Constraint->isFalse()) {
    SmtCheck Out;
    Out.St = SmtCheck::Unsat;
    return Out;
  }
  // An exact copy of the master (never solved, so its search state is
  // pristine) plus the inherited term-to-literal cache: continuing to blast
  // on the copy is the same state trajectory as one solver doing the whole
  // query from scratch.
  SatSolver S = Master;
  BitBlaster BB(Ctx, S, *Proto);
  return solveOn(S, BB, Constraint, ModelTerms, ConflictBudget, F,
                 CountRetained ? Master.numClauses() : 0);
}

SmtCheck QueryPrefix::activateInPlace(const BVExpr *Constraint,
                                      const std::vector<const BVExpr *> &ModelTerms,
                                      uint64_t ConflictBudget, Fuel *F) {
  return solveOn(Master, *Proto, Constraint, ModelTerms, ConflictBudget, F, 0);
}

} // namespace veriopt
