//===- Solver.cpp - One-shot bit-vector satisfiability queries ----------------//

#include "smt/Solver.h"

#include "smt/BitBlaster.h"
#include "trace/Metrics.h"

namespace veriopt {

SmtCheck checkSat(BVContext &Ctx, const BVExpr *Constraint,
                  const std::vector<const BVExpr *> &ModelTerms,
                  uint64_t ConflictBudget, Fuel *F) {
  assert(Constraint->Width == 1 && "constraint must be width 1");
  SmtCheck Out;

  // Trivial cases survive construction-time folding.
  if (Constraint->isFalse()) {
    Out.St = SmtCheck::Unsat;
    return Out;
  }

  SatSolver S;
  BitBlaster BB(Ctx, S);
  // Blast model terms first so their literals exist even if simplification
  // removed them from the constraint.
  for (const BVExpr *T : ModelTerms)
    BB.blast(T);
  BB.assertTrue(Constraint);

  switch (S.solve(ConflictBudget, F)) {
  case SatSolver::Result::Sat:
    Out.St = SmtCheck::Sat;
    for (const BVExpr *T : ModelTerms) {
      assert(T->Op == BVOp::Var && "model terms must be variables");
      Out.Model[T->VarId] = BB.read(T);
    }
    break;
  case SatSolver::Result::Unsat:
    Out.St = SmtCheck::Unsat;
    break;
  case SatSolver::Result::Unknown:
    Out.St = SmtCheck::Unknown;
    break;
  }
  Out.Conflicts = S.conflicts();

  MetricsRegistry &M = MetricsRegistry::global();
  static Counter &Queries = M.counter("smt.queries");
  static Counter &Conflicts = M.counter("smt.conflicts");
  static Counter &Propagations = M.counter("smt.propagations");
  static Counter &Decisions = M.counter("smt.decisions");
  Queries.inc();
  Conflicts.inc(S.conflicts());
  Propagations.inc(S.propagations());
  Decisions.inc(S.decisions());
  return Out;
}

} // namespace veriopt
