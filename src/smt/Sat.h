//===- Sat.h - CDCL SAT solver -----------------------------------*- C++ -*-=//
//
// A compact conflict-driven clause-learning SAT solver: two-watched-literal
// propagation, VSIDS-style decaying activities with phase saving, first-UIP
// clause learning, and geometric restarts. It is the decision procedure
// underneath the bit-vector layer that stands in for Z3 in the Alive-lite
// translation validator.
//
// A conflict budget bounds each query; exhausting it returns Unknown, which
// the verifier surfaces as the paper's "Inconclusive" outcome.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SMT_SAT_H
#define VERIOPT_SMT_SAT_H

#include "support/Fuel.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace veriopt {

/// A literal: variable index (1-based) with a sign. Encoded as
/// 2*var + (negated ? 1 : 0) for dense array indexing.
struct Lit {
  unsigned Code = 0;

  Lit() = default;
  Lit(unsigned Var, bool Negated) : Code(2 * Var + (Negated ? 1 : 0)) {}

  unsigned var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
};

/// Three-valued assignment.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

class SatSolver {
public:
  enum class Result { Sat, Unsat, Unknown };

  SatSolver();

  /// Allocate a fresh variable; returns its index (>= 1).
  unsigned newVar();

  unsigned numVars() const {
    return static_cast<unsigned>(Activity.size()) - 1; // var 0 is a dummy
  }
  unsigned numClauses() const { return static_cast<unsigned>(Clauses.size()); }
  uint64_t conflicts() const { return Conflicts; }
  uint64_t propagations() const { return Propagations; }
  uint64_t decisions() const { return Decisions; }

  /// Add a clause (disjunction of literals). Returns false if the formula
  /// became trivially unsatisfiable (empty clause / conflicting units).
  bool addClause(std::vector<Lit> Ls);
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Solve with a conflict budget (0 = unlimited). A non-null \p F is
  /// charged per decision and per conflict; when it runs dry the search
  /// stops with Unknown (the token latches the exhaustion, so callers can
  /// distinguish fuel-out from conflict-budget-out).
  Result solve(uint64_t ConflictBudget = 0, Fuel *F = nullptr);

  /// Model access after Sat.
  bool modelValue(unsigned Var) const;
  bool modelValue(Lit L) const {
    return modelValue(L.var()) != L.negated();
  }

private:
  struct Clause {
    std::vector<Lit> Ls;
    bool Learnt = false;
    double Activity = 0;
  };
  using ClauseRef = int;

  struct Watch {
    ClauseRef CR;
    Lit Blocker;
  };

  LBool value(Lit L) const {
    LBool V = Assign[L.var()];
    if (V == LBool::Undef)
      return V;
    return (V == LBool::True) != L.negated() ? LBool::True : LBool::False;
  }

  void attach(ClauseRef CR);
  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &Learnt, unsigned &BtLevel);
  void backtrack(unsigned Level);
  Lit pickBranchLit();
  void bumpVar(unsigned V);
  void decayActivities();
  bool ensureUnassignedExists();

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watch>> Watches; // indexed by Lit code
  std::vector<LBool> Assign;               // per var
  std::vector<LBool> SavedPhase;           // per var
  std::vector<unsigned> LevelOf;           // per var
  std::vector<ClauseRef> ReasonOf;         // per var
  std::vector<Lit> Trail;
  std::vector<unsigned> TrailLim; // decision-level boundaries
  size_t QHead = 0;

  std::vector<double> Activity; // per var
  double ActivityInc = 1.0;
  std::vector<uint8_t> Seen; // scratch for analyze()

  uint64_t Conflicts = 0;
  uint64_t Propagations = 0;
  uint64_t Decisions = 0;
  bool Unsatisfiable = false;
};

} // namespace veriopt

#endif // VERIOPT_SMT_SAT_H
