//===- Sat.h - CDCL SAT solver -----------------------------------*- C++ -*-=//
//
// A compact conflict-driven clause-learning SAT solver: two-watched-literal
// propagation, VSIDS-style decaying activities with phase saving, first-UIP
// clause learning, and geometric restarts. It is the decision procedure
// underneath the bit-vector layer that stands in for Z3 in the Alive-lite
// translation validator.
//
// The solver is *incremental* in the MiniSat sense: clauses (including
// learned clauses) are retained across solve() calls, and a call may pass a
// list of assumption literals that are treated as pseudo-decisions below
// every real decision. An UNSAT answer under assumptions does not poison
// the solver — conflictCore() names the failed assumption subset and the
// next call may retry with different assumptions. Only a conflict at
// decision level 0 (no assumptions involved) latches the instance as
// globally unsatisfiable.
//
// Every solve() call returns with the trail backtracked to decision level 0
// (models are snapshotted first), so addClause()/solve() may be freely
// interleaved. Selector variables guarding group-local encodings should be
// marked with setFrozen(): frozen variables are branched on only after
// every unfrozen variable is assigned, so dormant groups stay deactivated
// (phase saving defaults selectors to false) instead of being speculatively
// activated mid-search.
//
// A conflict budget bounds each query; exhausting it returns Unknown, which
// the verifier surfaces as the paper's "Inconclusive" outcome.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SMT_SAT_H
#define VERIOPT_SMT_SAT_H

#include "support/Fuel.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace veriopt {

/// A literal: variable index (1-based) with a sign. Encoded as
/// 2*var + (negated ? 1 : 0) for dense array indexing.
struct Lit {
  unsigned Code = 0;

  Lit() = default;
  Lit(unsigned Var, bool Negated) : Code(2 * Var + (Negated ? 1 : 0)) {}

  unsigned var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
};

/// Three-valued assignment.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

class SatSolver {
public:
  enum class Result { Sat, Unsat, Unknown };

  SatSolver();

  /// Allocate a fresh variable; returns its index (>= 1).
  unsigned newVar();

  unsigned numVars() const {
    return static_cast<unsigned>(Activity.size()) - 1; // var 0 is a dummy
  }
  unsigned numClauses() const { return static_cast<unsigned>(Clauses.size()); }
  uint64_t conflicts() const { return Conflicts; }
  uint64_t propagations() const { return Propagations; }
  uint64_t decisions() const { return Decisions; }

  /// Per-call accounting: deltas accumulated by the most recent solve().
  uint64_t lastConflicts() const { return LastConflicts; }
  uint64_t lastPropagations() const { return LastPropagations; }
  uint64_t lastDecisions() const { return LastDecisions; }
  /// Assumption placements performed by the most recent solve() (counts
  /// re-placements after restarts and backjumps, so it measures how often
  /// the assumption prefix was rebuilt).
  uint64_t lastAssumptions() const { return LastAssumptions; }

  /// Exclude \p Var from normal branching: frozen variables (selector
  /// literals guarding a group-local encoding) are decided only once every
  /// unfrozen variable is assigned, so inactive groups stay deactivated
  /// (saved phase defaults to false) instead of being branched true
  /// mid-search. Assumptions may still assert frozen variables directly.
  void setFrozen(unsigned Var, bool B);

  /// Add a clause (disjunction of literals). Returns false if the formula
  /// became trivially unsatisfiable (empty clause / conflicting units).
  bool addClause(std::vector<Lit> Ls);
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Solve with a conflict budget (0 = unlimited). A non-null \p F is
  /// charged per decision and per conflict; when it runs dry the search
  /// stops with Unknown (the token latches the exhaustion, so callers can
  /// distinguish fuel-out from conflict-budget-out).
  Result solve(uint64_t ConflictBudget = 0, Fuel *F = nullptr);

  /// Solve under \p Assumptions: each literal is asserted as a
  /// pseudo-decision below all real decisions (and re-placed after every
  /// restart or backjump). Unsat means "unsatisfiable together with the
  /// assumptions"; conflictCore() then holds the failed subset. Clauses
  /// learned during the call are retained for later calls.
  Result solve(const std::vector<Lit> &Assumptions,
               uint64_t ConflictBudget = 0, Fuel *F = nullptr);

  /// After an Unsat answer: the subset of the assumptions that was refuted
  /// (their conjunction is inconsistent with the clauses). Empty when the
  /// instance is globally unsatisfiable independent of any assumption.
  const std::vector<Lit> &conflictCore() const { return Core; }

  /// Model access after Sat. The model is snapshotted before the solver
  /// backtracks, so it stays valid across later addClause()/solve() calls.
  bool modelValue(unsigned Var) const;
  bool modelValue(Lit L) const {
    return modelValue(L.var()) != L.negated();
  }

private:
  struct Clause {
    std::vector<Lit> Ls;
    bool Learnt = false;
    double Activity = 0;
  };
  using ClauseRef = int;

  struct Watch {
    ClauseRef CR;
    Lit Blocker;
  };

  LBool value(Lit L) const {
    LBool V = Assign[L.var()];
    if (V == LBool::Undef)
      return V;
    return (V == LBool::True) != L.negated() ? LBool::True : LBool::False;
  }

  void attach(ClauseRef CR);
  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &Learnt, unsigned &BtLevel);
  void analyzeFinal(Lit FailedAssump);
  void backtrack(unsigned Level);
  Lit pickBranchLit();
  void bumpVar(unsigned V);
  void decayActivities();
  Result search(const std::vector<Lit> &Assumptions, uint64_t ConflictBudget,
                Fuel *F);

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watch>> Watches; // indexed by Lit code
  std::vector<LBool> Assign;               // per var
  std::vector<LBool> SavedPhase;           // per var
  std::vector<unsigned> LevelOf;           // per var
  std::vector<ClauseRef> ReasonOf;         // per var
  std::vector<uint8_t> Frozen;             // per var: deprioritized branching
  std::vector<Lit> Trail;
  std::vector<unsigned> TrailLim; // decision-level boundaries
  size_t QHead = 0;

  std::vector<double> Activity; // per var
  double ActivityInc = 1.0;
  std::vector<uint8_t> Seen; // scratch for analyze()

  std::vector<LBool> Model; // snapshot of the last Sat assignment
  std::vector<Lit> Core;    // failed assumptions of the last Unsat

  uint64_t Conflicts = 0;
  uint64_t Propagations = 0;
  uint64_t Decisions = 0;
  uint64_t LastConflicts = 0;
  uint64_t LastPropagations = 0;
  uint64_t LastDecisions = 0;
  uint64_t LastAssumptions = 0;
  bool Unsatisfiable = false;
};

} // namespace veriopt

#endif // VERIOPT_SMT_SAT_H
