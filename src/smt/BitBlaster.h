//===- BitBlaster.h - BV-to-SAT Tseitin encoding -----------------*- C++ -*-=//
//
// Lowers BVExpr terms to CNF over a SatSolver: ripple-carry adders,
// shift-add multipliers, restoring dividers, barrel shifters, and
// comparator chains. Each distinct term is encoded once (the term DAG is
// hash-consed, so sharing is maximal).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SMT_BITBLASTER_H
#define VERIOPT_SMT_BITBLASTER_H

#include "smt/BVExpr.h"
#include "smt/Sat.h"

#include <unordered_map>

namespace veriopt {

class BitBlaster {
public:
  BitBlaster(BVContext &Ctx, SatSolver &S);

  /// Clone construction for incremental group verification: bind to \p S —
  /// which must be a copy of the solver \p Proto was built against — and
  /// inherit Proto's term-to-literal cache. Terms Proto already blasted
  /// (the shared source-function prefix) resolve to the retained CNF in the
  /// copied solver instead of being re-emitted.
  BitBlaster(BVContext &Ctx, SatSolver &S, const BitBlaster &Proto);

  /// Encode \p E (LSB-first literal vector). Cached per term.
  const std::vector<Lit> &blast(const BVExpr *E);

  /// Encode a width-1 term as a single literal.
  Lit blastBool(const BVExpr *E) {
    assert(E->Width == 1 && "not a boolean term");
    return blast(E)[0];
  }

  /// Assert that a width-1 term holds.
  void assertTrue(const BVExpr *E) { Solver.addClause(blastBool(E)); }

  Lit trueLit() const { return True; }
  Lit falseLit() const { return ~True; }

  /// After a Sat result: the value the model assigns to any blasted term.
  APInt64 read(const BVExpr *E) const;

private:
  Lit freshLit() { return Lit(Solver.newVar(), false); }
  bool isTrue(Lit L) const { return L == True; }
  bool isFalse(Lit L) const { return L == ~True; }

  Lit mkAnd(Lit A, Lit B);
  Lit mkOr(Lit A, Lit B) { return ~mkAnd(~A, ~B); }
  Lit mkXor(Lit A, Lit B);
  Lit mkMux(Lit S, Lit T, Lit F); // S ? T : F

  std::vector<Lit> addBits(const std::vector<Lit> &A,
                           const std::vector<Lit> &B, Lit CarryIn,
                           Lit *CarryOut = nullptr);
  std::vector<Lit> negBits(const std::vector<Lit> &A);
  std::vector<Lit> mulBits(const std::vector<Lit> &A,
                           const std::vector<Lit> &B);
  /// Restoring divider; returns quotient and (via OutRem) the remainder.
  std::vector<Lit> divBits(const std::vector<Lit> &A,
                           const std::vector<Lit> &B,
                           std::vector<Lit> *OutRem);
  std::vector<Lit> shiftBits(const std::vector<Lit> &A,
                             const std::vector<Lit> &Sh, BVOp Op);
  Lit ultBits(const std::vector<Lit> &A, const std::vector<Lit> &B);
  Lit eqBits(const std::vector<Lit> &A, const std::vector<Lit> &B);

  BVContext &Ctx;
  SatSolver &Solver;
  Lit True;
  std::unordered_map<const BVExpr *, std::vector<Lit>> Cache;
};

} // namespace veriopt

#endif // VERIOPT_SMT_BITBLASTER_H
