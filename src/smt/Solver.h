//===- Solver.h - Bit-vector satisfiability queries --------------*- C++ -*-=//
//
// Two front doors over the CDCL core:
//  - checkSat(): the classic one-shot query (fresh solver per call).
//  - QueryPrefix: an incremental query template for group verification. A
//    fixed, candidate-independent list of terms (the source half of a
//    refinement query) is bit-blasted once into a master solver; each
//    candidate then activates the prefix — blasting only its own terms on
//    top and asserting the query behind a frozen selector assumption.
//    Activations never solve on the master, so every activation starts from
//    the same search state and the answer is a pure function of
//    (prefix, candidate, budget): bit-identical to building the same CNF
//    from scratch, at any thread count and in any activation order.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SMT_SOLVER_H
#define VERIOPT_SMT_SOLVER_H

#include "smt/BitBlaster.h"
#include "smt/BVExpr.h"
#include "support/Fuel.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace veriopt {

/// Result of a checkSat query.
struct SmtCheck {
  enum Status { Sat, Unsat, Unknown } St = Unknown;
  /// Satisfying assignment (VarId -> value) for the requested terms.
  std::unordered_map<unsigned, APInt64> Model;
  uint64_t Conflicts = 0; ///< SAT search effort actually spent
};

/// Decide satisfiability of a width-1 constraint. \p ModelTerms lists the
/// Var terms whose values should be reported on Sat. \p ConflictBudget
/// bounds the search (0 = unlimited); exhaustion reports Unknown, which the
/// verifier maps to the paper's Inconclusive outcome. A non-null \p F is
/// the shared verification fuel token: the search also stops (Unknown) when
/// it runs dry, with the exhaustion latched on the token.
SmtCheck checkSat(BVContext &Ctx, const BVExpr *Constraint,
                  const std::vector<const BVExpr *> &ModelTerms = {},
                  uint64_t ConflictBudget = DefaultSolverConflictBudget,
                  Fuel *F = nullptr);

/// A retained CNF prefix shared by a group of related queries. Construction
/// blasts \p PrefixTerms into the master solver; activate() stamps out a
/// copy per candidate, extends it with the candidate's terms, and solves
/// the constraint under a selector assumption. The context is only *read*
/// during activation (every constraint term must already be interned), so
/// concurrent activations of one prefix are safe.
class QueryPrefix {
public:
  QueryPrefix(BVContext &Ctx, const std::vector<const BVExpr *> &PrefixTerms);

  /// Clauses a clone inherits instead of re-emitting (the reuse the
  /// smt.clauses_retained metric counts).
  unsigned numClauses() const { return Master.numClauses(); }

  /// Copy the master solver, blast \p ModelTerms then \p Constraint on top,
  /// add (Sel -> Constraint) with a fresh frozen selector Sel, and solve
  /// under the assumption Sel. Emits the same smt.* metrics as checkSat
  /// plus smt.assumption_solves; \p CountRetained additionally credits the
  /// inherited prefix clauses to smt.clauses_retained (set it only when the
  /// prefix genuinely replaces a re-encode, i.e. on the batch path).
  SmtCheck activate(const BVExpr *Constraint,
                    const std::vector<const BVExpr *> &ModelTerms,
                    uint64_t ConflictBudget, Fuel *F,
                    bool CountRetained) const;

  /// One-shot variant for sequential callers that build a fresh prefix per
  /// query: solves directly on the master (skipping the copy). The prefix
  /// must not be activated again afterwards. Results are bit-identical to
  /// activate() — the copy there is exact, so both run the same search.
  SmtCheck activateInPlace(const BVExpr *Constraint,
                           const std::vector<const BVExpr *> &ModelTerms,
                           uint64_t ConflictBudget, Fuel *F);

private:
  static SmtCheck solveOn(SatSolver &S, BitBlaster &BB,
                          const BVExpr *Constraint,
                          const std::vector<const BVExpr *> &ModelTerms,
                          uint64_t ConflictBudget, Fuel *F,
                          uint64_t RetainedClauses);

  BVContext &Ctx;
  SatSolver Master;
  std::unique_ptr<BitBlaster> Proto;
};

} // namespace veriopt

#endif // VERIOPT_SMT_SOLVER_H
