//===- Solver.h - One-shot bit-vector satisfiability queries ------*- C++ -*-=//

#ifndef VERIOPT_SMT_SOLVER_H
#define VERIOPT_SMT_SOLVER_H

#include "smt/BVExpr.h"
#include "support/Fuel.h"

#include <unordered_map>
#include <vector>

namespace veriopt {

/// Result of a checkSat query.
struct SmtCheck {
  enum Status { Sat, Unsat, Unknown } St = Unknown;
  /// Satisfying assignment (VarId -> value) for the requested terms.
  std::unordered_map<unsigned, APInt64> Model;
  uint64_t Conflicts = 0; ///< SAT search effort actually spent
};

/// Decide satisfiability of a width-1 constraint. \p ModelTerms lists the
/// Var terms whose values should be reported on Sat. \p ConflictBudget
/// bounds the search (0 = unlimited); exhaustion reports Unknown, which the
/// verifier maps to the paper's Inconclusive outcome. A non-null \p F is
/// the shared verification fuel token: the search also stops (Unknown) when
/// it runs dry, with the exhaustion latched on the token.
SmtCheck checkSat(BVContext &Ctx, const BVExpr *Constraint,
                  const std::vector<const BVExpr *> &ModelTerms = {},
                  uint64_t ConflictBudget = DefaultSolverConflictBudget,
                  Fuel *F = nullptr);

} // namespace veriopt

#endif // VERIOPT_SMT_SOLVER_H
