//===- BVExpr.h - Hash-consed bit-vector terms -------------------*- C++ -*-=//
//
// The term language of the Alive-lite verifier: fixed-width bit-vectors
// (width 1 doubles as bool) with the operations LLVM integer IR needs.
// Terms are immutable, hash-consed within a BVContext, and constant-folded
// / locally simplified at construction, which substantially shrinks the
// formulas handed to the bit-blaster (an ablation bench quantifies this).
//
// Semantics must match both the interpreter and the bit-blaster exactly:
//  - shifts with amounts >= width yield 0 (ashr: sign fill),
//  - division is total here (div-by-zero yields all-ones / dividend, the
//    standard SMT-LIB convention); UB guards are asserted separately.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_SMT_BVEXPR_H
#define VERIOPT_SMT_BVEXPR_H

#include "support/APInt64.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace veriopt {

enum class BVOp : unsigned {
  Const,
  Var,
  Not,
  Neg,
  Add,
  Sub,
  Mul,
  UDiv,
  SDiv,
  URem,
  SRem,
  Shl,
  LShr,
  AShr,
  And,
  Or,
  Xor,
  Eq,   // width-1 result
  Ult,  // width-1 result
  Slt,  // width-1 result
  ITE,  // ops: cond(1), then, else
  ZExt,
  SExt,
  Extract, // ops: src; Lo = low bit index
  Concat,  // ops: hi, lo; width = whi + wlo
};

/// An immutable, interned term. Identity comparison (pointer equality) is
/// semantic equality up to the constructor simplifications.
struct BVExpr {
  BVOp Op;
  unsigned Width;
  APInt64 ConstVal; // Const only
  unsigned VarId = 0;   // Var only
  unsigned Lo = 0;      // Extract only
  std::vector<const BVExpr *> Ops;

  bool isConst() const { return Op == BVOp::Const; }
  bool isConst(uint64_t V) const {
    return isConst() && ConstVal.zext() == V;
  }
  bool isTrue() const { return Width == 1 && isConst(1); }
  bool isFalse() const { return Width == 1 && isConst(0); }
};

/// Owns and interns terms; provides smart constructors with folding.
class BVContext {
public:
  BVContext() = default;
  BVContext(const BVContext &) = delete;
  BVContext &operator=(const BVContext &) = delete;

  //===--- Leaves ---------------------------------------------------------===//

  const BVExpr *constant(APInt64 V);
  const BVExpr *constant(unsigned Width, uint64_t Bits) {
    return constant(APInt64(Width, Bits));
  }
  const BVExpr *trueVal() { return constant(1, 1); }
  const BVExpr *falseVal() { return constant(1, 0); }
  const BVExpr *boolVal(bool B) { return constant(1, B ? 1 : 0); }

  /// Fresh symbolic variable with a diagnostic name.
  const BVExpr *var(unsigned Width, const std::string &Name);
  const std::string &varName(unsigned VarId) const { return VarNames[VarId]; }
  unsigned numVars() const { return static_cast<unsigned>(VarNames.size()); }

  //===--- Bit-vector operations ------------------------------------------===//

  const BVExpr *add(const BVExpr *A, const BVExpr *B);
  const BVExpr *sub(const BVExpr *A, const BVExpr *B);
  const BVExpr *mul(const BVExpr *A, const BVExpr *B);
  const BVExpr *udiv(const BVExpr *A, const BVExpr *B);
  const BVExpr *sdiv(const BVExpr *A, const BVExpr *B);
  const BVExpr *urem(const BVExpr *A, const BVExpr *B);
  const BVExpr *srem(const BVExpr *A, const BVExpr *B);
  const BVExpr *shl(const BVExpr *A, const BVExpr *B);
  const BVExpr *lshr(const BVExpr *A, const BVExpr *B);
  const BVExpr *ashr(const BVExpr *A, const BVExpr *B);
  const BVExpr *bvand(const BVExpr *A, const BVExpr *B);
  const BVExpr *bvor(const BVExpr *A, const BVExpr *B);
  const BVExpr *bvxor(const BVExpr *A, const BVExpr *B);
  const BVExpr *bvnot(const BVExpr *A);
  const BVExpr *neg(const BVExpr *A);

  const BVExpr *zext(const BVExpr *A, unsigned NewWidth);
  const BVExpr *sext(const BVExpr *A, unsigned NewWidth);
  const BVExpr *trunc(const BVExpr *A, unsigned NewWidth) {
    return extract(A, 0, NewWidth);
  }
  const BVExpr *extract(const BVExpr *A, unsigned Lo, unsigned Width);
  /// Hi bits above Lo bits.
  const BVExpr *concat(const BVExpr *Hi, const BVExpr *Lo);

  //===--- Predicates (width-1 results) -----------------------------------===//

  const BVExpr *eq(const BVExpr *A, const BVExpr *B);
  const BVExpr *ne(const BVExpr *A, const BVExpr *B) {
    return bvnot(eq(A, B));
  }
  const BVExpr *ult(const BVExpr *A, const BVExpr *B);
  const BVExpr *ule(const BVExpr *A, const BVExpr *B) {
    return bvnot(ult(B, A));
  }
  const BVExpr *ugt(const BVExpr *A, const BVExpr *B) { return ult(B, A); }
  const BVExpr *uge(const BVExpr *A, const BVExpr *B) { return ule(B, A); }
  const BVExpr *slt(const BVExpr *A, const BVExpr *B);
  const BVExpr *sle(const BVExpr *A, const BVExpr *B) {
    return bvnot(slt(B, A));
  }
  const BVExpr *sgt(const BVExpr *A, const BVExpr *B) { return slt(B, A); }
  const BVExpr *sge(const BVExpr *A, const BVExpr *B) { return sle(B, A); }

  //===--- Boolean structure (width-1 terms) ------------------------------===//

  const BVExpr *ite(const BVExpr *C, const BVExpr *T, const BVExpr *F);
  const BVExpr *and1(const BVExpr *A, const BVExpr *B) { return bvand(A, B); }
  const BVExpr *or1(const BVExpr *A, const BVExpr *B) { return bvor(A, B); }
  const BVExpr *not1(const BVExpr *A) { return bvnot(A); }
  const BVExpr *implies(const BVExpr *A, const BVExpr *B) {
    return or1(not1(A), B);
  }

  /// Number of distinct interned nodes (for the simplification ablation).
  size_t numNodes() const { return Pool.size(); }

  /// Hash-consing efficacy: interning requests that found an existing
  /// structurally identical node vs. ones that allocated a new node. When a
  /// group of candidates shares one context, cross-candidate hits measure
  /// how much of the encoding was emitted once and reused.
  uint64_t cseHits() const { return CseHits; }
  uint64_t cseMisses() const { return CseMisses; }

  /// Evaluate a term under a model (VarId -> value). Used to confirm SAT
  /// models and in differential tests against the bit-blaster.
  APInt64 evaluate(const BVExpr *E,
                   const std::unordered_map<unsigned, APInt64> &Model) const;

private:
  const BVExpr *intern(BVExpr E);
  const BVExpr *binary(BVOp Op, const BVExpr *A, const BVExpr *B,
                       unsigned Width);

  std::deque<BVExpr> Pool;
  std::unordered_map<std::string, const BVExpr *> Interned;
  std::vector<std::string> VarNames;
  uint64_t CseHits = 0;
  uint64_t CseMisses = 0;
};

} // namespace veriopt

#endif // VERIOPT_SMT_BVEXPR_H
