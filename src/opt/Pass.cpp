//===- Pass.cpp - Pass manager and pipelines ----------------------------------//

#include "opt/Pass.h"

namespace veriopt {

bool PassManager::runOnce(Function &F, PassTrace *Trace) {
  bool Changed = false;
  for (auto &P : Passes)
    Changed |= P->run(F, Trace);
  return Changed;
}

bool PassManager::runToFixpoint(Function &F, PassTrace *Trace,
                                unsigned MaxIterations) {
  bool Any = false;
  for (unsigned I = 0; I < MaxIterations; ++I) {
    if (!runOnce(F, Trace))
      break;
    Any = true;
  }
  return Any;
}

bool runReferencePipeline(Function &F, PassTrace *Trace) {
  PassManager PM;
  PM.add(createInstCombinePass());
  return PM.runToFixpoint(F, Trace);
}

bool runExtendedPipeline(Function &F, PassTrace *Trace) {
  PassManager PM;
  PM.add(createMem2RegPass());
  PM.add(createInstCombinePass());
  PM.add(createSimplifyCFGPass());
  PM.add(createDCEPass());
  return PM.runToFixpoint(F, Trace);
}

} // namespace veriopt
