//===- Mem2Reg.cpp - Promote allocas to SSA registers --------------------------//
//
// Promotes allocas whose only users are whole-slot loads and stores through
// the raw pointer. Strategy: place a phi for the slot in every non-entry
// reachable block (maximal SSA), walk each block once to rewire loads and
// stores, then let the instcombine/DCE cleanup drop the redundant phis.
// Slots read before any store yield zero (dialect semantics: allocas are
// zero-initialized).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/CFG.h"

#include <unordered_map>

namespace veriopt {

namespace {

class Mem2Reg : public Pass {
public:
  const char *name() const override { return "mem2reg"; }

  bool run(Function &F, PassTrace *Trace) override {
    if (F.empty())
      return false;
    CFG G(F);
    bool Changed = false;
    // Collect candidates first: rewriting invalidates user lists.
    std::vector<AllocaInst *> Candidates;
    for (auto &BB : F) {
      if (!G.isReachable(BB.get()))
        continue;
      for (auto &I : *BB)
        if (auto *A = dyn_cast<AllocaInst>(I.get()))
          if (isPromotable(A, G))
            Candidates.push_back(A);
    }
    for (AllocaInst *A : Candidates) {
      promote(F, G, A);
      if (Trace)
        Trace->record("mem2reg-promote");
      Changed = true;
    }
    return Changed;
  }

private:
  static bool isPromotable(AllocaInst *A, const CFG &G) {
    for (Instruction *U : A->users()) {
      if (!U->getParent() || !G.isReachable(U->getParent()))
        return false;
      if (auto *Ld = dyn_cast<LoadInst>(U)) {
        if (Ld->getPointer() != A || Ld->getType() != A->getAllocatedType())
          return false;
        continue;
      }
      if (auto *St = dyn_cast<StoreInst>(U)) {
        // The alloca must be the address, not the stored value, and the
        // store must cover the whole slot.
        if (St->getPointer() != A || St->getValueOperand() == A ||
            St->getValueOperand()->getType() != A->getAllocatedType())
          return false;
        continue;
      }
      return false; // GEP, call argument, ret, ... : address escapes
    }
    return true;
  }

  void promote(Function &F, const CFG &G, AllocaInst *A) {
    Type *Ty = A->getAllocatedType();
    Value *Zero = F.getConstant(Ty, APInt64::zero(Ty->getBitWidth()));

    // Maximal phi placement.
    std::unordered_map<BasicBlock *, PhiInst *> Phis;
    for (BasicBlock *BB : G.rpo()) {
      if (BB == F.getEntryBlock())
        continue;
      assert(!BB->empty() && "well-formed blocks are never empty");
      auto Phi = std::make_unique<PhiInst>(Ty);
      PhiInst *P = Phi.get();
      BB->insertBefore(BB->front(), std::move(Phi));
      Phis[BB] = P;
    }

    // Per-block rewrite; record the value live at each block's end.
    std::unordered_map<BasicBlock *, Value *> EndVal;
    for (BasicBlock *BB : G.rpo()) {
      Value *Cur = BB == F.getEntryBlock()
                       ? Zero
                       : static_cast<Value *>(Phis[BB]);
      std::vector<Instruction *> Dead;
      for (auto &IPtr : *BB) {
        Instruction *I = IPtr.get();
        if (auto *Ld = dyn_cast<LoadInst>(I)) {
          if (Ld->getPointer() == A) {
            Ld->replaceAllUsesWith(Cur);
            Dead.push_back(Ld);
          }
          continue;
        }
        if (auto *St = dyn_cast<StoreInst>(I)) {
          if (St->getPointer() == A) {
            Cur = St->getValueOperand();
            Dead.push_back(St);
          }
          continue;
        }
      }
      for (Instruction *I : Dead)
        BB->erase(I);
      EndVal[BB] = Cur;
    }

    // Wire up phi incomings.
    for (auto &[BB, P] : Phis)
      for (BasicBlock *Pred : G.preds(BB))
        P->addIncoming(G.isReachable(Pred) ? EndVal[Pred] : Zero, Pred);

    // The alloca itself is now dead.
    assert(!A->hasUses() && "promoted alloca still has users");
    A->getParent()->erase(A);
  }
};

} // namespace

std::unique_ptr<Pass> createMem2RegPass() { return std::make_unique<Mem2Reg>(); }

} // namespace veriopt
