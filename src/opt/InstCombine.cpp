//===- InstCombine.cpp - Peephole optimizer (reference pass) ------------------//
//
// The stand-in for LLVM's -instcombine: a worklist-driven peephole engine.
// Rules fall into three tiers:
//  - simplify: the instruction equals an existing value (RAUW + erase),
//  - combine: the instruction is replaced by a cheaper new instruction,
//  - memory: block-local store-to-load forwarding / load CSE / dead-store
//    elimination (safe because no pointer ever escapes in the dialect:
//    calls take integer arguments only; pointer-taking calls pessimize).
//
// Every fired rule is recorded by name into the PassTrace — these names are
// the oracle action vocabulary the SFT/GRPO stages learn over.
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "trace/Metrics.h"
#include "trace/Trace.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace veriopt {

namespace {

/// Constant match helper.
bool matchConst(Value *V, APInt64 &Out) {
  if (auto *C = dyn_cast<ConstantInt>(V)) {
    Out = C->getValue();
    return true;
  }
  return false;
}

/// Resolve a pointer to (alloca, constant byte offset) when possible.
std::optional<std::pair<AllocaInst *, int64_t>> resolvePtr(Value *P) {
  int64_t Offset = 0;
  while (true) {
    if (auto *A = dyn_cast<AllocaInst>(P))
      return std::make_pair(A, Offset);
    auto *G = dyn_cast<GEPInst>(P);
    if (!G)
      return std::nullopt;
    auto *C = dyn_cast<ConstantInt>(G->getOffset());
    if (!C)
      return std::nullopt;
    Offset += C->getValue().sext();
    P = G->getPointer();
  }
}

/// Byte ranges overlap?
bool rangesOverlap(int64_t AOff, unsigned ASize, int64_t BOff,
                   unsigned BSize) {
  return AOff < BOff + static_cast<int64_t>(BSize) &&
         BOff < AOff + static_cast<int64_t>(ASize);
}

/// Bulk-publish one run's rule-fire tallies: per-rule process-wide metric
/// counters plus (when tracing) one "opt.rule_fire" counter event per rule.
/// Aggregating locally first keeps the per-fire hot path to one map bump.
void flushRuleFires(const std::map<const char *, uint64_t> &Fires) {
  if (Fires.empty())
    return;
  MetricsRegistry &M = MetricsRegistry::global();
  TraceRecorder &R = TraceRecorder::instance();
  for (const auto &[Rule, N] : Fires) {
    M.counter(std::string("opt.rule_fire.") + Rule).inc(N);
    if (R.enabled())
      R.counter("opt.rule_fire",
                {TraceArg::ofStr("rule", Rule),
                 TraceArg::ofInt("count", static_cast<int64_t>(N))});
  }
}

class InstCombine : public Pass {
public:
  explicit InstCombine(unsigned CatMask) : CatMask(CatMask) {}

  const char *name() const override { return "instcombine"; }

  bool run(Function &F, PassTrace *Trace) override {
    this->F = &F;
    this->Trace = Trace;
    Changed = false;

    // Memory rules first: they expose values the scalar rules can fold.
    if (on(RuleCat::Memory))
      for (auto &BB : F) {
        forwardMemory(*BB.get());
        eliminateDeadStores(*BB.get());
      }

    // Scalar worklist.
    Worklist.clear();
    InWorklist.clear();
    for (auto &BB : F)
      for (auto &I : *BB)
        push(I.get());
    while (!Worklist.empty()) {
      Instruction *I = Worklist.front();
      Worklist.pop_front();
      InWorklist.erase(I);
      if (Erased.count(I))
        continue;
      visit(I);
    }

    // DCE sweep: instcombine leaves no trivially dead code behind.
    Changed |= removeDeadCode(F, Trace);
    Erased.clear();
    flushRuleFires(RuleFires);
    RuleFires.clear();
    return Changed;
  }

  /// Shared with the standalone DCE pass.
  static bool removeDeadCode(Function &F, PassTrace *Trace) {
    bool Any = false;
    uint64_t DceFires = 0;
    bool LocalChanged = true;
    while (LocalChanged) {
      LocalChanged = false;
      for (auto &BB : F) {
        std::vector<Instruction *> Dead;
        for (auto &I : *BB)
          if (!I->hasUses() && !I->mayHaveSideEffects() &&
              !I->getType()->isVoid())
            Dead.push_back(I.get());
        for (Instruction *I : Dead) {
          BB->erase(I);
          if (Trace)
            Trace->record("dce");
          ++DceFires;
          LocalChanged = true;
          Any = true;
        }
      }
    }
    if (DceFires) {
      static const char DceRule[] = "dce";
      flushRuleFires({{DceRule, DceFires}});
    }
    return Any;
  }

private:
  void push(Instruction *I) {
    if (InWorklist.insert(I).second)
      Worklist.push_back(I);
  }

  void pushUsers(Value *V) {
    for (Instruction *U : V->users())
      push(U);
  }

  void record(const char *Rule) {
    if (Trace)
      Trace->record(Rule);
    ++RuleFires[Rule]; // keyed by literal identity; flushed at end of run()
    Changed = true;
  }

  /// Replace \p I with existing value \p V and erase it.
  void replaceWith(Instruction *I, Value *V, const char *Rule) {
    assert(V != I && "self-replacement");
    pushUsers(I);
    push(I); // no-op safeguard; erased below
    I->replaceAllUsesWith(V);
    if (auto *VI = dyn_cast<Instruction>(V))
      push(VI);
    I->getParent()->erase(I);
    Erased.insert(I);
    record(Rule);
  }

  /// Insert \p New before \p I, transfer uses, erase \p I.
  void replaceWithNew(Instruction *I, std::unique_ptr<Instruction> New,
                      const char *Rule) {
    Instruction *Placed = I->getParent()->insertBefore(I, std::move(New));
    Placed->setName(I->getName());
    pushUsers(I);
    I->replaceAllUsesWith(Placed);
    I->getParent()->erase(I);
    Erased.insert(I);
    push(Placed);
    record(Rule);
  }

  ConstantInt *getConst(Type *Ty, APInt64 V) { return F->getConstant(Ty, V); }
  ConstantInt *getInt(Type *Ty, uint64_t Bits) {
    return getConst(Ty, APInt64(Ty->getBitWidth(), Bits));
  }

  void visit(Instruction *I) {
    switch (I->getOpcode()) {
    case Opcode::ICmp:
      visitICmp(cast<ICmpInst>(I));
      return;
    case Opcode::Select:
      visitSelect(cast<SelectInst>(I));
      return;
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc:
      visitCast(cast<CastInst>(I));
      return;
    case Opcode::Phi:
      visitPhi(cast<PhiInst>(I));
      return;
    case Opcode::GEP:
      visitGEP(cast<GEPInst>(I));
      return;
    default:
      if (I->isBinaryOp())
        visitBinary(cast<BinaryInst>(I));
      return;
    }
  }

  //===--- Binary operators -----------------------------------------------===//

  void visitBinary(BinaryInst *I) {
    Value *L = I->getLHS(), *R = I->getRHS();
    Type *Ty = I->getType();
    unsigned W = Ty->getBitWidth();
    APInt64 LC, RC;
    bool LIsC = matchConst(L, LC), RIsC = matchConst(R, RC);
    Opcode Op = I->getOpcode();

    // Canonicalize: constant operand of a commutative op goes right.
    if (LIsC && !RIsC && I->isCommutative()) {
      I->setOperand(0, R);
      I->setOperand(1, L);
      std::swap(L, R);
      std::swap(LC, RC);
      std::swap(LIsC, RIsC);
      record("commute-const-rhs");
    }

    // Constant folding (skipping UB corners, which stay as-is).
    if (LIsC && RIsC && on(RuleCat::ConstFold)) {
      if (auto Folded = foldBinary(Op, LC, RC)) {
        replaceWith(I, getConst(Ty, *Folded), "const-fold");
        return;
      }
    }

    switch (Op) {
    case Opcode::Add: {
      if (!on(RuleCat::Algebraic))
        break;
      if (RIsC && RC.isZero())
        return replaceWith(I, L, "add-zero");
      if (L == R)
        return replaceWithNew(
            I, std::make_unique<BinaryInst>(Opcode::Shl, L, getInt(Ty, 1)),
            "add-self-to-shl");
      // add(sub(a, b), b) -> a  /  add(b, sub(a, b)) -> a
      if (auto *Sub = dyn_cast<BinaryInst>(L))
        if (Sub->getOpcode() == Opcode::Sub && !Sub->hasNSW() &&
            !Sub->hasNUW() && Sub->getRHS() == R)
          return replaceWith(I, Sub->getLHS(), "add-sub-cancel");
      if (auto *Sub = dyn_cast<BinaryInst>(R))
        if (Sub->getOpcode() == Opcode::Sub && !Sub->hasNSW() &&
            !Sub->hasNUW() && Sub->getRHS() == L)
          return replaceWith(I, Sub->getLHS(), "add-sub-cancel");
      // Reassociate constants: (x + C1) + C2 -> x + (C1+C2).
      if (RIsC)
        if (auto *Inner = dyn_cast<BinaryInst>(L))
          if (Inner->getOpcode() == Opcode::Add && Inner->hasOneUse()) {
            APInt64 C1;
            if (matchConst(Inner->getRHS(), C1))
              return replaceWithNew(
                  I,
                  std::make_unique<BinaryInst>(Opcode::Add, Inner->getLHS(),
                                               getConst(Ty, C1.add(RC))),
                  "add-reassoc");
          }
      break;
    }
    case Opcode::Sub: {
      if (!on(RuleCat::Algebraic))
        break;
      if (RIsC && RC.isZero())
        return replaceWith(I, L, "sub-zero");
      if (L == R)
        return replaceWith(I, getInt(Ty, 0), "sub-self");
      // sub(x, C) -> add(x, -C) (canonical form; flags dropped).
      if (RIsC && !RC.isZero())
        return replaceWithNew(
            I, std::make_unique<BinaryInst>(Opcode::Add, L,
                                            getConst(Ty, RC.neg())),
            "sub-const-to-add");
      // sub(add(a, b), b) -> a ; sub(add(a, b), a) -> b (wrapping add ok).
      if (auto *Add = dyn_cast<BinaryInst>(L))
        if (Add->getOpcode() == Opcode::Add && !Add->hasNSW() &&
            !Add->hasNUW()) {
          if (Add->getRHS() == R)
            return replaceWith(I, Add->getLHS(), "sub-add-cancel");
          if (Add->getLHS() == R)
            return replaceWith(I, Add->getRHS(), "sub-add-cancel");
        }
      // sub(0, sub(0, x)) -> x.
      if (LIsC && LC.isZero())
        if (auto *Neg = dyn_cast<BinaryInst>(R))
          if (Neg->getOpcode() == Opcode::Sub) {
            APInt64 Z;
            if (matchConst(Neg->getLHS(), Z) && Z.isZero() &&
                !Neg->hasNSW() && !Neg->hasNUW())
              return replaceWith(I, Neg->getRHS(), "neg-neg");
          }
      break;
    }
    case Opcode::Mul: {
      if (!on(RuleCat::Algebraic))
        break;
      if (RIsC) {
        if (RC.isZero())
          return replaceWith(I, R, "mul-zero");
        if (RC.isOne())
          return replaceWith(I, L, "mul-one");
        if (RC.isAllOnes())
          return replaceWithNew(
              I, std::make_unique<BinaryInst>(Opcode::Sub, getInt(Ty, 0), L),
              "mul-negone-to-neg");
        if (RC.isPowerOf2())
          return replaceWithNew(
              I,
              std::make_unique<BinaryInst>(Opcode::Shl, L,
                                           getInt(Ty, RC.exactLog2())),
              "mul-pow2-to-shl");
        // (x * C1) * C2 -> x * (C1*C2).
        if (auto *Inner = dyn_cast<BinaryInst>(L))
          if (Inner->getOpcode() == Opcode::Mul && Inner->hasOneUse()) {
            APInt64 C1;
            if (matchConst(Inner->getRHS(), C1))
              return replaceWithNew(
                  I,
                  std::make_unique<BinaryInst>(Opcode::Mul, Inner->getLHS(),
                                               getConst(Ty, C1.mul(RC))),
                  "mul-reassoc");
          }
      }
      break;
    }
    case Opcode::UDiv: {
      if (!on(RuleCat::Algebraic))
        break;
      if (RIsC) {
        if (RC.isOne())
          return replaceWith(I, L, "udiv-one");
        if (RC.isPowerOf2())
          return replaceWithNew(
              I,
              std::make_unique<BinaryInst>(Opcode::LShr, L,
                                           getInt(Ty, RC.exactLog2())),
              "udiv-pow2-to-lshr");
      }
      break;
    }
    case Opcode::SDiv: {
      if (!on(RuleCat::Algebraic))
        break;
      if (RIsC && RC.isOne())
        return replaceWith(I, L, "sdiv-one");
      break;
    }
    case Opcode::URem: {
      if (!on(RuleCat::Algebraic))
        break;
      if (RIsC) {
        if (RC.isOne())
          return replaceWith(I, getInt(Ty, 0), "urem-one");
        if (RC.isPowerOf2())
          return replaceWithNew(
              I,
              std::make_unique<BinaryInst>(
                  Opcode::And, L, getConst(Ty, RC.sub(APInt64::one(W)))),
              "urem-pow2-to-and");
      }
      break;
    }
    case Opcode::SRem: {
      if (!on(RuleCat::Algebraic))
        break;
      if (RIsC && RC.isOne())
        return replaceWith(I, getInt(Ty, 0), "srem-one");
      break;
    }
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: {
      if (!on(RuleCat::Shift))
        break;
      if (RIsC && RC.isZero())
        return replaceWith(I, L, "shift-zero");
      if (LIsC && LC.isZero())
        return replaceWith(I, L, "shift-of-zero");
      // (x shl C) lshr C -> and x, mask ; (x lshr C) shl C -> and x, ~mask.
      if (RIsC && RC.ult(APInt64(W, W)))
        if (auto *Inner = dyn_cast<BinaryInst>(L))
          if (Inner->hasOneUse() && !Inner->hasNUW() && !Inner->hasNSW() &&
              !Inner->isExact()) {
            APInt64 C1;
            if (matchConst(Inner->getRHS(), C1) && C1 == RC) {
              if (Op == Opcode::LShr &&
                  Inner->getOpcode() == Opcode::Shl) {
                APInt64 Mask = APInt64::allOnes(W).lshr(RC);
                return replaceWithNew(
                    I,
                    std::make_unique<BinaryInst>(
                        Opcode::And, Inner->getLHS(), getConst(Ty, Mask)),
                    "shl-lshr-to-and");
              }
              if (Op == Opcode::Shl &&
                  Inner->getOpcode() == Opcode::LShr) {
                APInt64 Mask = APInt64::allOnes(W).shl(RC);
                return replaceWithNew(
                    I,
                    std::make_unique<BinaryInst>(
                        Opcode::And, Inner->getLHS(), getConst(Ty, Mask)),
                    "lshr-shl-to-and");
              }
            }
          }
      break;
    }
    case Opcode::And: {
      if (!on(RuleCat::Bitwise))
        break;
      if (RIsC) {
        if (RC.isZero())
          return replaceWith(I, R, "and-zero");
        if (RC.isAllOnes())
          return replaceWith(I, L, "and-allones");
      }
      if (L == R)
        return replaceWith(I, L, "and-self");
      if (RIsC)
        if (auto *Inner = dyn_cast<BinaryInst>(L))
          if (Inner->getOpcode() == Opcode::And && Inner->hasOneUse()) {
            APInt64 C1;
            if (matchConst(Inner->getRHS(), C1))
              return replaceWithNew(
                  I,
                  std::make_unique<BinaryInst>(Opcode::And, Inner->getLHS(),
                                               getConst(Ty, C1.andOp(RC))),
                  "and-reassoc");
          }
      break;
    }
    case Opcode::Or: {
      if (!on(RuleCat::Bitwise))
        break;
      if (RIsC) {
        if (RC.isZero())
          return replaceWith(I, L, "or-zero");
        if (RC.isAllOnes())
          return replaceWith(I, R, "or-allones");
      }
      if (L == R)
        return replaceWith(I, L, "or-self");
      if (RIsC)
        if (auto *Inner = dyn_cast<BinaryInst>(L))
          if (Inner->getOpcode() == Opcode::Or && Inner->hasOneUse()) {
            APInt64 C1;
            if (matchConst(Inner->getRHS(), C1))
              return replaceWithNew(
                  I,
                  std::make_unique<BinaryInst>(Opcode::Or, Inner->getLHS(),
                                               getConst(Ty, C1.orOp(RC))),
                  "or-reassoc");
          }
      break;
    }
    case Opcode::Xor: {
      if (!on(RuleCat::Bitwise))
        break;
      if (RIsC && RC.isZero())
        return replaceWith(I, L, "xor-zero");
      if (L == R)
        return replaceWith(I, getInt(Ty, 0), "xor-self");
      // xor(xor(x, y), y) -> x.
      if (auto *Inner = dyn_cast<BinaryInst>(L))
        if (Inner->getOpcode() == Opcode::Xor) {
          if (Inner->getRHS() == R)
            return replaceWith(I, Inner->getLHS(), "xor-xor-cancel");
          if (Inner->getLHS() == R)
            return replaceWith(I, Inner->getRHS(), "xor-xor-cancel");
        }
      // not(icmp) -> inverted icmp (needs icmp knowledge too).
      if (on(RuleCat::Compare) && RIsC && RC.isAllOnes() && Ty->isBool())
        if (auto *Cmp = dyn_cast<ICmpInst>(L))
          if (Cmp->hasOneUse())
            return replaceWithNew(
                I,
                std::make_unique<ICmpInst>(invertedPred(Cmp->getPredicate()),
                                           Cmp->getLHS(), Cmp->getRHS()),
                "not-icmp-invert");
      // (x ^ C1) ^ C2 -> x ^ (C1^C2).
      if (RIsC)
        if (auto *Inner = dyn_cast<BinaryInst>(L))
          if (Inner->getOpcode() == Opcode::Xor && Inner->hasOneUse()) {
            APInt64 C1;
            if (matchConst(Inner->getRHS(), C1))
              return replaceWithNew(
                  I,
                  std::make_unique<BinaryInst>(Opcode::Xor, Inner->getLHS(),
                                               getConst(Ty, C1.xorOp(RC))),
                  "xor-reassoc");
          }
      break;
    }
    default:
      break;
    }
  }

  /// UB-free constant folding for binary ops; nullopt when folding would
  /// hide UB or poison (division corners, oversize shifts, flag overflow).
  std::optional<APInt64> foldBinary(Opcode Op, APInt64 L, APInt64 R) {
    unsigned W = L.width();
    switch (Op) {
    case Opcode::Add:
      return L.add(R);
    case Opcode::Sub:
      return L.sub(R);
    case Opcode::Mul:
      return L.mul(R);
    case Opcode::And:
      return L.andOp(R);
    case Opcode::Or:
      return L.orOp(R);
    case Opcode::Xor:
      return L.xorOp(R);
    case Opcode::UDiv:
      if (R.isZero())
        return std::nullopt;
      return L.udiv(R);
    case Opcode::SDiv:
      if (R.isZero() || (L.isSignedMin() && R.isAllOnes()))
        return std::nullopt;
      return L.sdiv(R);
    case Opcode::URem:
      if (R.isZero())
        return std::nullopt;
      return L.urem(R);
    case Opcode::SRem:
      if (R.isZero() || (L.isSignedMin() && R.isAllOnes()))
        return std::nullopt;
      return L.srem(R);
    case Opcode::Shl:
      if (R.zext() >= W)
        return std::nullopt; // poison
      return L.shl(R);
    case Opcode::LShr:
      if (R.zext() >= W)
        return std::nullopt;
      return L.lshr(R);
    case Opcode::AShr:
      if (R.zext() >= W)
        return std::nullopt;
      return L.ashr(R);
    default:
      return std::nullopt;
    }
  }

  //===--- ICmp -------------------------------------------------------------//

  static bool evalPred(ICmpPred P, const APInt64 &L, const APInt64 &R) {
    switch (P) {
    case ICmpPred::EQ:
      return L.eq(R);
    case ICmpPred::NE:
      return L.ne(R);
    case ICmpPred::UGT:
      return L.ugt(R);
    case ICmpPred::UGE:
      return L.uge(R);
    case ICmpPred::ULT:
      return L.ult(R);
    case ICmpPred::ULE:
      return L.ule(R);
    case ICmpPred::SGT:
      return L.sgt(R);
    case ICmpPred::SGE:
      return L.sge(R);
    case ICmpPred::SLT:
      return L.slt(R);
    case ICmpPred::SLE:
      return L.sle(R);
    }
    return false;
  }

  void visitICmp(ICmpInst *I) {
    if (!on(RuleCat::Compare))
      return;
    Value *L = I->getLHS(), *R = I->getRHS();
    APInt64 LC, RC;
    bool LIsC = matchConst(L, LC), RIsC = matchConst(R, RC);
    ICmpPred P = I->getPredicate();
    unsigned W = L->getType()->getBitWidth();

    if (LIsC && RIsC)
      return replaceWith(I, F->getBool(evalPred(P, LC, RC)), "icmp-fold");
    if (L == R) {
      bool V = P == ICmpPred::EQ || P == ICmpPred::UGE ||
               P == ICmpPred::ULE || P == ICmpPred::SGE ||
               P == ICmpPred::SLE;
      return replaceWith(I, F->getBool(V), "icmp-self");
    }
    // Constant to the right.
    if (LIsC && !RIsC) {
      I->setOperand(0, R);
      I->setOperand(1, L);
      I->setPredicate(swappedPred(P));
      record("icmp-commute");
      push(I);
      return;
    }
    if (!RIsC)
      return;

    // Range tautologies.
    if (P == ICmpPred::ULT && RC.isZero())
      return replaceWith(I, F->getBool(false), "icmp-ult-zero");
    if (P == ICmpPred::UGE && RC.isZero())
      return replaceWith(I, F->getBool(true), "icmp-uge-zero");
    if (P == ICmpPred::UGT && RC.isAllOnes())
      return replaceWith(I, F->getBool(false), "icmp-ugt-max");
    if (P == ICmpPred::ULE && RC.isAllOnes())
      return replaceWith(I, F->getBool(true), "icmp-ule-max");
    if (P == ICmpPred::SLT && RC.isSignedMin())
      return replaceWith(I, F->getBool(false), "icmp-slt-min");
    if (P == ICmpPred::SGE && RC.isSignedMin())
      return replaceWith(I, F->getBool(true), "icmp-sge-min");
    if (P == ICmpPred::SGT && RC == APInt64::signedMax(W))
      return replaceWith(I, F->getBool(false), "icmp-sgt-max");
    if (P == ICmpPred::SLE && RC == APInt64::signedMax(W))
      return replaceWith(I, F->getBool(true), "icmp-sle-max");

    // ult x, 1 -> eq x, 0 ; ugt x, 0 -> ne x, 0.
    if (P == ICmpPred::ULT && RC.isOne())
      return replaceWithNew(
          I, std::make_unique<ICmpInst>(ICmpPred::EQ, L, getInt(L->getType(), 0)),
          "icmp-ult-one-to-eq");
    if (P == ICmpPred::UGT && RC.isZero())
      return replaceWithNew(
          I, std::make_unique<ICmpInst>(ICmpPred::NE, L, getInt(L->getType(), 0)),
          "icmp-ugt-zero-to-ne");

    // Canonicalize non-strict predicates with constants to strict forms.
    if (P == ICmpPred::UGE && !RC.isZero())
      return replaceWithNew(
          I,
          std::make_unique<ICmpInst>(ICmpPred::UGT, L,
                                     getConst(L->getType(),
                                              RC.sub(APInt64::one(W)))),
          "icmp-uge-to-ugt");
    if (P == ICmpPred::ULE && !RC.isAllOnes())
      return replaceWithNew(
          I,
          std::make_unique<ICmpInst>(ICmpPred::ULT, L,
                                     getConst(L->getType(),
                                              RC.add(APInt64::one(W)))),
          "icmp-ule-to-ult");
    if (P == ICmpPred::SGE && !RC.isSignedMin())
      return replaceWithNew(
          I,
          std::make_unique<ICmpInst>(ICmpPred::SGT, L,
                                     getConst(L->getType(),
                                              RC.sub(APInt64::one(W)))),
          "icmp-sge-to-sgt");
    if (P == ICmpPred::SLE && RC != APInt64::signedMax(W))
      return replaceWithNew(
          I,
          std::make_unique<ICmpInst>(ICmpPred::SLT, L,
                                     getConst(L->getType(),
                                              RC.add(APInt64::one(W)))),
          "icmp-sle-to-slt");

    // eq/ne through invertible ops: (x ^ C1) == C2  ->  x == C1^C2;
    // (x + C1) == C2 -> x == C2-C1.
    if (P == ICmpPred::EQ || P == ICmpPred::NE)
      if (auto *Inner = dyn_cast<BinaryInst>(L))
        if (Inner->hasOneUse()) {
          APInt64 C1;
          if (matchConst(Inner->getRHS(), C1)) {
            if (Inner->getOpcode() == Opcode::Xor)
              return replaceWithNew(
                  I,
                  std::make_unique<ICmpInst>(
                      P, Inner->getLHS(),
                      getConst(L->getType(), C1.xorOp(RC))),
                  "icmp-eq-xor");
            if (Inner->getOpcode() == Opcode::Add && !Inner->hasNSW() &&
                !Inner->hasNUW())
              return replaceWithNew(
                  I,
                  std::make_unique<ICmpInst>(
                      P, Inner->getLHS(),
                      getConst(L->getType(), RC.sub(C1))),
                  "icmp-eq-add");
          }
        }
  }

  //===--- Select / casts / phi / gep ---------------------------------------//

  void visitSelect(SelectInst *I) {
    if (!on(RuleCat::Select))
      return;
    Value *C = I->getCondition();
    Value *T = I->getTrueValue(), *E = I->getFalseValue();
    APInt64 CC;
    if (matchConst(C, CC))
      return replaceWith(I, CC.isOne() ? T : E, "select-const-cond");
    if (T == E)
      return replaceWith(I, T, "select-same-arms");
    APInt64 TC, EC;
    if (I->getType()->isBool() && matchConst(T, TC) && matchConst(E, EC)) {
      if (TC.isOne() && EC.isZero())
        return replaceWith(I, C, "select-bool-identity");
      if (TC.isZero() && EC.isOne())
        return replaceWithNew(
            I,
            std::make_unique<BinaryInst>(Opcode::Xor, C,
                                         F->getBool(true)),
            "select-bool-invert");
    }
  }

  void visitCast(CastInst *I) {
    if (!on(RuleCat::Cast))
      return;
    Value *Src = I->getSrc();
    Type *DstTy = I->getType();
    unsigned DstW = DstTy->getBitWidth();
    APInt64 SC;
    if (matchConst(Src, SC)) {
      APInt64 V = I->getOpcode() == Opcode::ZExt   ? SC.zextTo(DstW)
                  : I->getOpcode() == Opcode::SExt ? SC.sextTo(DstW)
                                                   : SC.truncTo(DstW);
      return replaceWith(I, getConst(DstTy, V), "cast-fold");
    }
    auto *Inner = dyn_cast<CastInst>(Src);
    if (!Inner)
      return;
    Opcode Outer = I->getOpcode(), InnerOp = Inner->getOpcode();
    Value *X = Inner->getSrc();
    unsigned XW = X->getType()->getBitWidth();
    // ext(ext x) of the same kind composes.
    if (Outer == InnerOp &&
        (Outer == Opcode::ZExt || Outer == Opcode::SExt))
      return replaceWithNew(
          I, std::make_unique<CastInst>(Outer, X, DstTy), "ext-ext-combine");
    if (Outer == Opcode::Trunc && InnerOp == Opcode::Trunc)
      return replaceWithNew(
          I, std::make_unique<CastInst>(Opcode::Trunc, X, DstTy),
          "trunc-trunc-combine");
    // trunc(ext x): compare widths.
    if (Outer == Opcode::Trunc &&
        (InnerOp == Opcode::ZExt || InnerOp == Opcode::SExt)) {
      if (DstW == XW)
        return replaceWith(I, X, "trunc-ext-cancel");
      if (DstW < XW)
        return replaceWithNew(
            I, std::make_unique<CastInst>(Opcode::Trunc, X, DstTy),
            "trunc-ext-narrow");
      return replaceWithNew(
          I, std::make_unique<CastInst>(InnerOp, X, DstTy),
          "trunc-ext-widen");
    }
  }

  void visitPhi(PhiInst *I) {
    if (!on(RuleCat::Scalar))
      return;
    // All incoming values identical (ignoring self-references) -> value.
    Value *Common = nullptr;
    for (unsigned K = 0; K < I->getNumIncoming(); ++K) {
      Value *In = I->getIncomingValue(K);
      if (In == I)
        continue;
      if (Common && Common != In)
        return;
      Common = In;
    }
    if (Common && Common != I)
      replaceWith(I, Common, "phi-same-value");
  }

  void visitGEP(GEPInst *I) {
    if (!on(RuleCat::Scalar))
      return;
    APInt64 OC;
    if (matchConst(I->getOffset(), OC) && OC.isZero())
      return replaceWith(I, I->getPointer(), "gep-zero");
    // gep(gep(p, C1), C2) -> gep(p, C1+C2).
    if (auto *Inner = dyn_cast<GEPInst>(I->getPointer())) {
      APInt64 C1, C2;
      if (matchConst(Inner->getOffset(), C1) &&
          matchConst(I->getOffset(), C2))
        return replaceWithNew(
            I,
            std::make_unique<GEPInst>(Inner->getPointer(),
                                      getConst(Type::getInt64(), C1.add(C2))),
            "gep-gep-combine");
    }
  }

  //===--- Block-local memory rules ------------------------------------------//

  struct MemLoc {
    AllocaInst *Base;
    int64_t Offset;
    unsigned Size;
  };

  /// Store-to-load forwarding and load CSE within one block.
  void forwardMemory(BasicBlock &BB) {
    // Known byte contents: (alloca, offset, size) -> value producing it.
    struct Known {
      MemLoc Loc;
      Value *Val;
    };
    std::vector<Known> Facts;
    std::vector<Instruction *> ToErase;

    auto invalidateOverlap = [&](const MemLoc &L) {
      Facts.erase(std::remove_if(Facts.begin(), Facts.end(),
                                 [&](const Known &K) {
                                   return K.Loc.Base == L.Base &&
                                          rangesOverlap(K.Loc.Offset,
                                                        K.Loc.Size, L.Offset,
                                                        L.Size);
                                 }),
                  Facts.end());
    };

    for (auto &IPtr : BB) {
      Instruction *I = IPtr.get();
      if (auto *St = dyn_cast<StoreInst>(I)) {
        auto Loc = resolvePtr(St->getPointer());
        if (!Loc) {
          Facts.clear(); // unknown store target: drop everything
          continue;
        }
        MemLoc L{Loc->first, Loc->second, St->getAccessBytes()};
        invalidateOverlap(L);
        Facts.push_back({L, St->getValueOperand()});
        continue;
      }
      if (auto *Ld = dyn_cast<LoadInst>(I)) {
        auto Loc = resolvePtr(Ld->getPointer());
        if (!Loc)
          continue;
        MemLoc L{Loc->first, Loc->second, Ld->getAccessBytes()};
        for (const Known &K : Facts) {
          if (K.Loc.Base == L.Base && K.Loc.Offset == L.Offset &&
              K.Loc.Size == L.Size &&
              K.Val->getType() == Ld->getType()) {
            pushUsers(Ld);
            Ld->replaceAllUsesWith(K.Val);
            ToErase.push_back(Ld);
            record("store-to-load-forward");
            break;
          }
        }
        if (!Ld->hasUses() && !ToErase.empty() && ToErase.back() == Ld)
          continue;
        // Remember the loaded value for load-load CSE.
        if (Ld->hasUses()) {
          invalidateOverlap(L); // drop stale identical-range facts
          Facts.push_back({L, Ld});
        }
        continue;
      }
      if (auto *Call = dyn_cast<CallInst>(I)) {
        // Calls cannot access locals unless a pointer is passed.
        bool TakesPtr = false;
        for (unsigned A = 0; A < Call->getNumArgs(); ++A)
          TakesPtr |= Call->getArg(A)->getType()->isPointer();
        if (TakesPtr)
          Facts.clear();
        continue;
      }
    }
    for (Instruction *I : ToErase) {
      BB.erase(I);
      Erased.insert(I);
    }
  }

  /// Remove stores overwritten before any possible observation.
  void eliminateDeadStores(BasicBlock &BB) {
    // Backward scan: a store is dead if a later store covers the same
    // range with no intervening load from the same alloca or pointer-
    // taking call.
    std::vector<Instruction *> Insts;
    for (auto &I : BB)
      Insts.push_back(I.get());
    std::vector<Instruction *> ToErase;
    for (size_t I = 0; I < Insts.size(); ++I) {
      auto *St = dyn_cast<StoreInst>(Insts[I]);
      if (!St)
        continue;
      auto Loc = resolvePtr(St->getPointer());
      if (!Loc)
        continue;
      MemLoc L{Loc->first, Loc->second, St->getAccessBytes()};
      for (size_t J = I + 1; J < Insts.size(); ++J) {
        Instruction *Next = Insts[J];
        if (auto *Ld = dyn_cast<LoadInst>(Next)) {
          auto LLoc = resolvePtr(Ld->getPointer());
          if (!LLoc || (LLoc->first == L.Base &&
                        rangesOverlap(LLoc->second, Ld->getAccessBytes(),
                                      L.Offset, L.Size)))
            break; // observed (or unknown): keep the store
          continue;
        }
        if (auto *St2 = dyn_cast<StoreInst>(Next)) {
          auto SLoc = resolvePtr(St2->getPointer());
          if (!SLoc)
            break;
          if (SLoc->first == L.Base && SLoc->second <= L.Offset &&
              SLoc->second + static_cast<int64_t>(St2->getAccessBytes()) >=
                  L.Offset + static_cast<int64_t>(L.Size)) {
            ToErase.push_back(St);
            record("dead-store-elim");
            break;
          }
          if (SLoc->first == L.Base &&
              rangesOverlap(SLoc->second, St2->getAccessBytes(), L.Offset,
                            L.Size))
            break; // partial overwrite: keep
          continue;
        }
        if (isa<CallInst>(Next)) {
          auto *Call = cast<CallInst>(Next);
          bool TakesPtr = false;
          for (unsigned A = 0; A < Call->getNumArgs(); ++A)
            TakesPtr |= Call->getArg(A)->getType()->isPointer();
          if (TakesPtr)
            break;
          continue;
        }
        if (Next->isTerminator())
          break; // value may be observed after the block: keep
      }
    }
    for (Instruction *I : ToErase) {
      BB.erase(I);
      Erased.insert(I);
    }
  }

  bool on(RuleCat C) const { return (CatMask & ruleCatBit(C)) != 0; }

  unsigned CatMask;
  Function *F = nullptr;
  PassTrace *Trace = nullptr;
  bool Changed = false;
  std::deque<Instruction *> Worklist;
  std::unordered_set<Instruction *> InWorklist;
  std::unordered_set<Instruction *> Erased;
  std::map<const char *, uint64_t> RuleFires;
};

class DCEPass : public Pass {
public:
  const char *name() const override { return "dce"; }
  bool run(Function &F, PassTrace *Trace) override {
    return InstCombine::removeDeadCode(F, Trace);
  }
};

} // namespace

std::unique_ptr<Pass> createInstCombinePass(unsigned CatMask) {
  return std::make_unique<InstCombine>(CatMask);
}

std::unique_ptr<Pass> createDCEPass() { return std::make_unique<DCEPass>(); }

} // namespace veriopt
