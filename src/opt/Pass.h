//===- Pass.h - Function pass interface and manager --------------*- C++ -*-=//
//
// Passes mutate a Function in place and report whether they changed it.
// Every rule application is recorded in a PassTrace: the trace is both a
// debugging aid and the *oracle action sequence* the SFT stage trains the
// policy on (the rewrite the reference optimizer actually performed).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_OPT_PASS_H
#define VERIOPT_OPT_PASS_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace veriopt {

/// Records which rewrites fired, in order.
struct PassTrace {
  std::vector<std::string> Applied;

  void record(const std::string &Rule) { Applied.push_back(Rule); }
  bool empty() const { return Applied.empty(); }
};

/// A function transformation.
class Pass {
public:
  virtual ~Pass() = default;
  virtual const char *name() const = 0;
  /// Returns true if the function changed. \p Trace may be null.
  virtual bool run(Function &F, PassTrace *Trace) = 0;
};

/// Runs passes in sequence, optionally iterating the whole pipeline to a
/// fixpoint (bounded).
class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// One sweep over all passes; true if anything changed.
  bool runOnce(Function &F, PassTrace *Trace = nullptr);

  /// Iterate sweeps until nothing changes (at most \p MaxIterations).
  bool runToFixpoint(Function &F, PassTrace *Trace = nullptr,
                     unsigned MaxIterations = 8);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

//===--- Pass factories ------------------------------------------------------//

/// Rule families of the peephole pass. The policy model's action space
/// selects these individually: a "small model" that has only learned some
/// families produces partially-optimized (still correct) output, which is
/// what creates the win/tie/loss spread against the full pass (Fig. 6).
enum class RuleCat : unsigned {
  ConstFold, ///< constant folding of any opcode
  Algebraic, ///< add/sub/mul/div identities, reassociation, strength red.
  Bitwise,   ///< and/or/xor identities and cancellation
  Shift,     ///< shift identities and shift-pair masks
  Compare,   ///< icmp folds and canonicalizations
  Select,    ///< select folds
  Cast,      ///< cast chains
  Memory,    ///< store-to-load forwarding, load CSE, dead stores
  Scalar,    ///< gep/phi cleanups
  Count,
};

inline constexpr unsigned ruleCatBit(RuleCat C) {
  return 1u << static_cast<unsigned>(C);
}
inline constexpr unsigned AllRuleCats =
    (1u << static_cast<unsigned>(RuleCat::Count)) - 1;

/// The reference peephole optimizer (the paper's `opt -instcombine`
/// stand-in): algebraic/bitwise/icmp/select/cast folds, block-local
/// store-to-load forwarding and dead-store elimination, plus DCE of
/// side-effect-free dead instructions. \p CatMask restricts which rule
/// families may fire (default: all).
std::unique_ptr<Pass> createInstCombinePass(unsigned CatMask = AllRuleCats);

/// Dead-code elimination only.
std::unique_ptr<Pass> createDCEPass();

/// CFG cleanup: unreachable-block removal, constant-branch folding, block
/// merging, and diamond-to-select conversion.
std::unique_ptr<Pass> createSimplifyCFGPass();

/// Promote load/store-only allocas to SSA registers.
std::unique_ptr<Pass> createMem2RegPass();

/// The reference pipeline used to produce training labels:
/// InstCombine-lite run to fixpoint (as `opt -instcombine` behaves).
bool runReferencePipeline(Function &F, PassTrace *Trace = nullptr);

/// The extended pipeline the trained model can discover (instcombine +
/// mem2reg + simplifycfg to fixpoint) — the source of the paper's
/// "emergent" optimizations that beat -instcombine (Figs. 9/10).
bool runExtendedPipeline(Function &F, PassTrace *Trace = nullptr);

} // namespace veriopt

#endif // VERIOPT_OPT_PASS_H
