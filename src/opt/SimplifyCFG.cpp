//===- SimplifyCFG.cpp - CFG cleanup pass --------------------------------------//
//
// The simplifycfg-lite pass: unreachable-block removal, constant-branch
// folding, same-destination branch collapsing, straight-line block merging,
// empty-block forwarding, and diamond-to-select conversion (the shape the
// paper's Fig. 10 shows the trained model discovering).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/CFG.h"

#include <unordered_set>

namespace veriopt {

namespace {

class SimplifyCFG : public Pass {
public:
  const char *name() const override { return "simplifycfg"; }

  bool run(Function &F, PassTrace *Trace) override {
    this->Trace = Trace;
    bool Any = false;
    bool Changed = true;
    unsigned Guard = 0;
    while (Changed && ++Guard < 64) {
      Changed = false;
      Changed |= foldConstantBranches(F);
      Changed |= collapseSameTargetBranches(F);
      Changed |= removeUnreachable(F);
      Changed |= mergeStraightLine(F);
      Changed |= forwardEmptyBlocks(F);
      Changed |= diamondToSelect(F);
      Any |= Changed;
    }
    return Any;
  }

private:
  void record(const char *Rule) {
    if (Trace)
      Trace->record(Rule);
  }

  /// Remove BB from every phi in \p Succ.
  static void removePhiEdge(BasicBlock *Succ, BasicBlock *From) {
    for (PhiInst *P : Succ->phis()) {
      for (unsigned I = 0; I < P->getNumIncoming(); ++I)
        if (P->getIncomingBlock(I) == From) {
          P->removeIncoming(I);
          break;
        }
    }
  }

  bool foldConstantBranches(Function &F) {
    bool Changed = false;
    for (auto &BB : F) {
      auto *Br = dyn_cast_or_null(BB->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      auto *C = dyn_cast<ConstantInt>(Br->getCondition());
      if (!C)
        continue;
      BasicBlock *Live = C->isOne() ? Br->getTrueSuccessor()
                                    : Br->getFalseSuccessor();
      BasicBlock *Dead = C->isOne() ? Br->getFalseSuccessor()
                                    : Br->getTrueSuccessor();
      if (Dead != Live)
        removePhiEdge(Dead, BB.get());
      Br->makeUnconditional(Live);
      record("br-const-fold");
      Changed = true;
    }
    return Changed;
  }

  bool collapseSameTargetBranches(Function &F) {
    bool Changed = false;
    for (auto &BB : F) {
      auto *Br = dyn_cast_or_null(BB->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      if (Br->getTrueSuccessor() != Br->getFalseSuccessor())
        continue;
      BasicBlock *Succ = Br->getTrueSuccessor();
      // Phis in Succ see this block twice; drop one entry.
      removePhiEdge(Succ, BB.get());
      Br->makeUnconditional(Succ);
      record("br-same-target");
      Changed = true;
    }
    return Changed;
  }

  bool removeUnreachable(Function &F) {
    CFG G(F);
    auto Dead = G.unreachableBlocks();
    if (Dead.empty())
      return false;
    std::unordered_set<BasicBlock *> DeadSet(Dead.begin(), Dead.end());
    // Unlink phi edges from dead predecessors first.
    for (auto &BB : F) {
      if (DeadSet.count(BB.get()))
        continue;
      for (PhiInst *P : BB->phis())
        for (int I = static_cast<int>(P->getNumIncoming()) - 1; I >= 0; --I)
          if (DeadSet.count(P->getIncomingBlock(I)))
            P->removeIncoming(I);
    }
    // Sever dataflow uses from dead instructions into live code and between
    // dead blocks, then erase.
    for (BasicBlock *BB : Dead)
      for (auto &I : *BB)
        I->dropAllReferences();
    for (BasicBlock *BB : Dead) {
      // Any remaining uses of a dead block's values must come from other
      // dead blocks whose references were just dropped.
      F.eraseBlock(BB);
      record("remove-unreachable");
    }
    return true;
  }

  bool mergeStraightLine(Function &F) {
    // pred -> BB where pred ends in an unconditional br and BB has exactly
    // one predecessor: splice BB into pred.
    CFG G(F);
    for (auto &BBPtr : F) {
      BasicBlock *BB = BBPtr.get();
      if (BB == F.getEntryBlock())
        continue;
      const auto &Preds = G.preds(BB);
      if (Preds.size() != 1)
        continue;
      BasicBlock *Pred = Preds[0];
      auto *Br = dyn_cast_or_null(Pred->getTerminator());
      if (!Br || Br->isConditional())
        continue;
      assert(Br->getSuccessor(0) == BB && "pred/succ mismatch");
      // Phis in BB have a single incoming: fold them.
      for (PhiInst *P : BB->phis()) {
        assert(P->getNumIncoming() == 1 && "single-pred block phi arity");
        Value *In = P->getIncomingValue(0);
        P->replaceAllUsesWith(In);
      }
      std::vector<Instruction *> Phis;
      for (PhiInst *P : BB->phis())
        Phis.push_back(P);
      for (Instruction *P : Phis)
        BB->erase(P);
      // Remove pred's terminator, splice BB's instructions.
      Pred->erase(Br);
      std::vector<Instruction *> Moved;
      while (!BB->empty()) {
        auto Inst = BB->remove(BB->front());
        Moved.push_back(Inst.get());
        Pred->push_back(std::move(Inst));
      }
      // Successors' phis must now name Pred instead of BB.
      if (Instruction *T = Pred->getTerminator())
        if (auto *NewBr = dyn_cast<BrInst>(T))
          for (unsigned SI = 0; SI < NewBr->getNumSuccessors(); ++SI)
            for (PhiInst *P : NewBr->getSuccessor(SI)->phis())
              for (unsigned I = 0; I < P->getNumIncoming(); ++I)
                if (P->getIncomingBlock(I) == BB)
                  P->setIncomingBlock(I, Pred);
      F.eraseBlock(BB);
      record("merge-blocks");
      return true; // CFG changed: restart the scan
    }
    return false;
  }

  bool forwardEmptyBlocks(Function &F) {
    // A block containing only `br label %target` can be bypassed when the
    // retarget keeps phi inputs unambiguous.
    CFG G(F);
    for (auto &BBPtr : F) {
      BasicBlock *BB = BBPtr.get();
      if (BB == F.getEntryBlock() || BB->size() != 1)
        continue;
      auto *Br = dyn_cast_or_null(BB->getTerminator());
      if (!Br || Br->isConditional())
        continue;
      BasicBlock *Target = Br->getSuccessor(0);
      if (Target == BB)
        continue; // self-loop
      const auto &Preds = G.preds(BB);
      if (Preds.empty())
        continue;
      // Reject when a predecessor already feeds Target directly and Target
      // has phis (would need double entries with distinct values).
      bool Conflict = false;
      for (BasicBlock *Pred : Preds)
        for (BasicBlock *S : G.succs(Pred))
          if (S == Target && !Target->phis().empty())
            Conflict = true;
      if (Conflict)
        continue;
      // Retarget all predecessors.
      for (BasicBlock *Pred : Preds) {
        auto *PBr = cast<BrInst>(Pred->getTerminator());
        for (unsigned SI = 0; SI < PBr->getNumSuccessors(); ++SI)
          if (PBr->getSuccessor(SI) == BB)
            PBr->setSuccessor(SI, Target);
      }
      // Phi entries for BB become entries for each predecessor.
      for (PhiInst *P : Target->phis()) {
        Value *V = P->getIncomingValueFor(BB);
        assert(V && "phi missing entry for forwarded block");
        for (unsigned I = 0; I < P->getNumIncoming(); ++I)
          if (P->getIncomingBlock(I) == BB) {
            P->setIncomingBlock(I, Preds[0]);
            break;
          }
        for (size_t K = 1; K < Preds.size(); ++K)
          P->addIncoming(V, Preds[K]);
      }
      F.eraseBlock(BB);
      record("forward-empty-block");
      return true;
    }
    return false;
  }

  /// May \p I be executed unconditionally without changing behaviour?
  /// Poison is fine (an unselected select arm does not propagate it), but
  /// UB-capable and memory-touching instructions are not.
  static bool isSpeculatable(const Instruction *I) {
    if (I->isTerminator())
      return true; // dropped during hoisting
    if (I->isDivRem() || I->mayReadMemory() || I->mayWriteMemory() ||
        isa<AllocaInst>(I) || isa<PhiInst>(I))
      return false;
    return true;
  }

  bool diamondToSelect(Function &F) {
    // Pattern:   head: br %c, %t, %f
    //            t: <speculatable> br %join    f: <speculatable> br %join
    //            join: %p = phi [a, t], [b, f] ...
    // Arms may also be the join itself (triangle). Speculatable arm bodies
    // are hoisted into head (LLVM's SpeculativelyExecuteBB), then the phis
    // become selects.
    CFG G(F);
    for (auto &BBPtr : F) {
      BasicBlock *Head = BBPtr.get();
      auto *Br = dyn_cast_or_null(Head->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      BasicBlock *T = Br->getTrueSuccessor();
      BasicBlock *FB = Br->getFalseSuccessor();
      if (T == FB)
        continue;
      constexpr unsigned MaxSpeculated = 8;
      auto isHoistableArm = [&](BasicBlock *BB, BasicBlock *&Succ) {
        if (BB->size() > MaxSpeculated + 1 || G.preds(BB).size() != 1)
          return false;
        auto *B = dyn_cast_or_null(BB->getTerminator());
        if (!B || B->isConditional())
          return false;
        for (const auto &I : *BB)
          if (!isSpeculatable(I.get()))
            return false;
        Succ = B->getSuccessor(0);
        return true;
      };
      BasicBlock *JT = nullptr, *JF = nullptr;
      bool THoist = isHoistableArm(T, JT);
      bool FHoist = isHoistableArm(FB, JF);
      BasicBlock *Join = nullptr;
      if (THoist && FHoist && JT == JF)
        Join = JT;
      else if (THoist && JT == FB)
        Join = FB; // triangle: false edge goes straight to join
      else if (FHoist && JF == T)
        Join = T;
      else
        continue;
      if (Join == Head || Join->phis().empty())
        continue;
      // Join must see exactly the diamond's two edges.
      if (G.preds(Join).size() != 2)
        continue;
      // Hoist the arm bodies into head, before the branch.
      for (BasicBlock *Arm : {T, FB}) {
        if (Arm == Join)
          continue;
        while (Arm->front() != Arm->getTerminator()) {
          auto Inst = Arm->remove(Arm->front());
          Head->insertBefore(Br, std::move(Inst));
        }
      }
      return rewriteDiamond(F, Head, Br, T, FB, Join);
    }
    return false;
  }

  bool rewriteDiamond(Function &F, BasicBlock *Head, BrInst *Br,
                      BasicBlock *T, BasicBlock *FB, BasicBlock *Join) {
    Value *Cond = Br->getCondition();
    // For each phi, find the values arriving via the true and false edges.
    auto edgeBlock = [&](bool TrueEdge) -> BasicBlock * {
      BasicBlock *Arm = TrueEdge ? T : FB;
      // If the arm is the join itself (triangle), the edge source is Head.
      return Arm == Join ? Head : Arm;
    };
    std::vector<PhiInst *> Phis = Join->phis();
    for (PhiInst *P : Phis) {
      Value *TV = P->getIncomingValueFor(edgeBlock(true));
      Value *FV = P->getIncomingValueFor(edgeBlock(false));
      if (!TV || !FV)
        return false; // unexpected shape
      auto Sel = std::make_unique<SelectInst>(Cond, TV, FV);
      Instruction *Placed = Head->insertBefore(Br, std::move(Sel));
      Placed->setName(P->getName());
      P->replaceAllUsesWith(Placed);
    }
    for (PhiInst *P : Phis)
      Join->erase(P);
    // Head now branches straight to join.
    Br->makeUnconditional(Join);
    // The arms (if distinct blocks) become unreachable; clean them now.
    record("diamond-to-select");
    removeUnreachable(F);
    mergeStraightLine(F);
    return true;
  }

  /// dyn_cast helper tolerating null terminators.
  static BrInst *dyn_cast_or_null(Instruction *I) {
    return I ? dyn_cast<BrInst>(I) : nullptr;
  }

  PassTrace *Trace = nullptr;
};

} // namespace

std::unique_ptr<Pass> createSimplifyCFGPass() {
  return std::make_unique<SimplifyCFG>();
}

} // namespace veriopt
