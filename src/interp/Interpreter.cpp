//===- Interpreter.cpp - Concrete IR interpreter ------------------------------//

#include "interp/Interpreter.h"

#include "cost/CostModel.h"

#include <unordered_map>

namespace veriopt {

namespace {

/// Deterministic synthetic return value for an external call: a SplitMix64
/// mix of the callee name, the per-callee occurrence index, and arguments.
uint64_t syntheticCallReturn(const std::string &Callee, unsigned Index,
                             const std::vector<uint64_t> &Args) {
  uint64_t H = 0x9e3779b97f4a7c15ULL * (Index + 1);
  for (char C : Callee)
    H = (H ^ static_cast<uint64_t>(C)) * 0x100000001b3ULL;
  for (uint64_t A : Args)
    H = (H ^ A) * 0xbf58476d1ce4e5b9ULL;
  H ^= H >> 31;
  H *= 0x94d049bb133111ebULL;
  H ^= H >> 29;
  return H;
}

struct Allocation {
  std::vector<uint8_t> Bytes;
  std::vector<uint8_t> PoisonBytes; // 1 = byte holds poison
};

class Machine {
public:
  Machine(const Function &F, const std::vector<APInt64> &Args,
          const InterpOptions &Opts)
      : F(F), Opts(Opts) {
    R.IsVoid = F.getReturnType()->isVoid();
    for (unsigned I = 0; I < F.getNumParams(); ++I) {
      if (!F.getParamType(I)->isInteger()) {
        fail(ExecResult::Unsupported, "pointer-typed parameter");
        return;
      }
      if (I >= Args.size() ||
          Args[I].width() != F.getParamType(I)->getBitWidth()) {
        fail(ExecResult::Unsupported, "argument count/width mismatch");
        return;
      }
      Env[F.getArg(I)] = IValue::makeInt(Args[I]);
    }
  }

  ExecResult run() {
    if (R.St != ExecResult::Ok)
      return R;
    const BasicBlock *Prev = nullptr;
    const BasicBlock *BB = F.getEntryBlock();
    while (BB) {
      const BasicBlock *Next = nullptr;
      if (!execBlock(BB, Prev, Next))
        return R;
      Prev = BB;
      BB = Next;
    }
    return R;
  }

private:
  void fail(ExecResult::Status St, const std::string &Why) {
    if (R.St == ExecResult::Ok && St != ExecResult::Ok) {
      R.St = St;
      R.Reason = Why;
    }
  }

  IValue &get(Value *V) {
    if (auto *C = dyn_cast<ConstantInt>(V)) {
      auto It = Env.find(V);
      if (It == Env.end())
        It = Env.emplace(V, IValue::makeInt(C->getValue())).first;
      return It->second;
    }
    auto It = Env.find(V);
    assert(It != Env.end() && "use of unevaluated value (verifier bypassed?)");
    return It->second;
  }

  /// Execute one block; sets \p Next for branches, nullptr for ret.
  /// Returns false when execution stopped (UB/timeout/ret recorded).
  bool execBlock(const BasicBlock *BB, const BasicBlock *Prev,
                 const BasicBlock *&Next) {
    // Phi nodes evaluate in parallel against the incoming edge.
    std::vector<std::pair<Value *, IValue>> PhiVals;
    for (PhiInst *P : BB->phis()) {
      Value *In = P->getIncomingValueFor(Prev);
      assert(In && "phi has no entry for executed predecessor");
      PhiVals.emplace_back(P, get(In));
      ++R.OpcodeCounts[static_cast<unsigned>(Opcode::Phi)];
    }
    for (auto &[P, V] : PhiVals)
      Env[P] = V;

    for (const auto &IPtr : *BB) {
      Instruction *I = IPtr.get();
      if (isa<PhiInst>(I))
        continue;
      if (++R.Steps > Opts.MaxSteps) {
        fail(ExecResult::Timeout, "step budget exhausted");
        return false;
      }
      if (Opts.FuelTok && !Opts.FuelTok->consume(fuel::InterpStep)) {
        fail(ExecResult::Timeout, "verification fuel exhausted");
        return false;
      }
      ++R.OpcodeCounts[static_cast<unsigned>(I->getOpcode())];
      if (!execInst(I, Next))
        return false;
      if (I->isTerminator())
        return true;
    }
    fail(ExecResult::UndefinedBehavior, "block fell off the end");
    return false;
  }

  bool execInst(Instruction *I, const BasicBlock *&Next) {
    switch (I->getOpcode()) {
    case Opcode::ICmp: {
      auto *C = cast<ICmpInst>(I);
      IValue L = get(C->getLHS()), Rv = get(C->getRHS());
      if (L.Poison || Rv.Poison) {
        Env[I] = IValue::makePoison(1);
        return true;
      }
      bool B = evalPred(C->getPredicate(), L.Bits, Rv.Bits);
      Env[I] = IValue::makeInt(APInt64(1, B ? 1 : 0));
      return true;
    }
    case Opcode::Select: {
      auto *S = cast<SelectInst>(I);
      IValue C = get(S->getCondition());
      if (C.Poison) {
        Env[I] = IValue::makePoison(I->getType()->getBitWidth());
        return true;
      }
      Env[I] = C.Bits.isOne() ? get(S->getTrueValue())
                              : get(S->getFalseValue());
      return true;
    }
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc: {
      auto *Cst = cast<CastInst>(I);
      IValue S = get(Cst->getSrc());
      unsigned DW = I->getType()->getBitWidth();
      if (S.Poison) {
        Env[I] = IValue::makePoison(DW);
        return true;
      }
      APInt64 Out = I->getOpcode() == Opcode::ZExt   ? S.Bits.zextTo(DW)
                    : I->getOpcode() == Opcode::SExt ? S.Bits.sextTo(DW)
                                                     : S.Bits.truncTo(DW);
      Env[I] = IValue::makeInt(Out);
      return true;
    }
    case Opcode::Alloca: {
      auto *A = cast<AllocaInst>(I);
      unsigned Id = static_cast<unsigned>(Allocs.size());
      Allocation Al;
      Al.Bytes.assign(A->getAllocatedBytes(), 0);
      Al.PoisonBytes.assign(A->getAllocatedBytes(), 0);
      Allocs.push_back(std::move(Al));
      // Re-executing an alloca (loop) re-binds to a fresh allocation.
      Env[I] = IValue::makePtr(Id, 0);
      return true;
    }
    case Opcode::GEP: {
      auto *G = cast<GEPInst>(I);
      IValue P = get(G->getPointer());
      IValue Off = get(G->getOffset());
      if (P.Poison || Off.Poison) {
        IValue Out = IValue::makePtr(0, 0);
        Out.Poison = true;
        Env[I] = Out;
        return true;
      }
      Env[I] = IValue::makePtr(P.AllocaId, P.Offset + Off.Bits.sext());
      return true;
    }
    case Opcode::Load: {
      auto *L = cast<LoadInst>(I);
      IValue P = get(L->getPointer());
      if (P.Poison || P.K != IValue::Ptr) {
        fail(ExecResult::UndefinedBehavior, "load through poison pointer");
        return false;
      }
      unsigned N = L->getAccessBytes();
      Allocation *Al = access(P, N);
      if (!Al)
        return false;
      uint64_t Bits = 0;
      bool AnyPoison = false;
      for (unsigned B = 0; B < N; ++B) {
        Bits |= static_cast<uint64_t>(
                    Al->Bytes[static_cast<size_t>(P.Offset) + B])
                << (8 * B);
        AnyPoison |= Al->PoisonBytes[static_cast<size_t>(P.Offset) + B];
      }
      unsigned W = L->getType()->getBitWidth();
      IValue Out = IValue::makeInt(APInt64(W, Bits));
      Out.Poison = AnyPoison;
      Env[I] = Out;
      return true;
    }
    case Opcode::Store: {
      auto *S = cast<StoreInst>(I);
      IValue P = get(S->getPointer());
      if (P.Poison || P.K != IValue::Ptr) {
        fail(ExecResult::UndefinedBehavior, "store through poison pointer");
        return false;
      }
      unsigned N = S->getAccessBytes();
      Allocation *Al = access(P, N);
      if (!Al)
        return false;
      IValue V = get(S->getValueOperand());
      for (unsigned B = 0; B < N; ++B) {
        Al->Bytes[static_cast<size_t>(P.Offset) + B] =
            static_cast<uint8_t>(V.Bits.zext() >> (8 * B));
        Al->PoisonBytes[static_cast<size_t>(P.Offset) + B] = V.Poison;
      }
      return true;
    }
    case Opcode::Br: {
      auto *B = cast<BrInst>(I);
      if (!B->isConditional()) {
        Next = B->getSuccessor(0);
        return true;
      }
      IValue C = get(B->getCondition());
      if (C.Poison) {
        fail(ExecResult::UndefinedBehavior, "branch on poison");
        return false;
      }
      Next = C.Bits.isOne() ? B->getTrueSuccessor() : B->getFalseSuccessor();
      return true;
    }
    case Opcode::Ret: {
      auto *Ret = cast<RetInst>(I);
      if (Ret->hasReturnValue()) {
        IValue V = get(Ret->getReturnValue());
        if (V.K != IValue::Int) {
          fail(ExecResult::Unsupported, "returning a pointer");
          return false;
        }
        R.RetVal = V.Bits;
        R.RetPoison = V.Poison;
      }
      Next = nullptr;
      return true;
    }
    case Opcode::Call: {
      auto *C = cast<CallInst>(I);
      CallEvent Ev;
      Ev.Callee = C->getCallee()->getName();
      for (unsigned A = 0; A < C->getNumArgs(); ++A) {
        IValue V = get(C->getArg(A));
        if (V.Poison) {
          fail(ExecResult::UndefinedBehavior, "poison passed to call");
          return false;
        }
        if (V.K != IValue::Int) {
          fail(ExecResult::Unsupported, "pointer passed to call");
          return false;
        }
        Ev.Args.push_back(V.Bits.zext());
      }
      unsigned Index = CallCounts[Ev.Callee]++;
      Ev.ReturnBits = syntheticCallReturn(Ev.Callee, Index, Ev.Args);
      if (!I->getType()->isVoid()) {
        unsigned W = I->getType()->getBitWidth();
        Env[I] = IValue::makeInt(APInt64(W, Ev.ReturnBits));
      }
      R.Calls.push_back(std::move(Ev));
      return true;
    }
    default:
      break;
    }
    assert(I->isBinaryOp() && "unhandled opcode in interpreter");
    return execBinary(cast<BinaryInst>(I));
  }

  Allocation *access(const IValue &P, unsigned N) {
    if (P.AllocaId >= Allocs.size()) {
      fail(ExecResult::UndefinedBehavior, "access to invalid allocation");
      return nullptr;
    }
    Allocation &Al = Allocs[P.AllocaId];
    if (P.Offset < 0 ||
        static_cast<uint64_t>(P.Offset) + N > Al.Bytes.size()) {
      fail(ExecResult::UndefinedBehavior, "out-of-bounds memory access");
      return nullptr;
    }
    return &Al;
  }

  static bool evalPred(ICmpPred P, const APInt64 &L, const APInt64 &R) {
    switch (P) {
    case ICmpPred::EQ:
      return L.eq(R);
    case ICmpPred::NE:
      return L.ne(R);
    case ICmpPred::UGT:
      return L.ugt(R);
    case ICmpPred::UGE:
      return L.uge(R);
    case ICmpPred::ULT:
      return L.ult(R);
    case ICmpPred::ULE:
      return L.ule(R);
    case ICmpPred::SGT:
      return L.sgt(R);
    case ICmpPred::SGE:
      return L.sge(R);
    case ICmpPred::SLT:
      return L.slt(R);
    case ICmpPred::SLE:
      return L.sle(R);
    }
    return false;
  }

  bool execBinary(BinaryInst *I) {
    IValue L = get(I->getLHS()), Rv = get(I->getRHS());
    unsigned W = I->getType()->getBitWidth();
    Opcode Op = I->getOpcode();

    if (I->isDivRem()) {
      // Division UB is immediate, and div/rem *by* poison is UB too.
      if (L.Poison || Rv.Poison) {
        fail(ExecResult::UndefinedBehavior, "division on poison");
        return false;
      }
      if (Rv.Bits.isZero()) {
        fail(ExecResult::UndefinedBehavior, "division by zero");
        return false;
      }
      if ((Op == Opcode::SDiv || Op == Opcode::SRem) &&
          L.Bits.isSignedMin() && Rv.Bits.isAllOnes()) {
        fail(ExecResult::UndefinedBehavior, "signed division overflow");
        return false;
      }
    } else if (L.Poison || Rv.Poison) {
      Env[I] = IValue::makePoison(W);
      return true;
    }

    APInt64 Out;
    bool Poison = false;
    switch (Op) {
    case Opcode::Add:
      Out = L.Bits.add(Rv.Bits);
      Poison = (I->hasNSW() && L.Bits.addOverflowsSigned(Rv.Bits)) ||
               (I->hasNUW() && L.Bits.addOverflowsUnsigned(Rv.Bits));
      break;
    case Opcode::Sub:
      Out = L.Bits.sub(Rv.Bits);
      Poison = (I->hasNSW() && L.Bits.subOverflowsSigned(Rv.Bits)) ||
               (I->hasNUW() && L.Bits.subOverflowsUnsigned(Rv.Bits));
      break;
    case Opcode::Mul:
      Out = L.Bits.mul(Rv.Bits);
      Poison = (I->hasNSW() && L.Bits.mulOverflowsSigned(Rv.Bits)) ||
               (I->hasNUW() && L.Bits.mulOverflowsUnsigned(Rv.Bits));
      break;
    case Opcode::UDiv:
      Out = L.Bits.udiv(Rv.Bits);
      Poison = I->isExact() && !L.Bits.urem(Rv.Bits).isZero();
      break;
    case Opcode::SDiv:
      Out = L.Bits.sdiv(Rv.Bits);
      Poison = I->isExact() && !L.Bits.srem(Rv.Bits).isZero();
      break;
    case Opcode::URem:
      Out = L.Bits.urem(Rv.Bits);
      break;
    case Opcode::SRem:
      Out = L.Bits.srem(Rv.Bits);
      break;
    case Opcode::Shl:
      Out = L.Bits.shl(Rv.Bits);
      Poison = Rv.Bits.zext() >= W ||
               (I->hasNUW() && L.Bits.shlOverflowsUnsigned(Rv.Bits)) ||
               (I->hasNSW() && L.Bits.shlOverflowsSigned(Rv.Bits));
      break;
    case Opcode::LShr:
      Out = L.Bits.lshr(Rv.Bits);
      // exact: poison iff any shifted-out bit was set.
      Poison = Rv.Bits.zext() >= W ||
               (I->isExact() &&
                !L.Bits.lshr(Rv.Bits).shl(Rv.Bits).eq(L.Bits));
      break;
    case Opcode::AShr:
      Out = L.Bits.ashr(Rv.Bits);
      Poison = Rv.Bits.zext() >= W ||
               (I->isExact() &&
                !L.Bits.ashr(Rv.Bits).shl(Rv.Bits).eq(L.Bits));
      break;
    case Opcode::And:
      Out = L.Bits.andOp(Rv.Bits);
      break;
    case Opcode::Or:
      Out = L.Bits.orOp(Rv.Bits);
      break;
    case Opcode::Xor:
      Out = L.Bits.xorOp(Rv.Bits);
      break;
    default:
      assert(false && "not a binary opcode");
    }
    IValue OutV = IValue::makeInt(Out);
    OutV.Poison = Poison;
    Env[I] = OutV;
    return true;
  }

  const Function &F;
  InterpOptions Opts;
  ExecResult R;
  std::unordered_map<const Value *, IValue> Env;
  std::vector<Allocation> Allocs;
  std::unordered_map<std::string, unsigned> CallCounts;
};

} // namespace

ExecResult interpret(const Function &F, const std::vector<APInt64> &Args,
                     const InterpOptions &Opts) {
  Machine M(F, Args, Opts);
  return M.run();
}

double dynamicLatency(const ExecResult &R) {
  double Sum = 0;
  for (unsigned Op = 0; Op < R.OpcodeCounts.size(); ++Op)
    Sum += static_cast<double>(R.OpcodeCounts[Op]) *
           opcodeLatency(static_cast<Opcode>(Op));
  return Sum;
}

} // namespace veriopt
