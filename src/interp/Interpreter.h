//===- Interpreter.h - Concrete IR interpreter -------------------*- C++ -*-=//
//
// Executes a function on concrete inputs with full UB/poison tracking. Used
// by: (1) the falsify-before-prove pre-pass of the Alive-lite verifier, (2)
// property tests that differentially check the symbolic encoder, and (3)
// dynamic latency accounting in the benches.
//
// Dialect semantics (shared with the symbolic verifier; see DESIGN.md):
//  - alloca memory is zero-initialized,
//  - poison is tracked per value and per memory byte,
//  - immediate UB: division by zero, sdiv/srem overflow, div/rem by poison,
//    branch on poison, memory access through a poison or out-of-bounds
//    pointer, and passing poison to a call,
//  - external calls return a deterministic value derived from (callee,
//    per-callee occurrence index, argument values); both sides of a
//    verification observe the same "external world".
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_INTERP_INTERPRETER_H
#define VERIOPT_INTERP_INTERPRETER_H

#include "ir/Function.h"
#include "support/Fuel.h"

#include <array>
#include <string>
#include <vector>

namespace veriopt {

/// A runtime value: an integer (with poison bit) or a pointer into an
/// interpreter-managed allocation.
struct IValue {
  enum Kind { Int, Ptr } K = Int;
  APInt64 Bits;        // Int payload
  unsigned AllocaId = 0; // Ptr payload: which allocation
  int64_t Offset = 0;    // Ptr payload: byte offset
  bool Poison = false;

  static IValue makeInt(APInt64 V) {
    IValue Out;
    Out.K = Int;
    Out.Bits = V;
    return Out;
  }
  static IValue makePoison(unsigned Width) {
    IValue Out = makeInt(APInt64::zero(Width));
    Out.Poison = true;
    return Out;
  }
  static IValue makePtr(unsigned Id, int64_t Off) {
    IValue Out;
    Out.K = Ptr;
    Out.AllocaId = Id;
    Out.Offset = Off;
    return Out;
  }
};

/// One observed external call.
struct CallEvent {
  std::string Callee;
  std::vector<uint64_t> Args; // zero-extended argument bits
  uint64_t ReturnBits = 0;    // deterministic synthetic return
};

struct InterpOptions {
  uint64_t MaxSteps = 100000; ///< dynamic instruction budget before Timeout
  /// Shared verification fuel; charged one unit per dynamic instruction.
  /// Exhaustion stops execution with Timeout and latches on the token, so
  /// the verifier can report ResourceExhausted for the query as a whole.
  Fuel *FuelTok = nullptr;
};

struct ExecResult {
  enum Status {
    Ok,          ///< terminated via ret
    UndefinedBehavior,
    Timeout,     ///< step budget exhausted (e.g. an infinite loop)
    Unsupported, ///< pointer-typed arguments or other out-of-model input
  };

  Status St = Ok;
  bool IsVoid = false;
  APInt64 RetVal;       ///< valid when Ok, !IsVoid, !RetPoison
  bool RetPoison = false;
  std::string Reason;   ///< UB/unsupported explanation
  uint64_t Steps = 0;
  std::array<uint64_t, 26> OpcodeCounts{}; ///< dynamic per-opcode histogram
  std::vector<CallEvent> Calls;

  bool ok() const { return St == Ok; }
};

/// Execute \p F on \p Args (one APInt64 per integer parameter, matching
/// widths). Functions with pointer parameters report Unsupported.
ExecResult interpret(const Function &F, const std::vector<APInt64> &Args,
                     const InterpOptions &Opts = InterpOptions());

/// Dynamic weighted latency of a result: per-opcode execution counts times
/// the cost model's opcode latencies.
double dynamicLatency(const ExecResult &R);

} // namespace veriopt

#endif // VERIOPT_INTERP_INTERPRETER_H
