//===- Pipeline.h - The four-model training pipeline -------------*- C++ -*-=//
//
// Implements the paper's §III-C training scheme end to end:
//
//  Stage 1  MODEL-ZERO: GRPO with the generic prompt directly on the base
//           policy. Its main product is not the policy but the stream of
//           *diagnostic-augmented samples* harvested from failed rollouts
//           (wrong attempt + Alive verdict + reference answer).
//  Stage 2  WARM-UP: SFT of a fresh base policy on the augmented samples
//           (first-time + correction), then GRPO with augmented prompts and
//           the CoT reward, yielding MODEL-CORRECTNESS.
//  Stage 3  MODEL-LATENCY: incremental GRPO from MODEL-CORRECTNESS with the
//           Eq.(4) latency reward (labels dropped; Alive2 stays in the
//           reward as the equivalence gate; generic prompt again).
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_PIPELINE_PIPELINE_H
#define VERIOPT_PIPELINE_PIPELINE_H

#include "pipeline/Checkpoint.h"
#include "pipeline/Evaluation.h"
#include "rl/Trainer.h"

#include <memory>

namespace veriopt {

struct PipelineOptions {
  DatasetOptions Data;
  ModelConfig BaseModel = presetQwen3B();

  unsigned Stage1Steps = 50;
  unsigned Stage2SFTEpochs = 2; ///< a light warm-up: rudimentary skills only
  double Stage2SFTLearningRate = 0.05;
  unsigned Stage2Steps = 80;
  unsigned Stage3Steps = 200;
  /// Stage-3 explores aggressively: the latency reward must *discover*
  /// rewrites beyond the instcombine labels (mem2reg/simplifycfg), which
  /// start with low probability after imitation.
  double Stage3Temperature = 1.9;
  /// The latency stage needs a larger step size: its reward is sparse
  /// (zero unless strictly faster) and the actions it must discover start
  /// rare, so the clipped token-normalized gradients are small.
  double Stage3LearningRate = 0.5;

  GRPOOptions GRPO; ///< shared defaults; Mode is set per stage
  SFTOptions SFT;
  /// Verification budget during training (cheaper than evaluation).
  VerifyOptions TrainVerify = trainVerifyDefaults();
  uint64_t Seed = 2026;

  /// Rollout-scoring worker threads, shared by all three GRPO stages.
  /// Generation stays sequential, so results are bit-identical at any
  /// setting (see GRPOOptions::Threads).
  unsigned Threads = 1;
  /// Verify-memo capacity in entries; 0 disables the cache. The cache is
  /// shared across stages (keys carry the full verification budget).
  size_t VerifyCacheCapacity = 4096;
  /// Batched group verification (BatchVerifier): pre-verify each prompt
  /// group through one shared solver context before scoring, seeding the
  /// cache. Requires the cache; verdicts are bit-identical either way, so
  /// the sequential path (off) remains the oracle.
  bool BatchVerify = true;

  //===--- Fault-tolerant runtime ---------------------------------------===//

  /// Escalating verification retry ladder (RobustVerifier): budget-bound
  /// Inconclusives are re-asked at geometrically larger budgets. 1 tier
  /// reproduces the plain single-budget behaviour exactly.
  unsigned VerifyRetryTiers = 3;
  uint64_t VerifyRetryGrowth = 4;

  /// Checkpoint file; empty disables checkpointing. Written every
  /// CheckpointEveryNSteps GRPO steps (0 = only at stage boundaries and on
  /// halt) via atomic write-then-rename.
  std::string CheckpointPath;
  unsigned CheckpointEveryNSteps = 0;
  /// Extra save attempts after a failed checkpoint write, each preceded by
  /// the driver's deterministic capped backoff (driverBackoffMs with
  /// CheckpointRetryBaseMs/CapMs, keyed on seed + stage + attempt — no
  /// clock, no randomness). A still-failing write after all retries is
  /// telemetry, never an abort: the previous checkpoint stands and
  /// training continues on the identical trajectory.
  unsigned CheckpointWriteRetries = 2;
  uint64_t CheckpointRetryBaseMs = 10;
  uint64_t CheckpointRetryCapMs = 100;
  /// Resume from CheckpointPath when it holds a checkpoint for this Seed;
  /// the resumed run's deterministic artifacts (parameters, logs, harvested
  /// samples) are identical to an uninterrupted run.
  bool Resume = false;
  /// Test hook: stop this invocation after N GRPO steps (counted across
  /// stages, after writing a checkpoint), returning artifacts with
  /// Halted = true. 0 = run to completion.
  unsigned HaltAfterSteps = 0;

  /// Optional deterministic fault injection (oracle budget exhaustion,
  /// verdict flips, cache misses, checkpoint-write failures). Null = off.
  FaultInjector *Faults = nullptr;

  /// Optional durable verdict tier (the persistent VerdictStore, opened by
  /// the caller from e.g. train_mini's --verdict-store flag) attached under
  /// the run's shared VerifyCache and propagated to evaluation. Warm-store
  /// runs are bit-identical to cold ones — only the verification work is
  /// skipped. Requires VerifyCacheCapacity > 0 (the store sits under the
  /// cache). While Faults is set the cache bypasses the tier entirely, so
  /// chaos runs neither read nor warm the store.
  VerdictBackingTier *VerdictTier = nullptr;

  //===--- Sharded evaluation -------------------------------------------===//

  /// Shard count for evaluateModelSharded(); 0 = one shard per worker
  /// thread. The result is bit-identical to the serial oracle at any
  /// setting (see Evaluation.h).
  unsigned EvalShards = 1;
  /// When non-empty, the evaluation writes its shard plan / per-shard
  /// result JSON here (the multi-process work-unit boundary).
  std::string EvalShardManifestPath;
  std::string EvalShardResultDir;

  /// EvalOptions matching this pipeline configuration (shards, batch
  /// verification, cache capacity, seed, fault injection). \p Pool may be
  /// null for inline evaluation.
  EvalOptions makeEvalOptions(ThreadPool *Pool = nullptr) const {
    EvalOptions EO;
    EO.Shards = EvalShards;
    EO.Pool = Pool;
    EO.BatchVerify = BatchVerify && VerifyCacheCapacity > 0;
    EO.VerifyCacheCapacity = VerifyCacheCapacity;
    EO.Seed = Seed;
    EO.Faults = Faults;
    EO.VerdictTier = VerdictTier;
    EO.ShardManifestPath = EvalShardManifestPath;
    EO.ShardResultDir = EvalShardResultDir;
    return EO;
  }

  static VerifyOptions trainVerifyDefaults() {
    VerifyOptions V;
    V.FalsifyTrials = 12;
    V.SolverConflictBudget = 50000;
    return V;
  }
};

/// Everything the pipeline produces: the four model snapshots, training
/// logs (Fig. 4), the harvested sample set, and U_max.
struct PipelineArtifacts {
  std::unique_ptr<RewritePolicyModel> Base;        ///< untouched base
  std::unique_ptr<RewritePolicyModel> ModelZero;   ///< stage-1 policy
  std::unique_ptr<RewritePolicyModel> WarmUp;      ///< post-SFT snapshot
  std::unique_ptr<RewritePolicyModel> Correctness; ///< stage-2 result
  std::unique_ptr<RewritePolicyModel> Latency;     ///< stage-3 result

  std::vector<TrainLogEntry> Stage1Log;
  std::vector<TrainLogEntry> Stage2Log; ///< Fig. 4(a)
  std::vector<TrainLogEntry> Stage3Log; ///< Fig. 4(b)

  std::vector<SFTExample> Augmented; ///< harvested diagnostic samples
  unsigned CorrectionSamples = 0;
  unsigned FirstTimeSamples = 0;
  double UMax = 3.0;

  // Verifier-cost instrumentation, aggregated over all GRPO stages.
  double ScoreWallMs = 0;         ///< total rollout-scoring wall time
  uint64_t VerifyCacheHits = 0;   ///< across the shared verify cache
  uint64_t VerifyCacheMisses = 0;
  uint64_t VerifyCacheEvictions = 0;
  unsigned FalsifyWins = 0;       ///< counterexamples found pre-SMT
  uint64_t SolverConflicts = 0;   ///< total CDCL conflicts spent scoring

  // Fault-tolerant-runtime instrumentation.
  bool Halted = false;            ///< stopped early via HaltAfterSteps
  unsigned CheckpointsWritten = 0;
  unsigned CheckpointWriteFailures = 0; ///< injected or real; run continued
  uint64_t CheckpointRetries = 0;       ///< extra save attempts consumed
  uint64_t RetryEscalations = 0;        ///< rollouts verified above tier 0
  uint64_t TerminalInconclusive = 0;    ///< budget-bound at the top tier
  uint64_t InjectedFaults = 0;          ///< oracle faults the verifier saw
};

/// Run the full pipeline over \p DS (built by the caller so benches can
/// share one dataset across many experiments).
PipelineArtifacts runTrainingPipeline(const Dataset &DS,
                                      const PipelineOptions &Opts);

/// Stage-1 style reward (Eq. 1) bound to a verification budget. A non-null
/// \p Cache memoizes verification; all factories produce thread-safe
/// functions suitable for parallel scoring.
RewardFn makeAnswerReward(const VerifyOptions &VOpts,
                          VerifyCache *Cache = nullptr);

/// Stage-2 reward: Eq. (1) on the answer plus Eq. (2) on the think section.
RewardFn makeCorrectnessReward(const VerifyOptions &VOpts,
                               VerifyCache *Cache = nullptr);

/// Stage-3 reward: Eq. (4) with the given parameters.
RewardFn makeLatencyReward(const VerifyOptions &VOpts,
                           const LatencyRewardParams &P,
                           VerifyCache *Cache = nullptr);

/// Fault-tolerant factory variants: verification goes through \p RV's
/// escalating retry ladder. \p RV must outlive the returned function.
RewardFn makeAnswerReward(const RobustVerifier &RV);
RewardFn makeCorrectnessReward(const RobustVerifier &RV);
RewardFn makeLatencyReward(const RobustVerifier &RV,
                           const LatencyRewardParams &P);

} // namespace veriopt

#endif // VERIOPT_PIPELINE_PIPELINE_H
