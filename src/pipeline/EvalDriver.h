//===- EvalDriver.h - Crash-tolerant multi-process eval driver ---*- C++ -*-=//
//
// Farms the shards of an evaluation manifest (planEvalShards +
// shardManifestToJson) out to `veriopt-worker` processes and supervises
// them: a worker that crashes, is killed, hangs past its wall-clock
// deadline, or emits a truncated/invalid result file is retried on a
// deterministic capped exponential backoff schedule; a shard that fails
// MaxAttempts times is quarantined with every attempt's captured
// diagnostics instead of taking the run down. The final merge salvages all
// healthy shards and is — by the PR6 shard contract — bit-identical to the
// serial oracle restricted to the healthy shard set. When every shard is
// healthy it equals evaluateModelSharded()/evaluateModel() exactly.
//
// Per-shard state machine (docs/FAULT_TOLERANCE.md):
//
//   pending ──spawn──▶ running ──ok──────────────▶ done
//      ▲                  │ crash/kill/timeout/corrupt
//      │                  ▼
//      └──backoff──── retrying ──attempts exhausted──▶ quarantined
//
// Resumability falls out of the result-file discipline: a shard whose
// result file already exists and validates against the manifest is reused
// without spawning a worker (the atomic+durable write in
// support/AtomicFile.h is what makes trusting that file sound).
//
// Every decision is schedule-independent: whether a shard is retried or
// quarantined depends only on its own attempts' outcomes, and the backoff
// delay is a pure function of (Seed, shard, attempt) — the same run makes
// the same retry decisions regardless of worker completion order.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_PIPELINE_EVALDRIVER_H
#define VERIOPT_PIPELINE_EVALDRIVER_H

#include "pipeline/Evaluation.h"

#include <cstdint>
#include <string>
#include <vector>

namespace veriopt {

struct EvalDriverOptions {
  /// Shard-plan manifest (shardManifestToJson output). The driver only
  /// reads it; planning stays with the caller.
  std::string ManifestPath;
  /// Directory for per-shard result files (shard_<index>.json) and the
  /// quarantine list (quarantine.json).
  std::string ResultDir;
  /// Worker argv prefix, e.g. {"./veriopt-worker", "--valid-count", "12"}.
  /// The driver appends --manifest/--shard/--out/--attempt per launch.
  std::vector<std::string> WorkerArgv;
  /// Concurrent worker processes.
  unsigned MaxWorkers = 2;
  /// Attempts per shard before quarantine (>= 1).
  unsigned MaxAttempts = 3;
  /// Backoff schedule: attempt k retries after
  /// driverBackoffMs(Seed, shard, k, BackoffBaseMs, BackoffCapMs).
  uint64_t BackoffBaseMs = 50;
  uint64_t BackoffCapMs = 2000;
  /// Per-worker wall-clock deadline in ms (0 = none). A blown deadline is
  /// SIGKILL escalation + retry, the Alive2-style hung-oracle discipline.
  uint64_t WorkerDeadlineMs = 0;
  /// Seeds the deterministic backoff jitter.
  uint64_t Seed = 0xE7A1;
  /// Reuse pre-existing valid result files instead of re-running their
  /// shards (restart-after-crash resumability).
  bool Resume = true;
  /// Per-attempt stderr capture cap (diagnostics in the quarantine list).
  size_t MaxStderrBytes = 4096;
};

/// Coarse cause taxonomy for a failed attempt — the distinction the
/// quarantine diagnostics surface so an operator can tell "the worker's
/// disk is failing" (Io: typed I/O exit, or an exit-0 claim whose result
/// file is missing/torn) from "the worker rejected its inputs or computed
/// garbage" (Logic: any other nonzero exit) from "the process died or
/// hung" (Runtime: signal, blown deadline, spawn failure).
enum class FailureClass { Logic, Io, Runtime };
const char *failureClassName(FailureClass C);

/// One failed attempt's diagnostics, kept for the quarantine record.
struct ShardAttemptFailure {
  unsigned Attempt = 0;     ///< 1-based
  FailureClass Class = FailureClass::Runtime;
  std::string Reason;       ///< typed outcome + detail (exit code, signal,
                            ///< validation error, ...)
  std::string StderrTail;   ///< captured worker stderr (bounded)
};

struct QuarantinedShard {
  EvalShard Shard;
  std::vector<ShardAttemptFailure> Failures; ///< one per attempt
};

struct EvalDriverReport {
  unsigned Spawned = 0;  ///< worker processes launched
  unsigned Retried = 0;  ///< launches that were retries (attempt > 1)
  unsigned Reused = 0;   ///< shards satisfied by valid existing files
  unsigned Salvaged = 0; ///< healthy shards in the merge (incl. Reused)
  std::vector<QuarantinedShard> Quarantined; ///< sorted by shard index
  std::vector<unsigned> HealthyShardIndices; ///< sorted
  /// Non-empty when writing <ResultDir>/quarantine.json itself failed (the
  /// diagnostics still live in Quarantined — losing the sidecar costs
  /// forensics on disk, never the in-memory report or the merge).
  std::string QuarantineWriteError;
  /// Merge over the healthy shard subset (bit-identical to the serial
  /// oracle restricted to those shards' sample ranges).
  EvalResult Merged;

  bool allHealthy() const { return Quarantined.empty(); }
};

/// The deterministic retry delay before attempt \p Attempt (>= 2) of shard
/// \p ShardIdx: capped exponential in the attempt number plus jitter that
/// is a pure hash of (Seed, ShardIdx, Attempt) — no clock, no randomness,
/// no dependence on other shards. Attempt 1 is always 0.
uint64_t driverBackoffMs(uint64_t Seed, unsigned ShardIdx, unsigned Attempt,
                         uint64_t BaseMs, uint64_t CapMs);

/// Load \p Path and validate it as the result of \p Expect: parseable
/// (shardResultFromJson's hardened typed errors), same shard identity
/// (index/range/seed), and exactly End-Begin samples. Truncated, garbage,
/// or wrong-shard files fail with \p Why set — they are never merged.
bool loadValidShardResult(const std::string &Path, const EvalShard &Expect,
                          ShardEvalResult &Out, std::string *Why);

/// Run the supervisor over the manifest. Returns false only on driver-level
/// errors (unreadable manifest, nothing healthy to merge with every shard
/// quarantined is still true — degraded, not failed). Emits an
/// `eval.driver` span, one `eval.worker` span per launch, and the
/// `driver.{spawned,retried,quarantined,salvaged}` counters.
bool runEvalDriver(const EvalDriverOptions &Opts,
                   const std::string &ModelName, EvalDriverReport &Report,
                   std::string *Err);

/// JSON for the poison list ({"quarantined":[...]}; written by
/// runEvalDriver to <ResultDir>/quarantine.json, bounded diagnostics).
std::string quarantineToJson(const std::vector<QuarantinedShard> &Q);

/// Operator-facing summary: per-state counts, quarantine table with the
/// last failure reason, and the salvaged-merge taxonomy.
std::string renderDriverReport(const EvalDriverReport &R);

} // namespace veriopt

#endif // VERIOPT_PIPELINE_EVALDRIVER_H
