//===- Checkpoint.cpp - Pipeline checkpoint/resume ----------------------------//

#include "pipeline/Checkpoint.h"

#include "support/AtomicFile.h"
#include "support/FileLock.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace veriopt {

namespace {

/// Doubles round-trip as their IEEE-754 bit pattern: text formatting must
/// never perturb a resumed run.
std::string dhex(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Bits));
  return Buf;
}

bool dunhex(const std::string &S, double &D) {
  if (S.size() != 16)
    return false;
  uint64_t Bits = 0;
  for (char C : S) {
    Bits <<= 4;
    if (C >= '0' && C <= '9')
      Bits |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Bits |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  std::memcpy(&D, &Bits, sizeof(D));
  return true;
}

void writeParams(std::ostream &OS, const char *Name,
                 const std::vector<double> &P) {
  OS << "model " << Name << ' ' << P.size();
  for (double V : P)
    OS << ' ' << dhex(V);
  OS << '\n';
}

bool readParams(std::istream &IS, const char *Name, std::vector<double> &P) {
  std::string Kw, Nm;
  size_t N;
  if (!(IS >> Kw >> Nm >> N) || Kw != "model" || Nm != Name)
    return false;
  P.resize(N);
  std::string Tok;
  for (size_t I = 0; I < N; ++I)
    if (!(IS >> Tok) || !dunhex(Tok, P[I]))
      return false;
  return true;
}

void writeLog(std::ostream &OS, unsigned Which,
              const std::vector<TrainLogEntry> &Log) {
  OS << "log " << Which << ' ' << Log.size() << '\n';
  for (const TrainLogEntry &E : Log) {
    OS << E.Step << ' ' << dhex(E.MeanReward) << ' ' << dhex(E.EMAReward)
       << ' ' << dhex(E.EquivalentRate) << ' ' << dhex(E.CopyRate) << ' '
       << dhex(E.GradNorm) << ' ' << dhex(E.ScoreWallMs) << ' '
       << dhex(E.CacheHitRate) << ' ' << E.FalsifyWins << ' '
       << E.SolverConflicts << ' ' << E.RetryEscalations << ' '
       << E.TerminalInconclusive << ' ' << E.MaxRetryTier << '\n';
  }
}

bool readLog(std::istream &IS, unsigned Which,
             std::vector<TrainLogEntry> &Log) {
  std::string Kw;
  unsigned W;
  size_t N;
  if (!(IS >> Kw >> W >> N) || Kw != "log" || W != Which)
    return false;
  Log.resize(N);
  for (TrainLogEntry &E : Log) {
    std::string D[7];
    if (!(IS >> E.Step >> D[0] >> D[1] >> D[2] >> D[3] >> D[4] >> D[5] >>
          D[6] >> E.FalsifyWins >> E.SolverConflicts >> E.RetryEscalations >>
          E.TerminalInconclusive >> E.MaxRetryTier))
      return false;
    if (!dunhex(D[0], E.MeanReward) || !dunhex(D[1], E.EMAReward) ||
        !dunhex(D[2], E.EquivalentRate) || !dunhex(D[3], E.CopyRate) ||
        !dunhex(D[4], E.GradNorm) || !dunhex(D[5], E.ScoreWallMs) ||
        !dunhex(D[6], E.CacheHitRate))
      return false;
  }
  return true;
}

void writeActions(std::ostream &OS, const std::vector<unsigned> &A) {
  OS << ' ' << A.size();
  for (unsigned V : A)
    OS << ' ' << V;
}

bool readActions(std::istream &IS, std::vector<unsigned> &A) {
  size_t N;
  if (!(IS >> N))
    return false;
  A.resize(N);
  for (unsigned &V : A)
    if (!(IS >> V))
      return false;
  return true;
}

} // namespace

bool saveCheckpoint(const std::string &Path, const PipelineCheckpoint &CP,
                    FaultInjector *Faults, unsigned Attempt) {
  // Injected write failure: deterministic in the checkpoint's position
  // within the run, so interrupted-vs-uninterrupted comparisons inject at
  // the same checkpoints. Retries (Attempt >= 2) salt the key so each
  // attempt decides independently; the first attempt's key is unchanged so
  // non-retrying callers keep their historical injection pattern.
  if (Faults) {
    std::string Key = std::to_string(CP.StageIdx) + ':' +
                      std::to_string(CP.Stage1Log.size()) + ':' +
                      std::to_string(CP.Stage2Log.size()) + ':' +
                      std::to_string(CP.Stage3Log.size());
    if (Attempt >= 2)
      Key += ":retry" + std::to_string(Attempt);
    if (Faults->shouldInject(FaultSite::CheckpointWrite, Key))
      return false;
  }

  std::ostringstream OS;
  OS << "veriopt-ckpt " << CP.Version << '\n';
  OS << "seed " << CP.Seed << '\n';
  OS << "stage " << CP.StageIdx << '\n';
  OS << "trainer " << CP.Trainer.StepCount << ' ' << CP.Trainer.RNGState
     << ' ' << dhex(CP.Trainer.EMAValue) << ' '
     << (CP.Trainer.EMAPrimed ? 1 : 0) << '\n';
  writeParams(OS, "zero", CP.ModelZeroParams);
  writeParams(OS, "warmup", CP.WarmUpParams);
  writeParams(OS, "correctness", CP.CorrectnessParams);
  writeParams(OS, "latency", CP.LatencyParams);
  writeLog(OS, 1, CP.Stage1Log);
  writeLog(OS, 2, CP.Stage2Log);
  writeLog(OS, 3, CP.Stage3Log);
  OS << "aug " << CP.Augmented.size() << '\n';
  for (const AugmentedRecord &R : CP.Augmented) {
    OS << R.SampleIdx << ' ' << (R.IsCorrection ? 1 : 0) << ' '
       << R.DiagClass;
    writeActions(OS, R.TargetActions);
    writeActions(OS, R.AttemptActions);
    OS << '\n';
  }
  OS << "counts " << CP.CorrectionSamples << ' ' << CP.FirstTimeSamples
     << '\n';
  OS << "end\n";

  // Atomic + durable write-then-rename (support/AtomicFile.h): a crash —
  // even a power loss — leaves either the old checkpoint or the complete,
  // fsync'ed new one, never a torn or renamed-but-empty file. The sidecar
  // flock serializes concurrent writers (two supervised runs pointed at
  // one checkpoint path) so their ".tmp" staging files cannot collide; the
  // sidecar survives the rename, unlike a lock on the checkpoint itself.
  FileLock Lock;
  if (!Lock.lock(Path + ".lock", FileLock::Mode::Exclusive))
    return false;
  return writeFileAtomic(Path, OS.str());
}

bool loadCheckpoint(const std::string &Path, PipelineCheckpoint &CP) {
  std::ifstream F(Path, std::ios::binary);
  if (!F)
    return false;
  std::string Magic;
  PipelineCheckpoint Out;
  if (!(F >> Magic >> Out.Version) || Magic != "veriopt-ckpt" ||
      Out.Version != 1)
    return false;
  std::string Kw, EmaHex;
  unsigned Primed;
  if (!(F >> Kw >> Out.Seed) || Kw != "seed")
    return false;
  if (!(F >> Kw >> Out.StageIdx) || Kw != "stage")
    return false;
  if (!(F >> Kw >> Out.Trainer.StepCount >> Out.Trainer.RNGState >> EmaHex >>
        Primed) ||
      Kw != "trainer" || !dunhex(EmaHex, Out.Trainer.EMAValue))
    return false;
  Out.Trainer.EMAPrimed = Primed != 0;
  if (!readParams(F, "zero", Out.ModelZeroParams) ||
      !readParams(F, "warmup", Out.WarmUpParams) ||
      !readParams(F, "correctness", Out.CorrectnessParams) ||
      !readParams(F, "latency", Out.LatencyParams))
    return false;
  if (!readLog(F, 1, Out.Stage1Log) || !readLog(F, 2, Out.Stage2Log) ||
      !readLog(F, 3, Out.Stage3Log))
    return false;
  size_t NAug;
  if (!(F >> Kw >> NAug) || Kw != "aug")
    return false;
  Out.Augmented.resize(NAug);
  for (AugmentedRecord &R : Out.Augmented) {
    unsigned Corr;
    if (!(F >> R.SampleIdx >> Corr >> R.DiagClass) ||
        !readActions(F, R.TargetActions) || !readActions(F, R.AttemptActions))
      return false;
    R.IsCorrection = Corr != 0;
  }
  if (!(F >> Kw >> Out.CorrectionSamples >> Out.FirstTimeSamples) ||
      Kw != "counts")
    return false;
  if (!(F >> Kw) || Kw != "end")
    return false;
  CP = std::move(Out);
  return true;
}

} // namespace veriopt
