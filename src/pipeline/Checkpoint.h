//===- Checkpoint.h - Pipeline checkpoint/resume -----------------*- C++ -*-=//
//
// Serializes everything the four-stage training pipeline needs to restart
// mid-stage and produce artifacts identical to an uninterrupted run: the
// per-model parameter vectors, the in-progress GRPO trainer's resumable
// state (step counter + RNG state + EMA smoother), the per-stage logs, and
// the harvested diagnostic-augmented sample set (as indices + action codes,
// so it can be re-bound to the caller's Dataset on load).
//
// The format is line-oriented text with every double stored as its IEEE-754
// bit pattern in hex, so a save/load round trip is bit-exact. Writes are
// atomic: serialize to "<path>.tmp", then rename over the destination — a
// crash mid-write leaves the previous checkpoint intact.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_PIPELINE_CHECKPOINT_H
#define VERIOPT_PIPELINE_CHECKPOINT_H

#include "rl/Trainer.h"
#include "support/FaultInjector.h"

#include <string>
#include <vector>

namespace veriopt {

/// One harvested SFT example, decoupled from Sample pointers: SampleIdx
/// indexes the training split the pipeline was launched with.
struct AugmentedRecord {
  unsigned SampleIdx = 0;
  std::vector<unsigned> TargetActions; ///< Action codes, ends with Stop
  bool IsCorrection = false;
  std::vector<unsigned> AttemptActions;
  unsigned DiagClass = 0;
};

/// Stage encoding: 0 = stage-1 GRPO in progress, 1 = stage-2 GRPO in
/// progress (warm-up SFT already folded into WarmUpParams), 2 = stage-3
/// GRPO in progress, 3 = pipeline complete.
struct PipelineCheckpoint {
  unsigned Version = 1;
  uint64_t Seed = 0;     ///< PipelineOptions::Seed, verified on resume
  unsigned StageIdx = 0;
  GRPOTrainerState Trainer; ///< state of the in-progress stage's trainer

  // Parameter vectors; empty = that model does not exist yet.
  std::vector<double> ModelZeroParams;
  std::vector<double> WarmUpParams;
  std::vector<double> CorrectnessParams;
  std::vector<double> LatencyParams;

  std::vector<TrainLogEntry> Stage1Log, Stage2Log, Stage3Log;

  std::vector<AugmentedRecord> Augmented;
  unsigned CorrectionSamples = 0;
  unsigned FirstTimeSamples = 0;
};

/// Atomically write \p CP to \p Path (via "<path>.tmp" + rename). Returns
/// false on I/O failure — or when \p Faults fires the CheckpointWrite site
/// for this checkpoint's (stage, step) key, which simulates a full disk /
/// crash mid-save. Callers must treat false as "previous checkpoint still
/// stands" and keep training. \p Attempt (1-based) salts the injection key
/// for retries *after the first*, so a retrying caller sees an independent
/// fault decision per attempt while single-attempt callers keep the
/// historical per-checkpoint pattern.
bool saveCheckpoint(const std::string &Path, const PipelineCheckpoint &CP,
                    FaultInjector *Faults = nullptr, unsigned Attempt = 1);

/// Load \p Path into \p CP. Returns false (leaving \p CP default) when the
/// file is missing, truncated, or not a compatible checkpoint.
bool loadCheckpoint(const std::string &Path, PipelineCheckpoint &CP);

} // namespace veriopt

#endif // VERIOPT_PIPELINE_CHECKPOINT_H
