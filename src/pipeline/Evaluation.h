//===- Evaluation.h - The paper's evaluation harness -------------*- C++ -*-=//
//
// Computes every statistic the paper's tables and figures report:
//  - the Alive verification taxonomy (Tables I/II): correct (with the
//    trivial-copy sub-row), semantic error, syntax error, inconclusive;
//  - per-sample Better/Worse/Tie and mean relative change vs -O0 for
//    latency / binary size / instruction count, with the -O0 fallback on
//    verification failure (Table III);
//  - geomean improvements and pairwise win/tie/loss against the reference
//    pass, plus the best-of-both fallback composition (Figs. 5-7).
//
// The harness scales with the corpus: evaluateModelSharded() partitions the
// validation set into deterministic contiguous shards, evaluates each shard
// (optionally on the shared ThreadPool, optionally through a BatchVerifier
// context so one SourceEncoding serves a sample's whole candidate group),
// and merges the per-shard results with an order-independent reduction that
// is bit-identical to the serial oracle evaluateModel() at any shard/thread
// count. A shard is a serializable work unit — planEvalShards() emits a
// manifest and every ShardEvalResult round-trips through JSON with
// bit-exact doubles — so a later PR can split shards across processes.
//
//===----------------------------------------------------------------------===//

#ifndef VERIOPT_PIPELINE_EVALUATION_H
#define VERIOPT_PIPELINE_EVALUATION_H

#include "model/Policy.h"
#include "data/Dataset.h"

#include <functional>
#include <string>
#include <vector>

namespace veriopt {

class BatchVerifier;
class FaultInjector;
class ThreadPool;
class VerdictBackingTier;
class VerifyCache;

/// Table I/II row counts.
struct VerifyTaxonomy {
  unsigned Total = 0;
  unsigned Correct = 0;
  unsigned CorrectCopies = 0; ///< sub-row of Correct
  unsigned SemanticError = 0;
  unsigned SyntaxError = 0;
  unsigned Inconclusive = 0;

  /// Percentage of \p N over Total; an empty split renders 0.0 (never
  /// NaN/inf — the degenerate-corpus convention, see EvaluationTest).
  double pct(unsigned N) const {
    return Total ? 100.0 * N / Total : 0.0;
  }
  /// The paper's headline: verified AND different from the input.
  double differentCorrectRate() const {
    return Total ? 100.0 * (Correct - CorrectCopies) / Total : 0.0;
  }
};

/// Better/Worse/Tie counts plus mean relative change for one metric
/// (Table III rows). Negative mean = improvement.
struct MetricAgg {
  unsigned Better = 0, Worse = 0, Tie = 0;
  double MeanRelChange = 0; ///< mean of (out - base) / base
  double GeoRatio = 1.0;    ///< geomean of out/base (lower = better)
};

/// One sample's end-to-end evaluation.
struct SampleEval {
  VerifyStatus Status = VerifyStatus::Inconclusive;
  bool IsCopy = false;
  bool UsedFallback = false; ///< verification failed -> -O0 output kept
  double LatO0 = 0, LatOut = 0, LatRef = 0;
  unsigned ICountO0 = 0, ICountOut = 0, ICountRef = 0;
  unsigned SizeO0 = 0, SizeOut = 0, SizeRef = 0;
};

struct EvalResult {
  std::string ModelName;
  VerifyTaxonomy Taxonomy;
  MetricAgg Latency, Size, ICount; ///< vs -O0, fallback applied
  double GeoSpeedupVsO0 = 1.0;     ///< geomean LatO0/LatOut
  /// Pairwise vs the reference pass on latency (Fig. 6(c)).
  unsigned VsRefBetter = 0, VsRefWorse = 0, VsRefTie = 0;
  /// Fallback composition: min(model, reference) per sample, geomean
  /// improvement over reference alone (the paper's +17% result).
  double FallbackGainOverRef = 0;
  /// Manifest / per-shard result files evaluateModelSharded failed to
  /// write (durability plane only: the in-memory result is unaffected, so
  /// this field is excluded from countResultDivergence and from the shard
  /// JSON — it is telemetry about this process's disk, not the evaluation).
  unsigned IoErrors = 0;
  std::vector<SampleEval> PerSample;
};

//===--- Serial oracle ------------------------------------------------------===//

/// Evaluate a policy on \p Valid with greedy decoding, serially. This is
/// the oracle the sharded path must reproduce bit for bit.
EvalResult evaluateModel(const RewritePolicyModel &Model,
                         const std::vector<Sample> &Valid, PromptMode Mode,
                         const VerifyOptions &VOpts = VerifyOptions());

/// The reference pass itself as a "model" row (its outputs are the
/// Sample::Reference functions).
EvalResult evaluateReferencePass(const std::vector<Sample> &Valid);

/// Recompute every aggregate field of \p R (MetricAggs, GeoSpeedupVsO0,
/// VsRef counts, FallbackGainOverRef) from R.PerSample. Pure in PerSample,
/// so merging shards and re-aggregating is bit-identical to the serial
/// pass. Degenerate corpora follow fixed conventions instead of producing
/// NaN: empty relative-change sets mean 0.0, empty ratio sets mean a 1.0
/// geomean, and an empty corpus has FallbackGainOverRef 0.0.
void recomputeAggregates(EvalResult &R);

//===--- Per-sample core ----------------------------------------------------===//

/// How a candidate text gets verified against its sample (plain
/// verifyCandidateText, a cache, or a BatchVerifier context).
using CandidateVerifier =
    std::function<VerifyResult(const Sample &S, const std::string &Text)>;

/// Verify and classify one completion for \p S: the shared per-sample core
/// of the serial and sharded paths (identical logic is what makes the
/// differential guarantee hold). Counts the outcome into \p Tax. A verdict
/// of Equivalent whose answer fails to reparse is recorded as Inconclusive
/// with a distinct diagnostic and keeps the -O0 fallback — never UB.
SampleEval evaluateCandidate(const Sample &S, const Completion &C,
                             const CandidateVerifier &Verify,
                             VerifyTaxonomy &Tax);

//===--- Sharded evaluation -------------------------------------------------===//

/// One shard of the validation set: a deterministic, serializable work
/// unit. Samples [Begin, End) are evaluated in order with a dedicated RNG
/// seeded by RngSeed = deriveShardSeed(Seed, Index), so greedy and future
/// sampled decoding are both independent of the thread schedule.
struct EvalShard {
  unsigned Index = 0;
  size_t Begin = 0, End = 0; ///< [Begin, End) into the validation set
  uint64_t RngSeed = 0;
};

/// What one shard produced. PerSample holds samples Begin..End in corpus
/// order; Taxonomy is this shard's slice of the counts.
struct ShardEvalResult {
  EvalShard Shard;
  VerifyTaxonomy Taxonomy;
  std::vector<SampleEval> PerSample;
};

struct EvalOptions {
  /// Shard count; 0 = one shard per pool thread (or 1 without a pool).
  unsigned Shards = 1;
  /// Shards run on this pool when it has more than one thread; null or
  /// single-threaded pools evaluate shards inline, in index order.
  ThreadPool *Pool = nullptr;
  /// Route verification through a shared BatchVerifier + VerifyCache (the
  /// GRPO group machinery; a sample's candidate set shares one
  /// SourceEncoding). Off = plain verifyCandidateText. Verdicts are
  /// bit-identical either way.
  bool BatchVerify = true;
  /// Verify-memo capacity in entries when BatchVerify is on (0 = unbounded).
  size_t VerifyCacheCapacity = 4096;
  /// Optional externally owned verify cache. When set, the run uses it
  /// instead of creating a private one, so successive evaluations (the
  /// checkpoint-cadence and ablation-table workloads, which re-verify
  /// mostly unchanged (source, candidate) pairs) replay verdicts instead
  /// of recomputing them — bit-identical either way (the PR4 cache
  /// contract). Ignored when BatchVerify is off.
  VerifyCache *SharedCache = nullptr;
  /// Optional durable verdict tier (the persistent VerdictStore) attached
  /// under the run's verify cache: memo misses read through to it and
  /// fresh verdicts write behind, so a warm store replays verification
  /// across processes and runs. Bit-identical either way (verification is
  /// deterministic and the store admits only deterministic verdicts — see
  /// docs/PERSISTENCE.md). Requires BatchVerify (the store sits under the
  /// cache); ignored otherwise. Caller owns; must outlive the evaluation.
  VerdictBackingTier *VerdictTier = nullptr;
  /// Base seed for per-shard RNG derivation (API symmetry with training;
  /// greedy decoding ignores the stream).
  uint64_t Seed = 0xE7A1;
  /// Optional deterministic fault injection, honored by the BatchVerify
  /// path's oracle-budget / verdict-flip / cache-miss sites.
  FaultInjector *Faults = nullptr;
  /// When non-empty, write the shard plan as JSON (atomic write-then-
  /// rename) so an external driver can later run shards out of process.
  std::string ShardManifestPath;
  /// When non-empty, write each shard's ShardEvalResult to
  /// <dir>/shard_<index>.json (bit-exact doubles; see shardResultFromJson).
  std::string ShardResultDir;
};

/// Derived per-shard seed: a SplitMix64-style mix of (Seed, ShardIdx),
/// stable across platforms and independent of shard execution order.
uint64_t deriveShardSeed(uint64_t Seed, unsigned ShardIdx);

/// Deterministic contiguous partition of \p N samples into \p Shards
/// shards (sizes differ by at most one; empty shards are kept so the
/// manifest always lists exactly \p Shards entries).
std::vector<EvalShard> planEvalShards(size_t N, unsigned Shards,
                                      uint64_t Seed);

/// Evaluate one shard. \p Batch may be null (plain verification at
/// \p VOpts). This is the unit a multi-process driver would invoke.
ShardEvalResult evaluateEvalShard(const RewritePolicyModel &Model,
                                  const std::vector<Sample> &Valid,
                                  PromptMode Mode, const VerifyOptions &VOpts,
                                  const EvalShard &Shard,
                                  const BatchVerifier *Batch = nullptr);

/// Merge per-shard results: concatenate PerSample in shard-index order,
/// sum the taxonomy, recompute aggregates. Order-independent in the input
/// vector's ordering and bit-identical to the serial oracle.
EvalResult mergeShardResults(const std::string &ModelName,
                             std::vector<ShardEvalResult> Shards);

/// The sharded front door. Bit-identical to evaluateModel() at any
/// Shards/Pool configuration, with or without BatchVerify.
EvalResult evaluateModelSharded(const RewritePolicyModel &Model,
                                const std::vector<Sample> &Valid,
                                PromptMode Mode, const VerifyOptions &VOpts,
                                const EvalOptions &EOpts);

/// Count bit-exact differences between two results: taxonomy counts, every
/// aggregate (doubles compared by bit pattern, so -0.0 != 0.0 and NaN ==
/// NaN), and every per-sample field. 0 means bit-identical. The
/// differential gates (bench/sharded_eval, bench/eval_driver,
/// veriopt-drive --tiny) all key off this.
unsigned countResultDivergence(const EvalResult &A, const EvalResult &B);

//===--- Shard serialization ------------------------------------------------===//

/// Manifest JSON for a shard plan: {"seed":..,"samples":..,"shards":[...]}.
std::string shardManifestToJson(const std::vector<EvalShard> &Plan,
                                uint64_t Seed, size_t Samples);
bool shardManifestFromJson(const std::string &Text,
                           std::vector<EvalShard> &Plan, std::string *Err);

/// Per-shard result JSON. Doubles are stored as IEEE-754 bit-hex (the
/// checkpoint discipline) so a parse(serialize(R)) round-trip is
/// bit-identical — merging deserialized shards must equal merging in-memory
/// ones.
std::string shardResultToJson(const ShardEvalResult &R);
bool shardResultFromJson(const std::string &Text, ShardEvalResult &R,
                         std::string *Err);

/// Render a taxonomy as a paper-style table block. An empty split renders
/// all-0.0% rows (never NaN/inf).
std::string renderTaxonomy(const std::string &Title, const VerifyTaxonomy &T);

} // namespace veriopt

#endif // VERIOPT_PIPELINE_EVALUATION_H
